//! Processor partitions: the mapping from a per-grid processor assignment
//! (`np(n)` from Algorithms 1/2) to concrete per-rank subdomains (via the
//! prime-factor splitting of the grid crate).

use overset_grid::decomp::{lattice_split, Decomp};
use overset_grid::{Dims, IndexBox, Subdomain};

/// One rank's assignment within a partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RankAssignment {
    /// Component grid this rank works on.
    pub grid: usize,
    /// Owned index box within that grid.
    pub boxx: IndexBox,
    /// Ordinal of this rank among the grid's subdomains.
    pub ordinal: usize,
}

/// A full partition of an overset system over `nranks` processors.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Per-grid processor counts.
    pub np: Vec<usize>,
    /// Per-rank assignments, rank-major (grid 0's subdomains first).
    pub ranks: Vec<RankAssignment>,
    /// First rank of each grid (grid n owns ranks `start[n]..start[n]+np[n]`).
    pub start: Vec<usize>,
    /// Per-grid lattice decomposition (for neighbor topology).
    pub decomp: Vec<Decomp>,
}

impl Partition {
    /// Build a partition from grid dimensions and per-grid processor counts.
    pub fn build(dims: &[Dims], np: &[usize]) -> Partition {
        assert_eq!(dims.len(), np.len());
        let mut ranks = Vec::with_capacity(np.iter().sum());
        let mut start = Vec::with_capacity(np.len());
        let mut decomp = Vec::with_capacity(np.len());
        for (grid, (&d, &n)) in dims.iter().zip(np).enumerate() {
            start.push(ranks.len());
            let dec = lattice_split(d, n);
            for sub in &dec.subs {
                let Subdomain { boxx, ordinal } = *sub;
                ranks.push(RankAssignment { grid, boxx, ordinal });
            }
            decomp.push(dec);
        }
        Partition { np: np.to_vec(), ranks, start, decomp }
    }

    /// Global rank of a (grid, lattice ordinal) pair.
    pub fn rank_of(&self, grid: usize, ordinal: usize) -> usize {
        self.start[grid] + ordinal
    }

    /// Face-neighbor global ranks of a rank, including periodic-wrap links
    /// in `i` when `periodic_i[grid]` is set (wrap links only when the grid
    /// is actually split in `i`; a single-`i` block self-wraps locally).
    /// Face order: IMin, IMax, JMin, JMax, KMin, KMax.
    pub fn neighbors_of(&self, rank: usize, periodic_i: bool) -> [Option<usize>; 6] {
        let a = self.ranks[rank];
        let dec = &self.decomp[a.grid];
        let mut out = [None; 6];
        for dir in 0..3 {
            for (fi, downstream) in [(2 * dir, false), (2 * dir + 1, true)] {
                let mut n = dec.neighbor(a.ordinal, dir, downstream);
                if n.is_none() && dir == 0 && periodic_i {
                    n = dec.wrap_neighbor_i(a.ordinal, downstream);
                }
                out[fi] = n.map(|o| self.rank_of(a.grid, o));
            }
        }
        out
    }

    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Which grid a rank works on.
    pub fn grid_of_rank(&self, rank: usize) -> usize {
        self.ranks[rank].grid
    }

    /// Global ranks assigned to a grid.
    pub fn ranks_of_grid(&self, grid: usize) -> std::ops::Range<usize> {
        self.start[grid]..self.start[grid] + self.np[grid]
    }

    /// The vector `grid_of_rank` used by Algorithm 2.
    pub fn grid_of_rank_vec(&self) -> Vec<usize> {
        self.ranks.iter().map(|r| r.grid).collect()
    }

    /// Flow-solve load imbalance: max points per rank / mean points per rank.
    pub fn flow_imbalance(&self) -> f64 {
        let counts: Vec<usize> = self.ranks.iter().map(|r| r.boxx.count()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        counts.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Locate the rank owning node `p` of `grid` (every node belongs to
    /// exactly one subdomain box).
    pub fn owner_of(&self, grid: usize, p: overset_grid::Ijk) -> usize {
        let r = self.ranks_of_grid(grid);
        for rank in r {
            if self.ranks[rank].boxx.contains(p) {
                return rank;
            }
        }
        panic!("node {p:?} of grid {grid} not owned by any rank");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::Ijk;

    #[test]
    fn build_counts_and_coverage() {
        let dims = [Dims::new(20, 20, 1), Dims::new(10, 30, 1)];
        let p = Partition::build(&dims, &[3, 2]);
        assert_eq!(p.nranks(), 5);
        assert_eq!(p.ranks_of_grid(0), 0..3);
        assert_eq!(p.ranks_of_grid(1), 3..5);
        // Every node of each grid owned by exactly one rank.
        for (g, d) in dims.iter().enumerate() {
            for node in d.iter() {
                let owners = p.ranks_of_grid(g).filter(|&r| p.ranks[r].boxx.contains(node)).count();
                assert_eq!(owners, 1, "node {node:?} of grid {g}");
            }
        }
    }

    #[test]
    fn owner_of_matches_boxes() {
        let dims = [Dims::new(16, 16, 4)];
        let p = Partition::build(&dims, &[8]);
        for node in dims[0].iter() {
            let r = p.owner_of(0, node);
            assert!(p.ranks[r].boxx.contains(node));
            assert_eq!(p.grid_of_rank(r), 0);
        }
    }

    #[test]
    fn flow_imbalance_unit_for_even_split() {
        let p = Partition::build(&[Dims::new(16, 16, 16)], &[8]);
        assert!((p.flow_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_of_rank_vec_matches() {
        let p = Partition::build(&[Dims::new(8, 8, 1), Dims::new(8, 8, 1)], &[2, 3]);
        assert_eq!(p.grid_of_rank_vec(), vec![0, 0, 1, 1, 1]);
        assert_eq!(p.owner_of(1, Ijk::new(0, 0, 0)), 2);
    }
}
