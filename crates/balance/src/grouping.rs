//! Algorithm 3: the grouping strategy for the adaptive off-body Cartesian
//! scheme (Section 5 of the paper).
//!
//! The solution-adaption scheme generates hundreds to thousands of small
//! Cartesian grids. Grids are gathered into `M` groups — one per node of the
//! parallel platform — so that (a) gridpoints are distributed evenly between
//! groups and (b) grids that overlap tend to land in the *same* group,
//! maximizing intra-group connectivity and minimizing inter-group
//! communication:
//!
//! ```text
//! loop grids largest-to-smallest:
//!   loop groups smallest-to-largest:
//!     if group empty -> assign, next grid
//!     if grid connected to any member of group -> assign, next grid
//!   if never assigned -> assign to the smallest group
//! ```

/// Connectivity oracle: `connected(a, b)` is true when grids `a` and `b`
/// overlap (exchange Chimera boundary data).
pub trait Connectivity {
    fn connected(&self, a: usize, b: usize) -> bool;
}

/// Dense adjacency-matrix connectivity.
#[derive(Clone, Debug)]
pub struct AdjacencyMatrix {
    n: usize,
    adj: Vec<bool>,
}

impl AdjacencyMatrix {
    pub fn new(n: usize) -> Self {
        Self { n, adj: vec![false; n * n] }
    }

    pub fn connect(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        self.adj[a * self.n + b] = true;
        self.adj[b * self.n + a] = true;
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Connectivity for AdjacencyMatrix {
    fn connected(&self, a: usize, b: usize) -> bool {
        self.adj[a * self.n + b]
    }
}

/// Result of the grouping strategy.
#[derive(Clone, Debug)]
pub struct Grouping {
    /// Group index assigned to each grid.
    pub group_of_grid: Vec<usize>,
    /// Grids per group, in assignment order.
    pub members: Vec<Vec<usize>>,
    /// Total gridpoints per group.
    pub load: Vec<usize>,
}

impl Grouping {
    /// max(load) / mean(load): 1.0 = perfectly even.
    pub fn imbalance(&self) -> f64 {
        let mean = self.load.iter().sum::<usize>() as f64 / self.load.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        *self.load.iter().max().unwrap() as f64 / mean
    }

    /// Fraction of connected grid pairs that were split across groups —
    /// a proxy for inter-group communication volume.
    pub fn cut_fraction(&self, conn: &impl Connectivity, ngrids: usize) -> f64 {
        let mut edges = 0usize;
        let mut cut = 0usize;
        for a in 0..ngrids {
            for b in (a + 1)..ngrids {
                if conn.connected(a, b) {
                    edges += 1;
                    if self.group_of_grid[a] != self.group_of_grid[b] {
                        cut += 1;
                    }
                }
            }
        }
        if edges == 0 {
            0.0
        } else {
            cut as f64 / edges as f64
        }
    }
}

/// Run Algorithm 3: assign `sizes.len()` grids (with given point counts) to
/// `ngroups` groups using the connectivity oracle.
pub fn group_grids(sizes: &[usize], ngroups: usize, conn: &impl Connectivity) -> Grouping {
    assert!(ngroups >= 1);
    let n = sizes.len();
    // Grids largest-to-smallest; stable tiebreak on index for determinism.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let mut load = vec![0usize; ngroups];
    let mut group_of_grid = vec![usize::MAX; n];

    for &grid in &order {
        // Groups smallest-to-largest by current load; index tiebreak.
        let mut gorder: Vec<usize> = (0..ngroups).collect();
        gorder.sort_by(|&a, &b| load[a].cmp(&load[b]).then(a.cmp(&b)));

        let mut chosen = None;
        for &m in &gorder {
            if members[m].is_empty() {
                chosen = Some(m);
                break;
            }
            if members[m].iter().any(|&other| conn.connected(grid, other)) {
                chosen = Some(m);
                break;
            }
        }
        // Not connected to any group as currently constituted: smallest group.
        let m = chosen.unwrap_or(gorder[0]);
        group_of_grid[grid] = m;
        members[m].push(grid);
        load[m] += sizes[grid];
    }

    Grouping { group_of_grid, members, load }
}

/// Baseline for the A3 ablation: round-robin assignment in index order,
/// ignoring connectivity.
pub fn round_robin(sizes: &[usize], ngroups: usize) -> Grouping {
    let n = sizes.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let mut load = vec![0usize; ngroups];
    let mut group_of_grid = vec![0usize; n];
    for grid in 0..n {
        let m = grid % ngroups;
        group_of_grid[grid] = m;
        members[m].push(grid);
        load[m] += sizes[grid];
    }
    Grouping { group_of_grid, members, load }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from the paper's Algorithm 3 figure: 8 grids in a
    /// 4x2 tile arrangement, neighbours connected, two groups.
    fn paper_example() -> (Vec<usize>, AdjacencyMatrix) {
        // Grid ids 0..8 tile a 2-row strip:
        //   0 2 4 6
        //   1 3 5 7
        let sizes = vec![800, 700, 600, 500, 400, 300, 200, 100];
        let mut adj = AdjacencyMatrix::new(8);
        for col in 0..4usize {
            let top = 2 * col;
            adj.connect(top, top + 1);
            if col + 1 < 4 {
                adj.connect(top, top + 2);
                adj.connect(top + 1, top + 3);
            }
        }
        (sizes, adj)
    }

    #[test]
    fn every_grid_assigned_exactly_once() {
        let (sizes, adj) = paper_example();
        let g = group_grids(&sizes, 2, &adj);
        assert!(g.group_of_grid.iter().all(|&m| m < 2));
        let total: usize = g.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 8);
        let loads: usize = g.load.iter().sum();
        assert_eq!(loads, sizes.iter().sum::<usize>());
    }

    #[test]
    fn grouping_is_balanced() {
        let (sizes, adj) = paper_example();
        let g = group_grids(&sizes, 2, &adj);
        assert!(g.imbalance() < 1.3, "imbalance = {}", g.imbalance());
    }

    #[test]
    fn grouping_never_worse_than_round_robin_on_paper_example() {
        let (sizes, adj) = paper_example();
        let grouped = group_grids(&sizes, 2, &adj);
        let rr = round_robin(&sizes, 2);
        let gc = grouped.cut_fraction(&adj, 8);
        let rc = rr.cut_fraction(&adj, 8);
        assert!(gc <= rc, "grouping cut {gc} worse than round-robin {rc}");
    }

    #[test]
    fn grouping_beats_round_robin_on_a_chain() {
        // A chain of equal grids: round-robin over 3 groups cuts every edge;
        // the grouping strategy keeps runs of the chain together.
        let n = 6;
        let sizes = vec![100; n];
        let mut adj = AdjacencyMatrix::new(n);
        for i in 0..n - 1 {
            adj.connect(i, i + 1);
        }
        let grouped = group_grids(&sizes, 3, &adj);
        let rr = round_robin(&sizes, 3);
        let gc = grouped.cut_fraction(&adj, n);
        let rc = rr.cut_fraction(&adj, n);
        assert_eq!(rc, 1.0);
        assert!(gc < rc, "grouping cut {gc} not better than round-robin {rc}");
    }

    #[test]
    fn disconnected_grid_lands_in_smallest_group() {
        let sizes = vec![1000, 900, 10];
        let mut adj = AdjacencyMatrix::new(3);
        adj.connect(0, 1);
        let g = group_grids(&sizes, 2, &adj);
        // Grid 2 connects to nothing; it must take the lighter group.
        let m2 = g.group_of_grid[2];
        let other = 1 - m2;
        assert!(g.load[m2] - 10 <= g.load[other]);
    }

    #[test]
    fn single_group_takes_everything() {
        let sizes = vec![5, 10, 15];
        let adj = AdjacencyMatrix::new(3);
        let g = group_grids(&sizes, 1, &adj);
        assert_eq!(g.members[0].len(), 3);
        assert_eq!(g.load[0], 30);
        assert_eq!(g.imbalance(), 1.0);
    }

    #[test]
    fn more_groups_than_grids() {
        let sizes = vec![100, 200];
        let adj = AdjacencyMatrix::new(2);
        let g = group_grids(&sizes, 5, &adj);
        let nonempty = g.members.iter().filter(|m| !m.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn largest_grid_placed_first() {
        let sizes = vec![10, 9999, 20];
        let adj = AdjacencyMatrix::new(3);
        let g = group_grids(&sizes, 2, &adj);
        // With all grids disconnected, big grid sits alone in its group.
        let m = g.group_of_grid[1];
        assert_eq!(g.members[m][0], 1);
    }

    #[test]
    fn many_grids_scalable_and_deterministic() {
        // A 10x10 tile sheet with 4-neighbour connectivity into 7 groups.
        let n = 100;
        let sizes: Vec<usize> = (0..n).map(|i| 100 + (i * 37) % 400).collect();
        let mut adj = AdjacencyMatrix::new(n);
        for r in 0..10usize {
            for c in 0..10usize {
                let id = r * 10 + c;
                if c + 1 < 10 {
                    adj.connect(id, id + 1);
                }
                if r + 1 < 10 {
                    adj.connect(id, id + 10);
                }
            }
        }
        let a = group_grids(&sizes, 7, &adj);
        let b = group_grids(&sizes, 7, &adj);
        assert_eq!(a.group_of_grid, b.group_of_grid);
        // Algorithm 3 trades some balance for connectivity (groups snowball
        // along contiguous regions); it must stay within a moderate factor.
        assert!(a.imbalance() < 3.5, "imbalance {}", a.imbalance());
        assert!(a.cut_fraction(&adj, n) < round_robin(&sizes, 7).cut_fraction(&adj, n));
    }
}
