//! Algorithm 1: the static load-balance routine.
//!
//! Distributes `NP` processors over component grids proportionally to their
//! gridpoint counts `g(n)` via the paper's ε/τ tolerance iteration:
//!
//! ```text
//! 1. ε = G / NP, τ = 0, Δτ ~ 0.1
//! 2. DO until Σ np(n) = NP
//!      np(n) = int(g(n) / ε), subject to np(n) >= 1
//!      τ = τ + Δτ;  tighten ε by the tolerance
//! ```
//!
//! ε starts at the perfectly balanced points-per-processor value; each
//! iteration loosens the tolerance until the integer subdomain counts sum to
//! exactly `NP`. (The paper's text prints the update as `ε·(1+τ)`; for the
//! loop to close the "Σ np < NP" gap it describes, ε must *shrink* with τ,
//! so this implementation uses `ε = ε₀ / (1+τ)` — τ remains exactly the
//! paper's measure of the achieved load imbalance.)
//!
//! Degenerate integer cases (e.g. 3 processors over two equal grids) never
//! make the sum hit `NP` exactly; the paper's escape — perturb `g(n)` by the
//! grid index `n` and restart — is implemented too, plus a final greedy
//! exact-fit fallback so the routine is total.
//!
//! The routine also honours per-grid *minimum* subdomain counts, which is how
//! the dynamic scheme (Algorithm 2) re-runs it with extra processors granted
//! to connectivity-bound grids.

use overset_grid::{lattice_feasible_min, Dims};

/// Outcome of the static balance routine.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticBalance {
    /// Processors assigned to each grid (Σ = NP, each ≥ 1).
    pub np: Vec<usize>,
    /// Final tolerance factor τ: 0 means perfectly balanced; larger values
    /// indicate higher degrees of load imbalance (paper's metric).
    pub tau: f64,
    /// Whether the index-perturbation escape hatch was needed.
    pub perturbed: bool,
}

/// Errors from impossible inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BalanceError {
    /// Fewer processors than grids (np(n) >= 1 unsatisfiable).
    TooFewProcessors { grids: usize, processors: usize },
    /// Σ of enforced minima exceeds NP.
    MinimaExceedProcessors { minima_sum: usize, processors: usize },
    /// No gridpoints at all.
    EmptySystem,
    /// [`fit_np_to_dims`] could not find splittable per-grid counts that sum
    /// to NP (pathological dimensions, e.g. all grids a single point wide).
    NoFeasibleFit { processors: usize },
}

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalanceError::TooFewProcessors { grids, processors } => {
                write!(f, "{processors} processors cannot cover {grids} grids (need >= 1 each)")
            }
            BalanceError::MinimaExceedProcessors { minima_sum, processors } => {
                write!(f, "enforced minima sum to {minima_sum} > {processors} processors")
            }
            BalanceError::EmptySystem => write!(f, "no gridpoints in any component grid"),
            BalanceError::NoFeasibleFit { processors } => {
                write!(f, "no lattice-splittable per-grid counts sum to {processors} processors")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

/// Run Algorithm 1 with no per-grid minima.
pub fn static_balance(g: &[usize], nproc: usize) -> Result<StaticBalance, BalanceError> {
    static_balance_with_minima(g, nproc, &vec![1; g.len()])
}

/// Run Algorithm 1 with per-grid minimum subdomain counts (each effectively
/// at least 1).
pub fn static_balance_with_minima(
    g: &[usize],
    nproc: usize,
    minima: &[usize],
) -> Result<StaticBalance, BalanceError> {
    assert_eq!(g.len(), minima.len());
    let n = g.len();
    if n == 0 || g.iter().sum::<usize>() == 0 {
        return Err(BalanceError::EmptySystem);
    }
    if nproc < n {
        return Err(BalanceError::TooFewProcessors { grids: n, processors: nproc });
    }
    let minima: Vec<usize> = minima.iter().map(|&m| m.max(1)).collect();
    let minima_sum: usize = minima.iter().sum();
    if minima_sum > nproc {
        return Err(BalanceError::MinimaExceedProcessors { minima_sum, processors: nproc });
    }

    // Paper escape hatch: perturb g(n) by the grid index and restart when the
    // tolerance loop fails to converge.
    let mut gp: Vec<f64> = g.iter().map(|&x| x as f64).collect();
    for attempt in 0..6 {
        if let Some((np, tau)) = tolerance_loop(&gp, nproc, &minima) {
            return Ok(StaticBalance { np, tau, perturbed: attempt > 0 });
        }
        for (i, v) in gp.iter_mut().enumerate() {
            *v += (i + 1) as f64 * (attempt + 1) as f64;
        }
    }
    // Greedy exact fit: proportional floor assignment plus largest-remainder
    // distribution. Always succeeds; τ reported as the resulting imbalance.
    let np = exact_fit(&gp, nproc, &minima);
    let tau = imbalance_tau(g, &np);
    Ok(StaticBalance { np, tau, perturbed: true })
}

/// The ε/τ iteration itself. Returns `None` when it fails to hit NP exactly
/// within the iteration budget.
fn tolerance_loop(g: &[f64], nproc: usize, minima: &[usize]) -> Option<(Vec<usize>, f64)> {
    let total: f64 = g.iter().sum();
    let eps0 = total / nproc as f64;
    let dtau = 0.1;
    let mut tau = 0.0;
    for _ in 0..2000 {
        let eps = eps0 / (1.0 + tau);
        let np: Vec<usize> =
            g.iter().zip(minima).map(|(&gi, &mi)| ((gi / eps) as usize).max(mi)).collect();
        let sum: usize = np.iter().sum();
        if sum == nproc {
            return Some((np, tau));
        }
        if sum > nproc {
            // Overshot between tolerance steps: no exact fit on this path.
            return None;
        }
        tau += dtau;
    }
    None
}

/// Largest-remainder proportional assignment honouring minima.
fn exact_fit(g: &[f64], nproc: usize, minima: &[usize]) -> Vec<usize> {
    let total: f64 = g.iter().sum();
    let mut np: Vec<usize> = g
        .iter()
        .zip(minima)
        .map(|(&gi, &mi)| ((gi / total * nproc as f64).floor() as usize).max(mi))
        .collect();
    // Adjust downward if floors + minima overshoot.
    while np.iter().sum::<usize>() > nproc {
        // Shrink the grid with the fewest points per processor whose count
        // is still above its minimum.
        let cand = (0..g.len())
            .filter(|&i| np[i] > minima[i])
            .min_by(|&a, &b| {
                let ra = g[a] / np[a] as f64;
                let rb = g[b] / np[b] as f64;
                ra.partial_cmp(&rb).unwrap()
            })
            .expect("minima certified to fit");
        np[cand] -= 1;
    }
    // Distribute leftovers to the most loaded grids.
    while np.iter().sum::<usize>() < nproc {
        let cand = (0..g.len())
            .max_by(|&a, &b| {
                let ra = g[a] / np[a] as f64;
                let rb = g[b] / np[b] as f64;
                ra.partial_cmp(&rb).unwrap()
            })
            .unwrap();
        np[cand] += 1;
    }
    np
}

/// The paper's imbalance measure recovered from an assignment: the smallest
/// τ ≥ 0 such that every `np(n) = int(g(n)/ε₀·(1+τ))`-style bound is
/// satisfied; practically, `max(points per proc) / ideal - 1`.
pub fn imbalance_tau(g: &[usize], np: &[usize]) -> f64 {
    let total: f64 = g.iter().map(|&x| x as f64).sum();
    let nproc: usize = np.iter().sum();
    let ideal = total / nproc as f64;
    let worst = g.iter().zip(np).map(|(&gi, &ni)| gi as f64 / ni as f64).fold(0.0f64, f64::max);
    (worst / ideal - 1.0).max(0.0)
}

/// Largest lattice-feasible subdomain count ≤ `want` for this grid (1 is
/// always feasible for a non-empty grid).
fn feasible_at_most(dims: Dims, want: usize, min: [usize; 3]) -> usize {
    let mut k = want.min(dims.count()).max(1);
    while k > 1 && !lattice_feasible_min(dims, k, min) {
        k -= 1;
    }
    k
}

/// Smallest lattice-feasible count > `cur`, or `None` when the grid is
/// already at its splitting limit.
fn feasible_above(dims: Dims, cur: usize, min: [usize; 3]) -> Option<usize> {
    ((cur + 1)..=dims.count()).find(|&k| lattice_feasible_min(dims, k, min))
}

/// Repair a processor assignment so every grid's count is splittable by the
/// prime-factor rule, preserving Σ np = NP.
///
/// Algorithm 1 reasons only about point counts, so at large NP it can hand a
/// grid a *prime* subdomain count whose single factor exceeds every index
/// dimension — [`lattice_split`](overset_grid::decomp::lattice_split) would
/// panic. This pass clamps each grid down to its largest feasible count, then
/// regrants the freed processors greedily to the most loaded grid whose next
/// feasible count fits the remaining deficit (shrinking the least loaded
/// grid one notch when no grant fits). Assignments that are already feasible
/// — every configuration the seed could run — pass through unchanged.
pub fn fit_np_to_dims(
    g: &[usize],
    dims: &[Dims],
    np: &[usize],
) -> Result<Vec<usize>, BalanceError> {
    fit_np_to_dims_min(g, dims, np, &vec![[1, 1, 1]; g.len()])
}

/// [`fit_np_to_dims`] with per-grid minimum subdomain widths (see
/// [`lattice_feasible_min`]): `min_widths[n][t]` is the fewest nodes every
/// piece of grid `n` must keep along direction `t`. The driver passes
/// `[2, 1, 1]` for periodic O-grids so the seam subdomain's cyclic solve is
/// never empty.
pub fn fit_np_to_dims_min(
    g: &[usize],
    dims: &[Dims],
    np: &[usize],
    min_widths: &[[usize; 3]],
) -> Result<Vec<usize>, BalanceError> {
    assert_eq!(g.len(), dims.len());
    assert_eq!(g.len(), np.len());
    assert_eq!(g.len(), min_widths.len());
    let nproc: usize = np.iter().sum();
    let mut fit: Vec<usize> = dims
        .iter()
        .zip(np)
        .zip(min_widths)
        .map(|((&d, &n), &m)| feasible_at_most(d, n, m))
        .collect();
    let per_proc = |fit: &[usize], i: usize| g[i] as f64 / fit[i] as f64;
    for _ in 0..(10 * nproc + 100) {
        // Invariant: clamping and shrinking only reduce, grants never exceed
        // the deficit, so Σ fit ≤ NP throughout.
        let deficit = nproc - fit.iter().sum::<usize>();
        if deficit == 0 {
            return Ok(fit);
        }
        // Grant to the most points-per-processor grid whose next feasible
        // count does not overshoot the deficit.
        let grant = (0..g.len())
            .filter_map(|i| feasible_above(dims[i], fit[i], min_widths[i]).map(|nx| (i, nx)))
            .filter(|&(i, nx)| nx - fit[i] <= deficit)
            .max_by(|&(a, _), &(b, _)| per_proc(&fit, a).partial_cmp(&per_proc(&fit, b)).unwrap());
        if let Some((i, nx)) = grant {
            fit[i] = nx;
            continue;
        }
        // No grant fits: free capacity by shrinking the least loaded grid
        // that can still give up a notch.
        let shrink = (0..g.len())
            .filter(|&i| fit[i] > 1)
            .min_by(|&a, &b| per_proc(&fit, a).partial_cmp(&per_proc(&fit, b)).unwrap());
        match shrink {
            Some(i) => fit[i] = feasible_at_most(dims[i], fit[i] - 1, min_widths[i]),
            None => break,
        }
    }
    Err(BalanceError::NoFeasibleFit { processors: nproc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::lattice_feasible;

    #[test]
    fn equal_grids_divisible() {
        let b = static_balance(&[1000, 1000, 1000], 9).unwrap();
        assert_eq!(b.np, vec![3, 3, 3]);
        assert!(b.tau < 0.2, "tau = {}", b.tau);
    }

    #[test]
    fn proportional_assignment() {
        let b = static_balance(&[4000, 2000, 2000], 8).unwrap();
        assert_eq!(b.np.iter().sum::<usize>(), 8);
        assert_eq!(b.np, vec![4, 2, 2]);
    }

    #[test]
    fn paper_degenerate_case_three_over_two_equal() {
        // Two equal grids, three processors: the pure tolerance loop cannot
        // decide; the index perturbation must break the tie.
        let b = static_balance(&[5000, 5000], 3).unwrap();
        assert_eq!(b.np.iter().sum::<usize>(), 3);
        assert!(b.np.iter().all(|&x| x >= 1));
        assert!(b.np.contains(&2) && b.np.contains(&1));
    }

    #[test]
    fn tiny_grid_still_gets_one() {
        let b = static_balance(&[100_000, 50], 8).unwrap();
        assert_eq!(b.np.iter().sum::<usize>(), 8);
        assert!(b.np[1] >= 1);
        assert!(b.np[0] >= 6);
    }

    #[test]
    fn minima_are_honoured() {
        let b = static_balance_with_minima(&[10_000, 10_000, 10_000], 12, &[1, 6, 1]).unwrap();
        assert_eq!(b.np.iter().sum::<usize>(), 12);
        assert!(b.np[1] >= 6, "np = {:?}", b.np);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(
            static_balance(&[10, 10, 10], 2),
            Err(BalanceError::TooFewProcessors { grids: 3, processors: 2 })
        );
        assert_eq!(
            static_balance_with_minima(&[10, 10], 3, &[2, 2]),
            Err(BalanceError::MinimaExceedProcessors { minima_sum: 4, processors: 3 })
        );
        assert_eq!(static_balance(&[], 4), Err(BalanceError::EmptySystem));
        assert_eq!(static_balance(&[0, 0], 4), Err(BalanceError::EmptySystem));
    }

    #[test]
    fn airfoil_like_case() {
        // Three near-equal grids as in the paper's first test problem, on the
        // paper's processor counts.
        let g = [21_200, 21_275, 21_316];
        for nproc in [6, 9, 12, 18, 24] {
            let b = static_balance(&g, nproc).unwrap();
            assert_eq!(b.np.iter().sum::<usize>(), nproc, "nproc = {nproc}");
            // Near-equal grids should get near-equal processors.
            let mn = b.np.iter().min().unwrap();
            let mx = b.np.iter().max().unwrap();
            assert!(mx - mn <= 1, "nproc {nproc}: np = {:?}", b.np);
        }
    }

    #[test]
    fn store_like_case_many_grids() {
        // 16 grids of varied sizes on 16..61 processors: always exact.
        let g = [
            18_000, 28_000, 28_000, 14_000, 8_000, 10_000, 10_000, 10_000, 10_000, 13_000, 110_000,
            32_000, 17_000, 160_000, 100_000, 40_000,
        ];
        for nproc in [16, 18, 22, 28, 35, 42, 52, 61] {
            let b = static_balance(&g, nproc).unwrap();
            assert_eq!(b.np.iter().sum::<usize>(), nproc, "nproc = {nproc}");
            assert!(b.np.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn tau_zero_means_perfect() {
        assert_eq!(imbalance_tau(&[100, 100], &[1, 1]), 0.0);
        let t = imbalance_tau(&[300, 100], &[1, 1]);
        assert!((t - 0.5).abs() < 1e-12, "tau = {t}"); // worst 300 vs ideal 200
    }

    #[test]
    fn larger_tau_for_worse_balance() {
        let good = imbalance_tau(&[100, 100, 100], &[1, 1, 1]);
        let bad = imbalance_tau(&[100, 100, 100], &[1, 1, 4]); // starves others? no: worst is 100/1 vs ideal 300/6=50
        assert!(bad > good);
    }

    #[test]
    fn single_grid_takes_all() {
        let b = static_balance(&[64_000], 24).unwrap();
        assert_eq!(b.np, vec![24]);
    }

    #[test]
    fn fit_is_identity_on_feasible_assignments() {
        let dims = [Dims::new(30, 20, 10), Dims::new(24, 18, 12)];
        let g = [6_000, 5_184];
        let np = [12, 8];
        assert_eq!(fit_np_to_dims(&g, &dims, &np).unwrap(), vec![12, 8]);
    }

    #[test]
    fn fit_repairs_prime_counts() {
        // 37 is prime and exceeds every dimension of the first grid; the
        // repair must trade with the second grid while keeping the sum.
        let dims = [Dims::new(29, 8, 15), Dims::new(32, 21, 28)];
        let g = [29 * 8 * 15, 32 * 21 * 28];
        let np = [37, 13];
        let fit = fit_np_to_dims(&g, &dims, &np).unwrap();
        assert_eq!(fit.iter().sum::<usize>(), 50);
        for (i, (&d, &n)) in dims.iter().zip(&fit).enumerate() {
            assert!(lattice_feasible(d, n), "grid {i}: np {n} infeasible for {d:?}");
        }
    }

    #[test]
    fn fit_handles_large_universes() {
        // Shapes and scale mirroring the store case at 512/1024 ranks, where
        // Algorithm 1 hands out prime counts like 73 and 47.
        let dims = [
            Dims::new(46, 25, 35),
            Dims::new(32, 21, 28),
            Dims::new(23, 14, 18),
            Dims::new(18, 9, 12),
        ];
        let g: Vec<usize> = dims.iter().map(|d| d.count()).collect();
        for nproc in [256usize, 512, 1024] {
            let b = static_balance(&g, nproc).unwrap();
            let fit = fit_np_to_dims(&g, &dims, &b.np).unwrap();
            assert_eq!(fit.iter().sum::<usize>(), nproc, "nproc = {nproc}");
            for (i, (&d, &n)) in dims.iter().zip(&fit).enumerate() {
                assert!(lattice_feasible(d, n), "nproc {nproc} grid {i}: np {n} for {d:?}");
            }
        }
    }
}
