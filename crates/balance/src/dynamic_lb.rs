//! Algorithm 2: the dynamic load-balance scheme for the connectivity
//! solution.
//!
//! After a specified number of timesteps, the driver measures `I(p)` — the
//! number of inter-grid boundary points *received for search* by each
//! processor (the donor-search service load). With `Ī` the global mean and
//! `f(p) = I(p)/Ī`, every processor whose `f(p)` exceeds the user threshold
//! `f_o` earns one extra processor for the grid it serves; the static
//! routine then re-runs with those counts enforced as minima.
//!
//! `f_o = ∞` disables rebalancing entirely (flow-solver-optimal partition);
//! `f_o → 1` keeps chasing connectivity balance at the flow solver's expense
//! — the central trade-off of the paper.

use crate::static_lb::{static_balance_with_minima, BalanceError, StaticBalance};
use overset_comm::metrics::{names, MetricsRegistry};
use overset_comm::OversetError;

impl From<BalanceError> for OversetError {
    fn from(e: BalanceError) -> Self {
        OversetError::Config(e.to_string())
    }
}

/// Windowed reader of the serviced-searches counter: measures `I(p)` for
/// Algorithm 2 straight from the rank's [`MetricsRegistry`] (the single
/// source of truth for service load) instead of a privately kept tally.
///
/// The driver opens a window after each balance check; `mean_per_step`
/// returns the integer per-step mean the algorithm consumes.
#[derive(Clone, Copy, Debug)]
pub struct ServiceWindow {
    /// Counter value when the window opened.
    start: u64,
    /// Connectivity steps observed in the window.
    steps: usize,
}

impl ServiceWindow {
    /// Open a window at the counter's current value.
    pub fn begin(metrics: &MetricsRegistry) -> Self {
        ServiceWindow { start: metrics.counter(names::CONN_SERVICED), steps: 0 }
    }

    /// Record that one connectivity step ran inside the window.
    pub fn note_step(&mut self) {
        self.steps += 1;
    }

    /// Mean serviced points per step over the window. Integer division —
    /// Algorithm 2 consumes integer I(p) counts.
    pub fn mean_per_step(&self, metrics: &MetricsRegistry) -> usize {
        let total = metrics.counter(names::CONN_SERVICED).saturating_sub(self.start);
        total as usize / self.steps.max(1)
    }

    /// Re-open the window at the counter's current value.
    pub fn reset(&mut self, metrics: &MetricsRegistry) {
        self.start = metrics.counter(names::CONN_SERVICED);
        self.steps = 0;
    }
}

/// One evaluation of the dynamic scheme.
#[derive(Clone, Debug)]
pub struct DynamicDecision {
    /// New per-grid processor counts (Σ = NP), or `None` if no processor
    /// exceeded the threshold (partition unchanged).
    pub rebalance: Option<StaticBalance>,
    /// Measured `f(p)` per processor.
    pub f: Vec<f64>,
    /// Largest `f(p)` observed (the paper reports ≈7 for the store case).
    pub f_max: f64,
    /// Grids granted an extra processor this round.
    pub granted: Vec<usize>,
}

/// Evaluate Algorithm 2.
///
/// * `igbp_received[p]` — I(p): non-local IGBPs serviced by processor `p`,
/// * `grid_of_rank[p]` — which component grid processor `p` is assigned to,
/// * `g` — gridpoint counts per grid,
/// * `np` — current per-grid processor counts,
/// * `fo` — load balance threshold (use `f64::INFINITY` to disable).
pub fn dynamic_rebalance(
    igbp_received: &[usize],
    grid_of_rank: &[usize],
    g: &[usize],
    np: &[usize],
    fo: f64,
) -> Result<DynamicDecision, BalanceError> {
    assert_eq!(igbp_received.len(), grid_of_rank.len());
    assert_eq!(g.len(), np.len());
    let nproc: usize = np.iter().sum();
    assert_eq!(nproc, igbp_received.len());

    let mean = igbp_received.iter().sum::<usize>() as f64 / nproc as f64;
    let f: Vec<f64> = if mean > 0.0 {
        igbp_received.iter().map(|&i| i as f64 / mean).collect()
    } else {
        vec![0.0; nproc]
    };
    let f_max = f.iter().copied().fold(0.0f64, f64::max);

    // Minimum counts: only *granted* grids have the "np(n) = np(n) + 1"
    // condition enforced in the static re-run; every other grid is free for
    // the balancer to shrink (that freedom is exactly what degrades the flow
    // solve). A grid with several over-threshold processors still gains one
    // per evaluation — the scheme converges over repeated checks, matching
    // the paper's "check solution after specified number of timesteps" loop.
    let mut minima = vec![1usize; np.len()];
    let mut granted = Vec::new();
    for (p, &fp) in f.iter().enumerate() {
        let n = grid_of_rank[p];
        if fp > fo && !granted.contains(&n) {
            minima[n] = np[n] + 1;
            granted.push(n);
        }
    }
    if granted.is_empty() {
        return Ok(DynamicDecision { rebalance: None, f, f_max, granted });
    }
    // Σ minima may exceed NP when many grids are over threshold at once;
    // shed grants from the least-loaded granted grids until feasible.
    granted.sort_unstable();
    let mut minima_sum: usize = minima.iter().sum();
    while minima_sum > nproc && !granted.is_empty() {
        let drop = *granted
            .iter()
            .min_by(|&&a, &&b| {
                let ra = g[a] as f64 / np[a] as f64;
                let rb = g[b] as f64 / np[b] as f64;
                ra.partial_cmp(&rb).unwrap()
            })
            .expect("granted non-empty while infeasible");
        granted.retain(|&x| x != drop);
        minima[drop] = 1;
        minima_sum = minima.iter().sum();
        if granted.is_empty() {
            return Ok(DynamicDecision { rebalance: None, f, f_max, granted });
        }
    }
    let rebalance = static_balance_with_minima(g, nproc, &minima)?;
    Ok(DynamicDecision { rebalance: Some(rebalance), f, f_max, granted })
}

/// Service-load imbalance metric: max(I)/mean(I), 1.0 = perfectly balanced.
pub fn service_imbalance(igbp_received: &[usize]) -> f64 {
    if igbp_received.is_empty() {
        return 1.0;
    }
    let mean = igbp_received.iter().sum::<usize>() as f64 / igbp_received.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    igbp_received.iter().copied().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_fo_never_rebalances() {
        let i = [100, 5000, 10, 10];
        let d =
            dynamic_rebalance(&i, &[0, 0, 1, 1], &[1000, 1000], &[2, 2], f64::INFINITY).unwrap();
        assert!(d.rebalance.is_none());
        assert!(d.f_max > 3.0);
    }

    #[test]
    fn hot_grid_gets_extra_processor() {
        // Grid 0's two processors service almost all searches.
        let i = [4000, 4500, 10, 10, 10, 10];
        let grid_of_rank = [0, 0, 1, 1, 1, 1];
        let d = dynamic_rebalance(&i, &grid_of_rank, &[3000, 6000], &[2, 4], 2.0).unwrap();
        let rb = d.rebalance.expect("should rebalance");
        assert_eq!(rb.np.iter().sum::<usize>(), 6);
        assert!(rb.np[0] >= 3, "np = {:?}", rb.np);
        assert_eq!(d.granted, vec![0]);
    }

    #[test]
    fn balanced_load_no_change() {
        let i = [100, 110, 95, 105];
        let d = dynamic_rebalance(&i, &[0, 0, 1, 1], &[2000, 2000], &[2, 2], 5.0).unwrap();
        assert!(d.rebalance.is_none());
        assert!(d.f_max < 1.2);
    }

    #[test]
    fn f_values_normalized_by_mean() {
        let i = [0, 0, 0, 400];
        let d =
            dynamic_rebalance(&i, &[0, 0, 1, 1], &[2000, 2000], &[2, 2], f64::INFINITY).unwrap();
        assert!((d.f_max - 4.0).abs() < 1e-12);
        assert!((d.f[3] - 4.0).abs() < 1e-12);
        assert_eq!(d.f[0], 0.0);
    }

    #[test]
    fn zero_searches_everywhere() {
        let d = dynamic_rebalance(&[0, 0], &[0, 1], &[100, 100], &[1, 1], 2.0).unwrap();
        assert!(d.rebalance.is_none());
        assert_eq!(d.f_max, 0.0);
    }

    #[test]
    fn infeasible_grants_are_shed() {
        // Every grid over threshold, but each already has 1 proc and NP = 3:
        // only some grants can be honoured.
        let i = [1000, 900, 800];
        let d = dynamic_rebalance(&i, &[0, 1, 2], &[100, 100, 100], &[1, 1, 1], 0.5).unwrap();
        // Minima cannot all be 2 with NP = 3: at most one grant survives
        // and the result remains a valid partition.
        if let Some(rb) = &d.rebalance {
            assert_eq!(rb.np.iter().sum::<usize>(), 3);
            assert!(rb.np.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn repeated_rounds_shift_processors_toward_service_load() {
        // Start flow-optimal; iterate the dynamic scheme with a synthetic
        // service model where grid 1 always hosts 80% of searches.
        let g = [50_000usize, 50_000];
        let mut np = vec![4usize, 4];
        for _round in 0..3 {
            let nproc: usize = np.iter().sum();
            let mut grid_of_rank = Vec::new();
            for (n, &c) in np.iter().enumerate() {
                grid_of_rank.extend(std::iter::repeat_n(n, c));
            }
            // 20% of searches to grid 0's ranks, 80% to grid 1's.
            let total = 10_000f64;
            let i: Vec<usize> = grid_of_rank
                .iter()
                .map(|&n| {
                    let share = if n == 0 { 0.2 } else { 0.8 };
                    (total * share / np[n] as f64) as usize
                })
                .collect();
            let d = dynamic_rebalance(&i, &grid_of_rank, &g, &np, 1.2).unwrap();
            if let Some(rb) = d.rebalance {
                assert_eq!(rb.np.iter().sum::<usize>(), nproc);
                np = rb.np;
            }
        }
        assert!(np[1] > np[0], "processors should migrate to grid 1: {np:?}");
    }

    #[test]
    fn service_window_reads_counter_deltas() {
        let mut m = MetricsRegistry::new();
        m.add(names::CONN_SERVICED, 100); // pre-window history is excluded
        let mut w = ServiceWindow::begin(&m);
        m.add(names::CONN_SERVICED, 7);
        w.note_step();
        m.add(names::CONN_SERVICED, 8);
        w.note_step();
        assert_eq!(w.mean_per_step(&m), 7); // 15 / 2, integer division
        w.reset(&m);
        assert_eq!(w.mean_per_step(&m), 0);
        m.add(names::CONN_SERVICED, 9);
        w.note_step();
        assert_eq!(w.mean_per_step(&m), 9);
    }

    #[test]
    fn balance_error_converts_to_overset_error() {
        let e: OversetError = BalanceError::EmptySystem.into();
        assert!(matches!(e, OversetError::Config(_)));
        assert!(e.to_string().contains("gridpoints"));
    }

    #[test]
    fn service_imbalance_metric() {
        assert_eq!(service_imbalance(&[10, 10, 10]), 1.0);
        assert_eq!(service_imbalance(&[0, 0, 30]), 3.0);
        assert_eq!(service_imbalance(&[]), 1.0);
        assert_eq!(service_imbalance(&[0, 0]), 1.0);
    }
}
