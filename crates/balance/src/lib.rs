//! Load balancing for parallel dynamic overset grid computations — the
//! primary contribution of Wissink & Meakin (SC'97).
//!
//! * [`static_lb`] — Algorithm 1: distribute processors over component grids
//!   proportionally to gridpoints (ε/τ tolerance iteration), minimizing
//!   flow-solver imbalance,
//! * [`dynamic_lb`] — Algorithm 2: measure the donor-search service load
//!   `I(p)`, and when `f(p) = I(p)/Ī` exceeds the user threshold `f_o`,
//!   grant extra processors to connectivity-bound grids and re-run the
//!   static routine,
//! * [`grouping`] — Algorithm 3: gather many small Cartesian grids into
//!   balanced, connectivity-preserving processor groups (Section 5 scheme),
//! * [`partition`] — concrete rank ↔ (grid, subdomain) maps built on the
//!   prime-factor splitting.

pub mod dynamic_lb;
pub mod grouping;
pub mod partition;
pub mod static_lb;

pub use dynamic_lb::{dynamic_rebalance, service_imbalance, DynamicDecision, ServiceWindow};
pub use grouping::{group_grids, round_robin, AdjacencyMatrix, Connectivity, Grouping};
pub use partition::{Partition, RankAssignment};
pub use static_lb::{
    fit_np_to_dims, fit_np_to_dims_min, imbalance_tau, static_balance, static_balance_with_minima,
    BalanceError, StaticBalance,
};
