//! Property-based tests of the load-balancing algorithms.

use overset_balance::{
    dynamic_rebalance, group_grids, round_robin, static_balance, AdjacencyMatrix, Partition,
};
use overset_grid::Dims;
use proptest::prelude::*;

proptest! {
    /// Algorithm 1 always produces an exact cover: Σ np = NP and np ≥ 1.
    #[test]
    fn static_balance_is_total_and_exact(
        sizes in prop::collection::vec(1usize..200_000, 1..20),
        extra in 0usize..80,
    ) {
        let nproc = sizes.len() + extra;
        let b = static_balance(&sizes, nproc).unwrap();
        prop_assert_eq!(b.np.iter().sum::<usize>(), nproc);
        prop_assert!(b.np.iter().all(|&x| x >= 1));
        prop_assert!(b.tau >= 0.0);
    }

    /// Bigger grids never get fewer processors than much smaller grids
    /// (monotonicity up to integer rounding: a grid at least 2x larger
    /// cannot get fewer processors).
    #[test]
    fn static_balance_roughly_monotone(
        sizes in prop::collection::vec(1_000usize..100_000, 2..10),
        extra in 0usize..40,
    ) {
        let nproc = sizes.len() + extra;
        let b = static_balance(&sizes, nproc).unwrap();
        for i in 0..sizes.len() {
            for j in 0..sizes.len() {
                if sizes[i] >= 2 * sizes[j] {
                    prop_assert!(
                        b.np[i] + 1 >= b.np[j],
                        "grid {} ({} pts, np {}) vs grid {} ({} pts, np {})",
                        i, sizes[i], b.np[i], j, sizes[j], b.np[j]
                    );
                }
            }
        }
    }

    /// Algorithm 2 preserves the processor count and only rebalances when
    /// some f(p) exceeds the threshold.
    #[test]
    fn dynamic_rebalance_preserves_processor_count(
        loads in prop::collection::vec(0usize..10_000, 4..24),
        fo in 1.0f64..10.0,
    ) {
        let nproc = loads.len();
        // Two grids, processors split evenly-ish.
        let np = vec![nproc / 2, nproc - nproc / 2];
        let g = vec![50_000usize, 50_000];
        let grid_of_rank: Vec<usize> =
            (0..nproc).map(|p| usize::from(p >= np[0])).collect();
        let d = dynamic_rebalance(&loads, &grid_of_rank, &g, &np, fo).unwrap();
        if let Some(rb) = &d.rebalance {
            prop_assert_eq!(rb.np.iter().sum::<usize>(), nproc);
            prop_assert!(d.f_max > fo);
        } else {
            // No action: every measured ratio was within threshold, or the
            // grant was infeasible.
            prop_assert!(d.granted.is_empty());
        }
    }

    /// Algorithm 3 assigns every grid exactly once and never loses points.
    #[test]
    fn grouping_partitions_grids(
        sizes in prop::collection::vec(1usize..5_000, 1..60),
        ngroups in 1usize..12,
        edges in prop::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let n = sizes.len();
        let mut adj = AdjacencyMatrix::new(n);
        for (a, b) in edges {
            if a < n && b < n && a != b {
                adj.connect(a, b);
            }
        }
        let g = group_grids(&sizes, ngroups, &adj);
        prop_assert_eq!(g.group_of_grid.len(), n);
        prop_assert!(g.group_of_grid.iter().all(|&m| m < ngroups));
        let total: usize = g.load.iter().sum();
        prop_assert_eq!(total, sizes.iter().sum::<usize>());
        let member_count: usize = g.members.iter().map(|m| m.len()).sum();
        prop_assert_eq!(member_count, n);
        // Round-robin is the balance reference: Algorithm 3 may trade some
        // balance for locality but must not collapse everything into one
        // group when several are available.
        if ngroups > 1 && n >= 2 * ngroups {
            let nonempty = g.members.iter().filter(|m| !m.is_empty()).count();
            prop_assert!(nonempty > 1, "all grids in one group");
        }
        let _ = round_robin(&sizes, ngroups);
    }

    /// Partition construction covers every node of every grid exactly once.
    #[test]
    fn partition_covers_grids(
        dims in prop::collection::vec((4usize..40, 4usize..40), 1..5),
        extra in 0usize..12,
    ) {
        let dims: Vec<Dims> = dims.into_iter().map(|(a, b)| Dims::new(a, b, 1)).collect();
        let sizes: Vec<usize> = dims.iter().map(|d| d.count()).collect();
        let nproc = dims.len() + extra;
        let bal = static_balance(&sizes, nproc).unwrap();
        // Skip combinations the lattice splitter legitimately cannot honour
        // (a prime factor of np larger than every grid dimension).
        let dims2 = dims.clone();
        let np2 = bal.np.clone();
        let built = std::panic::catch_unwind(move || Partition::build(&dims2, &np2));
        prop_assume!(built.is_ok());
        let part = built.unwrap();
        prop_assert_eq!(part.nranks(), nproc);
        for (gi, d) in dims.iter().enumerate() {
            let covered: usize = part
                .ranks_of_grid(gi)
                .map(|r| part.ranks[r].boxx.count())
                .sum();
            prop_assert_eq!(covered, d.count());
        }
    }
}
