//! Golden byte-determinism tests: the serialized report of a real case run
//! must be byte-identical across repeated runs (host scheduling must not
//! leak in) and across trace-on/trace-off (observability must be
//! physics/timing-neutral).

use overflow_d::{airfoil_case, run_case, CaseConfig};
use overset_comm::trace::TraceConfig;
use overset_comm::MachineModel;
use overset_report::{case_report, parse, run_report, Value};

const NRANKS: usize = 4;

fn tiny_case(trace: TraceConfig) -> CaseConfig {
    let mut cfg = airfoil_case(0.2, 3);
    cfg.trace = trace;
    cfg
}

fn report_json(trace: TraceConfig) -> String {
    let machine = MachineModel::ibm_sp2();
    let cfg = tiny_case(trace);
    let r = run_case(&cfg, NRANKS, &machine).expect("tiny airfoil case runs");
    let case = case_report("representative", &cfg, machine.name, &r);
    run_report("golden", "quick", vec![case], None).to_json()
}

#[test]
fn report_is_byte_identical_across_runs() {
    let a = report_json(TraceConfig::disabled());
    let b = report_json(TraceConfig::disabled());
    assert_eq!(a, b, "two identical runs must serialize to identical bytes");
}

#[test]
fn report_is_byte_identical_across_trace_on_off() {
    let off = report_json(TraceConfig::disabled());
    let on = report_json(TraceConfig::enabled());
    assert_eq!(on, off, "tracing must not perturb any reported quantity");
}

#[test]
fn report_has_expected_shape_and_roundtrips() {
    let text = report_json(TraceConfig::disabled());
    let doc = parse(&text).expect("report parses back");
    assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
    let cases = doc.get("cases").and_then(Value::as_arr).expect("cases array");
    assert_eq!(cases.len(), 1);
    let series = cases[0].get("series").and_then(Value::as_arr).expect("series array");
    assert_eq!(series.len(), 3, "one series element per timestep");
    for s in series {
        let f_max = s.get("f_max").and_then(Value::as_f64).expect("f_max present");
        assert!(f_max >= 1.0, "f_max is max/mean, so >= 1: {f_max}");
        assert!(s.get("t_flow").and_then(Value::as_f64).expect("t_flow") > 0.0);
    }
    // Re-serializing the parsed document reproduces the exact bytes.
    assert_eq!(doc.to_json(), text);
}
