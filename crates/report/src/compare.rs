//! Pass/fail comparison of two schema-v1 reports (the bench-gate verdict).
//!
//! Three classes of check, in decreasing strictness:
//!
//! 1. **Exact** — each case's `alloc` section (allocation counts and bytes
//!    per phase/rank/step) is deterministic for a fixed configuration, so
//!    any difference at all is a regression: zero tolerance, bit-gated.
//! 2. **Tolerance-banded** — the virtual-time `summary` metrics regress
//!    when they move in the *bad* direction by more than `tol_pct` percent
//!    of the baseline value (strictly worse at a zero baseline also
//!    counts: orphans appearing where there were none is a regression at
//!    any tolerance).
//! 3. **Noise-aware** — the optional `host.bench` section carries
//!    median/IQR host phase times from repeated runs (`repro bench-host`);
//!    a phase regresses only when the new median exceeds the baseline
//!    median by more than an IQR-derived tolerance, so genuine host-cost
//!    growth gates while machine noise does not.
//!
//! Single-run wall-clock data (`host.phase_ms` et al.) never gates — it
//! only produces advisory drift notes.

use crate::json::Value;
use crate::SCHEMA_VERSION;

/// Summary metrics where a larger value is worse.
const HIGHER_IS_WORSE: [&str; 10] = [
    "wall_time",
    "time_per_step",
    "t_flow",
    "t_connectivity",
    "t_motion",
    "t_balance",
    "t_other",
    "f_max_last",
    "f_max_peak",
    "orphans_last",
];

/// Summary metrics where a smaller value is worse.
const LOWER_IS_WORSE: [&str; 1] = ["cache_hit_rate"];

/// One metric that moved past tolerance in the bad direction.
#[derive(Clone, Debug)]
pub struct Regression {
    /// `"<case name> [<label>]"` identifying the run within the report.
    pub case: String,
    pub metric: String,
    pub baseline: f64,
    pub new: f64,
    /// Signed relative change in percent (infinite when baseline is 0).
    pub delta_pct: f64,
}

impl Regression {
    pub fn describe(&self) -> String {
        if self.delta_pct.is_finite() {
            format!(
                "{}: {} {} -> {} ({:+.2}%)",
                self.case, self.metric, self.baseline, self.new, self.delta_pct
            )
        } else {
            format!(
                "{}: {} {} -> {} (from zero baseline)",
                self.case, self.metric, self.baseline, self.new
            )
        }
    }
}

/// Result of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    pub regressions: Vec<Regression>,
    /// Number of metric comparisons performed across all cases.
    pub checked: usize,
    /// Non-fatal observations (skipped metrics, improvements worth noting).
    pub notes: Vec<String>,
}

impl CompareOutcome {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn case_key(case: &Value) -> String {
    let name = case.get("name").and_then(Value::as_str).unwrap_or("?");
    let label = case.get("label").and_then(Value::as_str).unwrap_or("?");
    format!("{name} [{label}]")
}

fn check_schema(doc: &Value, which: &str) -> Result<(), String> {
    match doc.get("schema_version").and_then(Value::as_u64) {
        Some(v) if v == SCHEMA_VERSION => Ok(()),
        Some(v) => Err(format!(
            "{which} report has schema_version {v}, this tool compares version \
             {SCHEMA_VERSION}; regenerate the baseline"
        )),
        None => Err(format!("{which} report is missing schema_version")),
    }
}

/// Compare `new` against `baseline` with a relative tolerance of `tol_pct`
/// percent. Errors (`Err`) are structural — wrong schema version, missing
/// sections — and distinct from a regression verdict.
pub fn compare(baseline: &Value, new: &Value, tol_pct: f64) -> Result<CompareOutcome, String> {
    check_schema(baseline, "baseline")?;
    check_schema(new, "new")?;
    let tol = tol_pct / 100.0;

    let base_cases = baseline
        .get("cases")
        .and_then(Value::as_arr)
        .ok_or("baseline report has no cases array")?;
    let new_cases =
        new.get("cases").and_then(Value::as_arr).ok_or("new report has no cases array")?;

    let mut out = CompareOutcome::default();
    for bc in base_cases {
        let key = case_key(bc);
        let Some(nc) = new_cases.iter().find(|c| case_key(c) == key) else {
            out.regressions.push(Regression {
                case: key,
                metric: "<case missing from new report>".into(),
                baseline: 1.0,
                new: 0.0,
                delta_pct: -100.0,
            });
            continue;
        };
        let bsum = bc.get("summary").ok_or_else(|| format!("{key}: baseline has no summary"))?;
        let nsum = nc.get("summary").ok_or_else(|| format!("{key}: new has no summary"))?;
        // Ring evictions mean the per-step series is a trailing window, not
        // the whole run; warn (a note, not a regression — the gated summary
        // metrics are end-of-run values and remain exact).
        for (side, sum) in [("baseline", bsum), ("new", nsum)] {
            if let Some(d) = sum.get("steps_dropped").and_then(Value::as_f64) {
                if d > 0.0 {
                    out.notes.push(format!(
                        "{key}: warning: {side} dropped {d} step records (flight-recorder \
                         ring eviction); its series covers a truncated window"
                    ));
                }
            }
        }
        for metric in HIGHER_IS_WORSE {
            compare_metric(&mut out, &key, metric, bsum, nsum, tol, /*higher_bad=*/ true);
        }
        for metric in LOWER_IS_WORSE {
            compare_metric(&mut out, &key, metric, bsum, nsum, tol, /*higher_bad=*/ false);
        }
        // Search-effort counters (walk steps, forwarded donor requests) are a
        // leading indicator for connectivity slowdowns — a blown-up walk count
        // often precedes a t_connectivity regression by one grid refinement.
        // They are advisory: warn past 20% growth, never fail the gate (the
        // virtual-time phase metrics above are the authoritative verdict).
        for metric in ["walk_steps_total", "forwards_total"] {
            warn_counter_growth(&mut out, &key, metric, bsum, nsum);
        }
        compare_alloc_exact(&mut out, &key, bc, nc);
    }
    note_host_phase_drift(&mut out, baseline, new);
    gate_host_bench(&mut out, baseline, new);
    Ok(out)
}

/// Allocation attribution is deterministic for a fixed configuration, so
/// the `alloc` section is compared **exactly**: any numeric or structural
/// difference is a regression, regardless of `tol_pct`. Reports lacking
/// the section on either side (older baseline) are skipped with a note.
fn compare_alloc_exact(out: &mut CompareOutcome, case: &str, bc: &Value, nc: &Value) {
    match (bc.get("alloc"), nc.get("alloc")) {
        (Some(b), Some(n)) => diff_exact(out, case, "alloc", b, n),
        (None, None) => {}
        _ => out.notes.push(format!(
            "{case}: alloc section not present in both reports, exact alloc gate skipped"
        )),
    }
}

/// Recursive exact diff of two JSON values; every numeric leaf compared
/// counts toward `checked`, every mismatch becomes a `Regression` whose
/// metric is the dotted path to the differing leaf.
fn diff_exact(out: &mut CompareOutcome, case: &str, path: &str, b: &Value, n: &Value) {
    let mismatch = |out: &mut CompareOutcome, b: f64, n: f64| {
        let delta_pct = if b != 0.0 { (n - b) / b * 100.0 } else { f64::INFINITY };
        out.regressions.push(Regression {
            case: case.to_string(),
            metric: path.to_string(),
            baseline: b,
            new: n,
            delta_pct,
        });
    };
    match (b, n) {
        (Value::Obj(bp), Value::Obj(np)) => {
            for (k, bv) in bp {
                match n.get(k) {
                    Some(nv) => diff_exact(out, case, &format!("{path}.{k}"), bv, nv),
                    None => {
                        out.checked += 1;
                        out.regressions.push(Regression {
                            case: case.to_string(),
                            metric: format!("{path}.{k} <missing from new report>"),
                            baseline: 1.0,
                            new: 0.0,
                            delta_pct: -100.0,
                        });
                    }
                }
            }
            for (k, _) in np {
                if b.get(k).is_none() {
                    out.checked += 1;
                    out.regressions.push(Regression {
                        case: case.to_string(),
                        metric: format!("{path}.{k} <absent from baseline>"),
                        baseline: 0.0,
                        new: 1.0,
                        delta_pct: f64::INFINITY,
                    });
                }
            }
        }
        (Value::Arr(ba), Value::Arr(na)) => {
            out.checked += 1;
            if ba.len() != na.len() {
                mismatch(out, ba.len() as f64, na.len() as f64);
                return;
            }
            for (i, (bv, nv)) in ba.iter().zip(na).enumerate() {
                diff_exact(out, case, &format!("{path}[{i}]"), bv, nv);
            }
        }
        (Value::Num(bx), Value::Num(nx)) => {
            out.checked += 1;
            if bx != nx {
                mismatch(out, *bx, *nx);
            }
        }
        _ => {
            // Non-numeric leaves (and type mismatches) in the alloc section
            // are unexpected; flag anything that is not identical.
            out.checked += 1;
            if b.to_json() != n.to_json() {
                mismatch(out, 0.0, 0.0);
            }
        }
    }
}

/// IQR multiplier for the noise-aware host gate: the tolerance band around
/// the baseline median is `max(floor, HOST_BENCH_IQR_MULT * max(IQRs))`.
const HOST_BENCH_IQR_MULT: f64 = 3.0;

/// The noise-aware host gate. `host.bench.{label}.{phase}` carries
/// `{median_ms, iqr_ms, repeats}` from a repeated-run benchmark (`repro
/// bench-host`); a phase **regresses** (this is the one host check that
/// gates the verdict) when the new median exceeds the baseline median by
/// more than an IQR-derived tolerance. Phases whose medians sit under the
/// comparison floor on both sides are ignored; reports without a bench
/// section on both sides are skipped silently.
fn gate_host_bench(out: &mut CompareOutcome, base: &Value, new: &Value) {
    let (Some(bb), Some(nb)) = (
        base.get("host").and_then(|h| h.get("bench")),
        new.get("host").and_then(|h| h.get("bench")),
    ) else {
        return;
    };
    let Value::Obj(bcases) = bb else { return };
    for (label, bphases) in bcases {
        let (Some(nphases), Value::Obj(bpairs)) = (nb.get(label), bphases) else { continue };
        for (phase, bent) in bpairs {
            let (Some(bm), Some(biqr)) = (
                bent.get("median_ms").and_then(Value::as_f64),
                bent.get("iqr_ms").and_then(Value::as_f64),
            ) else {
                continue;
            };
            let Some(nent) = nphases.get(phase) else { continue };
            let (Some(nm), Some(niqr)) = (
                nent.get("median_ms").and_then(Value::as_f64),
                nent.get("iqr_ms").and_then(Value::as_f64),
            ) else {
                continue;
            };
            if bm < HOST_PHASE_FLOOR_MS && nm < HOST_PHASE_FLOOR_MS {
                continue; // too fast to measure: machine noise territory
            }
            out.checked += 1;
            let tol = (HOST_BENCH_IQR_MULT * biqr.max(niqr)).max(HOST_PHASE_FLOOR_MS);
            if nm > bm + tol {
                let delta_pct = if bm != 0.0 { (nm - bm) / bm * 100.0 } else { f64::INFINITY };
                out.regressions.push(Regression {
                    case: label.clone(),
                    metric: format!("host_bench.{phase}_median_ms"),
                    baseline: bm,
                    new: nm,
                    delta_pct,
                });
            }
        }
    }
}

/// Host phase times below this baseline are too small to compare (ms).
const HOST_PHASE_FLOOR_MS: f64 = 50.0;
/// Advisory threshold: note host phase growth beyond this factor.
const HOST_PHASE_GROWTH: f64 = 1.5;

/// Note (never a regression) when a case's host wall-clock per phase grew
/// substantially between reports. Host timings are machine- and load-
/// dependent, so the band is wide (x1.5) with a floor under which phases
/// are ignored entirely; reports without a `host.phase_ms` section (older
/// schema) are silently skipped. `host.phase_ms` is the max over ranks;
/// when both reports also carry the median over ranks
/// (`host.phase_ms_median`) the note reports both, so a drift confined to
/// one straggler rank is distinguishable from a fleet-wide slowdown.
fn note_host_phase_drift(out: &mut CompareOutcome, base: &Value, new: &Value) {
    let (Some(bp), Some(np)) = (
        base.get("host").and_then(|h| h.get("phase_ms")),
        new.get("host").and_then(|h| h.get("phase_ms")),
    ) else {
        return;
    };
    let median_of = |doc: &Value, label: &str, phase: &str| -> Option<f64> {
        doc.get("host")?.get("phase_ms_median")?.get(label)?.get(phase).and_then(Value::as_f64)
    };
    let Value::Obj(bcases) = bp else { return };
    for (label, bphases) in bcases {
        let (Some(nphases), Value::Obj(bpairs)) = (np.get(label), bphases) else { continue };
        for (phase, bv) in bpairs {
            let (Some(b), Some(n)) = (bv.as_f64(), nphases.get(phase).and_then(Value::as_f64))
            else {
                continue;
            };
            if b >= HOST_PHASE_FLOOR_MS && n > b * HOST_PHASE_GROWTH {
                let medians = match (median_of(base, label, phase), median_of(new, label, phase)) {
                    (Some(bm), Some(nm)) => {
                        format!("; median over ranks {bm:.0} ms -> {nm:.0} ms")
                    }
                    _ => String::new(),
                };
                out.notes.push(format!(
                    "{label}: advisory: host {phase} wall-clock grew {b:.0} ms -> {n:.0} ms \
                     ({:+.1}%, max over ranks{medians}); host timings are machine-dependent \
                     and this note never gates the verdict",
                    (n - b) / b * 100.0
                ));
            }
        }
    }
}

fn compare_metric(
    out: &mut CompareOutcome,
    case: &str,
    metric: &str,
    bsum: &Value,
    nsum: &Value,
    tol: f64,
    higher_bad: bool,
) {
    let b = bsum.get(metric).and_then(Value::as_f64);
    let n = nsum.get(metric).and_then(Value::as_f64);
    let (Some(b), Some(n)) = (b, n) else {
        // `cache_hit_rate` is null when a run performs no donor-cache
        // lookups; a metric absent/null on either side is not comparable.
        out.notes.push(format!("{case}: {metric} not present in both reports, skipped"));
        return;
    };
    out.checked += 1;
    let regressed = if higher_bad { n > b * (1.0 + tol) && n > b } else { n < b * (1.0 - tol) };
    if regressed {
        let delta_pct = if b != 0.0 { (n - b) / b * 100.0 } else { f64::INFINITY };
        out.regressions.push(Regression {
            case: case.to_string(),
            metric: metric.to_string(),
            baseline: b,
            new: n,
            delta_pct,
        });
    }
}

/// Note (not a regression) when an advisory counter grows past 20%.
fn warn_counter_growth(
    out: &mut CompareOutcome,
    case: &str,
    metric: &str,
    bsum: &Value,
    nsum: &Value,
) {
    let (Some(b), Some(n)) =
        (bsum.get(metric).and_then(Value::as_f64), nsum.get(metric).and_then(Value::as_f64))
    else {
        return; // absent on either side (older baseline): nothing to say
    };
    let grew = if b > 0.0 { n > b * 1.2 } else { n > 0.0 };
    if grew {
        let pct =
            if b > 0.0 { format!("{:+.1}%", (n - b) / b * 100.0) } else { "from zero".into() };
        out.notes.push(format!(
            "{case}: warning: {metric} grew {b} -> {n} ({pct}); search effort is up even if \
             phase times still pass — check donor-cache hit rate and inverse-map coverage"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn summary(wall: f64, conn: f64, orphans: f64, hit: f64) -> Value {
        obj(vec![
            ("wall_time", Value::Num(wall)),
            ("time_per_step", Value::Num(wall / 10.0)),
            ("t_flow", Value::Num(wall * 0.7)),
            ("t_connectivity", Value::Num(conn)),
            ("t_motion", Value::Num(0.5)),
            ("t_balance", Value::Num(0.1)),
            ("t_other", Value::Num(0.0)),
            ("f_max_last", Value::Num(1.2)),
            ("f_max_peak", Value::Num(1.9)),
            ("orphans_last", Value::Num(orphans)),
            ("cache_hit_rate", Value::Num(hit)),
        ])
    }

    fn report(cases: Vec<(&str, Value)>) -> Value {
        obj(vec![
            ("schema_version", Value::Num(SCHEMA_VERSION as f64)),
            (
                "cases",
                Value::Arr(
                    cases
                        .into_iter()
                        .map(|(name, s)| {
                            obj(vec![
                                ("name", Value::Str(name.to_string())),
                                ("label", Value::Str("representative".into())),
                                ("summary", s),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let out = compare(&r, &r, 5.0).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.checked, 11);
    }

    #[test]
    fn inflated_phase_time_fails_beyond_tolerance() {
        let base = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let worse = report(vec![("airfoil", summary(100.0, 22.0, 0.0, 0.9))]);
        // 10% inflation of t_connectivity: passes at 15% tol, fails at 5%.
        assert!(compare(&base, &worse, 15.0).unwrap().passed());
        let out = compare(&base, &worse, 5.0).unwrap();
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "t_connectivity");
        assert!((out.regressions[0].delta_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn orphans_from_zero_baseline_always_fail() {
        let base = report(vec![("store", summary(100.0, 20.0, 0.0, 0.9))]);
        let worse = report(vec![("store", summary(100.0, 20.0, 3.0, 0.9))]);
        let out = compare(&base, &worse, 50.0).unwrap();
        assert!(!out.passed());
        assert_eq!(out.regressions[0].metric, "orphans_last");
        assert!(!out.regressions[0].delta_pct.is_finite());
    }

    #[test]
    fn cache_hit_rate_drop_fails_and_rise_passes() {
        let base = report(vec![("wing", summary(100.0, 20.0, 0.0, 0.9))]);
        let drop = report(vec![("wing", summary(100.0, 20.0, 0.0, 0.5))]);
        let rise = report(vec![("wing", summary(100.0, 20.0, 0.0, 0.99))]);
        assert!(!compare(&base, &drop, 5.0).unwrap().passed());
        assert!(compare(&base, &rise, 5.0).unwrap().passed());
    }

    #[test]
    fn missing_case_is_a_regression_and_null_metric_is_skipped() {
        let base = report(vec![
            ("airfoil", summary(100.0, 20.0, 0.0, 0.9)),
            ("store", summary(200.0, 40.0, 0.0, 0.9)),
        ]);
        let only_one = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let out = compare(&base, &only_one, 5.0).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].metric.contains("missing"));

        let mut s = summary(100.0, 20.0, 0.0, 0.9);
        if let Value::Obj(pairs) = &mut s {
            pairs.retain(|(k, _)| k != "cache_hit_rate");
            pairs.push(("cache_hit_rate".into(), Value::Null));
        }
        let base_one = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let null_hit = report(vec![("airfoil", s)]);
        let out = compare(&base_one, &null_hit, 5.0).unwrap();
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("cache_hit_rate")));
    }

    #[test]
    fn dropped_step_records_produce_a_warning_note_on_either_side() {
        let with_drops = |n: f64| {
            let mut s = summary(100.0, 20.0, 0.0, 0.9);
            if let Value::Obj(pairs) = &mut s {
                pairs.push(("steps_dropped".into(), Value::Num(n)));
            }
            report(vec![("airfoil", s)])
        };
        let clean = with_drops(0.0);
        let dropped = with_drops(7.0);
        let out = compare(&clean, &dropped, 5.0).unwrap();
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("warning") && n.contains("new dropped 7")));
        let out = compare(&dropped, &clean, 5.0).unwrap();
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("warning") && n.contains("baseline dropped 7")));
        let out = compare(&clean, &clean, 5.0).unwrap();
        assert!(!out.notes.iter().any(|n| n.contains("warning")));
    }

    #[test]
    fn walk_step_growth_warns_but_never_fails() {
        let with_walks = |walks: f64, fwd: f64| {
            let mut s = summary(100.0, 20.0, 0.0, 0.9);
            if let Value::Obj(pairs) = &mut s {
                pairs.push(("walk_steps_total".into(), Value::Num(walks)));
                pairs.push(("forwards_total".into(), Value::Num(fwd)));
            }
            report(vec![("store", s)])
        };
        let base = with_walks(1000.0, 50.0);
        // +10% walks, same forwards: inside the 20% advisory band, silent.
        let mild = with_walks(1100.0, 50.0);
        let out = compare(&base, &mild, 5.0).unwrap();
        assert!(out.passed());
        assert!(!out.notes.iter().any(|n| n.contains("walk_steps_total")));
        // +50% walks and forwards appearing from zero both warn; still passes
        // and the checked count is unchanged (advisory, not gated).
        let base_zero_fwd = with_walks(1000.0, 0.0);
        let worse = with_walks(1500.0, 8.0);
        let out = compare(&base_zero_fwd, &worse, 5.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.checked, 11);
        assert!(out.notes.iter().any(|n| n.contains("walk_steps_total") && n.contains("+50.0%")));
        assert!(out.notes.iter().any(|n| n.contains("forwards_total") && n.contains("from zero")));
        // Counters absent entirely (old baseline): no note about them.
        let old = report(vec![("store", summary(100.0, 20.0, 0.0, 0.9))]);
        let out = compare(&old, &old, 5.0).unwrap();
        assert!(!out.notes.iter().any(|n| n.contains("walk_steps_total")));
    }

    #[test]
    fn host_phase_drift_notes_but_never_fails() {
        let with_host = |flow_ms: f64, conn_ms: f64| {
            let mut r = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
            if let Value::Obj(pairs) = &mut r {
                pairs.push((
                    "host".into(),
                    obj(vec![(
                        "phase_ms",
                        obj(vec![(
                            "representative",
                            obj(vec![
                                ("flow", Value::Num(flow_ms)),
                                ("connectivity", Value::Num(conn_ms)),
                            ]),
                        )]),
                    )]),
                ));
            }
            r
        };
        // Connectivity host time triples past the floor: one advisory note,
        // verdict still PASS, gated count unchanged.
        let base = with_host(200.0, 100.0);
        let slow = with_host(210.0, 300.0);
        let out = compare(&base, &slow, 5.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.checked, 11);
        let note = out
            .notes
            .iter()
            .find(|n| n.contains("host connectivity wall-clock"))
            .expect("drift note");
        assert!(note.contains("100 ms -> 300 ms") && note.contains("+200.0%"), "{note}");
        assert!(!out.notes.iter().any(|n| n.contains("host flow")));
        // Below the 50 ms floor: machine noise, no note even at 10x.
        let tiny_base = with_host(2.0, 3.0);
        let tiny_slow = with_host(30.0, 40.0);
        assert!(!compare(&tiny_base, &tiny_slow, 5.0)
            .unwrap()
            .notes
            .iter()
            .any(|n| n.contains("wall-clock")));
        // Reports without a host section (older schema): silent.
        let old = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        assert!(!compare(&old, &slow, 5.0).unwrap().notes.iter().any(|n| n.contains("host")));
    }

    fn alloc_section(conn_allocs: f64) -> Value {
        obj(vec![
            (
                "allocs",
                obj(vec![
                    ("total", Value::Num(100.0 + conn_allocs)),
                    ("flow", Value::Num(100.0)),
                    ("connectivity", Value::Num(conn_allocs)),
                ]),
            ),
            (
                "bytes",
                obj(vec![("total", Value::Num(4096.0)), ("connectivity", Value::Num(4096.0))]),
            ),
            (
                "by_rank",
                Value::Arr(vec![obj(vec![
                    ("allocs", Value::Num(50.0 + conn_allocs / 2.0)),
                    ("bytes", Value::Num(2048.0)),
                ])]),
            ),
        ])
    }

    fn report_with_alloc(conn_allocs: f64) -> Value {
        let mut r = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        if let Some(Value::Arr(cases)) = r.get("cases").cloned() {
            let mut cases = cases;
            if let Value::Obj(pairs) = &mut cases[0] {
                pairs.push(("alloc".into(), alloc_section(conn_allocs)));
            }
            if let Value::Obj(rpairs) = &mut r {
                rpairs.retain(|(k, _)| k != "cases");
                rpairs.push(("cases".into(), Value::Arr(cases)));
            }
        }
        r
    }

    /// The alloc gate is exact: a 1-count drift fails even at huge
    /// tolerance, and the regression names the dotted path to the leaf.
    #[test]
    fn alloc_counts_gate_exactly_regardless_of_tolerance() {
        let base = report_with_alloc(500.0);
        let same = report_with_alloc(500.0);
        let out = compare(&base, &same, 5.0).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        // 11 summary metrics + 7 alloc leaves (2 totals + 2 phase counts +
        // 1 bytes leaf... counted dynamically): just require growth.
        assert!(out.checked > 11);

        let drifted = report_with_alloc(501.0);
        let out = compare(&base, &drifted, 99.0).unwrap();
        assert!(!out.passed());
        let metrics: Vec<&str> = out.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"alloc.allocs.total"), "{metrics:?}");
        assert!(metrics.contains(&"alloc.allocs.connectivity"), "{metrics:?}");
        assert!(metrics.contains(&"alloc.by_rank[0].allocs"), "{metrics:?}");
        // Improvements (fewer allocations) are also exact mismatches: the
        // gate asks "did the deterministic profile change", not "is it worse".
        assert!(!compare(&drifted, &base, 99.0).unwrap().passed());
    }

    #[test]
    fn alloc_missing_on_one_side_skips_with_a_note() {
        let with = report_with_alloc(500.0);
        let without = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let out = compare(&without, &with, 5.0).unwrap();
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("exact alloc gate skipped")));
        assert_eq!(out.checked, 11);
    }

    fn report_with_bench(conn_median: f64, conn_iqr: f64) -> Value {
        let mut r = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        if let Value::Obj(pairs) = &mut r {
            pairs.push((
                "host".into(),
                obj(vec![(
                    "bench",
                    obj(vec![(
                        "representative",
                        obj(vec![
                            (
                                "flow",
                                obj(vec![
                                    ("median_ms", Value::Num(400.0)),
                                    ("iqr_ms", Value::Num(10.0)),
                                    ("repeats", Value::Num(5.0)),
                                ]),
                            ),
                            (
                                "connectivity",
                                obj(vec![
                                    ("median_ms", Value::Num(conn_median)),
                                    ("iqr_ms", Value::Num(conn_iqr)),
                                    ("repeats", Value::Num(5.0)),
                                ]),
                            ),
                        ]),
                    )]),
                )]),
            ));
        }
        r
    }

    /// The noise-aware host gate: drift within the IQR-derived band passes,
    /// a median jump beyond it fails — and unlike the drift *note*, this is
    /// a real regression.
    #[test]
    fn host_bench_gates_on_median_beyond_iqr_tolerance() {
        let base = report_with_bench(200.0, 20.0);
        // +70 ms is inside the band: tol = max(50, 3*20) = 60... 270 > 260,
        // so use +55 ms which sits inside it.
        let noisy = report_with_bench(255.0, 20.0);
        let out = compare(&base, &noisy, 5.0).unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        assert_eq!(out.checked, 13); // 11 summary + 2 bench phases

        let slow = report_with_bench(300.0, 20.0);
        let out = compare(&base, &slow, 5.0).unwrap();
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "host_bench.connectivity_median_ms");
        assert!((out.regressions[0].delta_pct - 50.0).abs() < 1e-9);

        // A tight IQR still gets the 50 ms floor: 240 < 200 + 50 passes.
        let tight = report_with_bench(240.0, 1.0);
        assert!(compare(&report_with_bench(200.0, 1.0), &tight, 5.0).unwrap().passed());

        // Bench on one side only: gate dormant, summary still compared.
        let plain = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        let out = compare(&plain, &slow, 5.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.checked, 11);
    }

    /// The drift note (still never a regression) reports both the max- and
    /// median-over-ranks host time when the median series is present.
    #[test]
    fn host_drift_note_includes_median_when_available() {
        let with_median = |max_conn: f64, med_conn: f64| {
            let mut r = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
            if let Value::Obj(pairs) = &mut r {
                pairs.push((
                    "host".into(),
                    obj(vec![
                        (
                            "phase_ms",
                            obj(vec![(
                                "representative",
                                obj(vec![("connectivity", Value::Num(max_conn))]),
                            )]),
                        ),
                        (
                            "phase_ms_median",
                            obj(vec![(
                                "representative",
                                obj(vec![("connectivity", Value::Num(med_conn))]),
                            )]),
                        ),
                    ]),
                ));
            }
            r
        };
        let base = with_median(100.0, 80.0);
        let slow = with_median(300.0, 90.0);
        let out = compare(&base, &slow, 5.0).unwrap();
        assert!(out.passed());
        let note = out.notes.iter().find(|n| n.contains("wall-clock")).expect("drift note");
        assert!(note.contains("max over ranks"), "{note}");
        assert!(note.contains("median over ranks 80 ms -> 90 ms"), "{note}");
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_verdict() {
        let mut bad = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        if let Value::Obj(pairs) = &mut bad {
            pairs[0].1 = Value::Num(99.0);
        }
        let good = report(vec![("airfoil", summary(100.0, 20.0, 0.0, 0.9))]);
        assert!(compare(&bad, &good, 5.0).is_err());
        assert!(compare(&good, &bad, 5.0).is_err());
    }
}
