//! Machine-readable run reports (schema v1) and perf-regression comparison.
//!
//! The paper's evidence is *time histories* — f(p), connectivity cost, and
//! repartition events evolving step by step (Figs. 10–12). This crate turns
//! the flight-recorder telemetry ([`overset_comm::StepRecord`]) and
//! end-of-run aggregates of a [`RunResult`] into a versioned JSON document
//! (`BENCH_*.json`) that future sessions can diff mechanically, and
//! implements the pass/fail comparison the CI bench gate runs.
//!
//! Determinism: everything serialized from a run is virtual-time data, so
//! two identical runs produce **byte-identical** reports (golden-tested);
//! host wall-clock timings are an optional section the comparator ignores.
//!
//! ## Schema versioning policy
//!
//! `schema_version` is bumped when a field is *removed or re-typed*; adding
//! fields is backward compatible and does not bump. [`compare`] refuses to
//! compare documents whose versions differ from its own
//! [`SCHEMA_VERSION`] — regenerate the baseline in the same PR that bumps
//! the schema.

pub mod compare;
pub mod json;

pub use compare::{compare, CompareOutcome, Regression};
pub use json::{parse, Value};

use json::{obj, opt_num};
use overflow_d::{CaseConfig, RunResult};
use overset_balance::service_imbalance;
use overset_comm::metrics::names;
use overset_comm::{AllocRecord, Phase, StepRecord, NUM_PHASES};

/// Version of the report document layout. See the module docs for the bump
/// policy.
pub const SCHEMA_VERSION: u64 = 1;

/// Phase order used for per-phase keys (matches the `Phase` discriminants).
const PHASES: [Phase; NUM_PHASES] =
    [Phase::Flow, Phase::Connectivity, Phase::Motion, Phase::Balance, Phase::Other];

fn phase_key(p: Phase) -> String {
    format!("t_{}", p.name())
}

/// Cross-rank aggregate of one step (the run-level time-series element).
#[derive(Clone, Debug)]
pub struct StepSeries {
    pub step: u64,
    /// Elapsed virtual time per phase: max over ranks (phases are
    /// barrier-separated, so the slowest rank sets the elapsed time).
    pub phase_elapsed: [f64; NUM_PHASES],
    /// Service-load imbalance f_max = max(I)/mean(I) over ranks this step.
    pub f_max: f64,
    pub serviced_total: u64,
    pub serviced_min: u64,
    pub serviced_max: u64,
    /// Stencil-walk steps spent servicing donor searches, summed over ranks.
    pub walk_steps: u64,
    /// Search requests forwarded to another candidate rank, summed over
    /// ranks (false-positive routing).
    pub forwards: u64,
    pub orphans: u64,
    /// Warm-restart hit rate over all ranks, `None` when no lookups ran.
    pub cache_hit_rate: Option<f64>,
    pub msgs: u64,
    pub bytes: u64,
    /// Did any rank repartition this step?
    pub repartition: bool,
}

/// Aggregate per-rank step records (rank-major) into the run-level series.
/// Byte-deterministic: sums/maxima over ranks are order-independent, and
/// every input is virtual-time data.
pub fn aggregate_steps(step_records: &[Vec<StepRecord>]) -> Vec<StepSeries> {
    let nsteps = step_records.iter().map(Vec::len).min().unwrap_or(0);
    let mut series = Vec::with_capacity(nsteps);
    for s in 0..nsteps {
        let recs: Vec<&StepRecord> = step_records.iter().map(|r| &r[s]).collect();
        let mut phase_elapsed = [0.0f64; NUM_PHASES];
        for rec in &recs {
            for (p, t) in phase_elapsed.iter_mut().enumerate() {
                *t = t.max(rec.time[p]);
            }
        }
        let serviced: Vec<usize> = recs.iter().map(|r| r.serviced as usize).collect();
        let hits: u64 = recs.iter().map(|r| r.cache_hits).sum();
        let misses: u64 = recs.iter().map(|r| r.cache_misses).sum();
        series.push(StepSeries {
            step: recs[0].step,
            phase_elapsed,
            f_max: service_imbalance(&serviced),
            serviced_total: recs.iter().map(|r| r.serviced).sum(),
            serviced_min: recs.iter().map(|r| r.serviced).min().unwrap_or(0),
            serviced_max: recs.iter().map(|r| r.serviced).max().unwrap_or(0),
            walk_steps: recs.iter().map(|r| r.walk_steps).sum(),
            forwards: recs.iter().map(|r| r.forwards).sum(),
            orphans: recs.iter().map(|r| r.orphans).sum(),
            cache_hit_rate: if hits + misses == 0 {
                None
            } else {
                Some(hits as f64 / (hits + misses) as f64)
            },
            msgs: recs.iter().map(|r| r.msgs_sent).sum(),
            bytes: recs.iter().map(|r| r.bytes_sent).sum(),
            repartition: recs.iter().any(|r| r.repartitions > 0),
        });
    }
    series
}

fn series_value(s: &StepSeries) -> Value {
    let mut pairs: Vec<(String, Value)> = vec![("step".into(), Value::Num(s.step as f64))];
    for &p in &PHASES {
        pairs.push((phase_key(p), Value::Num(s.phase_elapsed[p as usize])));
    }
    pairs.extend([
        ("f_max".to_string(), Value::Num(s.f_max)),
        ("serviced_total".to_string(), Value::Num(s.serviced_total as f64)),
        ("serviced_min".to_string(), Value::Num(s.serviced_min as f64)),
        ("serviced_max".to_string(), Value::Num(s.serviced_max as f64)),
        ("walk_steps".to_string(), Value::Num(s.walk_steps as f64)),
        ("forwards".to_string(), Value::Num(s.forwards as f64)),
        ("orphans".to_string(), Value::Num(s.orphans as f64)),
        ("cache_hit_rate".to_string(), opt_num(s.cache_hit_rate)),
        ("msgs".to_string(), Value::Num(s.msgs as f64)),
        ("bytes".to_string(), Value::Num(s.bytes as f64)),
        ("repartition".to_string(), Value::Bool(s.repartition)),
    ]);
    Value::Obj(pairs)
}

fn summary_value(r: &RunResult, series: &[StepSeries]) -> Value {
    let mut pairs: Vec<(String, Value)> = vec![
        ("wall_time".into(), Value::Num(r.wall_time)),
        ("time_per_step".into(), Value::Num(r.time_per_step())),
        ("mflops_per_node".into(), Value::Num(r.mflops_per_node())),
        ("connectivity_fraction".into(), Value::Num(r.connectivity_fraction())),
    ];
    for &p in &PHASES {
        pairs.push((phase_key(p), Value::Num(r.summary.phase_time(p))));
    }
    let f_max_peak = series.iter().map(|s| s.f_max).fold(0.0f64, f64::max).max(r.f_max());
    pairs.extend([
        ("msgs".to_string(), Value::Num(r.summary.msgs as f64)),
        ("bytes".to_string(), Value::Num(r.summary.bytes as f64)),
        ("f_max_last".to_string(), Value::Num(r.f_max())),
        ("f_max_peak".to_string(), Value::Num(f_max_peak)),
        ("orphans_last".to_string(), Value::Num(r.orphans_last as f64)),
        ("repartitions".to_string(), Value::Num(r.repartitions as f64)),
        ("cache_hit_rate".to_string(), opt_num(r.metrics.cache_hit_rate())),
        // Whole-run donor-search effort, read from the metrics counters
        // (exact even when the flight-recorder ring evicted early steps).
        // The inverse-map ablation reads its win off these two.
        (
            "walk_steps_total".to_string(),
            Value::Num(r.metrics.counter(names::CONN_WALK_STEPS) as f64),
        ),
        ("forwards_total".to_string(), Value::Num(r.metrics.counter(names::CONN_FORWARDS) as f64)),
        // Flight-recorder ring evictions: when > 0 the series above covers
        // only the trailing window of the run, and `compare` warns.
        ("steps_dropped".to_string(), Value::Num(r.steps_dropped as f64)),
    ]);
    Value::Obj(pairs)
}

fn metrics_value(r: &RunResult) -> Value {
    let counters = Value::Obj(
        r.metrics.counters().map(|(k, v)| (k.to_string(), Value::Num(v as f64))).collect(),
    );
    let histograms = Value::Obj(
        r.metrics
            .histograms()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    obj(vec![
                        ("count", Value::Num(h.count as f64)),
                        ("mean", Value::Num(h.mean())),
                        ("min", Value::Num(h.min)),
                        ("max", Value::Num(h.max)),
                        ("p50", Value::Num(h.p50())),
                        ("p95", Value::Num(h.p95())),
                        ("p99", Value::Num(h.p99())),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![("counters", counters), ("histograms", histograms)])
}

/// Per-phase totals as an object: `{"total": ..., "flow": ..., ...}`.
fn per_phase_value(per_phase: &[u64; NUM_PHASES]) -> Value {
    let total: u64 = per_phase.iter().sum();
    let mut pairs: Vec<(String, Value)> = vec![("total".into(), Value::Num(total as f64))];
    for &p in &PHASES {
        pairs.push((p.name().to_string(), Value::Num(per_phase[p as usize] as f64)));
    }
    Value::Obj(pairs)
}

/// Aggregate per-rank per-step allocation records into the run-level step
/// series (summed over ranks and phases per step, like `aggregate_steps`
/// the length is the minimum over ranks).
fn alloc_steps_value(alloc_records: &[Vec<AllocRecord>]) -> Value {
    let nsteps = alloc_records.iter().map(Vec::len).min().unwrap_or(0);
    let mut steps = Vec::with_capacity(nsteps);
    for s in 0..nsteps {
        let recs: Vec<&AllocRecord> = alloc_records.iter().map(|r| &r[s]).collect();
        let allocs: u64 = recs.iter().map(|r| r.allocs.iter().sum::<u64>()).sum();
        let bytes: u64 = recs.iter().map(|r| r.bytes.iter().sum::<u64>()).sum();
        steps.push(obj(vec![
            ("step", Value::Num(recs[0].step as f64)),
            ("allocs", Value::Num(allocs as f64)),
            ("bytes", Value::Num(bytes as f64)),
        ]));
    }
    Value::Arr(steps)
}

/// Allocation-attribution section of a case report. Everything here is
/// deterministic for a fixed configuration (counts and bytes are sums, so
/// order-invariant across scheduling), and `compare` gates it **exactly**.
/// Peak heap bytes are scheduling-order dependent and live in the advisory
/// `host` section instead.
fn alloc_value(r: &RunResult) -> Value {
    let mut allocs = [0u64; NUM_PHASES];
    let mut bytes = [0u64; NUM_PHASES];
    for a in &r.alloc_by_rank {
        for p in 0..NUM_PHASES {
            allocs[p] += a.allocs[p];
            bytes[p] += a.bytes[p];
        }
    }
    let by_rank = Value::Arr(
        r.alloc_by_rank
            .iter()
            .map(|a| {
                obj(vec![
                    ("allocs", Value::Num(a.total_allocs() as f64)),
                    ("bytes", Value::Num(a.total_bytes() as f64)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("allocs", per_phase_value(&allocs)),
        ("bytes", per_phase_value(&bytes)),
        ("by_rank", by_rank),
        ("steps", alloc_steps_value(&r.alloc_records)),
    ])
}

/// Build the report entry for one case run.
///
/// `label` distinguishes multiple runs of the same geometry within a report
/// (e.g. `"representative"` vs `"dynamic-lb"`); `machine` names the machine
/// model the case ran on.
pub fn case_report(label: &str, cfg: &CaseConfig, machine: &str, r: &RunResult) -> Value {
    let series = aggregate_steps(&r.step_records);
    let lb = if cfg.lb.fo.is_finite() {
        obj(vec![
            ("fo", Value::Num(cfg.lb.fo)),
            ("check_interval", Value::Num(cfg.lb.check_interval as f64)),
        ])
    } else {
        Value::Null
    };
    obj(vec![
        ("name", Value::Str(cfg.name.clone())),
        ("label", Value::Str(label.to_string())),
        ("nranks", Value::Num(r.nranks as f64)),
        ("steps", Value::Num(r.steps as f64)),
        ("total_points", Value::Num(r.total_points as f64)),
        ("machine", Value::Str(machine.to_string())),
        ("lb", lb),
        ("series", Value::Arr(series.iter().map(series_value).collect())),
        ("summary", summary_value(r, &series)),
        ("metrics", metrics_value(r)),
        ("alloc", alloc_value(r)),
        ("steps_dropped", Value::Num(r.steps_dropped as f64)),
    ])
}

/// Assemble the top-level report document.
///
/// `host` is the only wall-clock (nondeterministic) section; pass `None`
/// for byte-reproducible documents (the golden tests do). [`compare`]
/// ignores it either way.
pub fn run_report(experiment: &str, effort: &str, cases: Vec<Value>, host: Option<Value>) -> Value {
    let mut pairs = vec![
        ("schema_version".to_string(), Value::Num(SCHEMA_VERSION as f64)),
        ("generator".to_string(), Value::Str("overset-report".into())),
        ("experiment".to_string(), Value::Str(experiment.to_string())),
        ("effort".to_string(), Value::Str(effort.to_string())),
        ("cases".to_string(), Value::Arr(cases)),
    ];
    if let Some(h) = host {
        pairs.push(("host".to_string(), h));
    }
    Value::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64, flow: f64, serviced: u64, reparts: u64) -> StepRecord {
        let mut time = [0.0; NUM_PHASES];
        time[Phase::Flow as usize] = flow;
        StepRecord {
            step,
            time,
            clock: 0.0,
            serviced,
            walk_steps: serviced * 3,
            forwards: 1,
            orphans: 0,
            cache_hits: serviced / 2,
            cache_misses: serviced - serviced / 2,
            msgs_sent: 1,
            bytes_sent: 100,
            repartitions: reparts,
        }
    }

    #[test]
    fn aggregation_takes_max_time_and_computes_f_max() {
        let ranks = vec![
            vec![rec(0, 2.0, 30, 0), rec(1, 1.0, 10, 1)],
            vec![rec(0, 3.0, 10, 0), rec(1, 1.5, 10, 0)],
        ];
        let s = aggregate_steps(&ranks);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].phase_elapsed[Phase::Flow as usize], 3.0);
        // f_max = max(30,10)/mean(20) = 1.5
        assert!((s[0].f_max - 1.5).abs() < 1e-12);
        assert_eq!(s[0].serviced_total, 40);
        assert_eq!(s[0].walk_steps, 120);
        assert_eq!(s[0].forwards, 2);
        assert!(!s[0].repartition);
        assert!(s[1].repartition);
        assert_eq!(s[0].cache_hit_rate, Some(0.5));
    }

    #[test]
    fn empty_records_produce_empty_series() {
        assert!(aggregate_steps(&[]).is_empty());
        assert!(aggregate_steps(&[vec![], vec![rec(0, 1.0, 1, 0)]]).is_empty());
    }
}
