//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! The build environment is std-only (no serde), so the report subsystem
//! carries its own ~200-line JSON layer. Objects preserve insertion order
//! (a `Vec` of pairs, not a map), which is what makes report serialization
//! byte-deterministic: the writer emits exactly the order the builder
//! inserted, and two identical runs build identical trees.

use std::fmt::Write as _;

/// One JSON value. Numbers are `f64` (plenty for every quantity a report
/// carries; counters stay exact up to 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialize with 2-space indentation and `\n` line ends. Deterministic:
    /// object order is insertion order, floats use Rust's shortest-roundtrip
    /// formatting, non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => write_num(out, *v),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Convenience: build an object from pairs preserving order.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Optional f64 → Num or Null.
pub fn opt_num(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Num(x),
        None => Value::Null,
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Accepts exactly the constructs the writer emits
/// (the full JSON value grammar; `\uXXXX` escapes including surrogate
/// pairs are decoded).
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from the byte we consumed.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let v = obj(vec![
            ("a", Value::Num(1.5)),
            ("b", Value::Arr(vec![Value::Bool(true), Value::Null, Value::Num(-2.0)])),
            ("s", Value::Str("he\"llo\nworld".into())),
            ("nested", obj(vec![("x", Value::Num(3.0))])),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(vec![])),
        ]);
        let json = v.to_json();
        let back = parse(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn writer_is_deterministic_and_ordered() {
        let mk = || obj(vec![("z", Value::Num(1.0)), ("a", Value::Num(2.0))]).to_json();
        assert_eq!(mk(), mk());
        // Insertion order, not alphabetical.
        let j = mk();
        assert!(j.find("\"z\"").unwrap() < j.find("\"a\"").unwrap());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = obj(vec![("x", Value::Num(f64::INFINITY))]).to_json();
        assert!(j.contains("null"));
        assert!(parse(&j).is_ok());
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = parse(r#"{"n": -1.25e3, "u": "A😀", "i": 42}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(v.get("u").unwrap().as_str(), Some("A😀"));
        assert_eq!(v.get("i").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nul").is_err());
    }
}
