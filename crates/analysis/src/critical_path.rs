//! Per-step critical path: which rank bounds elapsed virtual time, where.
//!
//! Every phase in the driver ends at a barrier, so a step's elapsed time is
//! exactly `Σ_phase max_rank t(rank, phase)` — the slowest rank of each
//! phase *is* the critical path through that phase. Attributing each
//! phase-max to its argmax rank and summing over the run yields a ranking
//! of critical-path contributors: the ranks that would have to get faster
//! for the run to get faster (everyone else's time is hidden behind waits).

use crate::input::{phase_index, RankSpans};
use overset_comm::{StepRecord, NUM_PHASES};

/// Critical-path decomposition of one timestep.
#[derive(Clone, Debug)]
pub struct StepCritical {
    pub step: u64,
    /// Elapsed virtual time of the step: `Σ_p phase_elapsed[p]`.
    pub elapsed: f64,
    /// Max-over-ranks time per phase.
    pub phase_elapsed: [f64; NUM_PHASES],
    /// Argmax rank per phase (lowest rank wins ties).
    pub phase_rank: [usize; NUM_PHASES],
    /// Phase with the largest elapsed time this step.
    pub dominant_phase: usize,
    /// The rank bounding the dominant phase.
    pub dominant_rank: usize,
}

/// Whole-run critical path.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    pub nranks: usize,
    pub steps: Vec<StepCritical>,
    /// `Σ` of step elapsed times.
    pub total_elapsed: f64,
    /// Critical-path time attributed to each rank (index = rank).
    pub rank_time: Vec<f64>,
    /// Same, split per phase.
    pub rank_phase_time: Vec<[f64; NUM_PHASES]>,
    /// Ranks sorted by `rank_time` descending (ties: lower rank first).
    pub ranking: Vec<usize>,
}

impl CriticalPath {
    /// Share (0..=1) of total critical-path time attributed to `rank`.
    pub fn rank_share(&self, rank: usize) -> f64 {
        if self.total_elapsed > 0.0 {
            self.rank_time[rank] / self.total_elapsed
        } else {
            0.0
        }
    }

    /// The phase where `rank` contributes most of its critical-path time.
    pub fn dominant_phase_of(&self, rank: usize) -> usize {
        argmax(&self.rank_phase_time[rank])
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Core computation over rank-major per-step phase-time tables
/// (`tables[rank][step][phase]`).
///
/// Phase time on every rank *includes* time spent blocked at the phase's
/// barrier — phases end synchronized, so raw durations are nearly equal
/// across ranks and say nothing about who bounds them. The argmax is
/// therefore taken over **work** = time − wait (per-step wait-state tables
/// from [`wait_tables_from_spans`]); the phase *elapsed* stays the raw
/// max-over-ranks, which is the true wall contribution.
pub fn from_phase_tables(
    step_ids: &[u64],
    tables: &[Vec<[f64; NUM_PHASES]>],
    waits: Option<&[Vec<[f64; NUM_PHASES]>]>,
) -> CriticalPath {
    let nranks = tables.len();
    let nsteps = tables.iter().map(Vec::len).min().unwrap_or(0).min(step_ids.len());
    let mut cp = CriticalPath {
        nranks,
        rank_time: vec![0.0; nranks],
        rank_phase_time: vec![[0.0; NUM_PHASES]; nranks],
        ..CriticalPath::default()
    };
    let wait_of = |r: usize, s: usize, p: usize| -> f64 {
        waits.and_then(|w| w.get(r)).and_then(|w| w.get(s)).map(|w| w[p]).unwrap_or(0.0)
    };
    for s in 0..nsteps {
        let mut phase_elapsed = [0.0f64; NUM_PHASES];
        let mut phase_rank = [0usize; NUM_PHASES];
        let mut phase_work = [f64::NEG_INFINITY; NUM_PHASES];
        for (r, table) in tables.iter().enumerate() {
            for p in 0..NUM_PHASES {
                phase_elapsed[p] = phase_elapsed[p].max(table[s][p]);
                let work = (table[s][p] - wait_of(r, s, p)).max(0.0);
                // Strict `>` keeps the lowest rank on ties (deterministic).
                if work > phase_work[p] {
                    phase_work[p] = work;
                    phase_rank[p] = r;
                }
            }
        }
        let elapsed: f64 = phase_elapsed.iter().sum();
        for p in 0..NUM_PHASES {
            cp.rank_time[phase_rank[p]] += phase_elapsed[p];
            cp.rank_phase_time[phase_rank[p]][p] += phase_elapsed[p];
        }
        let dominant_phase = argmax(&phase_elapsed);
        cp.steps.push(StepCritical {
            step: step_ids[s],
            elapsed,
            phase_elapsed,
            phase_rank,
            dominant_phase,
            dominant_rank: phase_rank[dominant_phase],
        });
        cp.total_elapsed += elapsed;
    }
    let mut ranking: Vec<usize> = (0..nranks).collect();
    ranking
        .sort_by(|&a, &b| cp.rank_time[b].partial_cmp(&cp.rank_time[a]).unwrap().then(a.cmp(&b)));
    cp.ranking = ranking;
    cp
}

/// Critical path from flight-recorder step records (live-run mode — exact
/// per-step phase deltas, no reconstruction needed). `spans` supplies the
/// wait states used for argmax attribution; records and span-derived waits
/// are aligned by step id (`StepRecord::step` equals the index of the
/// step's `flow` span, and ring eviction only drops records, never spans).
pub fn from_step_records(steps: &[Vec<StepRecord>], spans: &[RankSpans]) -> CriticalPath {
    let step_ids: Vec<u64> = match steps.first() {
        Some(r0) => r0.iter().map(|rec| rec.step).collect(),
        None => Vec::new(),
    };
    let tables: Vec<Vec<[f64; NUM_PHASES]>> =
        steps.iter().map(|r| r.iter().map(|rec| rec.time).collect()).collect();
    let span_waits = wait_tables_from_spans(spans);
    let waits: Vec<Vec<[f64; NUM_PHASES]>> = steps
        .iter()
        .enumerate()
        .map(|(r, recs)| {
            recs.iter()
                .map(|rec| {
                    span_waits
                        .get(r)
                        .and_then(|w| w.get(rec.step as usize))
                        .copied()
                        .unwrap_or([0.0; NUM_PHASES])
                })
                .collect()
        })
        .collect();
    from_phase_tables(&step_ids, &tables, Some(&waits))
}

/// Per-rank per-step per-phase *wait* time (late-sender recv stalls plus
/// wait-at-collective), located by the step/phase interval containing each
/// comm span. Step indices are span-step numbers (k-th `flow` span = step
/// k); spans outside any step are dropped.
pub fn wait_tables_from_spans(ranks: &[RankSpans]) -> Vec<Vec<[f64; NUM_PHASES]>> {
    use crate::input::StepPhaseIntervals;
    let (colls, _) = crate::waits::collective_waits(ranks);
    let mut out: Vec<Vec<[f64; NUM_PHASES]>> = Vec::with_capacity(ranks.len());
    for (i, r) in ranks.iter().enumerate() {
        let intervals = StepPhaseIntervals::build(&r.spans);
        let nsteps = r.spans.iter().filter(|s| s.cat == "phase" && s.name == "flow").count();
        let mut tab = vec![[0.0f64; NUM_PHASES]; nsteps];
        let mut add = |ts: f64, wait: f64| {
            if let Some((step, phase)) = intervals.locate(ts) {
                if step < tab.len() {
                    tab[step][phase] += wait;
                }
            }
        };
        for s in &r.spans {
            if s.cat == "comm" && s.name == "recv" {
                add(s.ts, s.arg("stall").unwrap_or(s.dur));
            }
        }
        for &(ts, wait) in &colls[i] {
            add(ts, wait);
        }
        out.push(tab);
    }
    out
}

/// Reconstruct per-step phase-time tables from phase spans (trace-file
/// mode). Driver timesteps start with a `flow` phase, so each `flow` span
/// opens a new step; phase time before the first `flow` span (initial
/// connectivity assembly) is outside any step and ignored here.
pub fn phase_tables_from_spans(ranks: &[RankSpans]) -> (Vec<u64>, Vec<Vec<[f64; NUM_PHASES]>>) {
    let mut tables: Vec<Vec<[f64; NUM_PHASES]>> = Vec::with_capacity(ranks.len());
    for r in ranks {
        let mut phases: Vec<(f64, &str, f64)> = r
            .spans
            .iter()
            .filter(|s| s.cat == "phase")
            .map(|s| (s.ts, s.name.as_str(), s.dur))
            .collect();
        phases.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut steps: Vec<[f64; NUM_PHASES]> = Vec::new();
        for (_, name, dur) in phases {
            if name == "flow" {
                steps.push([0.0; NUM_PHASES]);
            }
            if let Some(cur) = steps.last_mut() {
                cur[phase_index(name)] += dur;
            }
        }
        tables.push(steps);
    }
    let nsteps = tables.iter().map(Vec::len).min().unwrap_or(0);
    ((0..nsteps as u64).collect(), tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_rank_and_ranking_are_deterministic() {
        // 2 steps, 3 ranks; rank 2 dominates connectivity (phase 1).
        let t = |f: f64, c: f64| {
            let mut a = [0.0; NUM_PHASES];
            a[0] = f;
            a[1] = c;
            a
        };
        let tables = vec![
            vec![t(1.0, 1.0), t(1.0, 1.0)],
            vec![t(1.0, 1.0), t(1.0, 1.0)],
            vec![t(1.0, 5.0), t(1.0, 5.0)],
        ];
        let cp = from_phase_tables(&[0, 1], &tables, None);
        assert_eq!(cp.steps.len(), 2);
        // Ties on flow go to rank 0; connectivity max is rank 2.
        assert_eq!(cp.steps[0].phase_rank[0], 0);
        assert_eq!(cp.steps[0].phase_rank[1], 2);
        assert_eq!(cp.steps[0].dominant_phase, 1);
        assert_eq!(cp.steps[0].dominant_rank, 2);
        assert!((cp.steps[0].elapsed - 6.0).abs() < 1e-12);
        assert_eq!(cp.ranking[0], 2);
        assert!((cp.rank_time[2] - 10.0).abs() < 1e-12);
        assert!((cp.total_elapsed - 12.0).abs() < 1e-12);
        assert_eq!(cp.dominant_phase_of(2), 1);
    }

    #[test]
    fn spans_reconstruct_steps_at_flow_boundaries() {
        use crate::input::{RankSpans, Span};
        let mk = |cat: &str, name: &str, ts: f64, dur: f64| Span {
            cat: cat.into(),
            name: name.into(),
            ts,
            dur,
            args: Vec::new(),
        };
        let rank = RankSpans {
            rank: 0,
            spans: vec![
                // Pre-step connectivity (initial assembly): ignored.
                mk("phase", "connectivity", 0.0, 1.0),
                mk("phase", "flow", 1.0, 2.0),
                mk("phase", "connectivity", 3.0, 0.5),
                mk("phase", "flow", 3.5, 2.0),
                mk("phase", "connectivity", 5.5, 0.25),
            ],
        };
        let (ids, tables) = phase_tables_from_spans(&[rank]);
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(tables[0].len(), 2);
        assert!((tables[0][0][0] - 2.0).abs() < 1e-12);
        assert!((tables[0][0][1] - 0.5).abs() < 1e-12);
        assert!((tables[0][1][1] - 0.25).abs() < 1e-12);
    }
}
