//! Rank×rank communication matrix, per phase, from `send` spans.
//!
//! Each `comm/send` span carries `dst` and `bytes` args and is recorded on
//! the sending rank, so the matrix needs no pairing logic: row = sender,
//! column = `dst`, phase = the phase interval containing the span.

use crate::input::{PhaseIntervals, RankSpans};
use overset_comm::NUM_PHASES;

#[derive(Clone, Debug, Default)]
pub struct CommMatrix {
    pub nranks: usize,
    /// `msgs[phase][src][dst]`.
    pub msgs: Vec<Vec<Vec<u64>>>,
    /// `bytes[phase][src][dst]`.
    pub bytes: Vec<Vec<Vec<u64>>>,
    /// Sends whose `dst` fell outside `0..nranks` (malformed trace).
    pub dropped_sends: u64,
}

impl CommMatrix {
    /// Sum a per-phase cube over phases.
    fn total_of(cube: &[Vec<Vec<u64>>], n: usize) -> Vec<Vec<u64>> {
        let mut t = vec![vec![0u64; n]; n];
        for per_phase in cube {
            for (src, row) in per_phase.iter().enumerate() {
                for (dst, v) in row.iter().enumerate() {
                    t[src][dst] += v;
                }
            }
        }
        t
    }

    pub fn total_msgs(&self) -> Vec<Vec<u64>> {
        Self::total_of(&self.msgs, self.nranks)
    }

    pub fn total_bytes(&self) -> Vec<Vec<u64>> {
        Self::total_of(&self.bytes, self.nranks)
    }

    /// Does phase `p` carry any traffic?
    pub fn phase_active(&self, p: usize) -> bool {
        self.msgs[p].iter().any(|row| row.iter().any(|&v| v > 0))
    }
}

pub fn build(ranks: &[RankSpans]) -> CommMatrix {
    let n = ranks.len();
    let mut m = CommMatrix {
        nranks: n,
        msgs: vec![vec![vec![0; n]; n]; NUM_PHASES],
        bytes: vec![vec![vec![0; n]; n]; NUM_PHASES],
        dropped_sends: 0,
    };
    for (src, r) in ranks.iter().enumerate() {
        let intervals = PhaseIntervals::build(&r.spans);
        for s in &r.spans {
            if s.cat != "comm" || s.name != "send" {
                continue;
            }
            let Some(dst) = s.arg("dst").map(|d| d as usize).filter(|&d| d < n) else {
                m.dropped_sends += 1;
                continue;
            };
            let phase = intervals.phase_at(s.ts);
            m.msgs[phase][src][dst] += 1;
            m.bytes[phase][src][dst] += s.arg("bytes").unwrap_or(0.0) as u64;
        }
    }
    m
}

/// Past this rank count the heatmap is bucketed down to at most this many
/// rows/columns so a 1024-rank matrix stays readable (and the output stays
/// bounded); at or below it the rendering is unchanged, which the golden
/// tests rely on.
const HEATMAP_MAX_CELLS: usize = 64;

/// Render a rank×rank matrix as a deterministic text heatmap: one density
/// glyph per cell, scaled to the matrix maximum, rows = sender. For small
/// matrices (≤ 16 ranks) the numeric values are printed alongside; above
/// [`HEATMAP_MAX_CELLS`] ranks, cells are summed into rank-range buckets.
pub fn render_heatmap(m: &[Vec<u64>], label: &str) -> String {
    let n = m.len();
    if n > HEATMAP_MAX_CELLS {
        let bucket = n.div_ceil(HEATMAP_MAX_CELLS);
        let nb = n.div_ceil(bucket);
        let mut coarse = vec![vec![0u64; nb]; nb];
        for (src, row) in m.iter().enumerate() {
            for (dst, &v) in row.iter().enumerate() {
                coarse[src / bucket][dst / bucket] += v;
            }
        }
        return render_cells(&coarse, &format!("{label} [{bucket} ranks/cell]"), bucket);
    }
    render_cells(m, label, 1)
}

/// `bucket` is the number of ranks per cell (1 = exact); row labels show the
/// first rank of each bucket.
fn render_cells(m: &[Vec<u64>], label: &str, bucket: usize) -> String {
    const SCALE: &[u8] = b" .:-=+*#%@";
    let n = m.len();
    let max = m.iter().flatten().copied().max().unwrap_or(0);
    let mut out = format!("{label} (rows=src, cols=dst, max={max}):\n");
    for (src, row) in m.iter().enumerate() {
        out.push_str(&format!("  {:>3} |", src * bucket));
        for &v in row {
            let g = if max == 0 || v == 0 {
                b' '
            } else {
                // Nonzero cells always render visibly (index >= 1).
                let idx = 1 + (v as u128 * (SCALE.len() as u128 - 2) / max as u128) as usize;
                SCALE[idx.min(SCALE.len() - 1)]
            };
            out.push(g as char);
        }
        out.push('|');
        if n <= 16 {
            let nums: Vec<String> = row.iter().map(|v| format!("{v:>8}")).collect();
            out.push_str(&format!("  {}", nums.join(" ")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Span;

    fn send(ts: f64, dst: f64, bytes: f64) -> Span {
        Span {
            cat: "comm".into(),
            name: "send".into(),
            ts,
            dur: 0.0,
            args: vec![("dst".into(), dst), ("bytes".into(), bytes)],
        }
    }

    fn phase(name: &str, ts: f64, dur: f64) -> Span {
        Span { cat: "phase".into(), name: name.into(), ts, dur, args: Vec::new() }
    }

    #[test]
    fn sends_land_in_the_containing_phase_cell() {
        let r0 = RankSpans {
            rank: 0,
            spans: vec![
                phase("flow", 0.0, 1.0),
                phase("connectivity", 1.0, 1.0),
                send(0.5, 1.0, 100.0),
                send(1.5, 1.0, 40.0),
                send(1.6, 7.0, 8.0), // dst out of range: dropped
            ],
        };
        let r1 = RankSpans { rank: 1, spans: vec![] };
        let m = build(&[r0, r1]);
        assert_eq!(m.msgs[0][0][1], 1);
        assert_eq!(m.bytes[0][0][1], 100);
        assert_eq!(m.msgs[1][0][1], 1);
        assert_eq!(m.bytes[1][0][1], 40);
        assert_eq!(m.dropped_sends, 1);
        assert!(m.phase_active(0) && m.phase_active(1) && !m.phase_active(2));
        assert_eq!(m.total_bytes()[0][1], 140);
        let txt = render_heatmap(&m.total_bytes(), "bytes");
        assert!(txt.contains("max=140"));
        assert!(txt.contains("140"));
    }

    #[test]
    fn large_matrices_are_bucketed_small_ones_exact() {
        // 256 ranks -> 4 ranks per cell, 64 rows; diagonal mass survives
        // bucketing as the per-bucket sum.
        let n = 256;
        let mut m = vec![vec![0u64; n]; n];
        for i in 0..n {
            m[i][(i + 1) % n] = 10;
        }
        let txt = render_heatmap(&m, "bytes");
        assert!(txt.contains("[4 ranks/cell]"), "{txt}");
        // 64 bucket rows plus the header line.
        assert_eq!(txt.lines().count(), 65);
        // Bucket sums: of each bucket's 4 sends, 3 stay inside the bucket
        // and 1 crosses into the next, so the coarse maximum is 30.
        assert!(txt.contains("max=30"), "{txt}");

        // At 64 ranks exactly, rendering stays per-rank.
        let small = vec![vec![1u64; 64]; 64];
        let txt = render_heatmap(&small, "bytes");
        assert!(!txt.contains("ranks/cell"));
        assert_eq!(txt.lines().count(), 65);
    }
}
