//! Trace analysis: turn recorded telemetry into an explanation.
//!
//! PR 1 taught the runtime to *record* (span traces), PR 2 to *summarize*
//! (flight recorder, schema-v1 reports). This crate *diagnoses*: given a
//! run's per-rank spans (live, or re-parsed from a Chrome-trace file) it
//! computes
//!
//! 1. the **critical path** — which rank bounds elapsed virtual time in
//!    each barrier-separated phase of each step ([`critical_path`]),
//! 2. **wait states** — Scalasca-style late-sender / late-receiver /
//!    wait-at-collective time per rank and phase ([`waits`]),
//! 3. the **communication matrix** — rank×rank message counts and bytes
//!    per phase ([`matrix`]), and
//! 4. **advisor findings** — the moves the paper's Algorithm 2 would make,
//!    and whether past repartitions paid off ([`advisor`]).
//!
//! Everything derives from virtual-time data, so the rendered document —
//! JSON ([`Analysis::to_value`], schema below) or text
//! ([`Analysis::render_text`]) — is byte-identical across runs and
//! golden-tested. Schema policy matches `overset-report`: adding fields is
//! compatible; removing/re-typing bumps [`ANALYSIS_SCHEMA_VERSION`].

pub mod advisor;
pub mod critical_path;
pub mod diff;
pub mod host;
pub mod input;
pub mod matrix;
pub mod waits;

pub use advisor::{advise, Finding, GRANT_THRESHOLD};
pub use critical_path::CriticalPath;
pub use diff::{diff, AnalysisDiff, DIFF_SCHEMA_VERSION};
pub use host::render_host_report;
pub use input::{AnalysisInput, RankSpans, Span, PHASE_NAMES};
pub use matrix::CommMatrix;
pub use waits::{Culprit, WaitStates, MAX_CULPRITS};

use overset_comm::NUM_PHASES;
use overset_report::{json::obj, Value};

/// Version of the analysis document layout.
pub const ANALYSIS_SCHEMA_VERSION: u64 = 1;

/// The complete diagnosis of one run.
pub struct Analysis {
    pub source: String,
    pub nranks: usize,
    pub critical_path: CriticalPath,
    pub waits: WaitStates,
    pub matrix: CommMatrix,
    pub findings: Vec<Finding>,
    /// Provenance and degradation notes (also includes `waits.notes`).
    pub notes: Vec<String>,
}

/// Run the full pipeline on one input.
pub fn analyze(input: &AnalysisInput) -> Analysis {
    let mut notes = Vec::new();
    let critical_path = if !input.steps.is_empty() {
        notes.push("critical path from flight-recorder step records".to_string());
        critical_path::from_step_records(&input.steps, &input.ranks)
    } else {
        notes.push("critical path reconstructed from phase spans (no step records)".to_string());
        let (ids, tables) = critical_path::phase_tables_from_spans(&input.ranks);
        let waits = critical_path::wait_tables_from_spans(&input.ranks);
        critical_path::from_phase_tables(&ids, &tables, Some(&waits))
    };
    let waits = waits::classify(&input.ranks);
    let matrix = matrix::build(&input.ranks);
    if matrix.dropped_sends > 0 {
        notes.push(format!(
            "{} send spans had an out-of-range dst and were ignored",
            matrix.dropped_sends
        ));
    }
    let findings = advise(input, &critical_path, &waits);
    notes.extend(waits.notes.iter().cloned());
    Analysis {
        source: input.source.clone(),
        nranks: input.nranks(),
        critical_path,
        waits,
        matrix,
        findings,
        notes,
    }
}

fn phase_obj(xs: &[f64; NUM_PHASES]) -> Value {
    let mut pairs: Vec<(&str, Value)> = vec![("total", Value::Num(xs.iter().sum::<f64>()))];
    for (p, &x) in xs.iter().enumerate() {
        pairs.push((PHASE_NAMES[p], Value::Num(x)));
    }
    obj(pairs)
}

fn u64_matrix(m: &[Vec<u64>]) -> Value {
    Value::Arr(
        m.iter()
            .map(|row| Value::Arr(row.iter().map(|&v| Value::Num(v as f64)).collect()))
            .collect(),
    )
}

impl Analysis {
    /// The versioned, byte-deterministic JSON document.
    pub fn to_value(&self) -> Value {
        let cp = &self.critical_path;
        let steps = Value::Arr(
            cp.steps
                .iter()
                .map(|s| {
                    let mut pairs: Vec<(&str, Value)> = vec![
                        ("step", Value::Num(s.step as f64)),
                        ("elapsed", Value::Num(s.elapsed)),
                        ("dominant_rank", Value::Num(s.dominant_rank as f64)),
                        ("dominant_phase", Value::Str(PHASE_NAMES[s.dominant_phase].to_string())),
                    ];
                    for p in 0..NUM_PHASES {
                        pairs.push((T_KEYS[p], Value::Num(s.phase_elapsed[p])));
                        pairs.push((R_KEYS[p], Value::Num(s.phase_rank[p] as f64)));
                    }
                    obj(pairs)
                })
                .collect(),
        );
        let critical = obj(vec![
            ("total_elapsed", Value::Num(cp.total_elapsed)),
            ("rank_time", Value::Arr(cp.rank_time.iter().map(|&t| Value::Num(t)).collect())),
            ("ranking", Value::Arr(cp.ranking.iter().map(|&r| Value::Num(r as f64)).collect())),
            ("steps", steps),
        ]);
        let wait_ranks = Value::Arr(
            self.waits
                .per_rank
                .iter()
                .enumerate()
                .map(|(r, w)| {
                    let culprits = Value::Arr(
                        w.late_sender_culprits
                            .iter()
                            .map(|c| {
                                obj(vec![
                                    ("src", Value::Num(c.src as f64)),
                                    (
                                        "sender_phase",
                                        Value::Str(PHASE_NAMES[c.sender_phase].to_string()),
                                    ),
                                    ("seconds", Value::Num(c.seconds)),
                                    ("spans", Value::Num(c.spans as f64)),
                                ])
                            })
                            .collect(),
                    );
                    obj(vec![
                        ("rank", Value::Num(r as f64)),
                        ("late_sender", phase_obj(&w.late_sender)),
                        ("late_receiver", phase_obj(&w.late_receiver)),
                        ("collective", phase_obj(&w.collective)),
                        ("late_sender_culprits", culprits),
                        ("lost_total", Value::Num(w.total())),
                    ])
                })
                .collect(),
        );
        let mut per_phase: Vec<(String, Value)> = Vec::new();
        for (p, pname) in PHASE_NAMES.iter().enumerate() {
            if self.matrix.phase_active(p) {
                per_phase.push((
                    pname.to_string(),
                    obj(vec![
                        ("msgs", u64_matrix(&self.matrix.msgs[p])),
                        ("bytes", u64_matrix(&self.matrix.bytes[p])),
                    ]),
                ));
            }
        }
        let comm = obj(vec![
            (
                "total",
                obj(vec![
                    ("msgs", u64_matrix(&self.matrix.total_msgs())),
                    ("bytes", u64_matrix(&self.matrix.total_bytes())),
                ]),
            ),
            ("per_phase", Value::Obj(per_phase)),
        ]);
        let findings = Value::Arr(
            self.findings
                .iter()
                .map(|f| {
                    obj(vec![
                        ("kind", Value::Str(f.kind.to_string())),
                        ("rank", f.rank.map(|r| Value::Num(r as f64)).unwrap_or(Value::Null)),
                        ("message", Value::Str(f.message.clone())),
                        (
                            "data",
                            Value::Obj(
                                f.data
                                    .iter()
                                    .map(|(k, v)| (k.to_string(), Value::Num(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("analysis_schema_version", Value::Num(ANALYSIS_SCHEMA_VERSION as f64)),
            ("generator", Value::Str("overset-analysis".into())),
            ("source", Value::Str(self.source.clone())),
            ("nranks", Value::Num(self.nranks as f64)),
            ("nsteps", Value::Num(self.critical_path.steps.len() as f64)),
            ("notes", Value::Arr(self.notes.iter().map(|n| Value::Str(n.clone())).collect())),
            ("critical_path", critical),
            ("wait_states", wait_ranks),
            ("comm_matrix", comm),
            ("advisor", findings),
        ])
    }

    /// Human-readable rendering, equally deterministic.
    pub fn render_text(&self) -> String {
        let cp = &self.critical_path;
        let mut out = format!(
            "== analysis: {} ({} ranks, {} steps) ==\n",
            self.source,
            self.nranks,
            cp.steps.len()
        );
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }

        out.push_str("\n-- critical path --\n");
        out.push_str(&format!("total elapsed: {:.6e} s\n", cp.total_elapsed));
        out.push_str("rank ranking (time each rank spends bounding the run):\n");
        for &r in cp.ranking.iter().take(8) {
            out.push_str(&format!(
                "  rank {r:>3}: {:.6e} s ({:>5.1}%)  dominant phase: {}\n",
                cp.rank_time[r],
                cp.rank_share(r) * 100.0,
                PHASE_NAMES[cp.dominant_phase_of(r)]
            ));
        }
        if cp.nranks > 8 {
            out.push_str(&format!("  ... {} more ranks\n", cp.nranks - 8));
        }

        out.push_str("\n-- wait states (lost seconds per rank) --\n");
        out.push_str("  rank   late-sender    collective    late-recv(buffered)\n");
        // Past 16 ranks, show only the worst offenders by total lost time
        // (descending, rank as tiebreak); a 1024-rank table helps nobody.
        let mut order: Vec<usize> = (0..self.waits.per_rank.len()).collect();
        if order.len() > 16 {
            order.sort_by(|&a, &b| {
                let (ta, tb) = (self.waits.per_rank[a].total(), self.waits.per_rank[b].total());
                tb.partial_cmp(&ta).unwrap().then(a.cmp(&b))
            });
            order.truncate(16);
        }
        for &r in &order {
            let w = &self.waits.per_rank[r];
            out.push_str(&format!(
                "  {r:>4}   {:>11.4e}   {:>11.4e}   {:>11.4e}\n",
                w.late_sender.iter().sum::<f64>(),
                w.collective.iter().sum::<f64>(),
                w.late_receiver.iter().sum::<f64>(),
            ));
        }
        if self.waits.per_rank.len() > order.len() {
            out.push_str(&format!(
                "  ... {} more ranks (sorted by total lost time)\n",
                self.waits.per_rank.len() - order.len()
            ));
        }

        out.push_str("\n-- comm matrix --\n");
        out.push_str(&matrix::render_heatmap(&self.matrix.total_bytes(), "total bytes"));
        for (p, pname) in PHASE_NAMES.iter().enumerate() {
            if self.matrix.phase_active(p) {
                out.push_str(&matrix::render_heatmap(
                    &self.matrix.bytes[p],
                    &format!("{pname} bytes"),
                ));
            }
        }

        out.push_str("\n-- advisor --\n");
        if self.findings.is_empty() {
            out.push_str("  (no findings)\n");
        }
        for f in &self.findings {
            out.push_str(&format!("  * [{}] {}\n", f.kind, f.message));
        }
        out
    }
}

/// Per-phase JSON keys, matching `overset-report`'s `t_<phase>` convention.
const T_KEYS: [&str; NUM_PHASES] = ["t_flow", "t_connectivity", "t_motion", "t_balance", "t_other"];
/// Argmax-rank keys parallel to [`T_KEYS`].
const R_KEYS: [&str; NUM_PHASES] = ["r_flow", "r_connectivity", "r_motion", "r_balance", "r_other"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::RankSpans;

    /// A minimal but valid n-rank input: one timestep (flow phase span) and
    /// one barrier per rank, with rank-dependent barrier durations so the
    /// wait-state table has distinct totals to sort on.
    fn synthetic_input(n: usize) -> AnalysisInput {
        let ranks = (0..n)
            .map(|rank| RankSpans {
                rank,
                spans: vec![
                    Span {
                        cat: "phase".into(),
                        name: "flow".into(),
                        ts: 0.0,
                        dur: 1.0,
                        args: Vec::new(),
                    },
                    Span {
                        cat: "comm".into(),
                        name: "barrier".into(),
                        ts: 1.0,
                        dur: 0.1 * (n - rank) as f64,
                        args: Vec::new(),
                    },
                ],
            })
            .collect();
        AnalysisInput { source: format!("synthetic-{n}"), ranks, steps: Vec::new() }
    }

    #[test]
    fn wait_state_table_is_full_at_16_ranks_and_capped_above() {
        let small = analyze(&synthetic_input(16));
        let txt = small.render_text();
        assert!(!txt.contains("more ranks (sorted"), "{txt}");
        for r in 0..16 {
            assert!(txt.contains(&format!("  {r:>4}   ")), "rank {r} missing:\n{txt}");
        }

        let big = analyze(&synthetic_input(20));
        let txt = big.render_text();
        assert!(txt.contains("... 4 more ranks (sorted by total lost time)"), "{txt}");
        // Collective wait = own span duration minus the rank-minimum, so
        // rank 0 (longest barrier span) waited most and must survive the cut.
        assert!(txt.contains("  0   "), "{txt}");
    }

    #[test]
    fn validate_accepts_the_synthetic_input() {
        assert!(synthetic_input(4).validate().is_ok());
    }
}
