//! Imbalance advisor: map analysis results back onto the paper's algorithms.
//!
//! Findings are phrased in terms of the moves Algorithm 2 (Wissink &
//! Meakin's I(p)-driven repartitioning) could make: a rank whose
//! connectivity service load is far above the mean should be *granted a
//! processor*; a run that repartitioned is judged by its before/after
//! `f_max` and critical-path step time. Wait-hotspot findings identify
//! *victims* — ranks starved by a slower peer — so the reader does not
//! mistake waiting for load.

use crate::critical_path::CriticalPath;
use crate::input::{AnalysisInput, PHASE_NAMES};
use crate::waits::WaitStates;
use overset_balance::service_imbalance;
use overset_comm::Phase;

/// `f(p) = I(p)/mean` above which Algorithm 2 would grant a processor
/// (mirrors the typical `f_o` the dynamic-LB experiments run with).
pub const GRANT_THRESHOLD: f64 = 1.5;

/// A rank whose lost (wait) time exceeds this multiple of the mean is
/// flagged as a wait hotspot.
pub const WAIT_HOTSPOT_THRESHOLD: f64 = 2.0;

/// Steps averaged on each side of a repartition when measuring its effect.
const REPARTITION_WINDOW: usize = 5;

/// One actionable observation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable machine-readable kind: `critical-rank`, `grant-processor`,
    /// `balanced`, `wait-hotspot`, `repartition-effect`.
    pub kind: &'static str,
    pub rank: Option<usize>,
    pub message: String,
    /// Supporting numbers, stable key order.
    pub data: Vec<(&'static str, f64)>,
}

/// Produce findings, most significant first. Deterministic: thresholds are
/// fixed, ties break toward the lower rank, and iteration orders are all
/// rank/step order.
pub fn advise(input: &AnalysisInput, cp: &CriticalPath, waits: &WaitStates) -> Vec<Finding> {
    let mut out = Vec::new();
    critical_rank(cp, &mut out);
    serve_imbalance(input, &mut out);
    wait_hotspots(waits, &mut out);
    repartition_effects(input, cp, &mut out);
    out
}

fn critical_rank(cp: &CriticalPath, out: &mut Vec<Finding>) {
    let Some(&top) = cp.ranking.first() else { return };
    if cp.total_elapsed <= 0.0 {
        return;
    }
    let share = cp.rank_share(top);
    let phase = cp.dominant_phase_of(top);
    out.push(Finding {
        kind: "critical-rank",
        rank: Some(top),
        message: format!(
            "rank {top} bounds {:.1}% of critical-path time (dominant phase: {})",
            share * 100.0,
            PHASE_NAMES[phase]
        ),
        data: vec![("share", share), ("time_s", cp.rank_time[top]), ("phase", phase as f64)],
    });
}

/// Connectivity service imbalance — the quantity Algorithm 2 watches.
/// Primary signal: per-rank `conn/serve` span time. Fallback when conn
/// spans were filtered out: serviced counts from the last step record.
fn serve_imbalance(input: &AnalysisInput, out: &mut Vec<Finding>) {
    let serve: Vec<f64> = input
        .ranks
        .iter()
        .map(|r| {
            r.spans.iter().filter(|s| s.cat == "conn" && s.name == "serve").map(|s| s.dur).sum()
        })
        .collect();
    let (ratios, what): (Vec<f64>, &str) = if serve.iter().sum::<f64>() > 0.0 {
        let mean = serve.iter().sum::<f64>() / serve.len() as f64;
        (serve.iter().map(|&t| t / mean).collect(), "connectivity serve time")
    } else {
        let last: Option<Vec<_>> = input.steps.iter().map(|r| r.last()).collect();
        let Some(last) = last else { return };
        let serviced: Vec<usize> = last.iter().map(|rec| rec.serviced as usize).collect();
        if serviced.is_empty() {
            return;
        }
        if serviced.iter().sum::<usize>() == 0 {
            return;
        }
        let mean = serviced.iter().sum::<usize>() as f64 / serviced.len() as f64;
        (serviced.iter().map(|&c| c as f64 / mean).collect(), "serviced point count I(p)")
    };
    let mut top = 0;
    for (r, &f) in ratios.iter().enumerate() {
        if f > ratios[top] {
            top = r;
        }
    }
    let f = ratios[top];
    if f >= GRANT_THRESHOLD {
        out.push(Finding {
            kind: "grant-processor",
            rank: Some(top),
            message: format!(
                "rank {top}'s {what} is {f:.1}\u{d7} mean; Algorithm 2 would grant it a processor"
            ),
            data: vec![("f", f), ("threshold", GRANT_THRESHOLD)],
        });
    } else {
        out.push(Finding {
            kind: "balanced",
            rank: None,
            message: format!(
                "no {what} above {GRANT_THRESHOLD:.1}\u{d7} mean (max {f:.2}\u{d7}); \
                 Algorithm 2 would leave the partition alone"
            ),
            data: vec![("f", f), ("threshold", GRANT_THRESHOLD)],
        });
    }
}

fn wait_hotspots(waits: &WaitStates, out: &mut Vec<Finding>) {
    let totals: Vec<f64> = waits.per_rank.iter().map(|w| w.total()).collect();
    if totals.is_empty() {
        return;
    }
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    if mean <= 0.0 {
        return;
    }
    for (r, &t) in totals.iter().enumerate() {
        let x = t / mean;
        if x >= WAIT_HOTSPOT_THRESHOLD {
            out.push(Finding {
                kind: "wait-hotspot",
                rank: Some(r),
                message: format!(
                    "rank {r} loses {x:.1}\u{d7} the mean wait time ({t:.3e} s late-sender + \
                     collective) — it is starved by a slower peer, not overloaded"
                ),
                data: vec![("ratio", x), ("wait_s", t)],
            });
        }
    }
}

/// For each repartition, compare `f_max` and mean critical-path step time
/// over a window before vs after — did Algorithm 2's move pay off?
fn repartition_effects(input: &AnalysisInput, cp: &CriticalPath, out: &mut Vec<Finding>) {
    if input.steps.is_empty() {
        return;
    }
    let nsteps = cp.steps.len().min(input.steps.iter().map(Vec::len).min().unwrap_or(0));
    let f_max_at = |s: usize| -> f64 {
        let serviced: Vec<usize> = input.steps.iter().map(|r| r[s].serviced as usize).collect();
        service_imbalance(&serviced)
    };
    let repart_steps: Vec<usize> =
        (0..nsteps).filter(|&s| input.steps.iter().any(|r| r[s].repartitions > 0)).collect();
    let shown = repart_steps.len().min(REPARTITION_WINDOW);
    for &s in repart_steps.iter().take(shown) {
        if s + 1 >= nsteps {
            continue;
        }
        let lo = s.saturating_sub(REPARTITION_WINDOW - 1);
        let hi = (s + 1 + REPARTITION_WINDOW).min(nsteps);
        let mean = |range: std::ops::Range<usize>| -> f64 {
            let n = range.len().max(1) as f64;
            range.map(|i| cp.steps[i].elapsed).sum::<f64>() / n
        };
        let t_before = mean(lo..s + 1);
        let t_after = mean(s + 1..hi);
        let (fb, fa) = (f_max_at(s), f_max_at(s + 1));
        let delta = if t_before > 0.0 { (t_after - t_before) / t_before * 100.0 } else { 0.0 };
        // The balance phase that executed the move belongs to this step's
        // critical path; step ids come from the records, not the window.
        let step_id = input.steps[0][s].step;
        out.push(Finding {
            kind: "repartition-effect",
            rank: None,
            message: format!(
                "repartition at step {step_id}: f_max {fb:.2} \u{2192} {fa:.2}, mean step time \
                 {t_before:.3e} \u{2192} {t_after:.3e} s ({delta:+.1}%)"
            ),
            data: vec![
                ("step", step_id as f64),
                ("f_max_before", fb),
                ("f_max_after", fa),
                ("t_step_before", t_before),
                ("t_step_after", t_after),
                ("delta_pct", delta),
            ],
        });
    }
    if repart_steps.len() > shown {
        out.push(Finding {
            kind: "repartition-effect",
            rank: None,
            message: format!(
                "{} further repartitions not itemized (first {shown} shown)",
                repart_steps.len() - shown
            ),
            data: vec![("omitted", (repart_steps.len() - shown) as f64)],
        });
    }
}

/// Convenience for tests and callers that label phases.
pub fn phase_name(p: Phase) -> &'static str {
    p.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::from_phase_tables;
    use crate::input::{RankSpans, Span};
    use crate::waits::classify;
    use overset_comm::NUM_PHASES;

    fn serve_span(ts: f64, dur: f64) -> Span {
        Span { cat: "conn".into(), name: "serve".into(), ts, dur, args: Vec::new() }
    }

    #[test]
    fn skewed_serve_time_recommends_granting_a_processor() {
        let ranks = vec![
            RankSpans { rank: 0, spans: vec![serve_span(0.0, 1.0)] },
            RankSpans { rank: 1, spans: vec![serve_span(0.0, 1.0)] },
            RankSpans { rank: 2, spans: vec![serve_span(0.0, 6.0)] },
            RankSpans { rank: 3, spans: vec![serve_span(0.0, 1.0)] },
        ];
        let input = AnalysisInput { source: "test".into(), ranks, steps: Vec::new() };
        let tables = vec![vec![[0.0; NUM_PHASES]]; 4];
        let cp = from_phase_tables(&[0], &tables, None);
        let waits = classify(&input.ranks);
        let findings = advise(&input, &cp, &waits);
        let grant = findings.iter().find(|f| f.kind == "grant-processor").unwrap();
        assert_eq!(grant.rank, Some(2));
        // 6 / mean(2.25) ≈ 2.67×
        assert!(grant.message.contains("Algorithm 2 would grant it a processor"));
        assert!(grant.message.starts_with("rank 2's connectivity serve time is 2.7"));
    }

    #[test]
    fn balanced_serve_time_reports_no_move() {
        let ranks = vec![
            RankSpans { rank: 0, spans: vec![serve_span(0.0, 1.0)] },
            RankSpans { rank: 1, spans: vec![serve_span(0.0, 1.1)] },
        ];
        let input = AnalysisInput { source: "test".into(), ranks, steps: Vec::new() };
        let cp = from_phase_tables(&[], &[], None);
        let waits = classify(&input.ranks);
        let findings = advise(&input, &cp, &waits);
        assert!(findings.iter().any(|f| f.kind == "balanced"));
        assert!(!findings.iter().any(|f| f.kind == "grant-processor"));
    }
}
