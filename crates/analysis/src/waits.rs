//! Scalasca-style wait-state classification.
//!
//! Three wait states, all exact in virtual time:
//!
//! - **late sender** — a receive posted before the message arrived; the
//!   recv span's duration *is* the stall (blocking on the host channel
//!   never advances the virtual clock), carried as the `stall` arg.
//! - **late receiver** — the message sat fully-arrived in the mailbox
//!   before the receive was posted (`idle` arg): buffered-message pressure
//!   rather than lost time, but a sign the receiver is the slow side.
//! - **wait at collective** — every rank's k-th collective is the *same*
//!   collective (they are global and identically ordered), so a rank's
//!   barrier/allgather span minus the minimum duration over ranks at the
//!   same index is pure waiting for slower peers.

use crate::input::{PhaseIntervals, RankSpans};
use overset_comm::NUM_PHASES;
use std::collections::{HashMap, VecDeque};

/// One sender-side source of a victim rank's late-sender time: the rank
/// whose send arrived late, attributed to the phase *the sender* was in
/// when it posted the send — the span to fix is on the sender's timeline,
/// not the victim's.
#[derive(Clone, Debug, PartialEq)]
pub struct Culprit {
    /// Sending rank.
    pub src: usize,
    /// Phase index the sender was in at the send's virtual timestamp.
    pub sender_phase: usize,
    /// Late-sender seconds this (sender, phase) pair cost the victim.
    pub seconds: f64,
    /// Number of stalled receives matched to this pair.
    pub spans: u64,
}

/// Wait-state totals of one rank, split per phase (seconds).
#[derive(Clone, Debug, Default)]
pub struct RankWaits {
    pub late_sender: [f64; NUM_PHASES],
    pub late_receiver: [f64; NUM_PHASES],
    pub collective: [f64; NUM_PHASES],
    /// Worst sender-side culprits of this rank's late-sender time, sorted
    /// by seconds descending (at most [`MAX_CULPRITS`]). Empty when traces
    /// lack `src`/`tag` recv args or no receive ever stalled.
    pub late_sender_culprits: Vec<Culprit>,
}

/// Culprits retained per victim rank.
pub const MAX_CULPRITS: usize = 3;

impl RankWaits {
    /// Total *lost* time: late-sender + collective waits. Late-receiver
    /// time is excluded — it overlaps useful work on the receiving rank.
    pub fn total(&self) -> f64 {
        self.late_sender.iter().sum::<f64>() + self.collective.iter().sum::<f64>()
    }
}

#[derive(Clone, Debug, Default)]
pub struct WaitStates {
    /// Indexed by rank.
    pub per_rank: Vec<RankWaits>,
    /// Degradations encountered (mismatched collective counts, ...).
    pub notes: Vec<String>,
}

fn is_collective(name: &str) -> bool {
    name == "barrier" || name == "allgather"
}

/// Per rank, one `(start_ts, wait_seconds)` entry per collective index.
pub(crate) type CollectiveWaits = Vec<Vec<(f64, f64)>>;

/// Per-rank, per-collective-index `(start_ts, wait)` where wait is the
/// rank's span duration minus the minimum duration over ranks at the same
/// index. Only the common prefix of collective counts is covered; the
/// second return is `(kmin, kmax)` so callers can report truncation.
pub(crate) fn collective_waits(ranks: &[RankSpans]) -> (CollectiveWaits, (usize, usize)) {
    let mut colls: Vec<Vec<(f64, f64)>> = ranks
        .iter()
        .map(|r| {
            let mut c: Vec<(f64, f64)> = r
                .spans
                .iter()
                .filter(|s| s.cat == "comm" && is_collective(&s.name))
                .map(|s| (s.ts, s.dur))
                .collect();
            c.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            c
        })
        .collect();
    let kmin = colls.iter().map(Vec::len).min().unwrap_or(0);
    let kmax = colls.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..kmin {
        let min_dur = colls.iter().map(|c| c[k].1).fold(f64::INFINITY, f64::min);
        for c in colls.iter_mut() {
            c[k].1 -= min_dur;
        }
    }
    for c in colls.iter_mut() {
        c.truncate(kmin);
    }
    (colls, (kmin, kmax))
}

/// Classify wait states from comm spans. Tolerates filtered traces: with no
/// `comm` spans everything is zero, with mismatched collective counts only
/// the common prefix is classified (and a note records the truncation).
pub fn classify(ranks: &[RankSpans]) -> WaitStates {
    let mut out =
        WaitStates { per_rank: vec![RankWaits::default(); ranks.len()], ..Default::default() };
    let (colls, (kmin, kmax)) = collective_waits(ranks);
    // Sender-side view for culprit attribution: every rank's send spans,
    // FIFO per (src, dst, tag) channel — the runtime receives from explicit
    // (src, tag) pairs, so the k-th matching recv pairs with the k-th send.
    let phase_of: Vec<PhaseIntervals> =
        ranks.iter().map(|r| PhaseIntervals::build(&r.spans)).collect();
    let mut sends: HashMap<(usize, usize, u64), VecDeque<usize>> = HashMap::new();
    for (src, r) in ranks.iter().enumerate() {
        for s in &r.spans {
            if s.cat == "comm" && s.name == "send" {
                if let (Some(dst), Some(tag)) = (s.arg("dst"), s.arg("tag")) {
                    sends
                        .entry((src, dst as usize, tag as u64))
                        .or_default()
                        .push_back(phase_of[src].phase_at(s.ts));
                }
            }
        }
    }
    for (i, r) in ranks.iter().enumerate() {
        // (sender rank, sender phase) -> (late-sender seconds, stalled recvs).
        let mut culprits: HashMap<(usize, usize), (f64, u64)> = HashMap::new();
        for s in &r.spans {
            if s.cat == "comm" && s.name == "recv" {
                let phase = phase_of[i].phase_at(s.ts);
                // `stall` is exact; older traces without it fall back to
                // the span duration, which equals the stall by construction.
                let stall = s.arg("stall").unwrap_or(s.dur);
                out.per_rank[i].late_sender[phase] += stall;
                out.per_rank[i].late_receiver[phase] += s.arg("idle").unwrap_or(0.0);
                if stall > 0.0 {
                    if let (Some(src), Some(tag)) = (s.arg("src"), s.arg("tag")) {
                        let sender_phase = sends
                            .get_mut(&(src as usize, i, tag as u64))
                            .and_then(VecDeque::pop_front);
                        if let Some(sp) = sender_phase {
                            let c = culprits.entry((src as usize, sp)).or_insert((0.0, 0));
                            c.0 += stall;
                            c.1 += 1;
                        }
                    }
                } else if let (Some(src), Some(tag)) = (s.arg("src"), s.arg("tag")) {
                    // Keep the sender's FIFO aligned even for prompt recvs.
                    if let Some(q) = sends.get_mut(&(src as usize, i, tag as u64)) {
                        q.pop_front();
                    }
                }
            }
        }
        let mut ranked: Vec<Culprit> = culprits
            .into_iter()
            .map(|((src, sender_phase), (seconds, spans))| Culprit {
                src,
                sender_phase,
                seconds,
                spans,
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .unwrap()
                .then(a.src.cmp(&b.src))
                .then(a.sender_phase.cmp(&b.sender_phase))
        });
        ranked.truncate(MAX_CULPRITS);
        out.per_rank[i].late_sender_culprits = ranked;
        for &(ts, wait) in &colls[i] {
            out.per_rank[i].collective[phase_of[i].phase_at(ts)] += wait;
        }
    }
    if kmin != kmax {
        out.notes.push(format!(
            "collective span counts differ across ranks ({kmin}..{kmax}); only the first \
             {kmin} collectives are wait-classified"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Span;

    fn span(cat: &str, name: &str, ts: f64, dur: f64, args: Vec<(&str, f64)>) -> Span {
        Span {
            cat: cat.into(),
            name: name.into(),
            ts,
            dur,
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    #[test]
    fn classifies_late_sender_and_collective_waits_per_phase() {
        // Rank 0 is fast: it waits 3s at the barrier. Rank 1 is slow: its
        // recv stalls 0.5s (late sender), barrier costs the base 1s.
        let r0 = RankSpans {
            rank: 0,
            spans: vec![
                span("phase", "flow", 0.0, 5.0, vec![]),
                span("comm", "barrier", 1.0, 4.0, vec![]),
            ],
        };
        let r1 = RankSpans {
            rank: 1,
            spans: vec![
                span("phase", "flow", 0.0, 5.0, vec![]),
                span("comm", "recv", 0.5, 0.5, vec![("stall", 0.5), ("idle", 0.0)]),
                span("comm", "barrier", 4.0, 1.0, vec![]),
            ],
        };
        let w = classify(&[r0, r1]);
        assert!(w.notes.is_empty());
        assert!((w.per_rank[0].collective[0] - 3.0).abs() < 1e-12);
        assert!((w.per_rank[1].collective[0] - 0.0).abs() < 1e-12);
        assert!((w.per_rank[1].late_sender[0] - 0.5).abs() < 1e-12);
        assert!((w.per_rank[0].total() - 3.0).abs() < 1e-12);
        assert!((w.per_rank[1].total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mismatched_collective_counts_degrade_with_note() {
        let r0 = RankSpans {
            rank: 0,
            spans: vec![
                span("comm", "barrier", 0.0, 2.0, vec![]),
                span("comm", "barrier", 2.0, 1.0, vec![]),
            ],
        };
        let r1 = RankSpans { rank: 1, spans: vec![span("comm", "barrier", 1.0, 1.0, vec![])] };
        let w = classify(&[r0, r1]);
        assert_eq!(w.notes.len(), 1);
        assert!(w.notes[0].contains("1..2"));
        // Only the first barrier pair is classified; spans fall outside any
        // phase interval so the wait lands in "other".
        assert!((w.per_rank[0].collective[NUM_PHASES - 1] - 1.0).abs() < 1e-12);
    }
}
