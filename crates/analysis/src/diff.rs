//! Analysis diffing: explain what changed between two analysis documents.
//!
//! `repro analyze` renders a single run's diagnosis; this module compares
//! *two* such documents (before/after a code change, a partitioning change,
//! a machine-model change) and reports the deltas that explain a
//! regression: critical-path elapsed, per-phase totals, the dominant rank,
//! and per-rank wait-state changes — each regressed late-sender wait
//! attributed to its **culprit sender-side span** (from the newer
//! document's `late_sender_culprits`), so the verdict reads "rank 1's
//! late-sender wait doubled *because* rank 2's connectivity-phase send got
//! later", not just "rank 1 waits more".
//!
//! Both renderings (text and JSON) are byte-deterministic for byte-equal
//! inputs and golden-tested.

use crate::input::PHASE_NAMES;
use overset_comm::NUM_PHASES;
use overset_report::{json::obj, Value};

/// Version of the diff document layout.
pub const DIFF_SCHEMA_VERSION: u64 = 1;

/// Relative growth below which a wait delta is noise, not a regression.
const REL_TOL: f64 = 0.05;
/// Absolute floor (seconds) below which any delta is noise.
const ABS_TOL: f64 = 1e-12;

/// Per-phase elapsed totals in both documents (summed over steps).
#[derive(Clone, Debug)]
pub struct PhaseDelta {
    pub phase: usize,
    pub a: f64,
    pub b: f64,
}

/// The culprit behind a regressed late-sender wait, read from the newer
/// document's attribution.
#[derive(Clone, Debug)]
pub struct CulpritRef {
    pub src: usize,
    pub sender_phase: String,
    pub seconds: f64,
    pub spans: u64,
}

/// One rank's change in one wait class.
#[derive(Clone, Debug)]
pub struct WaitDelta {
    pub rank: usize,
    /// `late_sender`, `collective`, or `late_receiver`.
    pub class: &'static str,
    pub a: f64,
    pub b: f64,
    /// Grew beyond tolerance ([`REL_TOL`]/[`ABS_TOL`]).
    pub regressed: bool,
    /// Present for regressed `late_sender` entries when the newer document
    /// carries culprit attribution.
    pub culprit: Option<CulpritRef>,
}

impl WaitDelta {
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }
}

/// The full diff of two analysis documents.
#[derive(Clone, Debug)]
pub struct AnalysisDiff {
    pub source_a: String,
    pub source_b: String,
    pub nranks: usize,
    pub total_elapsed_a: f64,
    pub total_elapsed_b: f64,
    pub dominant_rank_a: usize,
    pub dominant_rank_b: usize,
    /// All [`NUM_PHASES`] phases, in phase order.
    pub phase_totals: Vec<PhaseDelta>,
    /// Every (rank, class) pair nonzero in either document, sorted by
    /// |delta| descending (rank, then class order, as tiebreaks).
    pub wait_deltas: Vec<WaitDelta>,
    pub notes: Vec<String>,
}

fn get<'v>(doc: &'v Value, key: &str, what: &str) -> Result<&'v Value, String> {
    doc.get(key).ok_or_else(|| format!("{what}: missing key {key:?}"))
}

fn num(doc: &Value, key: &str, what: &str) -> Result<f64, String> {
    get(doc, key, what)?.as_f64().ok_or_else(|| format!("{what}: key {key:?} is not a number"))
}

/// Wait totals of one class for every rank, from a document's
/// `wait_states` array.
fn wait_totals(doc: &Value, class: &str, what: &str) -> Result<Vec<f64>, String> {
    let ranks = get(doc, "wait_states", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: wait_states is not an array"))?;
    ranks
        .iter()
        .map(|r| {
            let cls = get(r, class, what)?;
            num(cls, "total", what)
        })
        .collect()
}

fn culprit_of(doc: &Value, rank: usize) -> Option<CulpritRef> {
    let ranks = doc.get("wait_states")?.as_arr()?;
    let top = ranks.get(rank)?.get("late_sender_culprits")?.as_arr()?.first()?;
    Some(CulpritRef {
        src: top.get("src")?.as_u64()? as usize,
        sender_phase: top.get("sender_phase")?.as_str()?.to_string(),
        seconds: top.get("seconds")?.as_f64()?,
        spans: top.get("spans")?.as_u64()?,
    })
}

/// Per-phase elapsed totals summed over a document's critical-path steps.
fn phase_totals(doc: &Value, what: &str) -> Result<[f64; NUM_PHASES], String> {
    let steps = get(get(doc, "critical_path", what)?, "steps", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: critical_path.steps is not an array"))?;
    let mut out = [0.0; NUM_PHASES];
    for s in steps {
        for (p, t) in out.iter_mut().enumerate() {
            *t += num(s, &format!("t_{}", PHASE_NAMES[p]), what)?;
        }
    }
    Ok(out)
}

fn regressed(a: f64, b: f64) -> bool {
    let d = b - a;
    d > ABS_TOL && d > REL_TOL * a
}

/// Diff two parsed analysis documents (`a` = baseline, `b` = new).
pub fn diff(a: &Value, b: &Value) -> Result<AnalysisDiff, String> {
    for (doc, what) in [(a, "baseline"), (b, "new")] {
        let v = num(doc, "analysis_schema_version", what)?;
        if v != 1.0 {
            return Err(format!(
                "{what}: analysis_schema_version {v} unsupported (this build diffs v1)"
            ));
        }
    }
    let nranks_a = num(a, "nranks", "baseline")? as usize;
    let nranks_b = num(b, "nranks", "new")? as usize;
    if nranks_a != nranks_b {
        return Err(format!(
            "analyses cover different rank counts ({nranks_a} vs {nranks_b}); \
             per-rank deltas would be meaningless"
        ));
    }
    let mut notes = Vec::new();
    let nsteps_a = num(a, "nsteps", "baseline")?;
    let nsteps_b = num(b, "nsteps", "new")?;
    if nsteps_a != nsteps_b {
        notes.push(format!(
            "step counts differ ({nsteps_a} vs {nsteps_b}); totals are not per-step comparable"
        ));
    }

    let cp_a = get(a, "critical_path", "baseline")?;
    let cp_b = get(b, "critical_path", "new")?;
    let ranking_first = |cp: &Value, what: &str| -> Result<usize, String> {
        Ok(get(cp, "ranking", what)?
            .as_arr()
            .and_then(|r| r.first())
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{what}: critical_path.ranking is empty"))? as usize)
    };

    let ph_a = phase_totals(a, "baseline")?;
    let ph_b = phase_totals(b, "new")?;
    let phase_totals =
        (0..NUM_PHASES).map(|p| PhaseDelta { phase: p, a: ph_a[p], b: ph_b[p] }).collect();

    let mut wait_deltas: Vec<WaitDelta> = Vec::new();
    for class in ["late_sender", "collective", "late_receiver"] {
        let ta = wait_totals(a, class, "baseline")?;
        let tb = wait_totals(b, class, "new")?;
        for rank in 0..nranks_a {
            let (wa, wb) = (ta[rank], tb[rank]);
            if wa == 0.0 && wb == 0.0 {
                continue;
            }
            let is_reg = regressed(wa, wb);
            let culprit = if is_reg && class == "late_sender" { culprit_of(b, rank) } else { None };
            wait_deltas.push(WaitDelta {
                rank,
                class: match class {
                    "late_sender" => "late_sender",
                    "collective" => "collective",
                    _ => "late_receiver",
                },
                a: wa,
                b: wb,
                regressed: is_reg,
                culprit,
            });
        }
    }
    let class_order = |c: &str| match c {
        "late_sender" => 0u8,
        "collective" => 1,
        _ => 2,
    };
    wait_deltas.sort_by(|x, y| {
        y.delta()
            .abs()
            .partial_cmp(&x.delta().abs())
            .unwrap()
            .then(x.rank.cmp(&y.rank))
            .then(class_order(x.class).cmp(&class_order(y.class)))
    });

    Ok(AnalysisDiff {
        source_a: get(a, "source", "baseline")?.as_str().unwrap_or("?").to_string(),
        source_b: get(b, "source", "new")?.as_str().unwrap_or("?").to_string(),
        nranks: nranks_a,
        total_elapsed_a: num(cp_a, "total_elapsed", "baseline")?,
        total_elapsed_b: num(cp_b, "total_elapsed", "new")?,
        dominant_rank_a: ranking_first(cp_a, "baseline")?,
        dominant_rank_b: ranking_first(cp_b, "new")?,
        phase_totals,
        wait_deltas,
        notes,
    })
}

/// `"+12.3%"`, or `"n/a"` against a zero baseline.
fn pct(a: f64, b: f64) -> String {
    if a == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

impl AnalysisDiff {
    pub fn regressions(&self) -> impl Iterator<Item = &WaitDelta> + '_ {
        self.wait_deltas.iter().filter(|w| w.regressed)
    }

    /// Human-readable rendering, byte-deterministic.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "== analysis diff: {} -> {} ({} ranks) ==\n",
            self.source_a, self.source_b, self.nranks
        );
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }

        out.push_str("\n-- critical path --\n");
        out.push_str(&format!(
            "total elapsed: {:.6e} s -> {:.6e} s ({})\n",
            self.total_elapsed_a,
            self.total_elapsed_b,
            pct(self.total_elapsed_a, self.total_elapsed_b)
        ));
        if self.dominant_rank_a == self.dominant_rank_b {
            out.push_str(&format!("dominant rank: {} (unchanged)\n", self.dominant_rank_a));
        } else {
            out.push_str(&format!(
                "dominant rank: {} -> {}\n",
                self.dominant_rank_a, self.dominant_rank_b
            ));
        }
        out.push_str("phase totals (s):\n");
        for d in &self.phase_totals {
            if d.a == 0.0 && d.b == 0.0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:.6e} -> {:.6e} ({})\n",
                PHASE_NAMES[d.phase],
                d.a,
                d.b,
                pct(d.a, d.b)
            ));
        }

        out.push_str("\n-- wait-state deltas (lost seconds per rank) --\n");
        if self.wait_deltas.is_empty() {
            out.push_str("  (no wait time in either document)\n");
        }
        for w in self.wait_deltas.iter().take(16) {
            out.push_str(&format!(
                "  rank {:>3} {:<13} {:.4e} -> {:.4e} ({}){}\n",
                w.rank,
                w.class,
                w.a,
                w.b,
                pct(w.a, w.b),
                if w.regressed { "  REGRESSED" } else { "" }
            ));
            if let Some(c) = &w.culprit {
                out.push_str(&format!(
                    "          culprit: rank {} send in {} phase ({:.4e} s over {} spans)\n",
                    c.src, c.sender_phase, c.seconds, c.spans
                ));
            }
        }
        if self.wait_deltas.len() > 16 {
            out.push_str(&format!(
                "  ... {} more (sorted by |delta|)\n",
                self.wait_deltas.len() - 16
            ));
        }

        let nreg = self.regressions().count();
        out.push_str("\n-- verdict --\n");
        if nreg == 0 {
            out.push_str("  no wait-state regressions beyond tolerance\n");
        } else {
            out.push_str(&format!("  {nreg} wait-state regression(s):\n"));
            for w in self.regressions() {
                match &w.culprit {
                    Some(c) => out.push_str(&format!(
                        "  * rank {} {} grew {} — culprit: rank {} send in {} phase\n",
                        w.rank,
                        w.class,
                        pct(w.a, w.b),
                        c.src,
                        c.sender_phase
                    )),
                    None => out.push_str(&format!(
                        "  * rank {} {} grew {}\n",
                        w.rank,
                        w.class,
                        pct(w.a, w.b)
                    )),
                }
            }
        }
        out
    }

    /// The versioned, byte-deterministic JSON document.
    pub fn to_value(&self) -> Value {
        let phases = Value::Obj(
            self.phase_totals
                .iter()
                .map(|d| {
                    (
                        PHASE_NAMES[d.phase].to_string(),
                        obj(vec![
                            ("a", Value::Num(d.a)),
                            ("b", Value::Num(d.b)),
                            ("delta", Value::Num(d.b - d.a)),
                        ]),
                    )
                })
                .collect(),
        );
        let waits = Value::Arr(
            self.wait_deltas
                .iter()
                .map(|w| {
                    let culprit = match &w.culprit {
                        Some(c) => obj(vec![
                            ("src", Value::Num(c.src as f64)),
                            ("sender_phase", Value::Str(c.sender_phase.clone())),
                            ("seconds", Value::Num(c.seconds)),
                            ("spans", Value::Num(c.spans as f64)),
                        ]),
                        None => Value::Null,
                    };
                    obj(vec![
                        ("rank", Value::Num(w.rank as f64)),
                        ("class", Value::Str(w.class.to_string())),
                        ("a", Value::Num(w.a)),
                        ("b", Value::Num(w.b)),
                        ("delta", Value::Num(w.delta())),
                        ("regressed", Value::Bool(w.regressed)),
                        ("culprit", culprit),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("diff_schema_version", Value::Num(DIFF_SCHEMA_VERSION as f64)),
            ("generator", Value::Str("overset-analysis".into())),
            ("a", Value::Str(self.source_a.clone())),
            ("b", Value::Str(self.source_b.clone())),
            ("nranks", Value::Num(self.nranks as f64)),
            (
                "critical_path",
                obj(vec![
                    ("total_elapsed_a", Value::Num(self.total_elapsed_a)),
                    ("total_elapsed_b", Value::Num(self.total_elapsed_b)),
                    ("delta", Value::Num(self.total_elapsed_b - self.total_elapsed_a)),
                    ("dominant_rank_a", Value::Num(self.dominant_rank_a as f64)),
                    ("dominant_rank_b", Value::Num(self.dominant_rank_b as f64)),
                    ("phase_totals", phases),
                ]),
            ),
            ("wait_deltas", waits),
            ("notes", Value::Arr(self.notes.iter().map(|n| Value::Str(n.clone())).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_report::parse;

    /// A minimal hand-built analysis document.
    fn doc(late_sender_r1: f64, with_culprit: bool) -> Value {
        let culprits = if with_culprit {
            r#"[{"src": 2, "sender_phase": "connectivity", "seconds": 0.5, "spans": 6}]"#
        } else {
            "[]"
        };
        let json = format!(
            r#"{{
  "analysis_schema_version": 1,
  "source": "case",
  "nranks": 2,
  "nsteps": 1,
  "critical_path": {{
    "total_elapsed": 10.0,
    "ranking": [1, 0],
    "steps": [
      {{"t_flow": 4.0, "t_connectivity": 6.0, "t_motion": 0, "t_balance": 0, "t_other": 0}}
    ]
  }},
  "wait_states": [
    {{"rank": 0,
      "late_sender": {{"total": 0}}, "collective": {{"total": 1.0}},
      "late_receiver": {{"total": 0}}, "late_sender_culprits": []}},
    {{"rank": 1,
      "late_sender": {{"total": {late_sender_r1}}}, "collective": {{"total": 0}},
      "late_receiver": {{"total": 0}}, "late_sender_culprits": {culprits}}}
  ]
}}"#
        );
        parse(&json).unwrap()
    }

    #[test]
    fn names_regressed_class_and_culprit() {
        let d = diff(&doc(0.1, false), &doc(0.5, true)).unwrap();
        let reg: Vec<_> = d.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].rank, 1);
        assert_eq!(reg[0].class, "late_sender");
        let c = reg[0].culprit.as_ref().expect("culprit attribution");
        assert_eq!(c.src, 2);
        assert_eq!(c.sender_phase, "connectivity");
        let txt = d.render_text();
        assert!(txt.contains("REGRESSED"), "{txt}");
        assert!(txt.contains("culprit: rank 2 send in connectivity phase"), "{txt}");
    }

    #[test]
    fn small_growth_within_tolerance_is_not_a_regression() {
        let d = diff(&doc(1.0, false), &doc(1.01, true)).unwrap();
        assert_eq!(d.regressions().count(), 0);
        assert!(d.render_text().contains("no wait-state regressions"));
    }

    #[test]
    fn improvements_are_reported_but_not_regressions() {
        let d = diff(&doc(0.5, true), &doc(0.1, false)).unwrap();
        assert_eq!(d.regressions().count(), 0);
        let w = d.wait_deltas.iter().find(|w| w.class == "late_sender").unwrap();
        assert!(w.delta() < 0.0);
    }

    #[test]
    fn mismatched_rank_counts_are_an_error() {
        let mut b = doc(0.1, false);
        if let Value::Obj(pairs) = &mut b {
            for (k, v) in pairs.iter_mut() {
                if k == "nranks" {
                    *v = Value::Num(4.0);
                }
            }
        }
        let err = diff(&doc(0.1, false), &b).unwrap_err();
        assert!(err.contains("different rank counts"), "{err}");
    }

    #[test]
    fn diff_document_is_deterministic() {
        let d1 = diff(&doc(0.1, false), &doc(0.5, true)).unwrap();
        let d2 = diff(&doc(0.1, false), &doc(0.5, true)).unwrap();
        assert_eq!(d1.to_value().to_json(), d2.to_value().to_json());
        assert_eq!(d1.render_text(), d2.render_text());
    }
}
