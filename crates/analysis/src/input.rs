//! Owned span model and input adapters.
//!
//! The tracer's [`TraceEvent`] uses `&'static str` names — fine in-process,
//! impossible to materialize from a trace *file*. The analyzer therefore
//! works on an owned [`Span`] mirror (string category/name, numeric-only
//! args) with two constructors: straight from a live run's `RankTrace`s, or
//! re-parsed from the Chrome `trace_event` JSON that `repro --trace` wrote.

use overset_comm::{ArgVal, RankTrace, StepRecord, NUM_PHASES};
use overset_report::{parse, Value};

/// Phase labels in discriminant order (matches `Phase::name()`).
pub const PHASE_NAMES: [&str; NUM_PHASES] = ["flow", "connectivity", "motion", "balance", "other"];

/// Index of the catch-all phase used when a span falls outside every phase
/// interval (or its phase name is unknown).
pub const PHASE_OTHER: usize = NUM_PHASES - 1;

/// Map a phase-span name to its discriminant, `PHASE_OTHER` when unknown.
pub fn phase_index(name: &str) -> usize {
    PHASE_NAMES.iter().position(|&p| p == name).unwrap_or(PHASE_OTHER)
}

/// One completed span, owned and numeric-only (string args are dropped —
/// nothing the analyzer computes reads them).
#[derive(Clone, Debug)]
pub struct Span {
    pub cat: String,
    pub name: String,
    /// Start, virtual seconds.
    pub ts: f64,
    /// Duration, virtual seconds.
    pub dur: f64,
    pub args: Vec<(String, f64)>,
}

impl Span {
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// All spans recorded on one rank, in recording order.
#[derive(Clone, Debug)]
pub struct RankSpans {
    pub rank: usize,
    pub spans: Vec<Span>,
}

/// Everything the analyzer consumes. `steps` (flight-recorder records,
/// rank-major) is present for live runs and empty in trace-file mode, where
/// per-step structure is reconstructed from phase spans instead.
#[derive(Clone, Debug)]
pub struct AnalysisInput {
    /// Human-readable provenance ("table1/quick", a file path, ...).
    pub source: String,
    pub ranks: Vec<RankSpans>,
    pub steps: Vec<Vec<StepRecord>>,
}

impl AnalysisInput {
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Reject inputs the pipeline can say nothing meaningful about, with a
    /// message naming what was missing. Callers (the `repro analyze` CLI)
    /// turn the error into a clean exit instead of a panic or a
    /// divide-by-zero further down the pipeline.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks.iter().all(|r| r.spans.is_empty()) {
            return Err(format!(
                "{}: trace contains no spans — nothing to analyze (was tracing enabled?)",
                self.source
            ));
        }
        if self.nranks() < 2 {
            return Err(format!(
                "{}: trace covers a single rank — wait states and the comm matrix need \
                 at least 2 ranks",
                self.source
            ));
        }
        let has_steps = self.steps.iter().any(|r| !r.is_empty())
            || self
                .ranks
                .iter()
                .any(|r| r.spans.iter().any(|s| s.cat == "phase" && s.name == "flow"));
        if !has_steps {
            return Err(format!(
                "{}: no completed timesteps in the trace — need step records or at least \
                 one `flow` phase span to reconstruct per-step structure",
                self.source
            ));
        }
        Ok(())
    }

    /// Adapt a live run's traces (and optionally its flight-recorder step
    /// records) for analysis.
    pub fn from_run(source: &str, trace: &[RankTrace], steps: Vec<Vec<StepRecord>>) -> Self {
        let ranks = trace
            .iter()
            .map(|rt| RankSpans {
                rank: rt.rank,
                spans: rt
                    .events
                    .iter()
                    .map(|e| Span {
                        cat: e.cat.to_string(),
                        name: e.name.to_string(),
                        ts: e.ts,
                        dur: e.dur,
                        args: e
                            .args
                            .iter()
                            .filter_map(|(k, v)| match v {
                                ArgVal::U64(n) => Some((k.to_string(), *n as f64)),
                                ArgVal::F64(x) => Some((k.to_string(), *x)),
                                ArgVal::Str(_) => None,
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        AnalysisInput { source: source.to_string(), ranks, steps: sanitize_steps(steps) }
    }

    /// Re-parse a Chrome `trace_event` JSON document written by
    /// [`overset_comm::chrome_trace_json`]. `pid` is the rank; `ts`/`dur`
    /// come back in microseconds and are converted to virtual seconds.
    pub fn from_chrome_trace(source: &str, json: &str) -> Result<Self, String> {
        let doc = parse(json)?;
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("trace file has no traceEvents array")?;
        let mut ranks: Vec<RankSpans> = Vec::new();
        for e in events {
            // Skip metadata ("M") and anything that is not a complete span.
            if e.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let pid =
                e.get("pid").and_then(Value::as_u64).ok_or("span event missing pid")? as usize;
            let name = e.get("name").and_then(Value::as_str).ok_or("span event missing name")?;
            let cat = e.get("cat").and_then(Value::as_str).unwrap_or("");
            let ts = e.get("ts").and_then(Value::as_f64).ok_or("span event missing ts")? / 1e6;
            let dur = e.get("dur").and_then(Value::as_f64).unwrap_or(0.0) / 1e6;
            let args = match e.get("args") {
                Some(Value::Obj(pairs)) => {
                    pairs.iter().filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x))).collect()
                }
                _ => Vec::new(),
            };
            while ranks.len() <= pid {
                let rank = ranks.len();
                ranks.push(RankSpans { rank, spans: Vec::new() });
            }
            ranks[pid].spans.push(Span {
                cat: cat.to_string(),
                name: name.to_string(),
                ts,
                dur,
                args,
            });
        }
        Ok(AnalysisInput { source: source.to_string(), ranks, steps: Vec::new() })
    }
}

/// Trim per-rank step records to a common length (the flight-recorder ring
/// can in principle leave ranks with unequal retained windows).
fn sanitize_steps(steps: Vec<Vec<StepRecord>>) -> Vec<Vec<StepRecord>> {
    if steps.is_empty() {
        return steps;
    }
    let n = steps.iter().map(Vec::len).min().unwrap_or(0);
    if n == 0 {
        return Vec::new();
    }
    steps
        .into_iter()
        .map(|mut r| {
            let drop = r.len() - n;
            r.drain(..drop);
            r
        })
        .collect()
}

/// Sorted phase intervals of one rank, for attributing arbitrary spans to
/// the phase that contains them.
pub struct PhaseIntervals {
    /// `(start, end, phase_idx)` sorted by start.
    ivals: Vec<(f64, f64, usize)>,
}

impl PhaseIntervals {
    pub fn build(spans: &[Span]) -> Self {
        let mut ivals: Vec<(f64, f64, usize)> = spans
            .iter()
            .filter(|s| s.cat == "phase")
            .map(|s| (s.ts, s.ts + s.dur, phase_index(&s.name)))
            .collect();
        // Phase spans are emitted at guard drop (end order); sort by start.
        ivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.partial_cmp(&b.1).unwrap()));
        PhaseIntervals { ivals }
    }

    /// Phase containing virtual time `ts`; `PHASE_OTHER` when none does.
    /// With nested guards the latest-starting (innermost) interval wins;
    /// the backward scan is bounded because phase nesting in this codebase
    /// is at most a few levels deep.
    pub fn phase_at(&self, ts: f64) -> usize {
        let i = self.ivals.partition_point(|iv| iv.0 <= ts);
        for iv in self.ivals[..i].iter().rev().take(8) {
            if ts <= iv.1 + 1e-12 {
                return iv.2;
            }
        }
        PHASE_OTHER
    }
}

/// Like [`PhaseIntervals`], but additionally tracks which *timestep* each
/// phase interval belongs to (driver timesteps open with a `flow` phase;
/// intervals before the first `flow` span carry no step).
pub struct StepPhaseIntervals {
    /// `(start, end, phase_idx, step)` sorted by start.
    ivals: Vec<(f64, f64, usize, Option<usize>)>,
}

impl StepPhaseIntervals {
    pub fn build(spans: &[Span]) -> Self {
        let mut phases: Vec<(f64, f64, usize)> = spans
            .iter()
            .filter(|s| s.cat == "phase")
            .map(|s| (s.ts, s.ts + s.dur, phase_index(&s.name)))
            .collect();
        phases.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.partial_cmp(&b.1).unwrap()));
        let mut step: Option<usize> = None;
        let ivals = phases
            .into_iter()
            .map(|(s, e, p)| {
                if p == 0 {
                    step = Some(step.map_or(0, |x| x + 1));
                }
                (s, e, p, step)
            })
            .collect();
        StepPhaseIntervals { ivals }
    }

    /// `(step, phase)` containing virtual time `ts`, if any interval (with
    /// a step) does. Same innermost-wins rule as [`PhaseIntervals`].
    pub fn locate(&self, ts: f64) -> Option<(usize, usize)> {
        let i = self.ivals.partition_point(|iv| iv.0 <= ts);
        for iv in self.ivals[..i].iter().rev().take(8) {
            if ts <= iv.1 + 1e-12 {
                return iv.3.map(|step| (step, iv.2));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &str, name: &str, ts: f64, dur: f64) -> Span {
        Span { cat: cat.into(), name: name.into(), ts, dur, args: Vec::new() }
    }

    #[test]
    fn phase_attribution_picks_containing_interval() {
        let spans = vec![
            span("phase", "flow", 0.0, 1.0),
            span("phase", "connectivity", 1.0, 2.0),
            span("comm", "send", 0.5, 0.0),
        ];
        let iv = PhaseIntervals::build(&spans);
        assert_eq!(iv.phase_at(0.5), 0);
        assert_eq!(iv.phase_at(1.5), 1);
        assert_eq!(iv.phase_at(9.0), PHASE_OTHER);
    }

    #[test]
    fn nested_phase_intervals_resolve_to_innermost() {
        let spans =
            vec![span("phase", "connectivity", 0.0, 10.0), span("phase", "balance", 4.0, 2.0)];
        let iv = PhaseIntervals::build(&spans);
        assert_eq!(iv.phase_at(5.0), 3);
        assert_eq!(iv.phase_at(1.0), 1);
        assert_eq!(iv.phase_at(8.0), 1);
    }

    #[test]
    fn chrome_trace_roundtrip() {
        use overset_comm::{chrome_trace_json, ArgVal, RankTrace, TraceEvent};
        let trace = vec![RankTrace {
            rank: 0,
            events: vec![TraceEvent {
                cat: "comm",
                name: "send",
                ts: 1.0e-3,
                dur: 2.0e-6,
                args: vec![("dst", ArgVal::U64(1)), ("bytes", ArgVal::U64(64))],
            }],
        }];
        let json = chrome_trace_json(&trace);
        let input = AnalysisInput::from_chrome_trace("t", &json).unwrap();
        assert_eq!(input.nranks(), 1);
        let s = &input.ranks[0].spans[0];
        assert_eq!(s.name, "send");
        assert!((s.ts - 1.0e-3).abs() < 1e-9);
        assert!((s.dur - 2.0e-6).abs() < 1e-9);
        assert_eq!(s.arg("dst"), Some(1.0));
        assert_eq!(s.arg("bytes"), Some(64.0));
    }
}
