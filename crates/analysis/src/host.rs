//! `repro analyze --host`: the host-cost view of a schema-v1 run report.
//!
//! The other analyses explain *virtual* time — where the simulated machine
//! spends its seconds. This one explains *host* cost: which phase×rank
//! cells burn the most wall-clock on the machine actually running the
//! simulation, where the `MachineModel`'s virtual share disagrees with the
//! measured host share (a misprediction worth retuning), and what the
//! deterministic allocation profile looks like per phase and rank.
//!
//! Input is a report document written by `repro report` / `repro
//! bench-host` (not an analysis document). Rendering is a pure function of
//! the document, so the output is byte-deterministic and golden-tested;
//! the *wall-clock numbers inside* the document are machine-dependent, the
//! allocation numbers are not.

use crate::PHASE_NAMES;
use overset_report::Value;
use std::fmt::Write as _;

/// Hotspot rows shown in the top-N table.
pub const HOST_TOP_N: usize = 10;

/// Flag a virtual-vs-host disagreement when the measured host share of a
/// phase differs from its virtual share by more than this factor (and the
/// larger of the two shares is at least [`SHARE_FLOOR`]).
pub const DISAGREE_FACTOR: f64 = 2.0;

/// Phase shares below this fraction are noise on both axes; never flagged.
pub const SHARE_FLOOR: f64 = 0.02;

/// Render the host-cost report for a run-report document. Errors are
/// structural (not a report, missing `host` section).
pub fn render_host_report(doc: &Value) -> Result<String, String> {
    let cases = doc
        .get("cases")
        .and_then(Value::as_arr)
        .ok_or("not a run report: no cases array (expected `repro report` output)")?;
    let host = doc
        .get("host")
        .ok_or("report has no host section; regenerate it with a current `repro report`")?;

    let mut out = String::new();
    let _ = writeln!(out, "== Host-cost analysis ==");
    render_hotspots(&mut out, host);
    render_disagreement(&mut out, cases, host);
    render_alloc_profile(&mut out, cases);
    Ok(out)
}

/// Top-N host phase×rank hotspots, across all cases. Prefers the per-rank
/// series (`host.phase_ms_by_rank`); reports containing only the older
/// max-over-ranks `host.phase_ms` degrade to one row per phase with rank
/// shown as `max`.
fn render_hotspots(out: &mut String, host: &Value) {
    // (ms, label, phase index, rank label) — sorted by ms descending, ties
    // broken textually so equal timings render in a stable order.
    let mut rows: Vec<(f64, String, usize, String)> = Vec::new();
    let per_rank = host.get("phase_ms_by_rank");
    match per_rank {
        Some(Value::Obj(labels)) => {
            for (label, ranks) in labels {
                let Some(ranks) = ranks.as_arr() else { continue };
                for (rank, phases) in ranks.iter().enumerate() {
                    for (p, name) in PHASE_NAMES.iter().enumerate() {
                        if let Some(ms) = phases.get(name).and_then(Value::as_f64) {
                            rows.push((ms, label.clone(), p, format!("{rank}")));
                        }
                    }
                }
            }
        }
        _ => {
            if let Some(Value::Obj(labels)) = host.get("phase_ms") {
                for (label, phases) in labels {
                    for (p, name) in PHASE_NAMES.iter().enumerate() {
                        if let Some(ms) = phases.get(name).and_then(Value::as_f64) {
                            rows.push((ms, label.clone(), p, "max".to_string()));
                        }
                    }
                }
            }
        }
    }
    rows.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
            .then_with(|| a.3.cmp(&b.3))
    });
    let _ = writeln!(out, "\n-- Top {HOST_TOP_N} host hotspots (phase x rank) --");
    if rows.is_empty() {
        let _ = writeln!(out, "  (no host phase timings in this report)");
        return;
    }
    let _ = writeln!(out, "  {:<18} {:<14} {:>5} {:>12}", "case", "phase", "rank", "host ms");
    for (ms, label, p, rank) in rows.iter().take(HOST_TOP_N) {
        let _ = writeln!(out, "  {:<18} {:<14} {:>5} {:>12.2}", label, PHASE_NAMES[*p], rank, ms);
    }
}

/// Virtual-vs-host share table: for each case, the fraction of time each
/// phase takes on the virtual axis (`summary.t_<phase>`, the machine
/// model's prediction) next to its fraction of measured host wall-clock.
/// Rows where the two disagree by more than [`DISAGREE_FACTOR`] are
/// flagged — the `MachineModel` misprices that phase's work on this host.
fn render_disagreement(out: &mut String, cases: &[Value], host: &Value) {
    let _ = writeln!(out, "\n-- Virtual vs host phase shares --");
    let mut wrote = false;
    for case in cases {
        let label = case.get("label").and_then(Value::as_str).unwrap_or("?");
        let Some(summary) = case.get("summary") else { continue };
        let Some(hphases) = host.get("phase_ms").and_then(|p| p.get(label)) else { continue };
        let virt: Vec<f64> = PHASE_NAMES
            .iter()
            .map(|n| summary.get(&format!("t_{n}")).and_then(Value::as_f64).unwrap_or(0.0))
            .collect();
        let hms: Vec<f64> = PHASE_NAMES
            .iter()
            .map(|n| hphases.get(n).and_then(Value::as_f64).unwrap_or(0.0))
            .collect();
        let (vt, ht): (f64, f64) = (virt.iter().sum(), hms.iter().sum());
        // A corrupt or hand-edited report can carry `inf`/`nan` timings
        // (e.g. `1e999` in the JSON). A non-finite total would render NaN
        // shares and nonsense flags for *every* row of the case, so such
        // cases are skipped exactly like empty ones.
        if !vt.is_finite() || !ht.is_finite() || vt <= 0.0 || ht <= 0.0 {
            continue;
        }
        wrote = true;
        let _ =
            writeln!(out, "  {label:<18} {:<14} {:>10} {:>10}   flag", "phase", "virtual", "host");
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            let vs = virt[p] / vt;
            let hs = hms[p] / ht;
            let disagree = vs.max(hs) >= SHARE_FLOOR
                && (hs > vs * DISAGREE_FACTOR || vs > hs * DISAGREE_FACTOR);
            let _ =
                write!(out, "  {:<18} {:<14} {:>9.1}% {:>9.1}%", "", name, vs * 100.0, hs * 100.0);
            if disagree {
                let _ = write!(out, "   << model misprediction");
            }
            let _ = writeln!(out);
        }
    }
    if !wrote {
        let _ = writeln!(out, "  (no cases with both virtual and host phase timings)");
    }
}

/// Deterministic allocation profile per case: counts and bytes by phase
/// (summed over ranks) and the heaviest-allocating ranks.
fn render_alloc_profile(out: &mut String, cases: &[Value]) {
    let _ = writeln!(out, "\n-- Allocation profile (deterministic) --");
    let mut wrote = false;
    for case in cases {
        let label = case.get("label").and_then(Value::as_str).unwrap_or("?");
        let Some(alloc) = case.get("alloc") else { continue };
        let (Some(allocs), Some(bytes)) = (alloc.get("allocs"), alloc.get("bytes")) else {
            continue;
        };
        wrote = true;
        let _ = writeln!(out, "  {:<18} {:<14} {:>12} {:>16}", label, "phase", "allocs", "bytes");
        for name in PHASE_NAMES.iter() {
            let a = allocs.get(name).and_then(Value::as_f64).unwrap_or(0.0);
            let b = bytes.get(name).and_then(Value::as_f64).unwrap_or(0.0);
            let _ = writeln!(out, "  {:<18} {:<14} {:>12} {:>16}", "", name, a as u64, b as u64);
        }
        let _ = writeln!(
            out,
            "  {:<18} {:<14} {:>12} {:>16}",
            "",
            "total",
            allocs.get("total").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            bytes.get("total").and_then(Value::as_f64).unwrap_or(0.0) as u64
        );
        if let Some(by_rank) = alloc.get("by_rank").and_then(Value::as_arr) {
            let mut ranks: Vec<(usize, u64)> = by_rank
                .iter()
                .enumerate()
                .map(|(r, v)| (r, v.get("bytes").and_then(Value::as_f64).unwrap_or(0.0) as u64))
                .collect();
            ranks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let top: Vec<String> =
                ranks.iter().take(4).map(|(r, b)| format!("rank {r}: {b} B")).collect();
            let _ = writeln!(out, "  top allocating ranks: {}", top.join(", "));
        }
    }
    if !wrote {
        let _ = writeln!(
            out,
            "  (no alloc sections in this report; regenerate with a current `repro report`)"
        );
    }
}
