//! Acceptance tests for the analyzer: a synthetic skewed run must name the
//! overloaded rank, the advisor must recommend Algorithm 2's move, and the
//! rendered document must be byte-identical across runs (plus an exact
//! golden pin of the JSON layout).

use overset_analysis::{analyze, AnalysisInput};
use overset_comm::metrics::names as metric_names;
use overset_comm::trace::TraceConfig;
use overset_comm::{ArgVal, MachineModel, Phase, RankTrace, StepRecord, Universe, WorkClass};

const SKEWED_RANK: usize = 2;
const STEPS: usize = 6;

/// A 4-rank run where rank 2 does 5× the connectivity work (compute and
/// serviced points), with a ring halo exchange each step — the synthetic
/// stand-in for one grid's IGBP load concentrating on one processor.
fn skewed_run() -> (Vec<RankTrace>, Vec<Vec<StepRecord>>) {
    skewed_run_with(5.0e6)
}

/// Same workload with the overloaded rank's connectivity flops as a knob,
/// so tests can produce a before/after pair for `diff`.
fn skewed_run_with(skew_flops: f64) -> (Vec<RankTrace>, Vec<Vec<StepRecord>>) {
    let outs = Universe::builder()
        .ranks(4)
        .machine(&MachineModel::modern())
        .trace(TraceConfig::enabled())
        .run(move |c| {
            for _ in 0..STEPS {
                {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute(1.0e6, WorkClass::Flow);
                    ph.barrier();
                }
                {
                    let mut ph = c.phase(Phase::Connectivity);
                    let t0 = ph.now();
                    let (flops, serviced) = if ph.rank() == SKEWED_RANK {
                        (skew_flops, 500u64)
                    } else {
                        (1.0e6, 100u64)
                    };
                    ph.compute(flops, WorkClass::Search);
                    ph.trace_complete("conn", "serve", t0, &[("points", ArgVal::U64(serviced))]);
                    ph.metrics_mut().add(metric_names::CONN_SERVICED, serviced);
                    let dst = (ph.rank() + 1) % ph.size();
                    let src = (ph.rank() + ph.size() - 1) % ph.size();
                    ph.send(dst, 7, 1u8, 256);
                    let _: u8 = ph.recv(src, 7);
                    ph.barrier();
                }
                c.end_step();
            }
        });
    let mut traces = Vec::new();
    let mut steps = Vec::new();
    for (rank, o) in outs.into_iter().enumerate() {
        traces.push(RankTrace { rank, events: o.trace });
        steps.push(o.steps);
    }
    (traces, steps)
}

#[test]
fn skewed_run_names_overloaded_rank_and_recommends_grant() {
    let (traces, steps) = skewed_run();
    let input = AnalysisInput::from_run("skewed", &traces, steps);
    let a = analyze(&input);

    // Critical path: rank 2 bounds the run.
    assert_eq!(a.critical_path.ranking[0], SKEWED_RANK);
    assert!(a.critical_path.rank_share(SKEWED_RANK) > 0.5);
    assert_eq!(a.critical_path.steps.len(), STEPS);
    assert_eq!(a.critical_path.dominant_phase_of(SKEWED_RANK), Phase::Connectivity as usize);

    // Advisor: the move Algorithm 2 would make.
    let grant = a
        .findings
        .iter()
        .find(|f| f.kind == "grant-processor")
        .expect("skewed run must produce a grant-processor finding");
    assert_eq!(grant.rank, Some(SKEWED_RANK));
    assert!(grant.message.contains("Algorithm 2 would grant it a processor"));

    // Wait states: fast ranks wait at the connectivity barrier for rank 2;
    // rank 2 itself barely waits. Rank 3 sees rank 2's late send; rank 2
    // finds rank 1's early message already buffered (late receiver).
    let conn = Phase::Connectivity as usize;
    let w = &a.waits.per_rank;
    assert!(w[0].collective[conn] > 0.0);
    assert!(w[0].collective[conn] > 10.0 * w[SKEWED_RANK].collective[conn]);
    assert!(w[3].late_sender[conn] > 0.0);
    assert!(w[SKEWED_RANK].late_receiver[conn] > 0.0);

    // Culprit attribution: rank 3's late-sender time traces back to rank
    // 2's connectivity-phase send — the sender-side span to fix.
    let culprit = w[3].late_sender_culprits.first().expect("rank 3 must have a culprit");
    assert_eq!(culprit.src, SKEWED_RANK);
    assert_eq!(culprit.sender_phase, conn);
    assert!(culprit.seconds > 0.0 && culprit.spans > 0);

    // Comm matrix: the ring, every step, in the connectivity phase.
    let msgs = &a.matrix.msgs[conn];
    for r in 0..4 {
        assert_eq!(msgs[r][(r + 1) % 4], STEPS as u64);
        assert_eq!(a.matrix.bytes[conn][r][(r + 1) % 4], 256 * STEPS as u64);
    }
    assert_eq!(a.matrix.dropped_sends, 0);
}

#[test]
fn analysis_document_is_byte_identical_across_runs() {
    let (t1, s1) = skewed_run();
    let (t2, s2) = skewed_run();
    let a1 = analyze(&AnalysisInput::from_run("skewed", &t1, s1));
    let a2 = analyze(&AnalysisInput::from_run("skewed", &t2, s2));
    assert_eq!(a1.to_value().to_json(), a2.to_value().to_json());
    assert_eq!(a1.render_text(), a2.render_text());
}

#[test]
fn trace_file_mode_reaches_the_same_diagnosis() {
    // Round-trip through the Chrome-trace exporter (what `repro analyze
    // <trace.json>` consumes): no step records, phase structure is
    // reconstructed from spans, and the verdict must not change.
    let (traces, _) = skewed_run();
    let json = overset_comm::chrome_trace_json(&traces);
    let input = AnalysisInput::from_chrome_trace("trace.json", &json).unwrap();
    let a = analyze(&input);
    assert_eq!(a.critical_path.ranking[0], SKEWED_RANK);
    assert_eq!(a.critical_path.steps.len(), STEPS);
    let grant = a.findings.iter().find(|f| f.kind == "grant-processor").unwrap();
    assert_eq!(grant.rank, Some(SKEWED_RANK));
    assert!(a.notes.iter().any(|n| n.contains("reconstructed from phase spans")));
}

/// Exact golden for the JSON document layout on a minimal input: one rank,
/// one `flow` phase span, no communication. Pins key order, indentation,
/// and number formatting; a layout change is a conscious diff here (and an
/// `ANALYSIS_SCHEMA_VERSION` review).
#[test]
fn analysis_json_matches_golden_bytes() {
    use overset_analysis::Span;
    let input = AnalysisInput {
        source: "golden".into(),
        ranks: vec![overset_analysis::RankSpans {
            rank: 0,
            spans: vec![Span {
                cat: "phase".into(),
                name: "flow".into(),
                ts: 0.0,
                dur: 2.0,
                args: Vec::new(),
            }],
        }],
        steps: Vec::new(),
    };
    let doc = analyze(&input).to_value().to_json();
    let golden = r#"{
  "analysis_schema_version": 1,
  "generator": "overset-analysis",
  "source": "golden",
  "nranks": 1,
  "nsteps": 1,
  "notes": [
    "critical path reconstructed from phase spans (no step records)"
  ],
  "critical_path": {
    "total_elapsed": 2,
    "rank_time": [
      2
    ],
    "ranking": [
      0
    ],
    "steps": [
      {
        "step": 0,
        "elapsed": 2,
        "dominant_rank": 0,
        "dominant_phase": "flow",
        "t_flow": 2,
        "r_flow": 0,
        "t_connectivity": 0,
        "r_connectivity": 0,
        "t_motion": 0,
        "r_motion": 0,
        "t_balance": 0,
        "r_balance": 0,
        "t_other": 0,
        "r_other": 0
      }
    ]
  },
  "wait_states": [
    {
      "rank": 0,
      "late_sender": {
        "total": 0,
        "flow": 0,
        "connectivity": 0,
        "motion": 0,
        "balance": 0,
        "other": 0
      },
      "late_receiver": {
        "total": 0,
        "flow": 0,
        "connectivity": 0,
        "motion": 0,
        "balance": 0,
        "other": 0
      },
      "collective": {
        "total": 0,
        "flow": 0,
        "connectivity": 0,
        "motion": 0,
        "balance": 0,
        "other": 0
      },
      "late_sender_culprits": [],
      "lost_total": 0
    }
  ],
  "comm_matrix": {
    "total": {
      "msgs": [
        [
          0
        ]
      ],
      "bytes": [
        [
          0
        ]
      ]
    },
    "per_phase": {}
  },
  "advisor": [
    {
      "kind": "critical-rank",
      "rank": 0,
      "message": "rank 0 bounds 100.0% of critical-path time (dominant phase: flow)",
      "data": {
        "share": 1,
        "time_s": 2,
        "phase": 0
      }
    }
  ]
}
"#;
    assert_eq!(doc, golden);
}

/// Diffing a skewed before/after pair: growing rank 2's connectivity load
/// must surface as a regressed `late_sender` wait on rank 3 whose culprit
/// is rank 2's connectivity-phase send, and the rendered diff is pinned
/// byte-exact (virtual time makes both runs reproducible).
#[test]
fn analyze_diff_on_skewed_pair_names_regression_and_culprit() {
    let (ta, sa) = skewed_run();
    let (tb, sb) = skewed_run_with(10.0e6);
    let a = analyze(&AnalysisInput::from_run("before", &ta, sa)).to_value();
    let b = analyze(&AnalysisInput::from_run("after", &tb, sb)).to_value();
    let d = overset_analysis::diff(&a, &b).unwrap();

    let reg = d
        .wait_deltas
        .iter()
        .find(|w| w.regressed && w.rank == 3 && w.class == "late_sender")
        .expect("rank 3's late-sender wait must regress");
    let culprit = reg.culprit.as_ref().expect("regressed late_sender must carry a culprit");
    assert_eq!(culprit.src, SKEWED_RANK);
    assert_eq!(culprit.sender_phase, "connectivity");

    // Byte-exact pin of the rendered diff. A formatting change is a
    // conscious diff here, not a refresh.
    let golden = "\
== analysis diff: before -> after (4 ranks) ==

-- critical path --
total elapsed: 3.006143e-2 s -> 5.733416e-2 s (+90.7%)
dominant rank: 2 (unchanged)
phase totals (s):
  flow         2.751311e-3 -> 2.751311e-3 (+0.0%)
  connectivity 2.731012e-2 -> 5.458285e-2 (+99.9%)

-- wait-state deltas (lost seconds per rank) --
  rank   2 late_receiver 2.1806e-2 -> 4.9079e-2 (+125.1%)  REGRESSED
  rank   0 collective    2.1818e-2 -> 4.9091e-2 (+125.0%)  REGRESSED
  rank   1 collective    2.1818e-2 -> 4.9091e-2 (+125.0%)  REGRESSED
  rank   3 late_sender   2.1830e-2 -> 4.9103e-2 (+124.9%)  REGRESSED
          culprit: rank 2 send in connectivity phase (4.9103e-2 s over 6 spans)
  rank   2 collective    1.2154e-5 -> 1.2154e-5 (-0.0%)
  rank   0 late_sender   1.2154e-5 -> 1.2154e-5 (-0.0%)
  rank   1 late_sender   1.2154e-5 -> 1.2154e-5 (-0.0%)

-- verdict --
  4 wait-state regression(s):
  * rank 2 late_receiver grew +125.1%
  * rank 0 collective grew +125.0%
  * rank 1 collective grew +125.0%
  * rank 3 late_sender grew +124.9% — culprit: rank 2 send in connectivity phase
";
    assert_eq!(d.render_text(), golden);

    // The JSON rendering carries the same verdict, machine-readably.
    let v = d.to_value();
    assert_eq!(v.get("diff_schema_version").and_then(|x| x.as_u64()), Some(1));
    let regs: Vec<_> = v
        .get("wait_deltas")
        .and_then(|x| x.as_arr())
        .unwrap()
        .iter()
        .filter(|w| {
            w.get("regressed").map(|r| matches!(r, overset_report::Value::Bool(true))) == Some(true)
        })
        .collect();
    assert_eq!(regs.len(), 4);
}
