//! Golden test for the host-cost renderer (`repro analyze --host`): a
//! synthetic run-report document must render to exactly these bytes. The
//! renderer is a pure function of the document, so this also pins
//! byte-determinism.

use overset_analysis::render_host_report;
use overset_report::parse;

/// A hand-built schema-v1 report: one case whose host time concentrates in
/// connectivity (while the virtual model predicts flow dominates — a
/// misprediction the disagreement table must flag), with a full alloc
/// section and two ranks of host phase timings.
const REPORT: &str = r#"{
  "schema_version": 1,
  "generator": "overset-report",
  "experiment": "golden",
  "effort": "quick",
  "cases": [
    {
      "name": "airfoil",
      "label": "representative",
      "summary": {
        "t_flow": 8.0,
        "t_connectivity": 1.5,
        "t_motion": 0.3,
        "t_balance": 0.15,
        "t_other": 0.05
      },
      "alloc": {
        "allocs": {"total": 660, "flow": 100, "connectivity": 500, "motion": 40, "balance": 10, "other": 10},
        "bytes": {"total": 66000, "flow": 10000, "connectivity": 50000, "motion": 4000, "balance": 1000, "other": 1000},
        "by_rank": [
          {"allocs": 400, "bytes": 40000},
          {"allocs": 260, "bytes": 26000}
        ],
        "steps": [
          {"step": 0, "allocs": 330, "bytes": 33000},
          {"step": 1, "allocs": 330, "bytes": 33000}
        ]
      }
    }
  ],
  "host": {
    "phase_ms": {
      "representative": {"flow": 120.5, "connectivity": 300.25, "motion": 10.0, "balance": 5.0, "other": 2.0}
    },
    "phase_ms_by_rank": {
      "representative": [
        {"flow": 120.5, "connectivity": 300.25, "motion": 10.0, "balance": 5.0, "other": 2.0},
        {"flow": 110.0, "connectivity": 95.0, "motion": 8.0, "balance": 4.0, "other": 1.0}
      ]
    },
    "phase_ms_median": {
      "representative": {"flow": 110.0, "connectivity": 95.0, "motion": 8.0, "balance": 4.0, "other": 1.0}
    },
    "alloc_peak_bytes": {"representative": 524288}
  }
}"#;

const EXPECTED: &str = "\
== Host-cost analysis ==

-- Top 10 host hotspots (phase x rank) --
  case               phase           rank      host ms
  representative     connectivity       0       300.25
  representative     flow               0       120.50
  representative     flow               1       110.00
  representative     connectivity       1        95.00
  representative     motion             0        10.00
  representative     motion             1         8.00
  representative     balance            0         5.00
  representative     balance            1         4.00
  representative     other              0         2.00
  representative     other              1         1.00

-- Virtual vs host phase shares --
  representative     phase             virtual       host   flag
                     flow                80.0%      27.5%   << model misprediction
                     connectivity        15.0%      68.6%   << model misprediction
                     motion               3.0%       2.3%
                     balance              1.5%       1.1%
                     other                0.5%       0.5%

-- Allocation profile (deterministic) --
  representative     phase                allocs            bytes
                     flow                    100            10000
                     connectivity            500            50000
                     motion                   40             4000
                     balance                  10             1000
                     other                    10             1000
                     total                   660            66000
  top allocating ranks: rank 0: 40000 B, rank 1: 26000 B
";

#[test]
fn host_report_renders_to_golden_bytes() {
    let doc = parse(REPORT).expect("synthetic report parses");
    let text = render_host_report(&doc).expect("renders");
    assert_eq!(text, EXPECTED, "--- actual ---\n{text}\n--- end ---");
}

#[test]
fn host_report_is_deterministic() {
    let doc = parse(REPORT).expect("parses");
    assert_eq!(render_host_report(&doc).unwrap(), render_host_report(&doc).unwrap());
}

#[test]
fn reports_without_per_rank_timings_degrade_to_max_rows() {
    // Strip phase_ms_by_rank: the hotspot table falls back to the
    // max-over-ranks series with rank shown as `max`.
    let stripped = REPORT.replace("phase_ms_by_rank", "phase_ms_by_rank_absent");
    let doc = parse(&stripped).expect("parses");
    let text = render_host_report(&doc).unwrap();
    assert!(text.contains("  representative     connectivity     max       300.25"), "{text}");
}

#[test]
fn structural_errors_are_reported_not_panicked() {
    let no_cases = parse(r#"{"schema_version": 1}"#).unwrap();
    assert!(render_host_report(&no_cases).unwrap_err().contains("no cases"));
    let no_host = parse(r#"{"schema_version": 1, "cases": []}"#).unwrap();
    assert!(render_host_report(&no_host).unwrap_err().contains("no host section"));
}

#[test]
fn non_finite_phase_totals_skip_the_share_table() {
    // `1e999` overflows f64 and parses as +inf — the shape a corrupt or
    // hand-edited report smuggles non-finite timings in with. A case whose
    // virtual (or host) phase total is non-finite must be skipped by the
    // share table (never rendered as NaN percentages or spurious
    // misprediction flags); the rest of the report still renders.
    let poisoned = REPORT.replace(r#""t_flow": 8.0"#, r#""t_flow": 1e999"#);
    let doc = parse(&poisoned).expect("report with inf timing parses");
    let text = render_host_report(&doc).expect("renders");
    assert!(
        text.contains("(no cases with both virtual and host phase timings)"),
        "inf-total case must be skipped, got:\n{text}"
    );
    assert!(!text.contains("NaN"), "no NaN may leak into the rendering:\n{text}");
    assert!(!text.contains("model misprediction"), "a skipped case must not flag rows:\n{text}");
    // The hotspot and allocation tables are unaffected by virtual timings.
    assert!(text.contains("-- Top 10 host hotspots"), "{text}");
    assert!(text.contains("top allocating ranks"), "{text}");
}

#[test]
fn nan_host_totals_skip_the_share_table() {
    // inf - inf = NaN at the summation: two opposite-signed overflows in
    // the host series. The guard is on finiteness, not just sign, so this
    // row set is skipped too instead of rendering NaN shares.
    let poisoned = REPORT.replace(
        r#""flow": 120.5, "connectivity": 300.25"#,
        r#""flow": 1e999, "connectivity": -1e999"#,
    );
    let doc = parse(&poisoned).expect("parses");
    let text = render_host_report(&doc).expect("renders");
    assert!(
        text.contains("(no cases with both virtual and host phase timings)"),
        "NaN-total case must be skipped:\n{text}"
    );
    assert!(!text.contains("NaN"), "{text}");
}
