//! Property-based tests of the adaptive off-body Cartesian scheme.

use overset_amr::{generate, level_histogram, locate_any, proximity_oracle, OffBodyConfig};
use overset_grid::Aabb;
use proptest::prelude::*;

fn cfg(bricks: [usize; 3], cells: usize, max_level: usize) -> OffBodyConfig {
    OffBodyConfig {
        domain: Aabb::new([-6.0; 3], [6.0; 3]),
        bricks_per_axis: bricks,
        cells_per_edge: cells,
        max_level,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Brick generation tiles the domain exactly (volumes sum, no overlap at
    /// sampled points) for arbitrary body positions.
    #[test]
    fn bricks_tile_domain(
        bx in -4.0f64..4.0, by in -4.0f64..4.0, bz in -4.0f64..4.0,
        half in 0.3f64..1.5,
        max_level in 1usize..3,
        px in 0.0f64..1.0, py in 0.0f64..1.0, pz in 0.0f64..1.0,
    ) {
        let body = Aabb::new([bx - half, by - half, bz - half], [bx + half, by + half, bz + half]);
        let c = cfg([3, 3, 3], 4, max_level);
        let bricks = generate(&c, &proximity_oracle(vec![body], max_level));
        // Volume conservation.
        let vol: f64 = bricks
            .iter()
            .map(|b| {
                let e = b.bbox().extent();
                e[0] * e[1] * e[2]
            })
            .sum();
        prop_assert!((vol - 12.0f64.powi(3)).abs() < 1e-6 * vol);
        // A random interior point is inside exactly one brick.
        let pt = [-6.0 + 12.0 * px, -6.0 + 12.0 * py, -6.0 + 12.0 * pz];
        let inside = bricks
            .iter()
            .filter(|b| {
                let bb = b.bbox();
                (0..3).all(|d| pt[d] > bb.min[d] + 1e-9 && pt[d] < bb.max[d] - 1e-9)
            })
            .count();
        prop_assert!(inside <= 1, "point in {inside} bricks");
        // locate_any finds a containing brick for interior points.
        if inside == 1 {
            let d = locate_any(&bricks, pt, None);
            prop_assert!(d.is_some());
            prop_assert!(bricks[d.unwrap().brick].bbox().contains(pt));
        }
        // Levels never exceed the maximum.
        let hist = level_histogram(&bricks);
        prop_assert!(hist.len() <= max_level + 1);
    }

    /// Refinement is monotone in proximity: every finest-level brick is
    /// closer to the body than the farthest coarsest-level brick.
    #[test]
    fn refinement_tracks_proximity(
        bx in -3.0f64..3.0,
        max_level in 2usize..4,
    ) {
        let body = Aabb::new([bx - 0.8, -0.8, -0.8], [bx + 0.8, 0.8, 0.8]);
        let c = cfg([3, 3, 3], 4, max_level);
        let bricks = generate(&c, &proximity_oracle(vec![body], max_level));
        let center = body.center();
        let dist = |b: &overset_amr::Brick| {
            let bc = b.bbox().center();
            (0..3).map(|d| (bc[d] - center[d]).powi(2)).sum::<f64>().sqrt()
        };
        let hist = level_histogram(&bricks);
        let finest = hist.len() - 1;
        if finest > 0 && hist[finest] > 0 && hist[0] > 0 {
            let max_fine: f64 = bricks
                .iter()
                .filter(|b| b.level == finest)
                .map(dist)
                .fold(0.0, f64::max);
            let max_coarse: f64 = bricks
                .iter()
                .filter(|b| b.level == 0)
                .map(dist)
                .fold(0.0, f64::max);
            prop_assert!(
                max_fine < max_coarse,
                "finest bricks farther ({max_fine}) than coarsest extent ({max_coarse})"
            );
        }
    }
}
