//! The adaptive overset Cartesian scheme of Section 5 — the paper's "future
//! work" direction, implemented: near-body curvilinear grids for viscous
//! resolution plus an automatically adapted system of off-body Cartesian
//! bricks, executed with the entirely coarse-grain grouping strategy
//! (Algorithm 3) and O(1) Cartesian connectivity.
//!
//! * [`offbody`] — octree-style generation of seven-parameter Cartesian
//!   bricks, refinement by proximity to the near-body grids,
//! * [`adapt`] — the adapt cycle: regenerate under a motion + solution-error
//!   oracle and transfer the solution,
//! * [`connect`] — O(1) donor location among bricks (no stencil walks),
//! * [`scheme`] — the running system: group-parallel flow solve (rayon:
//!   one task per group — the paper's "clusters of shared-memory
//!   processors"), connectivity, and adapt cycles for an X-38-like body.

pub mod adapt;
pub mod connect;
pub mod offbody;
pub mod scheme;

pub use adapt::{adapt_cycle, AdaptStats};
pub use connect::{build_adjacency, locate_among, locate_any, BrickDonor};
pub use offbody::{generate, level_histogram, proximity_oracle, Brick, OffBodyConfig};
pub use scheme::{AdaptiveScheme, SchemeConfig, SchemeReport};
