//! The adaption cycle: the off-body domain is "automatically repartitioned
//! during adaption in response to body motion and estimates of solution
//! error, facilitating both refinement and coarsening".
//!
//! Each cycle regenerates the brick system from the current refinement
//! oracle (proximity to the moved body ∪ error estimate) and transfers the
//! solution from the old bricks to the new by trilinear interpolation —
//! "each adaption step requires interpolation of information on the coarse
//! systems to the refined grids as well as re-distribution of data after
//! the adapt cycle".

use crate::connect::{donor_weights, locate_any};
use crate::offbody::{generate, level_histogram, Brick, OffBodyConfig};
use overset_grid::field::{StateField, NVAR};
use overset_grid::Aabb;

/// Outcome of one adapt cycle.
#[derive(Clone, Debug)]
pub struct AdaptStats {
    pub bricks_before: usize,
    pub bricks_after: usize,
    pub hist_before: Vec<usize>,
    pub hist_after: Vec<usize>,
    /// Regions whose level rose / fell (sampled at new brick centers).
    pub refined: usize,
    pub coarsened: usize,
    /// Points whose state was transferred.
    pub points_transferred: usize,
}

/// Run one adapt cycle: regenerate bricks under `oracle` and transfer the
/// per-brick states. `states[i]` is brick `i`'s solution field (node-major,
/// matching `bricks[i].grid.dims`).
pub fn adapt_cycle(
    cfg: &OffBodyConfig,
    bricks: &[Brick],
    states: &[StateField],
    oracle: &dyn Fn(&Aabb, usize) -> bool,
    freestream: [f64; NVAR],
) -> (Vec<Brick>, Vec<StateField>, AdaptStats) {
    assert_eq!(bricks.len(), states.len());
    let new_bricks = generate(cfg, oracle);

    let mut refined = 0usize;
    let mut coarsened = 0usize;
    let mut transferred = 0usize;
    let mut new_states = Vec::with_capacity(new_bricks.len());
    for nb in &new_bricks {
        // Level-change bookkeeping at the brick center.
        if let Some(old) = locate_any(bricks, nb.bbox().center(), None) {
            let ol = bricks[old.brick].level;
            if nb.level > ol {
                refined += 1;
            } else if nb.level < ol {
                coarsened += 1;
            }
        }
        // Solution transfer: trilinear from the old system.
        let dims = nb.grid.dims;
        let state = StateField::from_fn(dims, |p| {
            let x = nb.grid.xyz(p);
            match locate_any(bricks, x, None) {
                Some(d) => {
                    transferred += 1;
                    let w = donor_weights(&d);
                    let od = bricks[d.brick].grid.dims;
                    let mut q = [0.0f64; NVAR];
                    for (ci, wi) in w.iter().enumerate() {
                        if *wi == 0.0 {
                            continue;
                        }
                        let node = overset_grid::Ijk::new(
                            (d.cell.i + (ci & 1)).min(od.ni - 1),
                            (d.cell.j + ((ci >> 1) & 1)).min(od.nj - 1),
                            (d.cell.k + ((ci >> 2) & 1)).min(od.nk - 1),
                        );
                        let qs = states[d.brick].node(node);
                        for v in 0..NVAR {
                            q[v] += wi * qs[v];
                        }
                    }
                    q
                }
                None => freestream,
            }
        });
        new_states.push(state);
    }

    let stats = AdaptStats {
        bricks_before: bricks.len(),
        bricks_after: new_bricks.len(),
        hist_before: level_histogram(bricks),
        hist_after: level_histogram(&new_bricks),
        refined,
        coarsened,
        points_transferred: transferred,
    };
    (new_bricks, new_states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offbody::proximity_oracle;

    fn cfg() -> OffBodyConfig {
        OffBodyConfig {
            domain: Aabb::new([-4.0; 3], [4.0; 3]),
            bricks_per_axis: [2, 2, 2],
            cells_per_edge: 4,
            max_level: 2,
        }
    }

    fn freestream() -> [f64; NVAR] {
        [1.0, 0.5, 0.0, 0.0, 2.0]
    }

    fn uniform_states(bricks: &[Brick]) -> Vec<StateField> {
        bricks
            .iter()
            .map(|b| {
                let mut s = StateField::new(b.grid.dims);
                s.fill_uniform(freestream());
                s
            })
            .collect()
    }

    #[test]
    fn moving_body_refines_new_region_and_coarsens_old() {
        let c = cfg();
        let body0 = Aabb::new([-2.5, -0.5, -0.5], [-1.5, 0.5, 0.5]);
        let bricks0 = generate(&c, &proximity_oracle(vec![body0], 2));
        let states0 = uniform_states(&bricks0);
        // Body moves to the other side of the domain.
        let body1 = Aabb::new([1.5, -0.5, -0.5], [2.5, 0.5, 0.5]);
        let (bricks1, states1, stats) =
            adapt_cycle(&c, &bricks0, &states0, &proximity_oracle(vec![body1], 2), freestream());
        assert!(stats.refined > 0, "{stats:?}");
        assert!(stats.coarsened > 0, "{stats:?}");
        assert_eq!(bricks1.len(), states1.len());
        // Fine bricks now cluster on the +x side.
        let max_level = bricks1.iter().map(|b| b.level).max().unwrap();
        let fine_center: f64 = {
            let fine: Vec<f64> = bricks1
                .iter()
                .filter(|b| b.level == max_level)
                .map(|b| b.bbox().center()[0])
                .collect();
            fine.iter().sum::<f64>() / fine.len() as f64
        };
        assert!(fine_center > 0.0, "fine bricks at x = {fine_center}");
    }

    #[test]
    fn uniform_state_transfers_exactly() {
        let c = cfg();
        let bricks0 = generate(&c, &proximity_oracle(vec![Aabb::new([-0.5; 3], [0.5; 3])], 2));
        let states0 = uniform_states(&bricks0);
        let (b1, s1, stats) = adapt_cycle(
            &c,
            &bricks0,
            &states0,
            &proximity_oracle(vec![Aabb::new([-1.0; 3], [1.0; 3])], 2),
            freestream(),
        );
        assert!(stats.points_transferred > 0);
        for (b, s) in b1.iter().zip(&s1) {
            for p in b.grid.dims.iter() {
                let q = s.node(p);
                for (v, qv) in q.iter().enumerate() {
                    assert!(
                        (qv - freestream()[v]).abs() < 1e-12,
                        "transfer corrupted a uniform state"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_field_transfers_exactly_on_refinement() {
        let c = cfg();
        let bricks0 = generate(&c, &|_: &Aabb, _| false); // all coarse
        let states0: Vec<StateField> = bricks0
            .iter()
            .map(|b| {
                StateField::from_fn(b.grid.dims, |p| {
                    let x = b.grid.xyz(p);
                    [x[0], x[1], x[2], x[0] + x[1], 1.0]
                })
            })
            .collect();
        // Refine everywhere by one level.
        let (b1, s1, _) = adapt_cycle(&c, &bricks0, &states0, &|_, l| l < 1, freestream());
        for (b, s) in b1.iter().zip(&s1) {
            assert_eq!(b.level, 1);
            for p in b.grid.dims.iter() {
                let x = b.grid.xyz(p);
                let q = s.node(p);
                assert!((q[0] - x[0]).abs() < 1e-9, "linear transfer error");
                assert!((q[3] - (x[0] + x[1])).abs() < 1e-9);
            }
        }
    }
}
