//! O(1) connectivity between Cartesian bricks.
//!
//! "The bulk of the connectivity solution can be performed at very low cost
//! because no donor searches are required when donor elements reside in
//! Cartesian grid components": locating the containing cell of a point in a
//! seven-parameter grid is index arithmetic ([`CartesianGrid::locate`]).

use crate::offbody::Brick;
use overset_grid::CartesianGrid;

/// Flops for one O(1) Cartesian donor location (compare with the hundreds
/// per stencil-walk search in the curvilinear case).
pub const FLOPS_PER_LOCATE: u64 = 15;

/// A donor reference into the brick system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrickDonor {
    pub brick: usize,
    pub cell: overset_grid::Ijk,
    pub loc: [f64; 3],
}

/// Locate the donor for a point among bricks, preferring the *finest* brick
/// containing it (ties by index). Linear scan over candidate bricks is
/// avoided with the caller-provided candidate list (e.g. neighbors of the
/// requesting brick); `locate_any` scans everything (setup / tests).
pub fn locate_among(
    bricks: &[Brick],
    candidates: &[usize],
    x: [f64; 3],
    exclude: Option<usize>,
) -> Option<BrickDonor> {
    let mut best: Option<(usize, BrickDonor)> = None;
    for &bi in candidates {
        if Some(bi) == exclude {
            continue;
        }
        let b = &bricks[bi];
        if let Some((cell, loc)) = b.grid.locate(x) {
            let better = match &best {
                None => true,
                Some((lvl, _)) => b.level > *lvl,
            };
            if better {
                best = Some((b.level, BrickDonor { brick: bi, cell, loc }));
            }
        }
    }
    best.map(|(_, d)| d)
}

/// Scan all bricks (setup-time convenience).
pub fn locate_any(bricks: &[Brick], x: [f64; 3], exclude: Option<usize>) -> Option<BrickDonor> {
    let all: Vec<usize> = (0..bricks.len()).collect();
    locate_among(bricks, &all, x, exclude)
}

/// Trilinear interpolation weights for a brick donor (uniform Cartesian:
/// exactly the unit-cube weights).
pub fn donor_weights(d: &BrickDonor) -> [f64; 8] {
    let [ti, tj, tk] = d.loc;
    let mut w = [0.0f64; 8];
    for dk in 0..2 {
        for dj in 0..2 {
            for di in 0..2 {
                let wi = if di == 0 { 1.0 - ti } else { ti };
                let wj = if dj == 0 { 1.0 - tj } else { tj };
                let wk = if dk == 0 { 1.0 - tk } else { tk };
                w[di + 2 * dj + 4 * dk] = wi * wj * wk;
            }
        }
    }
    w
}

/// Brick adjacency: two bricks are connected when their (slightly inflated)
/// boxes intersect — the connectivity array of Algorithm 3.
pub fn build_adjacency(bricks: &[Brick]) -> overset_balance::AdjacencyMatrix {
    let n = bricks.len();
    let mut adj = overset_balance::AdjacencyMatrix::new(n);
    let boxes: Vec<overset_grid::Aabb> = bricks
        .iter()
        .map(|b| {
            let bb = b.bbox();
            bb.inflate(0.5 * b.grid.spacing)
        })
        .collect();
    for a in 0..n {
        for b in (a + 1)..n {
            if boxes[a].intersects(&boxes[b]) {
                adj.connect(a, b);
            }
        }
    }
    adj
}

/// Check whether a grid kind participates in cheap Cartesian connectivity.
pub fn is_cartesian(_g: &CartesianGrid) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offbody::{generate, proximity_oracle, OffBodyConfig};
    use overset_grid::Aabb;

    fn system() -> Vec<Brick> {
        let cfg = OffBodyConfig {
            domain: Aabb::new([-4.0; 3], [4.0; 3]),
            bricks_per_axis: [2, 2, 2],
            cells_per_edge: 4,
            max_level: 2,
        };
        let oracle = proximity_oracle(vec![Aabb::new([-0.5; 3], [0.5; 3])], 2);
        generate(&cfg, &oracle)
    }

    #[test]
    fn locate_prefers_finest_brick() {
        let bricks = system();
        // A point near the body is covered by several levels' footprints
        // only once (bricks tile space), but test the level preference by
        // checking the located brick actually contains the point.
        let x = [0.6, 0.6, 0.6];
        let d = locate_any(&bricks, x, None).expect("point inside domain");
        assert!(bricks[d.brick].bbox().contains(x));
        // And it is the unique containing brick (tiling) or the finest.
        for (i, b) in bricks.iter().enumerate() {
            if i != d.brick && b.bbox().contains(x) {
                assert!(b.level <= bricks[d.brick].level);
            }
        }
    }

    #[test]
    fn exclude_skips_requesting_brick() {
        let bricks = system();
        let x = bricks[0].bbox().center();
        let d = locate_any(&bricks, x, Some(0));
        if let Some(d) = d {
            assert_ne!(d.brick, 0);
        }
    }

    #[test]
    fn weights_partition_unity() {
        let d =
            BrickDonor { brick: 0, cell: overset_grid::Ijk::new(1, 1, 1), loc: [0.3, 0.8, 0.5] };
        let w = donor_weights(&d);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn adjacency_links_touching_bricks() {
        let bricks = system();
        let adj = build_adjacency(&bricks);
        use overset_balance::Connectivity;
        // Every brick touches at least one other brick (tiling).
        for a in 0..bricks.len() {
            let connected = (0..bricks.len()).any(|b| a != b && adj.connected(a, b));
            assert!(connected, "brick {a} isolated");
        }
    }

    #[test]
    fn boundary_point_resolves_on_neighbor() {
        let bricks = system();
        // Take a face point of brick 0 and locate it excluding brick 0: a
        // neighbor should contain it (interior faces only).
        let bb = bricks[0].bbox();
        let x = [bb.max[0], bb.center()[1], bb.center()[2]];
        let inside_domain = x[0] < 4.0 - 1e-9;
        if inside_domain {
            let d = locate_any(&bricks, x, Some(0)).expect("neighbor donor");
            assert_ne!(d.brick, 0);
        }
    }
}
