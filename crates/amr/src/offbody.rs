//! Off-body Cartesian grid generation (Section 5 of the paper).
//!
//! The off-body portion of the domain is automatically partitioned into a
//! system of uniformly spaced Cartesian "bricks" of variable refinement
//! level. Each brick is a seven-parameter grid (bounding box + spacing).
//! Initially the refinement level is driven by proximity to the near-body
//! grids; the adaption cycle ([`crate::adapt`]) later refines and coarsens
//! in response to body motion and solution-error estimates.

use overset_grid::{Aabb, CartesianGrid, Dims};

/// One off-body brick: a uniform Cartesian grid plus its refinement level
/// (level 0 = coarsest; spacing halves per level).
#[derive(Clone, Debug)]
pub struct Brick {
    pub grid: CartesianGrid,
    pub level: usize,
}

impl Brick {
    pub fn bbox(&self) -> Aabb {
        self.grid.bounding_box()
    }

    pub fn num_points(&self) -> usize {
        self.grid.num_points()
    }
}

/// Parameters of the off-body system.
#[derive(Clone, Debug)]
pub struct OffBodyConfig {
    /// Whole computational domain.
    pub domain: Aabb,
    /// Coarsest brick size (cells per brick edge stays fixed; level-0
    /// spacing = brick_extent / cells_per_edge).
    pub bricks_per_axis: [usize; 3],
    /// Nodes per brick edge (every brick has cells_per_edge³ cells).
    pub cells_per_edge: usize,
    /// Number of refinement levels beyond level 0.
    pub max_level: usize,
}

impl OffBodyConfig {
    /// Level-0 brick extent along each axis.
    pub fn brick_extent(&self, level: usize) -> [f64; 3] {
        let e = self.domain.extent();
        let f = (1 << level) as f64;
        [
            e[0] / self.bricks_per_axis[0] as f64 / f,
            e[1] / self.bricks_per_axis[1] as f64 / f,
            e[2] / self.bricks_per_axis[2] as f64 / f,
        ]
    }
}

/// Generate the off-body brick system: bricks are refined (recursively
/// split into octants) wherever `needs_refine(bbox, level)` says the region
/// requires a finer level.
pub fn generate(cfg: &OffBodyConfig, needs_refine: &dyn Fn(&Aabb, usize) -> bool) -> Vec<Brick> {
    let mut out = Vec::new();
    let e0 = cfg.brick_extent(0);
    for bk in 0..cfg.bricks_per_axis[2] {
        for bj in 0..cfg.bricks_per_axis[1] {
            for bi in 0..cfg.bricks_per_axis[0] {
                let min = [
                    cfg.domain.min[0] + bi as f64 * e0[0],
                    cfg.domain.min[1] + bj as f64 * e0[1],
                    cfg.domain.min[2] + bk as f64 * e0[2],
                ];
                let bbox = Aabb::new(min, [min[0] + e0[0], min[1] + e0[1], min[2] + e0[2]]);
                subdivide(cfg, bbox, 0, needs_refine, &mut out);
            }
        }
    }
    out
}

fn subdivide(
    cfg: &OffBodyConfig,
    bbox: Aabb,
    level: usize,
    needs_refine: &dyn Fn(&Aabb, usize) -> bool,
    out: &mut Vec<Brick>,
) {
    if level < cfg.max_level && needs_refine(&bbox, level) {
        let c = bbox.center();
        for oct in 0..8 {
            let min = [
                if oct & 1 == 0 { bbox.min[0] } else { c[0] },
                if oct & 2 == 0 { bbox.min[1] } else { c[1] },
                if oct & 4 == 0 { bbox.min[2] } else { c[2] },
            ];
            let max = [
                if oct & 1 == 0 { c[0] } else { bbox.max[0] },
                if oct & 2 == 0 { c[1] } else { bbox.max[1] },
                if oct & 4 == 0 { c[2] } else { bbox.max[2] },
            ];
            subdivide(cfg, Aabb::new(min, max), level + 1, needs_refine, out);
        }
    } else {
        let n = cfg.cells_per_edge;
        let e = bbox.extent();
        // One (isotropic-in-index) brick; spacing from the longest edge.
        let h = e[0].max(e[1]).max(e[2]) / n as f64;
        let dims = Dims::new(
            (e[0] / h).round() as usize + 1,
            (e[1] / h).round() as usize + 1,
            (e[2] / h).round() as usize + 1,
        );
        out.push(Brick { grid: CartesianGrid::new(bbox.min, h, dims), level });
    }
}

/// A proximity-based refinement oracle: refine any region whose (inflated)
/// box intersects a body box, with the required level falling off with
/// distance — the paper's "initially, the level of refinement is based on
/// proximity to the near-body curvilinear grids".
pub fn proximity_oracle(bodies: Vec<Aabb>, max_level: usize) -> impl Fn(&Aabb, usize) -> bool {
    move |bbox: &Aabb, level: usize| {
        if level >= max_level {
            return false;
        }
        // Refine if the box is within (max_level - level) "shells" of a
        // body: the closer to the body, the finer the required level.
        let shells = (max_level - level) as f64;
        bodies.iter().any(|b| {
            let pad = 0.35 * shells * b.diagonal() / 4.0;
            bbox.intersects(&b.inflate(pad))
        })
    }
}

/// Level histogram (bricks per level), for reporting.
pub fn level_histogram(bricks: &[Brick]) -> Vec<usize> {
    let max = bricks.iter().map(|b| b.level).max().unwrap_or(0);
    let mut h = vec![0usize; max + 1];
    for b in bricks {
        h[b.level] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OffBodyConfig {
        OffBodyConfig {
            domain: Aabb::new([-8.0; 3], [8.0; 3]),
            bricks_per_axis: [4, 4, 4],
            cells_per_edge: 8,
            max_level: 3,
        }
    }

    #[test]
    fn uniform_when_no_refinement() {
        let bricks = generate(&cfg(), &|_, _| false);
        assert_eq!(bricks.len(), 64);
        assert!(bricks.iter().all(|b| b.level == 0));
        // Bricks tile the domain.
        let vol: f64 = bricks
            .iter()
            .map(|b| {
                let e = b.bbox().extent();
                e[0] * e[1] * e[2]
            })
            .sum();
        assert!((vol - 16.0f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn proximity_refines_near_body() {
        let body = Aabb::new([-1.0; 3], [1.0; 3]);
        let oracle = proximity_oracle(vec![body], 3);
        let bricks = generate(&cfg(), &oracle);
        let hist = level_histogram(&bricks);
        assert!(hist.len() >= 3, "hist {hist:?}");
        // Finest bricks hug the body; coarsest sit at the domain edge.
        for b in &bricks {
            if b.level == hist.len() - 1 {
                let c = b.bbox().center();
                let dist = c.iter().map(|x| x * x).sum::<f64>().sqrt();
                assert!(dist < 8.0, "fine brick far from body: {c:?}");
            }
        }
        // The paper: "generally hundreds to thousands" of grids.
        assert!(bricks.len() > 100, "only {} bricks", bricks.len());
    }

    #[test]
    fn volume_preserved_under_refinement() {
        let oracle = proximity_oracle(vec![Aabb::new([-1.0; 3], [1.0; 3])], 2);
        let bricks = generate(&cfg(), &oracle);
        let vol: f64 = bricks
            .iter()
            .map(|b| {
                let e = b.bbox().extent();
                e[0] * e[1] * e[2]
            })
            .sum();
        assert!((vol - 16.0f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn spacing_halves_per_level() {
        let oracle = proximity_oracle(vec![Aabb::new([-0.5; 3], [0.5; 3])], 2);
        let bricks = generate(&cfg(), &oracle);
        let h0 = bricks.iter().find(|b| b.level == 0).unwrap().grid.spacing;
        let h1 = bricks.iter().find(|b| b.level == 1).unwrap().grid.spacing;
        assert!((h0 / h1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn seven_parameters_per_brick() {
        // The paper's point: a Cartesian grid is 7 numbers. Verify the brick
        // reconstructs its node coordinates from origin + spacing alone.
        let bricks = generate(&cfg(), &|_, _| false);
        let b = &bricks[0];
        let g = b.grid;
        let p = overset_grid::Ijk::new(2, 3, 1);
        let x = g.xyz(p);
        assert_eq!(x[0], g.origin[0] + 2.0 * g.spacing);
        assert_eq!(x[1], g.origin[1] + 3.0 * g.spacing);
    }
}
