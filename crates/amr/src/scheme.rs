//! The parallel adaptive overset scheme (Section 5): near-body curvilinear
//! grid + off-body adaptive Cartesian bricks, executed with the entirely
//! coarse-grain group strategy of Algorithm 3.
//!
//! Groups of bricks are assigned to "nodes" (here: scoped threads — the
//! paper's intra-group shared-memory level); connectivity among Cartesian
//! bricks is O(1) index arithmetic; only near-body ↔ off-body transfers use
//! the traditional donor search.

use crate::adapt::{adapt_cycle, AdaptStats};
use crate::connect::{build_adjacency, donor_weights, locate_any, FLOPS_PER_LOCATE};
use crate::offbody::{generate, level_histogram, Brick, OffBodyConfig};
use overset_balance::{group_grids, Grouping};
use overset_connectivity::donor::center_start;
use overset_connectivity::{
    cut_holes_and_find_fringe, interpolate, walk_search, Igbp, SearchCost, SearchOutcome,
};
use overset_grid::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, Solid};
use overset_grid::field::{StateField, NVAR};
use overset_grid::gen::revolution::ellipsoid_shell;
use overset_grid::transform::RigidTransform;
use overset_grid::{Aabb, Ijk};
#[cfg(test)]
use overset_solver::Blank;
use overset_solver::{step_block, Block, FlowConditions, Scratch, SerialComm};

/// Configuration of the adaptive scheme demo (an X-38-like blunt body).
#[derive(Clone, Debug)]
pub struct SchemeConfig {
    pub offbody: OffBodyConfig,
    pub fc: FlowConditions,
    /// Body ellipsoid semi-axes.
    pub body_radii: [f64; 3],
    /// Number of processor groups (Algorithm 3).
    pub ngroups: usize,
    /// Pressure-gradient refinement threshold for the error indicator.
    pub error_threshold: f64,
}

impl SchemeConfig {
    pub fn x38_like(ngroups: usize) -> SchemeConfig {
        SchemeConfig {
            offbody: OffBodyConfig {
                domain: Aabb::new([-8.0, -6.0, -6.0], [10.0, 6.0, 6.0]),
                bricks_per_axis: [4, 3, 3],
                cells_per_edge: 6,
                max_level: 3,
            },
            fc: {
                let mut fc = FlowConditions::new(0.8, 4.0, 0.0);
                fc.dt = 0.02;
                fc
            },
            body_radii: [1.6, 1.0, 0.55],
            ngroups: 4,
            error_threshold: 0.02,
        }
        .with_groups(ngroups)
    }

    fn with_groups(mut self, ngroups: usize) -> Self {
        self.ngroups = ngroups.max(1);
        self
    }
}

/// The running adaptive system.
pub struct AdaptiveScheme {
    pub cfg: SchemeConfig,
    pub body_center: [f64; 3],
    pub body_solid: Solid,
    pub near: Block,
    near_scratch: Scratch,
    pub bricks: Vec<Brick>,
    pub blocks: Vec<Block>,
    scratches: Vec<Scratch>,
    pub grouping: Grouping,
    /// O(1) Cartesian locates performed in the last connectivity pass.
    pub cartesian_locates: u64,
    /// Traditional donor searches in the last pass (near-body donors).
    pub curvilinear_searches: u64,
}

impl AdaptiveScheme {
    pub fn new(cfg: SchemeConfig) -> AdaptiveScheme {
        let body_center = [0.0; 3];
        let near_grid = near_body_grid(&cfg, body_center);
        let body_solid = Solid::Ellipsoid {
            center: body_center,
            radii: [cfg.body_radii[0] * 0.93, cfg.body_radii[1] * 0.93, cfg.body_radii[2] * 0.93],
        };
        let near = Block::from_grid(0, &near_grid, near_grid.dims().full_box(), [None; 6], &cfg.fc);
        let near_scratch = Scratch::for_block(&near);

        let bricks = generate(
            &cfg.offbody,
            &crate::offbody::proximity_oracle(
                vec![near_bbox(&cfg, body_center)],
                cfg.offbody.max_level,
            ),
        );
        let (blocks, scratches) = build_brick_blocks(&cfg, &bricks, None);
        let grouping = regroup(&cfg, &bricks);
        AdaptiveScheme {
            cfg,
            body_center,
            body_solid,
            near,
            near_scratch,
            bricks,
            blocks,
            scratches,
            grouping,
            cartesian_locates: 0,
            curvilinear_searches: 0,
        }
    }

    /// Advance one step: group-parallel flow solve, then connectivity.
    pub fn step(&mut self) {
        let fc = self.cfg.fc;
        // Near-body solve (its own processor group in the full scheme).
        step_block(&mut self.near, &fc, None, &mut SerialComm, &mut self.near_scratch);

        // Off-body: one thread per group (the paper's coarse-grain
        // level); blocks within a group run sequentially on that node.
        let members: Vec<Vec<usize>> = self.grouping.members.clone();
        let mut slots: Vec<Option<(Block, Scratch)>> =
            self.blocks.drain(..).zip(self.scratches.drain(..)).map(Some).collect();
        let mut per_group: Vec<Vec<(usize, Block, Scratch)>> = members
            .iter()
            .map(|m| {
                m.iter()
                    .map(|&bi| {
                        let (b, s) = slots[bi].take().expect("brick in one group");
                        (bi, b, s)
                    })
                    .collect()
            })
            .collect();
        std::thread::scope(|s| {
            for group in per_group.iter_mut() {
                s.spawn(|| {
                    for (_, block, scratch) in group.iter_mut() {
                        step_block(block, &fc, None, &mut SerialComm, scratch);
                    }
                });
            }
        });
        let n = slots.len();
        let mut blocks: Vec<Option<Block>> = (0..n).map(|_| None).collect();
        let mut scratches: Vec<Option<Scratch>> = (0..n).map(|_| None).collect();
        for group in per_group {
            for (bi, b, s) in group {
                blocks[bi] = Some(b);
                scratches[bi] = Some(s);
            }
        }
        self.blocks = blocks.into_iter().map(|b| b.unwrap()).collect();
        self.scratches = scratches.into_iter().map(|s| s.unwrap()).collect();

        self.connectivity();
    }

    /// Re-establish connectivity: brick↔brick via O(1) locates, brick↔body
    /// and near-body outer boundary via the traditional machinery.
    pub fn connectivity(&mut self) {
        self.cartesian_locates = 0;
        self.curvilinear_searches = 0;
        let solids = vec![(usize::MAX, self.body_solid)];

        // Gather fringe lists per brick block.
        let mut fringes: Vec<Vec<Igbp>> = Vec::with_capacity(self.blocks.len());
        for b in self.blocks.iter_mut() {
            let (igbps, _) = cut_holes_and_find_fringe(b, &solids);
            fringes.push(igbps);
        }

        // Resolve brick fringe values.
        let mut updates: Vec<(usize, Ijk, [f64; NVAR])> = Vec::new();
        for (bi, igbps) in fringes.iter().enumerate() {
            for ig in igbps {
                // Prefer the near-body grid for points it covers (finer
                // resolution near the body), else the finest other brick.
                let mut resolved = None;
                if near_bbox(&self.cfg, self.body_center).contains(ig.xyz) {
                    let mut cost = SearchCost::default();
                    if let SearchOutcome::Found(d) =
                        walk_search(&self.near, ig.xyz, center_start(&self.near), &mut cost)
                    {
                        resolved = Some(interpolate(&self.near, &d));
                    }
                    self.curvilinear_searches += 1;
                }
                if resolved.is_none() {
                    self.cartesian_locates += 1;
                    if let Some(d) = locate_any(&self.bricks, ig.xyz, Some(bi)) {
                        resolved = Some(self.interp_brick(&d));
                    }
                }
                if let Some(q) = resolved {
                    updates.push((bi, ig.node, q));
                }
            }
        }
        for (bi, node, q) in updates {
            self.blocks[bi].q.set_node(node, q);
        }

        // Near-body outer fringe ← bricks (O(1) locates).
        let (near_igbps, _) = cut_holes_and_find_fringe(&mut self.near, &[]);
        for ig in &near_igbps {
            self.cartesian_locates += 1;
            if let Some(d) = locate_any(&self.bricks, ig.xyz, None) {
                let q = self.interp_brick(&d);
                self.near.q.set_node(ig.node, q);
            }
        }
    }

    fn interp_brick(&self, d: &crate::connect::BrickDonor) -> [f64; NVAR] {
        let w = donor_weights(d);
        let block = &self.blocks[d.brick];
        let mut q = [0.0f64; NVAR];
        for (ci, wi) in w.iter().enumerate() {
            if *wi == 0.0 {
                continue;
            }
            let g = Ijk::new(
                d.cell.i + (ci & 1),
                d.cell.j + ((ci >> 1) & 1),
                d.cell.k + ((ci >> 2) & 1),
            );
            let l = block.to_local(g);
            let qs = block.q.node(l);
            for v in 0..NVAR {
                q[v] += wi * qs[v];
            }
        }
        q
    }

    /// Move the body and run an adapt cycle (refine toward the new position,
    /// coarsen behind, plus the solution-error indicator). Returns stats.
    pub fn move_and_adapt(&mut self, t: &RigidTransform) -> AdaptStats {
        self.body_center = t.apply(self.body_center);
        self.body_solid = self.body_solid.transformed(t);
        self.near.apply_motion(t, self.cfg.fc.dt);

        // Error indicator: pressure variation within the region.
        let states: Vec<StateField> = self
            .blocks
            .iter()
            .map(|b| {
                StateField::from_fn(b.owned.dims(), |p| {
                    let l = Ijk::new(p.i + b.halo[0], p.j + b.halo[1], p.k + b.halo[2]);
                    *b.q.node(l)
                })
            })
            .collect();
        let near_box = near_bbox(&self.cfg, self.body_center);
        let prox = crate::offbody::proximity_oracle(vec![near_box], self.cfg.offbody.max_level);
        let bricks_ref = self.bricks.clone();
        let states_ref: Vec<StateField> = states.clone();
        let threshold = self.cfg.error_threshold;
        let oracle = move |bbox: &Aabb, level: usize| -> bool {
            if prox(bbox, level) {
                return true;
            }
            // Refine where the containing brick shows pressure variation
            // above threshold (a crude gradient estimate). Regions that
            // neither neighbour the body nor flag error COARSEN back —
            // "facilitating both refinement and coarsening".
            if let Some(d) = locate_any(&bricks_ref, bbox.center(), None) {
                let s = &states_ref[d.brick];
                let dims = bricks_ref[d.brick].grid.dims;
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for p in dims.iter() {
                    let e = s.node(p)[4];
                    mn = mn.min(e);
                    mx = mx.max(e);
                }
                return mx - mn > threshold;
            }
            false
        };
        let fs = self.cfg.fc.freestream();
        let (new_bricks, new_states, stats) =
            adapt_cycle(&self.cfg.offbody, &self.bricks, &states, &oracle, fs);
        let (mut blocks, scratches) = build_brick_blocks(&self.cfg, &new_bricks, Some(&new_states));
        for b in blocks.iter_mut() {
            let _ = b;
        }
        self.bricks = new_bricks;
        self.blocks = blocks;
        self.scratches = scratches;
        self.grouping = regroup(&self.cfg, &self.bricks);
        self.connectivity();
        stats
    }

    /// Report of the current system (the Fig. 12 statistics).
    pub fn report(&self) -> SchemeReport {
        let adj = build_adjacency(&self.bricks);
        SchemeReport {
            nbricks: self.bricks.len(),
            level_hist: level_histogram(&self.bricks),
            offbody_points: self.bricks.iter().map(|b| b.num_points()).sum(),
            nearbody_points: self.near.owned_count(),
            group_imbalance: self.grouping.imbalance(),
            cut_fraction: self.grouping.cut_fraction(&adj, self.bricks.len()),
            cartesian_locates: self.cartesian_locates,
            curvilinear_searches: self.curvilinear_searches,
            cartesian_flops: self.cartesian_locates * FLOPS_PER_LOCATE,
        }
    }
}

/// Grid statistics reported by the Fig. 12 demo.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    pub nbricks: usize,
    pub level_hist: Vec<usize>,
    pub offbody_points: usize,
    pub nearbody_points: usize,
    pub group_imbalance: f64,
    pub cut_fraction: f64,
    pub cartesian_locates: u64,
    pub curvilinear_searches: u64,
    pub cartesian_flops: u64,
}

fn near_body_grid(cfg: &SchemeConfig, center: [f64; 3]) -> CurvilinearGrid {
    let mut g = ellipsoid_shell("x38-near", 49, 13, 25, center, cfg.body_radii, 1.0, true);
    g.solids.clear(); // the scheme tracks its own (sub-surface) solid
    g
}

fn near_bbox(cfg: &SchemeConfig, center: [f64; 3]) -> Aabb {
    let r = cfg.body_radii;
    Aabb::new(
        [center[0] - r[0] - 1.0, center[1] - r[1] - 1.0, center[2] - r[2] - 1.0],
        [center[0] + r[0] + 1.0, center[1] + r[1] + 1.0, center[2] + r[2] + 1.0],
    )
}

fn build_brick_blocks(
    cfg: &SchemeConfig,
    bricks: &[Brick],
    states: Option<&[StateField]>,
) -> (Vec<Block>, Vec<Scratch>) {
    let domain = cfg.offbody.domain;
    let mut blocks = Vec::with_capacity(bricks.len());
    let mut scratches = Vec::with_capacity(bricks.len());
    for (bi, brick) in bricks.iter().enumerate() {
        let mut g = brick.grid.to_curvilinear(format!("brick-{bi}"));
        // Faces on the domain boundary are far-field; interior faces are
        // overset boundaries fed by neighbor bricks.
        let bb = brick.bbox();
        let eps = 1e-9 * domain.diagonal();
        g.patches = Face::ALL
            .iter()
            .map(|&f| {
                let on_domain = match f {
                    Face::IMin => (bb.min[0] - domain.min[0]).abs() < eps,
                    Face::IMax => (bb.max[0] - domain.max[0]).abs() < eps,
                    Face::JMin => (bb.min[1] - domain.min[1]).abs() < eps,
                    Face::JMax => (bb.max[1] - domain.max[1]).abs() < eps,
                    Face::KMin => (bb.min[2] - domain.min[2]).abs() < eps,
                    Face::KMax => (bb.max[2] - domain.max[2]).abs() < eps,
                };
                BoundaryPatch {
                    face: f,
                    kind: if on_domain { BcKind::Farfield } else { BcKind::OversetOuter },
                }
            })
            .collect();
        let mut block = Block::from_grid(bi, &g, g.dims().full_box(), [None; 6], &cfg.fc);
        if let Some(all) = states {
            let s = &all[bi];
            for p in s.dims().iter() {
                let l = block.to_local(p);
                block.q.set_node(l, *s.node(p));
            }
        }
        scratches.push(Scratch::for_block(&block));
        blocks.push(block);
    }
    (blocks, scratches)
}

fn regroup(cfg: &SchemeConfig, bricks: &[Brick]) -> Grouping {
    let sizes: Vec<usize> = bricks.iter().map(|b| b.num_points()).collect();
    let adj = build_adjacency(bricks);
    group_grids(&sizes, cfg.ngroups, &adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scheme() -> AdaptiveScheme {
        let mut cfg = SchemeConfig::x38_like(3);
        cfg.offbody.bricks_per_axis = [3, 2, 2];
        cfg.offbody.cells_per_edge = 5;
        cfg.offbody.max_level = 2;
        AdaptiveScheme::new(cfg)
    }

    #[test]
    fn scheme_builds_many_small_grids() {
        let s = small_scheme();
        let r = s.report();
        assert!(r.nbricks > 12, "bricks = {}", r.nbricks);
        assert!(r.level_hist.len() >= 2, "hist {:?}", r.level_hist);
        assert!(r.nearbody_points > 0);
        assert!(r.group_imbalance >= 1.0);
    }

    #[test]
    fn step_keeps_freestream_physical() {
        let mut s = small_scheme();
        s.connectivity();
        for _ in 0..2 {
            s.step();
        }
        for b in &s.blocks {
            for p in b.owned_local().iter() {
                if b.iblank[p] != Blank::Field {
                    continue;
                }
                let q = b.q.node(p);
                assert!(q[0] > 0.0 && q[0].is_finite(), "bad density");
            }
        }
        let r = s.report();
        assert!(r.cartesian_locates > 0);
    }

    #[test]
    fn adapt_follows_moving_body() {
        let mut s = small_scheme();
        s.connectivity();
        let t = RigidTransform::translation([2.0, 0.0, 0.0]);
        let stats = s.move_and_adapt(&t);
        assert!(stats.refined > 0, "{stats:?}");
        assert!((s.body_center[0] - 2.0).abs() < 1e-12);
        // Fine bricks center-of-mass follows the body.
        let max_level = s.bricks.iter().map(|b| b.level).max().unwrap();
        let xs: Vec<f64> = s
            .bricks
            .iter()
            .filter(|b| b.level == max_level)
            .map(|b| b.bbox().center()[0])
            .collect();
        let cm = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(cm > 0.3, "fine bricks did not follow the body: cm = {cm}");
    }

    #[test]
    fn cartesian_connectivity_dominates() {
        // "The vast majority of the interpolation donors will exist in
        // Cartesian grid components."
        let mut s = small_scheme();
        s.connectivity();
        let r = s.report();
        assert!(
            r.cartesian_locates > r.curvilinear_searches,
            "locates {} vs searches {}",
            r.cartesian_locates,
            r.curvilinear_searches
        );
    }
}
