//! Prescribed grid motions for the paper's test cases.
//!
//! * sinusoidal pitch `α(t) = α₀ sin(ωt)` for the oscillating airfoil,
//! * constant (slow) descent for the delta wing,
//! * the ejected-store trajectory (prescribed, as in the paper's store case:
//!   "the motion of the store is specified in this case rather than computed
//!   from the aerodynamic forces").
//!
//! Each motion produces, per timestep, the incremental [`RigidTransform`]
//! from the pose at `t` to the pose at `t + dt`; the overset driver applies
//! it to the body's component grids, which is what invalidates the domain
//! connectivity and forces a DCF3D re-solve each step.

use overset_grid::transform::RigidTransform;

/// A prescribed rigid motion, advanced step by step.
#[derive(Clone, Debug)]
pub enum Prescribed {
    /// Pitch oscillation about `pivot` around `axis`: α(t) = α₀ sin(ω t).
    PitchOscillation { alpha0: f64, omega: f64, pivot: [f64; 3], axis: [f64; 3], time: f64 },
    /// Constant translation velocity.
    ConstantVelocity { velocity: [f64; 3], time: f64 },
    /// Store ejection: ejector stroke accelerates the store downward for
    /// `stroke_time`, after which gravity alone acts; a growing nose-down
    /// pitch rate is superimposed. `offset` tracks the accumulated CG
    /// displacement so the pitch pivot rides with the store.
    StoreEjection {
        pivot0: [f64; 3],
        eject_accel: f64,
        stroke_time: f64,
        gravity: f64,
        pitch_accel: f64,
        time: f64,
        offset: [f64; 3],
    },
}

impl Prescribed {
    /// The paper's airfoil motion: α₀ = 5°, ω = π/2, quarter-chord pivot.
    pub fn paper_airfoil_pitch() -> Prescribed {
        Prescribed::PitchOscillation {
            alpha0: 5.0f64.to_radians(),
            omega: std::f64::consts::FRAC_PI_2,
            pivot: [0.25, 0.0, 0.0],
            axis: [0.0, 0.0, 1.0],
            time: 0.0,
        }
    }

    /// The delta wing's slow descent at Mach `m` (paper: M = 0.064) given the
    /// freestream sound speed.
    pub fn descent(mach: f64, sound_speed: f64) -> Prescribed {
        Prescribed::ConstantVelocity { velocity: [0.0, 0.0, -mach * sound_speed], time: 0.0 }
    }

    /// A generic store-ejection trajectory starting at `pivot0` (the store CG).
    pub fn store_ejection(pivot0: [f64; 3]) -> Prescribed {
        Prescribed::StoreEjection {
            pivot0,
            eject_accel: 6.0,
            stroke_time: 0.25,
            gravity: 1.0,
            pitch_accel: 0.25,
            time: 0.0,
            offset: [0.0; 3],
        }
    }

    /// Current absolute pitch angle (for tests; only meaningful for
    /// `PitchOscillation` and `StoreEjection`).
    pub fn current_angle(&self) -> f64 {
        match self {
            Prescribed::PitchOscillation { alpha0, omega, time, .. } => {
                alpha0 * (omega * time).sin()
            }
            Prescribed::StoreEjection { pitch_accel, time, .. } => -0.5 * pitch_accel * time * time,
            Prescribed::ConstantVelocity { .. } => 0.0,
        }
    }

    /// Advance by `dt`, returning the incremental transform to apply to the
    /// body's grids.
    pub fn step(&mut self, dt: f64) -> RigidTransform {
        match self {
            Prescribed::PitchOscillation { alpha0, omega, pivot, axis, time } => {
                let a0 = *alpha0 * (*omega * *time).sin();
                *time += dt;
                let a1 = *alpha0 * (*omega * *time).sin();
                RigidTransform::rotation_about(*pivot, *axis, a1 - a0)
            }
            Prescribed::ConstantVelocity { velocity, time } => {
                *time += dt;
                RigidTransform::translation([velocity[0] * dt, velocity[1] * dt, velocity[2] * dt])
            }
            Prescribed::StoreEjection {
                pivot0,
                eject_accel,
                stroke_time,
                gravity,
                pitch_accel,
                time,
                offset,
            } => {
                // Downward displacement z(t): ejector stroke then ballistic.
                let z = |t: f64| -> f64 {
                    let a = *eject_accel;
                    let ts = *stroke_time;
                    if t <= ts {
                        -0.5 * (a + *gravity) * t * t
                    } else {
                        let z_s = -0.5 * (a + *gravity) * ts * ts;
                        let w_s = -(a + *gravity) * ts;
                        z_s + w_s * (t - ts) - 0.5 * *gravity * (t - ts) * (t - ts)
                    }
                };
                let th = |t: f64| -0.5 * *pitch_accel * t * t;
                let t0 = *time;
                *time += dt;
                let t1 = *time;
                let dz = z(t1) - z(t0);
                let dth = th(t1) - th(t0);
                let pivot = [pivot0[0] + offset[0], pivot0[1] + offset[1], pivot0[2] + offset[2]];
                offset[2] += dz;
                // Nose-down pitch about the (moving) CG, axis = +y.
                RigidTransform {
                    rotation: overset_grid::transform::Quat::from_axis_angle([0.0, 1.0, 0.0], dth),
                    pivot,
                    translation: [0.0, 0.0, dz],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pitch_oscillation_tracks_sine() {
        let mut m = Prescribed::paper_airfoil_pitch();
        let dt = 0.01;
        let steps = 100; // t = 1.0
        let mut total = RigidTransform::IDENTITY;
        for _ in 0..steps {
            let t = m.step(dt);
            // Compose: pure rotations about the same fixed pivot compose by
            // quaternion multiplication.
            total = RigidTransform {
                rotation: t.rotation.mul(&total.rotation),
                pivot: t.pivot,
                translation: [0.0; 3],
            };
        }
        let expect = 5.0f64.to_radians() * (std::f64::consts::FRAC_PI_2 * 1.0).sin();
        assert!((m.current_angle() - expect).abs() < 1e-12);
        // Accumulated rotation angle = 2*acos(w).
        let acc = 2.0 * total.rotation.w.acos();
        assert!((acc - expect).abs() < 1e-9, "acc {acc} expect {expect}");
    }

    #[test]
    fn pitch_motion_is_periodic() {
        let mut m = Prescribed::paper_airfoil_pitch();
        let period = 2.0 * std::f64::consts::PI / std::f64::consts::FRAC_PI_2;
        let n = 400;
        let dt = period / n as f64;
        let mut acc = overset_grid::transform::Quat::IDENTITY;
        for _ in 0..n {
            acc = m.step(dt).rotation.mul(&acc);
        }
        // After one full period the composed rotation is identity.
        assert!(acc.w.abs() > 1.0 - 1e-9, "net rotation remains: {acc:?}");
        assert!(m.current_angle().abs() < 1e-9);
    }

    #[test]
    fn constant_velocity_translates() {
        let mut m = Prescribed::descent(0.064, 10.0);
        let t = m.step(0.5);
        assert!((t.translation[2] + 0.064 * 10.0 * 0.5).abs() < 1e-12);
        assert!(t.rotation.w == 1.0);
    }

    #[test]
    fn store_ejection_accelerates_then_coasts() {
        let mut m = Prescribed::store_ejection([0.0; 3]);
        let dt = 0.05;
        let mut z = 0.0;
        let mut w_prev = 0.0;
        let mut stroke_w = None;
        for i in 0..20 {
            let t = m.step(dt);
            z += t.translation[2];
            let w = t.translation[2] / dt;
            let time = (i + 1) as f64 * dt;
            if time > 0.25 && stroke_w.is_none() {
                stroke_w = Some(w_prev);
            }
            w_prev = w;
        }
        assert!(z < -0.2, "store did not drop: z = {z}");
        // During the stroke the downward accel is (a + g); after, just g —
        // so |dw/dt| decreases after the stroke ends.
        let stroke_w = stroke_w.unwrap();
        assert!(w_prev < stroke_w, "store should keep accelerating downward");
    }

    #[test]
    fn store_pitch_is_nose_down_growing() {
        let mut m = Prescribed::store_ejection([0.0; 3]);
        for _ in 0..10 {
            m.step(0.1);
        }
        let a = m.current_angle();
        assert!(a < -0.01, "pitch angle {a}");
    }

    #[test]
    fn ejection_pivot_rides_with_store() {
        let mut m = Prescribed::store_ejection([1.0, 2.0, 3.0]);
        let mut drop = 0.0;
        for _ in 0..10 {
            let t = m.step(0.1);
            // The pivot of each incremental rotation matches the CG position
            // *before* the step, i.e. initial + accumulated drop.
            assert!((t.pivot[0] - 1.0).abs() < 1e-12);
            assert!((t.pivot[2] - (3.0 + drop)).abs() < 1e-12);
            drop += t.translation[2];
        }
    }
}
