//! Aerodynamic load integration: surface pressure → force and moment.
//!
//! For 6-DOF-coupled motion, the flow solver supplies the wall-surface node
//! coordinates and pressures of each body grid; this module integrates
//! `F = -∮ p n dS` (pressure acts along the inward surface normal of the
//! body, i.e. opposite the outward wall normal of the fluid domain) and the
//! moment about a reference point.

use crate::rigid::Loads;

/// Integrate pressure loads over a logically rectangular wall surface given
/// as `nu x nv` node coordinates (row-major, `u` fastest) and nodal
/// pressures. `normal_sign` selects which side of the surface the fluid is
/// on (+1: the computed panel normal `t_u × t_v` points into the fluid).
/// The moment is taken about `ref_point` and returned in world coordinates.
pub fn integrate_surface_loads(
    nu: usize,
    nv: usize,
    coords: &[[f64; 3]],
    pressure: &[f64],
    ref_point: [f64; 3],
    normal_sign: f64,
) -> Loads {
    assert_eq!(coords.len(), nu * nv);
    assert_eq!(pressure.len(), nu * nv);
    let at = |u: usize, v: usize| coords[u + nu * v];
    let p_at = |u: usize, v: usize| pressure[u + nu * v];
    let mut force = [0.0f64; 3];
    let mut moment = [0.0f64; 3];
    for v in 0..nv.saturating_sub(1) {
        for u in 0..nu.saturating_sub(1) {
            // Panel corners.
            let a = at(u, v);
            let b = at(u + 1, v);
            let c = at(u + 1, v + 1);
            let d = at(u, v + 1);
            // Area vector of the bilinear panel: ½ (diag1 × diag2).
            let d1 = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
            let d2 = [d[0] - b[0], d[1] - b[1], d[2] - b[2]];
            let n = [
                0.5 * (d1[1] * d2[2] - d1[2] * d2[1]),
                0.5 * (d1[2] * d2[0] - d1[0] * d2[2]),
                0.5 * (d1[0] * d2[1] - d1[1] * d2[0]),
            ];
            let p = 0.25 * (p_at(u, v) + p_at(u + 1, v) + p_at(u + 1, v + 1) + p_at(u, v + 1));
            // Pressure force on the body = -p * (outward fluid normal) dS.
            let f = [-normal_sign * p * n[0], -normal_sign * p * n[1], -normal_sign * p * n[2]];
            let centroid = [
                0.25 * (a[0] + b[0] + c[0] + d[0]),
                0.25 * (a[1] + b[1] + c[1] + d[1]),
                0.25 * (a[2] + b[2] + c[2] + d[2]),
            ];
            let r = [
                centroid[0] - ref_point[0],
                centroid[1] - ref_point[1],
                centroid[2] - ref_point[2],
            ];
            force[0] += f[0];
            force[1] += f[1];
            force[2] += f[2];
            moment[0] += r[1] * f[2] - r[2] * f[1];
            moment[1] += r[2] * f[0] - r[0] * f[2];
            moment[2] += r[0] * f[1] - r[1] * f[0];
        }
    }
    Loads { force, moment }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat square plate in the xy-plane, `n x n` nodes over [0,1]^2.
    fn plate(n: usize) -> Vec<[f64; 3]> {
        let h = 1.0 / (n - 1) as f64;
        let mut c = Vec::with_capacity(n * n);
        for v in 0..n {
            for u in 0..n {
                c.push([u as f64 * h, v as f64 * h, 0.0]);
            }
        }
        c
    }

    #[test]
    fn uniform_pressure_on_unit_plate() {
        let n = 9;
        let coords = plate(n);
        let p = vec![2.0; n * n];
        let loads = integrate_surface_loads(n, n, &coords, &p, [0.5, 0.5, 0.0], 1.0);
        // Panel normal t_u x t_v = +z; force = -p * A * z = (0, 0, -2).
        assert!(loads.force[0].abs() < 1e-12 && loads.force[1].abs() < 1e-12);
        assert!((loads.force[2] + 2.0).abs() < 1e-12, "Fz = {}", loads.force[2]);
        // Symmetric about the reference point: zero moment.
        for m in loads.moment {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn linear_pressure_produces_moment() {
        let n = 33;
        let coords = plate(n);
        // p = x: center of pressure at x = 2/3.
        let p: Vec<f64> = coords.iter().map(|c| c[0]).collect();
        let loads = integrate_surface_loads(n, n, &coords, &p, [0.0, 0.0, 0.0], 1.0);
        assert!((loads.force[2] + 0.5).abs() < 1e-6);
        // M_y = ∫ x dFz... dF = -x dA ẑ; M = r × F: M_y = z Fx - x Fz = -x*(-x) = x².
        // ∫ x² dA = 1/3.
        assert!((loads.moment[1] - 1.0 / 3.0).abs() < 1e-3, "My = {}", loads.moment[1]);
        // M_x = y F_z = -xy integrated over the plate = -1/4.
        assert!((loads.moment[0] + 0.25).abs() < 1e-3, "Mx = {}", loads.moment[0]);
    }

    #[test]
    fn normal_sign_flips_force() {
        let n = 5;
        let coords = plate(n);
        let p = vec![1.0; n * n];
        let a = integrate_surface_loads(n, n, &coords, &p, [0.0; 3], 1.0);
        let b = integrate_surface_loads(n, n, &coords, &p, [0.0; 3], -1.0);
        for d in 0..3 {
            assert!((a.force[d] + b.force[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_surface_uniform_pressure_zero_net_force() {
        // A closed cylinder surface (wrap in u): uniform pressure must give
        // ~zero net lateral force.
        let (nu, nv) = (65, 9);
        let mut coords = Vec::with_capacity(nu * nv);
        for v in 0..nv {
            for u in 0..nu {
                let th = 2.0 * std::f64::consts::PI * (u % (nu - 1)) as f64 / (nu - 1) as f64;
                coords.push([v as f64 * 0.25, th.cos(), th.sin()]);
            }
        }
        let p = vec![3.0; nu * nv];
        let loads = integrate_surface_loads(nu, nv, &coords, &p, [0.0; 3], 1.0);
        assert!(loads.force[1].abs() < 1e-9 && loads.force[2].abs() < 1e-9);
        assert!(loads.force[0].abs() < 1e-9); // open ends face +-x but cancel
    }
}
