//! Grid motion for the dynamic overset scheme (the paper's SIXDOF module).
//!
//! * [`rigid`] — six-degree-of-freedom Newton–Euler rigid-body dynamics
//!   (RK4, quaternion orientation),
//! * [`prescribed`] — prescribed motions used by the paper's three cases
//!   (sinusoidal pitch, constant descent, ejected-store trajectory),
//! * [`loads`] — surface-pressure load integration feeding the 6-DOF model.
//!
//! Each step produces an incremental [`overset_grid::RigidTransform`] that
//! the driver applies to a moving body's component grids; the motion is what
//! invalidates domain connectivity and forces a DCF3D re-solve every step.

pub mod loads;
pub mod prescribed;
pub mod rigid;

pub use loads::integrate_surface_loads;

pub use prescribed::Prescribed;
pub use rigid::{Loads, RigidBody};

/// One moving body of an overset system: the set of component grids that
/// move rigidly together, and how their motion is produced. The paper's
/// store is ten grids sharing one motion; the delta wing is three.
#[derive(Clone, Debug)]
pub struct BodyMotion {
    /// Component grids that move with this body.
    pub grids: Vec<usize>,
    pub motion: Motion,
}

impl BodyMotion {
    pub fn prescribed(grids: Vec<usize>, p: Prescribed) -> Self {
        BodyMotion { grids, motion: Motion::Prescribed(p) }
    }

    pub fn six_dof(grids: Vec<usize>, body: RigidBody, applied: Loads) -> Self {
        BodyMotion { grids, motion: Motion::SixDof { body, applied } }
    }

    /// Does this body need aerodynamic loads each step?
    pub fn needs_aero(&self) -> bool {
        matches!(self.motion, Motion::SixDof { .. })
    }

    /// Reference point for aerodynamic moment integration (the body CG for
    /// 6-DOF bodies; irrelevant for prescribed ones).
    pub fn moment_reference(&self) -> [f64; 3] {
        match &self.motion {
            Motion::SixDof { body, .. } => body.position,
            Motion::Prescribed(_) => [0.0; 3],
        }
    }
}

/// A body's motion: either prescribed or 6-DOF under integrated loads.
#[derive(Clone, Debug)]
pub enum Motion {
    Prescribed(Prescribed),
    SixDof {
        body: RigidBody,
        /// Loads applied in addition to aerodynamic loads (gravity, ejector).
        applied: Loads,
    },
}

impl Motion {
    /// Advance by `dt`; `aero` are the integrated aerodynamic loads for this
    /// step (ignored by prescribed motions). Returns the grid transform.
    pub fn step(&mut self, dt: f64, aero: &Loads) -> overset_grid::RigidTransform {
        match self {
            Motion::Prescribed(p) => p.step(dt),
            Motion::SixDof { body, applied } => {
                // Aerodynamic moment arrives in world coordinates; Euler's
                // equations want it in the body frame.
                let m_body = body.orientation.conjugate().rotate(aero.moment);
                let loads = Loads { force: aero.force, moment: m_body }.add(applied);
                body.step(&loads, dt)
            }
        }
    }
}
