//! Six-degree-of-freedom rigid-body dynamics (the paper's SIXDOF model).
//!
//! Newton–Euler equations integrated with classical RK4:
//!
//! * translation in the world frame: `ṗ = v`, `v̇ = F/m`,
//! * rotation with body-frame angular velocity `ω` and a diagonal body-frame
//!   inertia tensor `I`: `I ω̇ + ω × (I ω) = M_body`,
//! * orientation quaternion (body → world): `q̇ = ½ q ⊗ (0, ω)`.
//!
//! The quaternion is renormalized after every step.

use overset_grid::transform::{Quat, RigidTransform};

/// External loads on a body: force in world coordinates, moment about the
/// center of gravity in *body* coordinates.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Loads {
    pub force: [f64; 3],
    pub moment: [f64; 3],
}

impl Loads {
    pub const ZERO: Loads = Loads { force: [0.0; 3], moment: [0.0; 3] };

    pub fn add(&self, other: &Loads) -> Loads {
        Loads {
            force: [
                self.force[0] + other.force[0],
                self.force[1] + other.force[1],
                self.force[2] + other.force[2],
            ],
            moment: [
                self.moment[0] + other.moment[0],
                self.moment[1] + other.moment[1],
                self.moment[2] + other.moment[2],
            ],
        }
    }
}

/// State of one rigid body.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RigidBody {
    pub mass: f64,
    /// Diagonal body-frame inertia tensor.
    pub inertia: [f64; 3],
    /// Center-of-gravity position (world).
    pub position: [f64; 3],
    /// CG velocity (world).
    pub velocity: [f64; 3],
    /// Orientation quaternion (body → world).
    pub orientation: Quat,
    /// Angular velocity (body frame).
    pub omega: [f64; 3],
}

#[derive(Clone, Copy)]
struct Deriv {
    dp: [f64; 3],
    dv: [f64; 3],
    dq: Quat,
    dw: [f64; 3],
}

impl RigidBody {
    pub fn new(mass: f64, inertia: [f64; 3], position: [f64; 3]) -> Self {
        assert!(mass > 0.0 && inertia.iter().all(|&i| i > 0.0));
        RigidBody {
            mass,
            inertia,
            position,
            velocity: [0.0; 3],
            orientation: Quat::IDENTITY,
            omega: [0.0; 3],
        }
    }

    fn deriv(&self, loads: &Loads) -> Deriv {
        let i = self.inertia;
        let w = self.omega;
        // Euler's equations, body frame: ω̇ = I⁻¹ (M − ω × (I ω)).
        let iw = [i[0] * w[0], i[1] * w[1], i[2] * w[2]];
        let gyro =
            [w[1] * iw[2] - w[2] * iw[1], w[2] * iw[0] - w[0] * iw[2], w[0] * iw[1] - w[1] * iw[0]];
        let dw = [
            (loads.moment[0] - gyro[0]) / i[0],
            (loads.moment[1] - gyro[1]) / i[1],
            (loads.moment[2] - gyro[2]) / i[2],
        ];
        // q̇ = ½ q ⊗ (0, ω_body).
        let wq = Quat { w: 0.0, x: w[0], y: w[1], z: w[2] };
        let dq_full = self.orientation.mul(&wq);
        let dq =
            Quat { w: 0.5 * dq_full.w, x: 0.5 * dq_full.x, y: 0.5 * dq_full.y, z: 0.5 * dq_full.z };
        Deriv {
            dp: self.velocity,
            dv: [
                loads.force[0] / self.mass,
                loads.force[1] / self.mass,
                loads.force[2] / self.mass,
            ],
            dq,
            dw,
        }
    }

    fn advanced(&self, d: &Deriv, dt: f64) -> RigidBody {
        let mut b = *self;
        for t in 0..3 {
            b.position[t] += dt * d.dp[t];
            b.velocity[t] += dt * d.dv[t];
            b.omega[t] += dt * d.dw[t];
        }
        b.orientation = Quat {
            w: b.orientation.w + dt * d.dq.w,
            x: b.orientation.x + dt * d.dq.x,
            y: b.orientation.y + dt * d.dq.y,
            z: b.orientation.z + dt * d.dq.z,
        };
        b
    }

    /// Advance the state by `dt` under constant loads (RK4). Returns the
    /// rigid transform mapping the body's old pose to the new pose, which is
    /// what the overset driver applies to the body's component grids.
    pub fn step(&mut self, loads: &Loads, dt: f64) -> RigidTransform {
        let old_pos = self.position;
        let old_q = self.orientation;

        let k1 = self.deriv(loads);
        let k2 = self.advanced(&k1, 0.5 * dt).deriv(loads);
        let k3 = self.advanced(&k2, 0.5 * dt).deriv(loads);
        let k4 = self.advanced(&k3, dt).deriv(loads);

        let comb = Deriv {
            dp: avg3(&k1.dp, &k2.dp, &k3.dp, &k4.dp),
            dv: avg3(&k1.dv, &k2.dv, &k3.dv, &k4.dv),
            dq: Quat {
                w: (k1.dq.w + 2.0 * k2.dq.w + 2.0 * k3.dq.w + k4.dq.w) / 6.0,
                x: (k1.dq.x + 2.0 * k2.dq.x + 2.0 * k3.dq.x + k4.dq.x) / 6.0,
                y: (k1.dq.y + 2.0 * k2.dq.y + 2.0 * k3.dq.y + k4.dq.y) / 6.0,
                z: (k1.dq.z + 2.0 * k2.dq.z + 2.0 * k3.dq.z + k4.dq.z) / 6.0,
            },
            dw: avg3(&k1.dw, &k2.dw, &k3.dw, &k4.dw),
        };
        *self = self.advanced(&comb, dt);
        self.orientation = self.orientation.normalized();

        // Incremental transform old pose -> new pose:
        // x_new = p_new + ΔR (x_old - p_old), ΔR = q_new * q_old⁻¹.
        let dq = self.orientation.mul(&old_q.conjugate()).normalized();
        RigidTransform {
            rotation: dq,
            pivot: old_pos,
            translation: [
                self.position[0] - old_pos[0],
                self.position[1] - old_pos[1],
                self.position[2] - old_pos[2],
            ],
        }
    }

    /// Rotational kinetic energy (body frame).
    pub fn rotational_energy(&self) -> f64 {
        0.5 * (self.inertia[0] * self.omega[0] * self.omega[0]
            + self.inertia[1] * self.omega[1] * self.omega[1]
            + self.inertia[2] * self.omega[2] * self.omega[2])
    }

    /// Angular momentum magnitude (body frame components).
    pub fn angular_momentum_body(&self) -> [f64; 3] {
        [
            self.inertia[0] * self.omega[0],
            self.inertia[1] * self.omega[1],
            self.inertia[2] * self.omega[2],
        ]
    }
}

fn avg3(a: &[f64; 3], b: &[f64; 3], c: &[f64; 3], d: &[f64; 3]) -> [f64; 3] {
    [
        (a[0] + 2.0 * b[0] + 2.0 * c[0] + d[0]) / 6.0,
        (a[1] + 2.0 * b[1] + 2.0 * c[1] + d[1]) / 6.0,
        (a[2] + 2.0 * b[2] + 2.0 * c[2] + d[2]) / 6.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fall_kinematics() {
        let mut b = RigidBody::new(2.0, [1.0; 3], [0.0; 3]);
        let g = Loads { force: [0.0, 0.0, -9.81 * 2.0], moment: [0.0; 3] };
        let dt = 0.01;
        for _ in 0..100 {
            b.step(&g, dt);
        }
        // After 1 s: z = -g/2, w = -g.
        assert!((b.position[2] + 9.81 / 2.0).abs() < 1e-9, "z = {}", b.position[2]);
        assert!((b.velocity[2] + 9.81).abs() < 1e-9);
        assert_eq!(b.position[0], 0.0);
    }

    #[test]
    fn constant_spin_about_principal_axis() {
        let mut b = RigidBody::new(1.0, [2.0, 3.0, 4.0], [0.0; 3]);
        b.omega = [0.0, 0.0, 1.0];
        let dt = 0.01;
        for _ in 0..100 {
            b.step(&Loads::ZERO, dt);
        }
        // Principal-axis spin is steady; orientation advanced by ~1 rad.
        assert!((b.omega[2] - 1.0).abs() < 1e-9);
        assert!(b.omega[0].abs() < 1e-9 && b.omega[1].abs() < 1e-9);
        let half = 0.5f64;
        assert!((b.orientation.w - half.cos()).abs() < 1e-6);
        assert!((b.orientation.z - half.sin()).abs() < 1e-6);
    }

    #[test]
    fn torque_free_energy_conserved() {
        // Tumbling asymmetric body: rotational energy and |L| conserved.
        let mut b = RigidBody::new(1.0, [1.0, 2.0, 3.0], [0.0; 3]);
        b.omega = [0.3, 0.5, 0.7];
        let e0 = b.rotational_energy();
        let l0 = b.angular_momentum_body();
        let l0n = (l0[0] * l0[0] + l0[1] * l0[1] + l0[2] * l0[2]).sqrt();
        for _ in 0..2000 {
            b.step(&Loads::ZERO, 0.005);
        }
        let e1 = b.rotational_energy();
        let l1 = b.angular_momentum_body();
        let l1n = (l1[0] * l1[0] + l1[1] * l1[1] + l1[2] * l1[2]).sqrt();
        assert!((e1 - e0).abs() < 1e-6 * e0, "energy drift: {e0} -> {e1}");
        assert!((l1n - l0n).abs() < 1e-6 * l0n, "momentum drift");
    }

    #[test]
    fn quaternion_stays_normalized() {
        let mut b = RigidBody::new(1.0, [1.0, 2.0, 3.0], [0.0; 3]);
        b.omega = [1.0, -2.0, 0.5];
        for _ in 0..500 {
            b.step(&Loads::ZERO, 0.01);
            assert!((b.orientation.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn step_transform_moves_body_points_correctly() {
        let mut b = RigidBody::new(1.0, [1.0; 3], [5.0, 0.0, 0.0]);
        b.velocity = [1.0, 0.0, 0.0];
        b.omega = [0.0, 0.0, 2.0];
        // A material point one unit +y from the CG.
        let pt_old = [5.0, 1.0, 0.0];
        let t = b.step(&Loads::ZERO, 0.1);
        let pt_new = t.apply(pt_old);
        // Expected: CG moved to 5.1; point rotated 0.2 rad about z about CG.
        let ang = 0.2f64;
        let expect = [5.1 - ang.sin(), ang.cos(), 0.0];
        for d in 0..3 {
            assert!((pt_new[d] - expect[d]).abs() < 1e-3, "dim {d}: {pt_new:?} vs {expect:?}");
        }
    }

    #[test]
    fn loads_addition() {
        let a = Loads { force: [1.0, 0.0, 0.0], moment: [0.0, 2.0, 0.0] };
        let b = Loads { force: [0.0, 3.0, 0.0], moment: [0.0, 0.0, 4.0] };
        let c = a.add(&b);
        assert_eq!(c.force, [1.0, 3.0, 0.0]);
        assert_eq!(c.moment, [0.0, 2.0, 4.0]);
    }
}
