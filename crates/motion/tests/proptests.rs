//! Property-based tests of the rigid-body dynamics and prescribed motions.

use overset_motion::prescribed::Prescribed;
use overset_motion::rigid::{Loads, RigidBody};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Torque-free rigid bodies conserve rotational energy and the
    /// magnitude of angular momentum, for arbitrary inertia and spin.
    #[test]
    fn torque_free_invariants(
        ia in 0.2f64..5.0, ib in 0.2f64..5.0, ic in 0.2f64..5.0,
        wx in -2.0f64..2.0, wy in -2.0f64..2.0, wz in -2.0f64..2.0,
    ) {
        prop_assume!(wx.abs() + wy.abs() + wz.abs() > 0.01);
        let mut b = RigidBody::new(1.0, [ia, ib, ic], [0.0; 3]);
        b.omega = [wx, wy, wz];
        let e0 = b.rotational_energy();
        let l0 = b.angular_momentum_body();
        let l0n: f64 = l0.iter().map(|x| x * x).sum::<f64>().sqrt();
        for _ in 0..200 {
            b.step(&Loads::ZERO, 0.005);
        }
        let e1 = b.rotational_energy();
        let l1 = b.angular_momentum_body();
        let l1n: f64 = l1.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((e1 - e0).abs() < 1e-5 * e0.max(1e-12), "energy {e0} -> {e1}");
        prop_assert!((l1n - l0n).abs() < 1e-5 * l0n.max(1e-12), "momentum {l0n} -> {l1n}");
        prop_assert!((b.orientation.norm() - 1.0).abs() < 1e-10);
    }

    /// Constant force: the CG follows the analytic parabola for any mass.
    #[test]
    fn constant_force_parabola(
        mass in 0.1f64..20.0,
        f in prop::array::uniform3(-5.0f64..5.0),
        steps in 10usize..100,
    ) {
        let mut b = RigidBody::new(mass, [1.0; 3], [0.0; 3]);
        let loads = Loads { force: f, moment: [0.0; 3] };
        let dt = 0.01;
        for _ in 0..steps {
            b.step(&loads, dt);
        }
        let t = steps as f64 * dt;
        for (d, &fd) in f.iter().enumerate() {
            let expect = 0.5 * fd / mass * t * t;
            prop_assert!(
                (b.position[d] - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "dim {d}: {} vs {expect}",
                b.position[d]
            );
        }
    }

    /// The step transform maps material points exactly as the body state
    /// evolves: a point rigidly attached to the CG frame tracks through the
    /// per-step transforms.
    #[test]
    fn step_transforms_compose_to_body_pose(
        w in prop::array::uniform3(-1.0f64..1.0),
        v in prop::array::uniform3(-1.0f64..1.0),
        nsteps in 5usize..40,
    ) {
        let mut b = RigidBody::new(1.0, [2.0, 1.0, 1.5], [1.0, -2.0, 0.5]);
        b.omega = w;
        b.velocity = v;
        let p0 = [1.5, -2.0, 0.5]; // body point offset +x/2 from CG
        let offset_body = [0.5, 0.0, 0.0];
        let mut p = p0;
        let dt = 0.02;
        for _ in 0..nsteps {
            let t = b.step(&Loads::ZERO, dt);
            p = t.apply(p);
        }
        // Expected: CG + R(offset).
        let r = b.orientation.rotate(offset_body);
        let expect = [
            b.position[0] + r[0],
            b.position[1] + r[1],
            b.position[2] + r[2],
        ];
        for d in 0..3 {
            prop_assert!(
                (p[d] - expect[d]).abs() < 1e-9,
                "dim {d}: {} vs {}",
                p[d],
                expect[d]
            );
        }
    }

    /// Prescribed pitch: the accumulated transform angle always equals
    /// α(t) exactly, for any step size and duration.
    #[test]
    fn pitch_angle_exact(
        dt in 0.001f64..0.2,
        nsteps in 1usize..100,
    ) {
        let mut m = Prescribed::paper_airfoil_pitch();
        let mut acc = overset_grid::transform::Quat::IDENTITY;
        for _ in 0..nsteps {
            acc = m.step(dt).rotation.mul(&acc);
        }
        let t = dt * nsteps as f64;
        let expect = 5.0f64.to_radians() * (std::f64::consts::FRAC_PI_2 * t).sin();
        let got = 2.0 * acc.w.clamp(-1.0, 1.0).acos() * acc.z.signum();
        // Compare absolute angles (sign convention of acos).
        prop_assert!(
            (got.abs() - expect.abs()).abs() < 1e-9,
            "angle {got} vs {expect}"
        );
    }
}
