//! Property-based tests of the grid substrate: index spaces, rigid
//! transforms, metrics and the prime-factor lattice decomposition.

use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
use overset_grid::decomp::lattice_split;
use overset_grid::field::Field3;
use overset_grid::metrics::{compute_metrics, total_volume};
use overset_grid::transform::{Quat, RigidTransform};
use overset_grid::{Aabb, Dims};
use proptest::prelude::*;

proptest! {
    /// Linear offsets round-trip for arbitrary dims.
    #[test]
    fn offsets_roundtrip(ni in 1usize..20, nj in 1usize..20, nk in 1usize..8) {
        let d = Dims::new(ni, nj, nk);
        for p in d.iter() {
            prop_assert_eq!(d.unoffset(d.offset(p)), p);
        }
    }

    /// The lattice split covers the grid exactly with np disjoint boxes and
    /// preserves face alignment between neighbors.
    #[test]
    fn lattice_split_exact_cover(
        ni in 4usize..48, nj in 4usize..48, nk in 1usize..12,
        np in 1usize..24,
    ) {
        let dims = Dims::new(ni, nj, nk);
        prop_assume!(np <= dims.count());
        // Factors must fit in the dims; skip combos the splitter rejects.
        let result = std::panic::catch_unwind(|| lattice_split(dims, np));
        prop_assume!(result.is_ok());
        let dec = result.unwrap();
        prop_assert_eq!(dec.subs.len(), np);
        let total: usize = dec.subs.iter().map(|s| s.boxx.count()).sum();
        prop_assert_eq!(total, dims.count());
        prop_assert_eq!(dec.pgrid[0] * dec.pgrid[1] * dec.pgrid[2], np);
        for s in &dec.subs {
            prop_assert_eq!(dec.ordinal(dec.coord(s.ordinal)), s.ordinal);
        }
    }

    /// Rigid transforms preserve pairwise distances and compose correctly.
    #[test]
    fn rigid_transform_isometry(
        axis in prop::array::uniform3(-1.0f64..1.0),
        angle in -3.0f64..3.0,
        pivot in prop::array::uniform3(-5.0f64..5.0),
        tr in prop::array::uniform3(-5.0f64..5.0),
        a in prop::array::uniform3(-10.0f64..10.0),
        b in prop::array::uniform3(-10.0f64..10.0),
    ) {
        prop_assume!(axis.iter().map(|x| x * x).sum::<f64>() > 1e-6);
        let t = RigidTransform {
            rotation: Quat::from_axis_angle(axis, angle),
            pivot,
            translation: tr,
        };
        let (ta, tb) = (t.apply(a), t.apply(b));
        let d0: f64 = (0..3).map(|i| (a[i] - b[i]).powi(2)).sum::<f64>().sqrt();
        let d1: f64 = (0..3).map(|i| (ta[i] - tb[i]).powi(2)).sum::<f64>().sqrt();
        prop_assert!((d0 - d1).abs() < 1e-9 * (1.0 + d0));
        // inverse(t) ∘ t = id
        let back = t.inverse().apply(ta);
        for i in 0..3 {
            prop_assert!((back[i] - a[i]).abs() < 1e-9);
        }
        // then() composition agrees with sequential application.
        let t2 = RigidTransform::rotation_about(b, [0.0, 0.0, 1.0], 0.5);
        let comp = t.then(&t2);
        let seq = t2.apply(t.apply(a));
        let one = comp.apply(a);
        for i in 0..3 {
            prop_assert!((seq[i] - one[i]).abs() < 1e-9);
        }
    }

    /// Metric volumes are invariant under rigid motion (grids never stretch).
    #[test]
    fn metric_volume_rigid_invariant(
        angle in -1.5f64..1.5,
        tr in prop::array::uniform3(-3.0f64..3.0),
        n in 4usize..8,
    ) {
        let d = Dims::new(n, n, n);
        let h = 0.3;
        let coords = Field3::from_fn(d, |p| {
            [
                h * p.i as f64 + 0.02 * (p.j as f64).sin(),
                h * p.j as f64,
                h * p.k as f64 + 0.01 * (p.i as f64).cos(),
            ]
        });
        let g0 = CurvilinearGrid::new("t", coords, GridKind::Background);
        let mut g1 = g0.clone();
        g1.apply_transform(&RigidTransform {
            rotation: Quat::from_axis_angle([0.3, 1.0, -0.5], angle),
            pivot: [1.0, 0.0, 0.0],
            translation: tr,
        });
        let v0 = total_volume(&compute_metrics(&g0));
        let v1 = total_volume(&compute_metrics(&g1));
        prop_assert!((v0 - v1).abs() < 1e-8 * v0.abs().max(1.0));
    }

    /// AABB union/intersection algebra.
    #[test]
    fn aabb_algebra(
        amin in prop::array::uniform3(-5.0f64..0.0),
        asize in prop::array::uniform3(0.1f64..5.0),
        bmin in prop::array::uniform3(-5.0f64..0.0),
        bsize in prop::array::uniform3(0.1f64..5.0),
        p in prop::array::uniform3(-6.0f64..6.0),
    ) {
        let a = Aabb::new(amin, [amin[0] + asize[0], amin[1] + asize[1], amin[2] + asize[2]]);
        let b = Aabb::new(bmin, [bmin[0] + bsize[0], bmin[1] + bsize[1], bmin[2] + bsize[2]]);
        let u = a.union(&b);
        // Union contains both boxes' sample corners.
        prop_assert!(u.contains(a.min) && u.contains(a.max));
        prop_assert!(u.contains(b.min) && u.contains(b.max));
        // Containment implies intersection.
        if a.contains(p) && b.contains(p) {
            prop_assert!(a.intersects(&b));
        }
        // Inflation is monotone.
        prop_assert!(a.inflate(0.5).contains(a.min));
    }
}
