//! Plot3D-format I/O: the standard interchange format of the OVERFLOW
//! ecosystem. Multi-grid ASCII XYZ (grid) and Q (solution) files, plus
//! readers for round-trip verification. Files written here load directly in
//! common CFD post-processors.

use crate::curvilinear::CurvilinearGrid;
use crate::field::{StateField, NVAR};
use crate::index::{Dims, Ijk};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write a multi-grid Plot3D XYZ file (ASCII, whole format: counts, then
/// per grid all x, all y, all z, `i` fastest).
pub fn write_xyz(path: &Path, grids: &[&CurvilinearGrid]) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{}", grids.len())?;
    for g in grids {
        let d = g.dims();
        writeln!(w, "{} {} {}", d.ni, d.nj, d.nk)?;
    }
    for g in grids {
        let d = g.dims();
        for comp in 0..3 {
            let mut count = 0usize;
            for p in d.iter() {
                write!(w, "{:.17e}", g.coords[p][comp])?;
                count += 1;
                if count % 5 == 0 {
                    writeln!(w)?;
                } else {
                    write!(w, " ")?;
                }
            }
            if count % 5 != 0 {
                writeln!(w)?;
            }
        }
    }
    w.flush()
}

/// Read a multi-grid Plot3D XYZ file written by [`write_xyz`].
pub fn read_xyz(path: &Path) -> std::io::Result<Vec<CurvilinearGrid>> {
    let f = std::fs::File::open(path)?;
    let mut tokens = Tokens::new(BufReader::new(f));
    let ngrids: usize = tokens.next()?;
    let mut dims = Vec::with_capacity(ngrids);
    for _ in 0..ngrids {
        let ni: usize = tokens.next()?;
        let nj: usize = tokens.next()?;
        let nk: usize = tokens.next()?;
        dims.push(Dims::new(ni, nj, nk));
    }
    let mut grids = Vec::with_capacity(ngrids);
    for (gi, d) in dims.iter().enumerate() {
        let n = d.count();
        let mut coords = vec![[0.0f64; 3]; n];
        for comp in 0..3 {
            for c in coords.iter_mut() {
                c[comp] = tokens.next()?;
            }
        }
        let field = crate::field::Field3::from_fn(*d, |p: Ijk| coords[d.offset(p)]);
        grids.push(CurvilinearGrid::new(
            format!("plot3d-grid-{gi}"),
            field,
            crate::curvilinear::GridKind::NearBody,
        ));
    }
    Ok(grids)
}

/// Write a multi-grid Plot3D Q (solution) file: per grid the reference
/// conditions `(mach, alpha, re, time)` then the five conserved variables
/// (`i` fastest, variable-major).
pub fn write_q(
    path: &Path,
    dims: &[Dims],
    states: &[StateField],
    refs: [f64; 4],
) -> std::io::Result<()> {
    assert_eq!(dims.len(), states.len());
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{}", dims.len())?;
    for d in dims {
        writeln!(w, "{} {} {}", d.ni, d.nj, d.nk)?;
    }
    for (d, s) in dims.iter().zip(states) {
        assert_eq!(s.dims(), *d);
        writeln!(w, "{:.17e} {:.17e} {:.17e} {:.17e}", refs[0], refs[1], refs[2], refs[3])?;
        for v in 0..NVAR {
            let mut count = 0usize;
            for p in d.iter() {
                write!(w, "{:.17e}", s.node(p)[v])?;
                count += 1;
                if count % 5 == 0 {
                    writeln!(w)?;
                } else {
                    write!(w, " ")?;
                }
            }
            if count % 5 != 0 {
                writeln!(w)?;
            }
        }
    }
    w.flush()
}

/// Read a multi-grid Plot3D Q file written by [`write_q`]. Returns the
/// per-grid states and the reference block of the first grid.
pub fn read_q(path: &Path) -> std::io::Result<(Vec<StateField>, [f64; 4])> {
    let f = std::fs::File::open(path)?;
    let mut tokens = Tokens::new(BufReader::new(f));
    let ngrids: usize = tokens.next()?;
    let mut dims = Vec::with_capacity(ngrids);
    for _ in 0..ngrids {
        let ni: usize = tokens.next()?;
        let nj: usize = tokens.next()?;
        let nk: usize = tokens.next()?;
        dims.push(Dims::new(ni, nj, nk));
    }
    let mut refs = [0.0f64; 4];
    let mut states = Vec::with_capacity(ngrids);
    for (gi, d) in dims.iter().enumerate() {
        let r: [f64; 4] = [tokens.next()?, tokens.next()?, tokens.next()?, tokens.next()?];
        if gi == 0 {
            refs = r;
        }
        let n = d.count();
        let mut vals = vec![[0.0f64; NVAR]; n];
        for v in 0..NVAR {
            for q in vals.iter_mut() {
                q[v] = tokens.next()?;
            }
        }
        states.push(StateField::from_fn(*d, |p: Ijk| vals[d.offset(p)]));
    }
    Ok((states, refs))
}

/// Whitespace-token reader for the ASCII formats.
struct Tokens<R: BufRead> {
    reader: R,
    buf: Vec<String>,
    pos: usize,
}

impl<R: BufRead> Tokens<R> {
    fn new(reader: R) -> Self {
        Tokens { reader, buf: Vec::new(), pos: 0 }
    }

    fn next<T: std::str::FromStr>(&mut self) -> std::io::Result<T> {
        loop {
            if self.pos < self.buf.len() {
                let tok = &self.buf[self.pos];
                self.pos += 1;
                return tok.parse::<T>().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad token: {tok}"),
                    )
                });
            }
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "plot3d file truncated",
                ));
            }
            self.buf = line.split_whitespace().map(str::to_string).collect();
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curvilinear::GridKind;
    use crate::field::Field3;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("overset_io_test_{name}_{}", std::process::id()))
    }

    fn sample_grid(ni: usize, nj: usize, nk: usize, off: f64) -> CurvilinearGrid {
        let d = Dims::new(ni, nj, nk);
        let coords = Field3::from_fn(d, |p| {
            [off + 0.1 * p.i as f64, 0.2 * p.j as f64 + 0.01 * (p.i as f64).sin(), 0.3 * p.k as f64]
        });
        CurvilinearGrid::new("s", coords, GridKind::Background)
    }

    #[test]
    fn xyz_roundtrip_multigrid() {
        let a = sample_grid(5, 4, 3, 0.0);
        let b = sample_grid(7, 2, 2, 10.0);
        let path = tmp("xyz");
        write_xyz(&path, &[&a, &b]).unwrap();
        let back = read_xyz(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].dims(), a.dims());
        assert_eq!(back[1].dims(), b.dims());
        for p in a.dims().iter() {
            for c in 0..3 {
                assert_eq!(back[0].coords[p][c], a.coords[p][c], "exact roundtrip");
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn q_roundtrip() {
        let d = Dims::new(4, 3, 2);
        let s = StateField::from_fn(d, |p| {
            [
                1.0 + 0.1 * p.i as f64,
                0.2 * p.j as f64,
                -0.3 * p.k as f64,
                0.0,
                2.0 + p.i as f64 * p.j as f64 * 0.01,
            ]
        });
        let path = tmp("q");
        write_q(&path, &[d], std::slice::from_ref(&s), [0.8, 0.0, 1e6, 0.5]).unwrap();
        let (back, refs) = read_q(&path).unwrap();
        assert_eq!(refs, [0.8, 0.0, 1e6, 0.5]);
        assert_eq!(back.len(), 1);
        for p in d.iter() {
            assert_eq!(back[0].node(p), s.node(p));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_errors() {
        let path = tmp("trunc");
        std::fs::write(&path, "2\n3 3 1\n").unwrap();
        assert!(read_xyz(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_token_errors() {
        let path = tmp("bad");
        std::fs::write(&path, "not_a_number\n").unwrap();
        assert!(read_xyz(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
