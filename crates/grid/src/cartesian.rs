//! Uniform Cartesian grids.
//!
//! Section 5 of the paper stresses that a uniformly spaced Cartesian grid is
//! fully described by *seven parameters* — its bounding box (six numbers) and
//! its spacing (one number) — versus 16 stored values per node for a general
//! curvilinear grid. Donor location inside a Cartesian grid is O(1) index
//! arithmetic, which is what makes the adaptive off-body scheme cheap to
//! reconnect.

use crate::bbox::Aabb;
use crate::curvilinear::{CurvilinearGrid, GridKind};
use crate::field::Field3;
use crate::index::{Dims, Ijk};

/// A uniformly spaced Cartesian grid: the "seven parameter" grid of the paper.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CartesianGrid {
    /// Coordinates of node (0,0,0).
    pub origin: [f64; 3],
    /// Uniform node spacing (same in every direction).
    pub spacing: f64,
    /// Node counts.
    pub dims: Dims,
}

impl CartesianGrid {
    pub fn new(origin: [f64; 3], spacing: f64, dims: Dims) -> Self {
        assert!(spacing > 0.0);
        Self { origin, spacing, dims }
    }

    /// Build the grid covering `aabb` with at most `spacing` between nodes
    /// (the box is covered exactly; spacing shrinks to fit).
    pub fn covering(aabb: Aabb, spacing: f64) -> Self {
        let e = aabb.extent();
        let longest = e[0].max(e[1]).max(e[2]);
        let cells = (longest / spacing).ceil().max(1.0);
        let h = longest / cells;
        let n = |ext: f64| ((ext / h).round() as usize).max(1) + 1;
        Self { origin: aabb.min, spacing: h, dims: Dims::new(n(e[0]), n(e[1]), n(e[2])) }
    }

    #[inline]
    pub fn num_points(&self) -> usize {
        self.dims.count()
    }

    #[inline]
    pub fn xyz(&self, p: Ijk) -> [f64; 3] {
        [
            self.origin[0] + self.spacing * p.i as f64,
            self.origin[1] + self.spacing * p.j as f64,
            self.origin[2] + self.spacing * p.k as f64,
        ]
    }

    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            self.origin,
            [
                self.origin[0] + self.spacing * (self.dims.ni - 1) as f64,
                self.origin[1] + self.spacing * (self.dims.nj - 1) as f64,
                self.origin[2] + self.spacing * (self.dims.nk - 1) as f64,
            ],
        )
    }

    /// O(1) containing-cell lookup: the lower node of the cell containing `x`
    /// plus the trilinear local coordinates in `[0,1]^3`, or `None` if `x`
    /// falls outside the grid. This is the "no donor search required" fast
    /// path of the Section-5 scheme.
    pub fn locate(&self, x: [f64; 3]) -> Option<(Ijk, [f64; 3])> {
        let mut cell = [0usize; 3];
        let mut loc = [0.0f64; 3];
        for d in 0..3 {
            let n = self.dims.get(d);
            let t = (x[d] - self.origin[d]) / self.spacing;
            if t < 0.0 || t > (n - 1) as f64 {
                return None;
            }
            // Clamp into the last cell so points exactly on the max face work.
            let c = (t.floor() as usize).min(n.saturating_sub(2));
            if n == 1 {
                // Degenerate direction (2-D grids): only t == 0 is inside.
                if t.abs() > 1e-12 {
                    return None;
                }
                cell[d] = 0;
                loc[d] = 0.0;
            } else {
                cell[d] = c;
                loc[d] = t - c as f64;
            }
        }
        Some((Ijk::new(cell[0], cell[1], cell[2]), loc))
    }

    /// Materialize the node coordinates as a curvilinear grid so that the
    /// generic solver / connectivity machinery can operate on background
    /// grids uniformly (OVERFLOW-D1 treats all grids as curvilinear).
    pub fn to_curvilinear(&self, name: impl Into<String>) -> CurvilinearGrid {
        let coords = Field3::from_fn(self.dims, |p| self.xyz(p));
        CurvilinearGrid::new(name, coords, GridKind::Background)
    }

    /// Refine by a factor of 2 (cell-doubling): same extent, half the spacing.
    pub fn refined(&self) -> CartesianGrid {
        CartesianGrid {
            origin: self.origin,
            spacing: self.spacing * 0.5,
            dims: Dims::new(
                (self.dims.ni - 1) * 2 + 1,
                (self.dims.nj - 1) * 2 + 1,
                if self.dims.nk == 1 { 1 } else { (self.dims.nk - 1) * 2 + 1 },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_box_exactly() {
        let b = Aabb::new([0.0; 3], [2.0, 1.0, 1.0]);
        let g = CartesianGrid::covering(b, 0.3);
        assert!(g.spacing <= 0.3 + 1e-12);
        let gb = g.bounding_box();
        for d in 0..3 {
            assert!(gb.min[d] <= b.min[d] + 1e-12);
            assert!(gb.max[d] >= b.max[d] - 1e-9, "dir {d}: {} < {}", gb.max[d], b.max[d]);
        }
    }

    #[test]
    fn locate_interior_point() {
        let g = CartesianGrid::new([0.0; 3], 0.5, Dims::new(5, 5, 5));
        let (cell, loc) = g.locate([0.6, 1.0, 1.9]).unwrap();
        assert_eq!(cell, Ijk::new(1, 2, 3));
        assert!((loc[0] - 0.2).abs() < 1e-12);
        assert!(loc[1].abs() < 1e-12);
        assert!((loc[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn locate_boundary_and_outside() {
        let g = CartesianGrid::new([0.0; 3], 1.0, Dims::new(3, 3, 3));
        // Exactly on the max corner: clamped into the last cell.
        let (cell, loc) = g.locate([2.0, 2.0, 2.0]).unwrap();
        assert_eq!(cell, Ijk::new(1, 1, 1));
        assert!(loc.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        assert!(g.locate([2.1, 0.0, 0.0]).is_none());
        assert!(g.locate([-0.1, 0.0, 0.0]).is_none());
    }

    #[test]
    fn locate_reproduces_node_coords() {
        let g = CartesianGrid::new([1.0, -2.0, 0.5], 0.25, Dims::new(9, 7, 5));
        for p in g.dims.iter() {
            let x = g.xyz(p);
            let (cell, loc) = g.locate(x).unwrap();
            // Reconstruct the point from cell + local coords.
            for d in 0..3 {
                let rec = g.origin[d] + g.spacing * (cell.get(d) as f64 + loc[d]);
                assert!((rec - x[d]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn to_curvilinear_matches_coords() {
        let g = CartesianGrid::new([0.0; 3], 0.5, Dims::new(3, 4, 2));
        let c = g.to_curvilinear("bg");
        for p in g.dims.iter() {
            assert_eq!(c.xyz(p), g.xyz(p));
        }
    }

    #[test]
    fn refined_halves_spacing() {
        let g = CartesianGrid::new([0.0; 3], 1.0, Dims::new(3, 3, 1));
        let r = g.refined();
        assert_eq!(r.spacing, 0.5);
        assert_eq!(r.dims, Dims::new(5, 5, 1));
        assert_eq!(r.bounding_box(), g.bounding_box());
    }
}
