//! Structured grid infrastructure for the OVERFLOW-D reproduction.
//!
//! This crate provides the index-space and geometric substrate used by every
//! other crate in the workspace:
//!
//! * [`index`] — 3-D index spaces, boxes and iteration order,
//! * [`field`] — dense 3-D scalar/vector fields in `i`-fastest layout,
//! * [`bbox`] — axis-aligned bounding boxes,
//! * [`transform`] — rigid-body transforms (quaternion rotation + translation),
//! * [`curvilinear`] / [`cartesian`] — the two grid kinds of the Chimera
//!   scheme: body-fitted curvilinear component grids and uniform Cartesian
//!   background grids (the latter fully described by seven parameters, as the
//!   paper emphasizes),
//! * [`metrics`] — finite-difference metric terms and cell Jacobians,
//! * [`decomp`] — prime-factor subdomain splitting used by the static load
//!   balancer (Algorithm 1 of the paper),
//! * [`gen`] — analytic grid generators for the paper's three test cases
//!   (oscillating airfoil, descending delta wing, finned-store separation)
//!   plus coarsen/refine used by the Table 2 scaling study,
//! * [`io`] — Plot3D multi-grid XYZ / Q file I/O.

pub mod bbox;
pub mod cartesian;
pub mod curvilinear;
pub mod decomp;
pub mod field;
pub mod gen;
pub mod index;
pub mod io;
pub mod metrics;
pub mod transform;

pub use bbox::Aabb;
pub use cartesian::CartesianGrid;
pub use curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, GridKind};
pub use decomp::{
    lattice_feasible, lattice_feasible_min, prime_factors, split_prime_factors, Subdomain,
};
pub use field::{Field3, StateField};
pub use index::{Dims, Ijk, IndexBox};
pub use transform::RigidTransform;

/// Identifier of a component grid within an overset system.
pub type GridId = usize;
