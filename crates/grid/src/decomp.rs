//! Prime-factor subdomain decomposition (the splitting half of Algorithm 1).
//!
//! Once the static balancer decides `np(n)` processors for grid `n`, the grid
//! is divided into `np(n)` subdomains: for each prime factor of `np(n)`
//! (largest first), the current pieces are each split along their largest
//! index dimension. This yields index spaces as close to cubic as possible,
//! minimizing subdomain surface area and hence communication (Fig. 4 of the
//! paper).

use crate::index::{Dims, IndexBox};

/// Prime factorization in descending order (e.g. `12 -> [3, 2, 2]`).
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    assert!(n >= 1);
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// A subdomain of a component grid: the index box it owns plus its position
/// in the decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Subdomain {
    /// Owned node box (half-open) in the parent grid's index space.
    pub boxx: IndexBox,
    /// Ordinal of this subdomain within its grid's decomposition.
    pub ordinal: usize,
}

/// A lattice decomposition of a grid's index space: `pgrid[d]` subdomains
/// along each direction, `pgrid[0]·pgrid[1]·pgrid[2] = np`. Subdomain
/// `ordinal = ci + px·(cj + py·ck)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomp {
    pub pgrid: [usize; 3],
    pub subs: Vec<Subdomain>,
}

impl Decomp {
    /// Lattice coordinate of a subdomain ordinal.
    pub fn coord(&self, ordinal: usize) -> [usize; 3] {
        let [px, py, _] = self.pgrid;
        [ordinal % px, (ordinal / px) % py, ordinal / (px * py)]
    }

    /// Ordinal of a lattice coordinate.
    pub fn ordinal(&self, c: [usize; 3]) -> usize {
        c[0] + self.pgrid[0] * (c[1] + self.pgrid[1] * c[2])
    }

    /// Neighbor ordinal across a face (`dir`, min/max side), or `None` at
    /// the lattice edge.
    pub fn neighbor(&self, ordinal: usize, dir: usize, downstream: bool) -> Option<usize> {
        let mut c = self.coord(ordinal);
        if downstream {
            if c[dir] + 1 >= self.pgrid[dir] {
                return None;
            }
            c[dir] += 1;
        } else {
            if c[dir] == 0 {
                return None;
            }
            c[dir] -= 1;
        }
        Some(self.ordinal(c))
    }

    /// Wrap neighbor in `i` (for periodic O-grids split in `i`): the
    /// subdomain at the opposite `i` edge with the same `(j, k)` lattice
    /// coordinates. `None` when this subdomain is not at an `i` edge or the
    /// grid is not split in `i`.
    pub fn wrap_neighbor_i(&self, ordinal: usize, downstream: bool) -> Option<usize> {
        let px = self.pgrid[0];
        if px <= 1 {
            return None;
        }
        let mut c = self.coord(ordinal);
        if downstream {
            if c[0] != px - 1 {
                return None;
            }
            c[0] = 0;
        } else {
            if c[0] != 0 {
                return None;
            }
            c[0] = px - 1;
        }
        Some(self.ordinal(c))
    }
}

/// Assign the prime factors of `np` to directions (largest factor first,
/// each into the largest nominal dimension that can still accommodate it;
/// ties resolve i before j before k). `Err(f)` reports the first factor
/// that fits no direction.
fn fit_factors(dims: Dims, np: usize) -> Result<[usize; 3], usize> {
    let mut nominal = [dims.ni as f64, dims.nj as f64, dims.nk as f64];
    let mut pgrid = [1usize; 3];
    for f in prime_factors(np) {
        // Each subdomain must keep at least one node along the direction.
        let mut dir = None;
        let mut best = f64::NEG_INFINITY;
        for t in 0..3 {
            let fits = dims.get(t) / (pgrid[t] * f) >= 1;
            if fits && nominal[t] > best {
                best = nominal[t];
                dir = Some(t);
            }
        }
        let dir = dir.ok_or(f)?;
        pgrid[dir] *= f;
        nominal[dir] /= f as f64;
    }
    Ok(pgrid)
}

/// Can [`lattice_split`] decompose `dims` into `np` subdomains? The
/// prime-factor rule places each prime factor of `np` whole into one index
/// direction, so e.g. a prime `np` larger than every dimension is
/// infeasible even when the grid has plenty of points. Balancers use this
/// to keep per-grid processor counts splittable (large-`P` universes
/// otherwise hand a grid a prime count that fits nowhere).
pub fn lattice_feasible(dims: Dims, np: usize) -> bool {
    lattice_feasible_min(dims, np, [1, 1, 1])
}

/// [`lattice_feasible`] with a minimum subdomain width per direction: every
/// piece of the lattice [`lattice_split`] would build must keep at least
/// `min[t]` nodes along direction `t`. Periodic O-grids need `min = [2,1,1]`
/// — the seam subdomain excludes the duplicated wrap node from its cyclic
/// solve, so a 1-node-wide piece there owns an empty system.
pub fn lattice_feasible_min(dims: Dims, np: usize, min: [usize; 3]) -> bool {
    if np < 1 || np > dims.count() {
        return false;
    }
    match fit_factors(dims, np) {
        // split() hands out near-equal pieces, so the narrowest piece along
        // `t` has floor(n/p) nodes.
        Ok(pgrid) => (0..3).all(|t| dims.get(t) / pgrid[t] >= min[t].max(1)),
        Err(_) => false,
    }
}

/// Decompose a grid's index space into an `np`-subdomain lattice using the
/// paper's prime-factor rule: for each prime factor of `np` (largest first),
/// split along the (nominal) largest remaining dimension. The direction
/// sequence is decided once from the grid dimensions, so all subdomains
/// share the same cut planes — a regular lattice with aligned faces (which
/// is what makes halo exchange and cross-subdomain implicit lines well
/// defined).
pub fn lattice_split(dims: Dims, np: usize) -> Decomp {
    assert!(np >= 1);
    assert!(np <= dims.count(), "cannot split {dims:?} into {np} subdomains");
    let pgrid = fit_factors(dims, np).unwrap_or_else(|f| {
        panic!("factor {f} does not fit any dimension of {dims:?}");
    });
    // Materialize the lattice: split i, then j within, then k within.
    let mut subs = Vec::with_capacity(np);
    let i_pieces = dims.full_box().split(0, pgrid[0]);
    // Build in ordinal order: k outer, j middle, i inner.
    let mut boxes =
        vec![IndexBox::new(crate::index::Ijk::new(0, 0, 0), crate::index::Ijk::new(0, 0, 0)); np];
    for (ci, bi) in i_pieces.iter().enumerate() {
        for (cj, bj) in bi.split(1, pgrid[1]).iter().enumerate() {
            for (ck, bk) in bj.split(2, pgrid[2]).iter().enumerate() {
                let ordinal = ci + pgrid[0] * (cj + pgrid[1] * ck);
                boxes[ordinal] = *bk;
            }
        }
    }
    for (ordinal, boxx) in boxes.into_iter().enumerate() {
        subs.push(Subdomain { boxx, ordinal });
    }
    Decomp { pgrid, subs }
}

/// Split a grid's index space into `np` subdomains by prime factors (the
/// flat list view of [`lattice_split`]).
pub fn split_prime_factors(dims: Dims, np: usize) -> Vec<Subdomain> {
    lattice_split(dims, np).subs
}

/// Total surface area of a decomposition (the quantity minimized to reduce
/// inter-subdomain communication).
pub fn total_surface_area(subs: &[Subdomain]) -> usize {
    subs.iter().map(|s| s.boxx.surface_area()).sum()
}

/// Maximum over subdomains of owned node count — the flow-solve load-balance
/// bottleneck for this grid.
pub fn max_points(subs: &[Subdomain]) -> usize {
    subs.iter().map(|s| s.boxx.count()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Ijk;

    #[test]
    fn prime_factors_basic() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(12), vec![3, 2, 2]);
        assert_eq!(prime_factors(13), vec![13]);
        assert_eq!(prime_factors(60), vec![5, 3, 2, 2]);
    }

    #[test]
    fn split_preserves_node_count_and_disjointness() {
        let dims = Dims::new(20, 12, 8);
        for np in [1, 2, 3, 4, 6, 12, 24] {
            let subs = split_prime_factors(dims, np);
            assert_eq!(subs.len(), np);
            let total: usize = subs.iter().map(|s| s.boxx.count()).sum();
            assert_eq!(total, dims.count());
            for a in 0..subs.len() {
                for b in (a + 1)..subs.len() {
                    assert!(
                        subs[a].boxx.intersect(&subs[b].boxx).is_none(),
                        "subdomains {a} and {b} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn split_example_from_paper_np_12() {
        // np = 12 -> factors 3, 2, 2: largest dim split by 3, then largest
        // dim of each piece by 2, then by 2 again.
        let dims = Dims::new(30, 20, 10);
        let subs = split_prime_factors(dims, 12);
        assert_eq!(subs.len(), 12);
        // Every piece is near-cubic with extents {5, 10, 10}.
        for s in &subs {
            let d = s.boxx.dims();
            let mut e = [d.ni, d.nj, d.nk];
            e.sort_unstable();
            assert_eq!(e, [5, 10, 10], "piece {d:?}");
        }
    }

    #[test]
    fn split_balances_counts_with_remainders() {
        let dims = Dims::new(11, 7, 3);
        let subs = split_prime_factors(dims, 5);
        let counts: Vec<usize> = subs.iter().map(|s| s.boxx.count()).collect();
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Near-equal: within one i-slab row of each other.
        assert!((mx - mn) <= 7 * 3, "counts {counts:?}");
    }

    #[test]
    fn near_cubic_beats_slabs() {
        let dims = Dims::new(32, 32, 32);
        let prime_split = split_prime_factors(dims, 8);
        // Slab decomposition for comparison.
        let slabs: Vec<Subdomain> = dims
            .full_box()
            .split(0, 8)
            .into_iter()
            .enumerate()
            .map(|(ordinal, boxx)| Subdomain { boxx, ordinal })
            .collect();
        assert!(total_surface_area(&prime_split) < total_surface_area(&slabs));
    }

    #[test]
    fn single_subdomain_is_whole_grid() {
        let dims = Dims::new(9, 9, 1);
        let subs = split_prime_factors(dims, 1);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].boxx, dims.full_box());
        assert_eq!(subs[0].boxx.lo, Ijk::new(0, 0, 0));
    }

    #[test]
    fn lattice_neighbors_consistent() {
        let d = lattice_split(Dims::new(24, 18, 12), 12);
        assert_eq!(d.subs.len(), 12);
        let np = 12;
        for o in 0..np {
            assert_eq!(d.ordinal(d.coord(o)), o);
            for dir in 0..3 {
                if let Some(n) = d.neighbor(o, dir, true) {
                    assert_eq!(d.neighbor(n, dir, false), Some(o));
                    // Faces align exactly.
                    let a = d.subs[o].boxx;
                    let b = d.subs[n].boxx;
                    assert_eq!(a.hi.get(dir), b.lo.get(dir));
                    for t in 0..3 {
                        if t != dir {
                            assert_eq!(a.lo.get(t), b.lo.get(t));
                            assert_eq!(a.hi.get(t), b.hi.get(t));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wrap_neighbor_only_at_i_edges() {
        let d = lattice_split(Dims::new(40, 10, 1), 4); // all splits in i
        assert_eq!(d.pgrid, [4, 1, 1]);
        assert_eq!(d.wrap_neighbor_i(0, false), Some(3));
        assert_eq!(d.wrap_neighbor_i(3, true), Some(0));
        assert_eq!(d.wrap_neighbor_i(1, false), None);
        let single = lattice_split(Dims::new(40, 40, 1), 1);
        assert_eq!(single.wrap_neighbor_i(0, false), None);
    }

    #[test]
    fn two_d_grid_splits_in_plane() {
        let dims = Dims::new(40, 30, 1);
        let subs = split_prime_factors(dims, 6);
        for s in &subs {
            assert_eq!(s.boxx.dims().nk, 1);
        }
        assert!(max_points(&subs) * 6 >= dims.count());
    }
}
