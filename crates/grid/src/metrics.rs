//! Finite-difference metric terms for curvilinear grids.
//!
//! For the transformed Navier–Stokes equations the solver needs, at every
//! node, the contravariant metric vectors `∇ξ`, `∇η`, `∇ζ` and the Jacobian
//! `J = det ∂(x,y,z)/∂(ξ,η,ζ)` (the local cell volume scale). They are
//! computed from second-order central differences of the node coordinates
//! (one-sided at boundaries, wrapped for periodic O-grids). Single-plane
//! (2-D) grids get `∂/∂ζ = ẑ`, reducing to the planar transformation.

use crate::curvilinear::CurvilinearGrid;
use crate::field::Field3;
use crate::index::{Dims, Ijk};

/// Metric data at one node.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Metric {
    /// `∇ξ` (times nothing — true spatial gradient of the computational coord).
    pub xi: [f64; 3],
    /// `∇η`.
    pub eta: [f64; 3],
    /// `∇ζ`.
    pub zeta: [f64; 3],
    /// Jacobian `det ∂x/∂ξ` (volume of a unit computational cell).
    pub jac: f64,
}

impl Metric {
    pub fn grad(&self, dir: usize) -> [f64; 3] {
        match dir {
            0 => self.xi,
            1 => self.eta,
            _ => self.zeta,
        }
    }
}

/// Metric field over a grid.
pub type MetricField = Field3<Metric>;

#[inline]
fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

#[inline]
fn scale(a: [f64; 3], s: f64) -> [f64; 3] {
    [a[0] * s, a[1] * s, a[2] * s]
}

/// Derivative of coordinates along direction `dir` at node `p` using central
/// differences (periodic wrap in `i` when requested, else one-sided at ends).
fn coord_deriv(g: &CurvilinearGrid, p: Ijk, dir: usize) -> [f64; 3] {
    let d = g.dims();
    let n = d.get(dir);
    if n == 1 {
        // Degenerate (2-D) direction: unit out-of-plane vector.
        return [0.0, 0.0, 1.0];
    }
    let at = |v: usize| -> [f64; 3] {
        let mut q = p;
        q.set(dir, v);
        g.coords[q]
    };
    let c = p.get(dir);
    if dir == 0 && g.periodic_i {
        // O-grid wrap: node ni-1 coincides with node 0; the periodic images
        // skip the duplicate to avoid a zero-length difference.
        let prev = if c == 0 { n - 2 } else { c - 1 };
        let next = if c == n - 1 { 1 } else { c + 1 };
        return scale(sub(at(next), at(prev)), 0.5);
    }
    if c == 0 {
        sub(at(1), at(0))
    } else if c == n - 1 {
        sub(at(n - 1), at(n - 2))
    } else {
        scale(sub(at(c + 1), at(c - 1)), 0.5)
    }
}

/// Compute the full metric field for a grid.
///
/// Returns metrics with a strictly positive Jacobian at every node for a
/// right-handed, untangled grid; a non-positive Jacobian indicates a tangled
/// or degenerate cell (asserted in debug builds).
pub fn compute_metrics(g: &CurvilinearGrid) -> MetricField {
    Field3::from_fn(g.dims(), |p| {
        let m = metric_at(g, p);
        debug_assert!(m.jac.abs() > 0.0, "degenerate metric at {p:?}");
        m
    })
}

/// Metric terms at a single node.
pub fn metric_at(g: &CurvilinearGrid, p: Ijk) -> Metric {
    let x_xi = coord_deriv(g, p, 0);
    let x_eta = coord_deriv(g, p, 1);
    let x_zeta = coord_deriv(g, p, 2);

    // J = x_xi . (x_eta x x_zeta)
    let cx = [
        x_eta[1] * x_zeta[2] - x_eta[2] * x_zeta[1],
        x_eta[2] * x_zeta[0] - x_eta[0] * x_zeta[2],
        x_eta[0] * x_zeta[1] - x_eta[1] * x_zeta[0],
    ];
    let jac = x_xi[0] * cx[0] + x_xi[1] * cx[1] + x_xi[2] * cx[2];
    // Degenerate nodes (e.g. clamped halo geometry at a physical boundary)
    // yield J = 0; report NaN so callers can detect and handle it.
    if jac == 0.0 {
        let nan = f64::NAN;
        return Metric { xi: [0.0; 3], eta: [0.0; 3], zeta: [0.0; 3], jac: nan };
    }
    let inv_j = 1.0 / jac;

    // Rows of the inverse Jacobian matrix via cofactors:
    // grad xi   = (x_eta x x_zeta) / J
    // grad eta  = (x_zeta x x_xi) / J
    // grad zeta = (x_xi x x_eta) / J
    let xi = scale(cx, inv_j);
    let eta = scale(
        [
            x_zeta[1] * x_xi[2] - x_zeta[2] * x_xi[1],
            x_zeta[2] * x_xi[0] - x_zeta[0] * x_xi[2],
            x_zeta[0] * x_xi[1] - x_zeta[1] * x_xi[0],
        ],
        inv_j,
    );
    let zeta = scale(
        [
            x_xi[1] * x_eta[2] - x_xi[2] * x_eta[1],
            x_xi[2] * x_eta[0] - x_xi[0] * x_eta[2],
            x_xi[0] * x_eta[1] - x_xi[1] * x_eta[0],
        ],
        inv_j,
    );

    Metric { xi, eta, zeta, jac }
}

/// Total physical volume represented by the grid (sum of nodal Jacobians).
pub fn total_volume(metrics: &MetricField) -> f64 {
    metrics.as_slice().iter().map(|m| m.jac).sum()
}

/// Estimated flops to evaluate the metric field (used by the virtual-time
/// machine model): coordinate differences, two cross products, three scaled
/// cofactor rows per node.
pub fn metric_flops(dims: Dims) -> u64 {
    dims.count() as u64 * 90
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curvilinear::GridKind;

    fn cartesian_grid(n: usize, h: f64) -> CurvilinearGrid {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * h, p.j as f64 * h, p.k as f64 * h]);
        CurvilinearGrid::new("cart", coords, GridKind::Background)
    }

    #[test]
    fn uniform_grid_metrics() {
        let h = 0.25;
        let g = cartesian_grid(5, h);
        let m = compute_metrics(&g);
        for p in g.dims().iter() {
            let mm = m[p];
            assert!((mm.jac - h * h * h).abs() < 1e-12);
            assert!((mm.xi[0] - 1.0 / h).abs() < 1e-12);
            assert!(mm.xi[1].abs() < 1e-12 && mm.xi[2].abs() < 1e-12);
            assert!((mm.eta[1] - 1.0 / h).abs() < 1e-12);
            assert!((mm.zeta[2] - 1.0 / h).abs() < 1e-12);
        }
    }

    #[test]
    fn stretched_grid_jacobian() {
        // x stretched by 2: J should be 2*h^3.
        let d = Dims::new(4, 4, 4);
        let h = 0.5;
        let coords = Field3::from_fn(d, |p| [2.0 * h * p.i as f64, h * p.j as f64, h * p.k as f64]);
        let g = CurvilinearGrid::new("stretch", coords, GridKind::Background);
        let m = compute_metrics(&g);
        for p in d.iter() {
            assert!((m[p].jac - 2.0 * h * h * h).abs() < 1e-12);
            assert!((m[p].xi[0] - 0.5 / h).abs() < 1e-12);
        }
    }

    #[test]
    fn two_d_grid_metrics() {
        let d = Dims::new(6, 6, 1);
        let h = 0.2;
        let coords = Field3::from_fn(d, |p| [h * p.i as f64, h * p.j as f64, 0.0]);
        let g = CurvilinearGrid::new("2d", coords, GridKind::Background);
        let m = compute_metrics(&g);
        for p in d.iter() {
            assert!((m[p].jac - h * h).abs() < 1e-12);
            assert!((m[p].zeta[2] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rotated_grid_preserves_volume() {
        let g0 = cartesian_grid(5, 0.25);
        let mut g1 = g0.clone();
        g1.apply_transform(&crate::transform::RigidTransform::rotation_about(
            [0.0; 3],
            [1.0, 1.0, 1.0],
            0.8,
        ));
        let (v0, v1) = (total_volume(&compute_metrics(&g0)), total_volume(&compute_metrics(&g1)));
        assert!((v0 - v1).abs() < 1e-9 * v0.abs());
    }

    #[test]
    fn periodic_o_grid_has_smooth_metrics_at_seam() {
        // Annular 2-D O-grid: i wraps around the circle, j is radial.
        let (nth, nr) = (33, 5);
        let d = Dims::new(nth, nr, 1);
        let coords = Field3::from_fn(d, |p| {
            // Node nth-1 duplicates node 0 (standard O-grid storage).
            let th = -2.0 * std::f64::consts::PI * (p.i % (nth - 1)) as f64 / (nth - 1) as f64;
            let r = 1.0 + 0.2 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("annulus", coords, GridKind::NearBody);
        g.periodic_i = true;
        let m = compute_metrics(&g);
        // Jacobian at the seam (i = 0) should match the interior value at the
        // same radius, not a one-sided artifact.
        let seam = m[Ijk::new(0, 2, 0)].jac;
        let interior = m[Ijk::new(10, 2, 0)].jac;
        assert!(
            (seam - interior).abs() < 1e-6 * interior.abs(),
            "seam {seam} vs interior {interior}"
        );
        for p in d.iter() {
            assert!(m[p].jac > 0.0, "negative jacobian at {p:?}");
        }
    }
}
