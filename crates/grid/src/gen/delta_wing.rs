//! The descending delta wing system (Section 4.2 of the paper).
//!
//! Four grids, a composite of ~1 million points at full scale, with an
//! IGBP/gridpoint ratio of about 33e-3: three curvilinear grids (the wing,
//! the jet pipe, and the jet plume region) moving slowly (M = 0.064) with
//! respect to a fourth, stationary Cartesian background grid. Viscous terms
//! are active in all directions on all four grids and no turbulence model is
//! used, matching the paper.

use crate::bbox::Aabb;
use crate::curvilinear::{CurvilinearGrid, Solid};
use crate::gen::revolution::{background_box, ellipsoid_shell, shell_of_revolution};
use std::f64::consts::PI;

/// Scale a node count (keeps a floor so tiny scales still yield valid grids).
fn sc(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(5)
}

/// Build the four-grid delta-wing system. `scale` multiplies node counts in
/// every direction (`1.0` reproduces the paper's ~1M composite size;
/// `0.5` is ~1/8 the points and is the bench default).
pub fn delta_wing_system(scale: f64) -> Vec<CurvilinearGrid> {
    // Wing: flattened ellipsoid ("delta planform" stand-in), chord 4, span 3,
    // thickness 0.25, centered at the origin.
    let wing_radii = [2.0, 1.5, 0.125];
    let mut wing = ellipsoid_shell(
        "wing",
        sc(121, scale),
        sc(33, scale),
        sc(81, scale),
        [0.0, 0.0, 0.0],
        wing_radii,
        1.2,
        true,
    );
    wing.turbulent = false;
    // Sub-surface hole-cutting solid (slightly inside the true surface).
    wing.solids = vec![Solid::Ellipsoid { center: [0.0; 3], radii: [1.9, 1.4, 0.095] }];

    // Jet pipe: body of revolution hanging below the wing, axis along x.
    let mut pipe = shell_of_revolution(
        "pipe",
        sc(97, scale),
        sc(25, scale),
        sc(49, scale),
        -0.5,
        1.5,
        |_| 0.15,
        |_| 0.6,
        true,
    );
    // Offset the pipe below the wing.
    pipe.apply_transform(&crate::transform::RigidTransform::translation([0.0, 0.0, -0.6]));
    // Sub-surface solid (radius 0.12 vs the 0.15 body).
    pipe.solids =
        vec![Solid::Cylinder { p0: [-0.45, 0.0, -0.6], p1: [1.45, 0.0, -0.6], radius: 0.12 }];

    // Jet plume region: finer shell beneath the pipe exit capturing the jet.
    let mut plume = shell_of_revolution(
        "plume",
        sc(81, scale),
        sc(41, scale),
        sc(41, scale),
        1.55,
        4.0,
        |_| 0.05,
        |s| 0.5 + 0.7 * s,
        true,
    );
    plume.apply_transform(&crate::transform::RigidTransform::translation([0.0, 0.0, -0.6]));
    // The plume grid wraps no solid body (its inner radius is a small core
    // excluded from the flow for grid regularity; treated as overset inner
    // boundary rather than a wall).
    if let Some(p) = plume.patches.iter_mut().find(|p| p.face == crate::curvilinear::Face::JMin) {
        p.kind = crate::curvilinear::BcKind::OversetOuter;
    }

    // Stationary Cartesian background.
    let bg_target = ((421_000) as f64 * scale.powi(3)).max(2_000.0) as usize;
    let bg = background_box("dw-bg", Aabb::new([-6.0, -5.0, -6.0], [8.0, 5.0, 4.0]), bg_target);

    vec![wing, pipe, plume, bg]
}

/// Donor-search hierarchy for the delta-wing system: near-body grids search
/// each other first, then the background; the background searches the
/// near-body grids nearest first.
pub fn delta_wing_search_order() -> Vec<Vec<usize>> {
    vec![
        vec![1, 2, 3], // wing -> pipe, plume, background
        vec![0, 2, 3], // pipe
        vec![1, 0, 3], // plume
        vec![0, 1, 2], // background
    ]
}

/// The wing descends slowly: M = 0.064 straight down in the body frame.
pub fn descent_velocity(freestream_sound_speed: f64) -> [f64; 3] {
    [0.0, 0.0, -0.064 * freestream_sound_speed]
}

/// Solid bodies of the whole configuration (wing ellipsoid + pipe cylinder),
/// used in tests to verify hole cutting.
pub fn delta_wing_solids() -> Vec<Solid> {
    vec![
        Solid::Ellipsoid { center: [0.0; 3], radii: [2.0, 1.5, 0.125] },
        Solid::Cylinder { p0: [-0.5, 0.0, -0.6], p1: [1.5, 0.0, -0.6], radius: 0.15 },
    ]
}

/// Sanity helper used by tests: angular positions should cover the azimuth.
pub fn full_circle() -> f64 {
    2.0 * PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compute_metrics;

    #[test]
    fn full_scale_size_matches_paper() {
        let sys = delta_wing_system(1.0);
        assert_eq!(sys.len(), 4);
        let total: usize = sys.iter().map(|g| g.num_points()).sum();
        // Paper: "composite total of about 1 million gridpoints".
        assert!((850_000..1_200_000).contains(&total), "total = {total}");
    }

    #[test]
    fn reduced_scale_shrinks_cubically() {
        let full: usize = delta_wing_system(1.0).iter().map(|g| g.num_points()).sum();
        let half: usize = delta_wing_system(0.5).iter().map(|g| g.num_points()).sum();
        let ratio = full as f64 / half as f64;
        assert!((5.0..12.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn all_grids_viscous_no_turbulence() {
        for g in delta_wing_system(0.3) {
            if g.kind == crate::curvilinear::GridKind::NearBody {
                assert!(g.viscous, "{} not viscous", g.name);
            }
            assert!(!g.turbulent, "{} turbulent", g.name);
        }
    }

    #[test]
    fn near_body_grids_inside_background() {
        let sys = delta_wing_system(0.25);
        let bg = sys[3].bounding_box();
        for g in &sys[..3] {
            let b = g.bounding_box();
            assert!(bg.contains(b.min) && bg.contains(b.max), "{} outside bg", g.name);
        }
    }

    #[test]
    fn metrics_valid_on_all_grids() {
        for g in delta_wing_system(0.2) {
            let m = compute_metrics(&g);
            let signs: Vec<bool> = g.dims().iter().map(|p| m[p].jac > 0.0).collect();
            assert!(
                signs.iter().all(|&s| s == signs[0]),
                "{}: inconsistent cell orientation",
                g.name
            );
        }
    }

    #[test]
    fn descent_is_slow() {
        let v = descent_velocity(1.0);
        assert!((v[2] + 0.064).abs() < 1e-12);
        assert!((full_circle() - 2.0 * PI).abs() < 1e-15);
    }
}
