//! The 2-D oscillating NACA 0012 airfoil system (Section 4.1 of the paper).
//!
//! Three single-plane grids with roughly equal point counts:
//!
//! 1. a near-field O-grid that defines the airfoil and extends about one
//!    chord from the surface (this grid rotates with the pitching motion),
//! 2. an intermediate circular (annular) grid out to about three chords,
//! 3. a square Cartesian background grid out to seven chords.
//!
//! At the paper's composite size (~64K points) the IGBP/gridpoint ratio is
//! about 44e-3.

use crate::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind, Solid};
use crate::field::Field3;
use crate::gen::stretched_first_cell;
use crate::index::{Dims, Ijk};

/// NACA 0012 half-thickness at chordwise position `x ∈ [0, 1]` (classic
/// open trailing edge: thickness ≈ 0.25% chord at x = 1). The small blunt
/// base keeps the O-grid cells at the trailing edge nondegenerate — a
/// zero-thickness TE would give sliver cells whose Jacobians make the
/// rotating-grid problem unsolvably stiff.
pub fn naca0012_thickness(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    0.6 * (0.2969 * x.sqrt() - 0.1260 * x - 0.3516 * x * x + 0.2843 * x * x * x
        - 0.1015 * x * x * x * x)
}

/// Surface point `s ∈ [0, 1)` around the airfoil, starting at the trailing
/// edge, running along the lower surface to the leading edge and back along
/// the upper surface (counter-clockwise).
fn surface_point(s: f64) -> [f64; 2] {
    // Moderate cosine clustering toward LE and TE: a pure cosine map makes
    // trailing-edge cells so thin that the azimuthal CFL of the *rotating*
    // grid becomes untenable; blending 60% cosine with 40% uniform keeps
    // resolution at the edges without the extreme aspect ratios.
    const W: f64 = 0.6;
    let cluster = |t: f64, reverse: bool| -> f64 {
        let cosine = if reverse {
            0.5 * (1.0 - (std::f64::consts::PI * t).cos())
        } else {
            0.5 * (1.0 + (std::f64::consts::PI * t).cos())
        };
        let linear = if reverse { t } else { 1.0 - t };
        W * cosine + (1.0 - W) * linear
    };
    if s < 0.5 {
        let t = s / 0.5; // 0 at TE, 1 at LE, lower surface
        let x = cluster(t, false);
        [x, -naca0012_thickness(x)]
    } else {
        let t = (s - 0.5) / 0.5; // 0 at LE, 1 at TE, upper surface
        let x = cluster(t, true);
        [x, naca0012_thickness(x)]
    }
}

/// Near-field O-grid: `ni` wrap-around nodes (last duplicates first), `nj`
/// radial layers from the surface to a circle of radius `outer` about the
/// quarter chord, geometrically clustered at the wall.
pub fn near_grid(ni: usize, nj: usize, outer: f64) -> CurvilinearGrid {
    assert!(ni >= 5 && nj >= 3);
    let dims = Dims::new(ni, nj, 1);
    // First wall cell pinned to ~0.048/nj of the layer span: the near-wall
    // spacing then scales like 1/resolution instead of collapsing
    // geometrically as layers are added.
    let radial = stretched_first_cell(nj, 0.048 / nj as f64);
    let center = [0.25, 0.0];
    let coords = Field3::from_fn(dims, |p: Ijk| {
        let s = (p.i % (ni - 1)) as f64 / (ni - 1) as f64;
        let sp = surface_point(s);
        // Angular coordinate: the surface angle about the quarter chord at
        // the wall, blended toward a *uniform* angular distribution at the
        // outer ring. Without the blend, the surface's cosine clustering
        // would concentrate outer-ring points near the trailing-edge angle,
        // producing extreme-aspect cells at the interpolation boundary.
        let ang_s = (sp[1] - center[1]).atan2(sp[0] - center[0]);
        let mut ang_u = -2.0 * std::f64::consts::PI * s;
        // Unwrap to the branch nearest the surface angle.
        while ang_u - ang_s > std::f64::consts::PI {
            ang_u -= 2.0 * std::f64::consts::PI;
        }
        while ang_s - ang_u > std::f64::consts::PI {
            ang_u += 2.0 * std::f64::consts::PI;
        }
        let t = radial[p.j];
        let ang = ang_s + t * (ang_u - ang_s);
        let r_s = ((sp[0] - center[0]).powi(2) + (sp[1] - center[1]).powi(2)).sqrt();
        let r = r_s + t * (outer - r_s);
        [center[0] + r * ang.cos(), center[1] + r * ang.sin(), 0.0]
    });
    let mut g = CurvilinearGrid::new("airfoil-near", coords, GridKind::NearBody);
    g.periodic_i = true;
    g.viscous = true;
    g.turbulent = true;
    g.work_weight = 1.0;
    g.patches = vec![
        BoundaryPatch { face: Face::JMin, kind: BcKind::Wall { viscous: true } },
        BoundaryPatch { face: Face::JMax, kind: BcKind::OversetOuter },
        BoundaryPatch { face: Face::IMin, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::IMax, kind: BcKind::PeriodicI },
    ];
    // Hole-cutting solid: a thin slab hugging the airfoil. Points of other
    // grids inside it are blanked.
    g.solids = vec![Solid::Ellipsoid { center: [0.5, 0.0, 0.0], radii: [0.52, 0.07, 1.0] }];
    g
}

/// Intermediate annular grid from radius `inner` to `outer` about the quarter
/// chord. Stationary.
pub fn intermediate_grid(ni: usize, nj: usize, inner: f64, outer: f64) -> CurvilinearGrid {
    let dims = Dims::new(ni, nj, 1);
    let center = [0.25, 0.0];
    let coords = Field3::from_fn(dims, |p: Ijk| {
        // Clockwise azimuth: (i, j, k=z) right-handed, matching the O-grid.
        let th = -2.0 * std::f64::consts::PI * (p.i % (ni - 1)) as f64 / (ni - 1) as f64;
        let r = inner + (outer - inner) * p.j as f64 / (nj - 1) as f64;
        [center[0] + r * th.cos(), center[1] + r * th.sin(), 0.0]
    });
    let mut g = CurvilinearGrid::new("airfoil-mid", coords, GridKind::NearBody);
    g.periodic_i = true;
    g.viscous = false;
    g.patches = vec![
        BoundaryPatch { face: Face::JMin, kind: BcKind::OversetOuter },
        BoundaryPatch { face: Face::JMax, kind: BcKind::OversetOuter },
        BoundaryPatch { face: Face::IMin, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::IMax, kind: BcKind::PeriodicI },
    ];
    g
}

/// Square Cartesian background grid spanning `[-half, half]^2` around the
/// quarter chord, materialized as a curvilinear grid (OVERFLOW-D1 treats all
/// component grids uniformly).
pub fn background_grid(n: usize, half: f64) -> CurvilinearGrid {
    let dims = Dims::new(n, n, 1);
    let center = [0.25, 0.0];
    let h = 2.0 * half / (n - 1) as f64;
    let coords = Field3::from_fn(dims, |p: Ijk| {
        [center[0] - half + h * p.i as f64, center[1] - half + h * p.j as f64, 0.0]
    });
    let mut g = CurvilinearGrid::new("airfoil-bg", coords, GridKind::Background);
    g.viscous = false;
    g.patches = vec![
        BoundaryPatch { face: Face::IMin, kind: BcKind::Farfield },
        BoundaryPatch { face: Face::IMax, kind: BcKind::Farfield },
        BoundaryPatch { face: Face::JMin, kind: BcKind::Farfield },
        BoundaryPatch { face: Face::JMax, kind: BcKind::Farfield },
    ];
    g
}

/// The paper-size three-grid airfoil system (~64K composite points) scaled by
/// `scale` in each in-plane direction (`scale = 0.5` quarters the point count,
/// matching the "coarsened" case of Table 2; `scale = 2.0` gives the
/// "refined" case).
pub fn airfoil_system(scale: f64) -> Vec<CurvilinearGrid> {
    let s = |n: usize| -> usize { ((n as f64 * scale).round() as usize).max(5) };
    // Base sizes chosen so the composite is ~63.6K points, split roughly
    // equally among the three grids as in the paper.
    vec![
        near_grid(s(265), s(80), 1.1),
        intermediate_grid(s(185), s(115), 0.85, 3.0),
        background_grid(s(146), 7.0),
    ]
}

/// Hierarchical donor-search lists for the airfoil system: each grid searches
/// the adjacent grid in the hierarchy first, then the remaining one.
pub fn airfoil_search_order() -> Vec<Vec<usize>> {
    vec![vec![1, 2], vec![0, 2], vec![1, 0]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thickness_closed_te() {
        assert!(naca0012_thickness(0.0).abs() < 1e-12);
        // Open TE: small blunt base.
        let te = naca0012_thickness(1.0);
        assert!(te > 1e-4 && te < 3e-3, "te = {te}");
        // Max thickness ~6% of chord (half-thickness) near x = 0.3.
        let t = naca0012_thickness(0.3);
        assert!(t > 0.055 && t < 0.065, "t = {t}");
    }

    #[test]
    fn near_grid_wall_is_on_airfoil() {
        let g = near_grid(65, 17, 1.1);
        let d = g.dims();
        for i in 0..d.ni {
            let p = g.xyz(Ijk::new(i, 0, 0));
            let t = naca0012_thickness(p[0]);
            assert!(p[1].abs() <= t + 1e-9, "wall point off surface: {p:?}");
        }
        // Outer ring on the circle of radius 1.1.
        for i in 0..d.ni {
            let p = g.xyz(Ijk::new(i, d.nj - 1, 0));
            let r = ((p[0] - 0.25).powi(2) + p[1].powi(2)).sqrt();
            assert!((r - 1.1).abs() < 1e-9);
        }
    }

    #[test]
    fn near_grid_metrics_untangled() {
        let g = near_grid(129, 33, 1.1);
        let m = crate::metrics::compute_metrics(&g);
        let mut neg = 0;
        for p in g.dims().iter() {
            if m[p].jac <= 0.0 {
                neg += 1;
            }
        }
        assert_eq!(neg, 0, "found {neg} non-positive Jacobians");
    }

    #[test]
    fn wrap_duplicates_first_node() {
        let g = near_grid(65, 9, 1.1);
        let d = g.dims();
        for j in 0..d.nj {
            let a = g.xyz(Ijk::new(0, j, 0));
            let b = g.xyz(Ijk::new(d.ni - 1, j, 0));
            assert!((a[0] - b[0]).abs() < 1e-12 && (a[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn system_sizes_match_paper() {
        let sys = airfoil_system(1.0);
        let total: usize = sys.iter().map(|g| g.num_points()).sum();
        // Paper: 63.6K composite.
        assert!((60_000..68_000).contains(&total), "composite size {total} out of band");
        // Roughly equal thirds.
        for g in &sys {
            let frac = g.num_points() as f64 / total as f64;
            assert!((0.25..0.42).contains(&frac), "{}: {frac}", g.name);
        }
    }

    #[test]
    fn scaled_system_quarters_points() {
        let full: usize = airfoil_system(1.0).iter().map(|g| g.num_points()).sum();
        let coarse: usize = airfoil_system(0.5).iter().map(|g| g.num_points()).sum();
        let ratio = full as f64 / coarse as f64;
        assert!((3.4..4.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn grids_nest_geometrically() {
        let sys = airfoil_system(0.3);
        let near = sys[0].bounding_box();
        let mid = sys[1].bounding_box();
        let bg = sys[2].bounding_box();
        // Near grid fits inside intermediate, intermediate inside background.
        assert!(mid.contains([near.max[0], 0.0, 0.0]));
        assert!(bg.contains(mid.min) && bg.contains(mid.max));
    }
}
