//! Pointwise coarsening and refinement of curvilinear grids, used for the
//! Table 2 scaling study: "the original grids are coarsened by removing every
//! other gridpoint ... and refined by adding a gridpoint between the others",
//! changing the composite size by 4× each way (in 2-D).

use crate::curvilinear::CurvilinearGrid;
use crate::field::Field3;
use crate::index::{Dims, Ijk};

/// Remove every other gridpoint in each non-degenerate direction, keeping
/// both endpoints. Directions whose extent is even keep their last point
/// (so endpoint geometry is preserved exactly).
pub fn coarsen(g: &CurvilinearGrid) -> CurvilinearGrid {
    let d = g.dims();
    let half = |n: usize| if n <= 2 { n } else { n.div_ceil(2) };
    let nd = Dims::new(half(d.ni), half(d.nj), half(d.nk));
    let map = |c: usize, n_old: usize, n_new: usize| -> usize {
        if c + 1 == n_new {
            n_old - 1 // keep the exact endpoint
        } else {
            2 * c
        }
    };
    let coords = Field3::from_fn(nd, |p: Ijk| {
        g.coords[Ijk::new(map(p.i, d.ni, nd.ni), map(p.j, d.nj, nd.nj), map(p.k, d.nk, nd.nk))]
    });
    let mut out = g.clone();
    out.coords = coords;
    out.name = format!("{}-coarse", g.name);
    out
}

/// Insert a midpoint between every pair of adjacent gridpoints in each
/// non-degenerate direction (linear interpolation of coordinates).
pub fn refine(g: &CurvilinearGrid) -> CurvilinearGrid {
    let d = g.dims();
    let dbl = |n: usize| if n == 1 { 1 } else { 2 * n - 1 };
    let nd = Dims::new(dbl(d.ni), dbl(d.nj), dbl(d.nk));
    let coords = Field3::from_fn(nd, |p: Ijk| {
        // Each fine index maps to old index c/2 with parity giving midpoints.
        let lerp_idx = |c: usize, n_old: usize| -> (usize, usize, f64) {
            if n_old == 1 {
                return (0, 0, 0.0);
            }
            let lo = c / 2;
            if c % 2 == 0 {
                (lo, lo, 0.0)
            } else {
                (lo, lo + 1, 0.5)
            }
        };
        let (i0, i1, fi) = lerp_idx(p.i, d.ni);
        let (j0, j1, fj) = lerp_idx(p.j, d.nj);
        let (k0, k1, fk) = lerp_idx(p.k, d.nk);
        // Trilinear interpolation over the (at most) 8 parents.
        let mut out = [0.0f64; 3];
        for (wi, ii) in [(1.0 - fi, i0), (fi, i1)] {
            if wi == 0.0 {
                continue;
            }
            for (wj, jj) in [(1.0 - fj, j0), (fj, j1)] {
                if wj == 0.0 {
                    continue;
                }
                for (wk, kk) in [(1.0 - fk, k0), (fk, k1)] {
                    if wk == 0.0 {
                        continue;
                    }
                    let c = g.coords[Ijk::new(ii, jj, kk)];
                    for t in 0..3 {
                        out[t] += wi * wj * wk * c[t];
                    }
                }
            }
        }
        out
    });
    let mut out = g.clone();
    out.coords = coords;
    out.name = format!("{}-fine", g.name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curvilinear::GridKind;

    fn grid(ni: usize, nj: usize, nk: usize) -> CurvilinearGrid {
        let d = Dims::new(ni, nj, nk);
        let coords =
            Field3::from_fn(d, |p| [p.i as f64 * 0.5, (p.j as f64).powi(2) * 0.1, p.k as f64]);
        CurvilinearGrid::new("t", coords, GridKind::Background)
    }

    #[test]
    fn coarsen_quarter_points_2d() {
        let g = grid(41, 21, 1);
        let c = coarsen(&g);
        assert_eq!(c.dims(), Dims::new(21, 11, 1));
        let ratio = g.num_points() as f64 / c.num_points() as f64;
        assert!((3.4..4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn coarsen_preserves_endpoints() {
        let g = grid(41, 21, 9);
        let c = coarsen(&g);
        let (d, cd) = (g.dims(), c.dims());
        assert_eq!(
            c.coords[Ijk::new(cd.ni - 1, cd.nj - 1, cd.nk - 1)],
            g.coords[Ijk::new(d.ni - 1, d.nj - 1, d.nk - 1)]
        );
        assert_eq!(c.coords[Ijk::new(0, 0, 0)], g.coords[Ijk::new(0, 0, 0)]);
    }

    #[test]
    fn refine_quadruples_points_2d() {
        let g = grid(21, 11, 1);
        let r = refine(&g);
        assert_eq!(r.dims(), Dims::new(41, 21, 1));
        let ratio = r.num_points() as f64 / g.num_points() as f64;
        assert!((3.4..4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn refine_keeps_parents_and_midpoints() {
        let g = grid(5, 4, 3);
        let r = refine(&g);
        // Every original point appears at even fine indices.
        for p in g.dims().iter() {
            assert_eq!(r.coords[Ijk::new(2 * p.i, 2 * p.j, 2 * p.k)], g.coords[p]);
        }
        // A midpoint in i is the average of its neighbours.
        let a = g.coords[Ijk::new(1, 0, 0)];
        let b = g.coords[Ijk::new(2, 0, 0)];
        let m = r.coords[Ijk::new(3, 0, 0)];
        for t in 0..3 {
            assert!((m[t] - 0.5 * (a[t] + b[t])).abs() < 1e-12);
        }
    }

    #[test]
    fn coarsen_refine_roundtrip_keeps_dims() {
        let g = grid(9, 9, 1);
        let rt = coarsen(&refine(&g));
        assert_eq!(rt.dims(), g.dims());
        for p in g.dims().iter() {
            let (a, b) = (rt.coords[p], g.coords[p]);
            for t in 0..3 {
                assert!((a[t] - b[t]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_d_k_direction_untouched() {
        let g = grid(9, 9, 1);
        assert_eq!(refine(&g).dims().nk, 1);
        assert_eq!(coarsen(&g).dims().nk, 1);
    }
}
