//! Analytic grid generators for the paper's test cases.
//!
//! The NASA grid systems used in the paper (V-22, delta wing, wing/pylon/
//! finned-store, X-38) are not publicly available; these generators build
//! synthetic equivalents whose *sizes, overlap topology and IGBP/gridpoint
//! ratios* match the numbers the paper reports, which is all that the
//! parallel-performance experiments depend on (see DESIGN.md §2).
//!
//! * [`airfoil`] — the 2-D oscillating NACA 0012 system (near-field O-grid,
//!   intermediate annulus, Cartesian background),
//! * [`revolution`] — body-of-revolution shell grids and spherical caps used
//!   as building blocks for the 3-D cases,
//! * [`delta_wing`] — the 4-grid descending delta wing system,
//! * [`store`] — the 16-grid wing/pylon/finned-store system,
//! * [`refine`] — pointwise coarsening/refinement for the Table 2 scaling
//!   study.

pub mod airfoil;
pub mod delta_wing;
pub mod refine;
pub mod revolution;
pub mod store;

/// Geometric stretching of `n` values in `[0, 1]` clustered toward 0 with
/// ratio `r > 1` (`r = 1` gives uniform spacing). Used to cluster radial
/// layers toward viscous walls.
pub fn stretched(n: usize, r: f64) -> Vec<f64> {
    assert!(n >= 2);
    if (r - 1.0).abs() < 1e-12 {
        return (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    }
    // Spacings form a geometric series h, h*r, h*r^2, ...
    let total: f64 = (r.powi(n as i32 - 1) - 1.0) / (r - 1.0);
    let h = 1.0 / total;
    let mut out = Vec::with_capacity(n);
    let mut x = 0.0f64;
    let mut dx = h;
    for _ in 0..n {
        out.push(x.min(1.0));
        x += dx;
        dx *= r;
    }
    out[n - 1] = 1.0;
    out
}

/// Geometric stretching of `n` values in `[0, 1]` with the *first interval*
/// pinned to `first_frac` of the span (the ratio is solved by bisection).
/// Unlike a fixed ratio, this keeps the near-wall cell size scaling
/// proportionally when the layer count grows with resolution.
pub fn stretched_first_cell(n: usize, first_frac: f64) -> Vec<f64> {
    assert!(n >= 2);
    let uniform = 1.0 / (n - 1) as f64;
    if first_frac >= uniform {
        return (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    }
    // Find r > 1 with first-cell fraction h1(r) = (r - 1)/(r^(n-1) - 1).
    let h1 = |r: f64| -> f64 { (r - 1.0) / (r.powi(n as i32 - 1) - 1.0) };
    let (mut lo, mut hi) = (1.0 + 1e-9, 2.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if h1(mid) > first_frac {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    stretched(n, 0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretched_endpoints_and_monotonicity() {
        for &(n, r) in &[(2, 1.0), (10, 1.0), (10, 1.2), (33, 1.05)] {
            let s = stretched(n, r);
            assert_eq!(s.len(), n);
            assert_eq!(s[0], 0.0);
            assert!((s[n - 1] - 1.0).abs() < 1e-12);
            for w in s.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn stretched_first_cell_pins_first_interval() {
        for &(n, frac) in &[(40usize, 6.0e-4), (80, 6.0e-4), (160, 3.0e-4), (20, 0.02)] {
            let s = stretched_first_cell(n, frac);
            assert_eq!(s.len(), n);
            assert!((s[n - 1] - 1.0).abs() < 1e-12);
            let first = s[1] - s[0];
            assert!((first - frac).abs() < 0.05 * frac, "n={n}: first {first} vs {frac}");
        }
        // Coarser than uniform request degrades to uniform.
        let s = stretched_first_cell(5, 0.5);
        assert!((s[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stretched_clusters_toward_zero() {
        let s = stretched(20, 1.3);
        let first = s[1] - s[0];
        let last = s[19] - s[18];
        assert!(first < last / 5.0, "first {first} last {last}");
    }
}
