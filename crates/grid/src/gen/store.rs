//! The wing/pylon/finned-store separation system (Section 4.3 of the paper).
//!
//! Sixteen grids with a composite total of ~0.81 million points at full scale
//! and an IGBP/gridpoint ratio of about 66e-3 (1.5–2× the other two cases —
//! this is what makes the case the best candidate for the dynamic load
//! balancing study):
//!
//! * ten curvilinear grids defining the finned store (nose cap, two body
//!   segments, boattail, base cap, four fin grids, one collar grid),
//! * three curvilinear grids defining the wing/pylon (wing shell, pylon box,
//!   wing/pylon junction box),
//! * three nested Cartesian background grids around the store path.
//!
//! Viscous terms are active on all curvilinear grids with the Baldwin–Lomax
//! turbulence model; the Cartesian backgrounds are inviscid, as in the paper.

use crate::bbox::Aabb;
use crate::curvilinear::{CurvilinearGrid, Face, Solid};
use crate::gen::revolution::{background_box, box_grid, ellipsoid_shell, shell_of_revolution};
use crate::index::Dims;
use crate::transform::RigidTransform;

fn sc(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(5)
}

/// Store body radius profile: ogive nose, cylindrical midbody, boattail.
/// Axial coordinate `s ∈ [0,1]` along the store length.
pub fn store_radius(s: f64) -> f64 {
    let r_max = 0.25;
    if s < 0.2 {
        // Ogive nose: smooth rise from a small tip radius.
        let t = s / 0.2;
        0.04 + (r_max - 0.04) * (1.5 * t - 0.5 * t * t * t).clamp(0.0, 1.0)
    } else if s < 0.85 {
        r_max
    } else {
        // Boattail taper.
        let t = (s - 0.85) / 0.15;
        r_max - 0.10 * t
    }
}

/// Ids of the moving (store) grids within [`store_system`]'s output.
pub const STORE_GRID_IDS: [usize; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
/// Ids of the stationary wing/pylon grids.
pub const WING_GRID_IDS: [usize; 3] = [10, 11, 12];
/// Ids of the Cartesian background grids (fine → coarse).
pub const BACKGROUND_GRID_IDS: [usize; 3] = [13, 14, 15];

/// Store length and initial carriage position (under the pylon).
pub const STORE_LEN: f64 = 3.0;
pub const STORE_CARRIAGE: [f64; 3] = [0.0, 0.0, -0.8];

/// Build the 16-grid system. `scale` multiplies node counts per direction;
/// `1.0` reproduces the paper's 0.81M composite size.
pub fn store_system(scale: f64) -> Vec<CurvilinearGrid> {
    let mut grids: Vec<CurvilinearGrid> = Vec::with_capacity(16);
    let carry = RigidTransform::translation(STORE_CARRIAGE);

    // --- Store grids (10), generated about the origin then moved to the
    // carriage position under the pylon. The store axis is x, tail at x=0,
    // nose at x=STORE_LEN... (nose toward -x flight direction is immaterial).
    // 0: nose cap
    let mut nose = ellipsoid_shell(
        "store-nose",
        sc(49, scale),
        sc(17, scale),
        sc(25, scale),
        [0.25, 0.0, 0.0],
        [0.30, 0.26, 0.26],
        0.45,
        true,
    );
    // Sub-surface solid for the ogive nose (hole-cutting solids sit
    // slightly inside the true surface so near-wall donor cells of other
    // grids remain usable).
    nose.solids = vec![Solid::Ellipsoid { center: [0.25, 0.0, 0.0], radii: [0.26, 0.21, 0.21] }];
    grids.push(nose);

    // 1–2: body segments (fore, aft)
    grids.push(shell_of_revolution(
        "store-body-fore",
        sc(65, scale),
        sc(21, scale),
        sc(33, scale),
        0.3,
        1.6,
        |s| store_radius((0.3 + 1.3 * s) / STORE_LEN),
        |_| 0.9,
        true,
    ));
    grids.push(shell_of_revolution(
        "store-body-aft",
        sc(65, scale),
        sc(21, scale),
        sc(33, scale),
        1.5,
        2.6,
        |s| store_radius((1.5 + 1.1 * s) / STORE_LEN),
        |_| 0.9,
        true,
    ));

    // 3: boattail/base region
    grids.push(shell_of_revolution(
        "store-boattail",
        sc(49, scale),
        sc(17, scale),
        sc(21, scale),
        2.5,
        3.0,
        |s| store_radius((2.5 + 0.5 * s) / STORE_LEN).max(0.05),
        |_| 0.7,
        true,
    ));

    // 4: base cap behind the store
    let mut base = ellipsoid_shell(
        "store-base",
        sc(41, scale),
        sc(13, scale),
        sc(17, scale),
        [2.95, 0.0, 0.0],
        [0.22, 0.18, 0.18],
        0.4,
        true,
    );
    base.solids.clear();
    grids.push(base);

    // 5–8: four fin grids at 45/135/225/315 degrees around the boattail.
    for (t, ang) in [45.0f64, 135.0, 225.0, 315.0].iter().enumerate() {
        let a = ang.to_radians();
        let dims = Dims::new(sc(33, scale), sc(17, scale), sc(21, scale));
        // Fin box in store frame: sits on the body surface (no penetration
        // into the store solid) and spans radially outward.
        let fin_box = Aabb::new([2.35, -0.18, 0.26], [3.0, 0.18, 0.85]);
        let mut fin = box_grid(&format!("store-fin-{t}"), dims, fin_box, Some(Face::KMin), true);
        fin.apply_transform(&RigidTransform::rotation_about([0.0; 3], [1.0, 0.0, 0.0], a));
        // Thin oriented slab for the fin surface (exact under rotation).
        fin.solids = vec![Solid::oriented_slab_from_aabb(Aabb::new(
            [2.45, -0.015, 0.30],
            [2.9, 0.015, 0.66],
        ))
        .transformed(&RigidTransform::rotation_about([0.0; 3], [1.0, 0.0, 0.0], a))];
        grids.push(fin);
    }

    // 9: collar grid wrapping the fin region (helps inter-fin connectivity).
    grids.push(shell_of_revolution(
        "store-collar",
        sc(49, scale),
        sc(13, scale),
        sc(25, scale),
        2.3,
        3.0,
        |s| store_radius((2.3 + 0.7 * s) / STORE_LEN).max(0.05),
        |_| 1.1,
        false,
    ));

    // Attach the unified store solid to the fore-body grid and move every
    // store grid to the carriage position.
    grids[1].solids = vec![
        // Sub-surface: radius 0.2 vs the true 0.25 body, clear of the nose
        // ogive and boattail taper.
        Solid::Cylinder { p0: [0.3, 0.0, 0.0], p1: [2.85, 0.0, 0.0], radius: 0.2 },
    ];
    for id in STORE_GRID_IDS {
        grids[id].apply_transform(&carry);
        grids[id].turbulent = grids[id].viscous;
    }

    // --- Wing/pylon grids (3), stationary.
    // 10: wing shell (flattened ellipsoid above the store).
    let mut wing = ellipsoid_shell(
        "wing",
        sc(97, scale),
        sc(25, scale),
        sc(49, scale),
        [1.0, 0.0, 0.6],
        [2.5, 1.8, 0.12],
        0.9,
        true,
    );
    wing.turbulent = true;
    // Sub-surface hole-cutting solid.
    wing.solids = vec![Solid::Ellipsoid { center: [1.0, 0.0, 0.6], radii: [2.4, 1.7, 0.09] }];
    grids.push(wing);

    // 11: pylon box between wing and store carriage position.
    let mut pylon = box_grid(
        "pylon",
        Dims::new(sc(41, scale), sc(25, scale), sc(33, scale)),
        Aabb::new([0.4, -0.35, -0.45], [1.8, 0.35, 0.55]),
        Some(Face::KMax),
        true,
    );
    pylon.turbulent = true;
    pylon.solids = vec![Solid::Slab { aabb: Aabb::new([0.65, -0.06, -0.25], [1.55, 0.06, 0.5]) }];
    grids.push(pylon);

    // 12: wing/pylon junction refinement box.
    let mut junction = box_grid(
        "junction",
        Dims::new(sc(41, scale), sc(21, scale), sc(21, scale)),
        Aabb::new([0.2, -0.6, 0.2], [2.2, 0.6, 0.9]),
        None,
        true,
    );
    junction.turbulent = true;
    grids.push(junction);

    // --- Nested Cartesian backgrounds (3), fine → coarse, inviscid.
    let scale3 = scale.powi(3).max(1e-4);
    let mut bg_fine = background_box(
        "bg-fine",
        Aabb::new([-1.0, -1.4, -3.0], [4.2, 1.4, 1.0]),
        (220_000.0 * scale3).max(2_000.0) as usize,
    );
    for p in &mut bg_fine.patches {
        p.kind = crate::curvilinear::BcKind::OversetOuter;
    }
    grids.push(bg_fine);
    let mut bg_mid = background_box(
        "bg-mid",
        Aabb::new([-3.5, -3.5, -7.0], [7.5, 3.5, 2.5]),
        (100_000.0 * scale3).max(1_200.0) as usize,
    );
    for p in &mut bg_mid.patches {
        p.kind = crate::curvilinear::BcKind::OversetOuter;
    }
    grids.push(bg_mid);
    grids.push(background_box(
        "bg-coarse",
        Aabb::new([-8.0, -8.0, -14.0], [13.0, 8.0, 6.0]),
        (40_000.0 * scale3).max(1_000.0) as usize,
    ));

    debug_assert_eq!(grids.len(), 16);
    grids
}

/// Donor-search hierarchy: store grids search their neighbours, then the
/// collar, then the fine background; wing/pylon grids search each other then
/// backgrounds; backgrounds search near-body grids then coarser backgrounds.
pub fn store_search_order() -> Vec<Vec<usize>> {
    let mut order: Vec<Vec<usize>> = Vec::with_capacity(16);
    // Store component grids: siblings first (cheap overlaps), then collar,
    // then the fine background.
    for id in STORE_GRID_IDS {
        let mut v: Vec<usize> = STORE_GRID_IDS.iter().copied().filter(|&g| g != id).collect();
        // At carriage the store sits against the pylon: the wing/pylon
        // grids donate in the gap region.
        v.extend_from_slice(&[11, 12, 10, 13, 14]);
        order.push(v);
    }
    // Wing/pylon grids: siblings, then the (initially adjacent) store
    // grids, then backgrounds.
    for id in WING_GRID_IDS {
        let mut v: Vec<usize> = WING_GRID_IDS.iter().copied().filter(|&g| g != id).collect();
        v.extend_from_slice(&STORE_GRID_IDS);
        v.extend_from_slice(&[13, 14, 15]);
        order.push(v);
    }
    // Backgrounds: near-body grids first, then next-coarser background.
    order.push({
        let mut v: Vec<usize> = STORE_GRID_IDS.to_vec();
        v.extend_from_slice(&WING_GRID_IDS);
        v.push(14);
        v
    });
    order.push(vec![13, 15]);
    order.push(vec![14]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curvilinear::GridKind;

    #[test]
    fn sixteen_grids_with_paper_size() {
        let sys = store_system(1.0);
        assert_eq!(sys.len(), 16);
        let total: usize = sys.iter().map(|g| g.num_points()).sum();
        // Paper: 0.81M composite.
        assert!((650_000..1_000_000).contains(&total), "total = {total}");
    }

    #[test]
    fn grid_roles_match_paper() {
        let sys = store_system(0.3);
        let curvi = sys.iter().filter(|g| g.kind == GridKind::NearBody).count();
        let bg = sys.iter().filter(|g| g.kind == GridKind::Background).count();
        assert_eq!(curvi, 13);
        assert_eq!(bg, 3);
        for id in BACKGROUND_GRID_IDS {
            assert!(!sys[id].viscous, "{} should be inviscid", sys[id].name);
        }
        // Baldwin-Lomax on the viscous curvilinear grids.
        for g in &sys {
            if g.kind == GridKind::NearBody && g.viscous {
                assert!(g.turbulent, "{} missing turbulence model", g.name);
            }
        }
    }

    #[test]
    fn store_grids_sit_under_pylon() {
        let sys = store_system(0.3);
        for id in STORE_GRID_IDS {
            let c = sys[id].bounding_box().center();
            assert!(c[2] < 0.4, "{} not below wing: z = {}", sys[id].name, c[2]);
        }
        let wing_c = sys[10].bounding_box().center();
        assert!(wing_c[2] > 0.0);
    }

    #[test]
    fn backgrounds_nest() {
        let sys = store_system(0.3);
        let fine = sys[13].bounding_box();
        let mid = sys[14].bounding_box();
        let coarse = sys[15].bounding_box();
        assert!(mid.contains(fine.min) && mid.contains(fine.max));
        assert!(coarse.contains(mid.min) && coarse.contains(mid.max));
    }

    #[test]
    fn search_order_well_formed() {
        let order = store_search_order();
        assert_eq!(order.len(), 16);
        for (g, list) in order.iter().enumerate() {
            assert!(!list.is_empty());
            assert!(!list.contains(&g), "grid {g} searches itself");
            for &t in list {
                assert!(t < 16);
            }
        }
    }

    #[test]
    fn radius_profile_shape() {
        assert!(store_radius(0.0) < 0.1);
        assert!((store_radius(0.5) - 0.25).abs() < 1e-12);
        assert!(store_radius(1.0) < 0.25);
        // Monotone through the nose.
        assert!(store_radius(0.1) < store_radius(0.2));
    }

    #[test]
    fn fins_are_symmetric() {
        let sys = store_system(0.3);
        let centers: Vec<[f64; 3]> = (5..9).map(|i| sys[i].bounding_box().center()).collect();
        // Fins should be at +-45 degrees: |y| == |z - carriage_z| roughly.
        for c in &centers {
            let dy = c[1].abs();
            let dz = (c[2] - STORE_CARRIAGE[2]).abs();
            assert!((dy - dz).abs() < 0.1, "fin center asymmetric: {c:?}");
        }
    }
}
