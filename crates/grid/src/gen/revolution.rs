//! Building-block generators for the 3-D cases: shells around bodies of
//! revolution, shells around ellipsoids, and Cartesian box grids.
//!
//! All near-body shells use `i` = azimuth (periodic with a duplicated seam
//! node), `j` = radial layers (wall at `j = 0`), and `k` = axial or polar
//! stations. Polar shells exclude a small cone around each pole (degenerate
//! axis handling adds nothing to the parallel cost structure the paper
//! measures; the excluded edges use extrapolation closures).

use crate::bbox::Aabb;
use crate::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind, Solid};
use crate::field::Field3;
use crate::gen::{stretched, stretched_first_cell};
use crate::index::{Dims, Ijk};
use std::f64::consts::PI;

/// Shell grid around a body of revolution along the x-axis.
///
/// * `x0..x1` — axial extent,
/// * `profile(s)` — body radius at normalized axial position `s ∈ [0,1]`
///   (must be > 0 everywhere),
/// * `outer(s)` — outer shell radius at `s` (must exceed `profile(s)`).
#[allow(clippy::too_many_arguments)]
pub fn shell_of_revolution(
    name: &str,
    ni: usize,
    nj: usize,
    nk: usize,
    x0: f64,
    x1: f64,
    profile: impl Fn(f64) -> f64,
    outer: impl Fn(f64) -> f64,
    viscous: bool,
) -> CurvilinearGrid {
    assert!(ni >= 5 && nj >= 3 && nk >= 2);
    let dims = Dims::new(ni, nj, nk);
    let radial =
        if viscous { stretched_first_cell(nj, 0.57 / nj as f64) } else { stretched(nj, 1.0) };
    let coords = Field3::from_fn(dims, |p: Ijk| {
        // Clockwise azimuth so (i, j, k) = (θ, r, x) is right-handed (J > 0).
        let th = -2.0 * PI * (p.i % (ni - 1)) as f64 / (ni - 1) as f64;
        let s = p.k as f64 / (nk - 1) as f64;
        let rw = profile(s);
        let ro = outer(s);
        debug_assert!(ro > rw && rw > 0.0);
        let r = rw + radial[p.j] * (ro - rw);
        let x = x0 + s * (x1 - x0);
        [x, r * th.cos(), r * th.sin()]
    });
    let mut g = CurvilinearGrid::new(name, coords, GridKind::NearBody);
    g.periodic_i = true;
    g.viscous = viscous;
    g.patches = vec![
        BoundaryPatch { face: Face::JMin, kind: BcKind::Wall { viscous } },
        BoundaryPatch { face: Face::JMax, kind: BcKind::OversetOuter },
        BoundaryPatch { face: Face::IMin, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::IMax, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::KMin, kind: BcKind::Extrapolate },
        BoundaryPatch { face: Face::KMax, kind: BcKind::Extrapolate },
    ];
    g
}

/// Shell grid around an ellipsoid, in stretched spherical coordinates:
/// `i` = azimuth (periodic), `j` = radial from the surface outward by the
/// additive distance `outer_pad` (additive, not multiplicative, so thin
/// bodies still get a thick overlap collar for donor coverage),
/// `k` = polar angle over `[1.5%, 98.5%]` of `[0,π]`.
#[allow(clippy::too_many_arguments)]
pub fn ellipsoid_shell(
    name: &str,
    ni: usize,
    nj: usize,
    nk: usize,
    center: [f64; 3],
    radii: [f64; 3],
    outer_pad: f64,
    viscous: bool,
) -> CurvilinearGrid {
    assert!(ni >= 5 && nj >= 3 && nk >= 3 && outer_pad > 0.0);
    let dims = Dims::new(ni, nj, nk);
    let radial =
        if viscous { stretched_first_cell(nj, 0.57 / nj as f64) } else { stretched(nj, 1.0) };
    let coords = Field3::from_fn(dims, |p: Ijk| {
        let th = 2.0 * PI * (p.i % (ni - 1)) as f64 / (ni - 1) as f64;
        let phi = PI * (0.015 + 0.97 * p.k as f64 / (nk - 1) as f64);
        let t = radial[p.j];
        // Unit-sphere direction mapped through the padded ellipsoid radii.
        let dir = [phi.sin() * th.cos(), phi.sin() * th.sin(), phi.cos()];
        [
            center[0] + (radii[0] + t * outer_pad) * dir[0],
            center[1] + (radii[1] + t * outer_pad) * dir[1],
            center[2] + (radii[2] + t * outer_pad) * dir[2],
        ]
    });
    let mut g = CurvilinearGrid::new(name, coords, GridKind::NearBody);
    g.periodic_i = true;
    g.viscous = viscous;
    g.patches = vec![
        BoundaryPatch { face: Face::JMin, kind: BcKind::Wall { viscous } },
        BoundaryPatch { face: Face::JMax, kind: BcKind::OversetOuter },
        BoundaryPatch { face: Face::IMin, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::IMax, kind: BcKind::PeriodicI },
        BoundaryPatch { face: Face::KMin, kind: BcKind::Extrapolate },
        BoundaryPatch { face: Face::KMax, kind: BcKind::Extrapolate },
    ];
    g.solids = vec![Solid::Ellipsoid { center, radii }];
    g
}

/// A rectangular curvilinear box grid (used for fin grids and pylon grids):
/// uniform in each direction over `aabb`, wall on the requested face.
pub fn box_grid(
    name: &str,
    dims: Dims,
    aabb: Aabb,
    wall: Option<Face>,
    viscous: bool,
) -> CurvilinearGrid {
    let e = aabb.extent();
    let step = |n: usize, ext: f64| if n > 1 { ext / (n - 1) as f64 } else { 0.0 };
    let (hx, hy, hz) = (step(dims.ni, e[0]), step(dims.nj, e[1]), step(dims.nk, e[2]));
    let coords = Field3::from_fn(dims, |p: Ijk| {
        [
            aabb.min[0] + hx * p.i as f64,
            aabb.min[1] + hy * p.j as f64,
            aabb.min[2] + hz * p.k as f64,
        ]
    });
    let mut g = CurvilinearGrid::new(name, coords, GridKind::NearBody);
    g.viscous = viscous;
    g.patches = Face::ALL
        .iter()
        .map(|&f| BoundaryPatch {
            face: f,
            kind: if Some(f) == wall { BcKind::Wall { viscous } } else { BcKind::OversetOuter },
        })
        .collect();
    g
}

/// A Cartesian background grid over `aabb` with roughly `target` points,
/// materialized as a curvilinear grid, far-field on every face by default.
pub fn background_box(name: &str, aabb: Aabb, target: usize) -> CurvilinearGrid {
    let e = aabb.extent();
    let vol = e[0] * e[1] * e[2];
    assert!(vol > 0.0);
    let h = (vol / target as f64).cbrt();
    let n = |ext: f64| ((ext / h).round() as usize).max(2) + 1;
    let dims = Dims::new(n(e[0]), n(e[1]), n(e[2]));
    let mut g = box_grid(name, dims, aabb, None, false);
    g.kind = GridKind::Background;
    g.patches =
        Face::ALL.iter().map(|&f| BoundaryPatch { face: f, kind: BcKind::Farfield }).collect();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compute_metrics;

    #[test]
    fn shell_wall_on_body() {
        let g = shell_of_revolution("s", 33, 9, 11, 0.0, 4.0, |_| 0.5, |_| 2.0, true);
        let d = g.dims();
        for k in 0..d.nk {
            for i in 0..d.ni {
                let p = g.xyz(Ijk::new(i, 0, k));
                let r = (p[1] * p[1] + p[2] * p[2]).sqrt();
                assert!((r - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shell_metrics_positive() {
        let g = shell_of_revolution(
            "s",
            25,
            7,
            9,
            -1.0,
            3.0,
            |s| 0.3 + 0.1 * (PI * s).sin(),
            |_| 1.5,
            false,
        );
        let m = compute_metrics(&g);
        for p in g.dims().iter() {
            assert!(m[p].jac > 0.0, "J <= 0 at {p:?}");
        }
    }

    #[test]
    fn ellipsoid_shell_wall_on_surface() {
        let c = [1.0, 2.0, 3.0];
        let r = [2.0, 1.0, 0.5];
        let g = ellipsoid_shell("e", 25, 7, 13, c, r, 2.5, true);
        let d = g.dims();
        for k in 0..d.nk {
            for i in 0..d.ni {
                let p = g.xyz(Ijk::new(i, 0, k));
                let s: f64 = (0..3).map(|t| ((p[t] - c[t]) / r[t]).powi(2)).sum();
                assert!((s - 1.0).abs() < 1e-9, "wall point off ellipsoid: {s}");
            }
        }
    }

    #[test]
    fn ellipsoid_shell_metrics_positive() {
        let g = ellipsoid_shell("e", 21, 6, 11, [0.0; 3], [1.0, 1.0, 0.2], 3.0, false);
        let m = compute_metrics(&g);
        for p in g.dims().iter() {
            assert!(m[p].jac.abs() > 0.0);
        }
        // Orientation must be consistent across the grid.
        let signs: Vec<bool> = g.dims().iter().map(|p| m[p].jac > 0.0).collect();
        assert!(signs.iter().all(|&s| s == signs[0]), "mixed orientation");
    }

    #[test]
    fn background_box_hits_target_size() {
        let aabb = Aabb::new([0.0; 3], [4.0, 2.0, 1.0]);
        let g = background_box("bg", aabb, 50_000);
        let n = g.num_points();
        assert!((30_000..80_000).contains(&n), "n = {n}");
        assert_eq!(g.kind, GridKind::Background);
    }

    #[test]
    fn box_grid_wall_patch() {
        let g = box_grid(
            "fin",
            Dims::new(5, 6, 7),
            Aabb::new([0.0; 3], [1.0; 3]),
            Some(Face::JMin),
            true,
        );
        assert_eq!(g.patch_on(Face::JMin), Some(BcKind::Wall { viscous: true }));
        assert_eq!(g.patch_on(Face::IMax), Some(BcKind::OversetOuter));
    }
}
