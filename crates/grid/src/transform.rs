//! Rigid-body transforms: unit-quaternion rotation plus translation.
//!
//! Grid motion in the dynamic overset scheme never stretches or distorts a
//! component grid — components move rigidly (Section 2 of the paper) — so a
//! rigid transform fully describes one step of grid motion.

/// A unit quaternion `(w, x, y, z)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Quat {
    pub w: f64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Quat {
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Rotation of `angle` radians about (unnormalized) `axis`.
    pub fn from_axis_angle(axis: [f64; 3], angle: f64) -> Self {
        let n = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        if n == 0.0 {
            return Self::IDENTITY;
        }
        let (s, c) = (0.5 * angle).sin_cos();
        Quat { w: c, x: s * axis[0] / n, y: s * axis[1] / n, z: s * axis[2] / n }
    }

    pub fn norm(&self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    pub fn normalized(&self) -> Quat {
        let n = self.norm();
        Quat { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
    }

    pub fn conjugate(&self) -> Quat {
        Quat { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Hamilton product `self * rhs` (apply `rhs` first, then `self`).
    pub fn mul(&self, rhs: &Quat) -> Quat {
        Quat {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }

    /// Rotate a vector.
    pub fn rotate(&self, v: [f64; 3]) -> [f64; 3] {
        // v' = v + 2*q_v x (q_v x v + w*v)
        let q = [self.x, self.y, self.z];
        let t = [
            2.0 * (q[1] * v[2] - q[2] * v[1]),
            2.0 * (q[2] * v[0] - q[0] * v[2]),
            2.0 * (q[0] * v[1] - q[1] * v[0]),
        ];
        [
            v[0] + self.w * t[0] + q[1] * t[2] - q[2] * t[1],
            v[1] + self.w * t[1] + q[2] * t[0] - q[0] * t[2],
            v[2] + self.w * t[2] + q[0] * t[1] - q[1] * t[0],
        ]
    }

    /// Quaternion derivative for body angular velocity `omega` (world frame):
    /// `q_dot = 0.5 * omega_quat * q`.
    pub fn derivative(&self, omega: [f64; 3]) -> Quat {
        let oq = Quat { w: 0.0, x: omega[0], y: omega[1], z: omega[2] };
        let d = oq.mul(self);
        Quat { w: 0.5 * d.w, x: 0.5 * d.x, y: 0.5 * d.y, z: 0.5 * d.z }
    }

    /// 3x3 rotation matrix (rows).
    pub fn to_matrix(&self) -> [[f64; 3]; 3] {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        [
            [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
            [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
            [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
        ]
    }
}

/// A rigid transform: rotate about `pivot`, then translate.
///
/// `p' = pivot + R (p - pivot) + translation`
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RigidTransform {
    pub rotation: Quat,
    pub pivot: [f64; 3],
    pub translation: [f64; 3],
}

impl RigidTransform {
    pub const IDENTITY: RigidTransform =
        RigidTransform { rotation: Quat::IDENTITY, pivot: [0.0; 3], translation: [0.0; 3] };

    pub fn rotation_about(pivot: [f64; 3], axis: [f64; 3], angle: f64) -> Self {
        RigidTransform {
            rotation: Quat::from_axis_angle(axis, angle),
            pivot,
            translation: [0.0; 3],
        }
    }

    pub fn translation(t: [f64; 3]) -> Self {
        RigidTransform { rotation: Quat::IDENTITY, pivot: [0.0; 3], translation: t }
    }

    pub fn apply(&self, p: [f64; 3]) -> [f64; 3] {
        let rel = [p[0] - self.pivot[0], p[1] - self.pivot[1], p[2] - self.pivot[2]];
        let r = self.rotation.rotate(rel);
        [
            self.pivot[0] + r[0] + self.translation[0],
            self.pivot[1] + r[1] + self.translation[1],
            self.pivot[2] + r[2] + self.translation[2],
        ]
    }

    /// Velocity of a material point under this per-step transform applied over
    /// `dt` (small-motion approximation: `(x' - x)/dt`). Used for moving-wall
    /// boundary conditions.
    pub fn point_velocity(&self, p: [f64; 3], dt: f64) -> [f64; 3] {
        let q = self.apply(p);
        [(q[0] - p[0]) / dt, (q[1] - p[1]) / dt, (q[2] - p[2]) / dt]
    }

    pub fn is_identity(&self) -> bool {
        self == &Self::IDENTITY
    }

    /// Flatten to 10 floats (quat w/x/y/z, pivot, translation) for wire
    /// transport. Exact: `from_flat(t.to_flat())` is bit-identical to `t`.
    pub fn to_flat(&self) -> [f64; 10] {
        [
            self.rotation.w,
            self.rotation.x,
            self.rotation.y,
            self.rotation.z,
            self.pivot[0],
            self.pivot[1],
            self.pivot[2],
            self.translation[0],
            self.translation[1],
            self.translation[2],
        ]
    }

    /// Inverse of [`RigidTransform::to_flat`].
    pub fn from_flat(f: [f64; 10]) -> RigidTransform {
        RigidTransform {
            rotation: Quat { w: f[0], x: f[1], y: f[2], z: f[3] },
            pivot: [f[4], f[5], f[6]],
            translation: [f[7], f[8], f[9]],
        }
    }

    /// Largest displacement this transform produces over the corners of
    /// `bb`. Rigid maps are affine, so the maximum over a box is attained
    /// at a corner; this bounds the motion of every point inside.
    pub fn max_corner_displacement(&self, bb: &crate::bbox::Aabb) -> f64 {
        let mut worst: f64 = 0.0;
        for ci in 0..8 {
            let p = [
                if ci & 1 == 0 { bb.min[0] } else { bb.max[0] },
                if ci & 2 == 0 { bb.min[1] } else { bb.max[1] },
                if ci & 4 == 0 { bb.min[2] } else { bb.max[2] },
            ];
            let q = self.apply(p);
            let d2: f64 = (0..3).map(|d| (q[d] - p[d]).powi(2)).sum();
            worst = worst.max(d2.sqrt());
        }
        worst
    }

    /// True when applying this transform to any point of `bb` moves it by
    /// at most a relative epsilon of the box diagonal — i.e. the motion is
    /// indistinguishable from no motion for connectivity purposes. Exact
    /// identities short-circuit without touching the corners.
    pub fn is_negligible_for(&self, bb: &crate::bbox::Aabb) -> bool {
        if self.is_identity() {
            return true;
        }
        let scale = bb.diagonal().max(1.0);
        self.max_corner_displacement(bb) <= 1e-12 * scale
    }

    /// The inverse transform: `self.inverse().apply(self.apply(x)) == x`.
    pub fn inverse(&self) -> RigidTransform {
        let rinv = self.rotation.conjugate();
        let t_inv = rinv.rotate([-self.translation[0], -self.translation[1], -self.translation[2]]);
        RigidTransform { rotation: rinv, pivot: self.pivot, translation: t_inv }
    }

    /// Composition: the transform equivalent to applying `self` first, then
    /// `second` (`result.apply(x) == second.apply(self.apply(x))`).
    pub fn then(&self, second: &RigidTransform) -> RigidTransform {
        let rotation = second.rotation.mul(&self.rotation).normalized();
        // Keep this transform's pivot; pick the translation so the composed
        // affine map agrees at the pivot (equal linear parts + agreement at
        // one point => equal everywhere).
        let image = second.apply(self.apply(self.pivot));
        RigidTransform {
            rotation,
            pivot: self.pivot,
            translation: [
                image[0] - self.pivot[0],
                image[1] - self.pivot[1],
                image[2] - self.pivot[2],
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: [f64; 3], b: [f64; 3], tol: f64) -> bool {
        a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn quat_rotates_90_about_z() {
        let q = Quat::from_axis_angle([0.0, 0.0, 1.0], std::f64::consts::FRAC_PI_2);
        assert!(close(q.rotate([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], 1e-12));
        assert!(close(q.rotate([0.0, 1.0, 0.0]), [-1.0, 0.0, 0.0], 1e-12));
    }

    #[test]
    fn quat_mul_composes_rotations() {
        let a = Quat::from_axis_angle([0.0, 0.0, 1.0], 0.3);
        let b = Quat::from_axis_angle([0.0, 0.0, 1.0], 0.5);
        let c = a.mul(&b);
        let d = Quat::from_axis_angle([0.0, 0.0, 1.0], 0.8);
        assert!((c.w - d.w).abs() < 1e-12 && (c.z - d.z).abs() < 1e-12);
    }

    #[test]
    fn quat_matrix_matches_rotate() {
        let q = Quat::from_axis_angle([1.0, 2.0, 3.0], 0.7);
        let m = q.to_matrix();
        let v = [0.3, -0.8, 0.5];
        let mv = [
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ];
        assert!(close(mv, q.rotate(v), 1e-12));
    }

    #[test]
    fn rigid_transform_about_pivot() {
        let t =
            RigidTransform::rotation_about([1.0, 0.0, 0.0], [0.0, 0.0, 1.0], std::f64::consts::PI);
        // Pivot is fixed; a point at the origin maps to (2, 0, 0).
        assert!(close(t.apply([1.0, 0.0, 0.0]), [1.0, 0.0, 0.0], 1e-12));
        assert!(close(t.apply([0.0, 0.0, 0.0]), [2.0, 0.0, 0.0], 1e-12));
    }

    #[test]
    fn rigid_transform_preserves_distances() {
        let t = RigidTransform {
            rotation: Quat::from_axis_angle([1.0, 1.0, 0.2], 1.1),
            pivot: [0.5, -0.3, 2.0],
            translation: [1.0, 2.0, 3.0],
        };
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 2.0, -1.0];
        let (ta, tb) = (t.apply(a), t.apply(b));
        let d0: f64 = (0..3).map(|i| (a[i] - b[i]).powi(2)).sum::<f64>().sqrt();
        let d1: f64 = (0..3).map(|i| (ta[i] - tb[i]).powi(2)).sum::<f64>().sqrt();
        assert!((d0 - d1).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let t = RigidTransform {
            rotation: Quat::from_axis_angle([0.3, -1.0, 0.2], 0.9),
            pivot: [1.0, -2.0, 0.5],
            translation: [0.4, 0.1, -0.7],
        };
        let inv = t.inverse();
        for p in [[0.0; 3], [2.0, -1.0, 3.0], [-5.0, 0.2, 0.9]] {
            let q = inv.apply(t.apply(p));
            for d in 0..3 {
                assert!((q[d] - p[d]).abs() < 1e-12, "{q:?} vs {p:?}");
            }
        }
    }

    #[test]
    fn then_composes_like_sequential_application() {
        let a = RigidTransform {
            rotation: Quat::from_axis_angle([0.0, 0.0, 1.0], 0.4),
            pivot: [1.0, 2.0, 0.0],
            translation: [0.1, -0.2, 0.3],
        };
        let b = RigidTransform {
            rotation: Quat::from_axis_angle([1.0, 1.0, 0.0], -0.7),
            pivot: [-3.0, 0.5, 2.0],
            translation: [0.0, 1.0, 0.0],
        };
        let c = a.then(&b);
        for p in [[0.0, 0.0, 0.0], [1.0, -2.0, 3.0], [5.5, 0.1, -0.4]] {
            let seq = b.apply(a.apply(p));
            let comp = c.apply(p);
            for d in 0..3 {
                assert!((seq[d] - comp[d]).abs() < 1e-12, "{seq:?} vs {comp:?}");
            }
        }
        // Identity laws.
        let id = RigidTransform::IDENTITY;
        let ia = id.then(&a);
        for p in [[0.3, 0.7, -0.2]] {
            let x = ia.apply(p);
            let y = a.apply(p);
            for d in 0..3 {
                assert!((x[d] - y[d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn negligible_motion_detection() {
        let bb = crate::bbox::Aabb { min: [0.0; 3], max: [1.0, 2.0, 3.0] };
        assert!(RigidTransform::IDENTITY.is_negligible_for(&bb));
        // A zero translation is the identity bit-for-bit.
        assert!(RigidTransform::translation([0.0; 3]).is_negligible_for(&bb));
        // Sub-epsilon translation: negligible but not the exact identity.
        let tiny = RigidTransform::translation([1e-15, 0.0, 0.0]);
        assert!(!tiny.is_identity() && tiny.is_negligible_for(&bb));
        // Real motion is not negligible.
        assert!(!RigidTransform::translation([1e-3, 0.0, 0.0]).is_negligible_for(&bb));
        let rot = RigidTransform::rotation_about([0.5, 1.0, 1.5], [0.0, 0.0, 1.0], 0.01);
        assert!(!rot.is_negligible_for(&bb));
    }

    #[test]
    fn point_velocity_of_pure_translation() {
        let t = RigidTransform::translation([0.2, 0.0, 0.0]);
        let v = t.point_velocity([5.0, 5.0, 5.0], 0.1);
        assert!(close(v, [2.0, 0.0, 0.0], 1e-12));
    }
}
