//! Axis-aligned bounding boxes in physical space.
//!
//! Per-rank bounding boxes are broadcast globally at the start of the solution
//! and consulted by the distributed donor search (Section 2.2 of the paper) to
//! route search requests.

/// Axis-aligned bounding box.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Aabb {
    pub min: [f64; 3],
    pub max: [f64; 3],
}

impl Aabb {
    /// The empty box (identity for [`Aabb::union`]).
    pub const EMPTY: Aabb = Aabb { min: [f64::INFINITY; 3], max: [f64::NEG_INFINITY; 3] };

    pub fn new(min: [f64; 3], max: [f64; 3]) -> Self {
        Self { min, max }
    }

    pub fn from_points<'a>(points: impl IntoIterator<Item = &'a [f64; 3]>) -> Self {
        let mut b = Self::EMPTY;
        for p in points {
            b.include(*p);
        }
        b
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.min[d] > self.max[d])
    }

    #[inline]
    pub fn include(&mut self, p: [f64; 3]) {
        for (d, &pd) in p.iter().enumerate() {
            self.min[d] = self.min[d].min(pd);
            self.max[d] = self.max[d].max(pd);
        }
    }

    #[inline]
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|d| p[d] >= self.min[d] && p[d] <= self.max[d])
    }

    pub fn union(&self, other: &Aabb) -> Aabb {
        let mut b = *self;
        if !other.is_empty() {
            b.include(other.min);
            b.include(other.max);
        }
        b
    }

    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (0..3).all(|d| self.min[d] <= other.max[d] && self.max[d] >= other.min[d])
    }

    /// Grow the box by `pad` on every side (used to admit donors whose cell
    /// extends slightly past the node bounding box).
    pub fn inflate(&self, pad: f64) -> Aabb {
        Aabb {
            min: [self.min[0] - pad, self.min[1] - pad, self.min[2] - pad],
            max: [self.max[0] + pad, self.max[1] + pad, self.max[2] + pad],
        }
    }

    pub fn center(&self) -> [f64; 3] {
        [
            0.5 * (self.min[0] + self.max[0]),
            0.5 * (self.min[1] + self.max[1]),
            0.5 * (self.min[2] + self.max[2]),
        ]
    }

    pub fn extent(&self) -> [f64; 3] {
        [self.max[0] - self.min[0], self.max[1] - self.min[1], self.max[2] - self.min[2]]
    }

    /// Longest diagonal length, a convenient padding scale.
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_behaviour() {
        let b = Aabb::EMPTY;
        assert!(b.is_empty());
        assert!(!b.contains([0.0, 0.0, 0.0]));
        assert!(!b.intersects(&Aabb::new([0.0; 3], [1.0; 3])));
        assert_eq!(b.diagonal(), 0.0);
    }

    #[test]
    fn from_points_and_contains() {
        let pts = [[0.0, 0.0, 0.0], [1.0, 2.0, -1.0], [0.5, -3.0, 4.0]];
        let b = Aabb::from_points(pts.iter());
        assert_eq!(b.min, [0.0, -3.0, -1.0]);
        assert_eq!(b.max, [1.0, 2.0, 4.0]);
        for p in &pts {
            assert!(b.contains(*p));
        }
        assert!(!b.contains([2.0, 0.0, 0.0]));
    }

    #[test]
    fn union_and_intersects() {
        let a = Aabb::new([0.0; 3], [1.0; 3]);
        let b = Aabb::new([2.0; 3], [3.0; 3]);
        assert!(!a.intersects(&b));
        let u = a.union(&b);
        assert!(u.contains([1.5, 1.5, 1.5]));
        assert!(a.intersects(&a));
        let touching = Aabb::new([1.0, 0.0, 0.0], [2.0, 1.0, 1.0]);
        assert!(a.intersects(&touching));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let a = Aabb::new([0.0; 3], [1.0; 3]).inflate(0.5);
        assert_eq!(a.min, [-0.5; 3]);
        assert_eq!(a.max, [1.5; 3]);
        assert_eq!(a.center(), [0.5; 3]);
    }
}
