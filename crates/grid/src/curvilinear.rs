//! Body-fitted curvilinear component grids.
//!
//! A Chimera overset system is a set of these (plus uniform Cartesian
//! background grids) that overlap by one or more cells. Each grid carries its
//! physical boundary-condition patches, physical attributes (viscous terms
//! active, turbulence model) and the solid geometry it wraps (used by the
//! hole cutter in the connectivity crate).

use crate::bbox::Aabb;
use crate::field::Field3;
use crate::index::{Dims, Ijk};
use crate::transform::RigidTransform;

/// Which of the six logical faces of a structured grid a patch lives on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Face {
    IMin,
    IMax,
    JMin,
    JMax,
    KMin,
    KMax,
}

impl Face {
    pub const ALL: [Face; 6] =
        [Face::IMin, Face::IMax, Face::JMin, Face::JMax, Face::KMin, Face::KMax];

    /// Direction normal to the face (0 = i, 1 = j, 2 = k).
    pub fn dir(&self) -> usize {
        match self {
            Face::IMin | Face::IMax => 0,
            Face::JMin | Face::JMax => 1,
            Face::KMin | Face::KMax => 2,
        }
    }

    /// True for the `*Min` faces.
    pub fn is_min(&self) -> bool {
        matches!(self, Face::IMin | Face::JMin | Face::KMin)
    }

    /// Node index along the face normal for a grid of the given dims.
    pub fn layer_index(&self, dims: Dims) -> usize {
        if self.is_min() {
            0
        } else {
            dims.get(self.dir()) - 1
        }
    }
}

/// Physical boundary-condition kinds applied at grid faces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BcKind {
    /// Solid wall; `viscous` selects no-slip (true) or slip/inviscid (false).
    Wall { viscous: bool },
    /// Characteristic freestream far-field.
    Farfield,
    /// Outer boundary of an embedded grid: values come from Chimera
    /// interpolation (these nodes are inter-grid boundary points).
    OversetOuter,
    /// Periodic wrap (O-grids wrap in `i`).
    PeriodicI,
    /// Symmetry plane (zero normal gradient, reflected normal velocity).
    Symmetry,
    /// Axis/degenerate line (averaging closure).
    Axis,
    /// Extrapolation outflow.
    Extrapolate,
}

/// A boundary patch covering a full grid face.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BoundaryPatch {
    pub face: Face,
    pub kind: BcKind,
}

/// Role of a grid within the overset hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GridKind {
    /// Body-fitted grid around (part of) a solid component.
    NearBody,
    /// Topologically simple background grid.
    Background,
}

/// Analytic solid geometry used by the hole cutter. Shapes are described in
/// the grid's *current* (world) coordinates; moving a grid also moves its
/// solids.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Solid {
    /// Ellipsoid with the given center and semi-axes.
    Ellipsoid { center: [f64; 3], radii: [f64; 3] },
    /// Finite cylinder from `p0` to `p1` with the given radius.
    Cylinder { p0: [f64; 3], p1: [f64; 3], radius: f64 },
    /// Axis-aligned-at-creation box, tracked through motion by its transform.
    /// NOTE: rotation degrades this to its enclosing AABB; use
    /// [`Solid::OrientedSlab`] for thin plates on rotating bodies.
    Slab { aabb: Aabb },
    /// Oriented box: center, orthonormal axes and half-extents. Transforms
    /// exactly under rigid motion (the right solid for fins).
    OrientedSlab { center: [f64; 3], axes: [[f64; 3]; 3], half: [f64; 3] },
}

impl Solid {
    /// Does the solid contain the point (with a safety margin `pad` so fringe
    /// points straddling the surface are also excluded from donor stencils)?
    pub fn contains(&self, p: [f64; 3], pad: f64) -> bool {
        match *self {
            Solid::Ellipsoid { center, radii } => {
                let mut s = 0.0;
                for d in 0..3 {
                    let r = radii[d] + pad;
                    if r <= 0.0 {
                        return false;
                    }
                    let t = (p[d] - center[d]) / r;
                    s += t * t;
                }
                s <= 1.0
            }
            Solid::Cylinder { p0, p1, radius } => {
                let axis = [p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]];
                let len2: f64 = axis.iter().map(|a| a * a).sum();
                if len2 == 0.0 {
                    return false;
                }
                let rel = [p[0] - p0[0], p[1] - p0[1], p[2] - p0[2]];
                let t = (rel[0] * axis[0] + rel[1] * axis[1] + rel[2] * axis[2]) / len2;
                let tl = t.clamp(0.0, 1.0);
                // Reject points beyond the (padded) caps.
                let cap_pad = pad / len2.sqrt();
                if t < -cap_pad || t > 1.0 + cap_pad {
                    return false;
                }
                let closest = [p0[0] + tl * axis[0], p0[1] + tl * axis[1], p0[2] + tl * axis[2]];
                let d2: f64 = (0..3).map(|d| (p[d] - closest[d]).powi(2)).sum();
                d2 <= (radius + pad) * (radius + pad)
            }
            Solid::Slab { aabb } => aabb.inflate(pad).contains(p),
            Solid::OrientedSlab { center, axes, half } => {
                let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
                (0..3).all(|i| {
                    let proj = d[0] * axes[i][0] + d[1] * axes[i][1] + d[2] * axes[i][2];
                    proj.abs() <= half[i] + pad
                })
            }
        }
    }

    /// An oriented slab from an axis-aligned box (before any rotation).
    pub fn oriented_slab_from_aabb(aabb: Aabb) -> Solid {
        let c = aabb.center();
        let e = aabb.extent();
        Solid::OrientedSlab {
            center: c,
            axes: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            half: [0.5 * e[0], 0.5 * e[1], 0.5 * e[2]],
        }
    }

    /// Bounding box of the solid (used as a cheap pre-check by the hole
    /// cutter: most grid nodes are rejected without a detailed containment
    /// test).
    pub fn bbox(&self) -> Aabb {
        match *self {
            Solid::Ellipsoid { center, radii } => Aabb::new(
                [center[0] - radii[0], center[1] - radii[1], center[2] - radii[2]],
                [center[0] + radii[0], center[1] + radii[1], center[2] + radii[2]],
            ),
            Solid::Cylinder { p0, p1, radius } => {
                let mut b = Aabb::EMPTY;
                b.include(p0);
                b.include(p1);
                b.inflate(radius)
            }
            Solid::Slab { aabb } => aabb,
            Solid::OrientedSlab { center, axes, half } => {
                let mut ext = [0.0f64; 3];
                for t in 0..3 {
                    ext[t] = (0..3).map(|i| axes[i][t].abs() * half[i]).sum();
                }
                Aabb::new(
                    [center[0] - ext[0], center[1] - ext[1], center[2] - ext[2]],
                    [center[0] + ext[0], center[1] + ext[1], center[2] + ext[2]],
                )
            }
        }
    }

    pub fn transformed(&self, t: &RigidTransform) -> Solid {
        match *self {
            Solid::Ellipsoid { center, radii } => {
                Solid::Ellipsoid { center: t.apply(center), radii }
            }
            Solid::Cylinder { p0, p1, radius } => {
                Solid::Cylinder { p0: t.apply(p0), p1: t.apply(p1), radius }
            }
            Solid::OrientedSlab { center, axes, half } => Solid::OrientedSlab {
                center: t.apply(center),
                axes: [
                    t.rotation.rotate(axes[0]),
                    t.rotation.rotate(axes[1]),
                    t.rotation.rotate(axes[2]),
                ],
                half,
            },
            Solid::Slab { aabb } => {
                // Transform the 8 corners and take the new AABB (conservative
                // under rotation, exact under translation).
                let mut b = Aabb::EMPTY;
                for ci in 0..8 {
                    let c = [
                        if ci & 1 == 0 { aabb.min[0] } else { aabb.max[0] },
                        if ci & 2 == 0 { aabb.min[1] } else { aabb.max[1] },
                        if ci & 4 == 0 { aabb.min[2] } else { aabb.max[2] },
                    ];
                    b.include(t.apply(c));
                }
                Solid::Slab { aabb: b }
            }
        }
    }
}

/// A body-fitted curvilinear component grid (also used, with analytically
/// regular coordinates, for the stationary Cartesian background grids when
/// they participate in the general donor-search machinery).
#[derive(Clone, Debug)]
pub struct CurvilinearGrid {
    /// Human-readable name (e.g. "airfoil-near", "store-fin-2").
    pub name: String,
    /// Node coordinates.
    pub coords: Field3<[f64; 3]>,
    pub kind: GridKind,
    /// Boundary-condition patches, one per face that needs one.
    pub patches: Vec<BoundaryPatch>,
    /// O-grid periodic wrap in the i-direction.
    pub periodic_i: bool,
    /// Viscous terms active on this grid.
    pub viscous: bool,
    /// Baldwin–Lomax algebraic turbulence model active on this grid.
    pub turbulent: bool,
    /// Solid geometry owned by this grid (cuts holes in overlapping grids).
    pub solids: Vec<Solid>,
    /// Relative per-point work weight (the paper notes viscous/turbulent
    /// grids cost more per point; the static balancer may weight by this).
    pub work_weight: f64,
}

impl CurvilinearGrid {
    pub fn new(name: impl Into<String>, coords: Field3<[f64; 3]>, kind: GridKind) -> Self {
        Self {
            name: name.into(),
            coords,
            kind,
            patches: Vec::new(),
            periodic_i: false,
            viscous: false,
            turbulent: false,
            solids: Vec::new(),
            work_weight: 1.0,
        }
    }

    #[inline]
    pub fn dims(&self) -> Dims {
        self.coords.dims()
    }

    #[inline]
    pub fn num_points(&self) -> usize {
        self.dims().count()
    }

    #[inline]
    pub fn xyz(&self, p: Ijk) -> [f64; 3] {
        self.coords[p]
    }

    /// Bounding box of all nodes.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.coords.as_slice().iter())
    }

    /// Apply a rigid transform to every node and to the owned solids.
    pub fn apply_transform(&mut self, t: &RigidTransform) {
        for p in self.coords.as_mut_slice() {
            *p = t.apply(*p);
        }
        for s in &mut self.solids {
            *s = s.transformed(t);
        }
    }

    /// The boundary patch on a face, if any.
    pub fn patch_on(&self, face: Face) -> Option<BcKind> {
        self.patches.iter().find(|p| p.face == face).map(|p| p.kind)
    }

    /// Is the grid 2-D (single k-plane)? The paper's oscillating-airfoil case
    /// runs this way.
    pub fn is_two_d(&self) -> bool {
        self.dims().is_two_d()
    }

    /// Approximate cell edge length at a node: the distance to the next node
    /// in `i` (used to scale donor-search tolerances).
    pub fn local_spacing(&self, p: Ijk) -> f64 {
        let d = self.dims();
        let q = if p.i + 1 < d.ni {
            Ijk::new(p.i + 1, p.j, p.k)
        } else if p.i > 0 {
            Ijk::new(p.i - 1, p.j, p.k)
        } else {
            return 0.0;
        };
        let (a, b) = (self.coords[p], self.coords[q]);
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(n: usize) -> CurvilinearGrid {
        let d = Dims::new(n, n, n);
        let h = 1.0 / (n - 1) as f64;
        let coords = Field3::from_fn(d, |p| [p.i as f64 * h, p.j as f64 * h, p.k as f64 * h]);
        CurvilinearGrid::new("unit", coords, GridKind::Background)
    }

    #[test]
    fn bounding_box_of_unit_cube() {
        let g = unit_grid(5);
        let b = g.bounding_box();
        assert_eq!(b.min, [0.0; 3]);
        assert_eq!(b.max, [1.0; 3]);
    }

    #[test]
    fn transform_moves_grid_and_bbox() {
        let mut g = unit_grid(3);
        g.apply_transform(&RigidTransform::translation([10.0, 0.0, 0.0]));
        let b = g.bounding_box();
        assert!((b.min[0] - 10.0).abs() < 1e-12 && (b.max[0] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn ellipsoid_containment_with_pad() {
        let s = Solid::Ellipsoid { center: [0.0; 3], radii: [1.0, 2.0, 3.0] };
        assert!(s.contains([0.9, 0.0, 0.0], 0.0));
        assert!(!s.contains([1.1, 0.0, 0.0], 0.0));
        assert!(s.contains([1.1, 0.0, 0.0], 0.2));
    }

    #[test]
    fn cylinder_containment() {
        let s = Solid::Cylinder { p0: [0.0; 3], p1: [0.0, 0.0, 4.0], radius: 1.0 };
        assert!(s.contains([0.5, 0.0, 2.0], 0.0));
        assert!(!s.contains([1.5, 0.0, 2.0], 0.0));
        assert!(!s.contains([0.0, 0.0, 5.0], 0.0));
        assert!(s.contains([0.0, 0.0, 4.05], 0.1));
    }

    #[test]
    fn solid_transform_moves_ellipsoid() {
        let s = Solid::Ellipsoid { center: [1.0, 0.0, 0.0], radii: [0.5; 3] };
        let t =
            RigidTransform::rotation_about([0.0; 3], [0.0, 0.0, 1.0], std::f64::consts::FRAC_PI_2);
        match s.transformed(&t) {
            Solid::Ellipsoid { center, .. } => {
                assert!((center[0]).abs() < 1e-12 && (center[1] - 1.0).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn face_layer_indices() {
        let d = Dims::new(5, 6, 7);
        assert_eq!(Face::IMin.layer_index(d), 0);
        assert_eq!(Face::IMax.layer_index(d), 4);
        assert_eq!(Face::KMax.layer_index(d), 6);
        assert_eq!(Face::JMax.dir(), 1);
    }

    #[test]
    fn local_spacing_of_uniform_grid() {
        let g = unit_grid(5);
        let h = g.local_spacing(Ijk::new(0, 0, 0));
        assert!((h - 0.25).abs() < 1e-12);
    }
}
