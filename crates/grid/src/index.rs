//! Index-space primitives: 3-D node indices, grid dimensions and index boxes.
//!
//! Layout convention used throughout the workspace: `i` is the fastest-varying
//! direction, then `j`, then `k` (Fortran order, matching the structured CFD
//! heritage of OVERFLOW). A point `(i, j, k)` in a grid of dimensions
//! `(ni, nj, nk)` maps to the linear offset `i + ni*(j + nj*k)`.

use std::fmt;

/// A node index in a structured grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ijk {
    pub i: usize,
    pub j: usize,
    pub k: usize,
}

impl Ijk {
    #[inline]
    pub const fn new(i: usize, j: usize, k: usize) -> Self {
        Self { i, j, k }
    }

    /// Component along direction `dir` (0 = i, 1 = j, 2 = k).
    #[inline]
    pub fn get(&self, dir: usize) -> usize {
        match dir {
            0 => self.i,
            1 => self.j,
            _ => self.k,
        }
    }

    /// Mutable component along direction `dir`.
    #[inline]
    pub fn set(&mut self, dir: usize, v: usize) {
        match dir {
            0 => self.i = v,
            1 => self.j = v,
            _ => self.k = v,
        }
    }

    /// Offset by a signed displacement, clamping at zero.
    #[inline]
    pub fn offset_clamped(&self, di: isize, dj: isize, dk: isize, dims: Dims) -> Ijk {
        let clamp = |v: usize, d: isize, n: usize| -> usize {
            let w = v as isize + d;
            w.clamp(0, n as isize - 1) as usize
        };
        Ijk::new(clamp(self.i, di, dims.ni), clamp(self.j, dj, dims.nj), clamp(self.k, dk, dims.nk))
    }
}

impl fmt::Debug for Ijk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.i, self.j, self.k)
    }
}

/// Dimensions (node counts) of a structured grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    pub ni: usize,
    pub nj: usize,
    pub nk: usize,
}

impl Dims {
    #[inline]
    pub const fn new(ni: usize, nj: usize, nk: usize) -> Self {
        Self { ni, nj, nk }
    }

    /// Total number of nodes.
    #[inline]
    pub const fn count(&self) -> usize {
        self.ni * self.nj * self.nk
    }

    /// Linear offset of a node (i-fastest layout).
    #[inline]
    pub fn offset(&self, p: Ijk) -> usize {
        debug_assert!(p.i < self.ni && p.j < self.nj && p.k < self.nk, "{p:?} out of {self:?}");
        p.i + self.ni * (p.j + self.nj * p.k)
    }

    /// Inverse of [`Dims::offset`].
    #[inline]
    pub fn unoffset(&self, mut off: usize) -> Ijk {
        let i = off % self.ni;
        off /= self.ni;
        let j = off % self.nj;
        let k = off / self.nj;
        Ijk::new(i, j, k)
    }

    /// Extent along `dir` (0 = i, 1 = j, 2 = k).
    #[inline]
    pub fn get(&self, dir: usize) -> usize {
        match dir {
            0 => self.ni,
            1 => self.nj,
            _ => self.nk,
        }
    }

    #[inline]
    pub fn contains(&self, p: Ijk) -> bool {
        p.i < self.ni && p.j < self.nj && p.k < self.nk
    }

    /// True when the grid is a single k-plane (the 2-D cases of the paper are
    /// run as single-plane grids with the k-direction inactive).
    #[inline]
    pub const fn is_two_d(&self) -> bool {
        self.nk == 1
    }

    /// Iterate all node indices in layout order (i fastest).
    pub fn iter(&self) -> impl Iterator<Item = Ijk> + '_ {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        (0..nk)
            .flat_map(move |k| (0..nj).flat_map(move |j| (0..ni).map(move |i| Ijk::new(i, j, k))))
    }

    /// The full index box `[0, ni) x [0, nj) x [0, nk)`.
    #[inline]
    pub fn full_box(&self) -> IndexBox {
        IndexBox { lo: Ijk::new(0, 0, 0), hi: Ijk::new(self.ni, self.nj, self.nk) }
    }
}

impl fmt::Debug for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.ni, self.nj, self.nk)
    }
}

/// A half-open box of node indices: `lo <= p < hi` componentwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndexBox {
    pub lo: Ijk,
    pub hi: Ijk,
}

impl IndexBox {
    pub fn new(lo: Ijk, hi: Ijk) -> Self {
        debug_assert!(lo.i <= hi.i && lo.j <= hi.j && lo.k <= hi.k);
        Self { lo, hi }
    }

    /// Node counts along each direction.
    #[inline]
    pub fn dims(&self) -> Dims {
        Dims::new(self.hi.i - self.lo.i, self.hi.j - self.lo.j, self.hi.k - self.lo.k)
    }

    /// Number of nodes inside the box.
    #[inline]
    pub fn count(&self) -> usize {
        self.dims().count()
    }

    #[inline]
    pub fn contains(&self, p: Ijk) -> bool {
        p.i >= self.lo.i
            && p.i < self.hi.i
            && p.j >= self.lo.j
            && p.j < self.hi.j
            && p.k >= self.lo.k
            && p.k < self.hi.k
    }

    /// Surface area in "faces between nodes" units: the quantity the static
    /// balancer minimizes to reduce inter-subdomain communication.
    pub fn surface_area(&self) -> usize {
        let d = self.dims();
        if d.count() == 0 {
            return 0;
        }
        2 * (d.ni * d.nj + d.nj * d.nk + d.ni * d.nk)
    }

    /// Split this box along `dir` into `parts` pieces of near-equal node
    /// counts. Earlier pieces get the remainder nodes.
    pub fn split(&self, dir: usize, parts: usize) -> Vec<IndexBox> {
        assert!(parts >= 1);
        let n = self.dims().get(dir);
        assert!(parts <= n, "cannot split extent {n} into {parts} parts");
        let base = n / parts;
        let rem = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = self.lo.get(dir);
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            let mut lo = self.lo;
            let mut hi = self.hi;
            lo.set(dir, start);
            hi.set(dir, start + len);
            out.push(IndexBox::new(lo, hi));
            start += len;
        }
        out
    }

    /// Iterate node indices in this box (i fastest).
    pub fn iter(&self) -> impl Iterator<Item = Ijk> + '_ {
        let (l, h) = (self.lo, self.hi);
        (l.k..h.k).flat_map(move |k| {
            (l.j..h.j).flat_map(move |j| (l.i..h.i).map(move |i| Ijk::new(i, j, k)))
        })
    }

    /// Intersection of two boxes, or `None` when empty.
    pub fn intersect(&self, other: &IndexBox) -> Option<IndexBox> {
        let lo = Ijk::new(
            self.lo.i.max(other.lo.i),
            self.lo.j.max(other.lo.j),
            self.lo.k.max(other.lo.k),
        );
        let hi = Ijk::new(
            self.hi.i.min(other.hi.i),
            self.hi.j.min(other.hi.j),
            self.hi.k.min(other.hi.k),
        );
        if lo.i < hi.i && lo.j < hi.j && lo.k < hi.k {
            Some(IndexBox::new(lo, hi))
        } else {
            None
        }
    }

    /// Grow by `n` nodes in every direction, clamped to `dims`.
    pub fn inflate_clamped(&self, n: usize, dims: Dims) -> IndexBox {
        IndexBox::new(
            Ijk::new(
                self.lo.i.saturating_sub(n),
                self.lo.j.saturating_sub(n),
                self.lo.k.saturating_sub(n),
            ),
            Ijk::new(
                (self.hi.i + n).min(dims.ni),
                (self.hi.j + n).min(dims.nj),
                (self.hi.k + n).min(dims.nk),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_roundtrip() {
        let d = Dims::new(5, 7, 3);
        for p in d.iter() {
            assert_eq!(d.unoffset(d.offset(p)), p);
        }
        assert_eq!(d.count(), 105);
    }

    #[test]
    fn offset_is_i_fastest() {
        let d = Dims::new(4, 3, 2);
        assert_eq!(d.offset(Ijk::new(1, 0, 0)), 1);
        assert_eq!(d.offset(Ijk::new(0, 1, 0)), 4);
        assert_eq!(d.offset(Ijk::new(0, 0, 1)), 12);
    }

    #[test]
    fn box_split_counts_preserved() {
        let b = Dims::new(10, 6, 4).full_box();
        for dir in 0..3 {
            for parts in 1..=b.dims().get(dir) {
                let pieces = b.split(dir, parts);
                assert_eq!(pieces.len(), parts);
                let total: usize = pieces.iter().map(|p| p.count()).sum();
                assert_eq!(total, b.count());
                // Near-equal: extents differ by at most one node.
                let exts: Vec<usize> = pieces.iter().map(|p| p.dims().get(dir)).collect();
                let (mn, mx) = (exts.iter().min().unwrap(), exts.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn box_intersection() {
        let a = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(4, 4, 4));
        let b = IndexBox::new(Ijk::new(2, 2, 2), Ijk::new(6, 6, 6));
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, IndexBox::new(Ijk::new(2, 2, 2), Ijk::new(4, 4, 4)));
        let far = IndexBox::new(Ijk::new(9, 9, 9), Ijk::new(10, 10, 10));
        assert!(a.intersect(&far).is_none());
    }

    #[test]
    fn two_d_detection() {
        assert!(Dims::new(10, 10, 1).is_two_d());
        assert!(!Dims::new(10, 10, 2).is_two_d());
    }

    #[test]
    fn surface_area_prefers_cubes() {
        let cube = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(4, 4, 4));
        let slab = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(16, 2, 2));
        assert_eq!(cube.count(), slab.count());
        assert!(cube.surface_area() < slab.surface_area());
    }

    #[test]
    fn offset_clamped_stays_in_bounds() {
        let d = Dims::new(4, 4, 4);
        let p = Ijk::new(0, 3, 2);
        let q = p.offset_clamped(-2, 5, 0, d);
        assert_eq!(q, Ijk::new(0, 3, 2));
    }
}
