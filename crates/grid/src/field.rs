//! Dense 3-D fields over structured-grid index spaces.

use crate::index::{Dims, Ijk, IndexBox};
use std::ops::{Index, IndexMut};

/// A dense 3-D field of `T` in `i`-fastest layout.
#[derive(Clone, PartialEq, Debug)]
pub struct Field3<T> {
    dims: Dims,
    data: Vec<T>,
}

impl<T: Clone> Field3<T> {
    pub fn new(dims: Dims, fill: T) -> Self {
        Self { dims, data: vec![fill; dims.count()] }
    }

    pub fn from_fn(dims: Dims, mut f: impl FnMut(Ijk) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.count());
        for k in 0..dims.nk {
            for j in 0..dims.nj {
                for i in 0..dims.ni {
                    data.push(f(Ijk::new(i, j, k)));
                }
            }
        }
        Self { dims, data }
    }

    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Extract the sub-field covered by `b` into a new contiguous field.
    pub fn extract(&self, b: IndexBox) -> Field3<T> {
        Field3::from_fn(b.dims(), |p| {
            self[Ijk::new(p.i + b.lo.i, p.j + b.lo.j, p.k + b.lo.k)].clone()
        })
    }
}

impl<T> Field3<T> {
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, p: Ijk) -> Option<&T> {
        if self.dims.contains(p) {
            Some(&self.data[self.dims.offset(p)])
        } else {
            None
        }
    }
}

impl<T> Index<Ijk> for Field3<T> {
    type Output = T;
    #[inline]
    fn index(&self, p: Ijk) -> &T {
        &self.data[self.dims.offset(p)]
    }
}

impl<T> IndexMut<Ijk> for Field3<T> {
    #[inline]
    fn index_mut(&mut self, p: Ijk) -> &mut T {
        let off = self.dims.offset(p);
        &mut self.data[off]
    }
}

/// Number of conserved variables per node (ρ, ρu, ρv, ρw, e).
pub const NVAR: usize = 5;

/// A field of `NVAR` conserved variables per node, stored interleaved
/// (`[q0..q4]` contiguous per node) so a node's state is one cache line.
#[derive(Clone, PartialEq, Debug)]
pub struct StateField {
    dims: Dims,
    data: Vec<f64>,
}

impl StateField {
    pub fn new(dims: Dims) -> Self {
        Self { dims, data: vec![0.0; dims.count() * NVAR] }
    }

    pub fn from_fn(dims: Dims, mut f: impl FnMut(Ijk) -> [f64; NVAR]) -> Self {
        let mut data = Vec::with_capacity(dims.count() * NVAR);
        for k in 0..dims.nk {
            for j in 0..dims.nj {
                for i in 0..dims.ni {
                    data.extend_from_slice(&f(Ijk::new(i, j, k)));
                }
            }
        }
        Self { dims, data }
    }

    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    #[inline]
    pub fn node(&self, p: Ijk) -> &[f64; NVAR] {
        let off = self.dims.offset(p) * NVAR;
        self.data[off..off + NVAR].try_into().unwrap()
    }

    #[inline]
    pub fn node_mut(&mut self, p: Ijk) -> &mut [f64; NVAR] {
        let off = self.dims.offset(p) * NVAR;
        (&mut self.data[off..off + NVAR]).try_into().unwrap()
    }

    #[inline]
    pub fn set_node(&mut self, p: Ijk, q: [f64; NVAR]) {
        let off = self.dims.offset(p) * NVAR;
        self.data[off..off + NVAR].copy_from_slice(&q);
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn fill_uniform(&mut self, q: [f64; NVAR]) {
        for chunk in self.data.chunks_exact_mut(NVAR) {
            chunk.copy_from_slice(&q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_from_fn_and_index() {
        let d = Dims::new(3, 4, 2);
        let f = Field3::from_fn(d, |p| (p.i + 10 * p.j + 100 * p.k) as i32);
        assert_eq!(f[Ijk::new(2, 3, 1)], 132);
        assert_eq!(*f.get(Ijk::new(0, 0, 0)).unwrap(), 0);
        assert!(f.get(Ijk::new(3, 0, 0)).is_none());
    }

    #[test]
    fn field_extract_subbox() {
        let d = Dims::new(5, 5, 5);
        let f = Field3::from_fn(d, |p| p.i + p.j + p.k);
        let b = IndexBox::new(Ijk::new(1, 2, 3), Ijk::new(4, 4, 5));
        let sub = f.extract(b);
        assert_eq!(sub.dims(), Dims::new(3, 2, 2));
        assert_eq!(sub[Ijk::new(0, 0, 0)], 6);
        assert_eq!(sub[Ijk::new(2, 1, 1)], 3 + 3 + 4);
    }

    #[test]
    fn state_field_node_roundtrip() {
        let d = Dims::new(4, 3, 2);
        let mut s = StateField::new(d);
        let q = [1.0, 2.0, 3.0, 4.0, 5.0];
        s.set_node(Ijk::new(3, 2, 1), q);
        assert_eq!(*s.node(Ijk::new(3, 2, 1)), q);
        assert_eq!(*s.node(Ijk::new(0, 0, 0)), [0.0; 5]);
        s.node_mut(Ijk::new(0, 0, 0))[4] = 9.0;
        assert_eq!(s.node(Ijk::new(0, 0, 0))[4], 9.0);
    }

    #[test]
    fn state_field_uniform_fill() {
        let mut s = StateField::new(Dims::new(2, 2, 2));
        let q = [1.0, 0.1, 0.2, 0.3, 2.5];
        s.fill_uniform(q);
        for p in s.dims().iter() {
            assert_eq!(*s.node(p), q);
        }
    }
}
