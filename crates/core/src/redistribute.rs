//! State redistribution after a dynamic repartition (Algorithm 2): when the
//! per-grid processor counts change, every node's state must move from its
//! old owner to its new owner. Both partitions are globally known, so each
//! rank computes exactly which box intersections to send and receive — no
//! negotiation traffic.

use overset_balance::Partition;
use overset_comm::Comm;
use overset_grid::field::NVAR;
use overset_grid::index::IndexBox;
use overset_solver::Block;

const TAG_REDIST: u64 = 300;

/// Move state from `old_block` (this rank's block under `old`) into
/// `new_block` (this rank's freshly built block under `new`). Returns the
/// number of nodes this rank sent over the network.
pub fn redistribute_state(
    old_block: &Block,
    new_block: &mut Block,
    old: &Partition,
    new: &Partition,
    comm: &mut Comm,
) -> usize {
    let me = comm.rank();
    let nranks = comm.size();
    assert_eq!(old.nranks(), nranks);
    assert_eq!(new.nranks(), nranks);

    let my_old = old.ranks[me];
    let my_new = new.ranks[me];

    // Local fast path: overlap between my old and my new box (same grid).
    if my_old.grid == my_new.grid {
        if let Some(overlap) = my_old.boxx.intersect(&my_new.boxx) {
            let data = old_block.pack_box(global_to_local(old_block, overlap));
            new_block.unpack_box(global_to_local(new_block, overlap), &data);
        }
    }

    // Sends: parts of my old box owned by other ranks in the new partition.
    let mut sent_nodes = 0usize;
    for dst in 0..nranks {
        if dst == me {
            continue;
        }
        let their_new = new.ranks[dst];
        if their_new.grid != my_old.grid {
            continue;
        }
        if let Some(overlap) = my_old.boxx.intersect(&their_new.boxx) {
            let data = old_block.pack_box(global_to_local(old_block, overlap));
            let bytes = data.len() * 8;
            sent_nodes += overlap.count();
            comm.send(dst, TAG_REDIST, data, bytes);
        }
    }

    // Receives: parts of my new box owned by other ranks in the old
    // partition, in rank order (deterministic).
    for src in 0..nranks {
        if src == me {
            continue;
        }
        let their_old = old.ranks[src];
        if their_old.grid != my_new.grid {
            continue;
        }
        if let Some(overlap) = their_old.boxx.intersect(&my_new.boxx) {
            let data: Vec<f64> = comm.recv(src, TAG_REDIST);
            assert_eq!(data.len(), overlap.count() * NVAR);
            new_block.unpack_box(global_to_local(new_block, overlap), &data);
        }
    }
    sent_nodes
}

/// Convert a global-index box to the block's local indices.
fn global_to_local(block: &Block, b: IndexBox) -> IndexBox {
    IndexBox::new(block.to_local(b.lo), block.to_local(b.hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_comm::{MachineModel, Universe};
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::transform::RigidTransform;
    use overset_grid::Dims;
    use overset_solver::FlowConditions;

    /// Two grids over 5 ranks, repartitioned from [2, 3] to [3, 2]: every
    /// node's state must survive the move.
    #[test]
    fn repartition_preserves_every_node_state() {
        let d0 = Dims::new(24, 18, 1);
        let d1 = Dims::new(20, 20, 1);
        let mk_grid = |d: Dims, name: &str, off: f64| {
            let coords = Field3::from_fn(d, |p| [off + 0.1 * p.i as f64, 0.1 * p.j as f64, 0.0]);
            CurvilinearGrid::new(name, coords, GridKind::Background)
        };
        let grids = vec![mk_grid(d0, "a", 0.0), mk_grid(d1, "b", 50.0)];
        let dims = [d0, d1];
        let old = Partition::build(&dims, &[2, 3]);
        let new = Partition::build(&dims, &[3, 2]);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);

        let out = Universe::builder().ranks(5).machine(&MachineModel::modern()).run(|comm| {
            let cum = vec![RigidTransform::IDENTITY; 2];
            let (mut ob, _) =
                crate::setup::build_block(comm.rank(), &old, &grids, &cum, &fc).unwrap();
            // Tag every owned node with a unique value derived from its
            // global index and grid.
            let ow = ob.owned_local();
            for p in ow.iter().collect::<Vec<_>>() {
                let g = ob.to_global(p);
                let tag = (ob.grid_id * 1_000_000 + g.i * 1000 + g.j) as f64;
                ob.q.set_node(p, [tag, tag + 0.1, tag + 0.2, tag + 0.3, tag + 0.4]);
            }
            let (mut nb, _) =
                crate::setup::build_block(comm.rank(), &new, &grids, &cum, &fc).unwrap();
            let sent = redistribute_state(&ob, &mut nb, &old, &new, comm);
            // Verify every owned node of the new block.
            let mut errors = 0usize;
            for p in nb.owned_local().iter() {
                let g = nb.to_global(p);
                let tag = (nb.grid_id * 1_000_000 + g.i * 1000 + g.j) as f64;
                if (nb.q.node(p)[0] - tag).abs() > 1e-12 {
                    errors += 1;
                }
            }
            (errors, sent)
        });
        for o in &out {
            assert_eq!(o.result.0, 0, "corrupted nodes after redistribution");
        }
        let total_sent: usize = out.iter().map(|o| o.result.1).sum();
        assert!(total_sent > 0, "no network traffic despite repartition");
    }
}
