//! The OVERFLOW-D1 driver: the three-phase timestep loop (flow solve, grid
//! motion, domain connectivity) with barriers between phases, integrated
//! static/dynamic load balancing, and per-phase performance accounting —
//! everything the paper's tables and figures are computed from.

use crate::comm_impl::MpSolverComm;
use crate::redistribute::redistribute_state;
use crate::setup::{build_block, build_topology};
use overset_balance::{
    dynamic_rebalance, fit_np_to_dims_min, static_balance, Partition, ServiceWindow,
};
use overset_comm::metrics::names;
use overset_comm::trace::{ArgVal, RankTrace, TraceConfig};
use overset_comm::{
    AllocRecord, AllocTotals, Comm, MachineModel, MetricsRegistry, OversetError, PerfSummary,
    Phase, RankStats, StepRecord, TransportConfig, Universe, VecPool, Wire, WireError, WireReader,
    WorkClass, NUM_PHASES,
};
use overset_connectivity::{
    connect_distributed_arena, connect_serial_arena, cut_holes_and_find_fringe,
    cut_holes_and_find_fringe_arena, ConnArena, DonorCache, InverseMap, SerialCache,
    FLOPS_PER_INCR_UPDATE,
};
use overset_grid::curvilinear::{CurvilinearGrid, Solid};
use overset_grid::transform::RigidTransform;
use overset_grid::Dims;
use overset_motion::{BodyMotion, Loads};
use overset_solver::adi::implicit_sweeps;
use overset_solver::bc::apply_bcs;
use overset_solver::rhs::compute_residual;
use overset_solver::turbulence::compute_mu_t;
use overset_solver::{FlowConditions, Scratch, SerialComm, SolverComm};

/// Load-balance configuration: the user-specified factor `f_o` and how often
/// the dynamic scheme checks the measured service loads (Algorithm 2's
/// "check solution after specified number of timesteps").
#[derive(Clone, Copy, Debug)]
pub struct LbConfig {
    pub fo: f64,
    pub check_interval: usize,
}

impl LbConfig {
    /// Static balancing only (`f_o = ∞`), the paper's default.
    pub fn static_only() -> Self {
        LbConfig { fo: f64::INFINITY, check_interval: usize::MAX }
    }

    pub fn dynamic(fo: f64, check_interval: usize) -> Self {
        LbConfig { fo, check_interval }
    }
}

/// A complete moving-body overset case.
#[derive(Clone)]
pub struct CaseConfig {
    pub name: String,
    pub grids: Vec<CurvilinearGrid>,
    /// Hierarchical donor-search lists per grid.
    pub search_order: Vec<Vec<usize>>,
    /// Moving bodies (sets of grids sharing one prescribed or 6-DOF motion).
    pub motions: Vec<BodyMotion>,
    pub fc: FlowConditions,
    pub steps: usize,
    pub lb: LbConfig,
    /// Collect the full final state into [`RunResult::states`] (debugging /
    /// validation; off by default).
    pub collect_state: bool,
    /// Use the nth-level-restart donor cache (Barszcz). Disabling forces a
    /// from-scratch donor search every step (the A1 ablation).
    pub use_restart: bool,
    /// Use the DCF3D-style inverse-map acceleration structures: O(1) walk
    /// seeds for cold donor searches, occupancy-pruned candidate routing,
    /// and masked hole cutting. Connectivity results are identical either
    /// way; disabling (the ablation) only changes where the virtual time
    /// goes. Maps are rebuilt per motion event, only for grids that moved.
    pub use_inverse_map: bool,
    /// Keep one [`ConnArena`] per rank for the whole run so steady-state
    /// connectivity steps reuse buffer capacity instead of reallocating.
    /// Disabling (the ablation) resets the arena every step — the *same*
    /// code path runs, so states, walk outcomes and virtual times are
    /// bit-identical; only host-side allocation counts differ.
    pub use_arena: bool,
    /// Advance an existing inverse map under a small rigid motion (pose
    /// composition) instead of rebuilding it from scratch. Falls back to a
    /// full rebuild when the accumulated pose would inflate the map's
    /// world-space routing box past its threshold. Connectivity results are
    /// bit-identical either way; virtual time honestly reflects the cheaper
    /// incremental update (and the costlier posed queries).
    pub use_incremental_invmap: bool,
    /// Event tracing (virtual-time spans collected into
    /// [`RunResult::trace`]). Disabled by default; zero-cost when off.
    pub trace: TraceConfig,
    /// Bound on the OS threads executing the ranks. `None` (default): one
    /// thread per rank. `Some(n)`: the runtime multiplexes the ranks onto
    /// `n` worker threads (M:N mode) whenever `n` is below the rank count —
    /// required for rank counts far beyond the host's cores. Virtual times
    /// are bit-identical either way.
    pub max_threads: Option<usize>,
    /// Communication backend for the parallel run: in-process mailboxes
    /// (default) or rank-group OS processes over Unix sockets. Virtual
    /// times are bit-identical either way; the serial driver always runs
    /// in-process.
    pub transport: TransportConfig,
    /// Test hook for the allocation gate: when nonzero, every rank makes
    /// one synthetic heap allocation of this many bytes per timestep inside
    /// the connectivity phase. Physics- and virtual-time-neutral; it exists
    /// so `repro compare` can be proven to fail on an injected host-cost
    /// regression (`--inject-alloc`).
    pub inject_alloc: usize,
    /// Run the lane-batched compute kernels on the host's SIMD units
    /// (AVX2) when available. Disabling (the `--no-simd` ablation) runs the
    /// *same* batched code through the portable scalar lanes — states, walk
    /// outcomes, and virtual times are bit-identical; only host wall-clock
    /// changes. On hosts without AVX2 this flag is inert (the scalar lanes
    /// are the only path).
    pub use_simd: bool,
}

impl CaseConfig {
    pub fn total_points(&self) -> usize {
        self.grids.iter().map(|g| g.num_points()).sum()
    }

    /// Start building a case from its required geometry and flow inputs;
    /// every runtime toggle (restart cache, inverse map, tracing, thread
    /// bound, transport backend, load balancing) has a default and a
    /// setter — the single place CLI flags map onto configuration.
    pub fn builder(
        name: impl Into<String>,
        grids: Vec<CurvilinearGrid>,
        search_order: Vec<Vec<usize>>,
        fc: FlowConditions,
    ) -> CaseConfigBuilder {
        CaseConfigBuilder {
            cfg: CaseConfig {
                name: name.into(),
                grids,
                search_order,
                motions: Vec::new(),
                fc,
                steps: 1,
                lb: LbConfig::static_only(),
                collect_state: false,
                use_restart: true,
                use_inverse_map: true,
                use_arena: true,
                use_incremental_invmap: true,
                trace: TraceConfig::disabled(),
                max_threads: None,
                transport: TransportConfig::InProcess,
                inject_alloc: 0,
                use_simd: true,
            },
        }
    }
}

/// Builder for [`CaseConfig`]: geometry comes in through
/// [`CaseConfig::builder`], toggles through the setters below.
#[derive(Clone)]
pub struct CaseConfigBuilder {
    cfg: CaseConfig,
}

impl CaseConfigBuilder {
    pub fn motions(mut self, motions: Vec<BodyMotion>) -> Self {
        self.cfg.motions = motions;
        self
    }

    pub fn steps(mut self, steps: usize) -> Self {
        self.cfg.steps = steps;
        self
    }

    pub fn lb(mut self, lb: LbConfig) -> Self {
        self.cfg.lb = lb;
        self
    }

    pub fn collect_state(mut self, on: bool) -> Self {
        self.cfg.collect_state = on;
        self
    }

    pub fn use_restart(mut self, on: bool) -> Self {
        self.cfg.use_restart = on;
        self
    }

    pub fn use_inverse_map(mut self, on: bool) -> Self {
        self.cfg.use_inverse_map = on;
        self
    }

    pub fn use_arena(mut self, on: bool) -> Self {
        self.cfg.use_arena = on;
        self
    }

    pub fn use_incremental_invmap(mut self, on: bool) -> Self {
        self.cfg.use_incremental_invmap = on;
        self
    }

    pub fn use_simd(mut self, on: bool) -> Self {
        self.cfg.use_simd = on;
        self
    }

    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = trace;
        self
    }

    pub fn max_threads(mut self, n: Option<usize>) -> Self {
        self.cfg.max_threads = n;
        self
    }

    pub fn transport(mut self, t: TransportConfig) -> Self {
        self.cfg.transport = t;
        self
    }

    pub fn inject_alloc(mut self, bytes: usize) -> Self {
        self.cfg.inject_alloc = bytes;
        self
    }

    pub fn build(self) -> CaseConfig {
        self.cfg
    }
}

/// Aggregated outcome of a run: the raw material for every table row.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub nranks: usize,
    /// RMS of the conserved state over all field nodes at the end of the
    /// run — a physics checksum used by the N-rank ≡ serial equivalence
    /// tests.
    pub state_rms: f64,
    pub steps: usize,
    pub total_points: usize,
    pub summary: PerfSummary,
    /// Elapsed (virtual) time per phase, summed over steps; phases are
    /// barrier-separated so this is exact, not an average.
    pub phase_elapsed: [f64; NUM_PHASES],
    pub wall_time: f64,
    /// IGBPs owned per rank at the last step.
    pub igbps_last: usize,
    /// Search-request points serviced per rank at the last step: I(p).
    pub serviced_last: Vec<usize>,
    pub orphans_last: usize,
    pub repartitions: usize,
    pub np_final: Vec<usize>,
    pub rank_stats: Vec<RankStats>,
    /// Per-rank virtual-time spans (empty unless [`CaseConfig::trace`] was
    /// enabled). Feed to [`overset_comm::chrome_trace_json`].
    pub trace: Vec<RankTrace>,
    /// Metrics aggregated over every rank's registry (counters summed,
    /// histograms merged).
    pub metrics: MetricsRegistry,
    /// Flight-recorder telemetry: one `Vec<StepRecord>` per rank (rank
    /// order), one record per timestep. Always collected — the recorder is
    /// as cheap as the metrics registry and physics-neutral.
    pub step_records: Vec<Vec<StepRecord>>,
    /// Step records evicted by the ring bound, summed over ranks (0 unless
    /// a run exceeded the recorder capacity).
    pub steps_dropped: u64,
    /// Host wall-clock seconds per phase, taken as the max over ranks (the
    /// slowest rank bounds real elapsed time). Nondeterministic — reported
    /// in the advisory `host` section of run reports, never bit-compared.
    pub host_phase_elapsed: [f64; NUM_PHASES],
    /// Host wall-clock seconds per phase for *every* rank (rank order) —
    /// the per-rank series behind [`RunResult::host_phase_elapsed`]'s max.
    /// Nondeterministic, advisory only.
    pub host_phase_by_rank: Vec<[f64; NUM_PHASES]>,
    /// End-of-run heap-allocation attribution per rank (rank order):
    /// per-phase counts and bytes from the counting global allocator.
    /// Counts and bytes are deterministic for a fixed configuration
    /// (`peak_bytes` is allocation-order-dependent and advisory).
    pub alloc_by_rank: Vec<AllocTotals>,
    /// Per-step allocation deltas per rank (rank order), in lockstep with
    /// [`RunResult::step_records`]. Deterministic like `alloc_by_rank`.
    pub alloc_records: Vec<Vec<AllocRecord>>,
    /// Final state per (grid, node) when `collect_state` was set.
    pub states: Vec<(usize, overset_grid::Ijk, [f64; 5])>,
}

impl RunResult {
    /// The paper's "% time in DCF3D" (connectivity elapsed over total).
    pub fn connectivity_fraction(&self) -> f64 {
        let total: f64 = self.phase_elapsed.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.phase_elapsed[Phase::Connectivity as usize] / total
        }
    }

    /// Average Mflops per node.
    pub fn mflops_per_node(&self) -> f64 {
        self.summary.mflops_per_node()
    }

    /// Time per timestep (virtual seconds).
    pub fn time_per_step(&self) -> f64 {
        self.wall_time / self.steps as f64
    }

    /// Measured donor-search service imbalance f(p) = I(p)/mean.
    pub fn f_max(&self) -> f64 {
        overset_balance::service_imbalance(&self.serviced_last)
    }
}

/// Per-rank return value collected by `run_case`.
struct RankReturn {
    phase_elapsed: [f64; NUM_PHASES],
    state_sum_sq: f64,
    state_count: usize,
    states: Vec<(usize, overset_grid::Ijk, [f64; 5])>,
    igbps_last: usize,
    serviced_last: usize,
    orphans_last: usize,
    repartitions: usize,
    np_final: Vec<usize>,
}

// On a process transport each rank's return value crosses a socket; `Ijk`
// is foreign to the comm crate, so the states are encoded inline as three
// indices per cell. Field order is the wire schema.
impl Wire for RankReturn {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase_elapsed.encode(out);
        self.state_sum_sq.encode(out);
        self.state_count.encode(out);
        (self.states.len() as u64).encode(out);
        for (grid, cell, q) in &self.states {
            grid.encode(out);
            cell.i.encode(out);
            cell.j.encode(out);
            cell.k.encode(out);
            q.encode(out);
        }
        self.igbps_last.encode(out);
        self.serviced_last.encode(out);
        self.orphans_last.encode(out);
        self.repartitions.encode(out);
        self.np_final.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let phase_elapsed = <[f64; NUM_PHASES]>::decode(r)?;
        let state_sum_sq = f64::decode(r)?;
        let state_count = usize::decode(r)?;
        let n = r.len_prefix()?;
        let mut states = Vec::with_capacity(n.min(r.remaining().max(16)));
        for _ in 0..n {
            let grid = usize::decode(r)?;
            let cell =
                overset_grid::Ijk::new(usize::decode(r)?, usize::decode(r)?, usize::decode(r)?);
            states.push((grid, cell, <[f64; 5]>::decode(r)?));
        }
        Ok(RankReturn {
            phase_elapsed,
            state_sum_sq,
            state_count,
            states,
            igbps_last: usize::decode(r)?,
            serviced_last: usize::decode(r)?,
            orphans_last: usize::decode(r)?,
            repartitions: usize::decode(r)?,
            np_final: Vec::<usize>::decode(r)?,
        })
    }
}

/// Minimum subdomain widths per grid for partition-count repair: a periodic
/// O-grid needs every `i`-piece to keep at least 2 nodes, because the seam
/// piece drops the duplicated wrap node from its cyclic solve.
fn grid_min_widths(grids: &[CurvilinearGrid]) -> Vec<[usize; 3]> {
    grids.iter().map(|g| if g.periodic_i { [2, 1, 1] } else { [1, 1, 1] }).collect()
}

/// Run a case on `nranks` ranks of `machine`. Deterministic in virtual time.
///
/// Configuration errors (an infeasible partition, a malformed search
/// hierarchy) are reported before any rank thread spawns. A panic inside a
/// rank body (an internal invariant violation, not bad input) surfaces as
/// [`OversetError::RankPanicked`] naming the rank and phase, with every
/// peer unblocked — never a hang or an opaque scope abort.
pub fn run_case(
    cfg: &CaseConfig,
    nranks: usize,
    machine: &MachineModel,
) -> Result<RunResult, OversetError> {
    let sizes: Vec<usize> = cfg.grids.iter().map(|g| g.num_points()).collect();
    let dims: Vec<Dims> = cfg.grids.iter().map(|g| g.dims()).collect();
    let initial = static_balance(&sizes, nranks)?;
    // At large NP Algorithm 1 can hand a grid a subdomain count the
    // prime-factor splitter cannot realize (e.g. a prime larger than every
    // index dimension) or slice a periodic O-grid so thin its seam
    // subdomain holds only the duplicated wrap node; repair the counts
    // before partitioning.
    let min_widths = grid_min_widths(&cfg.grids);
    let np = fit_np_to_dims_min(&sizes, &dims, &initial.np, &min_widths)?;
    let base_partition = Partition::build(&dims, &np);
    // Validate the search hierarchy once up front; per-rank rebuilds after a
    // repartition reuse the same (already validated) hierarchy.
    build_topology(&base_partition, &cfg.search_order)?;

    let mut builder = Universe::builder()
        .ranks(nranks)
        .machine(machine)
        .trace(cfg.trace.clone())
        .transport(cfg.transport.clone());
    if let Some(n) = cfg.max_threads {
        builder = builder.max_threads(n);
    }
    let outputs =
        builder.try_run(|comm| run_rank(cfg, &sizes, &dims, base_partition.clone(), comm))?;

    let rank_stats: Vec<RankStats> = outputs.iter().map(|o| o.stats.clone()).collect();
    let summary = PerfSummary::from_ranks(&rank_stats);
    let mut metrics = MetricsRegistry::new();
    for o in &outputs {
        metrics.merge_from(&o.metrics);
    }
    let trace: Vec<RankTrace> = if cfg.trace.enabled {
        outputs
            .iter()
            .enumerate()
            .map(|(rank, o)| RankTrace { rank, events: o.trace.clone() })
            .collect()
    } else {
        Vec::new()
    };
    let sum_sq: f64 = outputs.iter().map(|o| o.result.state_sum_sq).sum();
    let count: usize = outputs.iter().map(|o| o.result.state_count).sum();
    let r0 = &outputs[0].result;
    let mut states = Vec::new();
    if cfg.collect_state {
        for o in &outputs {
            states.extend_from_slice(&o.result.states);
        }
    }
    let step_records: Vec<Vec<StepRecord>> = outputs.iter().map(|o| o.steps.clone()).collect();
    let steps_dropped: u64 = outputs.iter().map(|o| o.steps_dropped).sum();
    let host_phase_elapsed = host_phase_max(outputs.iter().map(|o| &o.host_time));
    let host_phase_by_rank: Vec<[f64; NUM_PHASES]> = outputs.iter().map(|o| o.host_time).collect();
    let alloc_by_rank: Vec<AllocTotals> = outputs.iter().map(|o| o.alloc).collect();
    let alloc_records: Vec<Vec<AllocRecord>> =
        outputs.iter().map(|o| o.alloc_steps.clone()).collect();
    Ok(RunResult {
        nranks,
        states,
        state_rms: (sum_sq / count.max(1) as f64).sqrt(),
        steps: cfg.steps,
        total_points: cfg.total_points(),
        phase_elapsed: r0.phase_elapsed,
        wall_time: summary.wall_time,
        igbps_last: outputs.iter().map(|o| o.result.igbps_last).sum(),
        serviced_last: outputs.iter().map(|o| o.result.serviced_last).collect(),
        orphans_last: outputs.iter().map(|o| o.result.orphans_last).sum(),
        repartitions: r0.repartitions,
        np_final: r0.np_final.clone(),
        rank_stats,
        trace,
        metrics,
        step_records,
        steps_dropped,
        host_phase_elapsed,
        host_phase_by_rank,
        alloc_by_rank,
        alloc_records,
        summary,
    })
}

/// Per-phase host wall-clock elapsed: max over ranks, since the slowest
/// rank bounds real time the way the barrier does in virtual time.
fn host_phase_max<'a>(ranks: impl Iterator<Item = &'a [f64; NUM_PHASES]>) -> [f64; NUM_PHASES] {
    let mut out = [0.0f64; NUM_PHASES];
    for h in ranks {
        for (o, &x) in out.iter_mut().zip(h.iter()) {
            *o = o.max(x);
        }
    }
    out
}

/// One rank's SPMD body.
fn run_rank(
    cfg: &CaseConfig,
    sizes: &[usize],
    dims: &[Dims],
    mut partition: Partition,
    comm: &mut Comm,
) -> RankReturn {
    let me = comm.rank();
    let fc = cfg.fc;
    let ngrids = cfg.grids.len();

    // Replicated motion state: every rank steps every motion so cumulative
    // transforms and solid positions stay in sync without communication.
    // 6-DOF bodies additionally need the aerodynamic loads, which are
    // integrated locally over each rank's wall patches and allreduce-summed
    // (deterministic rank-ordered sum), so the replicated rigid-body states
    // remain bitwise identical on every rank.
    let mut motions: Vec<BodyMotion> = cfg.motions.clone();
    let mut cumulative: Vec<RigidTransform> = vec![RigidTransform::IDENTITY; ngrids];
    let mut solids: Vec<(usize, Solid)> = cfg
        .grids
        .iter()
        .enumerate()
        .flat_map(|(g, grid)| grid.solids.iter().map(move |s| (g, *s)))
        .collect();

    // Inputs were validated by `run_case` before the threads spawned: a
    // failure here is an internal invariant violation, not bad input.
    let (mut block, mut wall) = build_block(me, &partition, &cfg.grids, &cumulative, &fc)
        .unwrap_or_else(|e| panic!("rank {me}: {e}"));
    let mut scratch = Scratch::for_block(&block);
    scratch.sweep.isa = overset_solver::select_isa(cfg.use_simd);
    let mut topo =
        build_topology(&partition, &cfg.search_order).unwrap_or_else(|e| panic!("rank {me}: {e}"));
    let mut cache = DonorCache::new();
    // Inverse-map lifecycle: build lazily in the connectivity phase, reuse
    // across steps, and mark dirty whenever this rank's grid moves or the
    // block is rebuilt by a repartition.
    let mut inv: Option<InverseMap> = None;
    let mut inv_dirty = true;
    // Rigid motion applied to this rank's grid since the inverse map was
    // last brought up to date — the candidate for an incremental `advance`.
    let mut pending_motion: Option<RigidTransform> = None;
    // Step-scoped connectivity scratch. With `use_arena` the buffers keep
    // their capacity across steps; the ablation replaces the arena each
    // step (same code path, cold buffers), so only allocation counts
    // change — never results or virtual times.
    let mut arena = ConnArena::new();
    arena.isa = overset_solver::select_isa(cfg.use_simd);
    // Recycled halo-exchange buffers, same lifecycle as the arena.
    let mut halo_pool: VecPool<f64> = VecPool::new();

    let mut last_step_transform: Vec<Option<RigidTransform>> = vec![None; ngrids];
    let mut phase_elapsed = [0.0f64; NUM_PHASES];
    // I(p) over the current balance window, read from the metrics registry
    // (the single source of truth for service load).
    let mut svc = ServiceWindow::begin(comm.metrics());
    let mut repartitions = 0usize;
    let mut last_conn = Default::default();
    let mut igbps_last = 0usize;

    comm.set_working_set(block.working_set_bytes());
    comm.barrier();

    for step in 0..cfg.steps {
        // ---- Phase 1: flow solve -------------------------------------
        {
            let mut ph = comm.phase(Phase::Flow);
            let t0 = ph.now();
            {
                let mut mp = MpSolverComm { comm: &mut ph, halo_pool: &mut halo_pool };
                mp.exchange_halo(&mut block);
                if block.turbulent && block.viscous {
                    if let Some(w) = &wall {
                        let flops = compute_mu_t(&mut block, w);
                        mp.comm.compute(flops as f64, WorkClass::Flow);
                    }
                }
                let flops = compute_residual(&block, &fc, &mut scratch.res);
                mp.comm.compute(flops as f64, WorkClass::Flow);
                for v in scratch.res.as_mut_slice() {
                    *v *= fc.dt;
                }
                implicit_sweeps(&block, &fc, &mut scratch.res, &mut mp, &mut scratch.sweep);
                // Update field nodes.
                let ow = block.owned_local();
                let mut update_flops = 0u64;
                for p in ow.iter().collect::<Vec<_>>() {
                    if block.iblank[p] != overset_solver::Blank::Field {
                        continue;
                    }
                    update_flops += 5;
                    let dq = *scratch.res.node(p);
                    let q = block.q.node_mut(p);
                    for v in 0..5 {
                        q[v] += dq[v];
                    }
                    overset_solver::conditions::enforce_positivity(q);
                }
                mp.comm.compute(update_flops as f64, WorkClass::Flow);
                let bc_flops = apply_bcs(&mut block, &fc);
                mp.comm.compute(bc_flops as f64, WorkClass::Flow);
            }
            ph.barrier();
            phase_elapsed[Phase::Flow as usize] += ph.now() - t0;
        }

        // ---- Phase 2: grid motion ------------------------------------
        {
            let mut ph = comm.phase(Phase::Motion);
            let t0 = ph.now();
            for body in motions.iter_mut() {
                // 6-DOF bodies: integrate aerodynamic loads over this rank's
                // wall patches of the body's grids, then allreduce. Every rank
                // participates in the collective (zero contribution if it owns
                // no wall of this body).
                let aero = if body.needs_aero() {
                    let mut local = Loads::ZERO;
                    if body.grids.contains(&block.grid_id) {
                        let refp = body.moment_reference();
                        let mut flops = 0u64;
                        for face in 0..6 {
                            if let Some((nu, nv, coords, press)) =
                                overset_solver::bc::wall_surface(&block, face)
                            {
                                // Gauge pressure: open per-grid patches must not
                                // feel the uniform freestream.
                                let p_inf = overset_solver::conditions::pressure(&fc.freestream());
                                let gauge: Vec<f64> = press.iter().map(|p| p - p_inf).collect();
                                let l = overset_motion::integrate_surface_loads(
                                    nu, nv, &coords, &gauge, refp, 1.0,
                                );
                                local = local.add(&l);
                                flops += (nu * nv) as u64 * 30;
                            }
                        }
                        ph.compute(flops as f64, WorkClass::Other);
                    }
                    let flat = [
                        local.force[0],
                        local.force[1],
                        local.force[2],
                        local.moment[0],
                        local.moment[1],
                        local.moment[2],
                    ];
                    let all: Vec<[f64; 6]> = ph.allgather(flat, 48);
                    let mut sum = [0.0f64; 6];
                    for a in &all {
                        for i in 0..6 {
                            sum[i] += a[i];
                        }
                    }
                    Loads { force: [sum[0], sum[1], sum[2]], moment: [sum[3], sum[4], sum[5]] }
                } else {
                    Loads::ZERO
                };
                let t = body.motion.step(fc.dt, &aero);
                for &g in &body.grids {
                    cumulative[g] = cumulative[g].then(&t);
                    for (sg, s) in solids.iter_mut() {
                        if *sg == g {
                            *s = s.transformed(&t);
                        }
                    }
                    last_step_transform[g] = Some(t);
                }
                if body.grids.contains(&block.grid_id) {
                    block.apply_motion(&t, fc.dt);
                    // Identity / below-epsilon motion must not mark the grid
                    // "moved": a pointless full inverse-map rebuild would
                    // follow. `apply_motion` still ran above — it refreshes
                    // the (zero) grid velocity — only the dirty-marking is
                    // skipped. Scale comes from the map's lattice box; with
                    // no map yet, only an exact identity is skippable.
                    let negligible = match &inv {
                        Some(m) => t.is_negligible_for(&m.bounds()),
                        None => t.is_identity(),
                    };
                    if !negligible {
                        inv_dirty = true;
                        pending_motion = Some(match &pending_motion {
                            Some(prev) => prev.then(&t),
                            None => t,
                        });
                    }
                    if let Some(w) = &mut wall {
                        for p in &mut w.wall_xyz {
                            *p = t.apply(*p);
                        }
                    }
                    // Re-apply wall BCs with the *new* grid velocity: the wall
                    // state must move with the wall, otherwise the stale no-slip
                    // velocity acts as an impulsive slip over the tiny wall
                    // cells.
                    let bc_flops = apply_bcs(&mut block, &fc);
                    ph.compute(bc_flops as f64, WorkClass::Other);
                }
                ph.compute(500.0, WorkClass::Other);
            }
            ph.barrier();
            phase_elapsed[Phase::Motion as usize] += ph.now() - t0;
        }

        // ---- Phase 3: domain connectivity ----------------------------
        {
            let mut ph = comm.phase(Phase::Connectivity);
            let t0 = ph.now();
            if !cfg.use_arena {
                // Ablation: cold buffers every step, identical code path.
                arena = ConnArena::new();
                arena.isa = overset_solver::select_isa(cfg.use_simd);
                halo_pool = VecPool::new();
            }
            {
                let mut mp = MpSolverComm { comm: &mut ph, halo_pool: &mut halo_pool };
                mp.exchange_halo(&mut block);
            }
            if cfg.use_inverse_map {
                if inv_dirty {
                    // Prefer the incremental path: compose the step's rigid
                    // motion into the existing map's pose instead of
                    // rebuilding the lattice. `advance` refuses (and leaves
                    // the map untouched) when the accumulated pose would
                    // inflate the world routing box past its threshold.
                    let advanced = cfg.use_incremental_invmap
                        && match (inv.as_mut(), pending_motion.as_ref()) {
                            (Some(m), Some(t)) => m.advance(t),
                            _ => false,
                        };
                    if advanced {
                        ph.compute(FLOPS_PER_INCR_UPDATE as f64, WorkClass::Search);
                        ph.metrics_mut().inc(names::CONN_INVMAP_INCR);
                    } else {
                        let m = InverseMap::build(&block);
                        ph.compute(m.build_flops() as f64, WorkClass::Search);
                        ph.metrics_mut().inc(names::CONN_INVMAP_BUILDS);
                        inv = Some(m);
                    }
                    inv_dirty = false;
                    pending_motion = None;
                }
            } else {
                inv = None;
            }
            let (igbps, hole_flops) =
                cut_holes_and_find_fringe_arena(&mut block, &solids, inv.as_ref(), &mut arena);
            ph.compute(hole_flops as f64, WorkClass::Search);
            if !cfg.use_restart {
                cache.clear();
            }
            let stats = connect_distributed_arena(
                &mut block,
                &igbps,
                &topo,
                &mut cache,
                &mut ph,
                inv.as_ref(),
                &mut arena,
            );
            last_conn = stats;
            igbps_last = igbps.len();
            arena.recycle_igbps(igbps);
            svc.note_step();
            if cfg.inject_alloc > 0 {
                // Synthetic host-cost regression for gate tests: one extra
                // heap allocation per step, attributed to this phase.
                std::hint::black_box(vec![0u8; cfg.inject_alloc]);
            }
            ph.barrier();
            phase_elapsed[Phase::Connectivity as usize] += ph.now() - t0;
        }

        // ---- Phase 4: dynamic load balance check (Algorithm 2) -------
        let check = cfg.lb.fo.is_finite()
            && cfg.lb.check_interval != usize::MAX
            && (step + 1) % cfg.lb.check_interval == 0
            && step + 1 < cfg.steps;
        if check {
            let mut ph = comm.phase(Phase::Balance);
            let t0 = ph.now();
            let mean_i = svc.mean_per_step(ph.metrics());
            let all_i: Vec<usize> = ph.allgather(mean_i, 8);
            let decision = dynamic_rebalance(
                &all_i,
                &partition.grid_of_rank_vec(),
                sizes,
                &partition.np,
                cfg.lb.fo,
            )
            .unwrap_or_else(|e| panic!("rank {me}: dynamic rebalance failed: {e}"));
            ph.metrics_mut().observe(names::LB_F_RATIO, decision.f[me]);
            if let Some(rb) = decision.rebalance {
                // Deterministic repair: every rank computes the same counts.
                let np = fit_np_to_dims_min(sizes, dims, &rb.np, &grid_min_widths(&cfg.grids))
                    .unwrap_or_else(|e| panic!("rank {me}: rebalance infeasible: {e}"));
                let new_partition = Partition::build(dims, &np);
                let (mut new_block, new_wall) =
                    build_block(me, &new_partition, &cfg.grids, &cumulative, &fc)
                        .unwrap_or_else(|e| panic!("rank {me}: {e}"));
                redistribute_state(&block, &mut new_block, &partition, &new_partition, &mut ph);
                block = new_block;
                wall = new_wall;
                scratch = Scratch::for_block(&block);
                scratch.sweep.isa = overset_solver::select_isa(cfg.use_simd);
                partition = new_partition;
                topo = build_topology(&partition, &cfg.search_order)
                    .unwrap_or_else(|e| panic!("rank {me}: {e}"));
                // Donor cells survive a repartition; only their owning
                // ranks changed. Remap instead of cold-restarting the
                // whole connectivity solution.
                let part_ref = &partition;
                let gd: Vec<overset_grid::Dims> = dims.to_vec();
                cache.remap_ranks(move |grid, cell| {
                    let d = gd[grid];
                    let clamped = overset_grid::Ijk::new(
                        cell.i.min(d.ni - 1),
                        cell.j.min(d.nj - 1),
                        cell.k.min(d.nk - 1),
                    );
                    part_ref.owner_of(grid, clamped)
                });
                ph.set_working_set(block.working_set_bytes());
                // The rebuilt block covers a different region: the inverse
                // map is stale until the next connectivity phase, and any
                // pending rigid motion refers to the old map's lattice.
                inv = None;
                inv_dirty = true;
                pending_motion = None;
                // Restore blanking on the new block immediately: the next
                // flow step must not treat redistributed hole values as
                // live field points.
                let (_, hole_flops) = cut_holes_and_find_fringe(&mut block, &solids);
                ph.compute(hole_flops as f64, WorkClass::Search);
                // Restore the ALE grid velocities of a moving grid (the
                // rebuilt block is at the current pose with zero velocity).
                if let Some(t) = &last_step_transform[block.grid_id] {
                    block.set_grid_velocity_from(t, fc.dt);
                }
                repartitions += 1;
                ph.metrics_mut().inc(names::LB_REPARTITIONS);
                ph.trace_complete(
                    "lb",
                    "repartition",
                    t0,
                    &[("f_max", ArgVal::F64(decision.f_max))],
                );
            }
            svc.reset(ph.metrics());
            ph.barrier();
            phase_elapsed[Phase::Balance as usize] += ph.now() - t0;
        }

        // Close the step for the flight recorder (reads counters only —
        // physics- and timing-neutral).
        comm.end_step();
    }

    // Physics checksum over owned field nodes.
    let _ph = comm.phase(Phase::Other);
    let mut state_sum_sq = 0.0f64;
    let mut state_count = 0usize;
    let mut states = Vec::new();
    for p in block.owned_local().iter() {
        if block.iblank[p] != overset_solver::Blank::Field {
            continue;
        }
        let q = block.q.node(p);
        state_sum_sq += q.iter().map(|v| v * v).sum::<f64>();
        state_count += 1;
        if cfg.collect_state {
            states.push((block.grid_id, block.to_global(p), *q));
        }
    }

    RankReturn {
        phase_elapsed,
        state_sum_sq,
        state_count,
        states,
        igbps_last,
        serviced_last: last_conn.serviced,
        orphans_last: last_conn.orphans,
        repartitions,
        np_final: partition.np.clone(),
    }
}

/// Run a case serially (one processor holding every grid) — the Cray Y-MP
/// baseline of Table 6 and the reference for parallel-equivalence tests.
pub fn run_case_serial(
    cfg: &CaseConfig,
    machine: &MachineModel,
) -> Result<RunResult, OversetError> {
    let ngrids = cfg.grids.len();
    let single =
        Partition::build(&cfg.grids.iter().map(|g| g.dims()).collect::<Vec<_>>(), &vec![1; ngrids]);
    // Same up-front hierarchy validation as the parallel path.
    build_topology(&single, &cfg.search_order)?;

    let outputs = Universe::builder().machine(machine).trace(cfg.trace.clone()).run(|comm| {
        let fc = cfg.fc;
        let mut motions = cfg.motions.clone();
        let mut solids: Vec<(usize, Solid)> = cfg
            .grids
            .iter()
            .enumerate()
            .flat_map(|(g, grid)| grid.solids.iter().map(move |s| (g, *s)))
            .collect();
        let mut blocks: Vec<overset_solver::Block> = Vec::with_capacity(ngrids);
        let mut walls = Vec::with_capacity(ngrids);
        let mut scratches = Vec::with_capacity(ngrids);
        let cum = vec![RigidTransform::IDENTITY; ngrids];
        for g in 0..ngrids {
            // Build each grid as a whole single block (ignore the partition
            // rank mapping; serial holds all of them).
            let (b, w) = build_block(single.start[g], &single, &cfg.grids, &cum, &fc)
                .unwrap_or_else(|e| panic!("{e}"));
            let mut sc = Scratch::for_block(&b);
            sc.sweep.isa = overset_solver::select_isa(cfg.use_simd);
            scratches.push(sc);
            blocks.push(b);
            walls.push(w);
        }
        let ws: f64 = blocks.iter().map(|b| b.working_set_bytes()).sum();
        comm.set_working_set(ws);
        let mut cache = SerialCache::new();
        // Per-grid inverse maps, rebuilt only for grids whose pose changed.
        let mut maps: Vec<InverseMap> = Vec::new();
        let mut moved: Vec<bool> = vec![true; ngrids];
        // Rigid motion accumulated per grid since its map was last brought
        // up to date (the incremental `advance` candidate).
        let mut pending_t: Vec<Option<RigidTransform>> = vec![None; ngrids];
        // Connectivity scratch, persistent across steps under `use_arena`.
        let mut arena = ConnArena::new();
        arena.isa = overset_solver::select_isa(cfg.use_simd);
        let mut phase_elapsed = [0.0f64; NUM_PHASES];
        let mut igbps_last = 0usize;
        let mut orphans_last = 0usize;

        for _step in 0..cfg.steps {
            {
                let mut ph = comm.phase(Phase::Flow);
                let t0 = ph.now();
                for g in 0..ngrids {
                    let rep = overset_solver::step_block(
                        &mut blocks[g],
                        &fc,
                        walls[g].as_ref(),
                        &mut SerialComm,
                        &mut scratches[g],
                    );
                    ph.compute(rep.flops as f64, WorkClass::Flow);
                }
                phase_elapsed[Phase::Flow as usize] += ph.now() - t0;
            }

            {
                let mut ph = comm.phase(Phase::Motion);
                let t0 = ph.now();
                for body in motions.iter_mut() {
                    let aero = if body.needs_aero() {
                        let refp = body.moment_reference();
                        let p_inf = overset_solver::conditions::pressure(&fc.freestream());
                        let mut total = Loads::ZERO;
                        let mut flops = 0u64;
                        for &g in &body.grids {
                            for face in 0..6 {
                                if let Some((nu, nv, coords, press)) =
                                    overset_solver::bc::wall_surface(&blocks[g], face)
                                {
                                    let gauge: Vec<f64> = press.iter().map(|p| p - p_inf).collect();
                                    let l = overset_motion::integrate_surface_loads(
                                        nu, nv, &coords, &gauge, refp, 1.0,
                                    );
                                    total = total.add(&l);
                                    flops += (nu * nv) as u64 * 30;
                                }
                            }
                        }
                        ph.compute(flops as f64, WorkClass::Other);
                        total
                    } else {
                        Loads::ZERO
                    };
                    let t = body.motion.step(fc.dt, &aero);
                    for &g in &body.grids {
                        for (sg, s) in solids.iter_mut() {
                            if *sg == g {
                                *s = s.transformed(&t);
                            }
                        }
                        blocks[g].apply_motion(&t, fc.dt);
                        // Identity / below-epsilon motion: don't mark the
                        // grid moved (see the parallel driver's rationale).
                        let negligible = if maps.len() == ngrids {
                            t.is_negligible_for(&maps[g].bounds())
                        } else {
                            t.is_identity()
                        };
                        if !negligible {
                            moved[g] = true;
                            pending_t[g] = Some(match &pending_t[g] {
                                Some(prev) => prev.then(&t),
                                None => t,
                            });
                        }
                        if let Some(w) = &mut walls[g] {
                            for p in &mut w.wall_xyz {
                                *p = t.apply(*p);
                            }
                        }
                        // Keep the wall state consistent with the new velocity.
                        let bc_flops = apply_bcs(&mut blocks[g], &fc);
                        ph.compute(bc_flops as f64, WorkClass::Other);
                    }
                }
                phase_elapsed[Phase::Motion as usize] += ph.now() - t0;
            }

            {
                let mut ph = comm.phase(Phase::Connectivity);
                let t0 = ph.now();
                if !cfg.use_arena {
                    // Ablation: cold buffers every step, same code path.
                    arena = ConnArena::new();
                    arena.isa = overset_solver::select_isa(cfg.use_simd);
                }
                let stats = if cfg.use_inverse_map {
                    let mut build_flops = 0u64;
                    if maps.len() != ngrids {
                        maps = blocks.iter().map(InverseMap::build).collect();
                        build_flops = maps.iter().map(|m| m.build_flops()).sum();
                        ph.metrics_mut().add(names::CONN_INVMAP_BUILDS, ngrids as u64);
                        moved.iter_mut().for_each(|f| *f = false);
                        pending_t.iter_mut().for_each(|p| *p = None);
                    } else {
                        for g in 0..ngrids {
                            if !moved[g] {
                                continue;
                            }
                            // Incremental pose advance when enabled and the
                            // accumulated motion is small enough; full
                            // rebuild otherwise.
                            let advanced = cfg.use_incremental_invmap
                                && match pending_t[g].as_ref() {
                                    Some(t) => maps[g].advance(t),
                                    None => false,
                                };
                            if advanced {
                                build_flops += FLOPS_PER_INCR_UPDATE;
                                ph.metrics_mut().inc(names::CONN_INVMAP_INCR);
                            } else {
                                maps[g] = InverseMap::build(&blocks[g]);
                                build_flops += maps[g].build_flops();
                                ph.metrics_mut().inc(names::CONN_INVMAP_BUILDS);
                            }
                            moved[g] = false;
                            pending_t[g] = None;
                        }
                    }
                    ph.compute(build_flops as f64, WorkClass::Search);
                    connect_serial_arena(
                        &mut blocks,
                        &cfg.search_order,
                        &solids,
                        &mut cache,
                        Some(&maps),
                        &mut arena,
                    )
                } else {
                    connect_serial_arena(
                        &mut blocks,
                        &cfg.search_order,
                        &solids,
                        &mut cache,
                        None,
                        &mut arena,
                    )
                };
                ph.compute(stats.flops as f64, WorkClass::Search);
                ph.metrics_mut().add(names::CONN_SERVICED, stats.igbps as u64);
                ph.metrics_mut().add(names::CONN_WALK_STEPS, stats.walk_steps);
                igbps_last = stats.igbps;
                orphans_last = stats.orphans;
                if cfg.inject_alloc > 0 {
                    std::hint::black_box(vec![0u8; cfg.inject_alloc]);
                }
                phase_elapsed[Phase::Connectivity as usize] += ph.now() - t0;
            }
            comm.end_step();
        }
        let _ph = comm.phase(Phase::Other);
        let mut sum_sq = 0.0f64;
        let mut count = 0usize;
        for b in &blocks {
            for p in b.owned_local().iter() {
                if b.iblank[p] != overset_solver::Blank::Field {
                    continue;
                }
                let q = b.q.node(p);
                sum_sq += q.iter().map(|v| v * v).sum::<f64>();
                count += 1;
            }
        }
        (phase_elapsed, igbps_last, orphans_last, sum_sq, count)
    });

    let rank_stats: Vec<RankStats> = outputs.iter().map(|o| o.stats.clone()).collect();
    let summary = PerfSummary::from_ranks(&rank_stats);
    let mut metrics = MetricsRegistry::new();
    for o in &outputs {
        metrics.merge_from(&o.metrics);
    }
    let trace: Vec<RankTrace> = if cfg.trace.enabled {
        outputs
            .iter()
            .enumerate()
            .map(|(rank, o)| RankTrace { rank, events: o.trace.clone() })
            .collect()
    } else {
        Vec::new()
    };
    let (phase_elapsed, igbps_last, orphans_last, sum_sq, count) = outputs[0].result;
    let step_records: Vec<Vec<StepRecord>> = outputs.iter().map(|o| o.steps.clone()).collect();
    let steps_dropped: u64 = outputs.iter().map(|o| o.steps_dropped).sum();
    let host_phase_elapsed = host_phase_max(outputs.iter().map(|o| &o.host_time));
    let host_phase_by_rank: Vec<[f64; NUM_PHASES]> = outputs.iter().map(|o| o.host_time).collect();
    let alloc_by_rank: Vec<AllocTotals> = outputs.iter().map(|o| o.alloc).collect();
    let alloc_records: Vec<Vec<AllocRecord>> =
        outputs.iter().map(|o| o.alloc_steps.clone()).collect();
    Ok(RunResult {
        nranks: 1,
        states: Vec::new(),
        state_rms: (sum_sq / count.max(1) as f64).sqrt(),
        steps: cfg.steps,
        total_points: cfg.total_points(),
        phase_elapsed,
        wall_time: summary.wall_time,
        igbps_last,
        serviced_last: vec![igbps_last],
        orphans_last,
        repartitions: 0,
        np_final: vec![1; cfg.grids.len()],
        rank_stats,
        trace,
        metrics,
        step_records,
        steps_dropped,
        host_phase_elapsed,
        host_phase_by_rank,
        alloc_by_rank,
        alloc_records,
        summary,
    })
}
