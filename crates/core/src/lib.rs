//! OVERFLOW-D: the parallel dynamic overset grid driver of the Wissink &
//! Meakin (SC'97) reproduction.
//!
//! An unsteady calculation loops three barrier-separated phases per step:
//!
//! 1. **flow solve** — the implicit structured solver on every subdomain
//!    ([`overset_solver`]), with halo exchange and pipelined cross-subdomain
//!    implicit lines over the message-passing runtime,
//! 2. **grid motion** — prescribed or 6-DOF rigid motion of moving
//!    components ([`overset_motion`]),
//! 3. **domain connectivity** — hole cutting and the distributed donor
//!    search ([`overset_connectivity`]),
//!
//! plus the paper's contribution: Algorithm 1 static load balancing at
//! startup and the Algorithm 2 dynamic scheme, which measures the donor-
//! search service load I(p) and repartitions (with full state
//! redistribution) when `f(p) = I(p)/Ī` exceeds the user threshold `f_o`.
//!
//! Entry points: [`driver::run_case`] (parallel, N ranks of a machine
//! model) and [`driver::run_case_serial`] (single-processor baseline);
//! [`cases`] builds the paper's three test problems.

pub mod cases;
pub mod comm_impl;
pub mod driver;
pub mod export;
pub mod redistribute;
pub mod setup;

pub use cases::{airfoil_case, delta_wing_case, store_case, store_case_sixdof};
pub use driver::{run_case, run_case_serial, CaseConfig, LbConfig, RunResult};
