//! The message-passing implementation of the solver's communication hooks:
//! halo exchange (interface faces and periodic wraps) and pipelined
//! line-solve carries, over the virtual-time rank runtime.

use overset_comm::{Comm, VecPool, WorkClass};
use overset_grid::index::{Ijk, IndexBox};
use overset_solver::adi::implicit_neighbor;
use overset_solver::{Block, SolverComm, HALO};

const TAG_HALO: u64 = 100; // + sender's face (0..6)
const TAG_WRAP: u64 = 110; // + sender's wrap face (0..2)
const TAG_LINE: u64 = 200; // + dir*2 + (0 = forward, 1 = backward)

/// Solver communication over the rank runtime. The halo pool recycles
/// received exchange buffers into the next pack, so steady-state halo
/// exchanges perform no transient allocations (sends and receives are
/// symmetric across a face link, keeping the pool balanced).
pub struct MpSolverComm<'a> {
    pub comm: &'a mut Comm,
    pub halo_pool: &'a mut VecPool<f64>,
}

/// Is this face of the block a periodic wrap link (as opposed to an
/// interior subdomain interface)?
fn is_wrap_face(block: &Block, face: usize) -> bool {
    if face >= 2 || block.neighbor[face].is_none() {
        return false;
    }
    if face == 0 {
        block.owned.lo.i == 0
    } else {
        block.owned.hi.i == block.grid_dims.ni
    }
}

/// Local box of the data a wrap partner needs from this rank.
fn wrap_pack_box(block: &Block, face: usize) -> IndexBox {
    let ow = block.owned_local();
    let mut lo = ow.lo;
    let mut hi = ow.hi;
    if face == 0 {
        // I own global i = 0..: partner (at the i-max end) needs global
        // {0, 1, 2}: its seam node (ni-1 duplicates 0) plus two ghosts.
        let base = block.to_local(Ijk::new(0, block.owned.lo.j, block.owned.lo.k)).i;
        lo.set(0, base);
        hi.set(0, base + HALO + 1);
    } else {
        // I own global i up to ni-1: partner needs global {ni-3, ni-2}
        // (its ghosts below i = 0; ni-1 is the duplicate of 0).
        let ni = block.grid_dims.ni;
        let base = block.to_local(Ijk::new(ni - 1 - HALO, block.owned.lo.j, block.owned.lo.k)).i;
        lo.set(0, base);
        hi.set(0, base + HALO);
    }
    IndexBox::new(lo, hi)
}

/// Local box this rank's wrap ghosts occupy (receive side of `face`).
fn wrap_unpack_box(block: &Block, face: usize) -> IndexBox {
    let ow = block.owned_local();
    let mut lo = ow.lo;
    let mut hi = ow.hi;
    if face == 0 {
        // Ghosts below owned i: global {-2, -1} ≡ {ni-3, ni-2}.
        lo.set(0, ow.lo.i - HALO);
        hi.set(0, ow.lo.i);
    } else {
        // Seam node (global ni-1, owned) plus ghosts beyond: ≡ {0, 1, 2}.
        lo.set(0, ow.hi.i - 1);
        hi.set(0, ow.hi.i - 1 + HALO + 1);
    }
    IndexBox::new(lo, hi)
}

impl SolverComm for MpSolverComm<'_> {
    fn exchange_halo(&mut self, block: &mut Block) {
        let t0 = self.comm.now();
        if block.self_wrap_i {
            block.fill_self_wrap();
        }
        // Send everything first (asynchronous sends), then receive.
        for face in 0..6 {
            let Some(nb) = block.neighbor[face] else { continue };
            if is_wrap_face(block, face) {
                let mut data = self.halo_pool.take();
                block.pack_box_into(wrap_pack_box(block, face), &mut data);
                let bytes = data.len() * 8;
                self.comm.send(nb, TAG_WRAP + face as u64, data, bytes);
            } else {
                let mut data = self.halo_pool.take();
                block.pack_face_into(face, HALO, &mut data);
                let bytes = data.len() * 8;
                self.comm.send(nb, TAG_HALO + face as u64, data, bytes);
            }
        }
        for face in 0..6 {
            let Some(nb) = block.neighbor[face] else { continue };
            if is_wrap_face(block, face) {
                // My wrap partner sent with *its* wrap face tag (the
                // opposite i face).
                let their_face = face ^ 1;
                let data: Vec<f64> = self.comm.recv(nb, TAG_WRAP + their_face as u64);
                block.unpack_box(wrap_unpack_box(block, face), &data);
                self.halo_pool.put(data);
            } else {
                let their_face = face ^ 1;
                let data: Vec<f64> = self.comm.recv(nb, TAG_HALO + their_face as u64);
                block.unpack_face(face, HALO, &data);
                self.halo_pool.put(data);
            }
        }
        self.comm.trace_complete("solver", "exchange_halo", t0, &[]);
    }

    fn send_line(&mut self, block: &Block, dir: usize, downstream: bool, data: Vec<f64>) {
        let target =
            implicit_neighbor(block, dir, downstream).expect("send_line with no implicit neighbor");
        // Forward carries travel downstream; backward solutions upstream.
        let tag = TAG_LINE + 2 * dir as u64 + u64::from(!downstream);
        let bytes = data.len() * 8;
        self.comm.send(target, tag, data, bytes);
    }

    fn recv_line(
        &mut self,
        block: &Block,
        dir: usize,
        from_upstream: bool,
        len: usize,
    ) -> Vec<f64> {
        let source = implicit_neighbor(block, dir, !from_upstream)
            .expect("recv_line with no implicit neighbor");
        let tag = TAG_LINE + 2 * dir as u64 + u64::from(!from_upstream);
        let data: Vec<f64> = self.comm.recv(source, tag);
        assert_eq!(
            data.len(),
            len,
            "line carry length mismatch: rank {} grid {} owned {:?} dir {dir} from_upstream {from_upstream} src {source}",
            self.comm.rank(),
            block.grid_id,
            block.owned
        );
        data
    }

    fn compute(&mut self, flops: u64) {
        self.comm.compute(flops as f64, WorkClass::Flow);
    }

    fn now(&self) -> f64 {
        self.comm.now()
    }

    fn trace_span(&mut self, cat: &'static str, name: &'static str, start: f64) {
        self.comm.trace_complete(cat, name, start, &[]);
    }
}
