//! Per-rank system setup: building blocks, wall geometry and the routing
//! topology from a partition.

use overset_balance::Partition;
use overset_comm::OversetError;
use overset_connectivity::Topology;
use overset_grid::curvilinear::{BcKind, CurvilinearGrid, Face};
use overset_grid::transform::RigidTransform;
use overset_solver::bc::apply_bcs;
use overset_solver::conditions::conservatives;
use overset_solver::{Block, FlowConditions, WallGeometry};

/// Build the routing topology (replicated on every rank). Fails when the
/// search hierarchy does not describe every grid or names an unknown grid.
pub fn build_topology(
    partition: &Partition,
    search_order: &[Vec<usize>],
) -> Result<Topology, OversetError> {
    let ngrids = partition.np.len();
    if search_order.len() != ngrids {
        return Err(OversetError::Setup(format!(
            "search_order describes {} grids but the partition has {ngrids}",
            search_order.len()
        )));
    }
    if let Some(&bad) = search_order.iter().flatten().find(|&&g| g >= ngrids) {
        return Err(OversetError::Setup(format!("search_order references grid {bad} of {ngrids}")));
    }
    Ok(Topology {
        grid_of_rank: partition.grid_of_rank_vec(),
        ranks_of_grid: (0..ngrids).map(|g| partition.ranks_of_grid(g)).collect(),
        search_order: search_order.to_vec(),
    })
}

/// Build this rank's block (and wall geometry when its grid has a JMin
/// wall), applying the cumulative motion transform of the grid.
pub fn build_block(
    rank: usize,
    partition: &Partition,
    grids: &[CurvilinearGrid],
    cumulative: &[RigidTransform],
    fc: &FlowConditions,
) -> Result<(Block, Option<WallGeometry>), OversetError> {
    if rank >= partition.ranks.len() {
        return Err(OversetError::Setup(format!(
            "rank {rank} outside the {}-rank partition",
            partition.ranks.len()
        )));
    }
    let a = partition.ranks[rank];
    let grid = grids.get(a.grid).ok_or_else(|| {
        OversetError::Setup(format!(
            "partition references grid {} but only {} grids exist",
            a.grid,
            grids.len()
        ))
    })?;
    if cumulative.len() != grids.len() {
        return Err(OversetError::Setup(format!(
            "{} cumulative transforms for {} grids",
            cumulative.len(),
            grids.len()
        )));
    }
    let neighbors = partition.neighbors_of(rank, grid.periodic_i);
    let mut block = Block::from_grid(a.grid, grid, a.boxx, neighbors, fc);
    let t = &cumulative[a.grid];
    if !t.is_identity() {
        block.set_geometry_transform(t);
    }
    let wall = match grid.patch_on(Face::JMin) {
        Some(BcKind::Wall { .. }) => {
            let mut w = WallGeometry::from_grid(grid, a.boxx);
            if !t.is_identity() {
                for p in &mut w.wall_xyz {
                    *p = t.apply(*p);
                }
            }
            Some(w)
        }
        _ => None,
    };
    // A freestream field meeting a no-slip wall is an impulsive start whose
    // shear (freestream over one near-wall cell) is unsolvably stiff at fine
    // resolution. Initialize walled grids with a boundary-layer-like
    // velocity profile instead, and apply the BCs once so the first
    // residual already sees consistent wall data.
    if wall.is_some() {
        apply_boundary_layer_profile(&mut block, &wall, fc);
    }
    apply_bcs(&mut block, fc);
    Ok((block, wall))
}

/// Scale the velocity toward zero across a thin layer near the wall
/// (thickness ~8% of the grid's wall-normal extent), keeping density and
/// pressure at freestream.
fn apply_boundary_layer_profile(
    block: &mut Block,
    wall: &Option<WallGeometry>,
    fc: &FlowConditions,
) {
    let Some(w) = wall else { return };
    let q_inf = fc.freestream();
    let u_inf = [q_inf[1] / q_inf[0], q_inf[2] / q_inf[0], q_inf[3] / q_inf[0]];
    let p_inf = overset_solver::conditions::pressure(&q_inf);
    let dims = block.local_dims;
    for p in dims.iter().collect::<Vec<_>>() {
        // Wall point of this node's (i, k) column (clamped into the owned
        // column range for halo nodes).
        let gi = p.i.saturating_sub(block.halo[0]).min(w.ni - 1);
        let gk = p.k.saturating_sub(block.halo[2]).min(w.nk - 1);
        let wp = w.wall_xyz[gi + w.ni * gk];
        // Column-local layer thickness: the profile must not depend on the
        // domain decomposition (a rank-averaged δ would).
        let delta = (0.08 * w.delta_col[gi + w.ni * gk]).max(1e-12);
        let x = block.coords[p];
        let d = ((x[0] - wp[0]).powi(2) + (x[1] - wp[1]).powi(2) + (x[2] - wp[2]).powi(2)).sqrt();
        let f = (d / delta).tanh();
        let vel = [u_inf[0] * f, u_inf[1] * f, u_inf[2] * f];
        block.q.set_node(p, conservatives(&[q_inf[0], vel[0], vel[1], vel[2], p_inf]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::gen::airfoil::airfoil_system;
    use overset_grid::Dims;

    #[test]
    fn topology_matches_partition() {
        let grids = airfoil_system(0.15);
        let dims: Vec<Dims> = grids.iter().map(|g| g.dims()).collect();
        let sizes: Vec<usize> = grids.iter().map(|g| g.num_points()).collect();
        let bal = overset_balance::static_balance(&sizes, 6).unwrap();
        let p = Partition::build(&dims, &bal.np);
        let topo = build_topology(&p, &overset_grid::gen::airfoil::airfoil_search_order()).unwrap();
        assert_eq!(topo.grid_of_rank.len(), 6);
        for g in 0..3 {
            for r in topo.ranks_of_grid[g].clone() {
                assert_eq!(topo.grid_of_rank[r], g);
            }
        }
    }

    #[test]
    fn blocks_cover_grids_without_overlap() {
        let grids = airfoil_system(0.15);
        let dims: Vec<Dims> = grids.iter().map(|g| g.dims()).collect();
        let sizes: Vec<usize> = grids.iter().map(|g| g.num_points()).collect();
        let bal = overset_balance::static_balance(&sizes, 9).unwrap();
        let p = Partition::build(&dims, &bal.np);
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let cum = vec![RigidTransform::IDENTITY; 3];
        let mut per_grid_nodes = [0usize; 3];
        for r in 0..9 {
            let (b, wall) = build_block(r, &p, &grids, &cum, &fc).unwrap();
            per_grid_nodes[b.grid_id] += b.owned_count();
            // Only the near grid (grid 0) has a wall.
            assert_eq!(wall.is_some(), b.grid_id == 0);
        }
        for g in 0..3 {
            assert_eq!(per_grid_nodes[g], grids[g].num_points());
        }
    }

    #[test]
    fn cumulative_transform_applies_to_block_and_wall() {
        let grids = airfoil_system(0.15);
        let dims: Vec<Dims> = grids.iter().map(|g| g.dims()).collect();
        let p = Partition::build(&dims, &[1, 1, 1]);
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let mut cum = vec![RigidTransform::IDENTITY; 3];
        cum[0] = RigidTransform::translation([5.0, 0.0, 0.0]);
        let (b, wall) = build_block(0, &p, &grids, &cum, &fc).unwrap();
        let bb = overset_connectivity::protocol::owned_bbox(&b);
        assert!(bb.center()[0] > 4.0, "block not translated: {:?}", bb.center());
        let w = wall.unwrap();
        assert!(w.wall_xyz.iter().all(|p| p[0] > 3.0));
    }

    #[test]
    fn invalid_setups_are_reported_not_panicked() {
        let grids = airfoil_system(0.15);
        let dims: Vec<Dims> = grids.iter().map(|g| g.dims()).collect();
        let p = Partition::build(&dims, &[1, 1, 1]);
        // Hierarchy shorter than the grid count.
        let e = build_topology(&p, &[vec![1]]).unwrap_err();
        assert!(e.to_string().contains("search_order"));
        // Hierarchy naming a grid that does not exist.
        let e = build_topology(&p, &[vec![9], vec![0], vec![0]]).unwrap_err();
        assert!(e.to_string().contains("grid 9"));
        // Rank outside the partition.
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let cum = vec![RigidTransform::IDENTITY; 3];
        let Err(e) = build_block(99, &p, &grids, &cum, &fc) else {
            panic!("out-of-range rank accepted")
        };
        assert!(e.to_string().contains("rank 99"));
        // Transform list not matching the grid count.
        let Err(e) = build_block(0, &p, &grids, &[RigidTransform::IDENTITY], &fc) else {
            panic!("short transform list accepted")
        };
        assert!(e.to_string().contains("transforms"));
    }
}
