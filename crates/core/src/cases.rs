//! The paper's three test cases, assembled as runnable [`CaseConfig`]s.

use crate::driver::CaseConfig;
use overset_grid::gen::{airfoil, delta_wing, store};
use overset_motion::{BodyMotion, Loads, Prescribed, RigidBody};
use overset_solver::FlowConditions;

/// Section 4.1: 2-D oscillating NACA 0012 airfoil. M∞ = 0.8, Re = 10⁶,
/// α(t) = 5°·sin(πt/2); three grids, ~64K composite points at `scale = 1`.
pub fn airfoil_case(scale: f64, steps: usize) -> CaseConfig {
    let mut fc = FlowConditions::new(0.8, 0.0, 1.0e6);
    // Stability-governed timestep (the paper: "the maximum timestep ... is
    // most often governed by stability conditions of the flow solver"):
    // the near-wall cell size shrinks with resolution, so dt scales down.
    fc.dt = 0.004 / scale.max(1.0);
    CaseConfig::builder(
        format!("oscillating-airfoil(x{scale})"),
        airfoil::airfoil_system(scale),
        airfoil::airfoil_search_order(),
        fc,
    )
    .motions(vec![BodyMotion::prescribed(vec![0], Prescribed::paper_airfoil_pitch())])
    .steps(steps)
    .build()
}

/// Section 4.2: descending delta wing. Four grids (~1M points at full
/// scale), all viscous, no turbulence model; the three curvilinear grids
/// descend at M = 0.064 relative to the background.
pub fn delta_wing_case(scale: f64, steps: usize) -> CaseConfig {
    let mut fc = FlowConditions::new(0.3, 0.0, 1.0e6);
    fc.dt = 0.02;
    let descent = Prescribed::descent(0.064, 1.0);
    CaseConfig::builder(
        format!("descending-delta-wing(x{scale})"),
        delta_wing::delta_wing_system(scale),
        delta_wing::delta_wing_search_order(),
        fc,
    )
    .motions(vec![BodyMotion::prescribed(vec![0, 1, 2], descent)])
    .steps(steps)
    .build()
}

/// Section 4.3: finned-store separation from a wing/pylon at M∞ = 1.6.
/// Sixteen grids (~0.81M points at full scale), Baldwin–Lomax on the
/// curvilinear grids, prescribed store motion.
pub fn store_case(scale: f64, steps: usize) -> CaseConfig {
    let mut fc = FlowConditions::new(1.6, 0.0, 1.0e6);
    fc.dt = 0.01;
    let motions = vec![BodyMotion::prescribed(
        store::STORE_GRID_IDS.to_vec(),
        Prescribed::store_ejection([
            store::STORE_CARRIAGE[0] + 0.5 * store::STORE_LEN,
            store::STORE_CARRIAGE[1],
            store::STORE_CARRIAGE[2],
        ]),
    )];
    CaseConfig::builder(
        format!("finned-store-separation(x{scale})"),
        store::store_system(scale),
        store::store_search_order(),
        fc,
    )
    .motions(motions)
    .steps(steps)
    .build()
}

/// The store-separation case with *computed* (6-DOF) store motion instead
/// of the prescribed trajectory — the paper: "the free motion can be
/// computed with negligible change in the parallel performance of the
/// code". Aerodynamic loads are integrated over the store grids' wall
/// patches each step and allreduce-summed; gravity and an initial ejector
/// push are applied on top.
pub fn store_case_sixdof(scale: f64, steps: usize) -> CaseConfig {
    let mut cfg = store_case(scale, steps);
    let cg = [
        store::STORE_CARRIAGE[0] + 0.5 * store::STORE_LEN,
        store::STORE_CARRIAGE[1],
        store::STORE_CARRIAGE[2],
    ];
    let mut body = RigidBody::new(8.0, [0.6, 5.0, 5.0], cg);
    body.velocity = [0.0, 0.0, -0.4]; // post-ejector downward velocity
    let applied = Loads { force: [0.0, 0.0, -8.0], moment: [0.0, -0.2, 0.0] };
    cfg.motions = vec![BodyMotion::six_dof(store::STORE_GRID_IDS.to_vec(), body, applied)];
    cfg.name = format!("finned-store-separation-6dof(x{scale})");
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_shapes_match_paper() {
        let a = airfoil_case(0.2, 1);
        assert_eq!(a.grids.len(), 3);
        assert_eq!(a.motions.len(), 1);
        let d = delta_wing_case(0.1, 1);
        assert_eq!(d.grids.len(), 4);
        assert_eq!(d.motions.len(), 1);
        assert_eq!(d.motions[0].grids, vec![0, 1, 2]);
        let s = store_case(0.1, 1);
        assert_eq!(s.grids.len(), 16);
        assert_eq!(s.motions.len(), 1);
        // All store grids move together as one body.
        assert_eq!(s.motions[0].grids, store::STORE_GRID_IDS.to_vec());
        let sd = store_case_sixdof(0.1, 1);
        assert!(sd.motions[0].needs_aero());
    }

    #[test]
    fn igbp_ratios_in_paper_band() {
        // The paper reports IGBP/gridpoint ratios of ~44e-3 (airfoil),
        // ~33e-3 (delta wing), ~66e-3 (store). Exact values depend on the
        // synthetic geometry; the store case must exceed the others.
        // (Full measurement happens in integration tests; here we sanity
        // check the search orders reference valid grids.)
        for cfg in [airfoil_case(0.2, 1), delta_wing_case(0.1, 1), store_case(0.1, 1)] {
            assert_eq!(cfg.search_order.len(), cfg.grids.len());
            for (g, list) in cfg.search_order.iter().enumerate() {
                assert!(!list.contains(&g));
                for &t in list {
                    assert!(t < cfg.grids.len());
                }
            }
        }
    }
}
