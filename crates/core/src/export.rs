//! Export a finished run as Plot3D grid + solution files (the interchange
//! format of the OVERFLOW ecosystem), reassembled from the per-rank state
//! collected by the driver.

use crate::driver::{CaseConfig, RunResult};
use overset_grid::field::StateField;
use overset_grid::io::{write_q, write_xyz};
use overset_grid::{CurvilinearGrid, Dims};
use std::path::Path;

/// Write `<stem>.xyz` and `<stem>.q` for a run made with
/// `cfg.collect_state = true`. Grids are written at their *initial* pose
/// (the collected solution is indexed by grid nodes; pose history is not
/// retained). Hole and fringe nodes carry the freestream state.
pub fn write_plot3d(stem: &Path, cfg: &CaseConfig, result: &RunResult) -> std::io::Result<()> {
    assert!(
        !result.states.is_empty(),
        "run the case with cfg.collect_state = true before exporting"
    );
    let grids: Vec<&CurvilinearGrid> = cfg.grids.iter().collect();
    let dims: Vec<Dims> = cfg.grids.iter().map(|g| g.dims()).collect();

    let mut states: Vec<StateField> = dims
        .iter()
        .map(|d| {
            let mut s = StateField::new(*d);
            s.fill_uniform(cfg.fc.freestream());
            s
        })
        .collect();
    for (g, p, q) in &result.states {
        states[*g].set_node(*p, *q);
    }

    let xyz = stem.with_extension("xyz");
    let qf = stem.with_extension("q");
    write_xyz(&xyz, &grids)?;
    write_q(
        &qf,
        &dims,
        &states,
        [cfg.fc.mach, cfg.fc.alpha.to_degrees(), cfg.fc.reynolds, cfg.steps as f64 * cfg.fc.dt],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{airfoil_case, run_case};
    use overset_comm::MachineModel;

    #[test]
    fn export_roundtrips_through_plot3d() {
        let mut cfg = airfoil_case(0.2, 2);
        cfg.collect_state = true;
        let r = run_case(&cfg, 3, &MachineModel::modern()).unwrap();
        let stem = std::env::temp_dir().join(format!("overset_export_{}", std::process::id()));
        write_plot3d(&stem, &cfg, &r).unwrap();

        let grids = overset_grid::io::read_xyz(&stem.with_extension("xyz")).unwrap();
        assert_eq!(grids.len(), 3);
        for (g, orig) in grids.iter().zip(&cfg.grids) {
            assert_eq!(g.dims(), orig.dims());
        }
        let (states, refs) = overset_grid::io::read_q(&stem.with_extension("q")).unwrap();
        assert_eq!(states.len(), 3);
        assert!((refs[0] - 0.8).abs() < 1e-12);
        // Solution values are physical.
        for s in &states {
            for p in s.dims().iter() {
                assert!(s.node(p)[0] > 0.0);
            }
        }
        std::fs::remove_file(stem.with_extension("xyz")).ok();
        std::fs::remove_file(stem.with_extension("q")).ok();
    }
}
