//! Inverse-map ablation: the acceleration layer must change *work*, never
//! *answers*. With `use_inverse_map` off, cold donor searches start from the
//! block center and candidate ranks are pruned only by bounding box; with it
//! on, searches start from a map-seeded cell and ranks are additionally
//! pruned by the occupancy mask. Both paths must land on the same donor
//! cells with the same trilinear weights (hence bit-identical physics) and
//! the same orphan census, while the accelerated path performs measurably
//! fewer walk steps and forwards fewer requests between ranks.

use overflow_d::{airfoil_case, run_case, store_case, CaseConfig, RunResult};
use overset_comm::{metrics::names, MachineModel};

fn ablate(mut cfg: CaseConfig, nranks: usize) -> (RunResult, RunResult) {
    cfg.use_inverse_map = true;
    let on = run_case(&cfg, nranks, &MachineModel::modern()).unwrap();
    cfg.use_inverse_map = false;
    let off = run_case(&cfg, nranks, &MachineModel::modern()).unwrap();
    (on, off)
}

fn assert_same_answers_less_work(on: &RunResult, off: &RunResult, case: &str) {
    // Identical donors: interpolation weights feed every fringe update, so
    // any donor-cell or weight difference would perturb the state checksum.
    assert_eq!(
        on.state_rms.to_bits(),
        off.state_rms.to_bits(),
        "{case}: state diverged: map-on {} vs map-off {}",
        on.state_rms,
        off.state_rms
    );
    assert_eq!(on.orphans_last, off.orphans_last, "{case}: orphan census diverged");
    assert_eq!(on.igbps_last, off.igbps_last, "{case}: fringe census diverged");

    // Measurably less work: seeded cold starts shorten walks, occupancy
    // pruning drops certain-miss ranks from the candidate rotation.
    let walks_on = on.metrics.counter(names::CONN_WALK_STEPS);
    let walks_off = off.metrics.counter(names::CONN_WALK_STEPS);
    assert!(
        walks_on < walks_off,
        "{case}: map did not reduce walk steps: {walks_on} vs {walks_off}"
    );
    let fwd_on = on.metrics.counter(names::CONN_FORWARDS);
    let fwd_off = off.metrics.counter(names::CONN_FORWARDS);
    assert!(fwd_on <= fwd_off, "{case}: map increased forwards: {fwd_on} vs {fwd_off}");
}

#[test]
fn airfoil_donors_identical_with_fewer_walk_steps() {
    let (on, off) = ablate(airfoil_case(0.4, 4), 6);
    assert_same_answers_less_work(&on, &off, "airfoil");
}

#[test]
fn store_donors_identical_with_fewer_walk_steps() {
    // The store case exercises the 3-D path, multiple movers, and the
    // occupancy-pruned candidate rotation across 16 ranks.
    let (on, off) = ablate(store_case(0.3, 4), 16);
    assert_same_answers_less_work(&on, &off, "store");
    let (fwd_on, fwd_off) =
        (on.metrics.counter(names::CONN_FORWARDS), off.metrics.counter(names::CONN_FORWARDS));
    assert!(
        fwd_on < fwd_off,
        "store: occupancy pruning did not reduce forwards: {fwd_on} vs {fwd_off}"
    );
}

#[test]
fn serial_driver_honors_the_flag_too() {
    let mut cfg = airfoil_case(0.35, 3);
    cfg.use_inverse_map = true;
    let on = overflow_d::run_case_serial(&cfg, &MachineModel::modern()).unwrap();
    cfg.use_inverse_map = false;
    let off = overflow_d::run_case_serial(&cfg, &MachineModel::modern()).unwrap();
    assert_eq!(on.state_rms.to_bits(), off.state_rms.to_bits());
    let (w_on, w_off) =
        (on.metrics.counter(names::CONN_WALK_STEPS), off.metrics.counter(names::CONN_WALK_STEPS));
    assert!(w_on < w_off, "serial walk steps: {w_on} vs {w_off}");
}
