//! Inverse-map ablation: the acceleration layer must change *work*, never
//! *answers*. With `use_inverse_map` off, cold donor searches start from the
//! block center and candidate ranks are pruned only by bounding box; with it
//! on, searches start from a map-seeded cell and ranks are additionally
//! pruned by the occupancy mask. Both paths must land on the same donor
//! cells with the same trilinear weights (hence bit-identical physics) and
//! the same orphan census, while the accelerated path performs measurably
//! fewer walk steps and forwards fewer requests between ranks.

use overflow_d::{airfoil_case, run_case, store_case, CaseConfig, RunResult};
use overset_comm::{metrics::names, MachineModel};
use overset_motion::BodyMotion;

fn ablate(mut cfg: CaseConfig, nranks: usize) -> (RunResult, RunResult) {
    cfg.use_inverse_map = true;
    let on = run_case(&cfg, nranks, &MachineModel::modern()).unwrap();
    cfg.use_inverse_map = false;
    let off = run_case(&cfg, nranks, &MachineModel::modern()).unwrap();
    (on, off)
}

fn assert_same_answers_less_work(on: &RunResult, off: &RunResult, case: &str) {
    // Identical donors: interpolation weights feed every fringe update, so
    // any donor-cell or weight difference would perturb the state checksum.
    assert_eq!(
        on.state_rms.to_bits(),
        off.state_rms.to_bits(),
        "{case}: state diverged: map-on {} vs map-off {}",
        on.state_rms,
        off.state_rms
    );
    assert_eq!(on.orphans_last, off.orphans_last, "{case}: orphan census diverged");
    assert_eq!(on.igbps_last, off.igbps_last, "{case}: fringe census diverged");

    // Measurably less work: seeded cold starts shorten walks, occupancy
    // pruning drops certain-miss ranks from the candidate rotation.
    let walks_on = on.metrics.counter(names::CONN_WALK_STEPS);
    let walks_off = off.metrics.counter(names::CONN_WALK_STEPS);
    assert!(
        walks_on < walks_off,
        "{case}: map did not reduce walk steps: {walks_on} vs {walks_off}"
    );
    let fwd_on = on.metrics.counter(names::CONN_FORWARDS);
    let fwd_off = off.metrics.counter(names::CONN_FORWARDS);
    assert!(fwd_on <= fwd_off, "{case}: map increased forwards: {fwd_on} vs {fwd_off}");
}

#[test]
fn airfoil_donors_identical_with_fewer_walk_steps() {
    let (on, off) = ablate(airfoil_case(0.4, 4), 6);
    assert_same_answers_less_work(&on, &off, "airfoil");
}

#[test]
fn store_donors_identical_with_fewer_walk_steps() {
    // The store case exercises the 3-D path, multiple movers, and the
    // occupancy-pruned candidate rotation across 16 ranks.
    let (on, off) = ablate(store_case(0.3, 4), 16);
    assert_same_answers_less_work(&on, &off, "store");
    let (fwd_on, fwd_off) =
        (on.metrics.counter(names::CONN_FORWARDS), off.metrics.counter(names::CONN_FORWARDS));
    assert!(
        fwd_on < fwd_off,
        "store: occupancy pruning did not reduce forwards: {fwd_on} vs {fwd_off}"
    );
}

#[test]
fn serial_driver_honors_the_flag_too() {
    let mut cfg = airfoil_case(0.35, 3);
    cfg.use_inverse_map = true;
    let on = overflow_d::run_case_serial(&cfg, &MachineModel::modern()).unwrap();
    cfg.use_inverse_map = false;
    let off = overflow_d::run_case_serial(&cfg, &MachineModel::modern()).unwrap();
    assert_eq!(on.state_rms.to_bits(), off.state_rms.to_bits());
    let (w_on, w_off) =
        (on.metrics.counter(names::CONN_WALK_STEPS), off.metrics.counter(names::CONN_WALK_STEPS));
    assert!(w_on < w_off, "serial walk steps: {w_on} vs {w_off}");
}

// ---------------------------------------------------------------------------
// Arena ablation: `use_arena` may only change *where buffers come from*
// (pooled capacity vs cold Vec::new), never what any of them contain. The
// same code path runs either way, so physics AND virtual time must agree to
// the bit; the host-side allocation counters are the only legal difference.
// ---------------------------------------------------------------------------

fn conn_allocs_last_step(r: &RunResult) -> u64 {
    use overset_comm::Phase;
    r.alloc_records
        .iter()
        .filter_map(|recs| recs.last())
        .map(|a| a.allocs[Phase::Connectivity as usize])
        .sum()
}

#[test]
fn arena_toggle_is_bit_identical_with_fewer_allocations() {
    let mut cfg = store_case(0.3, 4);
    cfg.use_arena = true;
    let on = run_case(&cfg, 16, &MachineModel::modern()).unwrap();
    cfg.use_arena = false;
    let off = run_case(&cfg, 16, &MachineModel::modern()).unwrap();

    assert_eq!(on.state_rms.to_bits(), off.state_rms.to_bits(), "state diverged");
    assert_eq!(on.wall_time.to_bits(), off.wall_time.to_bits(), "virtual time diverged");
    assert_eq!(on.orphans_last, off.orphans_last);
    assert_eq!(on.igbps_last, off.igbps_last);
    assert_eq!(
        on.metrics.counter(names::CONN_WALK_STEPS),
        off.metrics.counter(names::CONN_WALK_STEPS),
        "walk outcomes diverged"
    );

    // The point of the arena: steady-state steps reuse capacity instead of
    // reallocating it. Cold steps (the first) are allowed to be equal.
    let (a_on, a_off) = (conn_allocs_last_step(&on), conn_allocs_last_step(&off));
    assert!(a_on * 5 <= a_off, "arena did not cut steady-state allocations: {a_on} vs {a_off}");
}

// ---------------------------------------------------------------------------
// Incremental inverse-map rebuilds: under a small rigid motion the map
// advances its pose (cheap) instead of rebuilding (expensive); past the
// rotation threshold it falls back to a rebuild. Either way the donors —
// and hence the physics — are bit-identical.
// ---------------------------------------------------------------------------

#[test]
fn incremental_invmap_is_bit_identical_and_rebuilds_less() {
    let mut cfg = airfoil_case(0.3, 12);
    cfg.fc.dt = 0.01; // appreciable per-step motion, still far below fallback
    cfg.use_incremental_invmap = true;
    let on = run_case(&cfg, 6, &MachineModel::modern()).unwrap();
    cfg.use_incremental_invmap = false;
    let off = run_case(&cfg, 6, &MachineModel::modern()).unwrap();

    assert_eq!(on.state_rms.to_bits(), off.state_rms.to_bits(), "state diverged");
    assert_eq!(on.orphans_last, off.orphans_last, "orphan census diverged");
    assert_eq!(on.igbps_last, off.igbps_last, "fringe census diverged");

    let builds_on = on.metrics.counter(names::CONN_INVMAP_BUILDS);
    let builds_off = off.metrics.counter(names::CONN_INVMAP_BUILDS);
    let incr_on = on.metrics.counter(names::CONN_INVMAP_INCR);
    let incr_off = off.metrics.counter(names::CONN_INVMAP_INCR);
    assert!(incr_on > 0, "no incremental advance happened with the flag on");
    assert_eq!(incr_off, 0, "incremental advance happened with the flag off");
    assert!(
        builds_on < builds_off,
        "incremental mode did not reduce rebuilds: {builds_on} vs {builds_off}"
    );
}

#[test]
fn incremental_invmap_falls_back_past_rotation_threshold() {
    use overset_motion::Prescribed;
    // A deliberately violent pitch: ~1.6 degrees per step, so the composed
    // pose crosses the ~3-degree diagonal-growth cap every few steps and
    // the moving rank must rebuild from scratch — while still advancing
    // incrementally on the steps in between.
    let mut cfg = airfoil_case(0.3, 8);
    cfg.motions = vec![BodyMotion::prescribed(
        vec![0],
        Prescribed::PitchOscillation {
            alpha0: 20.0f64.to_radians(),
            omega: 20.0,
            pivot: [0.25, 0.0, 0.0],
            axis: [0.0, 0.0, 1.0],
            time: 0.0,
        },
    )];
    cfg.use_incremental_invmap = true;
    let on = run_case(&cfg, 6, &MachineModel::modern()).unwrap();
    cfg.use_incremental_invmap = false;
    let off = run_case(&cfg, 6, &MachineModel::modern()).unwrap();

    assert_eq!(on.state_rms.to_bits(), off.state_rms.to_bits(), "state diverged");
    assert_eq!(on.orphans_last, off.orphans_last);

    let builds_on = on.metrics.counter(names::CONN_INVMAP_BUILDS);
    let incr_on = on.metrics.counter(names::CONN_INVMAP_INCR);
    // 6 ranks build on the cold first step; any build beyond those is a
    // fallback rebuild forced by accumulated rotation.
    assert!(builds_on > 6, "fallback never triggered: builds {builds_on}");
    assert!(incr_on > 0, "no incremental advance survived between fallbacks: {incr_on}");
}

// ---------------------------------------------------------------------------
// Negligible motion: a step whose rigid transform is the identity (or moves
// the grid by less than epsilon·diagonal) must not mark the grid "moved" —
// no inverse-map rebuild, no pose advance, and walk outcomes identical to a
// run with no motion at all.
// ---------------------------------------------------------------------------

#[test]
fn negligible_motion_never_marks_grids_moved() {
    use overset_motion::Prescribed;
    let mk_zero = || {
        let mut cfg = airfoil_case(0.3, 6);
        // Zero-amplitude pitch: every step's transform is the exact identity.
        cfg.motions = vec![BodyMotion::prescribed(
            vec![0],
            Prescribed::PitchOscillation {
                alpha0: 0.0,
                omega: std::f64::consts::FRAC_PI_2,
                pivot: [0.25, 0.0, 0.0],
                axis: [0.0, 0.0, 1.0],
                time: 0.0,
            },
        )];
        cfg
    };
    let mk_none = || {
        let mut cfg = airfoil_case(0.3, 6);
        cfg.motions = vec![];
        cfg
    };
    let zero = run_case(&mk_zero(), 6, &MachineModel::modern()).unwrap();
    let none = run_case(&mk_none(), 6, &MachineModel::modern()).unwrap();

    // Identity motion is physically indistinguishable from no motion.
    assert_eq!(zero.state_rms.to_bits(), none.state_rms.to_bits(), "identity motion moved state");
    assert_eq!(
        zero.metrics.counter(names::CONN_WALK_STEPS),
        none.metrics.counter(names::CONN_WALK_STEPS),
        "identity motion changed walk outcomes"
    );
    // Builds happen once per rank on the cold first step and never again;
    // nothing ever advances a pose.
    assert_eq!(zero.metrics.counter(names::CONN_INVMAP_BUILDS), 6, "identity motion rebuilt maps");
    assert_eq!(zero.metrics.counter(names::CONN_INVMAP_INCR), 0);
    assert_eq!(none.metrics.counter(names::CONN_INVMAP_BUILDS), 6);

    // Below-epsilon translation: displaces every node by ~1e-21 of the
    // domain — real motion, but far under the negligibility threshold.
    let mut tiny = airfoil_case(0.3, 6);
    tiny.motions = vec![BodyMotion::prescribed(
        vec![0],
        Prescribed::ConstantVelocity { velocity: [0.0, 0.0, 1.0e-18], time: 0.0 },
    )];
    let tiny = run_case(&tiny, 6, &MachineModel::modern()).unwrap();
    assert_eq!(
        tiny.metrics.counter(names::CONN_INVMAP_BUILDS),
        6,
        "below-epsilon motion rebuilt maps"
    );
    assert_eq!(tiny.metrics.counter(names::CONN_INVMAP_INCR), 0);
    assert_eq!(
        tiny.metrics.counter(names::CONN_WALK_STEPS),
        none.metrics.counter(names::CONN_WALK_STEPS),
        "below-epsilon motion changed walk outcomes"
    );
}
