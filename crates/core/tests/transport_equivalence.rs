//! The tentpole determinism guarantee: the same case on the same rank
//! count produces **bit-identical** virtual times, counters and physics on
//! the in-process and multi-process transports. Nothing about where the
//! bytes travel may leak into the simulation.
//!
//! The process-backed run goes first: the forked rank-group children
//! re-execute this test and must reach the process-backed `establish`
//! without replaying the in-process reference run.

use overflow_d::{run_case, store_case};
use overset_comm::{MachineModel, TransportConfig};

const NRANKS: usize = 16;

#[test]
fn store_case_bit_identical_across_transports() {
    let machine = MachineModel::ibm_sp2();

    let mut cfg = store_case(0.3, 3);
    cfg.collect_state = true;
    cfg.transport =
        TransportConfig::process_for_test(2, "store_case_bit_identical_across_transports");
    let proc = run_case(&cfg, NRANKS, &machine).expect("process-transport run");

    cfg.transport = TransportConfig::InProcess;
    let inproc = run_case(&cfg, NRANKS, &machine).expect("in-process run");

    // Physics checksum and global clock, to the last bit.
    assert_eq!(
        proc.state_rms.to_bits(),
        inproc.state_rms.to_bits(),
        "state RMS diverged: {} vs {}",
        proc.state_rms,
        inproc.state_rms
    );
    assert_eq!(proc.wall_time.to_bits(), inproc.wall_time.to_bits(), "wall time diverged");
    for (p, i) in proc.phase_elapsed.iter().zip(&inproc.phase_elapsed) {
        assert_eq!(p.to_bits(), i.to_bits(), "phase time diverged");
    }

    // Every rank's clocks and communication counters.
    assert_eq!(proc.rank_stats.len(), inproc.rank_stats.len());
    for (p, i) in proc.rank_stats.iter().zip(&inproc.rank_stats) {
        assert_eq!(p.rank, i.rank);
        assert_eq!(p.final_clock.to_bits(), i.final_clock.to_bits(), "rank {} clock", p.rank);
        assert_eq!(p.msgs_sent, i.msgs_sent, "rank {} msgs", p.rank);
        assert_eq!(p.bytes_sent, i.bytes_sent, "rank {} bytes", p.rank);
        assert_eq!(p.collectives, i.collectives, "rank {} collectives", p.rank);
        assert_eq!(p.flops, i.flops, "rank {} flops", p.rank);
        for (a, b) in p.time.iter().zip(&i.time) {
            assert_eq!(a.to_bits(), b.to_bits(), "rank {} phase time", p.rank);
        }
    }

    // Aggregated metrics registries, counter by counter.
    let counters = |m: &overset_comm::MetricsRegistry| {
        let mut v: Vec<(&'static str, u64)> = m.counters().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(counters(&proc.metrics), counters(&inproc.metrics));

    // Flight-recorder step telemetry: same per-step clocks everywhere.
    assert_eq!(proc.step_records.len(), inproc.step_records.len());
    for (rank, (pr, ir)) in proc.step_records.iter().zip(&inproc.step_records).enumerate() {
        assert_eq!(pr.len(), ir.len(), "rank {rank} step count");
        for (a, b) in pr.iter().zip(ir) {
            assert_eq!(a.clock.to_bits(), b.clock.to_bits(), "rank {rank} step clock");
            assert_eq!(a.msgs_sent, b.msgs_sent, "rank {rank} step msgs");
        }
    }

    // Connectivity outcomes and the full final state, node for node.
    assert_eq!(proc.igbps_last, inproc.igbps_last);
    assert_eq!(proc.serviced_last, inproc.serviced_last);
    assert_eq!(proc.orphans_last, inproc.orphans_last);
    assert_eq!(proc.states.len(), inproc.states.len());
    let mut ps = proc.states.clone();
    let mut is = inproc.states.clone();
    let key = |s: &(usize, overset_grid::Ijk, [f64; 5])| (s.0, s.1.i, s.1.j, s.1.k);
    ps.sort_by_key(key);
    is.sort_by_key(key);
    for (p, i) in ps.iter().zip(&is) {
        assert_eq!(key(p), key(i), "state node sets differ");
        for (a, b) in p.2.iter().zip(&i.2) {
            assert_eq!(a.to_bits(), b.to_bits(), "state value diverged at {:?}", key(p));
        }
    }
}
