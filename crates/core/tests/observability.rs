//! Tests of the observability layer end to end: trace determinism, the
//! Chrome trace_event schema, metrics aggregation, and the exact per-phase
//! elapsed times surfaced through `PerfSummary`.

use overflow_d::{airfoil_case, run_case};
use overset_comm::metrics::names;
use overset_comm::trace::TraceConfig;
use overset_comm::{chrome_trace_json, MachineModel, Phase};

fn traced_airfoil() -> overflow_d::RunResult {
    let mut cfg = airfoil_case(0.3, 3);
    cfg.trace = TraceConfig::enabled();
    run_case(&cfg, 6, &MachineModel::ibm_sp2()).unwrap()
}

/// Two identical runs must serialize to byte-identical trace JSON — the
/// runtime is deterministic in virtual time and the exporter must not
/// introduce nondeterminism (map iteration order, pointers, wall clock).
#[test]
fn trace_json_is_byte_identical_across_runs() {
    let a = chrome_trace_json(&traced_airfoil().trace);
    let b = chrome_trace_json(&traced_airfoil().trace);
    assert!(!a.is_empty());
    assert_eq!(a, b, "trace JSON differs between identical runs");
}

/// Golden-schema test for the Chrome trace_event export: the structural
/// invariants chrome://tracing and Perfetto rely on. Checked as substrings
/// (no JSON parser in the workspace) — each is a stable part of the format,
/// not an incidental detail of our writer.
#[test]
fn trace_json_matches_chrome_trace_event_schema() {
    let r = traced_airfoil();
    let json = chrome_trace_json(&r.trace);

    // Top-level object with a traceEvents array and ms display units.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    // Virtual-clock marker in otherData.
    assert!(json.contains("\"clock\":\"virtual\""));
    // One process-name metadata event per rank.
    for rank in 0..r.nranks {
        assert!(
            json.contains(&format!("\"ph\":\"M\",\"pid\":{rank},")),
            "no process metadata for rank {rank}"
        );
        assert!(json.contains(&format!("\"name\":\"rank {rank}\"")));
    }
    // Complete ("X") events carry ts and dur.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ts\":"));
    assert!(json.contains("\"dur\":"));

    // Every rank traced spans for all three per-step phases.
    for (rank, t) in r.trace.iter().enumerate() {
        assert_eq!(t.rank, rank);
        for phase in [Phase::Flow, Phase::Motion, Phase::Connectivity] {
            assert!(
                t.events.iter().any(|e| e.cat == "phase" && e.name == phase.name()),
                "rank {rank} has no {} phase span",
                phase.name()
            );
        }
        // Kernel- and comm-level spans ride inside the phases.
        assert!(t.events.iter().any(|e| e.cat == "solver"));
        assert!(t.events.iter().any(|e| e.cat == "comm"));
        assert!(t.events.iter().any(|e| e.cat == "conn"));
    }
}

/// Disabling tracing yields no events and identical physics/timing.
#[test]
fn disabled_tracing_is_invisible() {
    let quiet = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp2()).unwrap();
    assert!(quiet.trace.is_empty());
    let traced = traced_airfoil();
    assert_eq!(quiet.wall_time.to_bits(), traced.wall_time.to_bits());
    assert_eq!(quiet.state_rms.to_bits(), traced.state_rms.to_bits());
}

/// The aggregated registry reflects the run: donor-search service counts,
/// per-phase message traffic, and a positive warm-restart hit rate on a
/// multi-step moving case.
#[test]
fn metrics_registry_reflects_the_run() {
    let r = run_case(&airfoil_case(0.3, 4), 6, &MachineModel::modern()).unwrap();
    let m = &r.metrics;
    assert!(m.counter(names::CONN_SERVICED) > 0);
    // Every rank records at least one search round per step.
    assert!(m.counter(names::CONN_ROUNDS) >= (r.nranks * r.steps) as u64);
    // Halo exchange sends messages during both flow and connectivity.
    assert!(m.counter(names::msgs_in(Phase::Flow)) > 0);
    assert!(m.counter(names::msgs_in(Phase::Connectivity)) > 0);
    assert!(m.counter(names::bytes_in(Phase::Flow)) > 0);
    // The nth-level restart cache pays off after the first step.
    let rate = m.cache_hit_rate().expect("no donor searches recorded");
    assert!(rate > 0.5, "warm restart hit rate {rate} too low");
    // Orphan counter agrees with the driver's last-step report (no motion
    // between the counts: the last step's orphans are counted once per step).
    assert!(m.counter(names::CONN_ORPHANS) >= r.orphans_last as u64);
}

/// `PerfSummary::phase_time` is the exact elapsed per phase: with
/// barrier-separated phases it equals the driver's own elapsed accounting.
#[test]
fn summary_phase_time_matches_driver_accounting() {
    let r = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp2()).unwrap();
    for phase in [Phase::Flow, Phase::Motion, Phase::Connectivity] {
        let exact = r.summary.phase_time(phase);
        let driver = r.phase_elapsed[phase as usize];
        assert!(
            (exact - driver).abs() <= 1e-12 * driver.abs().max(1.0),
            "{}: summary {exact} != driver {driver}",
            phase.name()
        );
    }
}

/// Dynamic load balancing reads I(p) from the metrics registry; when it
/// repartitions, the registry records it.
#[test]
fn lb_metrics_record_repartitions() {
    let mut cfg = airfoil_case(0.3, 8);
    cfg.lb = overflow_d::LbConfig::dynamic(1.05, 2);
    let r = run_case(&cfg, 8, &MachineModel::modern()).unwrap();
    // Every rank increments the counter once per repartition.
    assert_eq!(r.metrics.counter(names::LB_REPARTITIONS), (r.repartitions * r.nranks) as u64);
    let f = r.metrics.histogram(names::LB_F_RATIO).expect("no f(p) observations");
    assert!(f.count > 0 && f.max >= 1.0);
}

/// Streaming through the whole driver: the same airfoil case run once with
/// in-memory tracing and once with each streaming sink produces (a) a
/// Chrome document byte-identical to the in-memory exporter's and (b) a
/// binary span dir carrying exactly the in-memory spans and step records.
#[test]
fn driver_streamed_telemetry_matches_in_memory() {
    use overset_comm::{assemble_chrome, read_span_dir, StreamConfig};
    let dir = std::env::temp_dir().join("overset_driver_stream_identity");
    let _ = std::fs::remove_dir_all(&dir);
    let chrome_dir = dir.join("chrome");
    let spans_dir = dir.join("spans");

    let in_mem = traced_airfoil();
    let stream = |s: StreamConfig| {
        let mut cfg = airfoil_case(0.3, 3);
        cfg.trace = TraceConfig::enabled().with_stream(s);
        run_case(&cfg, 6, &MachineModel::ibm_sp2()).unwrap()
    };

    let chrome_run = stream(StreamConfig::chrome(&chrome_dir));
    assert!(chrome_run.trace.iter().all(|t| t.events.is_empty()), "spans must go to disk");
    assert_eq!(assemble_chrome(&chrome_dir).unwrap(), chrome_trace_json(&in_mem.trace));

    let binary_run = stream(StreamConfig::binary(&spans_dir));
    let sd = read_span_dir(&spans_dir).unwrap();
    assert_eq!(sd.gaps, Vec::<String>::new());
    assert_eq!(sd.ranks.len(), in_mem.trace.len());
    for (mem, disk) in in_mem.trace.iter().zip(&sd.ranks) {
        assert_eq!(mem.rank, disk.rank);
        assert_eq!(mem.events, disk.events);
    }
    assert_eq!(sd.step_records(), in_mem.step_records);
    assert_eq!(binary_run.steps_dropped, 0);

    // Host wall-clock timers ride along on every run and are the one field
    // allowed to differ: nonnegative, and populated for the phases the
    // driver actually entered.
    for r in [&in_mem, &chrome_run, &binary_run] {
        assert!(r.host_phase_elapsed.iter().all(|&t| t >= 0.0));
        assert!(r.host_phase_elapsed.iter().sum::<f64>() > 0.0, "driver ran, host time must tick");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
