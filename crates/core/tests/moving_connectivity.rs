//! Connectivity behaviour under sustained motion: holes migrate, fringe
//! sets track the bodies, and the donor cache keeps the warm path warm.

use overflow_d::{airfoil_case, run_case, store_case};
use overset_comm::MachineModel;

fn modern() -> MachineModel {
    MachineModel::modern()
}

#[test]
fn quarter_period_pitch_stays_connected() {
    // Run an appreciable fraction of the pitch cycle (dt·steps·ω): the
    // near grid rotates, hole fringes in the background migrate, and the
    // connectivity must stay fully resolved throughout.
    let mut cfg = airfoil_case(0.3, 40);
    cfg.fc.dt = 0.01; // larger steps = more motion per connectivity solve
    let r = run_case(&cfg, 6, &modern()).unwrap();
    assert_eq!(r.orphans_last, 0);
    assert!(r.state_rms.is_finite() && r.state_rms > 1.0);
}

#[test]
fn warm_connectivity_stays_cheap_through_motion() {
    // Average connectivity time over a long moving run must stay below the
    // cold first step (nth-level restart keeps working while the grids
    // move). The margin is narrower than the pre-inverse-map 2x: map
    // seeding makes the cold step itself cheap, so the warm/cold gap now
    // measures hint-vs-seeded-walk, not hint-vs-center-start.
    let one = run_case(&airfoil_case(0.3, 1), 6, &MachineModel::ibm_sp2()).unwrap();
    let many = run_case(&airfoil_case(0.3, 30), 6, &MachineModel::ibm_sp2()).unwrap();
    let conn =
        |r: &overflow_d::RunResult| r.phase_elapsed[overset_comm::Phase::Connectivity as usize];
    let cold = conn(&one);
    let warm_avg = (conn(&many) - cold) / 29.0;
    assert!(warm_avg < 0.8 * cold, "warm connectivity not cheap: {warm_avg} vs cold {cold}");

    // The flip side: disabling the map reverts cold searches to
    // center-start walks, which must cost measurably more than seeded ones.
    let mut unseeded_cfg = airfoil_case(0.3, 1);
    unseeded_cfg.use_inverse_map = false;
    let unseeded = run_case(&unseeded_cfg, 6, &MachineModel::ibm_sp2()).unwrap();
    assert!(
        cold < conn(&unseeded),
        "map-seeded cold step {} not cheaper than center-start {}",
        cold,
        conn(&unseeded)
    );
}

#[test]
fn store_drop_moves_holes_consistently() {
    // As the store drops, the hole it cuts in the backgrounds moves; the
    // IGBP census changes but stays in a sane band and never orphans badly.
    let mut cfg = store_case(0.3, 6);
    cfg.fc.dt = 0.04; // exaggerate the motion
    let r = run_case(&cfg, 16, &modern()).unwrap();
    assert!(r.state_rms.is_finite());
    let frac = r.orphans_last as f64 / r.igbps_last.max(1) as f64;
    assert!(frac < 0.05, "orphan fraction {frac}");
    assert!(r.igbps_last > 1000, "fringe census collapsed: {}", r.igbps_last);
}

#[test]
fn service_imbalance_is_a_store_phenomenon() {
    // The premise of Algorithm 2: the store system's donor-search service
    // load is much more imbalanced than the airfoil's.
    let a = run_case(&airfoil_case(0.5, 3), 6, &modern()).unwrap();
    let s = run_case(&store_case(0.4, 3), 16, &modern()).unwrap();
    assert!(s.f_max() > a.f_max(), "store f_max {} not above airfoil {}", s.f_max(), a.f_max());
}

#[test]
fn dynamic_scheme_reduces_measured_service_imbalance() {
    // After a repartition triggered by Algorithm 2, the measured f(p) of
    // the final step should not exceed the static scheme's.
    let nranks = 16;
    let mut dyn_cfg = store_case(0.4, 10);
    dyn_cfg.lb = overflow_d::LbConfig::dynamic(1.5, 3);
    let d = run_case(&dyn_cfg, nranks, &modern()).unwrap();
    let s = run_case(&store_case(0.4, 10), nranks, &modern()).unwrap();
    if d.repartitions > 0 {
        assert!(
            d.f_max() <= s.f_max() * 1.25,
            "dynamic did not tame imbalance: {} vs static {}",
            d.f_max(),
            s.f_max()
        );
    }
}
