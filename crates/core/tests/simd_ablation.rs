//! Driver-level SIMD ablation: `use_simd` selects the lane-batched AVX2
//! kernels for the implicit sweeps, the donor-search Newton inversions and
//! the hole-cutter containment tests. The batched kernels replay the scalar
//! operation order lane by lane, so turning them off may change host speed
//! only — states, walk outcomes, censuses and every virtual clock must be
//! bit-identical, in-process, under the M:N scheduler, and across the
//! multi-process transport.

use overflow_d::{airfoil_case, run_case, store_case, RunResult};
use overset_comm::{MachineModel, TransportConfig};

/// Everything that must not notice the instruction set: physics checksum,
/// global and per-phase virtual clocks, and the connectivity censuses.
fn assert_bit_identical(on: &RunResult, off: &RunResult, what: &str) {
    assert_eq!(
        on.state_rms.to_bits(),
        off.state_rms.to_bits(),
        "{what}: state diverged: {} vs {}",
        on.state_rms,
        off.state_rms
    );
    assert_eq!(on.wall_time.to_bits(), off.wall_time.to_bits(), "{what}: virtual time diverged");
    for (p, (a, b)) in on.phase_elapsed.iter().zip(&off.phase_elapsed).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: phase {p} time diverged");
    }
    assert_eq!(on.orphans_last, off.orphans_last, "{what}: orphan census diverged");
    assert_eq!(on.igbps_last, off.igbps_last, "{what}: fringe census diverged");
}

#[test]
fn simd_ablation_airfoil_bit_identical() {
    let mut cfg = airfoil_case(0.3, 8);
    cfg.use_simd = true;
    let on = run_case(&cfg, 8, &MachineModel::modern()).unwrap();
    cfg.use_simd = false;
    let off = run_case(&cfg, 8, &MachineModel::modern()).unwrap();
    assert_bit_identical(&on, &off, "airfoil");
}

#[test]
fn simd_ablation_store_bit_identical_under_mn_scheduler() {
    // 16 ranks multiplexed onto 4 worker threads: the ISA rides on per-rank
    // scratch (sweep scratch and connectivity arena), so rank migration
    // between polls must not perturb anything.
    let mut cfg = store_case(0.3, 3);
    cfg.max_threads = Some(4);
    cfg.use_simd = true;
    let on = run_case(&cfg, 16, &MachineModel::modern()).unwrap();
    cfg.use_simd = false;
    let off = run_case(&cfg, 16, &MachineModel::modern()).unwrap();
    assert_bit_identical(&on, &off, "m:n scheduler");
}

#[test]
fn simd_ablation_bit_identical_on_process_transport() {
    // The forked rank-group children each re-select the ISA from the case
    // config; serialization must not smuggle host-dependent state across.
    let machine = MachineModel::modern();
    let mut cfg = store_case(0.3, 3);
    cfg.transport =
        TransportConfig::process_for_test(2, "simd_ablation_bit_identical_on_process_transport");
    cfg.use_simd = true;
    let proc_on = run_case(&cfg, 16, &machine).unwrap();
    cfg.transport =
        TransportConfig::process_for_test(2, "simd_ablation_bit_identical_on_process_transport");
    cfg.use_simd = false;
    let proc_off = run_case(&cfg, 16, &machine).unwrap();
    assert_bit_identical(&proc_on, &proc_off, "proc transport");

    // Cross-transport: the SIMD-on case in-process must agree bit-for-bit.
    cfg.transport = TransportConfig::InProcess;
    cfg.use_simd = true;
    let inproc_on = run_case(&cfg, 16, &machine).unwrap();
    assert_bit_identical(&proc_on, &inproc_on, "proc vs in-process");
}
