//! Arena reset correctness under the hard cases: repartition steps (the
//! arena's buffers outlive a complete change of what the rank owns), the
//! M:N scheduler (ranks sharing OS threads migrate between polls with their
//! arenas in tow), and the multi-process transport (buffers round-tripped
//! through serialization instead of moved). In every mode the arena may
//! only recycle capacity — states, walk outcomes and virtual times must be
//! bit-identical with the arena disabled, and the deterministic allocation
//! counters must show the recycling actually happened.

use overflow_d::{airfoil_case, run_case, store_case, LbConfig, RunResult};
use overset_comm::{MachineModel, Phase, TransportConfig};

/// Connectivity-phase allocation count on the final (steady-state) step,
/// summed over ranks. Deterministic for a fixed configuration.
fn conn_allocs_last_step(r: &RunResult) -> u64 {
    r.alloc_records
        .iter()
        .filter_map(|recs| recs.last())
        .map(|a| a.allocs[Phase::Connectivity as usize])
        .sum()
}

/// Everything that must not notice the arena: physics checksum, global and
/// per-phase virtual clocks, and the connectivity censuses.
fn assert_bit_identical(on: &RunResult, off: &RunResult, what: &str) {
    assert_eq!(
        on.state_rms.to_bits(),
        off.state_rms.to_bits(),
        "{what}: state diverged: {} vs {}",
        on.state_rms,
        off.state_rms
    );
    assert_eq!(on.wall_time.to_bits(), off.wall_time.to_bits(), "{what}: virtual time diverged");
    for (p, (a, b)) in on.phase_elapsed.iter().zip(&off.phase_elapsed).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: phase {p} time diverged");
    }
    assert_eq!(on.orphans_last, off.orphans_last, "{what}: orphan census diverged");
    assert_eq!(on.igbps_last, off.igbps_last, "{what}: fringe census diverged");
}

#[test]
fn arena_survives_repartitions_bit_identically() {
    // Aggressive dynamic balancing: the partition — and with it every
    // rank's block shape, neighbor set and fringe — changes mid-run. The
    // arena's recycled buffers must carry zero information across that
    // boundary.
    let mut cfg = airfoil_case(0.3, 8);
    cfg.lb = LbConfig::dynamic(1.05, 2);
    cfg.use_arena = true;
    let on = run_case(&cfg, 8, &MachineModel::modern()).unwrap();
    cfg.use_arena = false;
    let off = run_case(&cfg, 8, &MachineModel::modern()).unwrap();

    assert!(on.repartitions >= 1, "case never repartitioned; the test lost its point");
    assert_eq!(on.repartitions, off.repartitions, "arena changed repartition decisions");
    assert_bit_identical(&on, &off, "repartition");

    let (a_on, a_off) = (conn_allocs_last_step(&on), conn_allocs_last_step(&off));
    assert!(a_on < a_off, "arena recycled nothing after repartition: {a_on} vs {a_off}");
}

#[test]
fn arena_bit_identical_under_mn_scheduler() {
    // 16 ranks multiplexed onto 4 worker threads: arenas are owned by
    // ranks, not threads, so scheduling must not perturb anything.
    let mut cfg = store_case(0.3, 3);
    cfg.max_threads = Some(4);
    cfg.use_arena = true;
    let on = run_case(&cfg, 16, &MachineModel::modern()).unwrap();
    cfg.use_arena = false;
    let off = run_case(&cfg, 16, &MachineModel::modern()).unwrap();
    assert_bit_identical(&on, &off, "m:n scheduler");
    let (a_on, a_off) = (conn_allocs_last_step(&on), conn_allocs_last_step(&off));
    assert!(a_on < a_off, "arena recycled nothing under M:N: {a_on} vs {a_off}");

    // And the M:N run must match the one-thread-per-rank run bit-for-bit,
    // arena on — allocation counters included (they are deterministic).
    let mut cfg2 = store_case(0.3, 3);
    cfg2.max_threads = None;
    cfg2.use_arena = true;
    let plain = run_case(&cfg2, 16, &MachineModel::modern()).unwrap();
    assert_bit_identical(&on, &plain, "m:n vs 1:1");
    assert_eq!(
        conn_allocs_last_step(&on),
        conn_allocs_last_step(&plain),
        "alloc counters depend on the scheduler"
    );
}

#[test]
fn arena_bit_identical_on_process_transport() {
    // The multi-process backend serializes every message, so the pooled
    // buffers the protocol round-trips come back as fresh decodes instead
    // of moved vectors. The pools must stay balanced — and the physics
    // bit-identical — all the same. (The process-backed runs go first: the
    // forked rank-group children re-execute this test and must reach their
    // own `establish` without replaying the in-process runs.)
    let machine = MachineModel::modern();
    let mut cfg = store_case(0.3, 3);
    cfg.transport =
        TransportConfig::process_for_test(2, "arena_bit_identical_on_process_transport");
    cfg.use_arena = true;
    let proc_on = run_case(&cfg, 16, &machine).unwrap();
    cfg.transport =
        TransportConfig::process_for_test(2, "arena_bit_identical_on_process_transport");
    cfg.use_arena = false;
    let proc_off = run_case(&cfg, 16, &machine).unwrap();
    assert_bit_identical(&proc_on, &proc_off, "proc transport");
    let (a_on, a_off) = (conn_allocs_last_step(&proc_on), conn_allocs_last_step(&proc_off));
    assert!(a_on < a_off, "arena recycled nothing on proc transport: {a_on} vs {a_off}");

    // Cross-transport: same arena-on case in-process must agree bit-for-bit.
    cfg.transport = TransportConfig::InProcess;
    cfg.use_arena = true;
    let inproc_on = run_case(&cfg, 16, &machine).unwrap();
    assert_bit_identical(&proc_on, &inproc_on, "proc vs in-process");
}
