//! End-to-end integration tests spanning the whole stack: grids, balancer,
//! solver, connectivity, motion, driver.

use overflow_d::{airfoil_case, delta_wing_case, run_case, run_case_serial, store_case, LbConfig};
use overset_comm::MachineModel;

fn modern() -> MachineModel {
    MachineModel::modern()
}

#[test]
fn airfoil_runs_clean_on_many_rank_counts() {
    for nranks in [3usize, 6, 10] {
        let cfg = airfoil_case(0.3, 4);
        let r = run_case(&cfg, nranks, &modern()).unwrap();
        assert_eq!(r.orphans_last, 0, "orphans at {nranks} ranks");
        assert!(r.state_rms.is_finite() && r.state_rms > 0.0);
        assert!(r.wall_time > 0.0);
        assert!(r.igbps_last > 0);
    }
}

#[test]
fn physics_is_independent_of_rank_count() {
    // Implicitness is maintained across subdomains (pipelined Thomas), so
    // the solution trajectory must not depend on the decomposition.
    let rms: Vec<f64> = [3usize, 6, 12]
        .iter()
        .map(|&n| run_case(&airfoil_case(0.3, 5), n, &modern()).unwrap().state_rms)
        .collect();
    for w in rms.windows(2) {
        let rel = (w[0] - w[1]).abs() / w[0];
        assert!(rel < 1e-9, "state differs across rank counts: {rms:?}");
    }
}

#[test]
fn parallel_matches_serial_physics() {
    let par = run_case(&airfoil_case(0.3, 5), 6, &modern()).unwrap();
    let ser = run_case_serial(&airfoil_case(0.3, 5), &MachineModel::cray_ymp()).unwrap();
    // Serial and distributed connectivity resolve fringe points in
    // different orders (a donor may or may not see a neighbour's
    // already-updated fringe), so agreement is close but not bitwise.
    let rel = (par.state_rms - ser.state_rms).abs() / ser.state_rms;
    assert!(rel < 1e-4, "parallel {} vs serial {} (rel {rel})", par.state_rms, ser.state_rms);
}

#[test]
fn virtual_time_is_deterministic() {
    let a = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp2()).unwrap();
    let b = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp2()).unwrap();
    assert_eq!(a.wall_time.to_bits(), b.wall_time.to_bits());
    assert_eq!(a.state_rms.to_bits(), b.state_rms.to_bits());
    assert_eq!(a.serviced_last, b.serviced_last);
}

#[test]
fn faster_machine_is_faster_same_physics() {
    let sp2 = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp2()).unwrap();
    let sp = run_case(&airfoil_case(0.3, 3), 6, &MachineModel::ibm_sp()).unwrap();
    assert!(sp.wall_time < sp2.wall_time);
    assert_eq!(sp.state_rms.to_bits(), sp2.state_rms.to_bits());
}

#[test]
fn moving_grid_connectivity_stays_resolved() {
    // Run long enough that the airfoil rotates appreciably; connectivity
    // must stay fully resolved and the state physical.
    let cfg = airfoil_case(0.3, 15);
    let r = run_case(&cfg, 6, &modern()).unwrap();
    assert_eq!(r.orphans_last, 0);
    assert!(r.state_rms.is_finite());
}

#[test]
fn dynamic_lb_repartitions_and_preserves_physics() {
    let mut cfg = airfoil_case(0.3, 8);
    cfg.lb = LbConfig::dynamic(1.05, 2); // aggressive: force repartitions
    let dynamic = run_case(&cfg, 8, &modern()).unwrap();
    let mut cfg2 = airfoil_case(0.3, 8);
    cfg2.lb = LbConfig::static_only();
    let static_ = run_case(&cfg2, 8, &modern()).unwrap();
    // With such a tight threshold the scheme should have acted at least once.
    assert!(
        dynamic.repartitions >= 1,
        "no repartition despite f_o = 1.05 (f_max = {})",
        dynamic.f_max()
    );
    assert_eq!(dynamic.np_final.iter().sum::<usize>(), 8);
    // Physics must survive redistribution bit-for-bit in structure (finite,
    // same magnitude as the static run).
    // Repartitioning changes connectivity resolution order slightly; the
    // state must agree closely (bitwise equality is not expected).
    let rel = (dynamic.state_rms - static_.state_rms).abs() / static_.state_rms;
    assert!(rel < 1e-5, "redistribution corrupted the state: rel {rel}");
}

#[test]
fn delta_wing_reduced_scale_runs() {
    let cfg = delta_wing_case(0.25, 2);
    let r = run_case(&cfg, 7, &modern()).unwrap();
    assert!(r.state_rms.is_finite());
    // Small-scale 3-D geometry leaves a few gap points; they must be rare.
    let frac = r.orphans_last as f64 / r.igbps_last.max(1) as f64;
    assert!(frac < 0.05, "orphan fraction {frac}");
}

#[test]
fn store_reduced_scale_runs_with_motion() {
    let cfg = store_case(0.3, 3);
    let r = run_case(&cfg, 16, &modern()).unwrap();
    assert!(r.state_rms.is_finite());
    let frac = r.orphans_last as f64 / r.igbps_last.max(1) as f64;
    assert!(frac < 0.05, "orphan fraction {frac}");
    // The store case is connectivity-heavy: measured service imbalance
    // exists (the paper's premise for the dynamic scheme).
    assert!(r.f_max() > 1.2, "no service imbalance measured");
}

#[test]
fn igbp_ratio_ladder_matches_paper_ordering() {
    // The store case has the largest IGBP/gridpoint ratio — the paper's
    // reason it is "a good candidate to evaluate the dynamic load balance
    // scheme". Measured at moderate scale.
    let ratio = |r: &overflow_d::RunResult| r.igbps_last as f64 / r.total_points as f64;
    let airfoil = run_case(&airfoil_case(0.5, 1), 3, &modern()).unwrap();
    let store = run_case(&store_case(0.5, 1), 16, &modern()).unwrap();
    assert!(
        ratio(&store) > 2.0 * ratio(&airfoil),
        "store ratio {} not >> airfoil ratio {}",
        ratio(&store),
        ratio(&airfoil)
    );
}

#[test]
fn connectivity_fraction_grows_with_rank_count() {
    // Table 1's rightmost column: %DCF3D grows as ranks increase (the
    // connectivity solution scales worse than the flow solution).
    let lo = run_case(&airfoil_case(0.6, 8), 6, &MachineModel::ibm_sp2()).unwrap();
    let hi = run_case(&airfoil_case(0.6, 8), 24, &MachineModel::ibm_sp2()).unwrap();
    assert!(
        hi.connectivity_fraction() > lo.connectivity_fraction(),
        "%DCF3D did not grow: {} -> {}",
        lo.connectivity_fraction(),
        hi.connectivity_fraction()
    );
}

#[test]
fn speedup_is_substantial_but_sublinear() {
    let t6 = run_case(&airfoil_case(0.6, 8), 6, &MachineModel::ibm_sp2()).unwrap().time_per_step();
    let t24 =
        run_case(&airfoil_case(0.6, 8), 24, &MachineModel::ibm_sp2()).unwrap().time_per_step();
    let speedup = t6 / t24;
    // Mildly super-linear speedup is possible (the cache model reproduces
    // the paper's "super scalar speedups"); wildly off means a bug.
    assert!((1.8..4.8).contains(&speedup), "6->24 rank speedup out of band: {speedup}");
}

#[test]
fn sixdof_store_falls_and_is_rank_independent() {
    // The 6-DOF-coupled store case: the body must drop under gravity +
    // ejector and the replicated rigid-body state must keep physics
    // identical across rank counts (the loads allreduce is deterministic).
    let run = |n: usize| {
        let mut cfg = overflow_d::store_case_sixdof(0.3, 4);
        cfg.collect_state = true;
        run_case(&cfg, n, &modern()).unwrap()
    };
    let a = run(16);
    let b = run(20);
    assert!(a.state_rms.is_finite());
    // The aerodynamic-load allreduce sums panel contributions grouped by
    // rank; different decompositions reassociate the floating-point sum, so
    // 6-DOF trajectories agree closely but not bitwise (unlike the purely
    // local physics, which is exactly rank-independent).
    let rel = (a.state_rms - b.state_rms).abs() / a.state_rms;
    assert!(rel < 1e-3, "6-DOF physics rank-dependent: rel {rel}");
    // The store grids moved (hole fringe positions shifted): compare the
    // final solids implicitly via orphan-free connectivity.
    let frac = a.orphans_last as f64 / a.igbps_last.max(1) as f64;
    assert!(frac < 0.05, "orphan fraction {frac}");
}

#[test]
fn sixdof_perf_close_to_prescribed() {
    // The paper: free motion computes "with negligible change in the
    // parallel performance". Compare virtual time per step.
    let pres = run_case(&overflow_d::store_case(0.3, 4), 16, &MachineModel::ibm_sp2()).unwrap();
    let free =
        run_case(&overflow_d::store_case_sixdof(0.3, 4), 16, &MachineModel::ibm_sp2()).unwrap();
    let ratio = free.time_per_step() / pres.time_per_step();
    assert!((0.9..1.15).contains(&ratio), "6-DOF cost ratio {ratio} not negligible");
}
