//! Scheduler-mode integration tests: the M:N virtual-rank scheduler must
//! reproduce the rank-per-thread results bit-for-bit, scale to rank counts
//! far past the host's cores, and surface rank panics as errors instead of
//! hangs.

use overflow_d::{run_case, store_case};
use overset_comm::{MachineModel, OversetError};

/// Full-driver determinism across scheduler modes: the same store-separation
/// case run 1:1 and M:N must agree on every virtual-time observable, not
/// just complete.
#[test]
fn store_case_clocks_identical_across_scheduler_modes() {
    let machine = MachineModel::ibm_sp2();
    let nranks = 24;
    let mut cfg = store_case(0.3, 2);
    let one_to_one = run_case(&cfg, nranks, &machine).expect("1:1 run failed");
    cfg.max_threads = Some(4);
    let mn = run_case(&cfg, nranks, &machine).expect("M:N run failed");
    assert_eq!(one_to_one.wall_time.to_bits(), mn.wall_time.to_bits());
    assert_eq!(one_to_one.state_rms.to_bits(), mn.state_rms.to_bits());
    assert_eq!(one_to_one.serviced_last, mn.serviced_last);
    assert_eq!(one_to_one.np_final, mn.np_final);
    for (a, b) in one_to_one.rank_stats.iter().zip(&mn.rank_stats) {
        assert_eq!(
            a.final_clock.to_bits(),
            b.final_clock.to_bits(),
            "rank {} clock differs between scheduler modes",
            a.rank
        );
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.collectives, b.collectives);
    }
}

/// The ISSUE's scale target: a 512-virtual-rank store-separation universe
/// completes on at most 8 OS threads. Expensive, so ignored by default;
/// `scripts/check.sh` runs it in release.
#[test]
#[ignore = "512-rank smoke; run explicitly (scripts/check.sh does, in release)"]
fn store_case_512_virtual_ranks_on_8_threads() {
    let machine = MachineModel::ibm_sp2();
    let mut cfg = store_case(0.3, 2);
    cfg.max_threads = Some(8);
    let r = run_case(&cfg, 512, &machine).expect("512-rank M:N run failed");
    assert_eq!(r.nranks, 512);
    assert_eq!(r.rank_stats.len(), 512);
    assert!(r.wall_time > 0.0);
    assert!(r.state_rms.is_finite() && r.state_rms > 0.0);
}

/// A panic inside a rank body must come back as `RankPanicked` naming the
/// rank and phase — not hang the universe or abort the process. Driven
/// through the raw runtime with a store-sized rank count.
#[test]
fn rank_panic_is_reported_not_hung() {
    use overset_comm::{Phase, Universe};
    let err = Universe::builder().ranks(16).machine(&MachineModel::ibm_sp2()).try_run(|c| {
        if c.rank() == 11 {
            let _ph = c.phase(Phase::Flow);
            panic!("synthetic solver blowup");
        }
        // Everyone else is blocked on a collective the dead rank never
        // reaches.
        c.barrier();
    });
    match err {
        Err(OversetError::RankPanicked { rank, phase, message }) => {
            assert_eq!(rank, 11);
            assert_eq!(phase, "flow");
            assert!(message.contains("synthetic solver blowup"), "{message}");
        }
        other => panic!("expected RankPanicked, got {other:?}"),
    }
}
