//! The benchmark harness of the OVERFLOW-D reproduction: one entry point
//! per table and figure of the paper's evaluation (Section 4) plus the
//! design-choice ablations listed in DESIGN.md. The `repro` binary drives
//! these from the command line.

pub mod amr_experiments;
pub mod analyze;
pub mod experiments;
pub mod report;

pub use experiments::{Effort, PerfRow};
