//! `repro report` / `repro compare`: machine-readable run reports and the
//! perf-regression verdict (schema v1, see `overset-report`).
//!
//! A report always carries two runs: the experiment family's
//! *representative* case (the same one `--trace` uses) and a *dynamic-LB*
//! store-separation run, so every report exercises Algorithm 2's
//! repartition path regardless of which experiment was asked for. When the
//! representative case already is the dynamic store run (the table5
//! family), the extra run is skipped.

use crate::experiments::{tuned, Effort};
use overflow_d::{
    airfoil_case, delta_wing_case, run_case, store_case, CaseConfig, LbConfig, RunResult,
};
use overset_comm::trace::TraceConfig;
use overset_comm::{MachineModel, NUM_PHASES};
use overset_report::json::obj;
use overset_report::{case_report, run_report, Value};

/// The experiment family's representative case and node count — the same
/// mapping `traced_run` uses.
pub fn representative_case(which: &str, e: Effort) -> (CaseConfig, usize) {
    let (cfg, nodes) = match which {
        "table3" | "fig7" => (delta_wing_case(e.scale3d, e.steps3d), 7),
        "table4" | "fig10" | "table6" | "ablate-sixdof" | "scaling" => {
            (store_case(e.scale3d, e.steps3d), 16)
        }
        "table5" | "fig11" | "ablate-fo" => (dynamic_store_case(e), DYN_NODES),
        _ => (airfoil_case(e.scale2d, e.steps2d), 6),
    };
    (tuned(cfg, e), nodes)
}

/// Node count for the dynamic-LB store run. Must exceed the store system's
/// 16 grids: at exactly one processor per grid, Algorithm 2 can never
/// honour a grant (every other grid must keep >= 1 processor), so no
/// repartition would ever fire.
const DYN_NODES: usize = 18;

/// The dynamic-load-balance store run included in every report: f_o = 3
/// (the table5 threshold), checked every 4 steps, long enough to cross the
/// first check interval even at `--quick` effort.
fn dynamic_store_case(e: Effort) -> CaseConfig {
    let mut c = tuned(store_case(e.scale3d, e.steps3d.max(10)), e);
    c.lb = LbConfig::dynamic(3.0, 4);
    c
}

/// Run the report's cases and assemble the schema-v1 document. Everything
/// except the `host` section is virtual-time deterministic.
pub fn build_report(which: &str, e: Effort, effort_name: &str, trace: TraceConfig) -> Value {
    build_report_inner(which, e, effort_name, trace, 1)
}

/// `repro bench-host`: like [`build_report`] but each case is run `repeats`
/// times and the host phase timings (max over ranks) are summarized as
/// median/IQR per phase in `host.bench.{label}.{phase}`. `repro compare`
/// gates on those medians with an IQR-derived tolerance — the noise-aware
/// host gate — when both sides carry a bench section.
pub fn build_report_host_bench(which: &str, e: Effort, effort_name: &str, repeats: usize) -> Value {
    build_report_inner(which, e, effort_name, TraceConfig::disabled(), repeats.max(1))
}

fn build_report_inner(
    which: &str,
    e: Effort,
    effort_name: &str,
    trace: TraceConfig,
    repeats: usize,
) -> Value {
    let machine = MachineModel::ibm_sp2();
    let (mut rep_cfg, rep_nodes) = representative_case(which, e);
    rep_cfg.trace = trace;
    let mut runs: Vec<(&str, CaseConfig, usize)> = vec![("representative", rep_cfg, rep_nodes)];
    if !rep_cfg_is_dynamic(which) {
        runs.push(("dynamic-lb", dynamic_store_case(e), DYN_NODES));
    }

    let mut cases = Vec::with_capacity(runs.len());
    let mut host_cases: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut host_phases: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut host_by_rank: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut host_medians: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut alloc_peaks: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut host_bench: Vec<(String, Value)> = Vec::new();
    let t_total = std::time::Instant::now();
    for (label, cfg, nodes) in runs {
        let t0 = std::time::Instant::now();
        let r: RunResult = run_case(&cfg, nodes, &machine).expect("report case run failed");
        host_cases.push((label.to_string(), Value::Num(t0.elapsed().as_secs_f64())));
        host_phases.push((label.to_string(), host_phase_ms(&r.host_phase_elapsed)));
        host_by_rank.push((
            label.to_string(),
            Value::Arr(r.host_phase_by_rank.iter().map(host_phase_ms).collect()),
        ));
        host_medians.push((label.to_string(), host_phase_ms(&median_over_ranks(&r))));
        let peak = r.alloc_by_rank.iter().map(|a| a.peak_bytes).max().unwrap_or(0);
        alloc_peaks.push((label.to_string(), Value::Num(peak as f64)));
        cases.push(case_report(label, &cfg, machine.name, &r));
        if repeats > 1 {
            let mut samples: Vec<[f64; NUM_PHASES]> = vec![r.host_phase_elapsed];
            for _ in 1..repeats {
                let rr = run_case(&cfg, nodes, &machine).expect("bench-host repeat failed");
                samples.push(rr.host_phase_elapsed);
            }
            host_bench.push((label.to_string(), bench_value(&samples)));
        }
    }
    let mut host = vec![
        ("wall_seconds".to_string(), Value::Obj(host_cases)),
        ("phase_ms".to_string(), Value::Obj(host_phases)),
        ("phase_ms_by_rank".to_string(), Value::Obj(host_by_rank)),
        ("phase_ms_median".to_string(), Value::Obj(host_medians)),
        ("alloc_peak_bytes".to_string(), Value::Obj(alloc_peaks)),
    ];
    if !host_bench.is_empty() {
        host.push(("bench".to_string(), Value::Obj(host_bench)));
    }
    host.push(("total_seconds".to_string(), Value::Num(t_total.elapsed().as_secs_f64())));
    run_report(which, effort_name, cases, Some(Value::Obj(host)))
}

/// Host wall-clock milliseconds per phase (max over ranks) — the runtime's
/// `Instant`-based timers, folded into the report's advisory `host` section.
/// `repro compare` notes large drifts here but never gates on them (the
/// repeated-run `host.bench` section is the one host gate; see
/// [`build_report_host_bench`]).
fn host_phase_ms(elapsed: &[f64; NUM_PHASES]) -> Value {
    Value::Obj(
        overset_analysis::PHASE_NAMES
            .iter()
            .zip(elapsed.iter())
            .map(|(name, &secs)| (name.to_string(), Value::Num(secs * 1e3)))
            .collect(),
    )
}

/// Per-phase median over ranks of the host phase timers — pairs with the
/// max-over-ranks `phase_ms` so `compare`'s drift note can tell a single
/// straggler rank apart from a fleet-wide slowdown.
fn median_over_ranks(r: &RunResult) -> [f64; NUM_PHASES] {
    let mut out = [0.0; NUM_PHASES];
    for (p, slot) in out.iter_mut().enumerate() {
        let mut v: Vec<f64> = r.host_phase_by_rank.iter().map(|t| t[p]).collect();
        v.sort_by(f64::total_cmp);
        *slot = quantile_nearest(&v, 0.5);
    }
    out
}

/// Nearest-rank quantile of a sorted non-empty slice.
fn quantile_nearest(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Summarize repeated host phase timings as `{phase: {median_ms, iqr_ms,
/// repeats}}`. Median and quartiles use the nearest-rank method, so every
/// reported number is one of the measured samples.
fn bench_value(samples: &[[f64; NUM_PHASES]]) -> Value {
    Value::Obj(
        overset_analysis::PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(p, name)| {
                let mut v: Vec<f64> = samples.iter().map(|s| s[p] * 1e3).collect();
                v.sort_by(f64::total_cmp);
                let median = quantile_nearest(&v, 0.5);
                let iqr = quantile_nearest(&v, 0.75) - quantile_nearest(&v, 0.25);
                (
                    name.to_string(),
                    obj(vec![
                        ("median_ms", Value::Num(median)),
                        ("iqr_ms", Value::Num(iqr)),
                        ("repeats", Value::Num(samples.len() as f64)),
                    ]),
                )
            })
            .collect(),
    )
}

fn rep_cfg_is_dynamic(which: &str) -> bool {
    matches!(which, "table5" | "fig11" | "ablate-fo")
}

/// `repro compare` entry point: parse both documents, compare, print the
/// verdict. Returns the process exit code (0 pass, 1 regression, 2 error).
pub fn compare_reports(baseline_path: &str, new_path: &str, tol_pct: f64) -> i32 {
    let read = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        overset_report::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (read(baseline_path), read(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match overset_report::compare(&base, &new, tol_pct) {
        Ok(out) => {
            for note in &out.notes {
                eprintln!("note: {note}");
            }
            if out.passed() {
                println!("PASS: {} metric(s) within {tol_pct}% of {baseline_path}", out.checked);
                0
            } else {
                println!(
                    "FAIL: {} regression(s) vs {baseline_path} (tolerance {tol_pct}%):",
                    out.regressions.len()
                );
                for r in &out.regressions {
                    println!("  {}", r.describe());
                }
                1
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}
