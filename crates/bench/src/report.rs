//! `repro report` / `repro compare`: machine-readable run reports and the
//! perf-regression verdict (schema v1, see `overset-report`).
//!
//! A report always carries two runs: the experiment family's
//! *representative* case (the same one `--trace` uses) and a *dynamic-LB*
//! store-separation run, so every report exercises Algorithm 2's
//! repartition path regardless of which experiment was asked for. When the
//! representative case already is the dynamic store run (the table5
//! family), the extra run is skipped.

use crate::experiments::{tuned, Effort};
use overflow_d::{
    airfoil_case, delta_wing_case, run_case, store_case, CaseConfig, LbConfig, RunResult,
};
use overset_comm::trace::TraceConfig;
use overset_comm::MachineModel;
use overset_report::json::obj;
use overset_report::{case_report, run_report, Value};

/// The experiment family's representative case and node count — the same
/// mapping `traced_run` uses.
pub fn representative_case(which: &str, e: Effort) -> (CaseConfig, usize) {
    let (cfg, nodes) = match which {
        "table3" | "fig7" => (delta_wing_case(e.scale3d, e.steps3d), 7),
        "table4" | "fig10" | "table6" | "ablate-sixdof" | "scaling" => {
            (store_case(e.scale3d, e.steps3d), 16)
        }
        "table5" | "fig11" | "ablate-fo" => (dynamic_store_case(e), DYN_NODES),
        _ => (airfoil_case(e.scale2d, e.steps2d), 6),
    };
    (tuned(cfg, e), nodes)
}

/// Node count for the dynamic-LB store run. Must exceed the store system's
/// 16 grids: at exactly one processor per grid, Algorithm 2 can never
/// honour a grant (every other grid must keep >= 1 processor), so no
/// repartition would ever fire.
const DYN_NODES: usize = 18;

/// The dynamic-load-balance store run included in every report: f_o = 3
/// (the table5 threshold), checked every 4 steps, long enough to cross the
/// first check interval even at `--quick` effort.
fn dynamic_store_case(e: Effort) -> CaseConfig {
    let mut c = tuned(store_case(e.scale3d, e.steps3d.max(10)), e);
    c.lb = LbConfig::dynamic(3.0, 4);
    c
}

/// Run the report's cases and assemble the schema-v1 document. Everything
/// except the `host` section is virtual-time deterministic.
pub fn build_report(which: &str, e: Effort, effort_name: &str, trace: TraceConfig) -> Value {
    let machine = MachineModel::ibm_sp2();
    let (mut rep_cfg, rep_nodes) = representative_case(which, e);
    rep_cfg.trace = trace;
    let mut runs: Vec<(&str, CaseConfig, usize)> = vec![("representative", rep_cfg, rep_nodes)];
    if !rep_cfg_is_dynamic(which) {
        runs.push(("dynamic-lb", dynamic_store_case(e), DYN_NODES));
    }

    let mut cases = Vec::with_capacity(runs.len());
    let mut host_cases: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let mut host_phases: Vec<(String, Value)> = Vec::with_capacity(runs.len());
    let t_total = std::time::Instant::now();
    for (label, cfg, nodes) in runs {
        let t0 = std::time::Instant::now();
        let r: RunResult = run_case(&cfg, nodes, &machine).expect("report case run failed");
        host_cases.push((label.to_string(), Value::Num(t0.elapsed().as_secs_f64())));
        host_phases.push((label.to_string(), host_phase_ms(&r.host_phase_elapsed)));
        cases.push(case_report(label, &cfg, machine.name, &r));
    }
    let host = obj(vec![
        ("wall_seconds", Value::Obj(host_cases)),
        ("phase_ms", Value::Obj(host_phases)),
        ("total_seconds", Value::Num(t_total.elapsed().as_secs_f64())),
    ]);
    run_report(which, effort_name, cases, Some(host))
}

/// Host wall-clock milliseconds per phase (max over ranks) — the runtime's
/// `Instant`-based timers, folded into the report's advisory `host` section.
/// `repro compare` notes large drifts here but never gates on them.
fn host_phase_ms(elapsed: &[f64; overset_comm::NUM_PHASES]) -> Value {
    Value::Obj(
        overset_analysis::PHASE_NAMES
            .iter()
            .zip(elapsed.iter())
            .map(|(name, &secs)| (name.to_string(), Value::Num(secs * 1e3)))
            .collect(),
    )
}

fn rep_cfg_is_dynamic(which: &str) -> bool {
    matches!(which, "table5" | "fig11" | "ablate-fo")
}

/// `repro compare` entry point: parse both documents, compare, print the
/// verdict. Returns the process exit code (0 pass, 1 regression, 2 error).
pub fn compare_reports(baseline_path: &str, new_path: &str, tol_pct: f64) -> i32 {
    let read = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        overset_report::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (read(baseline_path), read(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match overset_report::compare(&base, &new, tol_pct) {
        Ok(out) => {
            for note in &out.notes {
                eprintln!("note: {note}");
            }
            if out.passed() {
                println!("PASS: {} metric(s) within {tol_pct}% of {baseline_path}", out.checked);
                0
            } else {
                println!(
                    "FAIL: {} regression(s) vs {baseline_path} (tolerance {tol_pct}%):",
                    out.regressions.len()
                );
                for r in &out.regressions {
                    println!("  {}", r.describe());
                }
                1
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}
