//! The experiment harness: one function per table / figure of the paper,
//! each printing the same rows or series the paper reports.
//!
//! Absolute numbers come from the virtual-time machine models (DESIGN.md
//! §2); the *shapes* — who wins, by what factor, where the curves bend —
//! are the reproduction targets. EXPERIMENTS.md records paper-vs-measured
//! values for every run.

use overflow_d::{
    airfoil_case, delta_wing_case, run_case, run_case_serial, store_case, CaseConfig, LbConfig,
    RunResult,
};
use overset_comm::trace::TraceConfig;
use overset_comm::{MachineModel, Phase, TransportConfig};

/// Global experiment scaling knobs.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// Geometric scale of the 3-D cases (1.0 = paper size).
    pub scale3d: f64,
    /// Geometric scale of the airfoil case.
    pub scale2d: f64,
    /// Timesteps per run (the paper averages long runs; the cold first-step
    /// connectivity solve amortizes over this many steps).
    pub steps2d: usize,
    pub steps3d: usize,
    /// Bound on the OS threads executing the ranks (`--max-threads`).
    /// `None`: one thread per rank; `Some(n)`: the comm runtime multiplexes
    /// the ranks onto `n` workers (M:N mode). Virtual times are bit-identical
    /// either way, so every table is unaffected — this only caps host load.
    pub max_threads: Option<usize>,
    /// Inverse-map acceleration (`--no-inverse-map` clears it): seeded cold
    /// walks, occupancy-pruned candidates, masked hole cutting. Answers are
    /// identical either way; only the work (and so the virtual time) moves.
    pub use_inverse_map: bool,
    /// Persistent connectivity arena (`--no-arena` clears it): per-rank
    /// step-scoped scratch that keeps its capacity across steps. The same
    /// code path runs either way — states, walk outcomes and virtual times
    /// are bit-identical; only host-side allocation counts change.
    pub use_arena: bool,
    /// Incremental inverse-map pose advance (`--no-incremental-invmap`
    /// clears it): small rigid motions compose into the map's pose instead
    /// of triggering a full lattice rebuild. Answers are identical; the
    /// virtual time honestly reflects the cheaper update.
    pub use_incremental_invmap: bool,
    /// Lane-batched SIMD compute kernels (`--no-simd` clears it): the line
    /// sweeps, donor Newton walks and hole containment tests run through the
    /// host's AVX2 units when available. The *same* batched code runs either
    /// way — states, walk outcomes and virtual times are bit-identical; only
    /// host wall-clock changes.
    pub use_simd: bool,
    /// Process-transport group count (`--transport proc[:N]`). `None`
    /// (default, `--transport inproc`): ranks as threads in this process.
    /// `Some(n)`: ranks split across `n` forked rank-group processes.
    /// Virtual times are bit-identical either way (`repro smoke` proves it).
    /// Sweeps pay quadratic replay cost (each forked child re-runs the
    /// sweep's earlier universes in-process to reach its own), so expect
    /// multi-case runs to be severalfold slower than `inproc`.
    pub proc_groups: Option<usize>,
    /// Test hook (`--inject-alloc <bytes>`): each rank makes one synthetic
    /// heap allocation of this many bytes per timestep inside the
    /// connectivity phase. Physics- and virtual-time-neutral; exists so the
    /// exact alloc gate in `repro compare` can be exercised end to end.
    pub inject_alloc: usize,
}

impl Effort {
    pub fn full() -> Self {
        Effort {
            scale3d: 1.0,
            scale2d: 1.0,
            steps2d: 20,
            steps3d: 12,
            max_threads: None,
            use_inverse_map: true,
            use_arena: true,
            use_incremental_invmap: true,
            use_simd: true,
            proc_groups: None,
            inject_alloc: 0,
        }
    }

    /// Reduced effort for CI / quick runs.
    pub fn quick() -> Self {
        Effort {
            scale3d: 0.55,
            scale2d: 0.6,
            steps2d: 10,
            steps3d: 5,
            max_threads: None,
            use_inverse_map: true,
            use_arena: true,
            use_incremental_invmap: true,
            use_simd: true,
            proc_groups: None,
            inject_alloc: 0,
        }
    }
}

/// Apply the effort's scheduler bound, feature toggles and transport to a
/// case config — the single place CLI flags become configuration.
pub(crate) fn tuned(mut cfg: CaseConfig, e: Effort) -> CaseConfig {
    cfg.max_threads = e.max_threads;
    cfg.use_inverse_map = e.use_inverse_map;
    cfg.use_arena = e.use_arena;
    cfg.use_incremental_invmap = e.use_incremental_invmap;
    cfg.use_simd = e.use_simd;
    cfg.transport = match e.proc_groups {
        None => TransportConfig::InProcess,
        Some(n) => TransportConfig::process(n),
    };
    cfg.inject_alloc = e.inject_alloc;
    cfg
}

fn sp2() -> MachineModel {
    MachineModel::ibm_sp2()
}

fn sp() -> MachineModel {
    MachineModel::ibm_sp()
}

/// One measured row of a performance table.
#[derive(Clone, Debug)]
pub struct PerfRow {
    pub nodes: usize,
    pub points_per_node: usize,
    pub mflops_per_node: [f64; 2], // SP2, SP
    pub speedup: [f64; 2],
    pub dcf3d_pct: [f64; 2],
    pub time_per_step: [f64; 2],
    /// Per-module elapsed times per step (flow, connectivity), per machine.
    pub flow_elapsed: [f64; 2],
    pub conn_elapsed: [f64; 2],
}

/// Run a case across node counts on both machines.
pub fn sweep(cfg_for: impl Fn() -> CaseConfig, nodes: &[usize]) -> Vec<PerfRow> {
    let machines = [sp2(), sp()];
    let mut rows = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let mut row = PerfRow {
            nodes: n,
            points_per_node: 0,
            mflops_per_node: [0.0; 2],
            speedup: [0.0; 2],
            dcf3d_pct: [0.0; 2],
            time_per_step: [0.0; 2],
            flow_elapsed: [0.0; 2],
            conn_elapsed: [0.0; 2],
        };
        for (mi, m) in machines.iter().enumerate() {
            let cfg = cfg_for();
            let r = run_case(&cfg, n, m).unwrap();
            row.points_per_node = r.total_points / n;
            row.mflops_per_node[mi] = r.mflops_per_node();
            row.dcf3d_pct[mi] = 100.0 * r.connectivity_fraction();
            row.time_per_step[mi] = r.time_per_step();
            // Exact per-phase elapsed (max over ranks), not the per-rank mean.
            row.flow_elapsed[mi] = r.summary.phase_time(Phase::Flow) / r.steps as f64;
            row.conn_elapsed[mi] = r.summary.phase_time(Phase::Connectivity) / r.steps as f64;
        }
        rows.push(row);
    }
    // Speedups relative to the smallest node count.
    for mi in 0..2 {
        let base = rows[0].time_per_step[mi] * rows[0].nodes as f64 / rows[0].nodes as f64;
        let _ = base;
        let t0 = rows[0].time_per_step[mi];
        for row in rows.iter_mut() {
            row.speedup[mi] = t0 / row.time_per_step[mi];
        }
    }
    rows
}

pub fn print_perf_table(title: &str, rows: &[PerfRow]) {
    println!("\n== {title} ==");
    println!(
        "{:>6} {:>12} | {:>9} {:>9} | {:>8} {:>8} | {:>9} {:>9}",
        "Nodes", "Pts/node", "Mf/n SP2", "Mf/n SP", "Spd SP2", "Spd SP", "%DCF SP2", "%DCF SP"
    );
    for r in rows {
        println!(
            "{:>6} {:>12} | {:>9.1} {:>9.1} | {:>8.2} {:>8.2} | {:>8.1}% {:>8.1}%",
            r.nodes,
            r.points_per_node,
            r.mflops_per_node[0],
            r.mflops_per_node[1],
            r.speedup[0],
            r.speedup[1],
            r.dcf3d_pct[0],
            r.dcf3d_pct[1]
        );
    }
}

/// Per-module speedup series (the paper's Figs. 5 / 7 / 10).
pub fn print_module_speedups(title: &str, rows: &[PerfRow]) {
    println!("\n== {title} (per-module parallel speedup) ==");
    println!(
        "{:>6} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "Nodes", "OVERFLOW/SP2", "DCF3D/SP2", "Comb/SP2", "OVERFLOW/SP", "DCF3D/SP", "Comb/SP"
    );
    for r in rows {
        let s = |base: f64, v: f64| if v > 0.0 { base / v } else { f64::NAN };
        println!(
            "{:>6} | {:>12.2} {:>12.2} {:>12.2} | {:>12.2} {:>12.2} {:>12.2}",
            r.nodes,
            s(rows[0].flow_elapsed[0], r.flow_elapsed[0]),
            s(rows[0].conn_elapsed[0], r.conn_elapsed[0]),
            s(rows[0].time_per_step[0], r.time_per_step[0]),
            s(rows[0].flow_elapsed[1], r.flow_elapsed[1]),
            s(rows[0].conn_elapsed[1], r.conn_elapsed[1]),
            s(rows[0].time_per_step[1], r.time_per_step[1]),
        );
    }
}

/// Table 1 / Fig. 5: the 2-D oscillating airfoil.
pub fn table1(e: Effort) -> Vec<PerfRow> {
    sweep(|| tuned(airfoil_case(e.scale2d, e.steps2d), e), &[6, 9, 12, 18, 24])
}

/// Table 2: the airfoil scaling study (coarsened / original / refined).
///
/// The paper coarsens/refines by 2× per direction (4× points in 2-D) and
/// holds points-per-node fixed (3 / 12 / 48 nodes). Our refined case uses
/// √2× per direction (2× points) on the paper's 48 nodes — the processor
/// growth that drives the "%DCF3D grows with problem size" trend is
/// preserved, at half the paper's points-per-node — because a 4× refinement
/// of the transonic case exceeds the robustness envelope of the simplified
/// shock-capturing scheme (see EXPERIMENTS.md).
pub fn table2(e: Effort) {
    println!("\n== Table 2: 2D oscillating airfoil scaling study ==");
    println!(
        "{:>22} {:>8} {:>12} | {:>10} {:>10} | {:>9} {:>9}",
        "Case", "Nodes", "Pts/node", "t/step SP2", "t/step SP", "%DCF SP2", "%DCF SP"
    );
    let configs: [(&str, f64, usize); 3] = [
        ("Coarsened (1/4x)", e.scale2d * 0.5, 3),
        ("Original", e.scale2d, 12),
        ("Refined (2x)", e.scale2d * 1.4, 48),
    ];
    for (name, scale, nodes) in configs {
        let mut t = [0.0f64; 2];
        let mut pct = [0.0f64; 2];
        let mut ppn = 0usize;
        for (mi, m) in [sp2(), sp()].iter().enumerate() {
            let cfg = tuned(airfoil_case(scale, e.steps2d), e);
            let r = run_case(&cfg, nodes, m).unwrap();
            t[mi] = r.time_per_step();
            pct[mi] = 100.0 * r.connectivity_fraction();
            ppn = r.total_points / nodes;
        }
        println!(
            "{:>22} {:>8} {:>12} | {:>10.3} {:>10.3} | {:>8.1}% {:>8.1}%",
            name, nodes, ppn, t[0], t[1], pct[0], pct[1]
        );
    }
}

/// Table 3 / Fig. 7: the descending delta wing.
pub fn table3(e: Effort) -> Vec<PerfRow> {
    sweep(|| tuned(delta_wing_case(e.scale3d, e.steps3d), e), &[7, 12, 26, 55])
}

/// Table 4 / Fig. 10: the finned-store separation (static balancing).
pub fn table4(e: Effort) -> Vec<PerfRow> {
    sweep(|| tuned(store_case(e.scale3d, e.steps3d), e), &[16, 18, 22, 28, 35, 42, 52, 61])
}

/// Table 5 / Fig. 11: static vs dynamic load balancing on the store case.
///
/// The paper measured a maximum connectivity service imbalance f(p) ≈ 7 and
/// chose f_o = 5 to shave it; our synthetic store system tops out at
/// f(p) ≈ 4.5, so the equivalent threshold is f_o = 3 (same ~70% of the
/// observed maximum).
pub fn table5(e: Effort) {
    println!("\n== Table 5: DCF3D with dynamic load balance (store case, SP2, f_o = 3) ==");
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>7}",
        "Nodes",
        "%DCF dyn",
        "%DCF stat",
        "DCF spd d",
        "DCF spd s",
        "Comb sp d",
        "Comb sp s",
        "repart"
    );
    let nodes = [16usize, 18, 28, 52];
    let steps = (2 * e.steps3d).max(16);
    let mut dyn_rows: Vec<RunResult> = Vec::new();
    let mut stat_rows: Vec<RunResult> = Vec::new();
    for &n in &nodes {
        let mut cfg = tuned(store_case(e.scale3d, steps), e);
        cfg.lb = LbConfig::dynamic(3.0, 6);
        dyn_rows.push(run_case(&cfg, n, &sp2()).unwrap());
        let cfg = tuned(store_case(e.scale3d, steps), e);
        stat_rows.push(run_case(&cfg, n, &sp2()).unwrap());
    }
    let conn = |r: &RunResult| r.summary.phase_time(Phase::Connectivity) / r.steps as f64;
    for (i, &n) in nodes.iter().enumerate() {
        let (d, s) = (&dyn_rows[i], &stat_rows[i]);
        println!(
            "{:>6} | {:>9.1}% {:>9.1}% | {:>10.2} {:>10.2} | {:>10.2} {:>10.2} | {:>7}",
            n,
            100.0 * d.connectivity_fraction(),
            100.0 * s.connectivity_fraction(),
            conn(&dyn_rows[0]) / conn(d),
            conn(&stat_rows[0]) / conn(s),
            dyn_rows[0].time_per_step() / d.time_per_step(),
            stat_rows[0].time_per_step() / s.time_per_step(),
            d.repartitions,
        );
    }
    println!(
        "  (dynamic np_final at {} nodes: {:?})",
        nodes[nodes.len() - 1],
        dyn_rows[nodes.len() - 1].np_final
    );
}

/// Table 6: wallclock speedup vs single-processor Cray Y-MP ("YMP units").
pub fn table6(e: Effort) {
    println!("\n== Table 6: wallclock speedup vs Cray Y-MP (store case) ==");
    let ymp = run_case_serial(&store_case(e.scale3d, e.steps3d.min(6)), &MachineModel::cray_ymp())
        .unwrap();
    let t_ymp = ymp.time_per_step();
    println!("  (Y-MP reference: {:.3} virtual s/step)", t_ymp);
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "Nodes", "Ovrl SP2", "Ovrl SP", "PerNd SP2", "PerNd SP"
    );
    for &n in &[18usize, 28, 42, 61] {
        let mut overall = [0.0f64; 2];
        for (mi, m) in [sp2(), sp()].iter().enumerate() {
            let r = run_case(&tuned(store_case(e.scale3d, e.steps3d), e), n, m).unwrap();
            overall[mi] = t_ymp / r.time_per_step();
        }
        println!(
            "{:>6} | {:>10.1} {:>10.1} | {:>10.2} {:>10.2}",
            n,
            overall[0],
            overall[1],
            overall[0] / n as f64,
            overall[1] / n as f64
        );
    }
}

/// A representative traced run for `--trace` / `--metrics`: the given
/// experiment family's case at its smallest node count (the same mapping
/// `repro report` uses, see [`crate::report::representative_case`]), with
/// the given trace configuration. Deterministic in virtual time, so two
/// invocations produce byte-identical trace JSON.
pub fn traced_run(which: &str, e: Effort, trace: TraceConfig) -> RunResult {
    let (mut cfg, nodes) = crate::report::representative_case(which, e);
    cfg.trace = trace;
    run_case(&tuned(cfg, e), nodes, &sp2()).expect("traced run failed")
}

/// `repro smoke`: prove the transport-determinism contract from the CLI.
/// Runs the store case once over the multi-process backend (two forked
/// rank-group processes) and once in-process, then compares physics, global
/// clock and every rank's clocks and communication counters bit for bit.
/// Exit 0 on bit-equality, 1 on divergence or a failed run.
///
/// The process-backed run goes first: its forked children re-execute
/// `repro smoke` and must reach the process-backed `establish` without
/// replaying the in-process reference run.
pub fn transport_smoke() -> i32 {
    let machine = sp2();
    let nranks = 16; // the store system has 16 grids; each needs a processor
    let mut cfg = store_case(0.3, 3);
    cfg.transport = TransportConfig::process(2);
    let proc = match run_case(&cfg, nranks, &machine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport smoke: process-transport run failed: {e}");
            return 1;
        }
    };
    cfg.transport = TransportConfig::InProcess;
    let inproc = match run_case(&cfg, nranks, &machine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("transport smoke: in-process run failed: {e}");
            return 1;
        }
    };

    let mut diverged: Vec<String> = Vec::new();
    if proc.state_rms.to_bits() != inproc.state_rms.to_bits() {
        diverged.push(format!("state RMS {} vs {}", proc.state_rms, inproc.state_rms));
    }
    if proc.wall_time.to_bits() != inproc.wall_time.to_bits() {
        diverged.push(format!("wall time {} vs {}", proc.wall_time, inproc.wall_time));
    }
    for (p, i) in proc.rank_stats.iter().zip(&inproc.rank_stats) {
        if p.final_clock.to_bits() != i.final_clock.to_bits() {
            diverged.push(format!("rank {} clock {} vs {}", p.rank, p.final_clock, i.final_clock));
        }
        if (p.msgs_sent, p.bytes_sent, p.collectives) != (i.msgs_sent, i.bytes_sent, i.collectives)
        {
            diverged.push(format!("rank {} comm counters", p.rank));
        }
    }
    if diverged.is_empty() {
        println!("transport smoke: bit-equal (store case, {nranks} ranks, proc:2 vs inproc)");
        0
    } else {
        println!("transport smoke: DIVERGED");
        for d in &diverged {
            eprintln!("  {d}");
        }
        1
    }
}

/// Print the run's aggregated metrics registry (counters then histograms,
/// name order).
pub fn print_metrics(r: &RunResult) {
    println!("\n== Aggregated metrics ({} ranks) ==", r.nranks);
    for (name, v) in r.metrics.counters() {
        println!("  {name:<26} {v:>14}");
    }
    for (name, h) in r.metrics.histograms() {
        println!(
            "  {name:<26} n={:<8} mean={:<12.6} min={:<12.6} max={:.6}",
            h.count,
            h.mean(),
            h.min,
            h.max
        );
    }
}

/// `--host-profile`: print the run's host-cost profile — per-phase host
/// wall-clock (max and median over ranks) and the per-phase allocation
/// attribution (counts and bytes summed over ranks, peak heap max over
/// ranks). The wall-clock columns are machine-dependent; the allocation
/// columns are deterministic for a fixed configuration.
pub fn print_host_profile(r: &RunResult) {
    println!("\n== Host profile ({} ranks) ==", r.nranks);
    println!(
        "  {:<14} {:>12} {:>12} {:>14} {:>16}",
        "phase", "max ms", "median ms", "allocs", "alloc bytes"
    );
    for (p, name) in overset_analysis::PHASE_NAMES.iter().enumerate() {
        let max_ms = r.host_phase_elapsed[p] * 1e3;
        let mut per_rank: Vec<f64> = r.host_phase_by_rank.iter().map(|t| t[p]).collect();
        per_rank.sort_by(f64::total_cmp);
        let median_ms =
            per_rank.get(per_rank.len().saturating_sub(1) / 2).copied().unwrap_or(0.0) * 1e3;
        let allocs: u64 = r.alloc_by_rank.iter().map(|a| a.allocs[p]).sum();
        let bytes: u64 = r.alloc_by_rank.iter().map(|a| a.bytes[p]).sum();
        println!("  {name:<14} {max_ms:>12.2} {median_ms:>12.2} {allocs:>14} {bytes:>16}");
    }
    let peak = r.alloc_by_rank.iter().map(|a| a.peak_bytes).max().unwrap_or(0);
    println!("  peak heap (max over ranks): {peak} bytes");
}

/// Ablation A1: nth-level restart on vs off (from-scratch search every
/// step). Barszcz found restart "yields a considerable reduction in the
/// time spent in the connectivity solution".
pub fn ablate_restart(e: Effort) {
    println!("\n== Ablation: nth-level restart (airfoil, SP2, 12 nodes) ==");
    let with = run_case(&tuned(airfoil_case(e.scale2d, e.steps2d), e), 12, &sp2()).unwrap();
    let mut cfg = tuned(airfoil_case(e.scale2d, e.steps2d), e);
    cfg.use_restart = false;
    let without = run_case(&cfg, 12, &sp2()).unwrap();
    let per = |r: &RunResult| r.summary.phase_time(Phase::Connectivity) / r.steps as f64;
    println!(
        "  restart ON : connectivity {:.4} s/step ({:.1}% of total)",
        per(&with),
        100.0 * with.connectivity_fraction()
    );
    println!(
        "  restart OFF: connectivity {:.4} s/step ({:.1}% of total)",
        per(&without),
        100.0 * without.connectivity_fraction()
    );
    println!("  restart speedup of the connectivity solution: {:.1}x", per(&without) / per(&with));
}

/// Ablation: the inverse-map acceleration layer (map-seeded cold walks,
/// occupancy-pruned candidate rotation, masked hole cutting). Answers are
/// bit-identical either way — the table shows pure search-effort movement.
pub fn ablate_invmap(e: Effort) {
    use overset_comm::metrics::names;
    println!("\n== Ablation: inverse maps (airfoil @ 12 / store @ 28, SP2) ==");
    for (name, nranks, mk) in [
        ("airfoil", 12usize, airfoil_case(e.scale2d, e.steps2d)),
        ("store  ", 28, store_case(e.scale3d, e.steps3d)),
    ] {
        let on = run_case(&tuned(mk.clone(), e), nranks, &sp2()).unwrap();
        let mut cfg = tuned(mk, e);
        cfg.use_inverse_map = false;
        let off = run_case(&cfg, nranks, &sp2()).unwrap();
        let per = |r: &RunResult| r.summary.phase_time(Phase::Connectivity) / r.steps as f64;
        let ctr = |r: &RunResult, m: &str| r.metrics.counter(m);
        println!(
            "  {name} map ON : connectivity {:.4} s/step, {:>8} walk steps, {:>6} forwards",
            per(&on),
            ctr(&on, names::CONN_WALK_STEPS),
            ctr(&on, names::CONN_FORWARDS),
        );
        println!(
            "  {name} map OFF: connectivity {:.4} s/step, {:>8} walk steps, {:>6} forwards",
            per(&off),
            ctr(&off, names::CONN_WALK_STEPS),
            ctr(&off, names::CONN_FORWARDS),
        );
        println!(
            "  {name} identical answers: state {} | walk-step cut {:.1}% | connectivity speedup {:.2}x",
            if on.state_rms.to_bits() == off.state_rms.to_bits() { "bit-equal" } else { "DIVERGED" },
            100.0 * (1.0 - ctr(&on, names::CONN_WALK_STEPS) as f64
                / ctr(&off, names::CONN_WALK_STEPS).max(1) as f64),
            per(&off) / per(&on)
        );
    }
}

/// Ablation: the per-rank connectivity arena. The arena never changes what
/// the protocol computes — states AND virtual times must be bit-equal on
/// vs off — it only removes per-step transient heap allocations, which
/// this experiment measures on the steady-state last step and gates at
/// the 10x reduction the observability docs promise (store case).
pub fn ablate_arena(e: Effort) {
    println!("\n== Ablation: connectivity arena (airfoil @ 12 / store @ 16, SP2) ==");
    // Steady-state connectivity allocations: last-step Connectivity-phase
    // alloc count, summed over ranks (the first steps pay the one-time
    // buffer growth; the last step is the recurring cost).
    let last_step_allocs = |r: &RunResult| -> u64 {
        r.alloc_records
            .iter()
            .map(|recs| recs.last().map_or(0, |a| a.allocs[Phase::Connectivity as usize]))
            .sum()
    };
    // The solver (flow) phase is reported alongside: the scratch-threaded
    // tridiagonal kernels keep its steady state allocation-free too.
    let last_step_flow_allocs = |r: &RunResult| -> u64 {
        r.alloc_records
            .iter()
            .map(|recs| recs.last().map_or(0, |a| a.allocs[Phase::Flow as usize]))
            .sum()
    };
    let mut gate_ratio = f64::INFINITY;
    for (name, nranks, mk, gated) in [
        ("airfoil", 12usize, airfoil_case(e.scale2d, e.steps2d), false),
        ("store  ", 16, store_case(e.scale3d, e.steps3d), true),
    ] {
        let on = run_case(&tuned(mk.clone(), e), nranks, &sp2()).unwrap();
        let mut cfg = tuned(mk, e);
        cfg.use_arena = false;
        let off = run_case(&cfg, nranks, &sp2()).unwrap();
        let a_on = last_step_allocs(&on);
        let a_off = last_step_allocs(&off);
        let ratio = a_off as f64 / a_on.max(1) as f64;
        let bit_equal = on.state_rms.to_bits() == off.state_rms.to_bits()
            && on.wall_time.to_bits() == off.wall_time.to_bits();
        println!("  {name} arena ON : {a_on:>7} connectivity allocs/step (last step, all ranks)");
        println!("  {name} arena OFF: {a_off:>7} connectivity allocs/step (last step, all ranks)");
        println!(
            "  {name} solver phase: {} (ON) / {} (OFF) allocs/step (last step, all ranks)",
            last_step_flow_allocs(&on),
            last_step_flow_allocs(&off),
        );
        println!(
            "  {name} state+virtual-time {} | alloc reduction {ratio:.1}x",
            if bit_equal { "bit-equal" } else { "DIVERGED" },
        );
        if gated {
            gate_ratio = ratio;
        }
    }
    if gate_ratio >= 10.0 {
        println!("  ALLOC-GATE: PASS ({gate_ratio:.1}x >= 10x, store case)");
    } else {
        println!("  ALLOC-GATE: FAIL (>=10x required on the store case, got {gate_ratio:.1}x)");
    }
}

/// Ablation: the lane-batched SIMD compute kernels (`--no-simd` runs the
/// same batched code through the portable scalar lanes). Three properties
/// are checked:
///
/// 1. **Bit-equality** — states, donor-walk outcomes and virtual clocks
///    must be identical SIMD on vs off (per-lane vertical IEEE arithmetic
///    only; no horizontal ops, no FMA).
/// 2. **Host speedup** — the solver (flow) phase's host wall-clock, medians
///    over interleaved repeats in one process (so code/frequency/cache
///    conditions are shared), gated at 1.5x on AVX2 hosts.
/// 3. On hosts without AVX2 both paths select the scalar lanes, so the
///    speedup gate is reported as dormant rather than failed.
pub fn ablate_simd(e: Effort) {
    use overset_comm::metrics::names;
    use overset_solver::avx2_supported;
    println!("\n== Ablation: lane-batched SIMD kernels (airfoil @ 12 / store @ 16, SP2) ==");
    let ctr = |r: &RunResult, m: &str| r.metrics.counter(m);
    for (name, nranks, mk) in [
        ("airfoil", 12usize, airfoil_case(e.scale2d, e.steps2d)),
        ("store  ", 16, store_case(e.scale3d, e.steps3d)),
    ] {
        let on = run_case(&tuned(mk.clone(), e), nranks, &sp2()).unwrap();
        let mut cfg = tuned(mk, e);
        cfg.use_simd = false;
        let off = run_case(&cfg, nranks, &sp2()).unwrap();
        let bit_equal = on.state_rms.to_bits() == off.state_rms.to_bits()
            && on.wall_time.to_bits() == off.wall_time.to_bits()
            && ctr(&on, names::CONN_WALK_STEPS) == ctr(&off, names::CONN_WALK_STEPS)
            && ctr(&on, names::CONN_FORWARDS) == ctr(&off, names::CONN_FORWARDS);
        println!(
            "  {name} state+virtual-time+walks {} (walk steps {}, state rms {:.6e})",
            if bit_equal { "bit-equal" } else { "DIVERGED" },
            ctr(&on, names::CONN_WALK_STEPS),
            on.state_rms,
        );
        if !bit_equal {
            println!("  SIMD-GATE: FAIL (bit-equality violated on the {} case)", name.trim());
            return;
        }
    }

    // Host speedup of the solver phase: repeat the quick airfoil case with
    // the ISA toggled between otherwise-identical runs in this one process,
    // and compare per-phase host-clock medians (sum over ranks — on an
    // oversubscribed host the cumulative rank-thread time is the stable
    // signal; the max over ranks is scheduling noise).
    let flow_host = |r: &RunResult| -> f64 {
        r.host_phase_by_rank.iter().map(|t| t[Phase::Flow as usize]).sum()
    };
    let repeats = 5;
    let mut on_ms = Vec::with_capacity(repeats);
    let mut off_ms = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let r = run_case(&tuned(airfoil_case(e.scale2d, e.steps2d), e), 12, &sp2()).unwrap();
        on_ms.push(flow_host(&r) * 1e3);
        let mut cfg = tuned(airfoil_case(e.scale2d, e.steps2d), e);
        cfg.use_simd = false;
        let r = run_case(&cfg, 12, &sp2()).unwrap();
        off_ms.push(flow_host(&r) * 1e3);
    }
    on_ms.sort_by(f64::total_cmp);
    off_ms.sort_by(f64::total_cmp);
    let med = |v: &[f64]| v[v.len() / 2];
    let speedup = med(&off_ms) / med(&on_ms);
    println!(
        "  airfoil solver-phase host clock: SIMD ON {:.1} ms / OFF {:.1} ms (medians of {repeats} interleaved runs, all ranks)",
        med(&on_ms),
        med(&off_ms),
    );
    if !avx2_supported() {
        println!("  SIMD-GATE: DORMANT (no AVX2 on this host; both paths ran the scalar lanes)");
    } else if speedup >= 1.5 {
        println!("  SIMD-GATE: PASS (solver-phase host speedup {speedup:.2}x >= 1.5x)");
    } else {
        println!("  SIMD-GATE: FAIL (solver-phase host speedup {speedup:.2}x < 1.5x required on AVX2 hosts)");
    }
}

/// Ablation: prescribed vs 6-DOF-computed store motion — the paper: "the
/// free motion can be computed with negligible change in the parallel
/// performance of the code".
pub fn ablate_sixdof(e: Effort) {
    println!("\n== Ablation: prescribed vs 6-DOF store motion (SP2, 28 nodes) ==");
    let pres = run_case(&tuned(store_case(e.scale3d, e.steps3d), e), 28, &sp2()).unwrap();
    let free = run_case(&tuned(overflow_d::store_case_sixdof(e.scale3d, e.steps3d), e), 28, &sp2())
        .unwrap();
    println!(
        "  prescribed: {:.3} s/step ({:.1}% DCF3D, motion {:.4} s/step)",
        pres.time_per_step(),
        100.0 * pres.connectivity_fraction(),
        pres.summary.phase_time(Phase::Motion) / pres.steps as f64
    );
    println!(
        "  6-DOF     : {:.3} s/step ({:.1}% DCF3D, motion {:.4} s/step)",
        free.time_per_step(),
        100.0 * free.connectivity_fraction(),
        free.summary.phase_time(Phase::Motion) / free.steps as f64
    );
    println!(
        "  cost of computing the free motion: {:+.1}%",
        100.0 * (free.time_per_step() / pres.time_per_step() - 1.0)
    );
}

/// Ablation A2: f_o sweep on the store case.
pub fn ablate_fo(e: Effort) {
    println!("\n== Ablation: f_o sweep (store case, SP2, 28 nodes) ==");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} | {:>7} | {:>8}",
        "f_o", "t/step", "%DCF3D", "f_max", "repart", "flow t"
    );
    for fo in [1.0f64, 2.0, 5.0, 10.0, f64::INFINITY] {
        let mut cfg = tuned(store_case(e.scale3d, e.steps3d.max(10)), e);
        if fo.is_finite() {
            cfg.lb = LbConfig::dynamic(fo, 4);
        }
        let r = run_case(&cfg, 28, &sp2()).unwrap();
        println!(
            "{:>8} | {:>10.3} {:>9.1}% {:>10.2} | {:>7} | {:>8.3}",
            if fo.is_finite() { format!("{fo:.0}") } else { "inf".into() },
            r.time_per_step(),
            100.0 * r.connectivity_fraction(),
            r.f_max(),
            r.repartitions,
            r.summary.phase_time(Phase::Flow) / r.steps as f64,
        );
    }
}

/// `scaling`: virtual-rank scaling far past the paper's node counts (and
/// past the host's cores), possible because the M:N scheduler multiplexes
/// the ranks onto a bounded worker pool. Sweeps the store case over
/// P ∈ {16, 64, 256, 1024} on a handful of OS threads; rows whose processor
/// count exceeds what the grid system can feasibly absorb are reported as
/// such rather than aborting the sweep.
pub fn scaling(e: Effort) {
    let workers = e.max_threads.unwrap_or(8);
    println!("\n== Scaling: store case on an M:N scheduler ({workers} OS threads) ==");
    println!(
        "{:>6} {:>12} | {:>10} {:>10} | {:>9} | {:>10}",
        "Ranks", "Pts/node", "t/step", "Speedup", "%DCF3D", "Mf/n SP2"
    );
    // A couple of steps are enough to exercise the full comm pattern; the
    // point of this sweep is rank-count scale, not time-averaging.
    let steps = e.steps3d.clamp(2, 3);
    let mut t0: Option<f64> = None;
    for &n in &[16usize, 64, 256, 1024] {
        let mut cfg = store_case(e.scale3d, steps);
        cfg.max_threads = Some(workers);
        match run_case(&cfg, n, &sp2()) {
            Ok(r) => {
                let t = r.time_per_step();
                let base = *t0.get_or_insert(t);
                println!(
                    "{:>6} {:>12} | {:>10.3} {:>10.2} | {:>8.1}% | {:>10.1}",
                    n,
                    r.total_points / n,
                    t,
                    base / t,
                    100.0 * r.connectivity_fraction(),
                    r.mflops_per_node(),
                );
            }
            Err(err) => println!("{:>6} {:>12} | infeasible at this scale: {err}", n, "-"),
        }
    }
}

/// Ablation A4: cache model on/off (explains the paper's super-scalar
/// speedups).
pub fn ablate_cache(e: Effort) {
    println!("\n== Ablation: cache performance model (airfoil, SP2) ==");
    println!("{:>6} | {:>12} {:>12}", "Nodes", "Mf/n cache", "Mf/n flat");
    for &n in &[6usize, 12, 24, 48] {
        let with = run_case(&tuned(airfoil_case(e.scale2d, e.steps2d), e), n, &sp2()).unwrap();
        let flat = run_case(
            &tuned(airfoil_case(e.scale2d, e.steps2d), e),
            n,
            &sp2().without_cache_model(),
        )
        .unwrap();
        println!("{:>6} | {:>12.1} {:>12.1}", n, with.mflops_per_node(), flat.mflops_per_node());
    }
}
