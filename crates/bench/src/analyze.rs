//! `repro analyze` — run the trace analyzer on an experiment, trace file,
//! or streamed span directory — and `repro analyze-diff` to compare two
//! analysis documents.
//!
//! Three input modes share one pipeline:
//! - `repro analyze <experiment> [--quick]` re-runs the experiment's
//!   representative case with tracing enabled (same case `--trace` uses)
//!   and analyzes the live spans plus flight-recorder step records;
//! - `repro analyze <trace.json>` re-parses a Chrome `trace_event` file
//!   written by `repro <exp> --trace <file>` — no step records, per-step
//!   structure is reconstructed from phase spans;
//! - `repro analyze <dir>` reads a binary span-stream directory written by
//!   `repro <exp> --trace-stream <dir>` — step records included. A
//!   truncated stream (a rank's writer died mid-run) is diagnosed with
//!   exit 2 naming the gap, per rank.
//!
//! Output is the deterministic text report by default, the versioned JSON
//! analysis document with `--json`; `-o <path>` writes instead of printing.
//!
//! `repro analyze-diff <a.json> <b.json>` diffs two `repro analyze --json`
//! documents: critical-path and per-phase deltas plus per-rank wait-state
//! regressions, each regressed late-sender wait attributed to its culprit
//! sender-side span (see docs/OBSERVABILITY.md §Analysis diffing).

use crate::experiments::{traced_run, Effort};
use overset_analysis::{analyze, AnalysisInput};
use overset_comm::trace::TraceConfig;

const EXPERIMENTS: [&str; 17] = [
    "scaling",
    "table1",
    "fig5",
    "table2",
    "table3",
    "fig7",
    "table4",
    "fig10",
    "table5",
    "fig11",
    "table6",
    "fig12",
    "ablate-restart",
    "ablate-sixdof",
    "ablate-fo",
    "ablate-grouping",
    "ablate-cache",
];

struct AnalyzeCli {
    target: Option<String>,
    quick: bool,
    json: bool,
    host: bool,
    out_path: Option<String>,
}

fn parse(args: &[String]) -> Result<AnalyzeCli, String> {
    let mut cli =
        AnalyzeCli { target: None, quick: false, json: false, host: false, out_path: None };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--json" => cli.json = true,
            "--host" => cli.host = true,
            "-o" | "--out" => match it.next() {
                Some(p) => cli.out_path = Some(p.clone()),
                None => return Err(format!("{a} requires an output path")),
            },
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other if cli.target.is_none() => cli.target = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    cli.target.is_some().then_some(()).ok_or_else(usage)?;
    if cli.host && cli.json {
        return Err("--host renders a text report; it cannot be combined with --json".to_string());
    }
    Ok(cli)
}

fn usage() -> String {
    "usage: repro analyze <experiment>|<trace.json>|<span-dir>|<report.json> [--quick] [--json] \
     [--host] [-o <path>]"
        .to_string()
}

/// `repro analyze --host <report.json>`: render the host-cost view of a
/// run-report document (top host hotspots, virtual-vs-host disagreement,
/// allocation profile — see `overset_analysis::host`).
fn run_analyze_host(target: &str, out_path: &Option<String>) -> i32 {
    let text = match std::fs::read_to_string(target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {target}: {e}");
            return 2;
        }
    };
    let doc = match overset_report::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{target}: not valid JSON: {e}");
            return 2;
        }
    };
    let rendered = match overset_analysis::render_host_report(&doc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{target}: {e}");
            return 2;
        }
    };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered.as_bytes()) {
                eprintln!("failed to write host analysis to {path}: {e}");
                return 2;
            }
            eprintln!("[host analysis: {} bytes -> {path}]", rendered.len());
        }
        None => print!("{rendered}"),
    }
    0
}

/// Entry point for the `analyze` subcommand; returns the process exit code.
pub fn run_analyze(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let target = cli.target.as_deref().unwrap();
    if cli.host {
        return run_analyze_host(target, &cli.out_path);
    }

    let input = if std::path::Path::new(target).is_dir() {
        let sd = match overset_comm::read_span_dir(std::path::Path::new(target)) {
            Ok(sd) => sd,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        if !sd.gaps.is_empty() {
            eprintln!("{target}: {} of {} rank streams incomplete:", sd.gaps.len(), sd.ranks.len());
            for g in &sd.gaps {
                eprintln!("  {g}");
            }
            eprintln!(
                "(a truncated stream means that rank's writer died mid-run; the recovered \
                       prefix is on disk but the analysis would silently understate its work)"
            );
            return 2;
        }
        let traces = sd.rank_traces();
        AnalysisInput::from_run(target, &traces, sd.step_records())
    } else if std::path::Path::new(target).is_file() {
        let text = match std::fs::read_to_string(target) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {target}: {e}");
                return 2;
            }
        };
        if text.trim().is_empty() {
            eprintln!("{target}: file is empty — expected a Chrome trace_event JSON document");
            return 2;
        }
        match AnalysisInput::from_chrome_trace(target, &text) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{target}: {e}");
                return 2;
            }
        }
    } else if EXPERIMENTS.contains(&target) {
        let effort = if cli.quick { Effort::quick() } else { Effort::full() };
        let effort_name = if cli.quick { "quick" } else { "full" };
        let r = traced_run(target, effort, TraceConfig::enabled());
        AnalysisInput::from_run(&format!("{target}/{effort_name}"), &r.trace, r.step_records)
    } else {
        eprintln!("{target}: not a trace file, and not an experiment");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        return 2;
    };

    // Degenerate inputs (no spans, single rank, zero completed steps) get a
    // clean diagnosis here instead of a panic deeper in the pipeline.
    if let Err(e) = input.validate() {
        eprintln!("{e}");
        return 2;
    }

    let a = analyze(&input);
    let text = if cli.json { a.to_value().to_json() } else { a.render_text() };
    match &cli.out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text.as_bytes()) {
                eprintln!("failed to write analysis to {path}: {e}");
                return 2;
            }
            eprintln!("[analysis: {} bytes -> {path}]", text.len());
        }
        None => print!("{text}"),
    }
    0
}

struct DiffCli {
    a: String,
    b: String,
    json: bool,
    out_path: Option<String>,
}

fn parse_diff(args: &[String]) -> Result<DiffCli, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "-o" | "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return Err(format!("{a} requires an output path")),
            },
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(
            "usage: repro analyze-diff <baseline.json> <new.json> [--json] [-o <path>]".to_string()
        );
    }
    let b = paths.pop().unwrap();
    let a = paths.pop().unwrap();
    Ok(DiffCli { a, b, json, out_path })
}

fn load_analysis(path: &str) -> Result<overset_report::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    overset_report::json::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))
}

/// Entry point for the `analyze-diff` subcommand; returns the process exit
/// code (0 = diff rendered, regressions included advisorily; 2 = usage/IO).
pub fn run_analyze_diff(args: &[String]) -> i32 {
    let cli = match parse_diff(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let (a, b) = match (load_analysis(&cli.a), load_analysis(&cli.b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let d = match overset_analysis::diff(&a, &b) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("analyze-diff: {e}");
            return 2;
        }
    };
    let text = if cli.json { d.to_value().to_json() } else { d.render_text() };
    match &cli.out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text.as_bytes()) {
                eprintln!("failed to write diff to {path}: {e}");
                return 2;
            }
            eprintln!("[diff: {} bytes -> {path}]", text.len());
        }
        None => print!("{text}"),
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let c = parse(&s(&["table1", "--quick", "--json", "-o", "x.json"])).unwrap();
        assert_eq!(c.target.as_deref(), Some("table1"));
        assert!(c.quick && c.json);
        assert_eq!(c.out_path.as_deref(), Some("x.json"));
        assert!(parse(&s(&[])).is_err());
        assert!(parse(&s(&["a", "b"])).is_err());
        assert!(parse(&s(&["table1", "--bogus"])).is_err());
        assert!(parse(&s(&["table1", "-o"])).is_err());
    }

    #[test]
    fn degenerate_inputs_exit_2_with_a_diagnosis() {
        // Empty trace file.
        let dir = std::env::temp_dir();
        let empty = dir.join("overset_analyze_empty_trace.json");
        std::fs::write(&empty, "").unwrap();
        assert_eq!(run_analyze(&s(&[empty.to_str().unwrap()])), 2);

        // Valid JSON, but no spans at all.
        let no_spans = dir.join("overset_analyze_no_spans.json");
        std::fs::write(&no_spans, "{\"traceEvents\": []}").unwrap();
        assert_eq!(run_analyze(&s(&[no_spans.to_str().unwrap()])), 2);

        let _ = std::fs::remove_file(&empty);
        let _ = std::fs::remove_file(&no_spans);
    }

    #[test]
    fn single_rank_and_zero_step_inputs_are_rejected_by_validate() {
        use overset_analysis::{RankSpans, Span};
        let span = |cat: &str, name: &str| Span {
            cat: cat.into(),
            name: name.into(),
            ts: 0.0,
            dur: 1.0,
            args: Vec::new(),
        };
        // Single rank: spans exist but the pairwise analyses are undefined.
        let one = AnalysisInput {
            source: "one-rank".into(),
            ranks: vec![RankSpans { rank: 0, spans: vec![span("phase", "flow")] }],
            steps: Vec::new(),
        };
        let e = one.validate().unwrap_err();
        assert!(e.contains("single rank"), "{e}");

        // Two ranks, spans, but no completed step (no flow phase, no records).
        let no_steps = AnalysisInput {
            source: "no-steps".into(),
            ranks: vec![
                RankSpans { rank: 0, spans: vec![span("phase", "connectivity")] },
                RankSpans { rank: 1, spans: vec![span("phase", "connectivity")] },
            ],
            steps: Vec::new(),
        };
        let e = no_steps.validate().unwrap_err();
        assert!(e.contains("no completed timesteps"), "{e}");
    }

    #[test]
    fn diff_flag_parsing() {
        let c = parse_diff(&s(&["a.json", "b.json", "--json", "-o", "d.json"])).unwrap();
        assert_eq!(c.a, "a.json");
        assert_eq!(c.b, "b.json");
        assert!(c.json);
        assert_eq!(c.out_path.as_deref(), Some("d.json"));
        assert!(parse_diff(&s(&[])).is_err());
        assert!(parse_diff(&s(&["a.json"])).is_err());
        assert!(parse_diff(&s(&["a", "b", "c"])).is_err());
        assert!(parse_diff(&s(&["a", "b", "--bogus"])).is_err());
        assert!(parse_diff(&s(&["a", "b", "-o"])).is_err());
    }

    #[test]
    fn analyze_diff_exits_2_on_unreadable_or_malformed_inputs() {
        let dir = std::env::temp_dir();
        let missing = dir.join("overset_diff_missing.json");
        let _ = std::fs::remove_file(&missing);
        let garbage = dir.join("overset_diff_garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        let g = garbage.to_str().unwrap().to_string();
        assert_eq!(run_analyze_diff(&[missing.to_str().unwrap().to_string(), g.clone()]), 2);
        assert_eq!(run_analyze_diff(&[g.clone(), g]), 2);
        let _ = std::fs::remove_file(&garbage);
    }

    #[test]
    fn span_dir_mode_analyzes_complete_streams_and_rejects_truncated_ones() {
        use overset_comm::{MachineModel, Phase, StreamConfig, Universe};
        let dir = std::env::temp_dir().join("overset_bench_span_dir_mode");
        let _ = std::fs::remove_dir_all(&dir);
        let stream = StreamConfig::binary(&dir);
        Universe::builder()
            .ranks(2)
            .machine(&MachineModel::modern())
            .trace(TraceConfig::enabled().with_stream(stream))
            .run(|c| {
                for _ in 0..2 {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute(1.0e5, overset_comm::WorkClass::Flow);
                    ph.barrier();
                    drop(ph);
                    c.end_step();
                }
            });
        let d = dir.to_str().unwrap().to_string();
        let out = dir.join("analysis.txt");
        assert_eq!(
            run_analyze(&[d.clone(), "-o".into(), out.to_str().unwrap().into()]),
            0,
            "complete span dir must analyze cleanly"
        );
        assert!(std::fs::read_to_string(&out).unwrap().contains("critical path"));

        // Chop the tail off rank 1's stream: the recovered prefix parses,
        // but analyze must refuse with exit 2 and name the gap.
        let victim = dir.join("rank-00001.spans");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
        assert_eq!(run_analyze(&[d]), 2);
        let sd = overset_comm::read_span_dir(&dir).unwrap();
        assert_eq!(sd.gaps.len(), 1);
        assert!(sd.gaps[0].starts_with("rank 1"), "{}", sd.gaps[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quick_experiment_analysis_is_deterministic_and_names_a_rank() {
        let effort = Effort::quick();
        let run = || {
            let r = traced_run("table1", effort, TraceConfig::enabled());
            let input = AnalysisInput::from_run("table1/quick", &r.trace, r.step_records);
            analyze(&input)
        };
        let a1 = run();
        let a2 = run();
        assert_eq!(a1.to_value().to_json(), a2.to_value().to_json());
        assert_eq!(a1.render_text(), a2.render_text());
        assert!(a1.findings.iter().any(|f| f.kind == "critical-rank"));
        assert!(a1.critical_path.total_elapsed > 0.0);
        assert!(!a1.critical_path.steps.is_empty());
    }
}
