//! Fig. 12 and the grouping ablation: the Section-5 adaptive scheme.

use overset_amr::{AdaptiveScheme, SchemeConfig};
use overset_balance::{round_robin, Connectivity};
use overset_grid::transform::RigidTransform;

/// Fig. 12: initial vs refined off-body grid systems for an X-38-like body,
/// with a solve in between — reported as grid statistics (the paper shows
/// pictures; the numbers below are what the pictures depict).
pub fn fig12(ngroups: usize) {
    println!("\n== Fig. 12: adaptive overset scheme, X-38-like body ==");
    let mut s = AdaptiveScheme::new(SchemeConfig::x38_like(ngroups));
    s.connectivity();
    let r0 = s.report();
    println!("  a) initial off-body system:");
    println!(
        "     bricks {} (per level: {:?}), off-body points {}",
        r0.nbricks, r0.level_hist, r0.offbody_points
    );
    println!("     near-body points {}", r0.nearbody_points);

    // A few solve steps, then the body moves and the system adapts.
    for _ in 0..3 {
        s.step();
    }
    let stats = s.move_and_adapt(&RigidTransform::translation([1.5, 0.0, 0.3]));
    for _ in 0..2 {
        s.step();
    }
    let r1 = s.report();
    println!("  b) after motion + adapt cycle:");
    println!(
        "     bricks {} (per level: {:?}), refined {} regions, coarsened {}",
        r1.nbricks, r1.level_hist, stats.refined, stats.coarsened
    );
    println!("     points transferred in adapt: {}", stats.points_transferred);
    println!("  c) connectivity economics of the Cartesian scheme:");
    println!(
        "     O(1) Cartesian locates {} vs traditional donor searches {}",
        r1.cartesian_locates, r1.curvilinear_searches
    );
    println!(
        "     group imbalance {:.2}, inter-group cut fraction {:.2} ({} groups)",
        r1.group_imbalance, r1.cut_fraction, ngroups
    );
}

/// Ablation A3: Algorithm 3 grouping vs naive round-robin.
pub fn ablate_grouping() {
    println!("\n== Ablation: Algorithm 3 grouping vs round-robin ==");
    let s = AdaptiveScheme::new(SchemeConfig::x38_like(6));
    let sizes: Vec<usize> = s.bricks.iter().map(|b| b.num_points()).collect();
    let adj = overset_amr::build_adjacency(&s.bricks);
    println!(
        "{:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "Groups", "A3 imbal", "RR imbal", "A3 cut", "RR cut"
    );
    for ngroups in [2usize, 4, 8, 16] {
        let a3 = overset_balance::group_grids(&sizes, ngroups, &adj);
        let rr = round_robin(&sizes, ngroups);
        let n = sizes.len();
        println!(
            "{:>8} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            ngroups,
            a3.imbalance(),
            rr.imbalance(),
            a3.cut_fraction(&adj, n),
            rr.cut_fraction(&adj, n)
        );
    }
    // Sanity: the adjacency has edges at all.
    let n = sizes.len();
    let edges = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| adj.connected(a, b))
        .count();
    println!("  ({} bricks, {} adjacency edges)", n, edges);
}
