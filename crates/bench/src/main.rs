//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <experiment> [--quick]` where experiment is one of
//! `table1 fig5 table2 table3 fig7 table4 fig10 table5 fig11 table6 fig12
//! ablate-restart ablate-sixdof ablate-fo ablate-grouping ablate-cache all`.

use overset_bench::amr_experiments::{ablate_grouping, fig12};
use overset_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::quick() } else { Effort::full() };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "table1" => print_perf_table("Table 1: 2D oscillating airfoil", &table1(effort)),
        "fig5" => print_module_speedups("Fig. 5: 2D oscillating airfoil", &table1(effort)),
        "table2" => table2(effort),
        "table3" => print_perf_table("Table 3: descending delta wing", &table3(effort)),
        "fig7" => print_module_speedups("Fig. 7: descending delta wing", &table3(effort)),
        "table4" => print_perf_table("Table 4: finned-store separation", &table4(effort)),
        "fig10" => print_module_speedups("Fig. 10: finned-store separation", &table4(effort)),
        "table5" | "fig11" => table5(effort),
        "table6" => table6(effort),
        "fig12" => fig12(4),
        "ablate-restart" => ablate_restart(effort),
        "ablate-sixdof" => ablate_sixdof(effort),
        "ablate-fo" => ablate_fo(effort),
        "ablate-grouping" => ablate_grouping(),
        "ablate-cache" => ablate_cache(effort),
        "all" => {
            let rows1 = table1(effort);
            print_perf_table("Table 1: 2D oscillating airfoil", &rows1);
            print_module_speedups("Fig. 5: 2D oscillating airfoil", &rows1);
            table2(effort);
            let rows3 = table3(effort);
            print_perf_table("Table 3: descending delta wing", &rows3);
            print_module_speedups("Fig. 7: descending delta wing", &rows3);
            let rows4 = table4(effort);
            print_perf_table("Table 4: finned-store separation", &rows4);
            print_module_speedups("Fig. 10: finned-store separation", &rows4);
            table5(effort);
            table6(effort);
            fig12(4);
            ablate_restart(effort);
            ablate_sixdof(effort);
            ablate_fo(effort);
            ablate_grouping();
            ablate_cache(effort);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "choose from: table1 fig5 table2 table3 fig7 table4 fig10 table5 fig11 \
                 table6 fig12 ablate-restart ablate-sixdof ablate-fo ablate-grouping ablate-cache all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("\n[{which} completed in {:?}]", t0.elapsed());
}
