//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro <experiment> [--quick] [--trace <out.json>] [--metrics]`
//! where experiment is one of `table1 fig5 table2 table3 fig7 table4 fig10
//! table5 fig11 table6 fig12 ablate-restart ablate-sixdof ablate-fo
//! ablate-grouping ablate-cache all`.
//!
//! `--trace` re-runs the experiment's representative case with event
//! tracing enabled and writes a Chrome `trace_event` JSON (load it in
//! `chrome://tracing` or Perfetto; one "process" per rank, virtual-time
//! axis). `--metrics` prints the aggregated metrics registry of the same
//! run.

use overset_bench::amr_experiments::{ablate_grouping, fig12};
use overset_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut trace_path: Option<String> = None;
    let mut show_metrics = false;
    let mut which = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--metrics" => show_metrics = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            other => which = other.to_string(),
        }
    }
    let effort = if quick { Effort::quick() } else { Effort::full() };

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "table1" => print_perf_table("Table 1: 2D oscillating airfoil", &table1(effort)),
        "fig5" => print_module_speedups("Fig. 5: 2D oscillating airfoil", &table1(effort)),
        "table2" => table2(effort),
        "table3" => print_perf_table("Table 3: descending delta wing", &table3(effort)),
        "fig7" => print_module_speedups("Fig. 7: descending delta wing", &table3(effort)),
        "table4" => print_perf_table("Table 4: finned-store separation", &table4(effort)),
        "fig10" => print_module_speedups("Fig. 10: finned-store separation", &table4(effort)),
        "table5" | "fig11" => table5(effort),
        "table6" => table6(effort),
        "fig12" => fig12(4),
        "ablate-restart" => ablate_restart(effort),
        "ablate-sixdof" => ablate_sixdof(effort),
        "ablate-fo" => ablate_fo(effort),
        "ablate-grouping" => ablate_grouping(),
        "ablate-cache" => ablate_cache(effort),
        "all" => {
            let rows1 = table1(effort);
            print_perf_table("Table 1: 2D oscillating airfoil", &rows1);
            print_module_speedups("Fig. 5: 2D oscillating airfoil", &rows1);
            table2(effort);
            let rows3 = table3(effort);
            print_perf_table("Table 3: descending delta wing", &rows3);
            print_module_speedups("Fig. 7: descending delta wing", &rows3);
            let rows4 = table4(effort);
            print_perf_table("Table 4: finned-store separation", &rows4);
            print_module_speedups("Fig. 10: finned-store separation", &rows4);
            table5(effort);
            table6(effort);
            fig12(4);
            ablate_restart(effort);
            ablate_sixdof(effort);
            ablate_fo(effort);
            ablate_grouping();
            ablate_cache(effort);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "choose from: table1 fig5 table2 table3 fig7 table4 fig10 table5 fig11 \
                 table6 fig12 ablate-restart ablate-sixdof ablate-fo ablate-grouping ablate-cache all"
            );
            std::process::exit(2);
        }
    }

    if trace_path.is_some() || show_metrics {
        let r = traced_run(&which, effort);
        if let Some(path) = &trace_path {
            let json = overset_comm::chrome_trace_json(&r.trace);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            let events: usize = r.trace.iter().map(|t| t.events.len()).sum();
            eprintln!("[trace: {events} events over {} ranks -> {path}]", r.trace.len());
        }
        if show_metrics {
            print_metrics(&r);
        }
    }

    eprintln!("\n[{which} completed in {:?}]", t0.elapsed());
}
