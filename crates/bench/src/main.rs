//! `repro` — regenerate the paper's tables and figures, emit machine-readable
//! run reports, and gate perf regressions.
//!
//! Usage:
//!   `repro <experiment> [--quick] [--max-threads <N>] [--no-inverse-map]
//!          [--no-arena] [--no-incremental-invmap]
//!          [--transport inproc|proc[:N]] [--trace <out.json>]
//!          [--trace-stream <dir>] [--metrics] [--host-profile]
//!          [--trace-filter <cats>] [--trace-sample <N>]`
//!   `repro report <experiment> [--quick] [-o <out.json>]
//!          [--trace-filter <cats>] [--trace-sample <N>]
//!          [--inject-alloc <bytes>]`
//!   `repro bench-host <experiment> [--quick] [--repeats <N>] [-o <out.json>]`
//!   `repro compare <baseline.json> <new.json> [--tol-pct <N>]`
//!   `repro analyze <experiment>|<trace.json>|<span-dir>|<report.json> [--quick]
//!          [--json] [--host] [-o <path>]`
//!   `repro analyze-diff <baseline.json> <new.json> [--json] [-o <path>]`
//!   `repro smoke`
//!
//! where experiment is one of `table1 fig5 table2 table3 fig7 table4 fig10
//! table5 fig11 table6 fig12 scaling ablate-restart ablate-sixdof ablate-fo
//! ablate-grouping ablate-cache ablate-invmap ablate-arena ablate-simd all`.
//!
//! `--no-arena` replaces the per-rank connectivity arena with cold buffers
//! every step (same code path; results and virtual times bit-identical,
//! only host allocation counts change). `--no-incremental-invmap` forces a
//! full inverse-map rebuild on every motion event instead of the pose
//! advance; answers are identical, the virtual time moves.
//!
//! `--max-threads N` caps the OS threads running an experiment's virtual
//! ranks: the comm runtime multiplexes the ranks onto `N` workers (M:N
//! mode). All virtual-time results are bit-identical to the default
//! rank-per-thread mode; the flag exists so large rank counts — notably the
//! `scaling` experiment's 1024-rank rows — run on ordinary hosts.
//!
//! `--transport proc[:N]` runs each case's ranks split across N forked
//! rank-group processes speaking the versioned wire protocol, instead of as
//! threads of this process (`inproc`, the default). Results are bit-identical
//! either way; `repro smoke` proves exactly that on the store case and exits
//! nonzero on any divergence (see docs/TRANSPORT.md).
//!
//! `--trace` re-runs the experiment's representative case with event
//! tracing enabled and writes a Chrome `trace_event` JSON (load it in
//! `chrome://tracing` or Perfetto; one "process" per rank, virtual-time
//! axis). `--trace-stream <dir>` streams spans to per-rank binary files in
//! `<dir>` *as they close* instead of buffering them in memory (consume
//! with `repro analyze <dir>`; see docs/OBSERVABILITY.md §Streaming sinks).
//! `--trace-filter` keeps only the named span categories (comma separated,
//! from `phase comm compute conn solver lb`); `--trace-sample N` keeps
//! every Nth filter-passing span. `--metrics` prints the aggregated metrics
//! registry of the same run.
//!
//! `report` writes a schema-v1 JSON report (per-step telemetry series,
//! end-of-run summary, metrics dump, allocation attribution — see
//! docs/OBSERVABILITY.md); `compare` exits 0 when `new` is within
//! `--tol-pct` percent (default 5) of `baseline` on every gated metric
//! (allocation counts gate *exactly*, tolerance zero), 1 on regression, 2
//! on usage/IO errors.
//!
//! `bench-host` runs the report's cases `--repeats` times (default 5) and
//! adds a `host.bench` section of median/IQR host phase timings; `compare`
//! gates those medians with an IQR-derived tolerance (the noise-aware host
//! gate). `--host-profile` prints a per-phase host wall-clock and
//! allocation table after an experiment; `--inject-alloc <bytes>` is a
//! test hook that plants one synthetic allocation per rank per step inside
//! the connectivity phase so the alloc gate can be exercised end to end.
//!
//! `analyze` runs the trace analyzer (critical path, wait states, comm
//! matrix, imbalance advisor — see docs/OBSERVABILITY.md §Analysis) on an
//! experiment's representative case or on a previously written trace file.

use overset_bench::amr_experiments::{ablate_grouping, fig12};
use overset_bench::analyze::{run_analyze, run_analyze_diff};
use overset_bench::experiments::*;
use overset_bench::report::{build_report, build_report_host_bench, compare_reports};
use overset_comm::trace::TraceConfig;
use overset_comm::{CategoryFilter, StreamConfig};

/// Build the trace config from validated CLI values. Rejects a zero sample
/// stride and malformed filter lists with a usage-style message; callers
/// print it and exit 2.
fn parse_trace_config(filter: &Option<String>, sample: u32) -> Result<TraceConfig, String> {
    if sample == 0 {
        return Err("--trace-sample requires an integer >= 1 (got 0)".to_string());
    }
    let mut tc = TraceConfig::enabled();
    if let Some(csv) = filter {
        let f = CategoryFilter::parse(csv).map_err(|e| format!("--trace-filter: {e}"))?;
        tc = tc.with_filter(f);
    }
    Ok(tc.with_sampling(sample))
}

fn run_compare(args: &[String]) -> i32 {
    let mut tol_pct = 5.0;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol-pct" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol_pct = v,
                _ => {
                    eprintln!("--tol-pct requires a non-negative number");
                    return 2;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                return 2;
            }
            _ => paths.push(a),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: repro compare <baseline.json> <new.json> [--tol-pct N]");
        return 2;
    }
    compare_reports(paths[0], paths[1], tol_pct)
}

#[derive(Debug)]
struct Cli {
    which: String,
    quick: bool,
    trace_path: Option<String>,
    trace_stream: Option<String>,
    show_metrics: bool,
    out_path: Option<String>,
    trace_filter: Option<String>,
    trace_sample: u32,
    max_threads: Option<usize>,
    no_inverse_map: bool,
    no_arena: bool,
    no_incremental_invmap: bool,
    no_simd: bool,
    transport: Option<String>,
    host_profile: bool,
    inject_alloc: usize,
    repeats: Option<usize>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        which: "all".to_string(),
        quick: false,
        trace_path: None,
        trace_stream: None,
        show_metrics: false,
        out_path: None,
        trace_filter: None,
        trace_sample: 1,
        max_threads: None,
        no_inverse_map: false,
        no_arena: false,
        no_incremental_invmap: false,
        no_simd: false,
        transport: None,
        host_profile: false,
        inject_alloc: 0,
        repeats: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--no-inverse-map" => cli.no_inverse_map = true,
            "--no-arena" => cli.no_arena = true,
            "--no-incremental-invmap" => cli.no_incremental_invmap = true,
            "--no-simd" => cli.no_simd = true,
            "--metrics" => cli.show_metrics = true,
            "--host-profile" => cli.host_profile = true,
            "--inject-alloc" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cli.inject_alloc = n,
                None => return Err("--inject-alloc requires a byte count".to_string()),
            },
            "--repeats" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cli.repeats = Some(n),
                _ => return Err("--repeats requires an integer >= 1".to_string()),
            },
            "--trace" => match it.next() {
                Some(p) => cli.trace_path = Some(p.clone()),
                None => return Err("--trace requires an output path".to_string()),
            },
            "--trace-stream" => match it.next() {
                Some(d) => cli.trace_stream = Some(d.clone()),
                None => return Err("--trace-stream requires an output directory".to_string()),
            },
            "-o" | "--out" => match it.next() {
                Some(p) => cli.out_path = Some(p.clone()),
                None => return Err(format!("{a} requires an output path")),
            },
            "--trace-filter" => match it.next() {
                Some(f) => cli.trace_filter = Some(f.clone()),
                None => {
                    return Err(
                        "--trace-filter requires a category list (e.g. phase,conn)".to_string()
                    )
                }
            },
            "--trace-sample" => match it.next() {
                Some(v) => match v.parse::<u32>() {
                    Ok(n) if n >= 1 => cli.trace_sample = n,
                    _ => {
                        return Err(format!("--trace-sample requires an integer >= 1 (got {v:?})"))
                    }
                },
                None => return Err("--trace-sample requires an integer >= 1".to_string()),
            },
            "--transport" => match it.next() {
                Some(t) => cli.transport = Some(t.clone()),
                None => {
                    return Err(
                        "--transport requires a backend (inproc, proc or proc:N)".to_string()
                    )
                }
            },
            "--max-threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cli.max_threads = Some(n),
                _ => return Err("--max-threads requires an integer >= 1".to_string()),
            },
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => cli.which = other.to_string(),
        }
    }
    if cli.trace_path.is_some() && cli.trace_stream.is_some() {
        return Err("--trace and --trace-stream are mutually exclusive (a streamed run keeps \
                    no in-memory spans to export)"
            .to_string());
    }
    Ok(cli)
}

/// Validate `--transport` and map it onto the effort's process-group knob.
fn parse_transport_flag(flag: &Option<String>) -> Result<Option<usize>, String> {
    let Some(s) = flag.as_deref() else { return Ok(None) };
    match overset_comm::TransportConfig::parse(s) {
        Ok(overset_comm::TransportConfig::InProcess) => Ok(None),
        Ok(overset_comm::TransportConfig::Process { processes, .. }) => Ok(Some(processes)),
        Err(e) => Err(format!("--transport: {e}")),
    }
}

/// Print a flag error and exit 2 — shared by every `Result`-returning parser.
fn exit_usage<T>(r: Result<T, String>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn run_report_cmd(args: &[String]) -> i32 {
    let cli = exit_usage(parse_cli(args));
    if cli.trace_stream.is_some() {
        eprintln!("report does not support --trace-stream (stream a plain experiment run)");
        return 2;
    }
    let mut effort = if cli.quick { Effort::quick() } else { Effort::full() };
    effort.max_threads = cli.max_threads;
    effort.use_inverse_map = !cli.no_inverse_map;
    effort.use_arena = !cli.no_arena;
    effort.use_incremental_invmap = !cli.no_incremental_invmap;
    effort.use_simd = !cli.no_simd;
    effort.proc_groups = exit_usage(parse_transport_flag(&cli.transport));
    effort.inject_alloc = cli.inject_alloc;
    let effort_name = if cli.quick { "quick" } else { "full" };
    // Trace spans are not serialized into the report; tracing here only
    // proves observability neutrality (the golden tests rely on it), so
    // leave it off unless a filter was explicitly requested.
    let trace = if cli.trace_filter.is_some() || cli.trace_sample > 1 {
        exit_usage(parse_trace_config(&cli.trace_filter, cli.trace_sample))
    } else {
        TraceConfig::disabled()
    };
    let doc = build_report(&cli.which, effort, effort_name, trace);
    write_report_doc(&doc, &cli.out_path)
}

/// `repro bench-host <experiment>`: the noise-aware host benchmark. Runs
/// the report's cases `--repeats` times (default 5) and writes a report
/// whose `host.bench` section carries median/IQR host phase timings for
/// `repro compare` to gate on.
fn run_bench_host_cmd(args: &[String]) -> i32 {
    let cli = exit_usage(parse_cli(args));
    if cli.trace_path.is_some() || cli.trace_stream.is_some() {
        eprintln!("bench-host does not support tracing flags");
        return 2;
    }
    let mut effort = if cli.quick { Effort::quick() } else { Effort::full() };
    effort.max_threads = cli.max_threads;
    effort.use_inverse_map = !cli.no_inverse_map;
    effort.use_arena = !cli.no_arena;
    effort.use_incremental_invmap = !cli.no_incremental_invmap;
    effort.use_simd = !cli.no_simd;
    effort.proc_groups = exit_usage(parse_transport_flag(&cli.transport));
    effort.inject_alloc = cli.inject_alloc;
    let effort_name = if cli.quick { "quick" } else { "full" };
    let repeats = cli.repeats.unwrap_or(5);
    let doc = build_report_host_bench(&cli.which, effort, effort_name, repeats);
    write_report_doc(&doc, &cli.out_path)
}

fn write_report_doc(doc: &overset_report::Value, out_path: &Option<String>) -> i32 {
    let text = doc.to_json();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text.as_bytes()) {
                eprintln!("failed to write report to {path}: {e}");
                return 2;
            }
            eprintln!("[report: {} bytes -> {path}]", text.len());
        }
        None => println!("{text}"),
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => std::process::exit(run_compare(&args[1..])),
        Some("report") => std::process::exit(run_report_cmd(&args[1..])),
        Some("bench-host") => std::process::exit(run_bench_host_cmd(&args[1..])),
        Some("analyze") => std::process::exit(run_analyze(&args[1..])),
        Some("analyze-diff") => std::process::exit(run_analyze_diff(&args[1..])),
        // Dispatched before flag parsing: the forked rank-group children of
        // the smoke's process-backed run replay `repro smoke` and must reach
        // the same universe directly.
        Some("smoke") => std::process::exit(transport_smoke()),
        _ => {}
    }

    let cli = exit_usage(parse_cli(&args));
    let mut effort = if cli.quick { Effort::quick() } else { Effort::full() };
    effort.max_threads = cli.max_threads;
    effort.use_inverse_map = !cli.no_inverse_map;
    effort.use_arena = !cli.no_arena;
    effort.use_incremental_invmap = !cli.no_incremental_invmap;
    effort.use_simd = !cli.no_simd;
    effort.proc_groups = exit_usage(parse_transport_flag(&cli.transport));
    effort.inject_alloc = cli.inject_alloc;
    let which = cli.which.clone();
    // Validate trace flags before the (long) experiment run, not after.
    let mut trace_cfg = exit_usage(parse_trace_config(&cli.trace_filter, cli.trace_sample));
    if let Some(dir) = &cli.trace_stream {
        trace_cfg = trace_cfg.with_stream(StreamConfig::binary(dir));
    }

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "table1" => print_perf_table("Table 1: 2D oscillating airfoil", &table1(effort)),
        "fig5" => print_module_speedups("Fig. 5: 2D oscillating airfoil", &table1(effort)),
        "table2" => table2(effort),
        "table3" => print_perf_table("Table 3: descending delta wing", &table3(effort)),
        "fig7" => print_module_speedups("Fig. 7: descending delta wing", &table3(effort)),
        "table4" => print_perf_table("Table 4: finned-store separation", &table4(effort)),
        "fig10" => print_module_speedups("Fig. 10: finned-store separation", &table4(effort)),
        "table5" | "fig11" => table5(effort),
        "table6" => table6(effort),
        "fig12" => fig12(4),
        "scaling" => scaling(effort),
        "ablate-restart" => ablate_restart(effort),
        "ablate-sixdof" => ablate_sixdof(effort),
        "ablate-fo" => ablate_fo(effort),
        "ablate-grouping" => ablate_grouping(),
        "ablate-cache" => ablate_cache(effort),
        "ablate-invmap" => ablate_invmap(effort),
        "ablate-arena" => ablate_arena(effort),
        "ablate-simd" => ablate_simd(effort),
        "all" => {
            let rows1 = table1(effort);
            print_perf_table("Table 1: 2D oscillating airfoil", &rows1);
            print_module_speedups("Fig. 5: 2D oscillating airfoil", &rows1);
            table2(effort);
            let rows3 = table3(effort);
            print_perf_table("Table 3: descending delta wing", &rows3);
            print_module_speedups("Fig. 7: descending delta wing", &rows3);
            let rows4 = table4(effort);
            print_perf_table("Table 4: finned-store separation", &rows4);
            print_module_speedups("Fig. 10: finned-store separation", &rows4);
            table5(effort);
            table6(effort);
            fig12(4);
            ablate_restart(effort);
            ablate_sixdof(effort);
            ablate_fo(effort);
            ablate_grouping();
            ablate_cache(effort);
            ablate_invmap(effort);
            ablate_arena(effort);
            ablate_simd(effort);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "choose from: table1 fig5 table2 table3 fig7 table4 fig10 table5 fig11 \
                 table6 fig12 scaling ablate-restart ablate-sixdof ablate-fo ablate-grouping \
                 ablate-cache ablate-invmap ablate-arena ablate-simd all\n\
                 or a subcommand: report <experiment> | bench-host <experiment> | \
                 compare <baseline.json> <new.json> | analyze <experiment>|<trace.json> | smoke"
            );
            std::process::exit(2);
        }
    }

    if cli.trace_path.is_some()
        || cli.trace_stream.is_some()
        || cli.show_metrics
        || cli.host_profile
    {
        let r = traced_run(&which, effort, trace_cfg);
        if let Some(path) = &cli.trace_path {
            let json = overset_comm::chrome_trace_json(&r.trace);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            let events: usize = r.trace.iter().map(|t| t.events.len()).sum();
            eprintln!("[trace: {events} events over {} ranks -> {path}]", r.trace.len());
        }
        if let Some(dir) = &cli.trace_stream {
            // Spans went to disk as they closed; the in-memory trace is
            // empty by design. `repro analyze <dir>` consumes the result.
            eprintln!("[span stream: {} ranks -> {dir}]", r.trace.len());
        }
        if cli.show_metrics {
            print_metrics(&r);
        }
        if cli.host_profile {
            print_host_profile(&r);
        }
    }

    eprintln!("\n[{which} completed in {:?}]", t0.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn trace_sample_rejects_zero_and_malformed_values() {
        let e = parse_cli(&s(&["table1", "--trace-sample", "0"])).unwrap_err();
        assert!(e.contains(">= 1") && e.contains("0"), "{e}");
        let e = parse_cli(&s(&["table1", "--trace-sample", "abc"])).unwrap_err();
        assert!(e.contains("abc"), "{e}");
        let e = parse_cli(&s(&["table1", "--trace-sample", "-3"])).unwrap_err();
        assert!(e.contains("-3"), "{e}");
        assert!(parse_cli(&s(&["table1", "--trace-sample"])).is_err());
        // And the config builder itself guards against a zero stride.
        assert!(parse_trace_config(&None, 0).is_err());
        assert!(parse_trace_config(&None, 2).is_ok());
    }

    #[test]
    fn trace_filter_rejects_unknown_categories_with_a_clear_error() {
        let tc = parse_trace_config(&Some("phase,comm".to_string()), 1);
        assert!(tc.is_ok());
        let e = parse_trace_config(&Some("phase,bogus".to_string()), 1).unwrap_err();
        assert!(e.starts_with("--trace-filter:"), "{e}");
        assert!(e.contains("bogus"), "{e}");
        assert!(parse_cli(&s(&["table1", "--trace-filter"])).is_err());
    }

    #[test]
    fn trace_and_trace_stream_are_mutually_exclusive() {
        let c = parse_cli(&s(&["table1", "--trace-stream", "spans.d"])).unwrap();
        assert_eq!(c.trace_stream.as_deref(), Some("spans.d"));
        let e = parse_cli(&s(&["table1", "--trace", "t.json", "--trace-stream", "d"])).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        assert!(parse_cli(&s(&["table1", "--trace-stream"])).is_err());
    }

    #[test]
    fn arena_and_incremental_invmap_flags_parse() {
        let c = parse_cli(&s(&["ablate-arena"])).unwrap();
        assert!(!c.no_arena && !c.no_incremental_invmap);
        assert_eq!(c.which, "ablate-arena");
        let c = parse_cli(&s(&["table1", "--no-arena"])).unwrap();
        assert!(c.no_arena && !c.no_incremental_invmap);
        let c = parse_cli(&s(&["table1", "--no-incremental-invmap", "--no-arena"])).unwrap();
        assert!(c.no_arena && c.no_incremental_invmap);
    }

    #[test]
    fn simd_flag_parses() {
        let c = parse_cli(&s(&["ablate-simd"])).unwrap();
        assert_eq!(c.which, "ablate-simd");
        assert!(!c.no_simd);
        let c = parse_cli(&s(&["table1", "--no-simd", "--quick"])).unwrap();
        assert!(c.no_simd && c.quick);
    }

    #[test]
    fn transport_flag_maps_to_proc_groups() {
        assert_eq!(parse_transport_flag(&None).unwrap(), None);
        assert_eq!(parse_transport_flag(&Some("inproc".into())).unwrap(), None);
        assert_eq!(parse_transport_flag(&Some("proc:3".into())).unwrap(), Some(3));
        assert!(parse_transport_flag(&Some("carrier-pigeon".into())).is_err());
    }
}
