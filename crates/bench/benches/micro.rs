//! Criterion microbenchmarks of the hot kernels: the per-step building
//! blocks whose costs the virtual-time model charges.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use overset_balance::{group_grids, static_balance, AdjacencyMatrix};
use overset_connectivity::donor::center_start;
use overset_connectivity::{
    cut_holes_and_find_fringe, cut_holes_and_find_fringe_with_map, walk_search, InverseMap,
    SearchCost,
};
use overset_grid::curvilinear::Solid;
use overset_grid::gen::airfoil::{airfoil_system, near_grid};
use overset_grid::Dims;
use overset_solver::adi::{implicit_sweeps, SweepScratch};
use overset_solver::kernels::solve_lanes;
use overset_solver::rhs::compute_residual;
use overset_solver::tridiag::{solve_with, TriScratch};
use overset_solver::{select_isa, Block, FlowConditions, Isa, Scratch, SerialComm, W};

fn fc() -> FlowConditions {
    let mut fc = FlowConditions::new(0.8, 0.0, 1.0e6);
    fc.dt = 0.004;
    fc
}

fn solver_kernels(c: &mut Criterion) {
    let g = near_grid(133, 40, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
    let mut scratch = Scratch::for_block(&block);

    c.bench_function("rhs/residual_5k_nodes", |b| {
        b.iter(|| compute_residual(&block, &fc(), &mut scratch.res))
    });

    c.bench_function("adi/implicit_sweeps_5k_nodes", |b| {
        b.iter_batched(
            || {
                let mut dq = overset_grid::field::StateField::new(block.local_dims);
                for (i, v) in dq.as_mut_slice().iter_mut().enumerate() {
                    *v = ((i * 31) % 17) as f64 * 1e-6;
                }
                dq
            },
            |mut dq| implicit_sweeps(&block, &fc(), &mut dq, &mut SerialComm, &mut scratch.sweep),
            BatchSize::LargeInput,
        )
    });

    // The same sweeps through the scalar lane fallback (`--no-simd` path):
    // the pair quantifies the batched-kernel host speedup without cross-build
    // noise.
    let mut scalar_sweep = SweepScratch::new(Isa::Scalar);
    c.bench_function("adi/implicit_sweeps_5k_nodes_scalar", |b| {
        b.iter_batched(
            || {
                let mut dq = overset_grid::field::StateField::new(block.local_dims);
                for (i, v) in dq.as_mut_slice().iter_mut().enumerate() {
                    *v = ((i * 31) % 17) as f64 * 1e-6;
                }
                dq
            },
            |mut dq| implicit_sweeps(&block, &fc(), &mut dq, &mut SerialComm, &mut scalar_sweep),
            BatchSize::LargeInput,
        )
    });
}

/// Scalar Thomas (one line at a time) vs the lane-batched kernel solving
/// [`W`] lines per call, at short and long line lengths.
fn tridiag_kernels(c: &mut Criterion) {
    let isa = select_isa(true);
    for n in [32usize, 128] {
        // W independent diagonally dominant systems.
        let a: Vec<f64> = (0..n * W).map(|i| -0.4 - 0.01 * (i / W) as f64).collect();
        let bd: Vec<f64> = (0..n * W).map(|i| 2.0 + 0.05 * (i / W) as f64).collect();
        let cc: Vec<f64> = (0..n * W).map(|i| -0.3 - 0.02 * (i / W) as f64).collect();
        let d0: Vec<f64> = (0..n * W).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();

        // De-interleave for the scalar reference.
        let lane = |v: &[f64], l: usize| -> Vec<f64> { (0..n).map(|i| v[i * W + l]).collect() };
        let las: Vec<Vec<f64>> = (0..W).map(|l| lane(&a, l)).collect();
        let lbs: Vec<Vec<f64>> = (0..W).map(|l| lane(&bd, l)).collect();
        let lcs: Vec<Vec<f64>> = (0..W).map(|l| lane(&cc, l)).collect();
        let lds: Vec<Vec<f64>> = (0..W).map(|l| lane(&d0, l)).collect();

        let mut ws = TriScratch::default();
        c.bench_function(&format!("tridiag/thomas_scalar_4lines_n{n}"), |b| {
            b.iter_batched(
                || lds.clone(),
                |mut ds| {
                    for l in 0..W {
                        solve_with(&las[l], &lbs[l], &lcs[l], &mut ds[l], &mut ws);
                    }
                    ds
                },
                BatchSize::SmallInput,
            )
        });

        let mut cp = vec![0.0; n * W];
        c.bench_function(&format!("tridiag/thomas_batched_4lines_n{n}"), |b| {
            b.iter_batched(
                || d0.clone(),
                |mut d| {
                    solve_lanes(isa, &a, &bd, &cc, &mut d, &mut cp);
                    d
                },
                BatchSize::SmallInput,
            )
        });
    }
}

/// The batched trilinear Newton inversion ([`W`] candidate cells per call)
/// through the AVX2 lanes vs the portable scalar lanes (the `--no-simd`
/// path) — the donor-search half of the SIMD ablation pair.
fn trilinear_kernels(c: &mut Criterion) {
    use overset_connectivity::kernels::{invert_cells_lanes, CORNERS};
    let g = near_grid(133, 40, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
    let ow = block.owned_local();
    let kmax = if block.two_d { 1 } else { 2 };
    // W interior cells, one per lane; targets just off each cell's centroid
    // so Newton runs several iterations.
    let mut corners = [0.0f64; CORNERS * 3 * W];
    let mut targets = [0.0f64; 3 * W];
    for l in 0..W {
        let cell = overset_grid::Ijk::new(ow.lo.i + 30 + 7 * l, ow.lo.j + 10 + 2 * l, ow.lo.k);
        let mut centroid = [0.0f64; 3];
        for dk in 0..kmax {
            for dj in 0..2 {
                for di in 0..2 {
                    let n = overset_grid::Ijk::new(cell.i + di, cell.j + dj, cell.k + dk);
                    let x = block.coords[n];
                    let cidx = di + 2 * dj + 4 * dk;
                    for m in 0..3 {
                        corners[(cidx * 3 + m) * W + l] = x[m];
                        centroid[m] += x[m] / (4 * kmax) as f64;
                    }
                }
            }
        }
        for m in 0..3 {
            targets[m * W + l] = centroid[m] + 1e-3 * (l as f64 + 1.0);
        }
    }
    for (name, isa) in [("batched", select_isa(true)), ("scalar", Isa::Scalar)] {
        c.bench_function(&format!("donor/trilinear_invert_4cells_{name}"), |b| {
            b.iter(|| {
                let mut t_out = [0.0f64; 3 * W];
                let mut iters = [0u64; W];
                let mut ok = [false; W];
                invert_cells_lanes(
                    isa,
                    block.two_d,
                    &corners,
                    &targets,
                    &mut t_out,
                    &mut iters,
                    &mut ok,
                );
                (t_out, iters, ok)
            })
        });
    }
}

fn connectivity_kernels(c: &mut Criterion) {
    let g = near_grid(265, 80, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());

    c.bench_function("donor/cold_walk_search", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, [0.9, 0.35, 0.0], center_start(&block), &mut cost)
        })
    });

    let warm_start = {
        let mut cost = SearchCost::default();
        match walk_search(&block, [0.9, 0.35, 0.0], center_start(&block), &mut cost) {
            overset_connectivity::SearchOutcome::Found(d) => d.cell,
            _ => center_start(&block),
        }
    };
    c.bench_function("donor/warm_walk_search", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, [0.9, 0.35, 0.0], warm_start, &mut cost)
        })
    });

    let sys = airfoil_system(0.5);
    let solids: Vec<(usize, Solid)> =
        sys.iter().enumerate().flat_map(|(g, gr)| gr.solids.iter().map(move |s| (g, *s))).collect();
    c.bench_function("holes/cut_and_fringe_5k_nodes", |b| {
        b.iter_batched(
            || Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc()),
            |mut blk| cut_holes_and_find_fringe(&mut blk, &solids),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("holes/cut_and_fringe_5k_nodes_masked", |b| {
        let inv = {
            let blk = Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc());
            InverseMap::build(&blk)
        };
        b.iter_batched(
            || Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc()),
            |mut blk| cut_holes_and_find_fringe_with_map(&mut blk, &solids, Some(&inv)),
            BatchSize::LargeInput,
        )
    });
}

fn inverse_map_kernels(c: &mut Criterion) {
    let g = near_grid(265, 80, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());

    c.bench_function("invmap/build_21k_nodes", |b| b.iter(|| InverseMap::build(&block)));

    let inv = InverseMap::build(&block);
    c.bench_function("invmap/query", |b| b.iter(|| inv.query([0.9, 0.35, 0.0])));

    // The pair the virtual-time savings come from: a cold search from the
    // block-center cell vs the same search from the O(1) map seed.
    let target = [0.9, 0.35, 0.0];
    c.bench_function("donor/cold_walk_center_start", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, target, center_start(&block), &mut cost)
        })
    });
    c.bench_function("donor/cold_walk_map_seeded", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, target, inv.query(target), &mut cost)
        })
    });
}

fn balance_kernels(c: &mut Criterion) {
    let sizes: Vec<usize> = (0..16).map(|i| 20_000 + i * 3_137).collect();
    c.bench_function("balance/static_algorithm1_16_grids", |b| {
        b.iter(|| static_balance(&sizes, 61))
    });

    let n = 400;
    let brick_sizes: Vec<usize> = (0..n).map(|i| 200 + (i * 97) % 800).collect();
    let mut adj = AdjacencyMatrix::new(n);
    for i in 0..n {
        for d in [1usize, 20] {
            if i + d < n {
                adj.connect(i, i + d);
            }
        }
    }
    c.bench_function("balance/grouping_algorithm3_400_bricks", |b| {
        b.iter(|| group_grids(&brick_sizes, 16, &adj))
    });

    c.bench_function("decomp/lattice_split_61", |b| {
        b.iter(|| overset_grid::decomp::lattice_split(Dims::new(120, 90, 70), 61))
    });
}

criterion_group!(
    benches,
    solver_kernels,
    tridiag_kernels,
    trilinear_kernels,
    connectivity_kernels,
    inverse_map_kernels,
    balance_kernels
);
criterion_main!(benches);
