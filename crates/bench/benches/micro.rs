//! Criterion microbenchmarks of the hot kernels: the per-step building
//! blocks whose costs the virtual-time model charges.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use overset_balance::{group_grids, static_balance, AdjacencyMatrix};
use overset_connectivity::donor::center_start;
use overset_connectivity::{
    cut_holes_and_find_fringe, cut_holes_and_find_fringe_with_map, walk_search, InverseMap,
    SearchCost,
};
use overset_grid::curvilinear::Solid;
use overset_grid::gen::airfoil::{airfoil_system, near_grid};
use overset_grid::Dims;
use overset_solver::adi::implicit_sweeps;
use overset_solver::rhs::compute_residual;
use overset_solver::{Block, FlowConditions, Scratch, SerialComm};

fn fc() -> FlowConditions {
    let mut fc = FlowConditions::new(0.8, 0.0, 1.0e6);
    fc.dt = 0.004;
    fc
}

fn solver_kernels(c: &mut Criterion) {
    let g = near_grid(133, 40, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
    let mut scratch = Scratch::for_block(&block);

    c.bench_function("rhs/residual_5k_nodes", |b| {
        b.iter(|| compute_residual(&block, &fc(), &mut scratch.res))
    });

    c.bench_function("adi/implicit_sweeps_5k_nodes", |b| {
        b.iter_batched(
            || {
                let mut dq = overset_grid::field::StateField::new(block.local_dims);
                for (i, v) in dq.as_mut_slice().iter_mut().enumerate() {
                    *v = ((i * 31) % 17) as f64 * 1e-6;
                }
                dq
            },
            |mut dq| implicit_sweeps(&block, &fc(), &mut dq, &mut SerialComm),
            BatchSize::LargeInput,
        )
    });
}

fn connectivity_kernels(c: &mut Criterion) {
    let g = near_grid(265, 80, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());

    c.bench_function("donor/cold_walk_search", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, [0.9, 0.35, 0.0], center_start(&block), &mut cost)
        })
    });

    let warm_start = {
        let mut cost = SearchCost::default();
        match walk_search(&block, [0.9, 0.35, 0.0], center_start(&block), &mut cost) {
            overset_connectivity::SearchOutcome::Found(d) => d.cell,
            _ => center_start(&block),
        }
    };
    c.bench_function("donor/warm_walk_search", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, [0.9, 0.35, 0.0], warm_start, &mut cost)
        })
    });

    let sys = airfoil_system(0.5);
    let solids: Vec<(usize, Solid)> =
        sys.iter().enumerate().flat_map(|(g, gr)| gr.solids.iter().map(move |s| (g, *s))).collect();
    c.bench_function("holes/cut_and_fringe_5k_nodes", |b| {
        b.iter_batched(
            || Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc()),
            |mut blk| cut_holes_and_find_fringe(&mut blk, &solids),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("holes/cut_and_fringe_5k_nodes_masked", |b| {
        let inv = {
            let blk = Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc());
            InverseMap::build(&blk)
        };
        b.iter_batched(
            || Block::from_grid(2, &sys[2], sys[2].dims().full_box(), [None; 6], &fc()),
            |mut blk| cut_holes_and_find_fringe_with_map(&mut blk, &solids, Some(&inv)),
            BatchSize::LargeInput,
        )
    });
}

fn inverse_map_kernels(c: &mut Criterion) {
    let g = near_grid(265, 80, 1.1);
    let block = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());

    c.bench_function("invmap/build_21k_nodes", |b| b.iter(|| InverseMap::build(&block)));

    let inv = InverseMap::build(&block);
    c.bench_function("invmap/query", |b| b.iter(|| inv.query([0.9, 0.35, 0.0])));

    // The pair the virtual-time savings come from: a cold search from the
    // block-center cell vs the same search from the O(1) map seed.
    let target = [0.9, 0.35, 0.0];
    c.bench_function("donor/cold_walk_center_start", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, target, center_start(&block), &mut cost)
        })
    });
    c.bench_function("donor/cold_walk_map_seeded", |b| {
        b.iter(|| {
            let mut cost = SearchCost::default();
            walk_search(&block, target, inv.query(target), &mut cost)
        })
    });
}

fn balance_kernels(c: &mut Criterion) {
    let sizes: Vec<usize> = (0..16).map(|i| 20_000 + i * 3_137).collect();
    c.bench_function("balance/static_algorithm1_16_grids", |b| {
        b.iter(|| static_balance(&sizes, 61))
    });

    let n = 400;
    let brick_sizes: Vec<usize> = (0..n).map(|i| 200 + (i * 97) % 800).collect();
    let mut adj = AdjacencyMatrix::new(n);
    for i in 0..n {
        for d in [1usize, 20] {
            if i + d < n {
                adj.connect(i, i + d);
            }
        }
    }
    c.bench_function("balance/grouping_algorithm3_400_bricks", |b| {
        b.iter(|| group_grids(&brick_sizes, 16, &adj))
    });

    c.bench_function("decomp/lattice_split_61", |b| {
        b.iter(|| overset_grid::decomp::lattice_split(Dims::new(120, 90, 70), 61))
    });
}

criterion_group!(
    benches,
    solver_kernels,
    connectivity_kernels,
    inverse_map_kernels,
    balance_kernels
);
criterion_main!(benches);
