//! Isentropic vortex advection: the classic Euler-solver accuracy test.
//! An exact solution of the Euler equations (a vortex advecting with the
//! freestream) is integrated for a short time; the discrete solution must
//! track the exactly-translated vortex, and the error must shrink
//! faster than first order with grid refinement (2nd-order space, 1st-order
//! time, dominated by the spatial term at these timestep sizes).

use overset_grid::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind};
use overset_grid::field::Field3;
use overset_grid::{Dims, Ijk};
use overset_solver::conditions::{conservatives, FlowConditions, GAMMA};
use overset_solver::{step_block, Block, Scratch, SerialComm};

const VORTEX_BETA: f64 = 1.0;
const MACH: f64 = 0.5;

/// Exact vortex state centered at `(xc, yc)`.
fn vortex_state(x: f64, y: f64, xc: f64, yc: f64) -> [f64; 5] {
    let (dx, dy) = (x - xc, y - yc);
    let r2 = dx * dx + dy * dy;
    let e = (0.5 * (1.0 - r2)).exp();
    let du = VORTEX_BETA / (2.0 * std::f64::consts::PI) * e * (-dy);
    let dv = VORTEX_BETA / (2.0 * std::f64::consts::PI) * e * dx;
    let dt2 = (GAMMA - 1.0) * VORTEX_BETA * VORTEX_BETA
        / (8.0 * GAMMA * std::f64::consts::PI * std::f64::consts::PI)
        * (1.0 - r2).exp();
    let t = 1.0 / GAMMA - dt2; // T∞ = p∞/ρ∞ = 1/γ in a∞ units
    let rho = (t * GAMMA).powf(1.0 / (GAMMA - 1.0));
    let p = rho * t;
    [rho, MACH + du, dv, 0.0, p]
}

fn vortex_block(n: usize, half: f64) -> Block {
    let d = Dims::new(n, n, 1);
    let h = 2.0 * half / (n - 1) as f64;
    let coords = Field3::from_fn(d, |p: Ijk| [-half + h * p.i as f64, -half + h * p.j as f64, 0.0]);
    let mut g = CurvilinearGrid::new("v", coords, GridKind::Background);
    g.patches =
        Face::ALL[..4].iter().map(|&f| BoundaryPatch { face: f, kind: BcKind::Farfield }).collect();
    let fc = FlowConditions::new(MACH, 0.0, 0.0);
    let mut b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
    for p in b.local_dims.iter().collect::<Vec<_>>() {
        let [x, y, _] = b.coords[p];
        b.q.set_node(p, conservatives(&vortex_state(x, y, 0.0, 0.0)));
    }
    b
}

/// L2 density error against the exactly-advected vortex after `t_end`.
fn advect_error(n: usize, t_end: f64, dt: f64) -> f64 {
    let mut fc = FlowConditions::new(MACH, 0.0, 0.0);
    fc.dt = dt;
    let mut b = vortex_block(n, 5.0);
    let mut s = Scratch::for_block(&b);
    let steps = (t_end / dt).round() as usize;
    for _ in 0..steps {
        step_block(&mut b, &fc, None, &mut SerialComm, &mut s);
    }
    let xc = MACH * t_end;
    let mut sum = 0.0;
    let mut count = 0usize;
    for p in b.owned_local().iter() {
        let [x, y, _] = b.coords[p];
        // Skip the far field (boundary effects) — measure near the vortex.
        if (x - xc).abs() > 3.0 || y.abs() > 3.0 {
            continue;
        }
        let exact = conservatives(&vortex_state(x, y, xc, 0.0));
        let got = b.q.node(p);
        sum += (got[0] - exact[0]).powi(2);
        count += 1;
    }
    (sum / count as f64).sqrt()
}

#[test]
fn vortex_advects_with_small_error() {
    let err = advect_error(65, 0.5, 0.01);
    assert!(err < 5e-3, "vortex error too large: {err}");
}

#[test]
fn vortex_error_converges_with_resolution() {
    // Refine 2x in space (and time, to keep the temporal error subordinate):
    // the error must drop by clearly more than 1st order.
    let coarse = advect_error(49, 0.4, 0.01);
    let fine = advect_error(97, 0.4, 0.005);
    let ratio = coarse / fine;
    assert!(ratio > 2.0, "convergence ratio {ratio} (coarse {coarse}, fine {fine})");
}

#[test]
fn vortex_preserves_total_mass_in_interior() {
    // The vortex never reaches the boundary in this window: interior mass
    // (sum of ρJ) is conserved to truncation level.
    let mut fc = FlowConditions::new(MACH, 0.0, 0.0);
    fc.dt = 0.01;
    let mut b = vortex_block(65, 5.0);
    let mut s = Scratch::for_block(&b);
    let mass = |b: &Block| -> f64 {
        let mut m = 0.0;
        for p in b.owned_local().iter() {
            m += b.q.node(p)[0] * b.metrics[p].jac;
        }
        m
    };
    let m0 = mass(&b);
    for _ in 0..30 {
        step_block(&mut b, &fc, None, &mut SerialComm, &mut s);
    }
    let m1 = mass(&b);
    let rel = (m1 - m0).abs() / m0;
    assert!(rel < 2e-4, "mass drift {rel}");
}
