//! Property-based tests of solver invariants.

use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
use overset_grid::field::{Field3, StateField};
use overset_grid::{Dims, Ijk};
use overset_solver::adi::{implicit_sweeps, SerialComm, SweepScratch};
use overset_solver::conditions::{
    conservatives, enforce_positivity, pressure, primitives, FlowConditions,
};
use overset_solver::kernels::{
    backward_segment_lanes, forward_segment_lanes, solve_lanes, solve_periodic_lanes,
};
use overset_solver::rhs::{compute_residual, residual_l2};
use overset_solver::tridiag::{self, ForwardCarry};
use overset_solver::{select_isa, Block, Isa, W};
use proptest::prelude::*;

fn wavy_block(n: usize, amp: f64, fc: &FlowConditions) -> Block {
    let d = Dims::new(n, n, n);
    let coords = Field3::from_fn(d, |p| {
        let (x, y, z) = (p.i as f64 * 0.3, p.j as f64 * 0.3, p.k as f64 * 0.3);
        [x + amp * (2.0 * y).sin(), y + amp * (1.5 * z).cos() - amp, z + amp * (1.0 * x).sin()]
    });
    let g = CurvilinearGrid::new("w", coords, GridKind::Background);
    Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
}

/// Deterministic diagonally-dominant random systems, lane-interleaved
/// (`len == n * W`).
fn lane_systems(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let (mut a, mut b, mut c, mut d) =
        (vec![0.0; n * W], vec![0.0; n * W], vec![0.0; n * W], vec![0.0; n * W]);
    for i in 0..n * W {
        a[i] = -(0.2 + 0.3 * next().abs());
        c[i] = -(0.2 + 0.3 * next().abs());
        b[i] = 1.5 + a[i].abs() + c[i].abs() + next().abs();
        d[i] = 4.0 * next();
    }
    (a, b, c, d)
}

/// Deinterleave one lane from a lane-major array.
fn lane_of(src: &[f64], l: usize) -> Vec<f64> {
    src.chunks(W).map(|r| r[l]).collect()
}

/// Both ISAs worth testing on this host: the portable scalar lanes and, on
/// AVX2 hardware, the vector path (`select_isa(true)` degrades to Scalar
/// elsewhere, making the comparison trivially true rather than wrong).
fn isas() -> [Isa; 2] {
    [Isa::Scalar, select_isa(true)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lane-batched open Thomas solve is bit-identical, lane by lane,
    /// to the scalar solver on every ISA.
    #[test]
    fn batched_thomas_bit_equals_scalar(n in 2usize..48, seed in 1u64..(1 << 60)) {
        let (a, b, c, d0) = lane_systems(n, seed);
        for isa in isas() {
            let mut d = d0.clone();
            let mut cp = vec![0.0; n * W];
            solve_lanes(isa, &a, &b, &c, &mut d, &mut cp);
            for l in 0..W {
                let mut ds = lane_of(&d0, l);
                tridiag::solve(&lane_of(&a, l), &lane_of(&b, l), &lane_of(&c, l), &mut ds);
                for i in 0..n {
                    prop_assert_eq!(
                        d[i * W + l].to_bits(), ds[i].to_bits(),
                        "row {} lane {} ({:?})", i, l, isa
                    );
                }
            }
        }
    }

    /// The lane-batched periodic (Sherman–Morrison) solve is bit-identical
    /// to the scalar one.
    #[test]
    fn batched_periodic_thomas_bit_equals_scalar(n in 3usize..48, seed in 1u64..(1 << 60)) {
        let (a, b, c, d0) = lane_systems(n, seed);
        for isa in isas() {
            let mut d = d0.clone();
            let (mut bb, mut z, mut cp) =
                (vec![0.0; n * W], vec![0.0; n * W], vec![0.0; n * W]);
            solve_periodic_lanes(isa, &a, &b, &c, &mut d, &mut bb, &mut z, &mut cp);
            for l in 0..W {
                let mut ds = lane_of(&d0, l);
                tridiag::solve_periodic(&lane_of(&a, l), &lane_of(&b, l), &lane_of(&c, l), &mut ds);
                for i in 0..n {
                    prop_assert_eq!(
                        d[i * W + l].to_bits(), ds[i].to_bits(),
                        "row {} lane {} ({:?})", i, l, isa
                    );
                }
            }
        }
    }

    /// The pipelined segment kernels — forward elimination with a carry,
    /// back substitution with a downstream unknown — are bit-identical to
    /// the scalar segment functions across an arbitrary 3-way split of the
    /// line.
    #[test]
    fn batched_pipelined_segments_bit_equal_scalar(
        n1 in 1usize..12, n2 in 1usize..12, n3 in 1usize..12,
        seed in 1u64..(1 << 60),
    ) {
        let ns = [n1, n2, n3];
        let n: usize = ns.iter().sum();
        let (a, b, c, d0) = lane_systems(n, seed);
        for isa in isas() {
            // Lane-batched pipeline over the three segments.
            let mut d = d0.clone();
            let mut cp = vec![0.0; n * W];
            let mut carry: Option<([f64; W], [f64; W])> = None;
            let mut row = 0;
            for &len in &ns {
                let (lo, hi) = (row * W, (row + len) * W);
                let c_in = carry.as_ref().map(|(cc, dd)| (cc, dd));
                carry = Some(forward_segment_lanes(
                    isa, &a[lo..hi], &b[lo..hi], &c[lo..hi], &mut d[lo..hi],
                    &mut cp[lo..hi], c_in,
                ));
                row += len;
            }
            let mut x_down: Option<[f64; W]> = None;
            for &len in ns.iter().rev() {
                row -= len;
                let (lo, hi) = (row * W, (row + len) * W);
                x_down = Some(backward_segment_lanes(
                    isa, &cp[lo..hi], &mut d[lo..hi], x_down.as_ref(),
                ));
            }
            // Scalar pipeline per lane.
            for l in 0..W {
                let (al, bl, cl) = (lane_of(&a, l), lane_of(&b, l), lane_of(&c, l));
                let mut ds = lane_of(&d0, l);
                let mut cps = vec![0.0; n];
                let mut sc: Option<ForwardCarry> = None;
                let mut row = 0;
                for &len in &ns {
                    let (lo, hi) = (row, row + len);
                    sc = Some(tridiag::forward_segment(
                        &al[lo..hi], &bl[lo..hi], &cl[lo..hi], &mut ds[lo..hi],
                        &mut cps[lo..hi], sc,
                    ));
                    row += len;
                }
                let mut xd: Option<f64> = None;
                for &len in ns.iter().rev() {
                    row -= len;
                    let (lo, hi) = (row, row + len);
                    xd = Some(tridiag::backward_segment(&cps[lo..hi], &mut ds[lo..hi], xd));
                }
                for i in 0..n {
                    prop_assert_eq!(
                        d[i * W + l].to_bits(), ds[i].to_bits(),
                        "row {} lane {} ({:?})", i, l, isa
                    );
                }
            }
        }
    }

    /// Whole-sweep bit-equality on ragged line counts: a 5³/6³/7³ block has
    /// 25/36/49 implicit lines per direction — mostly not divisible by the
    /// lane width — so the tail-group replication path is exercised. The
    /// full ADI update must be bit-identical across ISAs.
    #[test]
    fn batched_sweeps_bit_equal_scalar_on_ragged_lines(
        mach in 0.2f64..1.5,
        dt in 0.01f64..0.4,
        amp in 0.0f64..0.06,
        n in 5usize..8,
        seed in 1u64..(1 << 60),
    ) {
        let mut fc = FlowConditions::new(mach, 0.0, 0.0);
        fc.dt = dt;
        let b = wavy_block(n, amp, &fc);
        let mut s = seed | 1;
        let mut draw = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut dq0 = StateField::new(b.local_dims);
        for k in 0..b.local_dims.nk {
            for j in 0..b.local_dims.nj {
                for i in 0..b.local_dims.ni {
                    let v = [draw(), draw(), draw(), draw(), draw()];
                    dq0.set_node(Ijk::new(i, j, k), v);
                }
            }
        }
        let mut results: Vec<Vec<u64>> = Vec::new();
        for isa in isas() {
            let mut dq = dq0.clone();
            let mut ws = SweepScratch::default();
            ws.isa = isa;
            implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut ws);
            results.push(dq.as_slice().iter().map(|x| x.to_bits()).collect());
        }
        prop_assert_eq!(&results[0], &results[1], "sweep bits diverged across ISAs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Freestream preservation: zero residual at uniform flow on arbitrary
    /// smooth curvilinear grids at any Mach and angle.
    #[test]
    fn freestream_preserved_on_wavy_grids(
        mach in 0.1f64..2.0,
        alpha in -20.0f64..20.0,
        amp in 0.0f64..0.08,
    ) {
        let fc = FlowConditions::new(mach, alpha, 0.0);
        let b = wavy_block(7, amp, &fc);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        prop_assert!(residual_l2(&b, &res) < 1e-9, "res {}", residual_l2(&b, &res));
    }

    /// Primitive/conservative conversions round-trip for physical states.
    #[test]
    fn state_conversions_roundtrip(
        rho in 0.01f64..10.0,
        u in -3.0f64..3.0,
        v in -3.0f64..3.0,
        w in -3.0f64..3.0,
        p in 0.01f64..10.0,
    ) {
        let q = conservatives(&[rho, u, v, w, p]);
        let back = primitives(&q);
        prop_assert!((back[0] - rho).abs() < 1e-10);
        prop_assert!((back[4] - p).abs() < 1e-9);
        prop_assert!((pressure(&q) - p).abs() < 1e-9);
    }

    /// Positivity enforcement: output always has positive density and
    /// pressure, and physical states pass through untouched.
    #[test]
    fn positivity_floor_properties(
        rho in -1.0f64..5.0,
        u in -10.0f64..10.0,
        e in -5.0f64..20.0,
    ) {
        let mut q = [rho, rho * u, 0.0, 0.0, e];
        enforce_positivity(&mut q);
        prop_assert!(q[0] > 0.0);
        prop_assert!(pressure(&q) > 0.0);
        prop_assert!(q.iter().all(|x| x.is_finite()));
        // Healthy states are untouched.
        let mut healthy = conservatives(&[1.0, 0.5, 0.1, 0.0, 0.7]);
        let orig = healthy;
        let clamped = enforce_positivity(&mut healthy);
        prop_assert!(!clamped);
        prop_assert_eq!(healthy, orig);
    }

    /// The implicit operator is a contraction on impulses: the update stays
    /// finite and no component exceeds the impulse magnitude.
    #[test]
    fn implicit_sweep_is_stable_contraction(
        mach in 0.1f64..1.6,
        dt in 0.01f64..0.5,
        ci in 2usize..5, cj in 2usize..5, ck in 2usize..5,
    ) {
        let mut fc = FlowConditions::new(mach, 0.0, 0.0);
        fc.dt = dt;
        let b = wavy_block(7, 0.03, &fc);
        let mut dq = StateField::new(b.local_dims);
        let c = b.to_local(overset_grid::Ijk::new(ci, cj, ck));
        dq.set_node(c, [1.0, 0.5, -0.2, 0.1, 2.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut SweepScratch::default());
        let out = dq.node(c);
        prop_assert!(out.iter().all(|x| x.is_finite()));
        let mx = dq.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        prop_assert!(mx <= 2.0 + 1e-9, "new extremum {mx}");
    }
}
