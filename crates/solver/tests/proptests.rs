//! Property-based tests of solver invariants.

use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
use overset_grid::field::{Field3, StateField};
use overset_grid::Dims;
use overset_solver::adi::{implicit_sweeps, SerialComm};
use overset_solver::conditions::{
    conservatives, enforce_positivity, pressure, primitives, FlowConditions,
};
use overset_solver::rhs::{compute_residual, residual_l2};
use overset_solver::Block;
use proptest::prelude::*;

fn wavy_block(n: usize, amp: f64, fc: &FlowConditions) -> Block {
    let d = Dims::new(n, n, n);
    let coords = Field3::from_fn(d, |p| {
        let (x, y, z) = (p.i as f64 * 0.3, p.j as f64 * 0.3, p.k as f64 * 0.3);
        [x + amp * (2.0 * y).sin(), y + amp * (1.5 * z).cos() - amp, z + amp * (1.0 * x).sin()]
    });
    let g = CurvilinearGrid::new("w", coords, GridKind::Background);
    Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Freestream preservation: zero residual at uniform flow on arbitrary
    /// smooth curvilinear grids at any Mach and angle.
    #[test]
    fn freestream_preserved_on_wavy_grids(
        mach in 0.1f64..2.0,
        alpha in -20.0f64..20.0,
        amp in 0.0f64..0.08,
    ) {
        let fc = FlowConditions::new(mach, alpha, 0.0);
        let b = wavy_block(7, amp, &fc);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        prop_assert!(residual_l2(&b, &res) < 1e-9, "res {}", residual_l2(&b, &res));
    }

    /// Primitive/conservative conversions round-trip for physical states.
    #[test]
    fn state_conversions_roundtrip(
        rho in 0.01f64..10.0,
        u in -3.0f64..3.0,
        v in -3.0f64..3.0,
        w in -3.0f64..3.0,
        p in 0.01f64..10.0,
    ) {
        let q = conservatives(&[rho, u, v, w, p]);
        let back = primitives(&q);
        prop_assert!((back[0] - rho).abs() < 1e-10);
        prop_assert!((back[4] - p).abs() < 1e-9);
        prop_assert!((pressure(&q) - p).abs() < 1e-9);
    }

    /// Positivity enforcement: output always has positive density and
    /// pressure, and physical states pass through untouched.
    #[test]
    fn positivity_floor_properties(
        rho in -1.0f64..5.0,
        u in -10.0f64..10.0,
        e in -5.0f64..20.0,
    ) {
        let mut q = [rho, rho * u, 0.0, 0.0, e];
        enforce_positivity(&mut q);
        prop_assert!(q[0] > 0.0);
        prop_assert!(pressure(&q) > 0.0);
        prop_assert!(q.iter().all(|x| x.is_finite()));
        // Healthy states are untouched.
        let mut healthy = conservatives(&[1.0, 0.5, 0.1, 0.0, 0.7]);
        let orig = healthy;
        let clamped = enforce_positivity(&mut healthy);
        prop_assert!(!clamped);
        prop_assert_eq!(healthy, orig);
    }

    /// The implicit operator is a contraction on impulses: the update stays
    /// finite and no component exceeds the impulse magnitude.
    #[test]
    fn implicit_sweep_is_stable_contraction(
        mach in 0.1f64..1.6,
        dt in 0.01f64..0.5,
        ci in 2usize..5, cj in 2usize..5, ck in 2usize..5,
    ) {
        let mut fc = FlowConditions::new(mach, 0.0, 0.0);
        fc.dt = dt;
        let b = wavy_block(7, 0.03, &fc);
        let mut dq = StateField::new(b.local_dims);
        let c = b.to_local(overset_grid::Ijk::new(ci, cj, ck));
        dq.set_node(c, [1.0, 0.5, -0.2, 0.1, 2.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm);
        let out = dq.node(c);
        prop_assert!(out.iter().all(|x| x.is_finite()));
        let mx = dq.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        prop_assert!(mx <= 2.0 + 1e-9, "new extremum {mx}");
    }
}
