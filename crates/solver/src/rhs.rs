//! Right-hand-side (residual) assembly for the transformed Euler /
//! thin-layer Navier–Stokes equations.
//!
//! Spatial discretization matches the paper's solver family: second-order
//! central flux differences with scalar (JST-type) 2nd/4th-difference
//! artificial dissipation, ALE grid-velocity terms for moving grids, and
//! thin-layer viscous terms in the wall-normal (η) direction.
//!
//! The residual is `dq/dt` (already divided by the cell Jacobian), so
//! `res = 0` exactly at uniform freestream on any untangled grid — verified
//! by the freestream-preservation tests.

use crate::block::{Blank, Block};
use crate::conditions::{
    pressure, sound_speed, sutherland_viscosity, FlowConditions, GAMMA, PRANDTL, PRANDTL_T,
};
use overset_grid::field::{StateField, NVAR};
use overset_grid::index::Ijk;

/// JST dissipation constants (2nd-difference sensor gain, 4th-difference
/// background gain).
pub const K2: f64 = 0.5;
pub const K4: f64 = 1.0 / 16.0;

/// Estimated flops per owned node per active direction for the flux +
/// dissipation assembly (used for virtual-time accounting).
pub const FLOPS_PER_NODE_PER_DIR: u64 = 110;
/// Estimated extra flops per owned node for thin-layer viscous terms.
pub const FLOPS_VISCOUS_PER_NODE: u64 = 90;

#[inline]
fn offset(p: Ijk, dir: usize, d: isize) -> Ijk {
    let mut q = p;
    q.set(dir, (q.get(dir) as isize + d) as usize);
    q
}

/// Contravariant flux vector F̂ through the `dir` computational face at a
/// node, including ALE grid-velocity terms.
#[inline]
fn hat_flux(block: &Block, p: Ijk, dir: usize) -> [f64; NVAR] {
    let q = block.q.node(p);
    let m = block.metrics[p];
    let g = m.grad(dir);
    let jac = m.jac;
    let s = [g[0] * jac, g[1] * jac, g[2] * jac]; // Ŝ = J ∇ξ
    let inv_rho = 1.0 / q[0];
    let u = [q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho];
    let vg = block.grid_vel[p];
    let p_stat = pressure(q);
    let u_s = s[0] * u[0] + s[1] * u[1] + s[2] * u[2];
    let ug_s = s[0] * vg[0] + s[1] * vg[1] + s[2] * vg[2];
    let u_rel = u_s - ug_s;
    [
        q[0] * u_rel,
        q[1] * u_rel + s[0] * p_stat,
        q[2] * u_rel + s[1] * p_stat,
        q[3] * u_rel + s[2] * p_stat,
        q[4] * u_rel + p_stat * u_s,
    ]
}

/// Scaled spectral radius σ̂ = |Û_rel| + c|Ŝ| at a node for direction `dir`.
#[inline]
pub fn spectral_radius(block: &Block, p: Ijk, dir: usize) -> f64 {
    let q = block.q.node(p);
    let m = block.metrics[p];
    let g = m.grad(dir);
    let jac = m.jac;
    let s = [g[0] * jac, g[1] * jac, g[2] * jac];
    let s_norm = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt();
    let inv_rho = 1.0 / q[0];
    let vg = block.grid_vel[p];
    let u_rel = s[0] * (q[1] * inv_rho - vg[0])
        + s[1] * (q[2] * inv_rho - vg[1])
        + s[2] * (q[3] * inv_rho - vg[2]);
    u_rel.abs() + sound_speed(q) * s_norm
}

/// Is the node usable in a difference stencil (inside local storage)?
#[inline]
fn in_local(block: &Block, p: Ijk, dir: usize, d: isize) -> bool {
    let c = p.get(dir) as isize + d;
    c >= 0 && (c as usize) < block.local_dims.get(dir)
}

/// Range of local indices along `dir` that have valid ±1 stencil data:
/// owned nodes, shrunk by one at faces with no neighbor (physical
/// boundaries are handled by the BC module).
fn sweep_box(block: &Block) -> overset_grid::index::IndexBox {
    let mut b = block.owned_local();
    for dir in block.active_dirs().iter().copied() {
        let f_min = 2 * dir;
        let f_max = 2 * dir + 1;
        let has_min = block.neighbor[f_min].is_some() || (dir == 0 && block.self_wrap_i);
        let has_max = block.neighbor[f_max].is_some() || (dir == 0 && block.self_wrap_i);
        if !has_min {
            b.lo.set(dir, b.lo.get(dir) + 1);
        }
        if !has_max {
            b.hi.set(dir, b.hi.get(dir) - 1);
        }
    }
    // Periodic grids: the duplicated seam node (global i = ni-1) mirrors
    // node 0 and is never updated directly.
    if block.self_wrap_i || block.neighbor[1].is_some() {
        let gd = block.grid_dims;
        if block.owned.hi.i == gd.ni && is_periodic(block) {
            b.hi.set(0, b.hi.get(0) - 1);
        }
    }
    b
}

#[inline]
fn is_periodic(block: &Block) -> bool {
    block.periodic_i_grid
}

/// Assemble the residual into `res` over the block's computable nodes.
/// Returns estimated flops performed.
pub fn compute_residual(block: &Block, fc: &FlowConditions, res: &mut StateField) -> u64 {
    assert_eq!(res.dims(), block.local_dims);
    for v in res.as_mut_slice() {
        *v = 0.0;
    }
    let sweep = sweep_box(block);
    let mut nodes = 0u64;

    for p in sweep.iter() {
        if block.iblank[p] != Blank::Field {
            continue;
        }
        nodes += 1;
        let jac = block.metrics[p].jac;
        let inv_j = 1.0 / jac;
        let mut r = [0.0f64; NVAR];

        for &dir in block.active_dirs() {
            // Central flux difference.
            let fp = hat_flux(block, offset(p, dir, 1), dir);
            let fm = hat_flux(block, offset(p, dir, -1), dir);
            for v in 0..NVAR {
                r[v] -= 0.5 * (fp[v] - fm[v]);
            }
            // JST scalar dissipation: face-based 2nd/4th differences.
            let d_hi = face_dissipation(block, p, dir, 1);
            let d_lo = face_dissipation(block, p, dir, -1);
            for v in 0..NVAR {
                r[v] += d_hi[v] - d_lo[v];
            }
        }

        if block.viscous && fc.viscous_coefficient() > 0.0 {
            let fv_hi = viscous_face_flux(block, p, fc, 1);
            let fv_lo = viscous_face_flux(block, p, fc, -1);
            for v in 0..NVAR {
                r[v] += fv_hi[v] - fv_lo[v];
            }
        }

        let out = res.node_mut(p);
        for v in 0..NVAR {
            out[v] = r[v] * inv_j;
        }
    }

    let dirs = block.active_dirs().len() as u64;
    let mut flops = nodes * dirs * FLOPS_PER_NODE_PER_DIR;
    if block.viscous && fc.viscous_coefficient() > 0.0 {
        flops += nodes * FLOPS_VISCOUS_PER_NODE;
    }
    flops
}

/// JST dissipative flux at the face between `p` and `p + side` along `dir`
/// (side = ±1).
fn face_dissipation(block: &Block, p: Ijk, dir: usize, side: isize) -> [f64; NVAR] {
    let p1 = offset(p, dir, side);
    // Pressure switch ν at both nodes (guarded near storage edges).
    let nu_at = |n: Ijk| -> f64 {
        if !in_local(block, n, dir, 1) || !in_local(block, n, dir, -1) {
            return 0.0;
        }
        let pm = pressure(block.q.node(offset(n, dir, -1)));
        let pc = pressure(block.q.node(n));
        let pp = pressure(block.q.node(offset(n, dir, 1)));
        ((pp - 2.0 * pc + pm) / (pp + 2.0 * pc + pm).max(1e-12)).abs()
    };
    let eps2 = K2 * nu_at(p).max(nu_at(p1));
    let eps4 = (K4 - eps2).max(0.0);
    let sigma = 0.5 * (spectral_radius(block, p, dir) + spectral_radius(block, p1, dir));

    let q0 = block.q.node(p);
    let q1 = block.q.node(p1);
    let mut d = [0.0f64; NVAR];
    // Second difference across the face.
    for v in 0..NVAR {
        d[v] = eps2 * (q1[v] - q0[v]);
    }
    // Fourth difference needs one more node on each side; degrade to pure
    // 2nd-difference when the stencil leaves local storage or crosses
    // blanked nodes.
    let pm = offset(p, dir, -side);
    let pp = offset(p1, dir, side);
    let stencil_ok = in_local(block, p, dir, -side)
        && in_local(block, p1, dir, side)
        && block.iblank[pm] == Blank::Field
        && block.iblank[pp] == Blank::Field
        && block.iblank[p1] != Blank::Hole;
    if stencil_ok {
        let qm = block.q.node(pm);
        let qp = block.q.node(pp);
        for v in 0..NVAR {
            let third = (qp[v] - q1[v]) - 2.0 * (q1[v] - q0[v]) + (q0[v] - qm[v]);
            d[v] -= eps4 * third;
        }
    }
    // Face flux orientation: the residual adds d(p+1/2) - d(p-1/2).
    let sign = if side > 0 { 1.0 } else { -1.0 };
    for v in d.iter_mut() {
        *v *= sigma * sign;
    }
    d
}

/// Thin-layer viscous flux at the η-face between `p` and `p + side`·η̂
/// (side = ±1), in the Q̂ equation (to be differenced and divided by J).
fn viscous_face_flux(block: &Block, p: Ijk, fc: &FlowConditions, side: isize) -> [f64; NVAR] {
    const DIR: usize = 1; // thin layer acts in the body-normal η direction
    if !in_local(block, p, DIR, side) {
        return [0.0; NVAR];
    }
    let p1 = offset(p, DIR, side);
    let (qa, qb) = (block.q.node(p), block.q.node(p1));
    let (ma, mb) = (block.metrics[p], block.metrics[p1]);
    // Face-averaged Ŝ and J.
    let s = [
        0.5 * (ma.eta[0] * ma.jac + mb.eta[0] * mb.jac),
        0.5 * (ma.eta[1] * ma.jac + mb.eta[1] * mb.jac),
        0.5 * (ma.eta[2] * ma.jac + mb.eta[2] * mb.jac),
    ];
    let jf = 0.5 * (ma.jac + mb.jac);
    let m1 = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]) / jf;

    let ua = [qa[1] / qa[0], qa[2] / qa[0], qa[3] / qa[0]];
    let ub = [qb[1] / qb[0], qb[2] / qb[0], qb[3] / qb[0]];
    let du = [ub[0] - ua[0], ub[1] - ua[1], ub[2] - ua[2]];
    let s_du = s[0] * du[0] + s[1] * du[1] + s[2] * du[2];

    let mu_l = 0.5 * (sutherland_viscosity(qa) + sutherland_viscosity(qb));
    let mu_t = 0.5 * (block.mu_t[p] + block.mu_t[p1]);
    let mu = mu_l + mu_t;
    let coef = fc.viscous_coefficient();

    // Momentum: μ (m1 du + (1/3)(S·du) S / J).
    let fm = [
        coef * mu * (m1 * du[0] + s_du * s[0] / (3.0 * jf)),
        coef * mu * (m1 * du[1] + s_du * s[1] / (3.0 * jf)),
        coef * mu * (m1 * du[2] + s_du * s[2] / (3.0 * jf)),
    ];
    // Energy: shear work + heat conduction on a² = γ p / ρ.
    let ke_a = 0.5 * (ua[0] * ua[0] + ua[1] * ua[1] + ua[2] * ua[2]);
    let ke_b = 0.5 * (ub[0] * ub[0] + ub[1] * ub[1] + ub[2] * ub[2]);
    let a2_a = GAMMA * pressure(qa) / qa[0];
    let a2_b = GAMMA * pressure(qb) / qb[0];
    let k_heat = mu_l / PRANDTL + mu_t / PRANDTL_T;
    let fe = coef * m1 * (mu * (ke_b - ke_a) + k_heat / (GAMMA - 1.0) * (a2_b - a2_a));

    let sign = if side > 0 { 1.0 } else { -1.0 };
    [0.0, sign * fm[0], sign * fm[1], sign * fm[2], sign * fe]
}

/// L2 norm of the residual over owned field nodes (diagnostic).
pub fn residual_l2(block: &Block, res: &StateField) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for p in block.owned_local().iter() {
        if block.iblank[p] != Blank::Field {
            continue;
        }
        let r = res.node(p);
        sum += r.iter().map(|x| x * x).sum::<f64>();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;

    fn uniform_block(n: usize, fc: &FlowConditions) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.2, p.j as f64 * 0.2, p.k as f64 * 0.2]);
        let g = CurvilinearGrid::new("u", coords, GridKind::Background);
        Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
    }

    #[test]
    fn freestream_preserved_on_cartesian_grid() {
        let fc = FlowConditions::new(0.8, 3.0, 0.0);
        let b = uniform_block(8, &fc);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        assert!(residual_l2(&b, &res) < 1e-13);
    }

    #[test]
    fn freestream_preserved_on_stretched_grid() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let d = Dims::new(9, 9, 9);
        let coords = Field3::from_fn(d, |p| {
            // Smoothly stretched curvilinear coordinates.
            let x = (p.i as f64 * 0.15).sinh() * 0.5;
            let y = p.j as f64 * 0.1 + 0.03 * (p.i as f64 * 0.4).sin();
            let z = p.k as f64 * 0.12;
            [x, y, z]
        });
        let g = CurvilinearGrid::new("s", coords, GridKind::Background);
        let b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        // Central metrics + central fluxes commute on linear variation; for
        // generic smooth grids freestream error is at truncation level.
        assert!(residual_l2(&b, &res) < 1e-10, "res = {}", residual_l2(&b, &res));
    }

    #[test]
    fn freestream_preserved_viscous() {
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let mut b = uniform_block(8, &fc);
        b.viscous = true;
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        assert!(residual_l2(&b, &res) < 1e-13);
    }

    #[test]
    fn pressure_pulse_produces_outward_response() {
        let fc = FlowConditions::new(0.0, 0.0, 0.0);
        let mut b = uniform_block(9, &fc);
        // Raise pressure at the center node.
        let c = Ijk::new(4, 4, 4);
        let mut q = *b.q.node(c);
        q[4] *= 1.2;
        b.q.set_node(c, q);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        // Neighbours see incoming momentum flux (divergence of p at center).
        let right = res.node(Ijk::new(5, 4, 4));
        let left = res.node(Ijk::new(3, 4, 4));
        assert!(right[1] > 0.0, "x-momentum should increase right of pulse");
        assert!(left[1] < 0.0);
        // Center loses energy symmetrically: residual finite.
        assert!(res.node(c)[4].abs() > 0.0);
    }

    #[test]
    fn holes_and_fringes_are_skipped() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = uniform_block(8, &fc);
        let c = Ijk::new(4, 4, 4);
        b.iblank[c] = Blank::Hole;
        let f = Ijk::new(3, 4, 4);
        b.iblank[f] = Blank::Fringe;
        // Put garbage in the hole: must not contaminate its own residual.
        b.q.set_node(c, [1.0, 9.0, 9.0, 9.0, 99.0]);
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        assert_eq!(*res.node(c), [0.0; 5]);
        assert_eq!(*res.node(f), [0.0; 5]);
    }

    #[test]
    fn moving_grid_uniform_flow_in_grid_frame() {
        // Grid translating with the fluid: relative flux vanishes except for
        // the pressure terms, which are constant: residual ~ 0.
        let fc = FlowConditions::new(0.5, 0.0, 0.0);
        let mut b = uniform_block(8, &fc);
        for v in b.grid_vel.as_mut_slice() {
            *v = [0.5, 0.0, 0.0];
        }
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        assert!(residual_l2(&b, &res) < 1e-13);
    }

    #[test]
    fn spectral_radius_positive_and_scales() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(6, &fc);
        let p = Ijk::new(3, 3, 3);
        let s = spectral_radius(&b, p, 0);
        assert!(s > 0.0);
        // |Û| + c|Ŝ| with h = 0.2: Ŝ = J∇ξ = h² ; σ̂ = (0.8 + 1) h².
        let expect = (0.8 + 1.0) * 0.04;
        assert!((s - expect).abs() < 1e-9, "sigma {s} expect {expect}");
    }

    #[test]
    fn viscous_shear_decays_toward_uniform() {
        // A shear layer in u(y) must produce momentum diffusion with the
        // right sign: residual accelerates slow fluid, decelerates fast.
        // Low Reynolds number so physical viscosity dominates the JST
        // background dissipation in this sign check.
        let fc = FlowConditions::new(0.5, 0.0, 10.0);
        let mut b = uniform_block(9, &fc);
        b.viscous = true;
        for p in b.local_dims.iter() {
            // Inflection at local j = 6 (mid-block, inside the sweep box).
            let u = 0.1 * (p.j as f64 - 6.0).tanh();
            let prim = [1.0, u, 0.0, 0.0, 1.0 / GAMMA];
            b.q.set_node(p, crate::conditions::conservatives(&prim));
        }
        let mut res = StateField::new(b.local_dims);
        compute_residual(&b, &fc, &mut res);
        // Above the inflection u is concave (u'' < 0) so du/dt < 0; below,
        // convex so du/dt > 0.
        let above = res.node(Ijk::new(6, 8, 6));
        let below = res.node(Ijk::new(6, 4, 6));
        assert!(above[1] < 0.0, "above: {above:?}");
        assert!(below[1] > 0.0, "below: {below:?}");
    }
}
