//! Subdomain blocks: the per-rank piece of a component grid, with halo
//! (ghost) layers at subdomain interfaces and periodic wraps.
//!
//! A block stores only its owned node box plus `HALO` ghost layers; the full
//! grid is never replicated per rank (each rank extracts its local geometry
//! from the shared setup grid). Halo layers are filled by message exchange
//! (or in-place for a self-periodic wrap) before each residual evaluation.

use crate::conditions::FlowConditions;
use overset_grid::curvilinear::{BcKind, CurvilinearGrid, Face};
use overset_grid::field::{Field3, StateField, NVAR};
use overset_grid::index::{Dims, Ijk, IndexBox};
use overset_grid::metrics::{metric_at, Metric, MetricField};
use overset_grid::transform::RigidTransform;

/// Halo width (2 layers: enough for the 4th-difference dissipation stencil).
pub const HALO: usize = 2;

/// Node blanking state (Chimera iblank convention).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Blank {
    /// Hole point: inside a solid body cut from this grid; not solved.
    Hole,
    /// Normal field point: updated by the flow solver.
    Field,
    /// Fringe / inter-grid boundary point: value imposed by interpolation.
    Fringe,
}

/// The per-rank block of one component grid.
pub struct Block {
    /// Which component grid this block belongs to.
    pub grid_id: usize,
    /// Owned node box in the parent grid's index space.
    pub owned: IndexBox,
    /// Parent grid dimensions.
    pub grid_dims: Dims,
    /// Local storage dimensions (owned + halo all around, except in
    /// degenerate directions).
    pub local_dims: Dims,
    /// Halo width per direction (0 for degenerate 2-D direction).
    pub halo: [usize; 3],
    /// Node coordinates (local, including halo where geometry exists).
    pub coords: Field3<[f64; 3]>,
    /// Metric terms (local).
    pub metrics: MetricField,
    /// Conserved state (local).
    pub q: StateField,
    /// Node blanking (local).
    pub iblank: Field3<Blank>,
    /// Grid velocity at nodes (for moving grids), local.
    pub grid_vel: Field3<[f64; 3]>,
    /// Turbulent eddy viscosity at nodes (Baldwin–Lomax), local.
    pub mu_t: Field3<f64>,
    /// Interface neighbor rank per face (IMin, IMax, JMin, JMax, KMin, KMax);
    /// `None` at physical boundaries.
    pub neighbor: [Option<usize>; 6],
    /// The parent grid wraps periodically in `i` (every block of the grid,
    /// including interior ones, needs to know for the cyclic line solves).
    pub periodic_i_grid: bool,
    /// The grid wraps periodically in `i` and this block spans all of `i`
    /// (wrap handled locally instead of via messages).
    pub self_wrap_i: bool,
    /// Physical BC on each face when the block touches it.
    pub face_bc: [Option<BcKind>; 6],
    /// Viscous terms active.
    pub viscous: bool,
    /// Baldwin–Lomax active.
    pub turbulent: bool,
    /// 2-D (single k-plane) block.
    pub two_d: bool,
}

impl Block {
    /// Build a block for `owned` within `grid`, initialized to freestream.
    /// `neighbor[f]` gives the rank owning the adjacent subdomain across
    /// face `f`, if any.
    pub fn from_grid(
        grid_id: usize,
        grid: &CurvilinearGrid,
        owned: IndexBox,
        neighbor: [Option<usize>; 6],
        fc: &FlowConditions,
    ) -> Block {
        let gd = grid.dims();
        let two_d = gd.is_two_d();
        let halo = [HALO, HALO, if two_d { 0 } else { HALO }];
        let od = owned.dims();
        let local_dims = Dims::new(od.ni + 2 * halo[0], od.nj + 2 * halo[1], od.nk + 2 * halo[2]);

        // Geometry: copy from the parent grid where the (possibly wrapped)
        // global node exists; *linearly extrapolate* past physical grid
        // edges. Extrapolation (rather than clamping) matters: with
        // x(-1) = 2x(0) - x(1), the central coordinate difference at a
        // boundary node equals the one-sided difference the grid-level
        // metric routine would use, so boundary metrics stay exact.
        let wrap = grid.periodic_i;
        let coords = Field3::from_fn(local_dims, |l: Ijk| {
            let (g, over) = Self::local_to_global_over(l, owned, halo, gd, wrap);
            let mut x = grid.coords[g];
            for (dir, &ov) in over.iter().enumerate() {
                if ov == 0 {
                    continue;
                }
                // Edge slope along `dir` at the clamped node.
                let n = gd.get(dir);
                if n < 2 {
                    continue;
                }
                let (a, b) = if ov < 0 {
                    (
                        g,
                        Ijk::new(
                            g.i + usize::from(dir == 0),
                            g.j + usize::from(dir == 1),
                            g.k + usize::from(dir == 2),
                        ),
                    )
                } else {
                    (
                        Ijk::new(
                            g.i - usize::from(dir == 0),
                            g.j - usize::from(dir == 1),
                            g.k - usize::from(dir == 2),
                        ),
                        g,
                    )
                };
                let (xa, xb) = (grid.coords[a], grid.coords[b]);
                let slope = [xb[0] - xa[0], xb[1] - xa[1], xb[2] - xa[2]];
                for t in 0..3 {
                    x[t] += ov as f64 * slope[t];
                }
            }
            x
        });

        let mut block = Block {
            grid_id,
            owned,
            grid_dims: gd,
            local_dims,
            halo,
            metrics: Field3::new(
                local_dims,
                Metric { xi: [0.0; 3], eta: [0.0; 3], zeta: [0.0; 3], jac: 1.0 },
            ),
            q: StateField::new(local_dims),
            iblank: Field3::new(local_dims, Blank::Field),
            grid_vel: Field3::new(local_dims, [0.0; 3]),
            mu_t: Field3::new(local_dims, 0.0),
            neighbor,
            periodic_i_grid: wrap,
            self_wrap_i: wrap && owned.dims().ni == gd.ni,
            face_bc: Self::face_bcs(grid, owned),
            viscous: grid.viscous,
            turbulent: grid.turbulent,
            two_d,
            coords,
        };
        block.q.fill_uniform(fc.freestream());
        block.recompute_metrics();
        block
    }

    fn face_bcs(grid: &CurvilinearGrid, owned: IndexBox) -> [Option<BcKind>; 6] {
        let gd = grid.dims();
        let mut out = [None; 6];
        for (fi, face) in Face::ALL.iter().enumerate() {
            let touches = if face.is_min() {
                owned.lo.get(face.dir()) == 0
            } else {
                owned.hi.get(face.dir()) == gd.get(face.dir())
            };
            if touches {
                out[fi] = grid.patch_on(*face);
            }
        }
        out
    }

    /// Map a local (halo-inclusive) index to the parent-grid node it mirrors
    /// plus the per-direction overshoot past the grid edge (negative = below
    /// the min edge), used for linear extrapolation of halo geometry.
    fn local_to_global_over(
        l: Ijk,
        owned: IndexBox,
        halo: [usize; 3],
        gd: Dims,
        wrap_i: bool,
    ) -> (Ijk, [isize; 3]) {
        let map1 = |lc: usize, lo: usize, h: usize, n: usize, wrap: bool| -> (usize, isize) {
            let g = lc as isize + lo as isize - h as isize;
            if wrap && n > 1 {
                // O-grid: node n-1 duplicates node 0; period is n-1.
                let m = (n - 1) as isize;
                ((((g % m) + m) % m) as usize, 0)
            } else {
                let c = g.clamp(0, n as isize - 1);
                (c as usize, g - c)
            }
        };
        let (i, oi) = map1(l.i, owned.lo.i, halo[0], gd.ni, wrap_i);
        let (j, oj) = map1(l.j, owned.lo.j, halo[1], gd.nj, false);
        let (k, ok) = map1(l.k, owned.lo.k, halo[2], gd.nk, false);
        (Ijk::new(i, j, k), [oi, oj, ok])
    }

    /// Local index of a global (parent-grid) node.
    #[inline]
    pub fn to_local(&self, g: Ijk) -> Ijk {
        Ijk::new(
            g.i + self.halo[0] - self.owned.lo.i,
            g.j + self.halo[1] - self.owned.lo.j,
            g.k + self.halo[2] - self.owned.lo.k,
        )
    }

    /// Global node of a local index (no wrap adjustment; owned region only).
    #[inline]
    pub fn to_global(&self, l: Ijk) -> Ijk {
        Ijk::new(
            l.i + self.owned.lo.i - self.halo[0],
            l.j + self.owned.lo.j - self.halo[1],
            l.k + self.owned.lo.k - self.halo[2],
        )
    }

    /// Local box of owned (non-halo) nodes.
    pub fn owned_local(&self) -> IndexBox {
        let d = self.owned.dims();
        IndexBox::new(
            Ijk::new(self.halo[0], self.halo[1], self.halo[2]),
            Ijk::new(self.halo[0] + d.ni, self.halo[1] + d.nj, self.halo[2] + d.nk),
        )
    }

    /// Number of owned nodes.
    pub fn owned_count(&self) -> usize {
        self.owned.count()
    }

    /// Recompute metric terms from current coordinates (after grid motion).
    pub fn recompute_metrics(&mut self) {
        // Metrics via a lightweight grid view over local coords.
        let tmp = CurvilinearGrid::new(
            "block",
            self.coords.clone(),
            overset_grid::curvilinear::GridKind::NearBody,
        );
        // Periodicity is irrelevant here: halo layers carry real wrapped
        // geometry, so one-sided differences never straddle the seam.
        // Halo nodes past a physical boundary have clamped (duplicate)
        // coordinates and hence degenerate metrics; they are never used by
        // any stencil, so replace them with a benign identity metric.
        self.metrics = Field3::from_fn(self.local_dims, |p| {
            let m = metric_at(&tmp, p);
            if m.jac.is_finite() {
                m
            } else {
                Metric { xi: [0.0; 3], eta: [0.0; 3], zeta: [0.0; 3], jac: 1.0 }
            }
        });
    }

    /// Apply a rigid motion to the block geometry (and set grid velocities
    /// for the ALE fluxes), then refresh metrics.
    pub fn apply_motion(&mut self, t: &RigidTransform, dt: f64) {
        for (p, v) in
            self.coords.as_mut_slice().iter_mut().zip(self.grid_vel.as_mut_slice().iter_mut())
        {
            let old = *p;
            *p = t.apply(old);
            *v = [(p[0] - old[0]) / dt, (p[1] - old[1]) / dt, (p[2] - old[2]) / dt];
        }
        self.recompute_metrics();
    }

    /// Apply a cumulative geometry transform without setting grid
    /// velocities (used when rebuilding blocks after repartitioning: the
    /// base grid is at its t=0 pose, the cumulative motion brings it to the
    /// current pose).
    pub fn set_geometry_transform(&mut self, t: &RigidTransform) {
        for p in self.coords.as_mut_slice() {
            *p = t.apply(*p);
        }
        for v in self.grid_vel.as_mut_slice() {
            *v = [0.0; 3];
        }
        self.recompute_metrics();
    }

    /// Set grid velocities consistent with `t` having been the last motion
    /// step (the block's geometry is already at the post-`t` pose): the
    /// node velocity is `(x - t⁻¹x) / dt`. Used after repartitioning, where
    /// blocks are rebuilt at the current pose but must keep the ALE state.
    pub fn set_grid_velocity_from(&mut self, t: &RigidTransform, dt: f64) {
        let inv = t.inverse();
        for (x, v) in self.coords.as_slice().iter().zip(self.grid_vel.as_mut_slice().iter_mut()) {
            let old = inv.apply(*x);
            *v = [(x[0] - old[0]) / dt, (x[1] - old[1]) / dt, (x[2] - old[2]) / dt];
        }
    }

    /// Pack `width` owned layers adjacent to `face` (for halo exchange),
    /// states only, in deterministic layout order.
    pub fn pack_face(&self, face: usize, width: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.pack_face_into(face, width, &mut out);
        out
    }

    /// [`Self::pack_face`] into a caller-owned (recycled) buffer; the buffer
    /// is cleared first, so steady-state exchanges allocate nothing.
    pub fn pack_face_into(&self, face: usize, width: usize, out: &mut Vec<f64>) {
        let b = self.layer_box(face, width, false);
        out.clear();
        out.reserve(b.count() * NVAR);
        for p in b.iter() {
            out.extend_from_slice(self.q.node(p));
        }
    }

    /// Unpack halo layers beyond `face` from a neighbor's packed data.
    pub fn unpack_face(&mut self, face: usize, width: usize, data: &[f64]) {
        let b = self.layer_box(face, width, true);
        assert_eq!(data.len(), b.count() * NVAR, "halo size mismatch on face {face}");
        for (idx, p) in b.iter().enumerate() {
            let s: [f64; NVAR] = data[idx * NVAR..(idx + 1) * NVAR].try_into().unwrap();
            self.q.set_node(p, s);
        }
    }

    /// Pack the states of an arbitrary local box (layout order).
    pub fn pack_box(&self, b: IndexBox) -> Vec<f64> {
        let mut out = Vec::new();
        self.pack_box_into(b, &mut out);
        out
    }

    /// [`Self::pack_box`] into a caller-owned (recycled) buffer.
    pub fn pack_box_into(&self, b: IndexBox, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(b.count() * NVAR);
        for p in b.iter() {
            out.extend_from_slice(self.q.node(p));
        }
    }

    /// Unpack states into an arbitrary local box (layout order).
    pub fn unpack_box(&mut self, b: IndexBox, data: &[f64]) {
        assert_eq!(data.len(), b.count() * NVAR, "box unpack size mismatch");
        for (idx, p) in b.iter().enumerate() {
            let s: [f64; NVAR] = data[idx * NVAR..(idx + 1) * NVAR].try_into().unwrap();
            self.q.set_node(p, s);
        }
    }

    /// The local box of `width` layers at `face`: owned layers (`halo_side
    /// = false`) or ghost layers just outside (`halo_side = true`).
    pub fn layer_box(&self, face: usize, width: usize, halo_side: bool) -> IndexBox {
        let ow = self.owned_local();
        let dir = face / 2;
        let is_min = face % 2 == 0;
        let (mut lo, mut hi) = (ow.lo, ow.hi);
        if is_min {
            if halo_side {
                hi.set(dir, ow.lo.get(dir));
                lo.set(dir, ow.lo.get(dir) - width);
            } else {
                hi.set(dir, ow.lo.get(dir) + width);
            }
        } else if halo_side {
            lo.set(dir, ow.hi.get(dir));
            hi.set(dir, ow.hi.get(dir) + width);
        } else {
            lo.set(dir, ow.hi.get(dir) - width);
        }
        IndexBox::new(lo, hi)
    }

    /// Fill the periodic wrap halo in `i` from this block's own data (only
    /// valid when `self_wrap_i`). The parent O-grid duplicates node `ni-1`
    /// over node 0, so the period is `ni-1`.
    pub fn fill_self_wrap(&mut self) {
        assert!(self.self_wrap_i);
        let ow = self.owned_local();
        let ni = self.owned.dims().ni;
        let period = ni - 1;
        let h = self.halo[0];
        for k in ow.lo.k..ow.hi.k {
            for j in ow.lo.j..ow.hi.j {
                for layer in 1..=h {
                    // Ghost left of i=0 mirrors i = period - layer.
                    let src = Ijk::new(ow.lo.i + period - layer, j, k);
                    let dst = Ijk::new(ow.lo.i - layer, j, k);
                    let v = *self.q.node(src);
                    self.q.set_node(dst, v);
                    // Ghost right of i=ni-1 mirrors i = layer (past the seam).
                    let src = Ijk::new(ow.lo.i + layer, j, k);
                    let dst = Ijk::new(ow.lo.i + period + layer, j, k);
                    let v = *self.q.node(src);
                    self.q.set_node(dst, v);
                }
                // The duplicated seam node ni-1 must mirror node 0.
                let v = *self.q.node(Ijk::new(ow.lo.i, j, k));
                self.q.set_node(Ijk::new(ow.lo.i + period, j, k), v);
            }
        }
    }

    /// Active sweep directions (2-D blocks skip ζ).
    pub fn active_dirs(&self) -> &'static [usize] {
        if self.two_d {
            &[0, 1]
        } else {
            &[0, 1, 2]
        }
    }

    /// Memory footprint of the block's hot arrays (for the cache model).
    pub fn working_set_bytes(&self) -> f64 {
        let n = self.local_dims.count() as f64;
        // q (5) + metrics (10) + coords (3) + velocities (3) + rhs scratch (5)
        n * 8.0 * 26.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::GridKind;

    fn test_grid(ni: usize, nj: usize, nk: usize) -> CurvilinearGrid {
        let d = Dims::new(ni, nj, nk);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.1, p.j as f64 * 0.1, p.k as f64 * 0.1]);
        CurvilinearGrid::new("t", coords, GridKind::Background)
    }

    fn fc() -> FlowConditions {
        FlowConditions::new(0.8, 0.0, 0.0)
    }

    #[test]
    fn block_local_global_roundtrip() {
        let g = test_grid(12, 10, 8);
        let owned = IndexBox::new(Ijk::new(4, 0, 2), Ijk::new(8, 5, 6));
        let b = Block::from_grid(0, &g, owned, [None; 6], &fc());
        for gp in owned.iter() {
            let l = b.to_local(gp);
            assert!(b.owned_local().contains(l));
            assert_eq!(b.to_global(l), gp);
            assert_eq!(b.coords[l], g.coords[gp]);
        }
    }

    #[test]
    fn halo_geometry_matches_parent_at_interfaces() {
        let g = test_grid(12, 10, 8);
        let owned = IndexBox::new(Ijk::new(4, 2, 2), Ijk::new(8, 8, 6));
        let b = Block::from_grid(0, &g, owned, [None; 6], &fc());
        // Interior halo node one layer left of owned in i.
        let gp = Ijk::new(3, 4, 4);
        assert_eq!(b.coords[b.to_local(gp)], g.coords[gp]);
    }

    #[test]
    fn two_d_block_has_no_k_halo() {
        let g = test_grid(10, 10, 1);
        let b = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
        assert_eq!(b.halo, [2, 2, 0]);
        assert_eq!(b.local_dims.nk, 1);
        assert_eq!(b.active_dirs(), &[0, 1]);
    }

    #[test]
    fn pack_unpack_are_inverse_shapes() {
        let g = test_grid(10, 8, 6);
        let owned = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(5, 8, 6));
        let mut a = Block::from_grid(0, &g, owned, [None, Some(1), None, None, None, None], &fc());
        let owned_b = IndexBox::new(Ijk::new(5, 0, 0), Ijk::new(10, 8, 6));
        let mut b =
            Block::from_grid(0, &g, owned_b, [Some(0), None, None, None, None, None], &fc());

        // Mark a's rightmost owned layers with a recognizable state.
        for p in a.layer_box(1, HALO, false).iter() {
            let gp = a.to_global(p);
            a.q.set_node(p, [gp.i as f64, gp.j as f64, gp.k as f64, 0.0, 1.0]);
        }
        let data = a.pack_face(1, HALO);
        b.unpack_face(0, HALO, &data);
        // b's ghost layer left of its owned region matches a's owned nodes.
        for p in b.layer_box(0, HALO, true).iter() {
            let gp = b.to_global(p);
            let got = b.q.node(p);
            assert_eq!(got[0], gp.i as f64, "at {gp:?}");
            assert_eq!(got[1], gp.j as f64);
        }
    }

    #[test]
    fn face_bc_detection() {
        let mut g = test_grid(10, 8, 1);
        g.patches = vec![
            overset_grid::curvilinear::BoundaryPatch {
                face: Face::JMin,
                kind: BcKind::Wall { viscous: true },
            },
            overset_grid::curvilinear::BoundaryPatch { face: Face::JMax, kind: BcKind::Farfield },
        ];
        // A block touching JMin but not JMax.
        let owned = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(10, 4, 1));
        let b = Block::from_grid(0, &g, owned, [None; 6], &fc());
        assert_eq!(b.face_bc[2], Some(BcKind::Wall { viscous: true }));
        assert_eq!(b.face_bc[3], None);
        assert_eq!(b.face_bc[0], None);
    }

    #[test]
    fn self_wrap_fills_ghosts() {
        let mut g = test_grid(9, 5, 1);
        g.periodic_i = true;
        let mut b = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
        assert!(b.self_wrap_i);
        // Tag owned nodes by global i.
        let ow = b.owned_local();
        for p in ow.iter() {
            let gp = b.to_global(p);
            b.q.set_node(p, [gp.i as f64, 0.0, 0.0, 0.0, 1.0]);
        }
        b.fill_self_wrap();
        let j = ow.lo.j;
        // Ghost at local i = ow.lo.i - 1 should mirror global i = 7 (period 8).
        let ghost = b.q.node(Ijk::new(ow.lo.i - 1, j, 0));
        assert_eq!(ghost[0], 7.0);
        let ghost2 = b.q.node(Ijk::new(ow.lo.i - 2, j, 0));
        assert_eq!(ghost2[0], 6.0);
        // Ghost past the seam mirrors i = 1.
        let ghost3 = b.q.node(Ijk::new(ow.lo.i + 9, j, 0));
        assert_eq!(ghost3[0], 1.0);
        // Seam duplicate mirrors i = 0.
        let seam = b.q.node(Ijk::new(ow.lo.i + 8, j, 0));
        assert_eq!(seam[0], 0.0);
    }

    #[test]
    fn apply_motion_moves_coords_and_sets_velocity() {
        let g = test_grid(6, 6, 1);
        let mut b = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
        let t = RigidTransform::translation([0.3, 0.0, 0.0]);
        let before = b.coords[Ijk::new(3, 3, 0)];
        b.apply_motion(&t, 0.1);
        let after = b.coords[Ijk::new(3, 3, 0)];
        assert!((after[0] - before[0] - 0.3).abs() < 1e-12);
        let v = b.grid_vel[Ijk::new(3, 3, 0)];
        assert!((v[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_scales_with_block_size() {
        let g = test_grid(20, 20, 1);
        let whole = Block::from_grid(0, &g, g.dims().full_box(), [None; 6], &fc());
        let half = Block::from_grid(
            0,
            &g,
            IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(10, 20, 1)),
            [None; 6],
            &fc(),
        );
        assert!(whole.working_set_bytes() > 1.5 * half.working_set_bytes());
    }
}
