//! Diagonalized approximate-factorization implicit scheme
//! (Pulliam–Chaussee diagonal algorithm).
//!
//! The update solves, per timestep,
//!
//! ```text
//! T_ξ (I + Δt Λ_ξ δ_ξ − D_i) T_ξ⁻¹ · T_η (…) T_η⁻¹ · T_ζ (…) T_ζ⁻¹ Δq = Δt R(qⁿ)
//! ```
//!
//! Per direction, the conservative increment is transformed to local
//! characteristic variables (entropy, two shears, two acoustics), each
//! characteristic field is solved with its own scalar tridiagonal system —
//! signed eigenvalue `λ_m ∈ {Ũ, Ũ, Ũ, Ũ±c̃}` central-implicit plus an
//! implicit second-difference smoothing `β σ` — and transformed back. The
//! signed implicit advection is what makes the factored scheme stable at the
//! CFL numbers the paper's unsteady cases run at; the implicit dissipation
//! dominates the explicit JST terms (β ≥ 2·k₄ rule).
//!
//! Lines that cross subdomain boundaries are solved with the *pipelined
//! distributed Thomas* algorithm (see [`crate::tridiag`]): implicitness is
//! maintained across subdomains, so the update is independent of the
//! processor count — the N-rank result is bit-identical to the serial one.

use crate::block::{Blank, Block};
use crate::conditions::{sound_speed, FlowConditions, GAMMA};
use crate::kernels::{self, NVW};
use crate::lanes::{select_isa, Isa, W};
use overset_grid::field::{StateField, NVAR};
use overset_grid::index::Ijk;

/// Implicit second-difference smoothing coefficient (×σ).
pub const BETA: f64 = 0.25;

/// Number of line chunks per sweep used for pipelined-Thomas overlap across
/// subdomain boundaries.
pub const PIPELINE_CHUNKS: usize = 8;

/// Flops per owned node per direction for the implicit sweep
/// (characteristic transforms + 5 scalar eliminations).
pub const FLOPS_PER_NODE_PER_DIR: u64 = 180;

/// Communication hooks the solver needs from the runtime: halo exchange and
/// pipelined line-solve carries. A [`SerialComm`] no-op implementation runs
/// single-block grids; the driver crate implements this over the
/// message-passing runtime.
pub trait SolverComm {
    /// Fill halo layers of `q` from face neighbors (including periodic
    /// wraps). Called once per step before the residual evaluation.
    fn exchange_halo(&mut self, block: &mut Block);
    /// Send pipelined line-solve data for `dir` to the adjacent rank
    /// (`downstream = true`: toward increasing index).
    fn send_line(&mut self, block: &Block, dir: usize, downstream: bool, data: Vec<f64>);
    /// Receive pipelined line-solve data of length `len`.
    fn recv_line(&mut self, block: &Block, dir: usize, from_upstream: bool, len: usize)
        -> Vec<f64>;
    /// Account compute work performed inside the sweep (so pipelined carry
    /// messages are stamped with clocks that include the elimination work
    /// preceding them). Serial implementations may ignore it.
    fn compute(&mut self, _flops: u64) {}
    /// Current virtual time, seconds. Serial implementations have no clock
    /// and report 0.
    fn now(&self) -> f64 {
        0.0
    }
    /// Record a completed trace span from virtual time `start` to now.
    /// No-op by default; the message-passing runtime forwards this to its
    /// tracer, so solver stages show up on the virtual timeline.
    fn trace_span(&mut self, _cat: &'static str, _name: &'static str, _start: f64) {}
}

/// Serial communicator: single block per grid; periodic wrap filled locally.
pub struct SerialComm;

impl SolverComm for SerialComm {
    fn exchange_halo(&mut self, block: &mut Block) {
        if block.self_wrap_i {
            block.fill_self_wrap();
        }
    }
    fn send_line(&mut self, _: &Block, _: usize, _: bool, _: Vec<f64>) {
        unreachable!("serial blocks have no line neighbors");
    }
    fn recv_line(&mut self, _: &Block, _: usize, _: bool, _: usize) -> Vec<f64> {
        unreachable!("serial blocks have no line neighbors");
    }
}

/// Does the block have an *implicit-coupled* neighbor along `dir`?
/// Periodic wrap links are excluded: the implicit operator treats O-grid
/// lines as open (the wrap coupling stays explicit through the halo), the
/// same in serial and parallel.
pub fn implicit_neighbor(block: &Block, dir: usize, downstream: bool) -> Option<usize> {
    let face = 2 * dir + usize::from(downstream);
    let n = block.neighbor[face]?;
    let interior = if downstream {
        block.owned.hi.get(dir) < block.grid_dims.get(dir)
    } else {
        block.owned.lo.get(dir) > 0
    };
    interior.then_some(n)
}

/// Local characteristic frame at a node for direction `dir`.
#[derive(Clone, Copy)]
struct CharFrame {
    /// Unit metric normal.
    k: [f64; 3],
    /// Orthonormal tangents.
    t1: [f64; 3],
    t2: [f64; 3],
    /// ρ, velocity, sound speed.
    rho: f64,
    u: [f64; 3],
    c: f64,
    /// Eigenvalues per characteristic field (J-scaled): Ũ, Ũ, Ũ, Ũ+c̃, Ũ−c̃.
    lam: [f64; NVAR],
    /// Spectral radius |Ũ| + c̃ (J-scaled) for the implicit smoothing.
    sigma: f64,
}

fn char_frame(block: &Block, p: Ijk, dir: usize) -> CharFrame {
    let q = block.q.node(p);
    let m = block.metrics[p];
    let g = m.grad(dir);
    let jac = m.jac;
    let s = [g[0] * jac, g[1] * jac, g[2] * jac];
    let s_norm = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt().max(1e-300);
    let k = [s[0] / s_norm, s[1] / s_norm, s[2] / s_norm];
    // Deterministic tangent basis.
    let a = if k[0].abs() < 0.9 { [1.0, 0.0, 0.0] } else { [0.0, 1.0, 0.0] };
    let mut t1 = [k[1] * a[2] - k[2] * a[1], k[2] * a[0] - k[0] * a[2], k[0] * a[1] - k[1] * a[0]];
    let n1 = (t1[0] * t1[0] + t1[1] * t1[1] + t1[2] * t1[2]).sqrt();
    for t in t1.iter_mut() {
        *t /= n1;
    }
    let t2 =
        [k[1] * t1[2] - k[2] * t1[1], k[2] * t1[0] - k[0] * t1[2], k[0] * t1[1] - k[1] * t1[0]];
    let rho = q[0];
    let u = [q[1] / rho, q[2] / rho, q[3] / rho];
    let c = sound_speed(q);
    let vg = block.grid_vel[p];
    let u_rel_n = s[0] * (u[0] - vg[0]) + s[1] * (u[1] - vg[1]) + s[2] * (u[2] - vg[2]);
    let u_tilde = u_rel_n / jac;
    let c_tilde = c * s_norm / jac;
    CharFrame {
        k,
        t1,
        t2,
        rho,
        u,
        c,
        lam: [u_tilde, u_tilde, u_tilde, u_tilde + c_tilde, u_tilde - c_tilde],
        sigma: u_tilde.abs() + c_tilde,
    }
}

/// Conservative increment → characteristic variables at the frame. The
/// batched kernel [`kernels::frames_forward_lanes`] computes the same
/// transform lanewise; this scalar form is the reference the tests pin
/// bit-equality against.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn to_char(f: &CharFrame, dq: &[f64; NVAR]) -> [f64; NVAR] {
    // ΔQ → Δprimitive.
    let d_rho = dq[0];
    let du = [
        (dq[1] - f.u[0] * d_rho) / f.rho,
        (dq[2] - f.u[1] * d_rho) / f.rho,
        (dq[3] - f.u[2] * d_rho) / f.rho,
    ];
    let ke = 0.5 * (f.u[0] * f.u[0] + f.u[1] * f.u[1] + f.u[2] * f.u[2]);
    let dp =
        (GAMMA - 1.0) * (dq[4] + ke * d_rho - f.u[0] * dq[1] - f.u[1] * dq[2] - f.u[2] * dq[3]);
    // Δprimitive → characteristic.
    let un = f.k[0] * du[0] + f.k[1] * du[1] + f.k[2] * du[2];
    let c2 = f.c * f.c;
    [
        d_rho - dp / c2,
        f.t1[0] * du[0] + f.t1[1] * du[1] + f.t1[2] * du[2],
        f.t2[0] * du[0] + f.t2[1] * du[1] + f.t2[2] * du[2],
        un + dp / (f.rho * f.c),
        un - dp / (f.rho * f.c),
    ]
}

/// Characteristic variables → conservative increment at the frame. Scalar
/// reference for [`kernels::from_char_lanes`], kept for the equality tests.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn from_char(f: &CharFrame, w: &[f64; NVAR]) -> [f64; NVAR] {
    let dp = 0.5 * f.rho * f.c * (w[3] - w[4]);
    let un = 0.5 * (w[3] + w[4]);
    let d_rho = w[0] + dp / (f.c * f.c);
    let du = [
        f.t1[0] * w[1] + f.t2[0] * w[2] + f.k[0] * un,
        f.t1[1] * w[1] + f.t2[1] * w[2] + f.k[1] * un,
        f.t1[2] * w[1] + f.t2[2] * w[2] + f.k[2] * un,
    ];
    let ke = 0.5 * (f.u[0] * f.u[0] + f.u[1] * f.u[1] + f.u[2] * f.u[2]);
    [
        d_rho,
        f.u[0] * d_rho + f.rho * du[0],
        f.u[1] * d_rho + f.rho * du[1],
        f.u[2] * d_rho + f.rho * du[2],
        ke * d_rho
            + f.rho * (f.u[0] * du[0] + f.u[1] * du[1] + f.u[2] * du[2])
            + dp / (GAMMA - 1.0),
    ]
}

/// Reusable sweep scratch: the runtime-selected kernel [`Isa`] plus every
/// buffer [`implicit_sweeps`] needs, so steady-state steps allocate nothing
/// in the solver phase. Owned per rank by [`crate::step::Scratch`]; buffers
/// grow to the largest sweep seen and are then recycled.
pub struct SweepScratch {
    /// Kernel instruction set, chosen once per run from `use_simd` plus
    /// runtime feature detection (see [`crate::lanes::select_isa`]). The
    /// scalar and SIMD paths run the same lane-batched code and produce
    /// bit-identical results.
    pub isa: Isa,
    /// Gathered per-node frame inputs, characteristic work vectors, and the
    /// frame SoA (see `kernels::IN_*` / `kernels::FR_*`) for the direction
    /// currently being swept.
    gin: Vec<f64>,
    dw: Vec<f64>,
    fr: Vec<f64>,
    /// Per-line halo frames (`c = -1` and `c = n`), two per line.
    halo: Vec<CharFrame>,
    lines: Vec<(usize, usize)>,
    /// Lane-transposed eigenvalues / spectral radii / identity masks for the
    /// group currently being eliminated.
    lam: Vec<f64>,
    sig: Vec<f64>,
    idm: Vec<f64>,
    /// Group-major lane-transposed RHS, normalized super-diagonals, and the
    /// Sherman–Morrison correction column (every group padded to [`W`] lanes).
    d: Vec<f64>,
    cp: Vec<f64>,
    z: Vec<f64>,
    /// Per-line cyclic corner parameters and chain-end values.
    alpha: Vec<[f64; NVAR]>,
    gamma: Vec<[f64; NVAR]>,
    y_last: Vec<[f64; NVAR]>,
    z_last: Vec<[f64; NVAR]>,
    fact: Vec<[f64; NVAR]>,
    x0: Vec<[f64; NVAR]>,
}

impl SweepScratch {
    pub fn new(isa: Isa) -> Self {
        Self {
            isa,
            gin: Vec::new(),
            dw: Vec::new(),
            fr: Vec::new(),
            halo: Vec::new(),
            lines: Vec::new(),
            lam: Vec::new(),
            sig: Vec::new(),
            idm: Vec::new(),
            d: Vec::new(),
            cp: Vec::new(),
            z: Vec::new(),
            alpha: Vec::new(),
            gamma: Vec::new(),
            y_last: Vec::new(),
            z_last: Vec::new(),
            fact: Vec::new(),
            x0: Vec::new(),
        }
    }
}

impl Default for SweepScratch {
    fn default() -> Self {
        Self::new(select_isa(true))
    }
}

fn ensure_len(v: &mut Vec<f64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

/// Lane-batched frame + forward-transform stage of a sweep: gather the
/// per-node inputs of every owned node into SoA buffers, run
/// [`kernels::frames_forward_lanes`] (frames into `fr`, `dq` transformed to
/// characteristic variables in place), and compute the two scalar halo
/// frames per line. Returns the padded SoA stride `mpad`.
#[allow(clippy::too_many_arguments)]
fn transform_to_char(
    block: &Block,
    dq: &mut StateField,
    dir: usize,
    node_at: &impl Fn(usize, usize) -> Ijk,
    halo_node: &impl Fn(usize, isize) -> Ijk,
    n: usize,
    nlines: usize,
    isa: Isa,
    gin: &mut Vec<f64>,
    dw: &mut Vec<f64>,
    fr: &mut Vec<f64>,
    halo: &mut Vec<CharFrame>,
) -> usize {
    use crate::kernels::{IN_FIELDS, IN_G, IN_JAC, IN_Q, IN_VG};
    let mm = n * nlines;
    let mpad = mm.div_ceil(W) * W;
    ensure_len(gin, IN_FIELDS * mpad);
    ensure_len(dw, NVAR * mpad);
    ensure_len(fr, crate::kernels::FR_FIELDS * mpad);
    for li in 0..nlines {
        for c in 0..n {
            let m = li * n + c;
            let p = node_at(li, c);
            let q = block.q.node(p);
            for v in 0..NVAR {
                gin[(IN_Q + v) * mpad + m] = q[v];
            }
            let met = block.metrics[p];
            let g = met.grad(dir);
            gin[IN_G * mpad + m] = g[0];
            gin[(IN_G + 1) * mpad + m] = g[1];
            gin[(IN_G + 2) * mpad + m] = g[2];
            gin[IN_JAC * mpad + m] = met.jac;
            let vg = block.grid_vel[p];
            gin[IN_VG * mpad + m] = vg[0];
            gin[(IN_VG + 1) * mpad + m] = vg[1];
            gin[(IN_VG + 2) * mpad + m] = vg[2];
            let w = dq.node(p);
            for v in 0..NVAR {
                dw[v * mpad + m] = w[v];
            }
        }
    }
    // Ragged tail: replicate the last real node into the padding lanes
    // (their outputs are never scattered back).
    for m in mm..mpad {
        for f in 0..IN_FIELDS {
            gin[f * mpad + m] = gin[f * mpad + mm - 1];
        }
        for v in 0..NVAR {
            dw[v * mpad + m] = dw[v * mpad + mm - 1];
        }
    }
    kernels::frames_forward_lanes(isa, mpad, gin, dw, fr);
    for li in 0..nlines {
        for c in 0..n {
            let m = li * n + c;
            let mut w = [0.0f64; NVAR];
            for v in 0..NVAR {
                w[v] = dw[v * mpad + m];
            }
            dq.set_node(node_at(li, c), w);
        }
    }
    halo.clear();
    halo.reserve(2 * nlines);
    for li in 0..nlines {
        halo.push(char_frame(block, halo_node(li, -1), dir));
        halo.push(char_frame(block, halo_node(li, n as isize), dir));
    }
    mpad
}

/// Gather one lane group into the transposed sweep layout: eigenvalue rows
/// (shifted by one so rows `0` / `n + 1` are the halo frames), spectral
/// radii, sign-bit identity masks, and the characteristic RHS. Ragged groups
/// replicate their last real line into the padding lanes (padding output is
/// never read).
#[allow(clippy::too_many_arguments)]
fn pack_group(
    block: &Block,
    dq: &StateField,
    node_at: &impl Fn(usize, usize) -> Ijk,
    ls_of: &impl Fn(usize, isize) -> ([f64; NVAR], f64),
    gb: usize,
    gl: usize,
    n: usize,
    lam: &mut [f64],
    sig: &mut [f64],
    idm: &mut [f64],
    d: &mut [f64],
) {
    for l in 0..W {
        let li = gb + l.min(gl - 1);
        for r in 0..n + 2 {
            let (flam, fsig) = ls_of(li, r as isize - 1);
            for v in 0..NVAR {
                lam[(r * NVAR + v) * W + l] = flam[v];
            }
            sig[r * W + l] = fsig;
        }
        for c in 0..n {
            let p = node_at(li, c);
            idm[c * W + l] =
                if block.iblank[p] != Blank::Field { f64::from_bits(1u64 << 63) } else { 0.0 };
            let w = dq.node(p);
            for v in 0..NVAR {
                d[(c * NVAR + v) * W + l] = w[v];
            }
        }
    }
}

/// Perform the factored characteristic sweeps in place on `dq` (which enters
/// holding `Δt·R` in conservative variables), batching up to [`W`] lines per
/// SIMD lane group through the kernels in [`crate::kernels`]. Returns
/// estimated flops.
pub fn implicit_sweeps(
    block: &Block,
    fc: &FlowConditions,
    dq: &mut StateField,
    comm: &mut impl SolverComm,
    ws: &mut SweepScratch,
) -> u64 {
    let dt = fc.dt;
    let ow = block.owned_local();
    let mut flops = 0u64;
    let t0 = comm.now();
    let mut lines_buf = std::mem::take(&mut ws.lines);

    for &dir in block.active_dirs() {
        let (d1, d2) = other_dirs(dir);
        let n = ow.dims().get(dir);
        lines_buf.clear();
        for c2 in ow.lo.get(d2)..ow.hi.get(d2) {
            for c1 in ow.lo.get(d1)..ow.hi.get(d1) {
                lines_buf.push((c1, c2));
            }
        }
        let lines = &lines_buf;
        let nlines = lines.len();
        let upstream = implicit_neighbor(block, dir, false);
        let downstream = implicit_neighbor(block, dir, true);

        let node_at = |li: usize, c: usize| -> Ijk {
            let (c1, c2) = lines[li];
            let mut p = Ijk::new(0, 0, 0);
            p.set(dir, ow.lo.get(dir) + c);
            p.set(d1, c1);
            p.set(d2, c2);
            p
        };

        // Lane-batched frame computation + forward transform (`dq` → char):
        // the SoA frames land in `ws.fr`, halo frames in `ws.halo`.
        let halo_node = |li: usize, c: isize| -> Ijk {
            let mut p = node_at(li, 0);
            let base = ow.lo.get(dir) as isize + c;
            p.set(dir, base.max(0) as usize);
            p
        };
        let mpad = transform_to_char(
            block,
            dq,
            dir,
            &node_at,
            &halo_node,
            n,
            nlines,
            ws.isa,
            &mut ws.gin,
            &mut ws.dw,
            &mut ws.fr,
            &mut ws.halo,
        );

        // Periodic O-grid lines in `i` are solved with the *cyclic*
        // (Sherman–Morrison) algorithm — the seam coupling must be implicit:
        // the smallest azimuthal cells sit right at the wrap, and leaving
        // them explicitly coupled blows up at fine resolution.
        let periodic = dir == 0 && periodic_in_i(block);
        if periodic {
            flops += periodic_sweep_i(block, dt, dq, comm, lines, n, mpad, ow, ws);
        } else {
            // Frame (σ, λ) rows for the implicit coefficients: owned rows
            // from the SoA, halo rows from the per-line halo frames.
            let fr = &ws.fr;
            let halo = &ws.halo;
            let ls_of = |li: usize, c: isize| -> ([f64; NVAR], f64) {
                if c >= 0 && (c as usize) < n {
                    let m = li * n + c as usize;
                    let mut lamv = [0.0f64; NVAR];
                    for (v, x) in lamv.iter_mut().enumerate() {
                        *x = fr[(kernels::FR_LAM + v) * mpad + m];
                    }
                    (lamv, fr[kernels::FR_SIG * mpad + m])
                } else {
                    let h = &halo[li * 2 + usize::from(c >= 0)];
                    (h.lam, h.sigma)
                }
            };
            // Forward elimination (5 independent tridiagonal systems per
            // line), *wavefront pipelined*: lines are processed in chunks;
            // each chunk's boundary carries are exchanged as soon as the
            // chunk is eliminated, so downstream ranks work on earlier chunks
            // while this rank eliminates later ones (the standard
            // pipelined-Thomas overlap). Within each chunk, lines are
            // eliminated in lane groups of up to `W` — one SIMD lane per
            // line, each lane running the exact scalar recurrence.
            let nchunks = if upstream.is_some() || downstream.is_some() {
                PIPELINE_CHUNKS.min(nlines.max(1))
            } else {
                1
            };
            let chunk_bounds = |ch: usize| -> (usize, usize) {
                let lo = nlines * ch / nchunks;
                let hi = nlines * (ch + 1) / nchunks;
                (lo, hi)
            };
            let gstride = n * NVAR * W;
            let ngroups: usize = (0..nchunks)
                .map(|ch| {
                    let (lo, hi) = chunk_bounds(ch);
                    (hi - lo).div_ceil(W)
                })
                .sum();
            ensure_len(&mut ws.d, ngroups * gstride);
            ensure_len(&mut ws.cp, ngroups * gstride);
            ensure_len(&mut ws.lam, (n + 2) * NVAR * W);
            ensure_len(&mut ws.sig, (n + 2) * W);
            ensure_len(&mut ws.idm, n * W);

            let mut g = 0usize;
            for ch in 0..nchunks {
                let (clo, chi) = chunk_bounds(ch);
                let chunk_lines = chi - clo;
                let carries_in: Option<Vec<f64>> =
                    upstream.map(|_| comm.recv_line(block, dir, true, chunk_lines * 2 * NVAR));
                let mut carries_out: Vec<f64> = Vec::new();
                let mut gb = clo;
                while gb < chi {
                    let gl = (chi - gb).min(W);
                    let goff = g * gstride;
                    g += 1;
                    pack_group(
                        block,
                        dq,
                        &node_at,
                        &ls_of,
                        gb,
                        gl,
                        n,
                        &mut ws.lam,
                        &mut ws.sig,
                        &mut ws.idm,
                        &mut ws.d[goff..goff + gstride],
                    );
                    let mut ccp = [0.0f64; NVW];
                    let mut cdp = [0.0f64; NVW];
                    if let Some(ci) = &carries_in {
                        for l in 0..W {
                            let base = (gb + l.min(gl - 1) - clo) * 2 * NVAR;
                            for v in 0..NVAR {
                                ccp[v * W + l] = ci[base + v];
                                cdp[v * W + l] = ci[base + NVAR + v];
                            }
                        }
                    }
                    kernels::sweep_forward_group(
                        ws.isa,
                        dt,
                        n,
                        &ws.lam,
                        &ws.sig,
                        &ws.idm,
                        &mut ws.d[goff..goff + gstride],
                        &mut ws.cp[goff..goff + gstride],
                        &mut ccp,
                        &mut cdp,
                        carries_in.is_some(),
                    );
                    if downstream.is_some() {
                        for l in 0..gl {
                            for v in 0..NVAR {
                                carries_out.push(ccp[v * W + l]);
                            }
                            for v in 0..NVAR {
                                carries_out.push(cdp[v * W + l]);
                            }
                        }
                    }
                    gb += gl;
                }
                // Charge this chunk's transform + elimination work before its
                // carry message is stamped.
                comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR * 7 / 10));
                if downstream.is_some() {
                    comm.send_line(block, dir, true, carries_out);
                }
            }

            // Back substitution, pipelined the same way (upstream direction).
            let mut g = 0usize;
            for ch in 0..nchunks {
                let (clo, chi) = chunk_bounds(ch);
                let chunk_lines = chi - clo;
                let x_down: Option<Vec<f64>> =
                    downstream.map(|_| comm.recv_line(block, dir, false, chunk_lines * NVAR));
                let mut firsts: Vec<f64> = Vec::new();
                let mut gb = clo;
                while gb < chi {
                    let gl = (chi - gb).min(W);
                    let goff = g * gstride;
                    g += 1;
                    let seed: Option<[f64; NVW]> = x_down.as_ref().map(|xd| {
                        let mut s = [0.0f64; NVW];
                        for l in 0..W {
                            let base = (gb + l.min(gl - 1) - clo) * NVAR;
                            for v in 0..NVAR {
                                s[v * W + l] = xd[base + v];
                            }
                        }
                        s
                    });
                    kernels::sweep_backward_group(
                        ws.isa,
                        n,
                        &ws.cp[goff..goff + gstride],
                        &mut ws.d[goff..goff + gstride],
                        seed.as_ref(),
                    );
                    for l in 0..gl {
                        let li = gb + l;
                        for c in 0..n {
                            let p = node_at(li, c);
                            let mut w = [0.0f64; NVAR];
                            for (v, wv) in w.iter_mut().enumerate() {
                                *wv = ws.d[goff + (c * NVAR + v) * W + l];
                            }
                            dq.set_node(p, w);
                        }
                        if upstream.is_some() {
                            for v in 0..NVAR {
                                firsts.push(ws.d[goff + v * W + l]);
                            }
                        }
                    }
                    gb += gl;
                }
                comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR * 2 / 10));
                if upstream.is_some() {
                    comm.send_line(block, dir, false, firsts);
                }
            }
        }

        // Transform back to conservative increments (lane-batched).
        for li in 0..nlines {
            for c in 0..n {
                let m = li * n + c;
                let w = dq.node(node_at(li, c));
                for (v, &wv) in w.iter().enumerate() {
                    ws.dw[v * mpad + m] = wv;
                }
            }
        }
        kernels::from_char_lanes(ws.isa, mpad, &ws.fr, &mut ws.dw);
        for li in 0..nlines {
            for c in 0..n {
                let m = li * n + c;
                let mut w = [0.0f64; NVAR];
                for (v, wv) in w.iter_mut().enumerate() {
                    *wv = ws.dw[v * mpad + m];
                }
                dq.set_node(node_at(li, c), w);
            }
        }

        if !periodic {
            let rest = (n * nlines) as u64
                * (FLOPS_PER_NODE_PER_DIR
                    - FLOPS_PER_NODE_PER_DIR * 7 / 10
                    - FLOPS_PER_NODE_PER_DIR * 2 / 10);
            comm.compute(rest);
            flops += (n * nlines) as u64 * FLOPS_PER_NODE_PER_DIR;
        }
    }
    ws.lines = lines_buf;
    comm.trace_span("solver", "implicit_sweeps", t0);
    flops
}

/// Is the block part of an O-grid that wraps periodically in `i`?
fn periodic_in_i(block: &Block) -> bool {
    block.periodic_i_grid
}

/// Tridiagonal row for characteristic variable `v` at a node, from the
/// frames of its `i∓1`, own, and `i±1` nodes. The batched kernels compute
/// the same coefficients lanewise (`kernels::coeffs`); this scalar form is
/// kept as the reference the tests verify against.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn row_abc(
    fm: &CharFrame,
    f0: &CharFrame,
    fp: &CharFrame,
    dt: f64,
    v: usize,
    identity: bool,
) -> (f64, f64, f64) {
    if identity {
        (0.0, 1.0, 0.0)
    } else {
        (
            dt * (-0.5 * fm.lam[v] - BETA * fm.sigma),
            1.0 + 2.0 * BETA * dt * f0.sigma,
            dt * (0.5 * fp.lam[v] - BETA * fp.sigma),
        )
    }
}

/// Cyclic (periodic) implicit solve along `i` for an O-grid block, via the
/// Sherman–Morrison splitting. The duplicated seam node (global `ni-1`) is
/// excluded from the solve and set equal to node 0's solution afterwards.
///
/// Distributed form over the open rank chain: forward/backward pipelined
/// elimination of *two* right-hand sides per characteristic field (the
/// physical RHS `y` and the rank-one correction column `z`), then a third
/// short sweep broadcasting the per-line correction factor.
#[allow(clippy::too_many_arguments)]
fn periodic_sweep_i(
    block: &Block,
    dt: f64,
    dq: &mut StateField,
    comm: &mut impl SolverComm,
    lines: &[(usize, usize)],
    n_own: usize,
    mpad: usize,
    ow: overset_grid::index::IndexBox,
    ws: &mut SweepScratch,
) -> u64 {
    const DIR: usize = 0;
    let nlines = lines.len();
    let is_first = block.owned.lo.i == 0;
    let is_last = block.owned.hi.i == block.grid_dims.ni;
    // Exclude the duplicated seam node from the cyclic system.
    let n = if is_last { n_own - 1 } else { n_own };
    assert!(n >= 1);
    let upstream = implicit_neighbor(block, DIR, false);
    let downstream = implicit_neighbor(block, DIR, true);

    let node_at = |li: usize, c: usize| -> Ijk {
        let (c1, c2) = lines[li];
        Ijk::new(ow.lo.i + c, c1, c2)
    };
    // Frame (σ, λ) rows: owned from the SoA computed by
    // `transform_to_char` (stride `n_own`), halo from the per-line frames.
    let fr = &ws.fr;
    let halo = &ws.halo;
    let ls_of = |li: usize, c: isize| -> ([f64; NVAR], f64) {
        if c >= 0 && (c as usize) < n_own {
            let m = li * n_own + c as usize;
            let mut lamv = [0.0f64; NVAR];
            for (v, x) in lamv.iter_mut().enumerate() {
                *x = fr[(kernels::FR_LAM + v) * mpad + m];
            }
            (lamv, fr[kernels::FR_SIG * mpad + m])
        } else {
            let h = &halo[li * 2 + usize::from(c >= 0)];
            (h.lam, h.sigma)
        }
    };

    let nchunks = if upstream.is_some() || downstream.is_some() {
        PIPELINE_CHUNKS.min(nlines.max(1))
    } else {
        1
    };
    let chunk_bounds =
        |ch: usize| -> (usize, usize) { (nlines * ch / nchunks, nlines * (ch + 1) / nchunks) };

    // Lane-transposed per-row storage (group-major, padded to `W` lanes):
    // the physical RHS y, the normalized super-diagonals, and the rank-one
    // correction column z.
    let gstride = n * NVAR * W;
    let ngroups: usize = (0..nchunks)
        .map(|ch| {
            let (lo, hi) = chunk_bounds(ch);
            (hi - lo).div_ceil(W)
        })
        .sum();
    ensure_len(&mut ws.d, ngroups * gstride);
    ensure_len(&mut ws.cp, ngroups * gstride);
    ensure_len(&mut ws.z, ngroups * gstride);
    ensure_len(&mut ws.lam, (n + 2) * NVAR * W);
    ensure_len(&mut ws.sig, (n + 2) * W);
    ensure_len(&mut ws.idm, n * W);
    // Per-line S-M parameters (alpha, gamma per variable), valid on every
    // rank after the forward pass (carried down the chain).
    ws.alpha.clear();
    ws.alpha.resize(nlines, [0.0f64; NVAR]);
    ws.gamma.clear();
    ws.gamma.resize(nlines, [0.0f64; NVAR]);

    // ---- Forward elimination of y and z -------------------------------
    let mut g = 0usize;
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        // Carry layout per line: cp[5], y[5], z[5], alpha[5], gamma[5].
        let carries_in: Option<Vec<f64>> =
            upstream.map(|_| comm.recv_line(block, DIR, true, chunk_lines * 5 * NVAR));
        if let Some(ci) = &carries_in {
            for li in clo..chi {
                let base = (li - clo) * 5 * NVAR;
                ws.alpha[li].copy_from_slice(&ci[base + 3 * NVAR..base + 4 * NVAR]);
                ws.gamma[li].copy_from_slice(&ci[base + 4 * NVAR..base + 5 * NVAR]);
            }
        }
        let mut carries_out: Vec<f64> = Vec::new();
        let mut gb = clo;
        while gb < chi {
            let gl = (chi - gb).min(W);
            let goff = g * gstride;
            g += 1;
            pack_group(
                block,
                dq,
                &node_at,
                &ls_of,
                gb,
                gl,
                n,
                &mut ws.lam,
                &mut ws.sig,
                &mut ws.idm,
                &mut ws.d[goff..goff + gstride],
            );
            let mut ccp = [0.0f64; NVW];
            let mut cy = [0.0f64; NVW];
            let mut cz = [0.0f64; NVW];
            let mut al = [0.0f64; NVW];
            let mut ga = [0.0f64; NVW];
            for l in 0..W {
                let li = gb + l.min(gl - 1);
                for v in 0..NVAR {
                    al[v * W + l] = ws.alpha[li][v];
                    ga[v * W + l] = ws.gamma[li][v];
                }
                if let Some(ci) = &carries_in {
                    let base = (li - clo) * 5 * NVAR;
                    for v in 0..NVAR {
                        ccp[v * W + l] = ci[base + v];
                        cy[v * W + l] = ci[base + NVAR + v];
                        cz[v * W + l] = ci[base + 2 * NVAR + v];
                    }
                }
            }
            kernels::periodic_forward_group(
                ws.isa,
                dt,
                n,
                &ws.lam,
                &ws.sig,
                &ws.idm,
                &mut ws.d[goff..goff + gstride],
                &mut ws.z[goff..goff + gstride],
                &mut ws.cp[goff..goff + gstride],
                &mut al,
                &mut ga,
                &mut ccp,
                &mut cy,
                &mut cz,
                carries_in.is_some(),
                is_first,
                is_last,
            );
            for l in 0..gl {
                let li = gb + l;
                for v in 0..NVAR {
                    ws.alpha[li][v] = al[v * W + l];
                    ws.gamma[li][v] = ga[v * W + l];
                }
            }
            if downstream.is_some() {
                for l in 0..gl {
                    let li = gb + l;
                    for v in 0..NVAR {
                        carries_out.push(ccp[v * W + l]);
                    }
                    for v in 0..NVAR {
                        carries_out.push(cy[v * W + l]);
                    }
                    for v in 0..NVAR {
                        carries_out.push(cz[v * W + l]);
                    }
                    carries_out.extend_from_slice(&ws.alpha[li]);
                    carries_out.extend_from_slice(&ws.gamma[li]);
                }
            }
            gb += gl;
        }
        comm.compute((n * chunk_lines) as u64 * FLOPS_PER_NODE_PER_DIR);
        if downstream.is_some() {
            comm.send_line(block, DIR, true, carries_out);
        }
    }

    // ---- Back substitution of y and z ---------------------------------
    // Per-line end values (y_last, z_last per var) travel upstream.
    ws.y_last.clear();
    ws.y_last.resize(nlines, [0.0f64; NVAR]);
    ws.z_last.clear();
    ws.z_last.resize(nlines, [0.0f64; NVAR]);
    let mut g = 0usize;
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        // Carry layout per line: y_next[5], z_next[5], y_last[5], z_last[5].
        let x_down: Option<Vec<f64>> =
            downstream.map(|_| comm.recv_line(block, DIR, false, chunk_lines * 4 * NVAR));
        let mut ups: Vec<f64> = Vec::new();
        let mut gb = clo;
        while gb < chi {
            let gl = (chi - gb).min(W);
            let goff = g * gstride;
            g += 1;
            let seed: Option<([f64; NVW], [f64; NVW])> = x_down.as_ref().map(|xd| {
                let mut sy = [0.0f64; NVW];
                let mut sz = [0.0f64; NVW];
                for l in 0..W {
                    let base = (gb + l.min(gl - 1) - clo) * 4 * NVAR;
                    for v in 0..NVAR {
                        sy[v * W + l] = xd[base + v];
                        sz[v * W + l] = xd[base + NVAR + v];
                    }
                }
                (sy, sz)
            });
            kernels::periodic_backward_group(
                ws.isa,
                n,
                &ws.cp[goff..goff + gstride],
                &mut ws.d[goff..goff + gstride],
                &mut ws.z[goff..goff + gstride],
                seed.as_ref().map(|(sy, sz)| (sy, sz)),
            );
            for l in 0..gl {
                let li = gb + l;
                if let Some(xd) = &x_down {
                    let base = (li - clo) * 4 * NVAR;
                    ws.y_last[li].copy_from_slice(&xd[base + 2 * NVAR..base + 3 * NVAR]);
                    ws.z_last[li].copy_from_slice(&xd[base + 3 * NVAR..base + 4 * NVAR]);
                } else {
                    // This rank owns the end of the chain: the last solved row.
                    for v in 0..NVAR {
                        ws.y_last[li][v] = ws.d[goff + ((n - 1) * NVAR + v) * W + l];
                        ws.z_last[li][v] = ws.z[goff + ((n - 1) * NVAR + v) * W + l];
                    }
                }
                if upstream.is_some() {
                    for v in 0..NVAR {
                        ups.push(ws.d[goff + v * W + l]);
                    }
                    for v in 0..NVAR {
                        ups.push(ws.z[goff + v * W + l]);
                    }
                    ups.extend_from_slice(&ws.y_last[li]);
                    ups.extend_from_slice(&ws.z_last[li]);
                }
            }
            gb += gl;
        }
        comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR / 3));
        if upstream.is_some() {
            comm.send_line(block, DIR, false, ups);
        }
    }

    // ---- Correction sweep ----------------------------------------------
    // First rank computes fact and x0 per line/var; everyone applies
    // x = y - fact z; the last rank also fixes the duplicated seam node.
    let mut g = 0usize;
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        ws.fact.clear();
        ws.fact.resize(chunk_lines, [0.0f64; NVAR]);
        ws.x0.clear();
        ws.x0.resize(chunk_lines, [0.0f64; NVAR]);
        if is_first {
            for li in clo..chi {
                let goff = (g + (li - clo) / W) * gstride;
                let lane = (li - clo) % W;
                for v in 0..NVAR {
                    let y0 = ws.d[goff + v * W + lane];
                    let z0 = ws.z[goff + v * W + lane];
                    let gam = ws.gamma[li][v];
                    let al = ws.alpha[li][v];
                    let denom = 1.0 + z0 + al * ws.z_last[li][v] / gam;
                    let f = (y0 + al * ws.y_last[li][v] / gam) / denom;
                    ws.fact[li - clo][v] = f;
                    ws.x0[li - clo][v] = y0 - f * z0;
                }
            }
        } else {
            let data = comm.recv_line(block, DIR, true, chunk_lines * 2 * NVAR);
            for l in 0..chunk_lines {
                ws.fact[l].copy_from_slice(&data[l * 2 * NVAR..l * 2 * NVAR + NVAR]);
                ws.x0[l].copy_from_slice(&data[l * 2 * NVAR + NVAR..(l + 1) * 2 * NVAR]);
            }
        }
        let mut gb = clo;
        while gb < chi {
            let gl = (chi - gb).min(W);
            let goff = g * gstride;
            g += 1;
            let mut factl = [0.0f64; NVW];
            for l in 0..W {
                let li = gb + l.min(gl - 1);
                for v in 0..NVAR {
                    factl[v * W + l] = ws.fact[li - clo][v];
                }
            }
            kernels::periodic_correct_group(
                ws.isa,
                n,
                &factl,
                &mut ws.d[goff..goff + gstride],
                &ws.z[goff..goff + gstride],
            );
            for l in 0..gl {
                let li = gb + l;
                for c in 0..n {
                    let p = node_at(li, c);
                    let mut w = [0.0f64; NVAR];
                    for (v, wv) in w.iter_mut().enumerate() {
                        *wv = ws.d[goff + (c * NVAR + v) * W + l];
                    }
                    dq.set_node(p, w);
                }
                if is_last {
                    // Duplicated seam node mirrors node 0's solution.
                    let p = node_at(li, n);
                    dq.set_node(p, ws.x0[li - clo]);
                }
            }
            gb += gl;
        }
        comm.compute((n * chunk_lines) as u64 * 4);
        if downstream.is_some() {
            let mut out = Vec::with_capacity(chunk_lines * 2 * NVAR);
            for l in 0..chunk_lines {
                out.extend_from_slice(&ws.fact[l]);
                out.extend_from_slice(&ws.x0[l]);
            }
            comm.send_line(block, DIR, true, out);
        }
    }

    (n * nlines) as u64 * FLOPS_PER_NODE_PER_DIR * 2
}

fn other_dirs(dir: usize) -> (usize, usize) {
    match dir {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;

    fn uniform_block(n: usize, fc: &FlowConditions) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.2, p.j as f64 * 0.2, p.k as f64 * 0.2]);
        let g = CurvilinearGrid::new("u", coords, GridKind::Background);
        Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
    }

    #[test]
    fn char_transform_roundtrip() {
        let fc = FlowConditions::new(0.8, 5.0, 0.0);
        let b = uniform_block(5, &fc);
        let p = Ijk::new(3, 3, 3);
        for dir in 0..3 {
            let f = char_frame(&b, p, dir);
            let dq = [0.1, -0.2, 0.05, 0.3, 0.7];
            let w = to_char(&f, &dq);
            let back = from_char(&f, &w);
            for v in 0..NVAR {
                assert!(
                    (back[v] - dq[v]).abs() < 1e-12,
                    "dir {dir} var {v}: {} vs {}",
                    back[v],
                    dq[v]
                );
            }
        }
    }

    #[test]
    fn eigenvalues_ordered_and_consistent() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(5, &fc);
        let f = char_frame(&b, Ijk::new(2, 2, 2), 0);
        assert!(f.lam[3] > f.lam[0]);
        assert!(f.lam[4] < f.lam[0]);
        assert!((f.lam[0] - (f.lam[3] + f.lam[4]) / 2.0).abs() < 1e-12);
        assert!((f.sigma - f.lam[3].abs().max(f.lam[4].abs())).abs() < 1e-12);
        // Orthonormal frame.
        let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        assert!(dot(f.k, f.t1).abs() < 1e-12);
        assert!(dot(f.k, f.t2).abs() < 1e-12);
        assert!(dot(f.t1, f.t2).abs() < 1e-12);
        assert!((dot(f.t1, f.t1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rhs_gives_zero_update() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let mut dq = StateField::new(b.local_dims);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut SweepScratch::default());
        for v in dq.as_slice() {
            assert!(v.abs() < 1e-15);
        }
    }

    #[test]
    fn sweeps_damp_but_preserve_sign() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let mut dq = StateField::new(b.local_dims);
        let c = Ijk::new(3, 3, 3);
        dq.set_node(c, [1.0, 0.0, 0.0, 0.0, 0.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut SweepScratch::default());
        let v = dq.node(c)[0];
        assert!(v > 0.0 && v < 1.0, "center update {v}");
    }

    #[test]
    fn blanked_rows_stay_zero() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = uniform_block(7, &fc);
        let hole = Ijk::new(3, 3, 3);
        b.iblank[hole] = Blank::Hole;
        let mut dq = StateField::new(b.local_dims);
        dq.set_node(hole, [5.0; 5]); // must be zeroed by the identity row
        dq.set_node(Ijk::new(4, 3, 3), [1.0, 0.0, 0.0, 0.0, 0.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut SweepScratch::default());
        assert_eq!(*dq.node(hole), [0.0; 5]);
        assert!(dq.node(Ijk::new(4, 3, 3))[0] != 0.0);
    }

    #[test]
    fn implicit_neighbor_excludes_wrap_links() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let d = Dims::new(9, 5, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % 8) as f64 / 8.0;
            let r = 1.0 + 0.1 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("o", coords, GridKind::NearBody);
        g.periodic_i = true;
        // Whole grid on one rank, wrap neighbors pointing at itself.
        let b =
            Block::from_grid(0, &g, d.full_box(), [Some(0), Some(0), None, None, None, None], &fc);
        assert!(implicit_neighbor(&b, 0, false).is_none());
        assert!(implicit_neighbor(&b, 0, true).is_none());
    }

    #[test]
    fn cyclic_solve_satisfies_periodic_system() {
        // Annular O-grid, single block: run the sweeps and verify that the
        // i-direction solve satisfies the full *cyclic* tridiagonal system
        // (seam coupling implicit).
        let mut fc = FlowConditions::new(0.5, 0.0, 0.0);
        fc.dt = 0.1;
        let (nth, nr) = (17usize, 5);
        let d = Dims::new(nth, nr, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % (nth - 1)) as f64 / (nth - 1) as f64;
            let r = 1.0 + 0.3 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("o", coords, GridKind::NearBody);
        g.periodic_i = true;
        let mut b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
        // Mildly non-uniform state so eigenvalues vary along the line.
        for p in b.local_dims.iter().collect::<Vec<_>>() {
            let x = b.coords[p];
            let prim = [1.0 + 0.05 * x[0], 0.3 + 0.02 * x[1], 0.1 * x[0], 0.0, 0.8];
            b.q.set_node(p, crate::conditions::conservatives(&prim));
        }
        b.fill_self_wrap();

        // RHS: pseudo-random but deterministic.
        let mut rhs = StateField::new(b.local_dims);
        let ow = b.owned_local();
        for p in ow.iter().collect::<Vec<_>>() {
            let g = b.to_global(p);
            let v = ((g.i * 37 + g.j * 17) % 19) as f64 / 19.0 - 0.5;
            rhs.set_node(p, [v, 0.5 * v, -v, 0.2, v * v]);
        }
        let mut dq = rhs.clone();

        // Run ONLY the i-direction sweep by constructing the same machinery:
        // easiest is to call implicit_sweeps on a j-degenerate... instead we
        // replicate: transform to char, call periodic_sweep_i, transform back
        // is internal to implicit_sweeps; here we call implicit_sweeps and
        // then verify only the i-sweep result cannot be isolated. So verify
        // the pure solve at the characteristic level directly.
        let n_own = ow.dims().ni;
        let np = n_own - 1; // unknowns per cyclic line
        let nlines = ow.dims().nj;
        let mut lines = Vec::new();
        for c2 in ow.lo.k..ow.hi.k {
            for c1 in ow.lo.j..ow.hi.j {
                lines.push((c1, c2));
            }
        }
        // Transform rhs to characteristic variables (as implicit_sweeps
        // does, via the lane-batched stage), and keep the scalar AoS frames
        // for the verification math below.
        let mut frames = Vec::new();
        for &(lj, lk) in lines.iter().take(nlines) {
            for c in 0..n_own {
                let p = Ijk::new(ow.lo.i + c, lj, lk);
                frames.push(char_frame(&b, p, 0));
            }
        }
        let mut ws = SweepScratch::default();
        let node_at = |li: usize, c: usize| Ijk::new(ow.lo.i + c, lines[li].0, lines[li].1);
        let halo_node = |li: usize, c: isize| {
            Ijk::new((ow.lo.i as isize + c).max(0) as usize, lines[li].0, lines[li].1)
        };
        let mpad = transform_to_char(
            &b,
            &mut dq,
            0,
            &node_at,
            &halo_node,
            n_own,
            nlines,
            ws.isa,
            &mut ws.gin,
            &mut ws.dw,
            &mut ws.fr,
            &mut ws.halo,
        );
        let rhs_char = dq.clone();
        periodic_sweep_i(&b, fc.dt, &mut dq, &mut SerialComm, &lines, n_own, mpad, ow, &mut ws);

        // Verify A x = rhs for each line and variable, with A the cyclic
        // tridiagonal built from the same row coefficients.
        for li in 0..nlines {
            let node = |c: usize| Ijk::new(ow.lo.i + c, lines[li].0, lines[li].1);
            let frame_at = |c: isize| -> CharFrame {
                if c < 0 {
                    char_frame(&b, Ijk::new(ow.lo.i - 1, lines[li].0, lines[li].1), 0)
                } else {
                    frames[li * n_own + c as usize]
                }
            };
            for v in 0..NVAR {
                for c in 0..np {
                    let fm = frame_at(c as isize - 1);
                    let f0 = frames[li * n_own + c];
                    let fp = frame_at(c as isize + 1);
                    let (a, bb, cc) = row_abc(&fm, &f0, &fp, fc.dt, v, false);
                    let xm = dq.node(node(if c == 0 { np - 1 } else { c - 1 }))[v];
                    let x0 = dq.node(node(c))[v];
                    let xp = dq.node(node(if c + 1 == np { 0 } else { c + 1 }))[v];
                    let lhs = a * xm + bb * x0 + cc * xp;
                    let r = rhs_char.node(node(c))[v];
                    assert!(
                        (lhs - r).abs() < 1e-9 * (1.0 + r.abs()),
                        "line {li} var {v} row {c}: {lhs} vs {r}"
                    );
                }
                // Seam duplicate mirrors node 0.
                let dup = dq.node(node(np))[v];
                let x0 = dq.node(node(0))[v];
                assert!((dup - x0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn simd_and_scalar_sweeps_bit_identical() {
        // The AVX2 and scalar lane paths must produce bit-identical updates
        // on both an open 3-D block and a periodic O-grid block.
        let fc = FlowConditions::new(0.8, 3.0, 0.0);
        let b = uniform_block(9, &fc);
        let run = |isa: Isa| -> Vec<u64> {
            let mut dq = StateField::new(b.local_dims);
            for p in b.owned_local().iter().collect::<Vec<_>>() {
                let v = ((p.i * 31 + p.j * 17 + p.k * 7) % 23) as f64 / 23.0 - 0.5;
                dq.set_node(p, [v, 0.3 * v, -v, v * v, 0.1 + v]);
            }
            let mut ws = SweepScratch::new(isa);
            implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm, &mut ws);
            dq.as_slice().iter().map(|x| x.to_bits()).collect()
        };
        let scalar = run(Isa::Scalar);
        let simd = run(select_isa(true));
        assert_eq!(scalar, simd);
    }

    #[test]
    fn larger_dt_damps_more() {
        let mut fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let c = Ijk::new(3, 3, 3);
        let run = |fc: &FlowConditions| -> f64 {
            let mut dq = StateField::new(b.local_dims);
            dq.set_node(c, [1.0, 0.0, 0.0, 0.0, 0.0]);
            implicit_sweeps(&b, fc, &mut dq, &mut SerialComm, &mut SweepScratch::default());
            dq.node(c)[0]
        };
        fc.dt = 0.05;
        let small = run(&fc);
        fc.dt = 0.5;
        let large = run(&fc);
        assert!(large < small, "dt damping: {large} !< {small}");
    }
}
