//! Diagonalized approximate-factorization implicit scheme
//! (Pulliam–Chaussee diagonal algorithm).
//!
//! The update solves, per timestep,
//!
//! ```text
//! T_ξ (I + Δt Λ_ξ δ_ξ − D_i) T_ξ⁻¹ · T_η (…) T_η⁻¹ · T_ζ (…) T_ζ⁻¹ Δq = Δt R(qⁿ)
//! ```
//!
//! Per direction, the conservative increment is transformed to local
//! characteristic variables (entropy, two shears, two acoustics), each
//! characteristic field is solved with its own scalar tridiagonal system —
//! signed eigenvalue `λ_m ∈ {Ũ, Ũ, Ũ, Ũ±c̃}` central-implicit plus an
//! implicit second-difference smoothing `β σ` — and transformed back. The
//! signed implicit advection is what makes the factored scheme stable at the
//! CFL numbers the paper's unsteady cases run at; the implicit dissipation
//! dominates the explicit JST terms (β ≥ 2·k₄ rule).
//!
//! Lines that cross subdomain boundaries are solved with the *pipelined
//! distributed Thomas* algorithm (see [`crate::tridiag`]): implicitness is
//! maintained across subdomains, so the update is independent of the
//! processor count — the N-rank result is bit-identical to the serial one.

use crate::block::{Blank, Block};
use crate::conditions::{sound_speed, FlowConditions, GAMMA};
use overset_grid::field::{StateField, NVAR};
use overset_grid::index::Ijk;

/// Implicit second-difference smoothing coefficient (×σ).
pub const BETA: f64 = 0.25;

/// Number of line chunks per sweep used for pipelined-Thomas overlap across
/// subdomain boundaries.
pub const PIPELINE_CHUNKS: usize = 8;

/// Flops per owned node per direction for the implicit sweep
/// (characteristic transforms + 5 scalar eliminations).
pub const FLOPS_PER_NODE_PER_DIR: u64 = 180;

/// Communication hooks the solver needs from the runtime: halo exchange and
/// pipelined line-solve carries. A [`SerialComm`] no-op implementation runs
/// single-block grids; the driver crate implements this over the
/// message-passing runtime.
pub trait SolverComm {
    /// Fill halo layers of `q` from face neighbors (including periodic
    /// wraps). Called once per step before the residual evaluation.
    fn exchange_halo(&mut self, block: &mut Block);
    /// Send pipelined line-solve data for `dir` to the adjacent rank
    /// (`downstream = true`: toward increasing index).
    fn send_line(&mut self, block: &Block, dir: usize, downstream: bool, data: Vec<f64>);
    /// Receive pipelined line-solve data of length `len`.
    fn recv_line(&mut self, block: &Block, dir: usize, from_upstream: bool, len: usize)
        -> Vec<f64>;
    /// Account compute work performed inside the sweep (so pipelined carry
    /// messages are stamped with clocks that include the elimination work
    /// preceding them). Serial implementations may ignore it.
    fn compute(&mut self, _flops: u64) {}
    /// Current virtual time, seconds. Serial implementations have no clock
    /// and report 0.
    fn now(&self) -> f64 {
        0.0
    }
    /// Record a completed trace span from virtual time `start` to now.
    /// No-op by default; the message-passing runtime forwards this to its
    /// tracer, so solver stages show up on the virtual timeline.
    fn trace_span(&mut self, _cat: &'static str, _name: &'static str, _start: f64) {}
}

/// Serial communicator: single block per grid; periodic wrap filled locally.
pub struct SerialComm;

impl SolverComm for SerialComm {
    fn exchange_halo(&mut self, block: &mut Block) {
        if block.self_wrap_i {
            block.fill_self_wrap();
        }
    }
    fn send_line(&mut self, _: &Block, _: usize, _: bool, _: Vec<f64>) {
        unreachable!("serial blocks have no line neighbors");
    }
    fn recv_line(&mut self, _: &Block, _: usize, _: bool, _: usize) -> Vec<f64> {
        unreachable!("serial blocks have no line neighbors");
    }
}

/// Does the block have an *implicit-coupled* neighbor along `dir`?
/// Periodic wrap links are excluded: the implicit operator treats O-grid
/// lines as open (the wrap coupling stays explicit through the halo), the
/// same in serial and parallel.
pub fn implicit_neighbor(block: &Block, dir: usize, downstream: bool) -> Option<usize> {
    let face = 2 * dir + usize::from(downstream);
    let n = block.neighbor[face]?;
    let interior = if downstream {
        block.owned.hi.get(dir) < block.grid_dims.get(dir)
    } else {
        block.owned.lo.get(dir) > 0
    };
    interior.then_some(n)
}

/// Local characteristic frame at a node for direction `dir`.
#[derive(Clone, Copy)]
struct CharFrame {
    /// Unit metric normal.
    k: [f64; 3],
    /// Orthonormal tangents.
    t1: [f64; 3],
    t2: [f64; 3],
    /// ρ, velocity, sound speed.
    rho: f64,
    u: [f64; 3],
    c: f64,
    /// Eigenvalues per characteristic field (J-scaled): Ũ, Ũ, Ũ, Ũ+c̃, Ũ−c̃.
    lam: [f64; NVAR],
    /// Spectral radius |Ũ| + c̃ (J-scaled) for the implicit smoothing.
    sigma: f64,
}

fn char_frame(block: &Block, p: Ijk, dir: usize) -> CharFrame {
    let q = block.q.node(p);
    let m = block.metrics[p];
    let g = m.grad(dir);
    let jac = m.jac;
    let s = [g[0] * jac, g[1] * jac, g[2] * jac];
    let s_norm = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt().max(1e-300);
    let k = [s[0] / s_norm, s[1] / s_norm, s[2] / s_norm];
    // Deterministic tangent basis.
    let a = if k[0].abs() < 0.9 { [1.0, 0.0, 0.0] } else { [0.0, 1.0, 0.0] };
    let mut t1 = [k[1] * a[2] - k[2] * a[1], k[2] * a[0] - k[0] * a[2], k[0] * a[1] - k[1] * a[0]];
    let n1 = (t1[0] * t1[0] + t1[1] * t1[1] + t1[2] * t1[2]).sqrt();
    for t in t1.iter_mut() {
        *t /= n1;
    }
    let t2 =
        [k[1] * t1[2] - k[2] * t1[1], k[2] * t1[0] - k[0] * t1[2], k[0] * t1[1] - k[1] * t1[0]];
    let rho = q[0];
    let u = [q[1] / rho, q[2] / rho, q[3] / rho];
    let c = sound_speed(q);
    let vg = block.grid_vel[p];
    let u_rel_n = s[0] * (u[0] - vg[0]) + s[1] * (u[1] - vg[1]) + s[2] * (u[2] - vg[2]);
    let u_tilde = u_rel_n / jac;
    let c_tilde = c * s_norm / jac;
    CharFrame {
        k,
        t1,
        t2,
        rho,
        u,
        c,
        lam: [u_tilde, u_tilde, u_tilde, u_tilde + c_tilde, u_tilde - c_tilde],
        sigma: u_tilde.abs() + c_tilde,
    }
}

/// Conservative increment → characteristic variables at the frame.
#[inline]
fn to_char(f: &CharFrame, dq: &[f64; NVAR]) -> [f64; NVAR] {
    // ΔQ → Δprimitive.
    let d_rho = dq[0];
    let du = [
        (dq[1] - f.u[0] * d_rho) / f.rho,
        (dq[2] - f.u[1] * d_rho) / f.rho,
        (dq[3] - f.u[2] * d_rho) / f.rho,
    ];
    let ke = 0.5 * (f.u[0] * f.u[0] + f.u[1] * f.u[1] + f.u[2] * f.u[2]);
    let dp =
        (GAMMA - 1.0) * (dq[4] + ke * d_rho - f.u[0] * dq[1] - f.u[1] * dq[2] - f.u[2] * dq[3]);
    // Δprimitive → characteristic.
    let un = f.k[0] * du[0] + f.k[1] * du[1] + f.k[2] * du[2];
    let c2 = f.c * f.c;
    [
        d_rho - dp / c2,
        f.t1[0] * du[0] + f.t1[1] * du[1] + f.t1[2] * du[2],
        f.t2[0] * du[0] + f.t2[1] * du[1] + f.t2[2] * du[2],
        un + dp / (f.rho * f.c),
        un - dp / (f.rho * f.c),
    ]
}

/// Characteristic variables → conservative increment at the frame.
#[inline]
fn from_char(f: &CharFrame, w: &[f64; NVAR]) -> [f64; NVAR] {
    let dp = 0.5 * f.rho * f.c * (w[3] - w[4]);
    let un = 0.5 * (w[3] + w[4]);
    let d_rho = w[0] + dp / (f.c * f.c);
    let du = [
        f.t1[0] * w[1] + f.t2[0] * w[2] + f.k[0] * un,
        f.t1[1] * w[1] + f.t2[1] * w[2] + f.k[1] * un,
        f.t1[2] * w[1] + f.t2[2] * w[2] + f.k[2] * un,
    ];
    let ke = 0.5 * (f.u[0] * f.u[0] + f.u[1] * f.u[1] + f.u[2] * f.u[2]);
    [
        d_rho,
        f.u[0] * d_rho + f.rho * du[0],
        f.u[1] * d_rho + f.rho * du[1],
        f.u[2] * d_rho + f.rho * du[2],
        ke * d_rho
            + f.rho * (f.u[0] * du[0] + f.u[1] * du[1] + f.u[2] * du[2])
            + dp / (GAMMA - 1.0),
    ]
}

/// Perform the factored characteristic sweeps in place on `dq` (which enters
/// holding `Δt·R` in conservative variables). Returns estimated flops.
pub fn implicit_sweeps(
    block: &Block,
    fc: &FlowConditions,
    dq: &mut StateField,
    comm: &mut impl SolverComm,
) -> u64 {
    let dt = fc.dt;
    let ow = block.owned_local();
    let mut flops = 0u64;
    let t0 = comm.now();

    for &dir in block.active_dirs() {
        let (d1, d2) = other_dirs(dir);
        let n = ow.dims().get(dir);
        let mut lines: Vec<(usize, usize)> = Vec::new();
        for c2 in ow.lo.get(d2)..ow.hi.get(d2) {
            for c1 in ow.lo.get(d1)..ow.hi.get(d1) {
                lines.push((c1, c2));
            }
        }
        let nlines = lines.len();
        let upstream = implicit_neighbor(block, dir, false);
        let downstream = implicit_neighbor(block, dir, true);

        let node_at = |li: usize, c: usize| -> Ijk {
            let (c1, c2) = lines[li];
            let mut p = Ijk::new(0, 0, 0);
            p.set(dir, ow.lo.get(dir) + c);
            p.set(d1, c1);
            p.set(d2, c2);
            p
        };

        // Transform dt·R to characteristic variables per node; cache frames.
        let mut frames: Vec<CharFrame> = Vec::with_capacity(n * nlines);
        for li in 0..nlines {
            for c in 0..n {
                let p = node_at(li, c);
                let f = char_frame(block, p, dir);
                let w = to_char(&f, dq.node(p));
                dq.set_node(p, w);
                frames.push(f);
            }
        }
        // Frame (σ, λ) for implicit coefficients at the ±1 stencil nodes:
        // owned frames cached; halo frames computed on demand.
        let frame_of = |li: usize, c: isize| -> CharFrame {
            if c >= 0 && (c as usize) < n {
                frames[li * n + c as usize]
            } else {
                let mut p = node_at(li, 0);
                let base = ow.lo.get(dir) as isize + c;
                p.set(dir, base.max(0) as usize);
                char_frame(block, p, dir)
            }
        };

        // Periodic O-grid lines in `i` are solved with the *cyclic*
        // (Sherman–Morrison) algorithm — the seam coupling must be implicit:
        // the smallest azimuthal cells sit right at the wrap, and leaving
        // them explicitly coupled blows up at fine resolution.
        if dir == 0 && periodic_in_i(block) {
            flops += periodic_sweep_i(block, dt, dq, comm, &lines, n, &frames, ow);
            for li in 0..nlines {
                for c in 0..n {
                    let p = node_at(li, c);
                    let f = frames[li * n + c];
                    let w = *dq.node(p);
                    dq.set_node(p, from_char(&f, &w));
                }
            }
            continue;
        }

        // Forward elimination (5 independent tridiagonal systems per line),
        // *wavefront pipelined*: lines are processed in chunks; each chunk's
        // boundary carries are exchanged as soon as the chunk is eliminated,
        // so downstream ranks work on earlier chunks while this rank
        // eliminates later ones (the standard pipelined-Thomas overlap).
        let nchunks = if upstream.is_some() || downstream.is_some() {
            PIPELINE_CHUNKS.min(nlines.max(1))
        } else {
            1
        };
        let chunk_bounds = |ch: usize| -> (usize, usize) {
            let lo = nlines * ch / nchunks;
            let hi = nlines * (ch + 1) / nchunks;
            (lo, hi)
        };
        let mut cp = vec![0.0f64; n * nlines * NVAR];

        for ch in 0..nchunks {
            let (clo, chi) = chunk_bounds(ch);
            let chunk_lines = chi - clo;
            let carries_in: Option<Vec<f64>> =
                upstream.map(|_| comm.recv_line(block, dir, true, chunk_lines * 2 * NVAR));
            let mut carries_out: Vec<f64> = Vec::new();
            for li in clo..chi {
                let mut prev_cp = [0.0f64; NVAR];
                let mut prev_dp = [0.0f64; NVAR];
                let mut have_prev = false;
                if let Some(ci) = &carries_in {
                    let base = (li - clo) * 2 * NVAR;
                    prev_cp.copy_from_slice(&ci[base..base + NVAR]);
                    prev_dp.copy_from_slice(&ci[base + NVAR..base + 2 * NVAR]);
                    have_prev = true;
                }
                for c in 0..n {
                    let p = node_at(li, c);
                    let fm = frame_of(li, c as isize - 1);
                    let f0 = frames[li * n + c];
                    let fp = frame_of(li, c as isize + 1);
                    let identity = block.iblank[p] != Blank::Field;
                    let wnode = dq.node_mut(p);
                    if identity {
                        *wnode = [0.0; NVAR];
                    }
                    for v in 0..NVAR {
                        let (a, b, cc) = if identity {
                            (0.0, 1.0, 0.0)
                        } else {
                            (
                                dt * (-0.5 * fm.lam[v] - BETA * fm.sigma),
                                1.0 + 2.0 * BETA * dt * f0.sigma,
                                dt * (0.5 * fp.lam[v] - BETA * fp.sigma),
                            )
                        };
                        let (bp, num) = if have_prev {
                            (b - a * prev_cp[v], wnode[v] - a * prev_dp[v])
                        } else {
                            (b, wnode[v])
                        };
                        let cpv = cc / bp;
                        cp[(li * n + c) * NVAR + v] = cpv;
                        wnode[v] = num / bp;
                        prev_cp[v] = cpv;
                        prev_dp[v] = wnode[v];
                    }
                    have_prev = true;
                }
                if downstream.is_some() {
                    carries_out.extend_from_slice(&prev_cp);
                    carries_out.extend_from_slice(&prev_dp);
                }
            }
            // Charge this chunk's transform + elimination work before its
            // carry message is stamped.
            comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR * 7 / 10));
            if downstream.is_some() {
                comm.send_line(block, dir, true, carries_out);
            }
        }

        // Back substitution, pipelined the same way (upstream direction).
        for ch in 0..nchunks {
            let (clo, chi) = chunk_bounds(ch);
            let chunk_lines = chi - clo;
            let x_down: Option<Vec<f64>> =
                downstream.map(|_| comm.recv_line(block, dir, false, chunk_lines * NVAR));
            let mut firsts: Vec<f64> = Vec::new();
            for li in clo..chi {
                if let Some(xd) = &x_down {
                    let p = node_at(li, n - 1);
                    let wnode = dq.node_mut(p);
                    for v in 0..NVAR {
                        wnode[v] -= cp[(li * n + n - 1) * NVAR + v] * xd[(li - clo) * NVAR + v];
                    }
                }
                for c in (0..n - 1).rev() {
                    let p = node_at(li, c);
                    let next = *dq.node(node_at(li, c + 1));
                    let wnode = dq.node_mut(p);
                    for v in 0..NVAR {
                        wnode[v] -= cp[(li * n + c) * NVAR + v] * next[v];
                    }
                }
                if upstream.is_some() {
                    firsts.extend_from_slice(dq.node(node_at(li, 0)));
                }
            }
            comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR * 2 / 10));
            if upstream.is_some() {
                comm.send_line(block, dir, false, firsts);
            }
        }

        // Transform back to conservative increments.
        for li in 0..nlines {
            for c in 0..n {
                let p = node_at(li, c);
                let f = frames[li * n + c];
                let w = *dq.node(p);
                dq.set_node(p, from_char(&f, &w));
            }
        }

        let rest = (n * nlines) as u64
            * (FLOPS_PER_NODE_PER_DIR
                - FLOPS_PER_NODE_PER_DIR * 7 / 10
                - FLOPS_PER_NODE_PER_DIR * 2 / 10);
        comm.compute(rest);
        flops += (n * nlines) as u64 * FLOPS_PER_NODE_PER_DIR;
    }
    comm.trace_span("solver", "implicit_sweeps", t0);
    flops
}

/// Is the block part of an O-grid that wraps periodically in `i`?
fn periodic_in_i(block: &Block) -> bool {
    block.periodic_i_grid
}

/// Tridiagonal row for characteristic variable `v` at a node, from the
/// frames of its `i∓1`, own, and `i±1` nodes.
#[inline]
fn row_abc(
    fm: &CharFrame,
    f0: &CharFrame,
    fp: &CharFrame,
    dt: f64,
    v: usize,
    identity: bool,
) -> (f64, f64, f64) {
    if identity {
        (0.0, 1.0, 0.0)
    } else {
        (
            dt * (-0.5 * fm.lam[v] - BETA * fm.sigma),
            1.0 + 2.0 * BETA * dt * f0.sigma,
            dt * (0.5 * fp.lam[v] - BETA * fp.sigma),
        )
    }
}

/// Cyclic (periodic) implicit solve along `i` for an O-grid block, via the
/// Sherman–Morrison splitting. The duplicated seam node (global `ni-1`) is
/// excluded from the solve and set equal to node 0's solution afterwards.
///
/// Distributed form over the open rank chain: forward/backward pipelined
/// elimination of *two* right-hand sides per characteristic field (the
/// physical RHS `y` and the rank-one correction column `z`), then a third
/// short sweep broadcasting the per-line correction factor.
#[allow(clippy::too_many_arguments)]
fn periodic_sweep_i(
    block: &Block,
    dt: f64,
    dq: &mut StateField,
    comm: &mut impl SolverComm,
    lines: &[(usize, usize)],
    n_own: usize,
    frames: &[CharFrame],
    ow: overset_grid::index::IndexBox,
) -> u64 {
    const DIR: usize = 0;
    let nlines = lines.len();
    let is_first = block.owned.lo.i == 0;
    let is_last = block.owned.hi.i == block.grid_dims.ni;
    // Exclude the duplicated seam node from the cyclic system.
    let n = if is_last { n_own - 1 } else { n_own };
    assert!(n >= 1);
    let upstream = implicit_neighbor(block, DIR, false);
    let downstream = implicit_neighbor(block, DIR, true);

    let node_at = |li: usize, c: usize| -> Ijk {
        let (c1, c2) = lines[li];
        Ijk::new(ow.lo.i + c, c1, c2)
    };
    let frame_of = |li: usize, c: isize| -> CharFrame {
        if c >= 0 && (c as usize) < n_own {
            frames[li * n_own + c as usize]
        } else {
            let p0 = node_at(li, 0);
            let base = (ow.lo.i as isize + c).max(0) as usize;
            char_frame(block, Ijk::new(base, p0.j, p0.k), DIR)
        }
    };

    let nchunks = if upstream.is_some() || downstream.is_some() {
        PIPELINE_CHUNKS.min(nlines.max(1))
    } else {
        1
    };
    let chunk_bounds =
        |ch: usize| -> (usize, usize) { (nlines * ch / nchunks, nlines * (ch + 1) / nchunks) };

    // Per-row storage: cp and the correction column z (y lives in dq).
    let mut cp = vec![0.0f64; n * nlines * NVAR];
    let mut z = vec![0.0f64; n * nlines * NVAR];
    // Per-line S-M parameters (alpha, gamma per variable), valid on every
    // rank after the forward pass (carried down the chain).
    let mut alpha = vec![[0.0f64; NVAR]; nlines];
    let mut gamma = vec![[0.0f64; NVAR]; nlines];

    // ---- Forward elimination of y and z -------------------------------
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        // Carry layout per line: cp[5], y[5], z[5], alpha[5], gamma[5].
        let carries_in: Option<Vec<f64>> =
            upstream.map(|_| comm.recv_line(block, DIR, true, chunk_lines * 5 * NVAR));
        let mut carries_out: Vec<f64> = Vec::new();
        for li in clo..chi {
            let mut prev_cp = [0.0f64; NVAR];
            let mut prev_y = [0.0f64; NVAR];
            let mut prev_z = [0.0f64; NVAR];
            let mut have_prev = false;
            if let Some(ci) = &carries_in {
                let base = (li - clo) * 5 * NVAR;
                prev_cp.copy_from_slice(&ci[base..base + NVAR]);
                prev_y.copy_from_slice(&ci[base + NVAR..base + 2 * NVAR]);
                prev_z.copy_from_slice(&ci[base + 2 * NVAR..base + 3 * NVAR]);
                alpha[li].copy_from_slice(&ci[base + 3 * NVAR..base + 4 * NVAR]);
                gamma[li].copy_from_slice(&ci[base + 4 * NVAR..base + 5 * NVAR]);
                have_prev = true;
            }
            for c in 0..n {
                let p = node_at(li, c);
                let fm = frame_of(li, c as isize - 1);
                let f0 = frames[li * n_own + c];
                let fp = frame_of(li, c as isize + 1);
                let identity = block.iblank[p] != Blank::Field;
                let wnode = dq.node_mut(p);
                if identity {
                    *wnode = [0.0; NVAR];
                }
                for v in 0..NVAR {
                    let (a, mut b, cc) = row_abc(&fm, &f0, &fp, dt, v, identity);
                    let mut u_rhs = 0.0;
                    if is_first && c == 0 {
                        // Corner entries of the cyclic system.
                        gamma[li][v] = -b;
                        alpha[li][v] = a;
                        b -= gamma[li][v];
                        u_rhs = gamma[li][v];
                    }
                    if is_last && c == n - 1 {
                        // beta: coupling of the last row to node 0, through
                        // the duplicated seam node's frame.
                        let beta = cc;
                        b -= alpha[li][v] * beta / gamma[li][v];
                        u_rhs = beta;
                    }
                    let (bp, ynum, znum) = if have_prev {
                        (b - a * prev_cp[v], wnode[v] - a * prev_y[v], u_rhs - a * prev_z[v])
                    } else {
                        (b, wnode[v], u_rhs)
                    };
                    let cpv = cc / bp;
                    cp[(li * n + c) * NVAR + v] = cpv;
                    wnode[v] = ynum / bp;
                    z[(li * n + c) * NVAR + v] = znum / bp;
                    prev_cp[v] = cpv;
                    prev_y[v] = wnode[v];
                    prev_z[v] = z[(li * n + c) * NVAR + v];
                }
                have_prev = true;
            }
            if downstream.is_some() {
                carries_out.extend_from_slice(&prev_cp);
                carries_out.extend_from_slice(&prev_y);
                carries_out.extend_from_slice(&prev_z);
                carries_out.extend_from_slice(&alpha[li]);
                carries_out.extend_from_slice(&gamma[li]);
            }
        }
        comm.compute((n * chunk_lines) as u64 * FLOPS_PER_NODE_PER_DIR);
        if downstream.is_some() {
            comm.send_line(block, DIR, true, carries_out);
        }
    }

    // ---- Back substitution of y and z ---------------------------------
    // Per-line end values (y_last, z_last per var) travel upstream.
    let mut y_last = vec![[0.0f64; NVAR]; nlines];
    let mut z_last = vec![[0.0f64; NVAR]; nlines];
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        // Carry layout per line: y_next[5], z_next[5], y_last[5], z_last[5].
        let x_down: Option<Vec<f64>> =
            downstream.map(|_| comm.recv_line(block, DIR, false, chunk_lines * 4 * NVAR));
        let mut ups: Vec<f64> = Vec::new();
        for li in clo..chi {
            if let Some(xd) = &x_down {
                let base = (li - clo) * 4 * NVAR;
                let p = node_at(li, n - 1);
                let row = (li * n + n - 1) * NVAR;
                let wnode = dq.node_mut(p);
                for v in 0..NVAR {
                    wnode[v] -= cp[row + v] * xd[base + v];
                    z[row + v] -= cp[row + v] * xd[base + NVAR + v];
                }
                y_last[li].copy_from_slice(&xd[base + 2 * NVAR..base + 3 * NVAR]);
                z_last[li].copy_from_slice(&xd[base + 3 * NVAR..base + 4 * NVAR]);
            } else {
                // This rank owns the end of the chain: the last solved row.
                let p = node_at(li, n - 1);
                y_last[li] = *dq.node(p);
                for v in 0..NVAR {
                    z_last[li][v] = z[(li * n + n - 1) * NVAR + v];
                }
            }
            for c in (0..n - 1).rev() {
                let p = node_at(li, c);
                let pn = node_at(li, c + 1);
                let ynext = *dq.node(pn);
                let row = (li * n + c) * NVAR;
                let rown = (li * n + c + 1) * NVAR;
                let wnode = dq.node_mut(p);
                for v in 0..NVAR {
                    wnode[v] -= cp[row + v] * ynext[v];
                    z[row + v] -= cp[row + v] * z[rown + v];
                }
            }
            if upstream.is_some() {
                let p = node_at(li, 0);
                ups.extend_from_slice(dq.node(p));
                for v in 0..NVAR {
                    ups.push(z[(li * n) * NVAR + v]);
                }
                ups.extend_from_slice(&y_last[li]);
                ups.extend_from_slice(&z_last[li]);
            }
        }
        comm.compute((n * chunk_lines) as u64 * (FLOPS_PER_NODE_PER_DIR / 3));
        if upstream.is_some() {
            comm.send_line(block, DIR, false, ups);
        }
    }

    // ---- Correction sweep ----------------------------------------------
    // First rank computes fact and x0 per line/var; everyone applies
    // x = y - fact z; the last rank also fixes the duplicated seam node.
    for ch in 0..nchunks {
        let (clo, chi) = chunk_bounds(ch);
        let chunk_lines = chi - clo;
        let mut fact = vec![[0.0f64; NVAR]; chunk_lines];
        let mut x0 = vec![[0.0f64; NVAR]; chunk_lines];
        if is_first {
            for li in clo..chi {
                let p0 = node_at(li, 0);
                let y0 = *dq.node(p0);
                for v in 0..NVAR {
                    let z0 = z[(li * n) * NVAR + v];
                    let g = gamma[li][v];
                    let al = alpha[li][v];
                    let denom = 1.0 + z0 + al * z_last[li][v] / g;
                    let f = (y0[v] + al * y_last[li][v] / g) / denom;
                    fact[li - clo][v] = f;
                    x0[li - clo][v] = y0[v] - f * z0;
                }
            }
        } else {
            let data = comm.recv_line(block, DIR, true, chunk_lines * 2 * NVAR);
            for l in 0..chunk_lines {
                fact[l].copy_from_slice(&data[l * 2 * NVAR..l * 2 * NVAR + NVAR]);
                x0[l].copy_from_slice(&data[l * 2 * NVAR + NVAR..(l + 1) * 2 * NVAR]);
            }
        }
        for li in clo..chi {
            for c in 0..n {
                let p = node_at(li, c);
                let row = (li * n + c) * NVAR;
                let wnode = dq.node_mut(p);
                for v in 0..NVAR {
                    wnode[v] -= fact[li - clo][v] * z[row + v];
                }
            }
            if is_last {
                // Duplicated seam node mirrors node 0's solution.
                let p = node_at(li, n);
                dq.set_node(p, x0[li - clo]);
            }
        }
        comm.compute((n * chunk_lines) as u64 * 4);
        if downstream.is_some() {
            let mut out = Vec::with_capacity(chunk_lines * 2 * NVAR);
            for l in 0..chunk_lines {
                out.extend_from_slice(&fact[l]);
                out.extend_from_slice(&x0[l]);
            }
            comm.send_line(block, DIR, true, out);
        }
    }

    (n * nlines) as u64 * FLOPS_PER_NODE_PER_DIR * 2
}

fn other_dirs(dir: usize) -> (usize, usize) {
    match dir {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;

    fn uniform_block(n: usize, fc: &FlowConditions) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.2, p.j as f64 * 0.2, p.k as f64 * 0.2]);
        let g = CurvilinearGrid::new("u", coords, GridKind::Background);
        Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
    }

    #[test]
    fn char_transform_roundtrip() {
        let fc = FlowConditions::new(0.8, 5.0, 0.0);
        let b = uniform_block(5, &fc);
        let p = Ijk::new(3, 3, 3);
        for dir in 0..3 {
            let f = char_frame(&b, p, dir);
            let dq = [0.1, -0.2, 0.05, 0.3, 0.7];
            let w = to_char(&f, &dq);
            let back = from_char(&f, &w);
            for v in 0..NVAR {
                assert!(
                    (back[v] - dq[v]).abs() < 1e-12,
                    "dir {dir} var {v}: {} vs {}",
                    back[v],
                    dq[v]
                );
            }
        }
    }

    #[test]
    fn eigenvalues_ordered_and_consistent() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(5, &fc);
        let f = char_frame(&b, Ijk::new(2, 2, 2), 0);
        assert!(f.lam[3] > f.lam[0]);
        assert!(f.lam[4] < f.lam[0]);
        assert!((f.lam[0] - (f.lam[3] + f.lam[4]) / 2.0).abs() < 1e-12);
        assert!((f.sigma - f.lam[3].abs().max(f.lam[4].abs())).abs() < 1e-12);
        // Orthonormal frame.
        let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        assert!(dot(f.k, f.t1).abs() < 1e-12);
        assert!(dot(f.k, f.t2).abs() < 1e-12);
        assert!(dot(f.t1, f.t2).abs() < 1e-12);
        assert!((dot(f.t1, f.t1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rhs_gives_zero_update() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let mut dq = StateField::new(b.local_dims);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm);
        for v in dq.as_slice() {
            assert!(v.abs() < 1e-15);
        }
    }

    #[test]
    fn sweeps_damp_but_preserve_sign() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let mut dq = StateField::new(b.local_dims);
        let c = Ijk::new(3, 3, 3);
        dq.set_node(c, [1.0, 0.0, 0.0, 0.0, 0.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm);
        let v = dq.node(c)[0];
        assert!(v > 0.0 && v < 1.0, "center update {v}");
    }

    #[test]
    fn blanked_rows_stay_zero() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = uniform_block(7, &fc);
        let hole = Ijk::new(3, 3, 3);
        b.iblank[hole] = Blank::Hole;
        let mut dq = StateField::new(b.local_dims);
        dq.set_node(hole, [5.0; 5]); // must be zeroed by the identity row
        dq.set_node(Ijk::new(4, 3, 3), [1.0, 0.0, 0.0, 0.0, 0.0]);
        implicit_sweeps(&b, &fc, &mut dq, &mut SerialComm);
        assert_eq!(*dq.node(hole), [0.0; 5]);
        assert!(dq.node(Ijk::new(4, 3, 3))[0] != 0.0);
    }

    #[test]
    fn implicit_neighbor_excludes_wrap_links() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let d = Dims::new(9, 5, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % 8) as f64 / 8.0;
            let r = 1.0 + 0.1 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("o", coords, GridKind::NearBody);
        g.periodic_i = true;
        // Whole grid on one rank, wrap neighbors pointing at itself.
        let b =
            Block::from_grid(0, &g, d.full_box(), [Some(0), Some(0), None, None, None, None], &fc);
        assert!(implicit_neighbor(&b, 0, false).is_none());
        assert!(implicit_neighbor(&b, 0, true).is_none());
    }

    #[test]
    fn cyclic_solve_satisfies_periodic_system() {
        // Annular O-grid, single block: run the sweeps and verify that the
        // i-direction solve satisfies the full *cyclic* tridiagonal system
        // (seam coupling implicit).
        let mut fc = FlowConditions::new(0.5, 0.0, 0.0);
        fc.dt = 0.1;
        let (nth, nr) = (17usize, 5);
        let d = Dims::new(nth, nr, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % (nth - 1)) as f64 / (nth - 1) as f64;
            let r = 1.0 + 0.3 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("o", coords, GridKind::NearBody);
        g.periodic_i = true;
        let mut b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
        // Mildly non-uniform state so eigenvalues vary along the line.
        for p in b.local_dims.iter().collect::<Vec<_>>() {
            let x = b.coords[p];
            let prim = [1.0 + 0.05 * x[0], 0.3 + 0.02 * x[1], 0.1 * x[0], 0.0, 0.8];
            b.q.set_node(p, crate::conditions::conservatives(&prim));
        }
        b.fill_self_wrap();

        // RHS: pseudo-random but deterministic.
        let mut rhs = StateField::new(b.local_dims);
        let ow = b.owned_local();
        for p in ow.iter().collect::<Vec<_>>() {
            let g = b.to_global(p);
            let v = ((g.i * 37 + g.j * 17) % 19) as f64 / 19.0 - 0.5;
            rhs.set_node(p, [v, 0.5 * v, -v, 0.2, v * v]);
        }
        let mut dq = rhs.clone();

        // Run ONLY the i-direction sweep by constructing the same machinery:
        // easiest is to call implicit_sweeps on a j-degenerate... instead we
        // replicate: transform to char, call periodic_sweep_i, transform back
        // is internal to implicit_sweeps; here we call implicit_sweeps and
        // then verify only the i-sweep result cannot be isolated. So verify
        // the pure solve at the characteristic level directly.
        let n_own = ow.dims().ni;
        let np = n_own - 1; // unknowns per cyclic line
        let nlines = ow.dims().nj;
        let mut lines = Vec::new();
        for c2 in ow.lo.k..ow.hi.k {
            for c1 in ow.lo.j..ow.hi.j {
                lines.push((c1, c2));
            }
        }
        // Transform rhs to characteristic variables (as implicit_sweeps does).
        let mut frames = Vec::new();
        for &(lj, lk) in lines.iter().take(nlines) {
            for c in 0..n_own {
                let p = Ijk::new(ow.lo.i + c, lj, lk);
                let f = char_frame(&b, p, 0);
                let w = to_char(&f, dq.node(p));
                dq.set_node(p, w);
                frames.push(f);
            }
        }
        let rhs_char = dq.clone();
        periodic_sweep_i(&b, fc.dt, &mut dq, &mut SerialComm, &lines, n_own, &frames, ow);

        // Verify A x = rhs for each line and variable, with A the cyclic
        // tridiagonal built from the same row coefficients.
        for li in 0..nlines {
            let node = |c: usize| Ijk::new(ow.lo.i + c, lines[li].0, lines[li].1);
            let frame_at = |c: isize| -> CharFrame {
                if c < 0 {
                    char_frame(&b, Ijk::new(ow.lo.i - 1, lines[li].0, lines[li].1), 0)
                } else {
                    frames[li * n_own + c as usize]
                }
            };
            for v in 0..NVAR {
                for c in 0..np {
                    let fm = frame_at(c as isize - 1);
                    let f0 = frames[li * n_own + c];
                    let fp = frame_at(c as isize + 1);
                    let (a, bb, cc) = row_abc(&fm, &f0, &fp, fc.dt, v, false);
                    let xm = dq.node(node(if c == 0 { np - 1 } else { c - 1 }))[v];
                    let x0 = dq.node(node(c))[v];
                    let xp = dq.node(node(if c + 1 == np { 0 } else { c + 1 }))[v];
                    let lhs = a * xm + bb * x0 + cc * xp;
                    let r = rhs_char.node(node(c))[v];
                    assert!(
                        (lhs - r).abs() < 1e-9 * (1.0 + r.abs()),
                        "line {li} var {v} row {c}: {lhs} vs {r}"
                    );
                }
                // Seam duplicate mirrors node 0.
                let dup = dq.node(node(np))[v];
                let x0 = dq.node(node(0))[v];
                assert!((dup - x0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn larger_dt_damps_more() {
        let mut fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = uniform_block(7, &fc);
        let c = Ijk::new(3, 3, 3);
        let run = |fc: &FlowConditions| -> f64 {
            let mut dq = StateField::new(b.local_dims);
            dq.set_node(c, [1.0, 0.0, 0.0, 0.0, 0.0]);
            implicit_sweeps(&b, fc, &mut dq, &mut SerialComm);
            dq.node(c)[0]
        };
        fc.dt = 0.05;
        let small = run(&fc);
        fc.dt = 0.5;
        let large = run(&fc);
        assert!(large < small, "dt damping: {large} !< {small}");
    }
}
