//! Physical boundary conditions, applied to the owned boundary layers of a
//! block after each implicit update.
//!
//! Overset outer boundaries (`BcKind::OversetOuter`) are *not* handled here:
//! those nodes are inter-grid boundary points whose values the connectivity
//! module imposes by interpolation each step.

use crate::block::Block;
use crate::conditions::{conservatives, pressure, FlowConditions};
use overset_grid::curvilinear::BcKind;
use overset_grid::field::NVAR;
use overset_grid::index::Ijk;

/// Flops per boundary node for BC application (cost accounting).
pub const FLOPS_PER_BC_NODE: u64 = 40;

/// Apply all physical BCs. Returns estimated flops.
pub fn apply_bcs(block: &mut Block, fc: &FlowConditions) -> u64 {
    let mut nodes = 0u64;
    for face in 0..6 {
        let Some(kind) = block.face_bc[face] else { continue };
        let dir = face / 2;
        let inward: isize = if face % 2 == 0 { 1 } else { -1 };
        let layer = block.layer_box(face, 1, false);
        for p in layer.iter() {
            nodes += 1;
            apply_at(block, fc, kind, p, dir, inward);
        }
    }
    nodes * FLOPS_PER_BC_NODE
}

fn apply_at(
    block: &mut Block,
    fc: &FlowConditions,
    kind: BcKind,
    p: Ijk,
    dir: usize,
    inward: isize,
) {
    let inner = {
        let mut q = p;
        q.set(dir, (q.get(dir) as isize + inward) as usize);
        q
    };
    match kind {
        BcKind::Farfield => {
            let q = characteristic_farfield(block, fc, p, inner, dir);
            block.q.set_node(p, q);
        }
        BcKind::Extrapolate | BcKind::Axis => {
            let v = *block.q.node(inner);
            block.q.set_node(p, v);
        }
        BcKind::Wall { viscous } => {
            let qi = *block.q.node(inner);
            let rho = qi[0];
            let p_wall = pressure(&qi); // zero normal pressure gradient
            let vg = block.grid_vel[p];
            let vel = if viscous {
                // No-slip relative to the (possibly moving) wall.
                vg
            } else {
                // Slip: remove the wall-normal component of the relative
                // velocity. The wall normal is ∇η (or the face direction's
                // metric gradient), normalized.
                let m = block.metrics[p];
                let g = m.grad(dir);
                let n2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                let inv = if n2 > 0.0 { 1.0 / n2.sqrt() } else { 0.0 };
                let nh = [g[0] * inv, g[1] * inv, g[2] * inv];
                let u = [qi[1] / rho - vg[0], qi[2] / rho - vg[1], qi[3] / rho - vg[2]];
                let un = u[0] * nh[0] + u[1] * nh[1] + u[2] * nh[2];
                [vg[0] + u[0] - un * nh[0], vg[1] + u[1] - un * nh[1], vg[2] + u[2] - un * nh[2]]
            };
            block.q.set_node(p, conservatives(&[rho, vel[0], vel[1], vel[2], p_wall]));
        }
        BcKind::Symmetry => {
            // Mirror: copy interior with reflected normal velocity.
            let qi = *block.q.node(inner);
            let m = block.metrics[p];
            let g = m.grad(dir);
            let n2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
            let inv = if n2 > 0.0 { 1.0 / n2.sqrt() } else { 0.0 };
            let nh = [g[0] * inv, g[1] * inv, g[2] * inv];
            let rho = qi[0];
            let u = [qi[1] / rho, qi[2] / rho, qi[3] / rho];
            let un = u[0] * nh[0] + u[1] * nh[1] + u[2] * nh[2];
            let vel = [u[0] - un * nh[0], u[1] - un * nh[1], u[2] - un * nh[2]];
            block.q.set_node(p, conservatives(&[rho, vel[0], vel[1], vel[2], pressure(&qi)]));
        }
        // Overset fringes are set by the connectivity phase; periodic wrap is
        // handled by the halo exchange.
        BcKind::OversetOuter | BcKind::PeriodicI => {}
    }
}

/// One-dimensional characteristic (Riemann-invariant) far-field state at a
/// boundary node: `R⁺ = uₙ + 2c/(γ-1)` is taken from the upstream side of
/// the outgoing characteristic and `R⁻ = uₙ - 2c/(γ-1)` from the incoming
/// one; entropy and tangential velocity come from the upwind side selected
/// by the sign of the boundary-normal velocity. Supersonic inflow reduces
/// to freestream Dirichlet, supersonic outflow to pure extrapolation — far
/// less reflective than the naive freestream clamp.
fn characteristic_farfield(
    block: &Block,
    fc: &FlowConditions,
    p: Ijk,
    inner: Ijk,
    dir: usize,
) -> [f64; NVAR] {
    // Outward unit normal: the face-direction metric gradient, oriented
    // away from the interior.
    let m = block.metrics[p];
    let g = m.grad(dir);
    let n2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
    if n2 <= 0.0 {
        return fc.freestream();
    }
    let inv = 1.0 / n2.sqrt();
    let mut nh = [g[0] * inv, g[1] * inv, g[2] * inv];
    // grad points toward increasing index; flip when the interior lies on
    // the increasing side (min face).
    if inner.get(dir) > p.get(dir) {
        nh = [-nh[0], -nh[1], -nh[2]];
    }

    let qi = *block.q.node(inner);
    let rho_i = qi[0];
    let ui = [qi[1] / rho_i, qi[2] / rho_i, qi[3] / rho_i];
    let pi = pressure(&qi).max(1e-10);
    let ci = (crate::conditions::GAMMA * pi / rho_i).sqrt();

    let qf = fc.freestream();
    let uf = [qf[1] / qf[0], qf[2] / qf[0], qf[3] / qf[0]];
    let pf = pressure(&qf);
    let cf = (crate::conditions::GAMMA * pf / qf[0]).sqrt();

    let un_i = ui[0] * nh[0] + ui[1] * nh[1] + ui[2] * nh[2];
    let un_f = uf[0] * nh[0] + uf[1] * nh[1] + uf[2] * nh[2];
    let gm1 = crate::conditions::GAMMA - 1.0;

    // Supersonic cases: one-sided.
    if un_f <= -cf {
        return fc.freestream(); // supersonic inflow
    }
    if un_i >= ci {
        return qi; // supersonic outflow
    }
    // Subsonic: mix invariants.
    let r_plus = un_i + 2.0 * ci / gm1; // outgoing (from interior)
    let r_minus = un_f - 2.0 * cf / gm1; // incoming (from freestream)
    let un_b = 0.5 * (r_plus + r_minus);
    let c_b = 0.25 * gm1 * (r_plus - r_minus);
    // Upwind side for entropy and tangential velocity.
    let (s_ref, ut_ref, un_ref) = if un_b >= 0.0 {
        (pi / rho_i.powf(crate::conditions::GAMMA), ui, un_i)
    } else {
        (pf / qf[0].powf(crate::conditions::GAMMA), uf, un_f)
    };
    let rho_b = (c_b * c_b / (crate::conditions::GAMMA * s_ref)).powf(1.0 / gm1);
    let p_b = rho_b * c_b * c_b / crate::conditions::GAMMA;
    let vel = [
        ut_ref[0] + (un_b - un_ref) * nh[0],
        ut_ref[1] + (un_b - un_ref) * nh[1],
        ut_ref[2] + (un_b - un_ref) * nh[2],
    ];
    conservatives(&[rho_b.max(1e-8), vel[0], vel[1], vel[2], p_b.max(1e-10)])
}

/// Wall-surface state of a face: `(nu, nv, coords, pressures)` over the
/// face's owned nodes.
pub type WallSurface = (usize, usize, Vec<[f64; 3]>, Vec<f64>);

/// Extract the wall-surface state of a face for aerodynamic load
/// integration.
pub fn wall_surface(block: &Block, face: usize) -> Option<WallSurface> {
    match block.face_bc[face] {
        Some(BcKind::Wall { .. }) => {}
        _ => return None,
    }
    let layer = block.layer_box(face, 1, false);
    let d = layer.dims();
    let dims = [d.ni, d.nj, d.nk];
    let dir = face / 2;
    let (u_dir, v_dir) = match dir {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let (nu, nv) = (dims[u_dir], dims[v_dir]);
    let mut coords = Vec::with_capacity(nu * nv);
    let mut press = Vec::with_capacity(nu * nv);
    for v in 0..nv {
        for u in 0..nu {
            let mut p = layer.lo;
            p.set(u_dir, layer.lo.get(u_dir) + u);
            p.set(v_dir, layer.lo.get(v_dir) + v);
            coords.push(block.coords[p]);
            press.push(pressure(block.q.node(p)));
        }
    }
    Some((nu, nv, coords, press))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use overset_grid::curvilinear::{BoundaryPatch, CurvilinearGrid, Face, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;

    fn wall_block(viscous: bool) -> Block {
        let d = Dims::new(6, 6, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.2, p.j as f64 * 0.2, 0.0]);
        let mut g = CurvilinearGrid::new("w", coords, GridKind::NearBody);
        g.patches = vec![
            BoundaryPatch { face: Face::JMin, kind: BcKind::Wall { viscous } },
            BoundaryPatch { face: Face::JMax, kind: BcKind::Farfield },
        ];
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    #[test]
    fn noslip_wall_zeroes_velocity() {
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let mut b = wall_block(true);
        apply_bcs(&mut b, &fc);
        let ow = b.owned_local();
        for i in ow.lo.i..ow.hi.i {
            let q = b.q.node(Ijk::new(i, ow.lo.j, 0));
            assert_eq!(q[1], 0.0);
            assert_eq!(q[2], 0.0);
            // Density and pressure from the interior (freestream here).
            assert!((q[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn slip_wall_removes_normal_velocity_only() {
        let fc = FlowConditions::new(0.8, 30.0, 0.0);
        let mut b = wall_block(false);
        b.q.fill_uniform(fc.freestream());
        apply_bcs(&mut b, &fc);
        let ow = b.owned_local();
        let q = b.q.node(Ijk::new(3, ow.lo.j, 0));
        // Wall normal is +y here: v = 0, u preserved.
        assert!(q[2].abs() < 1e-12, "v = {}", q[2]);
        let u_free = 0.8 * 30.0f64.to_radians().cos();
        assert!((q[1] - u_free).abs() < 1e-12, "u = {} vs {}", q[1], u_free);
    }

    #[test]
    fn moving_wall_takes_grid_velocity() {
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let mut b = wall_block(true);
        for v in b.grid_vel.as_mut_slice() {
            *v = [0.3, 0.1, 0.0];
        }
        apply_bcs(&mut b, &fc);
        let ow = b.owned_local();
        let q = b.q.node(Ijk::new(2, ow.lo.j, 0));
        assert!((q[1] / q[0] - 0.3).abs() < 1e-12);
        assert!((q[2] / q[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn farfield_resets_to_freestream() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = wall_block(false);
        // Perturb the farfield boundary layer.
        let ow = b.owned_local();
        let top = Ijk::new(3, ow.hi.j - 1, 0);
        b.q.set_node(top, [2.0, 0.0, 0.0, 0.0, 5.0]);
        apply_bcs(&mut b, &fc);
        assert_eq!(*b.q.node(top), fc.freestream());
    }

    #[test]
    fn characteristic_farfield_supersonic_cases() {
        // Supersonic inflow face (flow entering): full freestream.
        let fc = FlowConditions::new(1.6, 0.0, 0.0);
        let mut b = wall_block(false); // JMax is Farfield; flow along +x
        b.q.fill_uniform(fc.freestream());
        // Perturb interior; the farfield J-boundary is side-on (normal ±y,
        // un_f = 0: subsonic normal component) — check it stays bounded and
        // physical rather than reflecting the perturbation.
        let ow = b.owned_local();
        let inner = Ijk::new(3, ow.hi.j - 2, 0);
        let mut q = *b.q.node(inner);
        q[4] *= 1.1;
        b.q.set_node(inner, q);
        apply_bcs(&mut b, &fc);
        let qb = b.q.node(Ijk::new(3, ow.hi.j - 1, 0));
        assert!(qb[0] > 0.0 && pressure(qb) > 0.0);
        // Boundary state lies between interior and freestream.
        let pf = pressure(&fc.freestream());
        let pi = pressure(&q);
        let pb = pressure(qb);
        // The invariant mixing is non-reflective: an interior pressure
        // spike produces boundary OUTFLOW and locally *lowers* the boundary
        // pressure (the wave leaves). Require a physical value in the
        // vicinity of the freestream rather than interval containment.
        assert!(pb > 0.5 * pf && pb < 1.5 * pf, "pb {pb} vs pf {pf} pi {pi}");
    }

    #[test]
    fn characteristic_farfield_is_exact_at_freestream() {
        let fc = FlowConditions::new(0.8, 5.0, 0.0);
        let mut b = wall_block(false);
        b.q.fill_uniform(fc.freestream());
        apply_bcs(&mut b, &fc);
        let ow = b.owned_local();
        let qb = b.q.node(Ijk::new(2, ow.hi.j - 1, 0));
        let qf = fc.freestream();
        for v in 0..NVAR {
            assert!((qb[v] - qf[v]).abs() < 1e-12, "var {v}: {} vs {}", qb[v], qf[v]);
        }
    }

    #[test]
    fn wall_surface_extraction() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = wall_block(true);
        apply_bcs(&mut b, &fc);
        let (nu, nv, coords, press) = wall_surface(&b, 2).expect("JMin is a wall");
        assert_eq!(nu, 6);
        assert_eq!(nv, 1);
        assert_eq!(coords.len(), 6);
        // All on y = 0.
        for c in &coords {
            assert_eq!(c[1], 0.0);
        }
        for p in &press {
            assert!((p - 1.0 / crate::conditions::GAMMA).abs() < 1e-12);
        }
        assert!(wall_surface(&b, 3).is_none());
    }
}
