//! Lane-batched compute kernels for the implicit line sweeps.
//!
//! Every kernel here processes up to [`W`] *independent* tridiagonal
//! problems side by side — one SIMD lane per implicit line — and performs,
//! on each lane, exactly the operation sequence of the scalar code in
//! [`crate::tridiag`] / [`crate::adi`]. Only vertical (per-lane) `add`,
//! `sub`, `mul`, `div` are used: no horizontal reductions, no FMA. AVX2
//! executes those correctly rounded per lane, so the batched results are
//! **bit-identical** to the scalar ones; the `Isa::Scalar` path runs the
//! same batched structure with `[f64; 4]` lanes, making `--no-simd` a
//! one-code-path ablation.
//!
//! Two families live here:
//!
//! * the *sweep group* kernels ([`sweep_forward_group`] and friends) that
//!   [`crate::adi::implicit_sweeps`] drives over lane-transposed scratch —
//!   including the Sherman–Morrison periodic variant and the pipelined
//!   chunk carries;
//! * lane-interleaved ports of the [`crate::tridiag`] API
//!   ([`solve_lanes`], [`solve_periodic_lanes`], [`forward_segment_lanes`],
//!   [`backward_segment_lanes`]) used by the equality proptests and the
//!   micro benchmarks.
//!
//! Layouts. Sweep kernels: row `c`, variable `v`, lane `l` of a value array
//! at `(c * NVAR + v) * W + l`; eigenvalue rows are shifted by one
//! (`r = c + 1`) so rows `-1` and `n` hold the halo frames. Lane-interleaved
//! tridiag arrays: element `(i, l)` at `i * W + l`.

use crate::adi::BETA;
use crate::lanes::{Lane4, W};
use overset_grid::field::NVAR;

/// Lane-interleaved footprint of one node row (`NVAR` variables × `W` lanes).
pub const NVW: usize = NVAR * W;

/// Define a lane-batched kernel: a generic body monomorphized over
/// [`Lane4`], dispatched at runtime to scalar lanes or to an
/// `#[target_feature(enable = "avx2")]` instantiation. Exported so sibling
/// crates (connectivity) define their kernels with the same dispatch.
#[macro_export]
macro_rules! lane_kernel {
    (
        $(#[$meta:meta])*
        pub fn $name:ident<L>($($arg:ident : $ty:ty),* $(,)?) $(-> $ret:ty)? $body:block
    ) => {
        $(#[$meta])*
        #[allow(clippy::too_many_arguments)]
        pub fn $name(isa: $crate::Isa, $($arg: $ty),*) $(-> $ret)? {
            #[inline(always)]
            #[allow(clippy::too_many_arguments)]
            fn inner<L: $crate::Lane4>($($arg: $ty),*) $(-> $ret)? $body
            match isa {
                $crate::Isa::Scalar => inner::<$crate::ScalarLanes>($($arg),*),
                #[cfg(target_arch = "x86_64")]
                $crate::Isa::Avx2 => {
                    #[target_feature(enable = "avx2")]
                    #[allow(clippy::too_many_arguments)]
                    unsafe fn inner_avx2($($arg: $ty),*) $(-> $ret)? {
                        inner::<$crate::AvxLanes>($($arg),*)
                    }
                    // SAFETY: `Isa::Avx2` is only produced by
                    // `lanes::select_isa` after runtime AVX2 detection.
                    unsafe { inner_avx2($($arg),*) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                $crate::Isa::Avx2 => inner::<$crate::ScalarLanes>($($arg),*),
            }
        }
    };
}

/// SoA field offsets of the cached characteristic frames (`fr` arrays,
/// layout `fr[field * mpad + m]` for node index `m`): metric normal `k`,
/// tangents `t1`/`t2`, density, velocity, sound speed, the five signed
/// eigenvalues, and the spectral radius.
pub const FR_K: usize = 0;
pub const FR_T1: usize = 3;
pub const FR_T2: usize = 6;
pub const FR_RHO: usize = 9;
pub const FR_U: usize = 10;
pub const FR_C: usize = 13;
pub const FR_LAM: usize = 14;
pub const FR_SIG: usize = 19;
/// Number of SoA frame fields.
pub const FR_FIELDS: usize = 20;

/// SoA field offsets of the gathered per-node frame inputs (`gin` arrays):
/// conserved state, metric gradient row of the sweep direction, Jacobian,
/// grid velocity.
pub const IN_Q: usize = 0;
pub const IN_G: usize = 5;
pub const IN_JAC: usize = 8;
pub const IN_VG: usize = 9;
/// Number of SoA gather fields.
pub const IN_FIELDS: usize = 12;

/// One Thomas forward-elimination step on four lanes:
/// `bp = b - a·cp₋`, `cp = c/bp`, `dp = (d - a·dp₋)/bp` — the exact scalar
/// operation order of [`crate::tridiag::solve`]'s inner loop.
#[inline(always)]
fn thomas_step<L: Lane4>(a: L, b: L, c: L, d: L, prev_cp: L, prev_dp: L) -> (L, L) {
    let bp = b.sub(a.mul(prev_cp));
    (c.div(bp), d.sub(a.mul(prev_dp)).div(bp))
}

/// First Thomas row (no upstream coupling): `cp = c/b`, `dp = d/b`.
#[inline(always)]
fn thomas_first<L: Lane4>(b: L, c: L, d: L) -> (L, L) {
    (c.div(b), d.div(b))
}

/// Sweep-row implicit coefficients for one characteristic variable, on four
/// lanes — the vector form of [`crate::adi`]'s `row_abc` (identity rows are
/// blended to `(0, 1, 0)` afterwards by the caller).
#[inline(always)]
fn coeffs<L: Lane4>(dt: L, tbd: L, lam_m: L, sig_m: L, sig_0: L, lam_p: L, sig_p: L) -> (L, L, L) {
    let beta = L::splat(BETA);
    let a = dt.mul(L::splat(-0.5).mul(lam_m).sub(beta.mul(sig_m)));
    let b = L::splat(1.0).add(tbd.mul(sig_0));
    let cc = dt.mul(L::splat(0.5).mul(lam_p).sub(beta.mul(sig_p)));
    (a, b, cc)
}

lane_kernel! {
    /// Pointwise characteristic frames + forward transform, four nodes per
    /// lane group: for each of `mpad` nodes (padded to a multiple of [`W`])
    /// compute the local characteristic frame from the gathered inputs
    /// `gin` ([`IN_Q`]..) and transform the conservative RHS `dw` (five
    /// fields × `mpad`, in place) to characteristic variables. The frame is
    /// written to the SoA `fr` ([`FR_K`]..). Each lane performs exactly the
    /// operation sequence of the scalar `char_frame` + `to_char` pair in
    /// [`crate::adi`], so results are bit-identical across lanes and ISAs.
    pub fn frames_forward_lanes<L>(
        mpad: usize,
        gin: &[f64],
        dw: &mut [f64],
        fr: &mut [f64],
    ) {
        let zero = L::splat(0.0);
        let one = L::splat(1.0);
        let half = L::splat(0.5);
        let gm1 = L::splat(crate::conditions::GAMMA - 1.0);
        let gam = L::splat(crate::conditions::GAMMA);
        let mut m = 0;
        while m < mpad {
            let q0 = L::load(&gin[IN_Q * mpad + m..]);
            let q1 = L::load(&gin[(IN_Q + 1) * mpad + m..]);
            let q2 = L::load(&gin[(IN_Q + 2) * mpad + m..]);
            let q3 = L::load(&gin[(IN_Q + 3) * mpad + m..]);
            let q4 = L::load(&gin[(IN_Q + 4) * mpad + m..]);
            let g0 = L::load(&gin[IN_G * mpad + m..]);
            let g1 = L::load(&gin[(IN_G + 1) * mpad + m..]);
            let g2 = L::load(&gin[(IN_G + 2) * mpad + m..]);
            let jac = L::load(&gin[IN_JAC * mpad + m..]);
            let vg0 = L::load(&gin[IN_VG * mpad + m..]);
            let vg1 = L::load(&gin[(IN_VG + 1) * mpad + m..]);
            let vg2 = L::load(&gin[(IN_VG + 2) * mpad + m..]);

            // char_frame, lanewise in the scalar operation order.
            let s0 = g0.mul(jac);
            let s1 = g1.mul(jac);
            let s2 = g2.mul(jac);
            let ssq = s0.mul(s0).add(s1.mul(s1)).add(s2.mul(s2)).sqrt();
            let floor = L::splat(1e-300);
            let s_norm = L::select(ssq.lt(floor), floor, ssq);
            let k0 = s0.div(s_norm);
            let k1 = s1.div(s_norm);
            let k2 = s2.div(s_norm);
            // Deterministic tangent basis: branch -> per-lane select of the
            // reference axis, then the identical cross products.
            let tangent_x = k0.abs().lt(L::splat(0.9));
            let ax = L::select(tangent_x, one, zero);
            let ay = L::select(tangent_x, zero, one);
            let az = zero;
            let mut t10 = k1.mul(az).sub(k2.mul(ay));
            let mut t11 = k2.mul(ax).sub(k0.mul(az));
            let mut t12 = k0.mul(ay).sub(k1.mul(ax));
            let n1 = t10.mul(t10).add(t11.mul(t11)).add(t12.mul(t12)).sqrt();
            t10 = t10.div(n1);
            t11 = t11.div(n1);
            t12 = t12.div(n1);
            let t20 = k1.mul(t12).sub(k2.mul(t11));
            let t21 = k2.mul(t10).sub(k0.mul(t12));
            let t22 = k0.mul(t11).sub(k1.mul(t10));
            let rho = q0;
            let u0 = q1.div(rho);
            let u1 = q2.div(rho);
            let u2 = q3.div(rho);
            // sound_speed(q) in the scalar operation order.
            let inv_rho = one.div(q0);
            let press = gm1.mul(q4.sub(
                half.mul(inv_rho).mul(q1.mul(q1).add(q2.mul(q2)).add(q3.mul(q3))),
            ));
            let carg = gam.mul(press).div(q0);
            let cfloor = L::splat(1e-12);
            let c = L::select(carg.lt(cfloor), cfloor, carg).sqrt();
            let u_rel_n = s0
                .mul(u0.sub(vg0))
                .add(s1.mul(u1.sub(vg1)))
                .add(s2.mul(u2.sub(vg2)));
            let u_tilde = u_rel_n.div(jac);
            let c_tilde = c.mul(s_norm).div(jac);
            let sigma = u_tilde.abs().add(c_tilde);

            k0.store(&mut fr[FR_K * mpad + m..]);
            k1.store(&mut fr[(FR_K + 1) * mpad + m..]);
            k2.store(&mut fr[(FR_K + 2) * mpad + m..]);
            t10.store(&mut fr[FR_T1 * mpad + m..]);
            t11.store(&mut fr[(FR_T1 + 1) * mpad + m..]);
            t12.store(&mut fr[(FR_T1 + 2) * mpad + m..]);
            t20.store(&mut fr[FR_T2 * mpad + m..]);
            t21.store(&mut fr[(FR_T2 + 1) * mpad + m..]);
            t22.store(&mut fr[(FR_T2 + 2) * mpad + m..]);
            rho.store(&mut fr[FR_RHO * mpad + m..]);
            u0.store(&mut fr[FR_U * mpad + m..]);
            u1.store(&mut fr[(FR_U + 1) * mpad + m..]);
            u2.store(&mut fr[(FR_U + 2) * mpad + m..]);
            c.store(&mut fr[FR_C * mpad + m..]);
            u_tilde.store(&mut fr[FR_LAM * mpad + m..]);
            u_tilde.store(&mut fr[(FR_LAM + 1) * mpad + m..]);
            u_tilde.store(&mut fr[(FR_LAM + 2) * mpad + m..]);
            u_tilde.add(c_tilde).store(&mut fr[(FR_LAM + 3) * mpad + m..]);
            u_tilde.sub(c_tilde).store(&mut fr[(FR_LAM + 4) * mpad + m..]);
            sigma.store(&mut fr[FR_SIG * mpad + m..]);

            // to_char, lanewise in the scalar operation order.
            let w0 = L::load(&dw[m..]);
            let w1 = L::load(&dw[mpad + m..]);
            let w2 = L::load(&dw[2 * mpad + m..]);
            let w3 = L::load(&dw[3 * mpad + m..]);
            let w4 = L::load(&dw[4 * mpad + m..]);
            let d_rho = w0;
            let du0 = w1.sub(u0.mul(d_rho)).div(rho);
            let du1 = w2.sub(u1.mul(d_rho)).div(rho);
            let du2 = w3.sub(u2.mul(d_rho)).div(rho);
            let ke = half.mul(u0.mul(u0).add(u1.mul(u1)).add(u2.mul(u2)));
            let dp = gm1.mul(
                w4.add(ke.mul(d_rho)).sub(u0.mul(w1)).sub(u1.mul(w2)).sub(u2.mul(w3)),
            );
            let un = k0.mul(du0).add(k1.mul(du1)).add(k2.mul(du2));
            let c2 = c.mul(c);
            let dp_rc = dp.div(rho.mul(c));
            d_rho.sub(dp.div(c2)).store(&mut dw[m..]);
            t10.mul(du0).add(t11.mul(du1)).add(t12.mul(du2)).store(&mut dw[mpad + m..]);
            t20.mul(du0).add(t21.mul(du1)).add(t22.mul(du2)).store(&mut dw[2 * mpad + m..]);
            un.add(dp_rc).store(&mut dw[3 * mpad + m..]);
            un.sub(dp_rc).store(&mut dw[4 * mpad + m..]);
            m += W;
        }
    }
}

lane_kernel! {
    /// Pointwise inverse characteristic transform (`from_char`), four nodes
    /// per lane group: `dw` enters holding the characteristic solution
    /// (five fields × `mpad`) and leaves holding conservative increments,
    /// using the frame SoA written by [`frames_forward_lanes`]. Scalar
    /// operation order per lane, so results are bit-identical across ISAs.
    pub fn from_char_lanes<L>(
        mpad: usize,
        fr: &[f64],
        dw: &mut [f64],
    ) {
        let half = L::splat(0.5);
        let gm1 = L::splat(crate::conditions::GAMMA - 1.0);
        let mut m = 0;
        while m < mpad {
            let k0 = L::load(&fr[FR_K * mpad + m..]);
            let k1 = L::load(&fr[(FR_K + 1) * mpad + m..]);
            let k2 = L::load(&fr[(FR_K + 2) * mpad + m..]);
            let t10 = L::load(&fr[FR_T1 * mpad + m..]);
            let t11 = L::load(&fr[(FR_T1 + 1) * mpad + m..]);
            let t12 = L::load(&fr[(FR_T1 + 2) * mpad + m..]);
            let t20 = L::load(&fr[FR_T2 * mpad + m..]);
            let t21 = L::load(&fr[(FR_T2 + 1) * mpad + m..]);
            let t22 = L::load(&fr[(FR_T2 + 2) * mpad + m..]);
            let rho = L::load(&fr[FR_RHO * mpad + m..]);
            let u0 = L::load(&fr[FR_U * mpad + m..]);
            let u1 = L::load(&fr[(FR_U + 1) * mpad + m..]);
            let u2 = L::load(&fr[(FR_U + 2) * mpad + m..]);
            let c = L::load(&fr[FR_C * mpad + m..]);
            let w0 = L::load(&dw[m..]);
            let w1 = L::load(&dw[mpad + m..]);
            let w2 = L::load(&dw[2 * mpad + m..]);
            let w3 = L::load(&dw[3 * mpad + m..]);
            let w4 = L::load(&dw[4 * mpad + m..]);

            let dp = half.mul(rho).mul(c).mul(w3.sub(w4));
            let un = half.mul(w3.add(w4));
            let d_rho = w0.add(dp.div(c.mul(c)));
            let du0 = t10.mul(w1).add(t20.mul(w2)).add(k0.mul(un));
            let du1 = t11.mul(w1).add(t21.mul(w2)).add(k1.mul(un));
            let du2 = t12.mul(w1).add(t22.mul(w2)).add(k2.mul(un));
            let ke = half.mul(u0.mul(u0).add(u1.mul(u1)).add(u2.mul(u2)));
            d_rho.store(&mut dw[m..]);
            u0.mul(d_rho).add(rho.mul(du0)).store(&mut dw[mpad + m..]);
            u1.mul(d_rho).add(rho.mul(du1)).store(&mut dw[2 * mpad + m..]);
            u2.mul(d_rho).add(rho.mul(du2)).store(&mut dw[3 * mpad + m..]);
            ke.mul(d_rho)
                .add(rho.mul(u0.mul(du0).add(u1.mul(du1)).add(u2.mul(du2))))
                .add(dp.div(gm1))
                .store(&mut dw[4 * mpad + m..]);
            m += W;
        }
    }
}

lane_kernel! {
    /// Forward-eliminate one lane group of an *open* implicit sweep: up to
    /// [`W`] lines over `n` nodes, `NVAR` independent systems per line.
    ///
    /// `lam`/`sig` hold the eigenvalues and spectral radii in shifted rows
    /// (`r = c + 1`, rows `0` and `n + 1` are the halo frames); `idm` holds
    /// the per-node identity masks (sign bit set on blanked rows). `d` is
    /// the characteristic RHS in/out; `cp` receives the normalized
    /// super-diagonals. `carry_cp`/`carry_dp` enter holding the upstream
    /// pipeline carry when `have_carry` and leave holding this group's
    /// last-row carry.
    pub fn sweep_forward_group<L>(
        dt: f64,
        n: usize,
        lam: &[f64],
        sig: &[f64],
        idm: &[f64],
        d: &mut [f64],
        cp: &mut [f64],
        carry_cp: &mut [f64; NVW],
        carry_dp: &mut [f64; NVW],
        have_carry: bool,
    ) {
        let zero = L::splat(0.0);
        let one = L::splat(1.0);
        let dtv = L::splat(dt);
        // 2.0 * BETA * dt with scalar left-associated rounding.
        let tbd = L::splat(2.0 * BETA * dt);
        let mut pcp: [L; NVAR] = [zero; NVAR];
        let mut pdp: [L; NVAR] = [zero; NVAR];
        for v in 0..NVAR {
            pcp[v] = L::load(&carry_cp[v * W..]);
            pdp[v] = L::load(&carry_dp[v * W..]);
        }
        for c in 0..n {
            let first = c == 0 && !have_carry;
            let sig_m = L::load(&sig[c * W..]);
            let sig_0 = L::load(&sig[(c + 1) * W..]);
            let sig_p = L::load(&sig[(c + 2) * W..]);
            let ident = L::load(&idm[c * W..]);
            for v in 0..NVAR {
                let lam_m = L::load(&lam[(c * NVAR + v) * W..]);
                let lam_p = L::load(&lam[((c + 2) * NVAR + v) * W..]);
                let (a, b, cc) = coeffs(dtv, tbd, lam_m, sig_m, sig_0, lam_p, sig_p);
                let a = L::select(ident, zero, a);
                let b = L::select(ident, one, b);
                let cc = L::select(ident, zero, cc);
                let dv = L::select(ident, zero, L::load(&d[(c * NVAR + v) * W..]));
                let (cpv, dnew) = if first {
                    thomas_first(b, cc, dv)
                } else {
                    thomas_step(a, b, cc, dv, pcp[v], pdp[v])
                };
                cpv.store(&mut cp[(c * NVAR + v) * W..]);
                dnew.store(&mut d[(c * NVAR + v) * W..]);
                pcp[v] = cpv;
                pdp[v] = dnew;
            }
        }
        for v in 0..NVAR {
            pcp[v].store(&mut carry_cp[v * W..]);
            pdp[v].store(&mut carry_dp[v * W..]);
        }
    }
}

lane_kernel! {
    /// Back-substitute one lane group of an open sweep. `seed` is the
    /// downstream rank's first unknowns (lane-interleaved), `None` when this
    /// group owns the end of its lines.
    pub fn sweep_backward_group<L>(
        n: usize,
        cp: &[f64],
        d: &mut [f64],
        seed: Option<&[f64; NVW]>,
    ) {
        let mut next: [L; NVAR] = [L::splat(0.0); NVAR];
        for v in 0..NVAR {
            let row = ((n - 1) * NVAR + v) * W;
            let mut x = L::load(&d[row..]);
            if let Some(xd) = seed {
                x = x.sub(L::load(&cp[row..]).mul(L::load(&xd[v * W..])));
                x.store(&mut d[row..]);
            }
            next[v] = x;
        }
        for c in (0..n.saturating_sub(1)).rev() {
            for (v, nx) in next.iter_mut().enumerate() {
                let row = (c * NVAR + v) * W;
                let x = L::load(&d[row..]).sub(L::load(&cp[row..]).mul(*nx));
                x.store(&mut d[row..]);
                *nx = x;
            }
        }
    }
}

lane_kernel! {
    /// Forward-eliminate one lane group of the *cyclic* (Sherman–Morrison)
    /// `i`-sweep: two right-hand sides per system (`y` physical, `z`
    /// rank-one correction column) plus the per-line corner parameters
    /// `alpha`/`gamma` (set at the first row of the chain, consumed at the
    /// last). Flags mirror the scalar code: `is_first`/`is_last` say whether
    /// this rank owns the chain ends.
    pub fn periodic_forward_group<L>(
        dt: f64,
        n: usize,
        lam: &[f64],
        sig: &[f64],
        idm: &[f64],
        y: &mut [f64],
        z: &mut [f64],
        cp: &mut [f64],
        alpha: &mut [f64; NVW],
        gamma: &mut [f64; NVW],
        carry_cp: &mut [f64; NVW],
        carry_y: &mut [f64; NVW],
        carry_z: &mut [f64; NVW],
        have_carry: bool,
        is_first: bool,
        is_last: bool,
    ) {
        let zero = L::splat(0.0);
        let one = L::splat(1.0);
        let dtv = L::splat(dt);
        let tbd = L::splat(2.0 * BETA * dt);
        let mut pcp: [L; NVAR] = [zero; NVAR];
        let mut py: [L; NVAR] = [zero; NVAR];
        let mut pz: [L; NVAR] = [zero; NVAR];
        let mut al: [L; NVAR] = [zero; NVAR];
        let mut ga: [L; NVAR] = [zero; NVAR];
        for v in 0..NVAR {
            pcp[v] = L::load(&carry_cp[v * W..]);
            py[v] = L::load(&carry_y[v * W..]);
            pz[v] = L::load(&carry_z[v * W..]);
            al[v] = L::load(&alpha[v * W..]);
            ga[v] = L::load(&gamma[v * W..]);
        }
        for c in 0..n {
            let first = c == 0 && !have_carry;
            let sig_m = L::load(&sig[c * W..]);
            let sig_0 = L::load(&sig[(c + 1) * W..]);
            let sig_p = L::load(&sig[(c + 2) * W..]);
            let ident = L::load(&idm[c * W..]);
            for v in 0..NVAR {
                let lam_m = L::load(&lam[(c * NVAR + v) * W..]);
                let lam_p = L::load(&lam[((c + 2) * NVAR + v) * W..]);
                let (a, b, cc) = coeffs(dtv, tbd, lam_m, sig_m, sig_0, lam_p, sig_p);
                let a = L::select(ident, zero, a);
                let mut b = L::select(ident, one, b);
                let cc = L::select(ident, zero, cc);
                let mut u_rhs = zero;
                if is_first && c == 0 {
                    // Corner entries of the cyclic system.
                    ga[v] = b.neg();
                    al[v] = a;
                    b = b.sub(ga[v]);
                    u_rhs = ga[v];
                }
                if is_last && c == n - 1 {
                    // Coupling of the last row back to node 0 through the
                    // duplicated seam node's frame.
                    let beta = cc;
                    b = b.sub(al[v].mul(beta).div(ga[v]));
                    u_rhs = beta;
                }
                let yv = L::select(ident, zero, L::load(&y[(c * NVAR + v) * W..]));
                let (bp, ynum, znum) = if first {
                    (b, yv, u_rhs)
                } else {
                    (
                        b.sub(a.mul(pcp[v])),
                        yv.sub(a.mul(py[v])),
                        u_rhs.sub(a.mul(pz[v])),
                    )
                };
                let cpv = cc.div(bp);
                let ynew = ynum.div(bp);
                let znew = znum.div(bp);
                cpv.store(&mut cp[(c * NVAR + v) * W..]);
                ynew.store(&mut y[(c * NVAR + v) * W..]);
                znew.store(&mut z[(c * NVAR + v) * W..]);
                pcp[v] = cpv;
                py[v] = ynew;
                pz[v] = znew;
            }
        }
        for v in 0..NVAR {
            pcp[v].store(&mut carry_cp[v * W..]);
            py[v].store(&mut carry_y[v * W..]);
            pz[v].store(&mut carry_z[v * W..]);
            al[v].store(&mut alpha[v * W..]);
            ga[v].store(&mut gamma[v * W..]);
        }
    }
}

lane_kernel! {
    /// Back-substitute one lane group of the cyclic sweep: both the
    /// physical RHS `y` and the correction column `z`. `seed` holds the
    /// downstream rank's first unknowns for both (`y_next`, `z_next`).
    pub fn periodic_backward_group<L>(
        n: usize,
        cp: &[f64],
        y: &mut [f64],
        z: &mut [f64],
        seed: Option<(&[f64; NVW], &[f64; NVW])>,
    ) {
        let mut ny: [L; NVAR] = [L::splat(0.0); NVAR];
        let mut nz: [L; NVAR] = [L::splat(0.0); NVAR];
        for v in 0..NVAR {
            let row = ((n - 1) * NVAR + v) * W;
            let mut yv = L::load(&y[row..]);
            let mut zv = L::load(&z[row..]);
            if let Some((ynext, znext)) = seed {
                let cpv = L::load(&cp[row..]);
                yv = yv.sub(cpv.mul(L::load(&ynext[v * W..])));
                zv = zv.sub(cpv.mul(L::load(&znext[v * W..])));
                yv.store(&mut y[row..]);
                zv.store(&mut z[row..]);
            }
            ny[v] = yv;
            nz[v] = zv;
        }
        for c in (0..n.saturating_sub(1)).rev() {
            for v in 0..NVAR {
                let row = (c * NVAR + v) * W;
                let cpv = L::load(&cp[row..]);
                let yv = L::load(&y[row..]).sub(cpv.mul(ny[v]));
                let zv = L::load(&z[row..]).sub(cpv.mul(nz[v]));
                yv.store(&mut y[row..]);
                zv.store(&mut z[row..]);
                ny[v] = yv;
                nz[v] = zv;
            }
        }
    }
}

lane_kernel! {
    /// Apply the Sherman–Morrison correction `y ← y − fact·z` to one lane
    /// group (fact is constant per line and variable).
    pub fn periodic_correct_group<L>(
        n: usize,
        fact: &[f64; NVW],
        y: &mut [f64],
        z: &[f64],
    ) {
        let mut fv: [L; NVAR] = [L::splat(0.0); NVAR];
        for v in 0..NVAR {
            fv[v] = L::load(&fact[v * W..]);
        }
        for c in 0..n {
            for (v, &f) in fv.iter().enumerate() {
                let row = (c * NVAR + v) * W;
                let yv = L::load(&y[row..]).sub(f.mul(L::load(&z[row..])));
                yv.store(&mut y[row..]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-interleaved ports of the `tridiag` API (proptests + micro benches).
// ---------------------------------------------------------------------------

/// Open-line Thomas solve on the lane-interleaved arrays (shared core of
/// [`solve_lanes`] and [`solve_periodic_lanes`]).
#[inline(always)]
fn solve_core<L: Lane4>(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64], cp: &mut [f64]) {
    let n = d.len() / W;
    let (bp0, c0, d0) = (L::load(b), L::load(c), L::load(d));
    let (cp0, dp0) = thomas_first(bp0, c0, d0);
    cp0.store(cp);
    dp0.store(d);
    let mut prev_cp = cp0;
    let mut prev_dp = dp0;
    for i in 1..n {
        let (av, bv, cv, dv) = (
            L::load(&a[i * W..]),
            L::load(&b[i * W..]),
            L::load(&c[i * W..]),
            L::load(&d[i * W..]),
        );
        let (cpv, dpv) = thomas_step(av, bv, cv, dv, prev_cp, prev_dp);
        cpv.store(&mut cp[i * W..]);
        dpv.store(&mut d[i * W..]);
        prev_cp = cpv;
        prev_dp = dpv;
    }
    let mut next = prev_dp;
    for i in (0..n - 1).rev() {
        let x = L::load(&d[i * W..]).sub(L::load(&cp[i * W..]).mul(next));
        x.store(&mut d[i * W..]);
        next = x;
    }
}

lane_kernel! {
    /// [`crate::tridiag::solve`] on [`W`] independent systems at once.
    /// All arrays are lane-interleaved with `n` rows (`d.len() == n * W`);
    /// `cp` is caller-provided scratch of the same length.
    pub fn solve_lanes<L>(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64], cp: &mut [f64]) {
        solve_core::<L>(a, b, c, d, cp);
    }
}

lane_kernel! {
    /// [`crate::tridiag::solve_periodic`] on [`W`] independent systems:
    /// Sherman–Morrison with the same scalar operation order. `bb`, `z`,
    /// and `cp` are caller-provided scratch (`n * W` each).
    pub fn solve_periodic_lanes<L>(
        a: &[f64],
        b: &[f64],
        c: &[f64],
        d: &mut [f64],
        bb: &mut [f64],
        z: &mut [f64],
        cp: &mut [f64],
    ) {
        let n = d.len() / W;
        let alpha = L::load(a);
        let beta = L::load(&c[(n - 1) * W..]);
        let gamma = L::load(b).neg();

        // Modified diagonal.
        bb.copy_from_slice(b);
        L::load(b).sub(gamma).store(bb);
        let blast = L::load(&b[(n - 1) * W..]).sub(alpha.mul(beta).div(gamma));
        blast.store(&mut bb[(n - 1) * W..]);

        // Solve A' y = d.
        solve_core::<L>(a, bb, c, d, cp);

        // Solve A' z = u, u = (gamma, 0, ..., 0, beta).
        z.fill(0.0);
        gamma.store(z);
        beta.store(&mut z[(n - 1) * W..]);
        solve_core::<L>(a, bb, c, z, cp);

        let a0 = L::load(a);
        let dlast = L::load(&d[(n - 1) * W..]);
        let zlast = L::load(&z[(n - 1) * W..]);
        let num = L::load(d).add(a0.mul(dlast).div(gamma));
        let den = L::splat(1.0).add(L::load(z)).add(a0.mul(zlast).div(gamma));
        let fact = num.div(den);
        for i in 0..n {
            let x = L::load(&d[i * W..]).sub(fact.mul(L::load(&z[i * W..])));
            x.store(&mut d[i * W..]);
        }
    }
}

lane_kernel! {
    /// [`crate::tridiag::forward_segment`] on [`W`] independent lines.
    /// `carry` holds the upstream `(cp, dp)` lanes, `None` at the start of
    /// the lines. Returns this segment's last-row `(cp, dp)` lanes.
    pub fn forward_segment_lanes<L>(
        a: &[f64],
        b: &[f64],
        c: &[f64],
        d: &mut [f64],
        cp_out: &mut [f64],
        carry: Option<(&[f64; W], &[f64; W])>,
    ) -> ([f64; W], [f64; W]) {
        let n = d.len() / W;
        let (cp0, dp0) = match carry {
            None => thomas_first(L::load(b), L::load(c), L::load(d)),
            Some((ccp, cdp)) => thomas_step(
                L::load(a),
                L::load(b),
                L::load(c),
                L::load(d),
                L::load(ccp),
                L::load(cdp),
            ),
        };
        cp0.store(cp_out);
        dp0.store(d);
        let mut prev_cp = cp0;
        let mut prev_dp = dp0;
        for i in 1..n {
            let (cpv, dpv) = thomas_step(
                L::load(&a[i * W..]),
                L::load(&b[i * W..]),
                L::load(&c[i * W..]),
                L::load(&d[i * W..]),
                prev_cp,
                prev_dp,
            );
            cpv.store(&mut cp_out[i * W..]);
            dpv.store(&mut d[i * W..]);
            prev_cp = cpv;
            prev_dp = dpv;
        }
        (prev_cp.to_array(), prev_dp.to_array())
    }
}

lane_kernel! {
    /// [`crate::tridiag::backward_segment`] on [`W`] independent lines.
    /// Returns the segment's first unknowns to pass upstream.
    pub fn backward_segment_lanes<L>(
        cp: &[f64],
        d: &mut [f64],
        x_downstream: Option<&[f64; W]>,
    ) -> [f64; W] {
        let n = d.len() / W;
        let mut next = L::load(&d[(n - 1) * W..]);
        if let Some(x) = x_downstream {
            next = next.sub(L::load(&cp[(n - 1) * W..]).mul(L::load(x)));
            next.store(&mut d[(n - 1) * W..]);
        }
        for i in (0..n - 1).rev() {
            let x = L::load(&d[i * W..]).sub(L::load(&cp[i * W..]).mul(next));
            x.store(&mut d[i * W..]);
            next = x;
        }
        next.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{select_isa, Isa};
    use crate::tridiag;

    /// Deterministic pseudo-random lane systems (diagonally dominant).
    fn lane_systems(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = vec![0.0; n * W];
        let mut c = vec![0.0; n * W];
        let mut b = vec![0.0; n * W];
        let mut d = vec![0.0; n * W];
        for i in 0..n * W {
            a[i] = -(0.2 + 0.3 * next().abs());
            c[i] = -(0.2 + 0.3 * next().abs());
            b[i] = 1.5 + a[i].abs() + c[i].abs() + next().abs();
            d[i] = 4.0 * next();
        }
        (a, b, c, d)
    }

    fn lane_of(src: &[f64], l: usize) -> Vec<f64> {
        src.chunks(W).map(|r| r[l]).collect()
    }

    #[test]
    fn solve_lanes_bit_matches_scalar_each_lane() {
        for isa in [Isa::Scalar, select_isa(true)] {
            let n = 33;
            let (a, b, c, d0) = lane_systems(n, 7);
            let mut d = d0.clone();
            let mut cp = vec![0.0; n * W];
            solve_lanes(isa, &a, &b, &c, &mut d, &mut cp);
            for l in 0..W {
                let (la, lb, lc) = (lane_of(&a, l), lane_of(&b, l), lane_of(&c, l));
                let mut ld = lane_of(&d0, l);
                tridiag::solve(&la, &lb, &lc, &mut ld);
                for i in 0..n {
                    assert_eq!(
                        d[i * W + l].to_bits(),
                        ld[i].to_bits(),
                        "isa {isa:?} lane {l} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_lanes_bit_matches_scalar_each_lane() {
        for isa in [Isa::Scalar, select_isa(true)] {
            let n = 17;
            let (a, b, c, d0) = lane_systems(n, 21);
            let mut d = d0.clone();
            let (mut bb, mut z, mut cp) = (vec![0.0; n * W], vec![0.0; n * W], vec![0.0; n * W]);
            solve_periodic_lanes(isa, &a, &b, &c, &mut d, &mut bb, &mut z, &mut cp);
            for l in 0..W {
                let (la, lb, lc) = (lane_of(&a, l), lane_of(&b, l), lane_of(&c, l));
                let mut ld = lane_of(&d0, l);
                tridiag::solve_periodic(&la, &lb, &lc, &mut ld);
                for i in 0..n {
                    assert_eq!(
                        d[i * W + l].to_bits(),
                        ld[i].to_bits(),
                        "isa {isa:?} lane {l} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_lanes_bit_match_scalar_segments() {
        for isa in [Isa::Scalar, select_isa(true)] {
            let n = 40;
            let (a, b, c, d0) = lane_systems(n, 3);
            let cuts = [0usize, 13, 27, n];
            // Batched pipeline.
            let mut d = d0.clone();
            let mut cp = vec![0.0; n * W];
            let mut carry: Option<([f64; W], [f64; W])> = None;
            for s in 0..3 {
                let r = cuts[s] * W..cuts[s + 1] * W;
                let out = forward_segment_lanes(
                    isa,
                    &a[r.clone()],
                    &b[r.clone()],
                    &c[r.clone()],
                    &mut d[r.clone()],
                    &mut cp[r],
                    carry.as_ref().map(|(x, y)| (x, y)),
                );
                carry = Some(out);
            }
            let mut xd: Option<[f64; W]> = None;
            for s in (0..3).rev() {
                let r = cuts[s] * W..cuts[s + 1] * W;
                let first = backward_segment_lanes(isa, &cp[r.clone()], &mut d[r], xd.as_ref());
                xd = Some(first);
            }
            // Scalar reference, lane by lane.
            for l in 0..W {
                let (la, lb, lc) = (lane_of(&a, l), lane_of(&b, l), lane_of(&c, l));
                let mut ld = lane_of(&d0, l);
                let mut lcp = vec![0.0; n];
                let mut cin = None;
                for s in 0..3 {
                    let r = cuts[s]..cuts[s + 1];
                    let out = tridiag::forward_segment(
                        &la[r.clone()],
                        &lb[r.clone()],
                        &lc[r.clone()],
                        &mut ld[r.clone()],
                        &mut lcp[r],
                        cin,
                    );
                    cin = Some(out);
                }
                let mut x = None;
                for s in (0..3).rev() {
                    let r = cuts[s]..cuts[s + 1];
                    let first = tridiag::backward_segment(&lcp[r.clone()], &mut ld[r], x);
                    x = Some(first);
                }
                for i in 0..n {
                    assert_eq!(
                        d[i * W + l].to_bits(),
                        ld[i].to_bits(),
                        "isa {isa:?} lane {l} row {i}"
                    );
                }
            }
        }
    }
}
