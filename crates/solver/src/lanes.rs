//! Lane-batching utilities for the compute kernels.
//!
//! The hot loops of this codebase — line-implicit eliminations, trilinear
//! Newton inversions, containment tests — are all *batches of independent
//! scalar problems*: one implicit line, one candidate cell, one node. The
//! kernels in [`crate::kernels`] (and the connectivity crate) batch `W`
//! such problems side by side, **one SIMD lane per problem**, and perform
//! exactly the scalar operation sequence on each lane. Because AVX2's
//! `add/sub/mul/div/sqrt` are IEEE-754 correctly rounded *per lane* and no
//! horizontal operations (or FMA contractions) are ever used, each lane's
//! result is bit-identical to the scalar code — the `use_simd` ablation and
//! the batched-vs-scalar proptests pin this.
//!
//! Dispatch is resolved once per run: [`select_isa`] feature-detects AVX2
//! the first time it is called and caches the answer; kernels take the
//! resulting [`Isa`] value and monomorphize over the [`Lane4`] trait, whose
//! two implementations ([`ScalarLanes`], and `AvxLanes` on x86-64) execute
//! the same per-lane arithmetic. `Isa::Scalar` is therefore a *one-code-path*
//! ablation: the batched structure runs unchanged, only the lane arithmetic
//! is carried out by scalar instructions.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane width of every batched kernel (f64 lanes in one AVX2 register).
pub const W: usize = 4;

/// Which instruction set carries the lane arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Isa {
    /// Portable fallback: the batched kernels run with `[f64; 4]` lanes.
    /// The default, so library entry points that never see a driver config
    /// stay conservative; the driver upgrades to the detected ISA.
    #[default]
    Scalar,
    /// AVX2 `__m256d` lanes (x86-64 only, runtime-detected).
    Avx2,
}

/// 0 = unknown, 1 = unsupported, 2 = supported.
static AVX2_STATE: AtomicU8 = AtomicU8::new(0);

/// Does the host support AVX2? Feature-detected once, then cached.
pub fn avx2_supported() -> bool {
    match AVX2_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            #[cfg(target_arch = "x86_64")]
            let yes = std::arch::is_x86_feature_detected!("avx2");
            #[cfg(not(target_arch = "x86_64"))]
            let yes = false;
            AVX2_STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Resolve the dispatch for a run: AVX2 when requested *and* available,
/// scalar lanes otherwise. `use_simd = false` (the `--no-simd` ablation)
/// always selects [`Isa::Scalar`].
pub fn select_isa(use_simd: bool) -> Isa {
    if use_simd && avx2_supported() {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

/// Four f64 lanes with IEEE-exact per-lane arithmetic.
///
/// Masks (from [`Lane4::lt`] / [`Lane4::mask`]) follow AVX2 `blendv`
/// semantics: only the **sign bit** of each lane decides a select. The
/// scalar implementation reproduces this exactly.
pub trait Lane4: Copy {
    fn splat(x: f64) -> Self;
    /// Load 4 lanes from `src[0..4]`.
    fn load(src: &[f64]) -> Self;
    /// Store 4 lanes to `dst[0..4]`.
    fn store(self, dst: &mut [f64]);
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn div(self, o: Self) -> Self;
    fn sqrt(self) -> Self;
    fn neg(self) -> Self;
    fn abs(self) -> Self;
    /// Lanewise `self < o`: all-ones lanes where true, zero where false.
    fn lt(self, o: Self) -> Self;
    /// Lanewise `self <= o` mask.
    fn le(self, o: Self) -> Self;
    /// Per-lane select: lanes where `mask`'s sign bit is set take `a`,
    /// otherwise `b` (AVX2 `blendv` semantics).
    fn select(mask: Self, a: Self, b: Self) -> Self;
    fn to_array(self) -> [f64; W];
    /// Build a select mask from per-lane booleans (sign bit set when true).
    fn mask(flags: [bool; W]) -> Self {
        let mut m = [0.0f64; W];
        for (v, f) in m.iter_mut().zip(flags) {
            if f {
                *v = f64::from_bits(1u64 << 63);
            }
        }
        Self::load(&m)
    }
}

/// Portable lane implementation: plain `[f64; 4]` arithmetic, lane by lane,
/// in the same per-lane operation order as the AVX2 path.
#[derive(Clone, Copy)]
pub struct ScalarLanes(pub [f64; W]);

macro_rules! lanewise {
    ($a:expr, $b:expr, $op:tt) => {{
        let (a, b) = ($a, $b);
        ScalarLanes([a.0[0] $op b.0[0], a.0[1] $op b.0[1], a.0[2] $op b.0[2], a.0[3] $op b.0[3]])
    }};
}

impl Lane4 for ScalarLanes {
    #[inline(always)]
    fn splat(x: f64) -> Self {
        ScalarLanes([x; W])
    }
    #[inline(always)]
    fn load(src: &[f64]) -> Self {
        ScalarLanes([src[0], src[1], src[2], src[3]])
    }
    #[inline(always)]
    fn store(self, dst: &mut [f64]) {
        dst[..W].copy_from_slice(&self.0);
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        lanewise!(self, o, +)
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        lanewise!(self, o, -)
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        lanewise!(self, o, *)
    }
    #[inline(always)]
    fn div(self, o: Self) -> Self {
        lanewise!(self, o, /)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        ScalarLanes(self.0.map(f64::sqrt))
    }
    #[inline(always)]
    fn neg(self) -> Self {
        ScalarLanes(self.0.map(|x| -x))
    }
    #[inline(always)]
    fn abs(self) -> Self {
        ScalarLanes(self.0.map(f64::abs))
    }
    #[inline(always)]
    fn lt(self, o: Self) -> Self {
        Self::mask([self.0[0] < o.0[0], self.0[1] < o.0[1], self.0[2] < o.0[2], self.0[3] < o.0[3]])
    }
    #[inline(always)]
    fn le(self, o: Self) -> Self {
        Self::mask([
            self.0[0] <= o.0[0],
            self.0[1] <= o.0[1],
            self.0[2] <= o.0[2],
            self.0[3] <= o.0[3],
        ])
    }
    #[inline(always)]
    fn select(mask: Self, a: Self, b: Self) -> Self {
        let pick = |l: usize| if mask.0[l].to_bits() >> 63 != 0 { a.0[l] } else { b.0[l] };
        ScalarLanes([pick(0), pick(1), pick(2), pick(3)])
    }
    #[inline(always)]
    fn to_array(self) -> [f64; W] {
        self.0
    }
}

#[cfg(target_arch = "x86_64")]
pub use avx::AvxLanes;

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{Lane4, W};
    use std::arch::x86_64::*;

    /// AVX2 lane implementation. Methods compile to single `vaddpd`-class
    /// instructions once inlined into a `#[target_feature(enable = "avx2")]`
    /// kernel body; they must only be *executed* on AVX2-capable hosts,
    /// which the [`super::select_isa`] dispatch guarantees.
    #[derive(Clone, Copy)]
    pub struct AvxLanes(pub __m256d);

    impl Lane4 for AvxLanes {
        #[inline(always)]
        fn splat(x: f64) -> Self {
            AvxLanes(unsafe { _mm256_set1_pd(x) })
        }
        #[inline(always)]
        fn load(src: &[f64]) -> Self {
            assert!(src.len() >= W);
            AvxLanes(unsafe { _mm256_loadu_pd(src.as_ptr()) })
        }
        #[inline(always)]
        fn store(self, dst: &mut [f64]) {
            assert!(dst.len() >= W);
            unsafe { _mm256_storeu_pd(dst.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_add_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_sub_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_mul_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn div(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_div_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            AvxLanes(unsafe { _mm256_sqrt_pd(self.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            // XOR the sign bit: exact, matches scalar `-x` bit-for-bit.
            AvxLanes(unsafe { _mm256_xor_pd(self.0, _mm256_set1_pd(-0.0)) })
        }
        #[inline(always)]
        fn abs(self) -> Self {
            AvxLanes(unsafe { _mm256_andnot_pd(_mm256_set1_pd(-0.0), self.0) })
        }
        #[inline(always)]
        fn lt(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_cmp_pd::<_CMP_LT_OQ>(self.0, o.0) })
        }
        #[inline(always)]
        fn le(self, o: Self) -> Self {
            AvxLanes(unsafe { _mm256_cmp_pd::<_CMP_LE_OQ>(self.0, o.0) })
        }
        #[inline(always)]
        fn select(mask: Self, a: Self, b: Self) -> Self {
            AvxLanes(unsafe { _mm256_blendv_pd(b.0, a.0, mask.0) })
        }
        #[inline(always)]
        fn to_array(self) -> [f64; W] {
            let mut out = [0.0; W];
            self.store(&mut out);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_scalar(a: [f64; W], b: [f64; W]) -> Vec<[f64; W]> {
        run_ops::<ScalarLanes>(a, b)
    }

    fn run_ops<L: Lane4>(a: [f64; W], b: [f64; W]) -> Vec<[f64; W]> {
        let (x, y) = (L::load(&a), L::load(&b));
        vec![
            x.add(y).to_array(),
            x.sub(y).to_array(),
            x.mul(y).to_array(),
            x.div(y).to_array(),
            x.sqrt().to_array(),
            x.neg().to_array(),
            x.abs().to_array(),
            L::select(x.lt(y), x, y).to_array(),
            L::select(x.le(y), y, x).to_array(),
        ]
    }

    #[test]
    fn scalar_lanes_match_plain_f64() {
        let a = [1.5, -2.25, 3.0, 0.1];
        let b = [0.5, 4.0, -1.5, 7.0];
        let got = ops_scalar(a, b);
        for l in 0..W {
            assert_eq!(got[0][l].to_bits(), (a[l] + b[l]).to_bits());
            assert_eq!(got[1][l].to_bits(), (a[l] - b[l]).to_bits());
            assert_eq!(got[2][l].to_bits(), (a[l] * b[l]).to_bits());
            assert_eq!(got[3][l].to_bits(), (a[l] / b[l]).to_bits());
            assert_eq!(got[4][l].to_bits(), a[l].sqrt().to_bits());
            assert_eq!(got[5][l].to_bits(), (-a[l]).to_bits());
            assert_eq!(got[6][l].to_bits(), a[l].abs().to_bits());
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx_lanes_bit_match_scalar_lanes() {
        if !avx2_supported() {
            return; // gate dormant on scalar-only hosts
        }
        // Exercised through a #[target_feature] shim so the intrinsics are
        // compiled with AVX2 enabled, as the kernels do.
        #[target_feature(enable = "avx2")]
        unsafe fn go(a: [f64; W], b: [f64; W]) -> Vec<[f64; W]> {
            run_ops::<AvxLanes>(a, b)
        }
        let a = [1.5, -2.25, 3.0e-200, 0.1];
        let b = [0.5, 4.0, -1.5e3, 7.0];
        let want = ops_scalar(a, b);
        let got = unsafe { go(a, b) };
        for (w, g) in want.iter().zip(&got) {
            for l in 0..W {
                assert_eq!(w[l].to_bits(), g[l].to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn isa_selection_honors_the_ablation_flag() {
        assert_eq!(select_isa(false), Isa::Scalar);
        if avx2_supported() {
            assert_eq!(select_isa(true), Isa::Avx2);
        } else {
            assert_eq!(select_isa(true), Isa::Scalar);
        }
    }

    #[test]
    fn mask_select_uses_sign_bit_only() {
        let m = ScalarLanes::mask([true, false, true, false]);
        let a = ScalarLanes::splat(1.0);
        let b = ScalarLanes::splat(2.0);
        assert_eq!(ScalarLanes::select(m, a, b).to_array(), [1.0, 2.0, 1.0, 2.0]);
    }
}
