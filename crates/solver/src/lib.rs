//! Structured-grid implicit flow solver — the OVERFLOW analogue of the
//! OVERFLOW-D reproduction.
//!
//! Compressible Euler / thin-layer Navier–Stokes on curvilinear overset
//! component grids: second-order central differencing with scalar JST
//! dissipation, ALE grid-velocity terms for moving grids, a Baldwin–Lomax-
//! type algebraic turbulence model, and a diagonalized approximate-
//! factorization implicit scheme whose line solves are pipelined across
//! subdomain boundaries so that implicitness — and hence convergence — is
//! independent of the processor count (Section 2.1 of the paper).
//!
//! The solver operates on per-rank [`block::Block`]s; all communication goes
//! through the [`adi::SolverComm`] trait (serial no-op impl here, message-
//! passing impl in the driver crate), and every kernel reports its flop
//! count for the virtual-time machine model.

pub mod adi;
pub mod bc;
pub mod block;
pub mod conditions;
pub mod kernels;
pub mod lanes;
pub mod rhs;
pub mod step;
pub mod tridiag;
pub mod turbulence;

pub use adi::{SerialComm, SolverComm, SweepScratch};
pub use block::{Blank, Block, HALO};
pub use conditions::{FlowConditions, GAMMA};
#[cfg(target_arch = "x86_64")]
pub use lanes::AvxLanes;
pub use lanes::{avx2_supported, select_isa, Isa, Lane4, ScalarLanes, W};
pub use step::{step_block, Scratch, StepReport};
pub use tridiag::TriScratch;
pub use turbulence::WallGeometry;
