//! One implicit timestep on a block: the OVERFLOW phase of the OVERFLOW-D1
//! loop.

use crate::adi::{implicit_sweeps, SolverComm, SweepScratch};
use crate::bc::apply_bcs;
use crate::block::{Blank, Block};
use crate::conditions::FlowConditions;
use crate::rhs::{compute_residual, residual_l2};
use crate::turbulence::{compute_mu_t, WallGeometry};
use overset_grid::field::{StateField, NVAR};

/// Reusable scratch fields for stepping (avoids per-step allocation).
pub struct Scratch {
    pub res: StateField,
    /// Line-sweep scratch + kernel ISA selection; the driver overrides
    /// `sweep.isa` when the case disables SIMD (`use_simd = false`).
    pub sweep: SweepScratch,
}

impl Scratch {
    pub fn for_block(block: &Block) -> Scratch {
        Scratch { res: StateField::new(block.local_dims), sweep: SweepScratch::default() }
    }
}

/// Outcome of one step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepReport {
    /// Estimated floating-point operations performed.
    pub flops: u64,
    /// L2 norm of the explicit residual before the update (diagnostic).
    pub residual: f64,
}

/// Advance the block one implicit timestep:
///
/// 1. halo exchange (interfaces and periodic wraps),
/// 2. turbulence model (when active),
/// 3. explicit residual,
/// 4. factored implicit sweeps (pipelined across subdomains),
/// 5. state update on field nodes,
/// 6. physical boundary conditions.
pub fn step_block(
    block: &mut Block,
    fc: &FlowConditions,
    wall: Option<&WallGeometry>,
    comm: &mut impl SolverComm,
    scratch: &mut Scratch,
) -> StepReport {
    let mut flops = 0u64;
    let t0 = comm.now();
    comm.exchange_halo(block);
    comm.trace_span("solver", "exchange_halo", t0);

    if block.turbulent && block.viscous {
        if let Some(w) = wall {
            flops += compute_mu_t(block, w);
        }
    }

    let t0 = comm.now();
    flops += compute_residual(block, fc, &mut scratch.res);
    let residual = residual_l2(block, &scratch.res);
    comm.trace_span("solver", "residual", t0);

    // dq enters the factored solve holding Δt·R.
    for v in scratch.res.as_mut_slice() {
        *v *= fc.dt;
    }
    flops += implicit_sweeps(block, fc, &mut scratch.res, comm, &mut scratch.sweep);

    // Update field nodes.
    let ow = block.owned_local();
    for p in ow.iter() {
        if block.iblank[p] != Blank::Field {
            continue;
        }
        let dq = *scratch.res.node(p);
        let q = block.q.node_mut(p);
        for v in 0..NVAR {
            q[v] += dq[v];
        }
        // Positivity floors keep impulsive-start transients from crashing.
        crate::conditions::enforce_positivity(q);
    }

    flops += apply_bcs(block, fc);
    StepReport { flops, residual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adi::SerialComm;
    use overset_grid::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::{Dims, Ijk};

    fn free_block(n: usize, fc: &FlowConditions) -> Block {
        let d = Dims::new(n, n, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.2, p.j as f64 * 0.2, 0.0]);
        let mut g = CurvilinearGrid::new("f", coords, GridKind::Background);
        g.patches = Face::ALL[..4]
            .iter()
            .map(|&f| BoundaryPatch { face: f, kind: BcKind::Farfield })
            .collect();
        Block::from_grid(0, &g, d.full_box(), [None; 6], fc)
    }

    #[test]
    fn freestream_is_a_fixed_point() {
        let fc = FlowConditions::new(0.8, 2.0, 0.0);
        let mut b = free_block(9, &fc);
        let mut s = Scratch::for_block(&b);
        for _ in 0..5 {
            let r = step_block(&mut b, &fc, None, &mut SerialComm, &mut s);
            assert!(r.residual < 1e-12, "residual {}", r.residual);
        }
        let q0 = fc.freestream();
        for p in b.owned_local().iter() {
            let q = b.q.node(p);
            for v in 0..NVAR {
                assert!((q[v] - q0[v]).abs() < 1e-10, "drift at {p:?} var {v}");
            }
        }
    }

    #[test]
    fn pressure_pulse_decays_stably() {
        let mut fc = FlowConditions::new(0.3, 0.0, 0.0);
        fc.dt = 0.1;
        let mut b = free_block(15, &fc);
        let c = Ijk::new(7, 7, 0);
        let mut q = *b.q.node(c);
        q[4] *= 1.3;
        b.q.set_node(c, q);
        let mut s = Scratch::for_block(&b);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let r = step_block(&mut b, &fc, None, &mut SerialComm, &mut s);
            first.get_or_insert(r.residual);
            last = r.residual;
            // Physicality through the transient.
            for p in b.owned_local().iter() {
                let qq = b.q.node(p);
                assert!(qq[0] > 0.0, "negative density");
                assert!(crate::conditions::pressure(qq) > 0.0, "negative pressure");
            }
        }
        assert!(last < first.unwrap(), "pulse did not decay: {first:?} -> {last}");
    }

    #[test]
    fn flop_accounting_positive_and_scales() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut small = free_block(8, &fc);
        let mut big = free_block(16, &fc);
        let mut ss = Scratch::for_block(&small);
        let mut sb = Scratch::for_block(&big);
        let rs = step_block(&mut small, &fc, None, &mut SerialComm, &mut ss);
        let rb = step_block(&mut big, &fc, None, &mut SerialComm, &mut sb);
        assert!(rs.flops > 0);
        // ~4x the points -> ~4x the flops (within boundary-effect slack).
        let ratio = rb.flops as f64 / rs.flops as f64;
        assert!((2.5..6.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fringe_values_are_respected_as_dirichlet() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut b = free_block(9, &fc);
        let f = Ijk::new(4, 4, 0);
        b.iblank[f] = Blank::Fringe;
        let imposed = [1.1, 0.5, 0.0, 0.0, 2.0];
        b.q.set_node(f, imposed);
        let mut s = Scratch::for_block(&b);
        step_block(&mut b, &fc, None, &mut SerialComm, &mut s);
        assert_eq!(*b.q.node(f), imposed, "fringe overwritten by solver");
    }
}
