//! Baldwin–Lomax-type algebraic turbulence model.
//!
//! The store-separation case of the paper runs the Baldwin–Lomax model on
//! all viscous curvilinear grids. This implementation is the inner-layer
//! mixing-length form with an outer-length cutoff,
//!
//! ```text
//! μ_t = ρ l² |ω|,   l = min(κ d, C_outer δ)
//! ```
//!
//! with `d` the distance to the grid's wall surface, `|ω|` the local
//! vorticity magnitude (computed through the curvilinear metrics), `κ` the
//! Kármán constant and `δ` the wall-normal extent of the grid. The
//! subdomain-local evaluation keeps the cost and communication structure of
//! the algebraic model (pointwise work proportional to gridpoints, no
//! messages) while avoiding the full F_max line search, which would be
//! ill-defined on j-split subdomains; see DESIGN.md for the substitution
//! note.

use crate::block::{Blank, Block};
use overset_grid::index::Ijk;

/// Kármán constant.
pub const KAPPA: f64 = 0.41;
/// Outer mixing-length fraction of the layer thickness.
pub const C_OUTER: f64 = 0.085;
/// Eddy-viscosity cap (in units of the freestream molecular viscosity).
pub const MU_T_MAX: f64 = 3000.0;

/// Flops per node for the model evaluation (cost accounting).
pub const FLOPS_PER_NODE: u64 = 70;

/// Vorticity magnitude at a node from central differences of velocity in
/// computational space mapped through the metrics.
pub fn vorticity_magnitude(block: &Block, p: Ijk) -> f64 {
    // du/dx_m = sum_d (grad xi_d)[m] * du/dxi_d
    let mut grad_u = [[0.0f64; 3]; 3]; // grad_u[comp][dxyz]
    for &dir in block.active_dirs() {
        let n = block.local_dims.get(dir);
        let c = p.get(dir);
        let (pm, pp, scale) = if c == 0 {
            (p, offset(p, dir, 1), 1.0)
        } else if c + 1 >= n {
            (offset(p, dir, -1), p, 1.0)
        } else {
            (offset(p, dir, -1), offset(p, dir, 1), 0.5)
        };
        let (qa, qb) = (block.q.node(pm), block.q.node(pp));
        let du = [
            (qb[1] / qb[0] - qa[1] / qa[0]) * scale,
            (qb[2] / qb[0] - qa[2] / qa[0]) * scale,
            (qb[3] / qb[0] - qa[3] / qa[0]) * scale,
        ];
        let g = block.metrics[p].grad(dir);
        for comp in 0..3 {
            for m in 0..3 {
                grad_u[comp][m] += g[m] * du[comp];
            }
        }
    }
    let wx = grad_u[2][1] - grad_u[1][2];
    let wy = grad_u[0][2] - grad_u[2][0];
    let wz = grad_u[1][0] - grad_u[0][1];
    (wx * wx + wy * wy + wz * wz).sqrt()
}

/// Wall geometry a block needs for the model: the wall-surface points for
/// its `(i, k)` columns and the layer thickness δ. Extracted at setup from
/// the parent grid (which has the full `j` range) for grids whose JMin face
/// is a wall.
#[derive(Clone, Debug)]
pub struct WallGeometry {
    /// Wall point per owned (i, k) column, `i` fastest.
    pub wall_xyz: Vec<[f64; 3]>,
    pub ni: usize,
    pub nk: usize,
    /// Wall-normal layer extent δ per column (wall → JMax distance).
    /// Column-local (not rank-averaged) so the model is independent of the
    /// domain decomposition.
    pub delta_col: Vec<f64>,
    /// Mean layer extent (used for initialization profiles).
    pub delta: f64,
}

impl WallGeometry {
    /// Extract from the parent grid for a block owning `owned`.
    pub fn from_grid(grid: &overset_grid::CurvilinearGrid, owned: overset_grid::IndexBox) -> Self {
        let gd = grid.dims();
        let d = owned.dims();
        let mut wall_xyz = Vec::with_capacity(d.ni * d.nk);
        let mut delta_col = Vec::with_capacity(d.ni * d.nk);
        let mut delta = 0.0;
        for k in owned.lo.k..owned.hi.k {
            for i in owned.lo.i..owned.hi.i {
                let w = grid.xyz(Ijk::new(i, 0, k));
                wall_xyz.push(w);
                let o = grid.xyz(Ijk::new(i, gd.nj - 1, k));
                let dc = dist(w, o);
                delta_col.push(dc);
                delta += dc;
            }
        }
        delta /= (d.ni * d.nk) as f64;
        WallGeometry { wall_xyz, ni: d.ni, nk: d.nk, delta_col, delta }
    }

    #[inline]
    fn wall_at(&self, i: usize, k: usize) -> [f64; 3] {
        self.wall_xyz[i + self.ni * k]
    }

    #[inline]
    fn delta_at(&self, i: usize, k: usize) -> f64 {
        self.delta_col[i + self.ni * k]
    }
}

#[inline]
fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[inline]
fn offset(p: Ijk, dir: usize, d: isize) -> Ijk {
    let mut q = p;
    q.set(dir, (q.get(dir) as isize + d) as usize);
    q
}

/// Evaluate the model over the block's owned nodes, filling `block.mu_t`.
/// Returns estimated flops.
pub fn compute_mu_t(block: &mut Block, wall: &WallGeometry) -> u64 {
    let ow = block.owned_local();
    let mut nodes = 0u64;
    for p in ow.iter() {
        if block.iblank[p] != Blank::Field {
            block.mu_t[p] = 0.0;
            continue;
        }
        nodes += 1;
        let gi = p.i - ow.lo.i;
        let gk = p.k - ow.lo.k;
        let d = dist(block.coords[p], wall.wall_at(gi, gk));
        let l = (KAPPA * d).min(C_OUTER * wall.delta_at(gi, gk));
        let w = vorticity_magnitude(block, p);
        let rho = block.q.node(p)[0];
        block.mu_t[p] = (rho * l * l * w).min(MU_T_MAX);
    }
    nodes * FLOPS_PER_NODE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{conservatives, FlowConditions, GAMMA};
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;

    fn flat_plate_block(n: usize) -> (Block, WallGeometry) {
        let d = Dims::new(n, n, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.1, p.j as f64 * 0.1, 0.0]);
        let g = CurvilinearGrid::new("p", coords, GridKind::NearBody);
        let fc = FlowConditions::new(0.5, 0.0, 1.0e6);
        let owned = d.full_box();
        let w = WallGeometry::from_grid(&g, owned);
        (Block::from_grid(0, &g, owned, [None; 6], &fc), w)
    }

    #[test]
    fn wall_geometry_extraction() {
        let (_, w) = flat_plate_block(11);
        assert_eq!(w.ni, 11);
        assert_eq!(w.nk, 1);
        assert!((w.delta - 1.0).abs() < 1e-12);
        assert_eq!(w.wall_at(3, 0)[1], 0.0);
    }

    #[test]
    fn uniform_flow_has_zero_eddy_viscosity() {
        let (mut b, w) = flat_plate_block(9);
        compute_mu_t(&mut b, &w);
        for p in b.owned_local().iter() {
            assert_eq!(b.mu_t[p], 0.0);
        }
    }

    #[test]
    fn shear_layer_produces_eddy_viscosity_growing_with_distance() {
        let (mut b, w) = flat_plate_block(11);
        // Linear shear u = y: |omega| = 1 everywhere.
        for p in b.local_dims.iter() {
            let y = b.coords[p][1];
            b.q.set_node(p, conservatives(&[1.0, y, 0.0, 0.0, 1.0 / GAMMA]));
        }
        compute_mu_t(&mut b, &w);
        let ow = b.owned_local();
        let near = b.mu_t[Ijk::new(5, ow.lo.j + 1, 0)];
        let far = b.mu_t[Ijk::new(5, ow.lo.j + 4, 0)];
        assert!(near > 0.0);
        assert!(far > near, "mu_t should grow with wall distance: {near} vs {far}");
        // Within the inner layer: mu_t = (kappa d)^2 |omega| with d = 0.1.
        let expect = (KAPPA * 0.1).powi(2);
        assert!((near - expect).abs() < 0.3 * expect, "near {near} expect {expect}");
    }

    #[test]
    fn outer_cutoff_limits_growth() {
        let (mut b, w) = flat_plate_block(11);
        for p in b.local_dims.iter() {
            let y = b.coords[p][1];
            b.q.set_node(p, conservatives(&[1.0, y, 0.0, 0.0, 1.0 / GAMMA]));
        }
        compute_mu_t(&mut b, &w);
        let ow = b.owned_local();
        let top = b.mu_t[Ijk::new(5, ow.hi.j - 2, 0)];
        // l capped at C_OUTER * delta = 0.085.
        let cap = (C_OUTER * w.delta).powi(2);
        assert!(top <= cap * 1.01, "top {top} cap {cap}");
    }

    #[test]
    fn vorticity_of_solid_rotation() {
        // u = -y, v = x: |omega_z| = 2.
        let (mut b, _) = flat_plate_block(9);
        for p in b.local_dims.iter() {
            let [x, y, _] = b.coords[p];
            b.q.set_node(p, conservatives(&[1.0, -y, x, 0.0, 1.0 / GAMMA]));
        }
        let w = vorticity_magnitude(&b, Ijk::new(4, 4, 0));
        assert!((w - 2.0).abs() < 1e-9, "w = {w}");
    }

    #[test]
    fn blanked_nodes_have_zero_mu_t() {
        let (mut b, w) = flat_plate_block(9);
        for p in b.local_dims.iter() {
            let y = b.coords[p][1];
            b.q.set_node(p, conservatives(&[1.0, y, 0.0, 0.0, 1.0 / GAMMA]));
        }
        let hole = Ijk::new(4, 4, 0);
        b.iblank[hole] = Blank::Hole;
        compute_mu_t(&mut b, &w);
        assert_eq!(b.mu_t[hole], 0.0);
    }
}
