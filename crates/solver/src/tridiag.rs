//! Tridiagonal line solvers for the approximate-factorization scheme.
//!
//! Three variants:
//!
//! * [`solve`] — the Thomas algorithm for an open line,
//! * [`solve_periodic`] — Sherman–Morrison wrap-around for O-grid lines,
//! * [`forward_segment`] / [`backward_segment`] — the *pipelined distributed*
//!   Thomas used when an implicit line crosses subdomain boundaries: the
//!   upstream rank eliminates its segment and hands the boundary-coupling
//!   coefficients to the downstream rank (2 numbers per line forward, 1 back).
//!   This is how implicitness is maintained across subdomains so that
//!   "solution convergence characteristics remain unchanged with different
//!   numbers of processors" (Section 2.1 of the paper).

/// Reusable elimination buffers for [`solve_with`] / [`solve_periodic_with`]:
/// the normalized super-diagonal, the Sherman–Morrison modified diagonal, and
/// the correction column. Buffers grow to the longest line seen and are then
/// recycled, so steady-state line solves allocate nothing.
#[derive(Default)]
pub struct TriScratch {
    cp: Vec<f64>,
    bb: Vec<f64>,
    z: Vec<f64>,
}

/// Solve `a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i]` in place; the answer
/// lands in `d`. `a[0]` and `c[n-1]` are ignored.
pub fn solve(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    solve_with(a, b, c, d, &mut TriScratch::default());
}

/// [`solve`] with caller-owned scratch (bit-identical; no allocation once
/// `ws` has grown to the line length).
pub fn solve_with(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64], ws: &mut TriScratch) {
    let n = d.len();
    assert!(n >= 1 && a.len() == n && b.len() == n && c.len() == n);
    ws.cp.clear();
    ws.cp.resize(n, 0.0);
    let cp = &mut ws.cp[..n];
    let mut bp = b[0];
    assert!(bp != 0.0);
    cp[0] = c[0] / bp;
    d[0] /= bp;
    for i in 1..n {
        bp = b[i] - a[i] * cp[i - 1];
        cp[i] = c[i] / bp;
        d[i] = (d[i] - a[i] * d[i - 1]) / bp;
    }
    for i in (0..n - 1).rev() {
        d[i] -= cp[i] * d[i + 1];
    }
}

/// Solve a periodic tridiagonal system (wrap coupling `a[0] x[n-1]` and
/// `c[n-1] x[0]`) via the Sherman–Morrison formula. `n >= 3` required.
pub fn solve_periodic(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    solve_periodic_with(a, b, c, d, &mut TriScratch::default());
}

/// [`solve_periodic`] with caller-owned scratch (bit-identical; no
/// allocation once `ws` has grown to the line length).
pub fn solve_periodic_with(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64], ws: &mut TriScratch) {
    let n = d.len();
    assert!(n >= 3);
    let alpha = a[0];
    let beta = c[n - 1];
    let gamma = -b[0];

    // Modified diagonal. The inner solves borrow `ws.cp`, so the diagonal
    // and correction column live in their own buffers, moved out of the
    // scratch for the duration of the call.
    let mut bb = std::mem::take(&mut ws.bb);
    bb.clear();
    bb.extend_from_slice(b);
    bb[0] = b[0] - gamma;
    bb[n - 1] = b[n - 1] - alpha * beta / gamma;

    // Solve A' y = d.
    solve_with(a, &bb, c, d, ws);

    // Solve A' z = u, u = (gamma, 0, ..., 0, beta).
    let mut z = std::mem::take(&mut ws.z);
    z.clear();
    z.resize(n, 0.0);
    z[0] = gamma;
    z[n - 1] = beta;
    solve_with(a, &bb, c, &mut z, ws);

    let fact = (d[0] + a[0] * d[n - 1] / gamma) / (1.0 + z[0] + a[0] * z[n - 1] / gamma);
    for i in 0..n {
        d[i] -= fact * z[i];
    }
    ws.bb = bb;
    ws.z = z;
}

/// State carried across a subdomain boundary during the forward sweep of a
/// pipelined distributed Thomas solve: the normalized super-diagonal and RHS
/// of the last row of the upstream segment.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ForwardCarry {
    pub cp: f64,
    pub dp: f64,
}

/// Forward-eliminate one segment of a distributed line. `carry_in` is the
/// upstream boundary state (`None` when this rank owns the start of the
/// line). On return `d` and `cp_out` hold the segment's normalized
/// coefficients for back substitution, and the returned carry feeds the next
/// (downstream) rank.
pub fn forward_segment(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &mut [f64],
    cp_out: &mut [f64],
    carry_in: Option<ForwardCarry>,
) -> ForwardCarry {
    let n = d.len();
    assert!(n >= 1 && cp_out.len() == n);
    let start;
    match carry_in {
        None => {
            let bp = b[0];
            cp_out[0] = c[0] / bp;
            d[0] /= bp;
            start = 1;
        }
        Some(cin) => {
            // Row 0 couples to the upstream rank's last unknown.
            let bp = b[0] - a[0] * cin.cp;
            cp_out[0] = c[0] / bp;
            d[0] = (d[0] - a[0] * cin.dp) / bp;
            start = 1;
        }
    }
    for i in start..n {
        let bp = b[i] - a[i] * cp_out[i - 1];
        cp_out[i] = c[i] / bp;
        d[i] = (d[i] - a[i] * d[i - 1]) / bp;
    }
    ForwardCarry { cp: cp_out[n - 1], dp: d[n - 1] }
}

/// Back-substitute one segment. `x_downstream` is the first unknown of the
/// downstream rank's segment (`None` when this rank owns the end of the
/// line). Returns this segment's first unknown to pass upstream.
pub fn backward_segment(cp: &[f64], d: &mut [f64], x_downstream: Option<f64>) -> f64 {
    let n = d.len();
    if let Some(x) = x_downstream {
        d[n - 1] -= cp[n - 1] * x;
    }
    for i in (0..n - 1).rev() {
        d[i] -= cp[i] * d[i + 1];
    }
    d[0]
}

/// Estimated flops of a Thomas solve of length `n` (forward 5n, backward 2n).
pub fn thomas_flops(n: usize) -> u64 {
    7 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[f64], b: &[f64], c: &[f64], x: &[f64], periodic: bool) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                let mut v = b[i] * x[i];
                if i > 0 {
                    v += a[i] * x[i - 1];
                } else if periodic {
                    v += a[0] * x[n - 1];
                }
                if i + 1 < n {
                    v += c[i] * x[i + 1];
                } else if periodic {
                    v += c[n - 1] * x[0];
                }
                v
            })
            .collect()
    }

    fn sample_system(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| -0.4 - 0.01 * i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 2.0 + 0.05 * i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| -0.3 - 0.02 * i as f64).collect();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        (a, b, c, x)
    }

    #[test]
    fn thomas_recovers_known_solution() {
        let n = 25;
        let (a, b, c, x) = sample_system(n);
        let mut d = mat_vec(&a, &b, &c, &x, false);
        solve(&a, &b, &c, &mut d);
        for i in 0..n {
            assert!((d[i] - x[i]).abs() < 1e-10, "i={i}: {} vs {}", d[i], x[i]);
        }
    }

    #[test]
    fn thomas_single_unknown() {
        let mut d = vec![6.0];
        solve(&[0.0], &[2.0], &[0.0], &mut d);
        assert!((d[0] - 3.0).abs() < 1e-15);
    }

    #[test]
    fn periodic_recovers_known_solution() {
        let n = 17;
        let (a, b, c, x) = sample_system(n);
        let mut d = mat_vec(&a, &b, &c, &x, true);
        solve_periodic(&a, &b, &c, &mut d);
        for i in 0..n {
            assert!((d[i] - x[i]).abs() < 1e-9, "i={i}: {} vs {}", d[i], x[i]);
        }
    }

    #[test]
    fn segmented_solve_matches_monolithic() {
        let n = 40;
        let (a, b, c, x) = sample_system(n);
        let rhs = mat_vec(&a, &b, &c, &x, false);

        // Monolithic reference.
        let mut mono = rhs.clone();
        solve(&a, &b, &c, &mut mono);

        // Split into 3 segments like 3 ranks along one line.
        let cuts = [0usize, 13, 27, n];
        let mut segs: Vec<Vec<f64>> = (0..3).map(|s| rhs[cuts[s]..cuts[s + 1]].to_vec()).collect();
        let mut cps: Vec<Vec<f64>> = segs.iter().map(|s| vec![0.0; s.len()]).collect();

        // Forward pipeline.
        let mut carry = None;
        for s in 0..3 {
            let r = cuts[s]..cuts[s + 1];
            let out = forward_segment(
                &a[r.clone()],
                &b[r.clone()],
                &c[r],
                &mut segs[s],
                &mut cps[s],
                carry,
            );
            carry = Some(out);
        }
        // Backward pipeline.
        let mut xd = None;
        for s in (0..3).rev() {
            let first = backward_segment(&cps[s], &mut segs[s], xd);
            xd = Some(first);
        }

        let joined: Vec<f64> = segs.concat();
        for i in 0..n {
            assert!((joined[i] - mono[i]).abs() < 1e-10, "i={i}: {} vs {}", joined[i], mono[i]);
        }
    }

    #[test]
    fn segmented_single_segment_equals_solve() {
        let n = 12;
        let (a, b, c, x) = sample_system(n);
        let rhs = mat_vec(&a, &b, &c, &x, false);
        let mut d = rhs.clone();
        let mut cp = vec![0.0; n];
        forward_segment(&a, &b, &c, &mut d, &mut cp, None);
        backward_segment(&cp, &mut d, None);
        let mut mono = rhs;
        solve(&a, &b, &c, &mut mono);
        for i in 0..n {
            assert!((d[i] - mono[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonally_dominant_stability() {
        // Large random-ish diagonally dominant system solves accurately.
        let n = 500;
        let a: Vec<f64> = (0..n).map(|i| -(0.1 + ((i * 7) % 5) as f64 * 0.1)).collect();
        let c: Vec<f64> = (0..n).map(|i| -(0.1 + ((i * 13) % 5) as f64 * 0.1)).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.5 + a[i].abs() + c[i].abs()).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut d = mat_vec(&a, &b, &c, &x, false);
        solve(&a, &b, &c, &mut d);
        let err: f64 = d.iter().zip(&x).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        assert!(err < 1e-11, "max err {err}");
    }

    #[test]
    fn flops_formula() {
        assert_eq!(thomas_flops(10), 70);
    }

    #[test]
    fn scratch_threaded_variants_bit_identical_across_reuse() {
        // One scratch reused across lines of different lengths (including a
        // shrink) must reproduce the allocating wrappers bit for bit.
        let mut ws = TriScratch::default();
        for n in [25usize, 7, 17, 4] {
            let (a, b, c, x) = sample_system(n);
            let mut d1 = mat_vec(&a, &b, &c, &x, false);
            let mut d2 = d1.clone();
            solve(&a, &b, &c, &mut d1);
            solve_with(&a, &b, &c, &mut d2, &mut ws);
            assert_eq!(
                d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "open n={n}"
            );

            let mut p1 = mat_vec(&a, &b, &c, &x, true);
            let mut p2 = p1.clone();
            solve_periodic(&a, &b, &c, &mut p1);
            solve_periodic_with(&a, &b, &c, &mut p2, &mut ws);
            assert_eq!(
                p1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                p2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "periodic n={n}"
            );
        }
    }
}
