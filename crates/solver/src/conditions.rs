//! Flow conditions, nondimensionalization and state conversions.
//!
//! Nondimensionalization follows the OVERFLOW convention: density by ρ∞,
//! velocity by the freestream *sound speed* a∞, pressure by ρ∞ a∞². Thus
//! ρ∞ = 1, a∞ = 1, p∞ = 1/γ and the freestream speed is the Mach number.

use overset_grid::field::NVAR;

/// Ratio of specific heats for air.
pub const GAMMA: f64 = 1.4;

/// Laminar Prandtl number.
pub const PRANDTL: f64 = 0.72;

/// Turbulent Prandtl number.
pub const PRANDTL_T: f64 = 0.9;

/// Freestream and model configuration for one case.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FlowConditions {
    /// Freestream Mach number.
    pub mach: f64,
    /// Angle of attack, radians (in the x–y plane).
    pub alpha: f64,
    /// Reynolds number based on the reference length and freestream speed.
    pub reynolds: f64,
    /// Time step (nondimensional).
    pub dt: f64,
}

impl FlowConditions {
    pub fn new(mach: f64, alpha_deg: f64, reynolds: f64) -> Self {
        FlowConditions { mach, alpha: alpha_deg.to_radians(), reynolds, dt: 0.05 }
    }

    /// Freestream conserved state `[ρ, ρu, ρv, ρw, e]`.
    pub fn freestream(&self) -> [f64; NVAR] {
        let u = self.mach * self.alpha.cos();
        let v = self.mach * self.alpha.sin();
        let w = 0.0;
        let p = 1.0 / GAMMA;
        let e = p / (GAMMA - 1.0) + 0.5 * (u * u + v * v + w * w);
        [1.0, u, v, w, e]
    }

    /// Viscous-flux coefficient: with velocities scaled by a∞, the
    /// nondimensional viscous terms carry `M∞ / Re` (Re being built on the
    /// freestream *speed*).
    pub fn viscous_coefficient(&self) -> f64 {
        if self.reynolds <= 0.0 {
            0.0
        } else {
            self.mach / self.reynolds
        }
    }
}

/// Pressure from a conserved state.
#[inline]
pub fn pressure(q: &[f64; NVAR]) -> f64 {
    let inv_rho = 1.0 / q[0];
    (GAMMA - 1.0) * (q[4] - 0.5 * inv_rho * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]))
}

/// Sound speed from a conserved state.
#[inline]
pub fn sound_speed(q: &[f64; NVAR]) -> f64 {
    (GAMMA * pressure(q) / q[0]).max(1e-12).sqrt()
}

/// Primitive variables `[ρ, u, v, w, p]` from a conserved state.
#[inline]
pub fn primitives(q: &[f64; NVAR]) -> [f64; NVAR] {
    let inv_rho = 1.0 / q[0];
    [q[0], q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho, pressure(q)]
}

/// Conserved state from primitives `[ρ, u, v, w, p]`.
#[inline]
pub fn conservatives(w: &[f64; NVAR]) -> [f64; NVAR] {
    let (rho, u, v, ww, p) = (w[0], w[1], w[2], w[3], w[4]);
    [rho, rho * u, rho * v, rho * ww, p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v + ww * ww)]
}

/// Positivity floors for density and pressure: transonic impulsive starts
/// can momentarily drive near-wall states negative; production codes clamp
/// them rather than crash. Returns true when the state was clamped.
pub fn enforce_positivity(q: &mut [f64; NVAR]) -> bool {
    const RHO_MIN: f64 = 1e-6;
    const P_MIN: f64 = 1e-7;
    let mut clamped = false;
    if !q[0].is_finite() || q[0] < RHO_MIN {
        q[0] = q[0].max(RHO_MIN);
        if !q[0].is_finite() {
            q[0] = RHO_MIN;
        }
        clamped = true;
    }
    for v in q.iter_mut().skip(1) {
        if !v.is_finite() {
            *v = 0.0;
            clamped = true;
        }
    }
    let p = pressure(q);
    if p < P_MIN {
        let ke = 0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / q[0];
        q[4] = P_MIN / (GAMMA - 1.0) + ke;
        clamped = true;
    }
    clamped
}

/// Sutherland's law for nondimensional molecular viscosity, with
/// temperature `T = γ p / ρ` normalized so `T∞ = 1` (a∞-based scaling).
#[inline]
pub fn sutherland_viscosity(q: &[f64; NVAR]) -> f64 {
    let t = (GAMMA * pressure(q) / q[0]).max(1e-12);
    const S: f64 = 110.4 / 288.15; // Sutherland constant over T∞ (sea level)
    t.powf(1.5) * (1.0 + S) / (t + S)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freestream_roundtrip() {
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let q = fc.freestream();
        assert_eq!(q[0], 1.0);
        assert!((q[1] - 0.8).abs() < 1e-15);
        assert!((pressure(&q) - 1.0 / GAMMA).abs() < 1e-15);
        assert!((sound_speed(&q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_rotates_velocity() {
        let fc = FlowConditions::new(1.6, 10.0, 0.0);
        let q = fc.freestream();
        let speed = (q[1] * q[1] + q[2] * q[2]).sqrt();
        assert!((speed - 1.6).abs() < 1e-12);
        assert!((q[2] / q[1] - 10.0f64.to_radians().tan()).abs() < 1e-12);
    }

    #[test]
    fn primitive_conservative_roundtrip() {
        let w = [1.3, 0.4, -0.2, 0.1, 0.9];
        let q = conservatives(&w);
        let w2 = primitives(&q);
        for t in 0..NVAR {
            assert!((w[t] - w2[t]).abs() < 1e-14, "var {t}");
        }
    }

    #[test]
    fn viscous_coefficient_inviscid_case() {
        assert_eq!(FlowConditions::new(0.8, 0.0, 0.0).viscous_coefficient(), 0.0);
        let c = FlowConditions::new(0.8, 0.0, 1.0e6).viscous_coefficient();
        assert!((c - 0.8e-6).abs() < 1e-18);
    }

    #[test]
    fn sutherland_at_freestream_is_unity() {
        let fc = FlowConditions::new(0.8, 0.0, 1.0e6);
        let mu = sutherland_viscosity(&fc.freestream());
        assert!((mu - 1.0).abs() < 1e-12, "mu = {mu}");
    }

    #[test]
    fn sutherland_increases_with_temperature() {
        // Hotter gas (higher p at same rho) is more viscous.
        let cold = conservatives(&[1.0, 0.0, 0.0, 0.0, 1.0 / GAMMA]);
        let hot = conservatives(&[1.0, 0.0, 0.0, 0.0, 2.0 / GAMMA]);
        assert!(sutherland_viscosity(&hot) > sutherland_viscosity(&cold));
    }
}
