//! Donor-cell search: the stencil-walk ("gradient jump") procedure at the
//! heart of DCF3D, with Newton inversion of the trilinear cell mapping.
//!
//! Given a target point and a starting cell, the walk inverts the local
//! trilinear map; when the computational coordinates fall outside the unit
//! cube, it jumps to the adjacent cell in the indicated direction(s) and
//! retries. Warm starts from the previous timestep's donor ("nth-level
//! restart", Barszcz) mean the walk typically converges in one or two jumps,
//! which is why restart "yields a considerable reduction in the time spent
//! in the connectivity solution".

use crate::kernels::{invert_cells_lanes, CORNERS};
use overset_grid::index::Ijk;
use overset_solver::{Blank, Block, Isa, W};

/// Flops per Newton iteration (trilinear evaluation + 3×3 solve).
pub const FLOPS_PER_NEWTON: u64 = 140;
/// Flops of per-walk-step overhead (cell gather, range checks).
pub const FLOPS_PER_WALK_STEP: u64 = 60;

/// Maximum walk steps before giving up (the request is then forwarded to
/// another candidate processor or grid).
pub const MAX_WALK_STEPS: usize = 60;

/// A successful donor: cell lower corner (local), trilinear coordinates and
/// interpolation weights over the cell's corner nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Donor {
    pub cell: Ijk,
    pub loc: [f64; 3],
}

/// Outcome of a local donor search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SearchOutcome {
    /// Containing cell found, stencil clean, cell owned by this block.
    Found(Donor),
    /// The walk left this block's owned region (forward to a neighbor).
    WalkedOut,
    /// Containing cell found but its stencil touches a hole or the target
    /// grid simply does not contain the point.
    Unusable,
}

/// Statistics of one search (for virtual-time accounting).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchCost {
    pub walk_steps: u64,
    pub newton_iters: u64,
}

impl SearchCost {
    pub fn flops(&self) -> u64 {
        self.walk_steps * FLOPS_PER_WALK_STEP + self.newton_iters * FLOPS_PER_NEWTON
    }
}

/// Cell index bounds of a block in local indices: cells are identified by
/// their lower corner node; the corner must have a +1 neighbour in every
/// active direction within local storage.
fn clamp_cell(block: &Block, mut c: Ijk) -> Ijk {
    let d = block.local_dims;
    c.i = c.i.min(d.ni.saturating_sub(2));
    c.j = c.j.min(d.nj.saturating_sub(2));
    if !block.two_d {
        c.k = c.k.min(d.nk.saturating_sub(2));
    } else {
        c.k = 0;
    }
    c
}

/// Trilinear evaluation of cell corner coordinates at local coords `t`.
fn cell_map(block: &Block, cell: Ijk, t: [f64; 3]) -> ([f64; 3], [[f64; 3]; 3]) {
    let two_d = block.two_d;
    let mut x = [0.0f64; 3];
    let mut dx = [[0.0f64; 3]; 3]; // dx[d][comp] = ∂x_comp/∂t_d
    let kmax = if two_d { 1 } else { 2 };
    for dk in 0..kmax {
        for dj in 0..2 {
            for di in 0..2 {
                let node = Ijk::new(cell.i + di, cell.j + dj, cell.k + dk);
                let c = block.coords[node];
                let wi = if di == 0 { 1.0 - t[0] } else { t[0] };
                let wj = if dj == 0 { 1.0 - t[1] } else { t[1] };
                let wk = if two_d {
                    1.0
                } else if dk == 0 {
                    1.0 - t[2]
                } else {
                    t[2]
                };
                let w = wi * wj * wk;
                let gi = if di == 0 { -1.0 } else { 1.0 };
                let gj = if dj == 0 { -1.0 } else { 1.0 };
                let gk = if dk == 0 { -1.0 } else { 1.0 };
                for m in 0..3 {
                    x[m] += w * c[m];
                    dx[0][m] += gi * wj * wk * c[m];
                    dx[1][m] += wi * gj * wk * c[m];
                    if !two_d {
                        dx[2][m] += wi * wj * gk * c[m];
                    }
                }
            }
        }
    }
    if two_d {
        dx[2] = [0.0, 0.0, 1.0];
    }
    (x, dx)
}

/// Newton inversion of the cell map for `target`. Returns local coords and
/// iteration count; `None` if the 3×3 system is singular.
fn invert_cell(block: &Block, cell: Ijk, target: [f64; 3]) -> Option<([f64; 3], u64)> {
    let mut t = [0.5f64; 3];
    if block.two_d {
        t[2] = 0.0;
    }
    let mut iters = 0u64;
    for _ in 0..8 {
        iters += 1;
        let (x, dx) = cell_map(block, cell, t);
        let r = [target[0] - x[0], target[1] - x[1], target[2] - x[2]];
        let rn = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        // Solve J^T-layout system: dx[d][m] * dt[d] = r[m].
        let a = [
            [dx[0][0], dx[1][0], dx[2][0]],
            [dx[0][1], dx[1][1], dx[2][1]],
            [dx[0][2], dx[1][2], dx[2][2]],
        ];
        let det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        if det.abs() < 1e-300 {
            return None;
        }
        let inv_det = 1.0 / det;
        let dt = [
            inv_det
                * (r[0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
                    - a[0][1] * (r[1] * a[2][2] - a[1][2] * r[2])
                    + a[0][2] * (r[1] * a[2][1] - a[1][1] * r[2])),
            inv_det
                * (a[0][0] * (r[1] * a[2][2] - a[1][2] * r[2])
                    - r[0] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
                    + a[0][2] * (a[1][0] * r[2] - r[1] * a[2][0])),
            inv_det
                * (a[0][0] * (a[1][1] * r[2] - r[1] * a[2][1])
                    - a[0][1] * (a[1][0] * r[2] - r[1] * a[2][0])
                    + r[0] * (a[1][0] * a[2][1] - a[1][1] * a[2][0])),
        ];
        t[0] += dt[0];
        t[1] += dt[1];
        if !block.two_d {
            t[2] += dt[2];
        }
        // Clamp wild Newton steps so the walk jumps at most a few cells.
        for v in t.iter_mut() {
            *v = v.clamp(-3.0, 4.0);
        }
        if rn < 1e-16 || (dt[0].abs() + dt[1].abs() + dt[2].abs()) < 1e-8 {
            break;
        }
    }
    Some((t, iters))
}

const TOL: f64 = 1e-9;

/// Walk from `start` (a local cell) toward the cell containing `target`.
/// Runs the Newton stencil walk; if the walk stalls (concave grids can point
/// the local linearization "through" a hole), falls back to a greedy
/// cell-center descent followed by one more Newton walk.
pub fn walk_search(
    block: &Block,
    target: [f64; 3],
    start: Ijk,
    cost: &mut SearchCost,
) -> SearchOutcome {
    walk_search_mode(block, target, start, cost, false, Isa::Scalar)
}

/// Relaxed variant: accepts a containing cell even when its stencil touches
/// holes (the interpolation then renormalizes over clean corners). This is
/// the standard last-resort treatment for otherwise-orphaned fringe points
/// in gap regions between overset surfaces.
pub fn walk_search_relaxed(
    block: &Block,
    target: [f64; 3],
    start: Ijk,
    cost: &mut SearchCost,
) -> SearchOutcome {
    walk_search_mode(block, target, start, cost, true, Isa::Scalar)
}

/// [`walk_search`] with an explicit lane [`Isa`] carrying the batched
/// candidate inversions. The outcome and cost are bit-identical for every
/// `Isa` (the lanes execute the scalar operation sequence); only host
/// speed changes.
pub fn walk_search_isa(
    block: &Block,
    target: [f64; 3],
    start: Ijk,
    cost: &mut SearchCost,
    relaxed: bool,
    isa: Isa,
) -> SearchOutcome {
    walk_search_mode(block, target, start, cost, relaxed, isa)
}

fn walk_search_mode(
    block: &Block,
    target: [f64; 3],
    start: Ijk,
    cost: &mut SearchCost,
    relaxed: bool,
    isa: Isa,
) -> SearchOutcome {
    let start = clamp_cell(block, start);
    let center = clamp_cell(block, center_start(block));
    if start == center {
        return canonical_search(block, target, cost, relaxed, isa);
    }
    let out = newton_walk(block, target, start, cost, relaxed, isa);
    match out {
        // Near the polar caps of revolution shells the trilinear hulls of
        // azimuthal sliver cells overlap across the axis: several
        // non-adjacent cells legitimately contain the point, and which one
        // a walk reaches depends on its start. Redo the search through the
        // canonical chain so the answer matches a center-started search.
        SearchOutcome::Found(d) if !polar_cap(block, d.cell) => out,
        // Failed or ambiguous: fall back to the canonical chain. The chain
        // is the same no matter where the first walk began, so the
        // *outcome* of a search never depends on its start — only its cost
        // does. The inverse-map ablation guarantee (seeding changes work,
        // not donors) rests on this.
        _ => canonical_search(block, target, cost, relaxed, isa),
    }
}

/// The start-independent donor search every mode agrees on: a Newton walk
/// from the block-center cell, a greedy-descent restart if that fails, and
/// on 3-D revolution shells a sweep of fixed quarter-azimuth starts — a
/// center-started walk aimed at the far side of the annulus can exit
/// through the shell surface instead of walking around in `i`, and greedy
/// descent can stall on the fold.
fn canonical_search(
    block: &Block,
    target: [f64; 3],
    cost: &mut SearchCost,
    relaxed: bool,
    isa: Isa,
) -> SearchOutcome {
    let center = clamp_cell(block, center_start(block));
    let mut out = newton_walk(block, target, center, cost, relaxed, isa);
    if !matches!(out, SearchOutcome::Found(_)) {
        let near = greedy_descent(block, target, center, cost);
        out = newton_walk(block, target, near, cost, relaxed, isa);
    }
    if !matches!(out, SearchOutcome::Found(_)) && block.self_wrap_i && !block.two_d {
        let period = block.owned.dims().ni - 1;
        let h = block.halo[0];
        for q in [0usize, 1, 3] {
            let alt = clamp_cell(block, Ijk::new(h + q * period / 4, center.j, center.k));
            out = newton_walk(block, target, alt, cost, relaxed, isa);
            if !matches!(out, SearchOutcome::Found(_)) {
                let near = greedy_descent(block, target, alt, cost);
                out = newton_walk(block, target, near, cost, relaxed, isa);
            }
            if matches!(out, SearchOutcome::Found(_)) {
                break;
            }
        }
    }
    out
}

/// Polar-cap band of a periodic revolution shell: the first/last two cell
/// rings in `k` (polar angle), where azimuthal sliver cells can overlap
/// across the axis and containment is ambiguous.
fn polar_cap(block: &Block, cell: Ijk) -> bool {
    if block.two_d || !block.self_wrap_i {
        return false;
    }
    let gk = (block.owned.lo.k + cell.k).saturating_sub(block.halo[2]);
    let nk_cells = block.grid_dims.nk - 1;
    gk < 2 || gk + 2 >= nk_cells
}

/// Width of the face band (in computational coordinates) within which a
/// containing cell is ambiguous: the point also lies inside the face
/// neighbour to within the walk tolerance. Twice `TOL` so that whenever one
/// side of a shared face accepts the point, the other side's polish is
/// guaranteed to look across the face (the slack dominates re-inversion
/// noise by seven orders of magnitude).
const FACE_BAND: f64 = 2.0 * TOL;

/// Resolve a walk that has landed in a containing cell. When the point sits
/// within `FACE_BAND` of a cell face, the face neighbour contains it too
/// (to within `TOL`), so walks approaching from different sides terminate
/// in different — equally valid — cells, and may even disagree on *whether*
/// a usable donor exists (one side of the tie can have a holed stencil or a
/// halo-anchored cell). Deterministically picks the lexicographically
/// smallest acceptable cell among the original and its tied face
/// neighbours, making the donor — and the found/miss verdict — independent
/// of the walk path.
fn resolve_containing(
    block: &Block,
    target: [f64; 3],
    cell: Ijk,
    t: [f64; 3],
    cost: &mut SearchCost,
    relaxed: bool,
    isa: Isa,
) -> SearchOutcome {
    let first = accept(block, cell, t, relaxed);
    let dirs: &[usize] = if block.two_d { &[0, 1] } else { &[0, 1, 2] };
    let mut shift = [0isize; 3];
    let mut tied = false;
    for &ax in dirs {
        if t[ax] >= 1.0 - FACE_BAND {
            shift[ax] = 1;
            tied = true;
        } else if t[ax] <= FACE_BAND {
            shift[ax] = -1;
            tied = true;
        }
    }
    if !tied {
        return first;
    }
    let mut best: Option<Donor> = match first {
        SearchOutcome::Found(d) => Some(d),
        _ => None,
    };
    let key = |c: Ijk| (c.i, c.j, c.k);
    // Collect the tied face/edge/corner neighbours (up to 7), then invert
    // them through the lane-batched Newton kernel, W candidates at a time.
    let mut cands = [cell; 7];
    let mut ncand = 0usize;
    for mask in 1u8..8 {
        let mut cand = cell;
        let mut valid = true;
        for (ax, &s) in shift.iter().enumerate() {
            if mask & (1 << ax) == 0 {
                continue;
            }
            if s == 0 {
                valid = false;
                break;
            }
            let c = cand.get(ax) as isize;
            let n = block.local_dims.get(ax) as isize;
            let mut nc = c + s;
            if nc < 0 || nc > n - 2 {
                if ax == 0 && block.self_wrap_i {
                    let period = (block.owned.dims().ni - 1) as isize;
                    let h = block.halo[0] as isize;
                    nc = (nc - h).rem_euclid(period) + h;
                } else {
                    valid = false;
                    break;
                }
            }
            cand.set(ax, nc as usize);
        }
        if !valid || cand == cell {
            continue;
        }
        cands[ncand] = cand;
        ncand += 1;
    }
    let mut results = [None; 7];
    invert_cells_batch(block, &cands[..ncand], target, isa, &mut results);
    for (i, res) in results.iter().enumerate().take(ncand) {
        let Some((ct, iters)) = *res else {
            continue;
        };
        cost.newton_iters += iters;
        if !(0..3).all(|ax| ct[ax] >= -TOL && ct[ax] <= 1.0 + TOL) {
            continue;
        }
        if let SearchOutcome::Found(cd) = accept(block, cands[i], ct, relaxed) {
            if best.is_none_or(|b| key(cd.cell) < key(b.cell)) {
                best = Some(cd);
            }
        }
    }
    match best {
        Some(d) => SearchOutcome::Found(d),
        None => first,
    }
}

/// Gather one `(cell, target)` problem into lane `l` of the SoA buffers
/// consumed by [`invert_cells_lanes`].
fn gather_lane_problem(
    block: &Block,
    l: usize,
    cell: Ijk,
    target: [f64; 3],
    corners: &mut [f64],
    targets: &mut [f64],
) {
    let kmax = if block.two_d { 1 } else { 2 };
    for dk in 0..kmax {
        for dj in 0..2 {
            for di in 0..2 {
                let c = block.coords[Ijk::new(cell.i + di, cell.j + dj, cell.k + dk)];
                let cidx = di + 2 * dj + 4 * dk;
                for (m, &cm) in c.iter().enumerate() {
                    corners[(cidx * 3 + m) * W + l] = cm;
                }
            }
        }
    }
    for (m, &tm) in target.iter().enumerate() {
        targets[m * W + l] = tm;
    }
}

/// Invert up to 7 candidate cells against one target through the batched
/// Newton kernel, `W` lanes at a time (unused lanes replicate the chunk's
/// first problem and are discarded). Each entry of `results` matches what
/// scalar `invert_cell` returns for that candidate, bit for bit.
fn invert_cells_batch(
    block: &Block,
    cands: &[Ijk],
    target: [f64; 3],
    isa: Isa,
    results: &mut [Option<([f64; 3], u64)>],
) {
    let mut corners = [0.0f64; CORNERS * 3 * W];
    let mut targets = [0.0f64; 3 * W];
    let mut t_out = [0.0f64; 3 * W];
    let mut iters = [0u64; W];
    let mut okl = [true; W];
    let mut ci = 0;
    while ci < cands.len() {
        let n = (cands.len() - ci).min(W);
        for l in 0..W {
            let cell = cands[ci + l.min(n - 1)];
            gather_lane_problem(block, l, cell, target, &mut corners, &mut targets);
        }
        invert_cells_lanes(isa, block.two_d, &corners, &targets, &mut t_out, &mut iters, &mut okl);
        for l in 0..n {
            results[ci + l] =
                okl[l].then(|| (([t_out[l], t_out[W + l], t_out[2 * W + l]]), iters[l]));
        }
        ci += n;
    }
}

/// Greedy descent on cell-center distance: robust (if slow) positioning for
/// the Newton walk on strongly curved grids.
fn greedy_descent(block: &Block, target: [f64; 3], start: Ijk, cost: &mut SearchCost) -> Ijk {
    let center_dist = |c: Ijk| -> f64 {
        let (x, _) = cell_map(block, c, if block.two_d { [0.5, 0.5, 0.0] } else { [0.5; 3] });
        (x[0] - target[0]).powi(2) + (x[1] - target[1]).powi(2) + (x[2] - target[2]).powi(2)
    };
    let dirs: &[usize] = if block.two_d { &[0, 1] } else { &[0, 1, 2] };
    let mut cell = start;
    let mut best = center_dist(cell);
    let budget = block.local_dims.ni + block.local_dims.nj + block.local_dims.nk;
    for _ in 0..4 * budget {
        cost.walk_steps += 1;
        let mut improved = false;
        for &d in dirs {
            for step in [-1isize, 1] {
                let c = cell.get(d) as isize;
                let n = block.local_dims.get(d) as isize;
                let mut nc = c + step;
                if nc < 0 || nc > n - 2 {
                    if d == 0 && block.self_wrap_i {
                        let period = (block.owned.dims().ni - 1) as isize;
                        let h = block.halo[0] as isize;
                        nc = (nc - h).rem_euclid(period) + h;
                    } else {
                        continue;
                    }
                }
                let mut cand = cell;
                cand.set(d, nc as usize);
                let dist = center_dist(cand);
                if dist < best {
                    best = dist;
                    cell = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    cell
}

/// What a walk does with one inverted cell: terminate in the cell, jump,
/// or give up. Factored out of [`newton_walk`] so the lane-lockstep
/// [`walk_search_batch`] drives the identical per-step control flow.
enum StepAction {
    /// The cell contains the point: resolve at these local coords.
    Contain([f64; 3]),
    /// Jump to the adjacent cell indicated by the coordinate excess.
    Move(Ijk),
    /// Pinned at a boundary and still pointing out.
    WalkOut,
}

/// Jump toward the target by the integer part of the excess. Steps that
/// would leave local storage are clamped to the boundary cell (curved
/// grids can point the local linearization "through" a concavity); the
/// walk only fails when it is pinned at a boundary and still wants to
/// leave.
fn walk_step_action(block: &Block, cell: Ijk, t: [f64; 3]) -> StepAction {
    let inside = (0..3).all(|d| t[d] >= -TOL && t[d] <= 1.0 + TOL);
    if inside {
        return StepAction::Contain(t);
    }
    let mut moved = false;
    let mut pinned_out = false;
    let mut next = cell;
    let dirs: &[usize] = if block.two_d { &[0, 1] } else { &[0, 1, 2] };
    for &d in dirs {
        let c = cell.get(d) as isize;
        let n = block.local_dims.get(d) as isize;
        let step = if t[d] < -TOL || t[d] > 1.0 + TOL { t[d].floor() as isize } else { 0 };
        if step != 0 {
            let mut nc = c + step;
            if nc < 0 || nc > n - 2 {
                if d == 0 && block.self_wrap_i {
                    // O-grid blocks owning the full i range wrap the
                    // walk around the seam instead of walking out.
                    let period = (block.owned.dims().ni - 1) as isize;
                    let h = block.halo[0] as isize;
                    nc = (nc - h).rem_euclid(period) + h;
                } else {
                    nc = nc.clamp(0, n - 2);
                    if nc == c {
                        pinned_out = true;
                    }
                }
            }
            if nc != c {
                next.set(d, nc as usize);
                moved = true;
            }
        }
    }
    if !moved {
        if pinned_out {
            return StepAction::WalkOut;
        }
        // Numerical stall at a face: accept as inside with clamped coords.
        StepAction::Contain([t[0].clamp(0.0, 1.0), t[1].clamp(0.0, 1.0), t[2].clamp(0.0, 1.0)])
    } else {
        StepAction::Move(next)
    }
}

fn newton_walk(
    block: &Block,
    target: [f64; 3],
    start: Ijk,
    cost: &mut SearchCost,
    relaxed: bool,
    isa: Isa,
) -> SearchOutcome {
    let mut cell = clamp_cell(block, start);
    for _ in 0..MAX_WALK_STEPS {
        cost.walk_steps += 1;
        let Some((t, iters)) = invert_cell(block, cell, target) else {
            return SearchOutcome::Unusable;
        };
        cost.newton_iters += iters;
        match walk_step_action(block, cell, t) {
            StepAction::Contain(tc) => {
                return resolve_containing(block, target, cell, tc, cost, relaxed, isa);
            }
            StepAction::WalkOut => return SearchOutcome::WalkedOut,
            StepAction::Move(next) => cell = next,
        }
    }
    SearchOutcome::WalkedOut
}

/// One pending donor query of a [`walk_search_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchQuery {
    pub xyz: [f64; 3],
    pub start: Ijk,
    pub relaxed: bool,
}

/// Lane-lockstep donor search over many pending query points against one
/// block: up to [`W`] walks advance side by side, each walk step inverting
/// all active lanes' cells through the batched Newton kernel; a lane that
/// terminates is refilled with the next pending query. Per query, the
/// sequence of inverted `(cell, target)` problems — and therefore the
/// outcome, the walk-step count and the Newton-iteration count — is
/// exactly what a scalar [`walk_search`] performs, so `outcomes`/`costs`
/// are bit-identical to the one-query-at-a-time path for every [`Isa`].
pub fn walk_search_batch(
    block: &Block,
    queries: &[BatchQuery],
    isa: Isa,
    outcomes: &mut Vec<SearchOutcome>,
    costs: &mut Vec<SearchCost>,
) {
    outcomes.clear();
    costs.clear();
    outcomes.resize(queries.len(), SearchOutcome::Unusable);
    costs.resize(queries.len(), SearchCost::default());
    let center = clamp_cell(block, center_start(block));

    struct LaneWalk {
        qi: usize,
        cell: Ijk,
        steps_left: usize,
    }
    let mut lanes: [Option<LaneWalk>; W] = [None, None, None, None];
    let mut next_q = 0usize;
    let mut corners = [0.0f64; CORNERS * 3 * W];
    let mut targets = [0.0f64; 3 * W];
    let mut t_out = [0.0f64; 3 * W];
    let mut iters = [0u64; W];
    let mut okl = [true; W];

    // Wrap a finished front-end walk exactly as `walk_search_mode` does.
    let finish = |qi: usize, out: SearchOutcome, costs: &mut Vec<SearchCost>| {
        let q = &queries[qi];
        match out {
            SearchOutcome::Found(d) if !polar_cap(block, d.cell) => out,
            _ => canonical_search(block, q.xyz, &mut costs[qi], q.relaxed, isa),
        }
    };

    loop {
        // Refill idle lanes with fresh walks. Center-started queries take
        // the canonical chain directly (as the scalar mode does) and never
        // occupy a lane.
        for lane in lanes.iter_mut() {
            if lane.is_some() {
                continue;
            }
            while next_q < queries.len() {
                let qi = next_q;
                next_q += 1;
                let q = &queries[qi];
                let start = clamp_cell(block, q.start);
                if start == center {
                    outcomes[qi] = canonical_search(block, q.xyz, &mut costs[qi], q.relaxed, isa);
                } else {
                    *lane = Some(LaneWalk { qi, cell: start, steps_left: MAX_WALK_STEPS });
                    break;
                }
            }
        }
        let Some(first_active) = lanes.iter().flatten().next() else {
            break;
        };
        // Gather active lanes' problems (idle lanes replicate an active
        // problem and are discarded).
        let (fill_cell, fill_xyz) = (first_active.cell, queries[first_active.qi].xyz);
        for (l, lane) in lanes.iter().enumerate() {
            let (cell, xyz) = match lane {
                Some(w) => (w.cell, queries[w.qi].xyz),
                None => (fill_cell, fill_xyz),
            };
            gather_lane_problem(block, l, cell, xyz, &mut corners, &mut targets);
        }
        invert_cells_lanes(isa, block.two_d, &corners, &targets, &mut t_out, &mut iters, &mut okl);
        for (l, lane) in lanes.iter_mut().enumerate() {
            let Some(w) = lane.as_mut() else { continue };
            let qi = w.qi;
            let q = &queries[qi];
            costs[qi].walk_steps += 1;
            if !okl[l] {
                outcomes[qi] = finish(qi, SearchOutcome::Unusable, costs);
                *lane = None;
                continue;
            }
            costs[qi].newton_iters += iters[l];
            let t = [t_out[l], t_out[W + l], t_out[2 * W + l]];
            match walk_step_action(block, w.cell, t) {
                StepAction::Contain(tc) => {
                    let out = resolve_containing(
                        block,
                        q.xyz,
                        w.cell,
                        tc,
                        &mut costs[qi],
                        q.relaxed,
                        isa,
                    );
                    outcomes[qi] = finish(qi, out, costs);
                    *lane = None;
                }
                StepAction::WalkOut => {
                    outcomes[qi] = finish(qi, SearchOutcome::WalkedOut, costs);
                    *lane = None;
                }
                StepAction::Move(next) => {
                    w.cell = next;
                    w.steps_left -= 1;
                    if w.steps_left == 0 {
                        outcomes[qi] = finish(qi, SearchOutcome::WalkedOut, costs);
                        *lane = None;
                    }
                }
            }
        }
    }
}

/// Validate an inside-cell result: donor cell must be anchored in the owned
/// region (unique ownership across ranks) and its stencil must be hole-free
/// (unless `relaxed`: then any cell with at least one clean corner passes,
/// and the interpolation renormalizes over clean corners).
fn accept(block: &Block, cell: Ijk, t: [f64; 3], relaxed: bool) -> SearchOutcome {
    let mut cell = cell;
    // Periodic shells store a duplicated seam column, so the cells anchored
    // at global `i` and `i ± period` are bit-exact copies of each other and
    // a walk can legitimately terminate in either. Reduce to the canonical
    // representative (anchor in `[0, period)` global) so the donor identity
    // never depends on which duplicate the walk happened to reach.
    if block.self_wrap_i {
        let period = block.owned.dims().ni - 1;
        let h = block.halo[0];
        while cell.i >= h + period {
            cell.i -= period;
        }
        while cell.i < h {
            cell.i += period;
        }
    }
    let ow = block.owned_local();
    let anchored = cell.i >= ow.lo.i
        && cell.i < ow.hi.i
        && cell.j >= ow.lo.j
        && cell.j < ow.hi.j
        && (block.two_d || (cell.k >= ow.lo.k && cell.k < ow.hi.k));
    if !anchored {
        return SearchOutcome::WalkedOut;
    }
    let kmax = if block.two_d { 1 } else { 2 };
    let mut clean = 0usize;
    let mut total = 0usize;
    for dk in 0..kmax {
        for dj in 0..2 {
            for di in 0..2 {
                total += 1;
                let node = Ijk::new(cell.i + di, cell.j + dj, cell.k + dk);
                if block.iblank[node] != Blank::Hole {
                    clean += 1;
                }
            }
        }
    }
    if clean < total && !relaxed {
        return SearchOutcome::Unusable;
    }
    if clean == 0 {
        return SearchOutcome::Unusable;
    }
    SearchOutcome::Found(Donor {
        cell,
        loc: [t[0].clamp(0.0, 1.0), t[1].clamp(0.0, 1.0), t[2].clamp(0.0, 1.0)],
    })
}

/// Default walk start: the center of the owned region.
pub fn center_start(block: &Block) -> Ijk {
    let ow = block.owned_local();
    Ijk::new((ow.lo.i + ow.hi.i) / 2, (ow.lo.j + ow.hi.j) / 2, (ow.lo.k + ow.hi.k) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;
    use overset_solver::FlowConditions;

    fn cart_block(n: usize, h: f64) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * h, p.j as f64 * h, p.k as f64 * h]);
        let g = CurvilinearGrid::new("c", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    fn annulus_block(nth: usize, nr: usize) -> Block {
        let d = Dims::new(nth, nr, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % (nth - 1)) as f64 / (nth - 1) as f64;
            let r = 1.0 + 0.25 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("a", coords, GridKind::NearBody);
        g.periodic_i = true;
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    #[test]
    fn finds_cell_on_cartesian_block() {
        let b = cart_block(9, 0.5);
        let mut cost = SearchCost::default();
        let target = [1.3, 2.1, 0.7];
        match walk_search(&b, target, center_start(&b), &mut cost) {
            SearchOutcome::Found(d) => {
                let g = b.to_global(d.cell);
                assert_eq!(g, Ijk::new(2, 4, 1), "cell {g:?}");
                assert!((d.loc[0] - 0.6).abs() < 1e-9);
                assert!((d.loc[1] - 0.2).abs() < 1e-9);
                assert!((d.loc[2] - 0.4).abs() < 1e-9);
            }
            o => panic!("expected Found, got {o:?}"),
        }
        assert!(cost.flops() > 0);
    }

    #[test]
    fn walk_converges_from_far_corner() {
        let b = cart_block(17, 0.25);
        let mut cost = SearchCost::default();
        let ow = b.owned_local();
        let far_start = Ijk::new(ow.lo.i, ow.lo.j, ow.lo.k);
        let target = [3.9, 3.9, 3.9];
        match walk_search(&b, target, far_start, &mut cost) {
            SearchOutcome::Found(d) => {
                assert_eq!(b.to_global(d.cell), Ijk::new(15, 15, 15));
            }
            o => panic!("got {o:?}"),
        }
        // Newton jumps several cells at once: far fewer steps than distance.
        assert!(cost.walk_steps <= 12, "steps {}", cost.walk_steps);
    }

    #[test]
    fn warm_start_is_cheaper_than_cold() {
        let b = cart_block(17, 0.25);
        let target = [2.05, 2.05, 2.05];
        let mut cold = SearchCost::default();
        let ow = b.owned_local();
        walk_search(&b, target, Ijk::new(ow.lo.i, ow.lo.j, ow.lo.k), &mut cold);
        let mut warm = SearchCost::default();
        // Warm start: the true cell itself.
        let hint = b.to_local(Ijk::new(8, 8, 8));
        walk_search(&b, target, hint, &mut warm);
        assert!(warm.flops() < cold.flops(), "warm {} cold {}", warm.flops(), cold.flops());
        assert_eq!(warm.walk_steps, 1);
    }

    #[test]
    fn outside_point_walks_out() {
        let b = cart_block(9, 0.5);
        let mut cost = SearchCost::default();
        let out = walk_search(&b, [100.0, 0.0, 0.0], center_start(&b), &mut cost);
        assert_eq!(out, SearchOutcome::WalkedOut);
    }

    #[test]
    fn hole_stencil_is_unusable() {
        let mut b = cart_block(9, 0.5);
        let target = [1.3, 2.1, 0.7]; // cell (2,4,1)
        let hole = b.to_local(Ijk::new(3, 4, 1));
        b.iblank[hole] = Blank::Hole;
        let mut cost = SearchCost::default();
        let out = walk_search(&b, target, center_start(&b), &mut cost);
        assert_eq!(out, SearchOutcome::Unusable);
    }

    #[test]
    fn curvilinear_annulus_search() {
        let b = annulus_block(65, 9);
        let mut cost = SearchCost::default();
        // A point at radius 1.9, 57 degrees.
        let th = -(57.0f64.to_radians());
        let target = [1.9 * th.cos(), 1.9 * th.sin(), 0.0];
        match walk_search(&b, target, center_start(&b), &mut cost) {
            SearchOutcome::Found(d) => {
                // Verify by forward mapping.
                let (x, _) = cell_map(&b, d.cell, d.loc);
                for m in 0..3 {
                    assert!((x[m] - target[m]).abs() < 1e-8, "{x:?} vs {target:?}");
                }
            }
            o => panic!("got {o:?}"),
        }
    }

    #[test]
    fn walk_crosses_periodic_seam_both_directions() {
        // Start one cell to the right of the i-seam, target one cell to its
        // left, and vice versa: the walk must step *through* the seam (a
        // couple of wrapped steps), not all the way around the annulus.
        let b = annulus_block(65, 9);
        for (start_i, target_deg, want_i) in [(1usize, 355.0f64, 63usize), (62, 5.0, 0)] {
            let th = -(target_deg.to_radians());
            let target = [1.9 * th.cos(), 1.9 * th.sin(), 0.0];
            let mut cost = SearchCost::default();
            match walk_search(&b, target, b.to_local(Ijk::new(start_i, 4, 0)), &mut cost) {
                SearchOutcome::Found(d) => {
                    assert_eq!(b.to_global(d.cell).i, want_i, "crossing toward {target_deg} deg");
                    let (x, _) = cell_map(&b, d.cell, d.loc);
                    for m in 0..3 {
                        assert!((x[m] - target[m]).abs() < 1e-8, "{x:?} vs {target:?}");
                    }
                }
                o => panic!("toward {target_deg} deg: got {o:?}"),
            }
            // Crossing the seam takes a handful of steps; going the long way
            // around would take tens.
            assert!(cost.walk_steps < 10, "walk went the long way: {} steps", cost.walk_steps);
        }
    }

    #[test]
    fn relaxed_donor_renormalizes_partially_holed_stencil() {
        // One corner of the donor cell is a hole: strict search refuses the
        // donor, relaxed search accepts it, and interpolation renormalizes
        // the trilinear weights over the seven clean corners.
        let mut b = cart_block(9, 0.5);
        let target = [1.3, 2.1, 0.7]; // cell (2,4,1), loc (0.6, 0.2, 0.4)
        let hole = b.to_local(Ijk::new(3, 4, 1)); // corner di=1, dj=0, dk=0
        b.iblank[hole] = Blank::Hole;
        let field = |x: [f64; 3], v: usize| x[0] + 2.0 * x[1] + 3.0 * x[2] + v as f64;
        for p in b.local_dims.full_box().iter() {
            let x = b.coords[p];
            b.q.set_node(p, std::array::from_fn(|v| field(x, v)));
        }

        let mut cost = SearchCost::default();
        assert_eq!(walk_search(&b, target, center_start(&b), &mut cost), SearchOutcome::Unusable);
        let d = match walk_search_relaxed(&b, target, center_start(&b), &mut cost) {
            SearchOutcome::Found(d) => d,
            o => panic!("relaxed search failed: {o:?}"),
        };
        assert_eq!(b.to_global(d.cell), Ijk::new(2, 4, 1));

        let got = crate::interp::interpolate(&b, &d);
        // Renormalized expectation straight from the definition.
        let t = d.loc;
        let mut wsum = 0.0;
        let mut want = [0.0f64; 5];
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let node = Ijk::new(d.cell.i + di, d.cell.j + dj, d.cell.k + dk);
                    if b.iblank[node] == Blank::Hole {
                        continue;
                    }
                    let w = (if di == 0 { 1.0 - t[0] } else { t[0] })
                        * (if dj == 0 { 1.0 - t[1] } else { t[1] })
                        * (if dk == 0 { 1.0 - t[2] } else { t[2] });
                    wsum += w;
                    for (v, acc) in want.iter_mut().enumerate() {
                        *acc += w * field(b.coords[node], v);
                    }
                }
            }
        }
        assert!(wsum < 1.0 - 1e-6, "hole corner did not reduce the weight sum");
        for v in 0..5 {
            let w = want[v] / wsum;
            assert!((got[v] - w).abs() < 1e-12, "var {v}: {} vs {}", got[v], w);
        }
    }

    /// A deterministically jittered unit lattice: every interior cell is a
    /// general (non-affine) hexahedron.
    fn jittered_block(seed: u64, amp: f64) -> Block {
        let d = Dims::new(4, 4, 4);
        let coords = Field3::from_fn(d, |p| {
            let mut s = seed
                ^ (((p.i as u64) << 42) ^ ((p.j as u64) << 21) ^ p.k as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15);
            let mut draw = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0
            };
            [p.i as f64 + amp * draw(), p.j as f64 + amp * draw(), p.k as f64 + amp * draw()]
        });
        let g = CurvilinearGrid::new("j", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The lane-batched trilinear Newton inversion is bit-identical to
        /// the scalar one — per lane, on arbitrary hexahedral cells and
        /// targets inside, outside and far from the cell, on every ISA.
        #[test]
        fn batched_trilinear_bit_equals_scalar(
            seed in 1u64..(1 << 60),
            amp in 0.0f64..0.35,
        ) {
            use overset_solver::{select_isa, Isa, W};
            let b = jittered_block(seed, amp);
            let ow = b.owned_local();
            // All anchored cells, plus one target per cell spanning
            // inside/outside/far cases from the same deterministic stream.
            let mut s = seed | 1;
            let mut draw = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut cases: Vec<(Ijk, [f64; 3])> = Vec::new();
            for k in ow.lo.k..ow.hi.k {
                for j in ow.lo.j..ow.hi.j {
                    for i in ow.lo.i..ow.hi.i {
                        // Anchored cells only: the far corner must exist.
                        if i + 1 >= b.local_dims.ni
                            || j + 1 >= b.local_dims.nj
                            || k + 1 >= b.local_dims.nk
                        {
                            continue;
                        }
                        let cell = Ijk::new(i, j, k);
                        let base = b.coords[cell];
                        let t =
                            [base[0] + 3.0 * draw() - 1.0, base[1] + 3.0 * draw() - 1.0, base[2] + 3.0 * draw() - 1.0];
                        cases.push((cell, t));
                    }
                }
            }
            for isa in [Isa::Scalar, select_isa(true)] {
                for chunk in cases.chunks(W) {
                    let mut corners = [0.0f64; CORNERS * 3 * W];
                    let mut targets = [0.0f64; 3 * W];
                    let mut t_out = [0.0f64; 3 * W];
                    let mut iters = [0u64; W];
                    let mut ok = [false; W];
                    for l in 0..W {
                        // Ragged tail lanes replicate the last real case.
                        let (cell, t) = chunk[l.min(chunk.len() - 1)];
                        gather_lane_problem(&b, l, cell, t, &mut corners, &mut targets);
                    }
                    invert_cells_lanes(isa, b.two_d, &corners, &targets, &mut t_out, &mut iters, &mut ok);
                    for (l, &(cell, t)) in chunk.iter().enumerate() {
                        let scalar = invert_cell(&b, cell, t);
                        prop_assert_eq!(ok[l], scalar.is_some(), "lane {} ok mismatch ({:?})", l, isa);
                        if let Some((st, si)) = scalar {
                            prop_assert_eq!(iters[l], si, "lane {} iters ({:?})", l, isa);
                            for m in 0..3 {
                                prop_assert_eq!(
                                    t_out[m * W + l].to_bits(),
                                    st[m].to_bits(),
                                    "lane {} coord {} ({:?})",
                                    l, m, isa
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_walk_matches_sequential_scalar() {
        use overset_solver::{select_isa, Isa};
        let b = cart_block(17, 0.25);
        let ow = b.owned_local();
        // A mixed bag: interior targets from varied starts, center starts
        // (routed to the canonical search), and points outside the domain.
        let mut queries = Vec::new();
        for q in 0..23usize {
            let x = 0.11 + (q as f64 * 0.531) % 3.8;
            let y = 0.07 + (q as f64 * 0.713) % 3.8;
            let z = 0.13 + (q as f64 * 0.377) % 3.8;
            let start = if q % 5 == 0 {
                center_start(&b)
            } else {
                clamp_cell(
                    &b,
                    Ijk::new(ow.lo.i + q % 15, ow.lo.j + (3 * q) % 15, ow.lo.k + (7 * q) % 15),
                )
            };
            queries.push(BatchQuery { xyz: [x, y, z], start, relaxed: false });
        }
        queries.push(BatchQuery { xyz: [9.0, -3.0, 1.0], start: center_start(&b), relaxed: false });
        queries.push(BatchQuery {
            xyz: [-1.0, 2.0, 2.0],
            start: clamp_cell(&b, ow.lo),
            relaxed: false,
        });
        let (mut outs, mut costs) = (Vec::new(), Vec::new());
        for isa in [Isa::Scalar, select_isa(true)] {
            walk_search_batch(&b, &queries, isa, &mut outs, &mut costs);
            assert_eq!(outs.len(), queries.len());
            for (q, (o, c)) in queries.iter().zip(outs.iter().zip(costs.iter())) {
                let mut sc = SearchCost::default();
                let so = walk_search_isa(&b, q.xyz, q.start, &mut sc, q.relaxed, Isa::Scalar);
                assert_eq!(*o, so, "outcome diverged at {:?} ({isa:?})", q.xyz);
                assert_eq!(c.walk_steps, sc.walk_steps, "walk steps at {:?} ({isa:?})", q.xyz);
                assert_eq!(c.newton_iters, sc.newton_iters, "iters at {:?} ({isa:?})", q.xyz);
            }
        }
    }

    #[test]
    fn two_d_block_search_stays_in_plane() {
        let d = Dims::new(11, 11, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.3, p.j as f64 * 0.3, 0.0]);
        let g = CurvilinearGrid::new("p", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
        let mut cost = SearchCost::default();
        match walk_search(&b, [1.0, 2.0, 0.0], center_start(&b), &mut cost) {
            SearchOutcome::Found(dn) => {
                assert_eq!(dn.cell.k, 0);
                assert_eq!(dn.loc[2], 0.0);
                let gcell = b.to_global(dn.cell);
                assert_eq!(gcell, Ijk::new(3, 6, 0));
                assert!((dn.loc[0] - 1.0 / 3.0).abs() < 1e-9);
            }
            o => panic!("got {o:?}"),
        }
    }
}
