//! Trilinear interpolation of the flow state from donor cells.

use crate::donor::Donor;
use overset_grid::field::NVAR;
use overset_grid::index::Ijk;
use overset_solver::Block;

/// Flops to evaluate one interpolated state (8 weights × 5 variables).
pub const FLOPS_PER_INTERP: u64 = 60;

/// Corner weights of a donor (8 entries; the upper-k four are zero in 2-D).
pub fn weights(donor: &Donor, two_d: bool) -> [f64; 8] {
    let [ti, tj, tk] = donor.loc;
    let mut w = [0.0f64; 8];
    let kmax = if two_d { 1 } else { 2 };
    for dk in 0..kmax {
        for dj in 0..2 {
            for di in 0..2 {
                let wi = if di == 0 { 1.0 - ti } else { ti };
                let wj = if dj == 0 { 1.0 - tj } else { tj };
                let wk = if two_d {
                    1.0
                } else if dk == 0 {
                    1.0 - tk
                } else {
                    tk
                };
                w[di + 2 * dj + 4 * dk] = wi * wj * wk;
            }
        }
    }
    w
}

/// Interpolate the conserved state at a donor location on a block. Hole
/// corners (possible for relaxed donors) are skipped and the weights
/// renormalized over the clean corners.
pub fn interpolate(block: &Block, donor: &Donor) -> [f64; NVAR] {
    let w = weights(donor, block.two_d);
    let mut out = [0.0f64; NVAR];
    let mut wsum = 0.0f64;
    let kmax = if block.two_d { 1 } else { 2 };
    for dk in 0..kmax {
        for dj in 0..2 {
            for di in 0..2 {
                let weight = w[di + 2 * dj + 4 * dk];
                if weight == 0.0 {
                    continue;
                }
                let node = Ijk::new(donor.cell.i + di, donor.cell.j + dj, donor.cell.k + dk);
                if block.iblank[node] == overset_solver::Blank::Hole {
                    continue;
                }
                wsum += weight;
                let q = block.q.node(node);
                for v in 0..NVAR {
                    out[v] += weight * q[v];
                }
            }
        }
    }
    if wsum == 0.0 {
        // Degenerate relaxed donor: the point sits exactly on a cell face
        // and every nonzero-weight corner is a hole. The donor still has at
        // least one clean corner (acceptance guarantees it) — average the
        // clean corners equally rather than returning a zero state.
        let mut clean = 0.0f64;
        for dk in 0..kmax {
            for dj in 0..2 {
                for di in 0..2 {
                    let node = Ijk::new(donor.cell.i + di, donor.cell.j + dj, donor.cell.k + dk);
                    if block.iblank[node] == overset_solver::Blank::Hole {
                        continue;
                    }
                    clean += 1.0;
                    let q = block.q.node(node);
                    for v in 0..NVAR {
                        out[v] += q[v];
                    }
                }
            }
        }
        debug_assert!(clean > 0.0, "donor accepted with no clean corners");
        if clean > 0.0 {
            for v in out.iter_mut() {
                *v /= clean;
            }
        }
    } else if (wsum - 1.0).abs() > 1e-14 {
        for v in out.iter_mut() {
            *v /= wsum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;
    use overset_solver::FlowConditions;

    fn block3(n: usize) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64, p.j as f64, p.k as f64]);
        let g = CurvilinearGrid::new("c", coords, GridKind::Background);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &FlowConditions::new(0.8, 0.0, 0.0))
    }

    #[test]
    fn weights_sum_to_one() {
        let d = Donor { cell: Ijk::new(2, 2, 2), loc: [0.3, 0.7, 0.1] };
        let w = weights(&d, false);
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-14);
        let w2 = weights(&Donor { cell: Ijk::new(2, 2, 0), loc: [0.3, 0.7, 0.0] }, true);
        let s2: f64 = w2.iter().sum();
        assert!((s2 - 1.0).abs() < 1e-14);
        assert_eq!(w2[4..8], [0.0; 4]);
    }

    #[test]
    fn corner_weights_pick_nodes() {
        let d = Donor { cell: Ijk::new(0, 0, 0), loc: [0.0, 0.0, 0.0] };
        let w = weights(&d, false);
        assert_eq!(w[0], 1.0);
        assert!(w[1..].iter().all(|&x| x == 0.0));
        let d2 = Donor { cell: Ijk::new(0, 0, 0), loc: [1.0, 1.0, 1.0] };
        let w2 = weights(&d2, false);
        assert_eq!(w2[7], 1.0);
    }

    #[test]
    fn interpolation_reproduces_linear_field_exactly() {
        let mut b = block3(6);
        // q linear in position: trilinear interpolation is exact.
        for p in b.local_dims.iter() {
            let [x, y, z] = b.coords[p];
            b.q.set_node(p, [1.0 + x, 2.0 * y, -z, 0.5 * x + y, 3.0 + z]);
        }
        let donor = Donor { cell: b.to_local(Ijk::new(2, 3, 1)), loc: [0.25, 0.5, 0.75] };
        let q = interpolate(&b, &donor);
        let (x, y, z) = (2.25, 3.5, 1.75);
        let expect = [1.0 + x, 2.0 * y, -z, 0.5 * x + y, 3.0 + z];
        for v in 0..NVAR {
            assert!((q[v] - expect[v]).abs() < 1e-12, "var {v}: {} vs {}", q[v], expect[v]);
        }
    }

    #[test]
    fn two_d_interpolation_bilinear() {
        let d = Dims::new(5, 5, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64, p.j as f64, 0.0]);
        let g = CurvilinearGrid::new("p", coords, GridKind::Background);
        let mut b =
            Block::from_grid(0, &g, d.full_box(), [None; 6], &FlowConditions::new(0.8, 0.0, 0.0));
        for p in b.local_dims.iter() {
            let [x, y, _] = b.coords[p];
            b.q.set_node(p, [x + y, 0.0, 0.0, 0.0, x * 1.0]);
        }
        let donor = Donor { cell: b.to_local(Ijk::new(1, 1, 0)), loc: [0.5, 0.5, 0.0] };
        let q = interpolate(&b, &donor);
        assert!((q[0] - 3.0).abs() < 1e-12);
        assert!((q[4] - 1.5).abs() < 1e-12);
    }
}
