//! Per-rank connectivity arena: step-scoped scratch that is reset, not
//! freed.
//!
//! Every collection the connectivity phase allocates per step — pending-walk
//! queues, flattened candidate lists, per-destination request buffers,
//! reply maps, deferred q-writes, hole-fringe lists — lives here and keeps
//! its capacity across steps. The driver owns one [`ConnArena`] per rank
//! for the whole run; steady-state connectivity steps then perform
//! near-zero transient allocations, which the exact alloc gate in
//! `repro compare` pins (docs/OBSERVABILITY.md, "Arena allocation").
//!
//! The arena changes nothing about *what* the protocol computes: the same
//! code path runs whether the arena is fresh (allocating on first use) or
//! warm (reusing capacity), so states, walk outcomes and virtual times are
//! bit-identical with the arena on or off — only host-side allocation
//! counts differ. The `arena` ablation tests assert exactly this.

use crate::donor::{BatchQuery, SearchCost, SearchOutcome};
use crate::holes::Igbp;
use crate::inverse_map::BinClass;
use crate::protocol::{Answer, Pending, RankRoute, ReqPoint};
use overset_comm::VecPool;
use overset_grid::curvilinear::Solid;
use overset_grid::{Aabb, Ijk};
use overset_solver::Isa;
use std::collections::HashMap;

/// Reusable scratch for one rank's connectivity work (distributed protocol,
/// hole cutting, and the serial path). Construction allocates nothing;
/// buffers grow to their working-set high-water mark within the first step
/// or two and are cleared — never shrunk — between steps.
#[derive(Default)]
pub struct ConnArena {
    /// Lane ISA carrying the batched donor-search and containment kernels.
    /// Defaults to [`Isa::Scalar`]; the driver upgrades it from the case's
    /// `use_simd` setting via [`overset_solver::select_isa`]. Results are
    /// bit-identical either way — the ISA only changes host speed. Lives on
    /// the arena (not a process global) because tests run cases with
    /// different settings concurrently in one process.
    pub isa: Isa,

    // -- distributed protocol scratch --
    /// Unresolved IGBPs in the current round.
    pub(crate) pending: Vec<Pending>,
    /// Keepers of the reply-collection pass (swapped into `pending`).
    pub(crate) next_pending: Vec<Pending>,
    /// Flattened candidate-rank storage: every `Pending` holds a
    /// (start, len) range into this pool instead of its own vector. This
    /// removes the per-IGBP allocation that dominated the old profile.
    pub(crate) cand_pool: Vec<usize>,
    /// IGBP indices that exhausted every candidate.
    pub(crate) orphaned: Vec<usize>,
    /// Per-destination request buffers (outer vec sized to `nranks`).
    pub(crate) outgoing: Vec<Vec<ReqPoint>>,
    /// Destinations this rank sent requests to in the current round.
    pub(crate) sent_to: Vec<usize>,
    /// Deferred fringe q-writes, applied after the round loop.
    pub(crate) writes: Vec<(Ijk, [f64; 5])>,
    /// Reply lookup for the collection pass (cleared per round; `HashMap`
    /// keeps its capacity across clears).
    pub(crate) answers_by_id: HashMap<u32, (usize, Answer)>,
    /// Decoded routing broadcast (one entry per rank).
    pub(crate) routes: Vec<RankRoute>,
    /// Recycled request buffers: received request vectors are parked here
    /// and reused for the next round's outgoing sends.
    pub(crate) req_pool: VecPool<ReqPoint>,
    /// Recycled answer buffers, symmetric to `req_pool`.
    pub(crate) ans_pool: VecPool<(u32, Answer)>,
    /// Recycled per-round count vectors: the allgathered count lists come
    /// back from the collective; one is parked here and refilled as the
    /// next round's outgoing-count vector.
    pub(crate) counts_pool: VecPool<u32>,

    // -- hole-cutting scratch --
    /// Field nodes adjacent to holes (promoted to Fringe after the scan).
    pub(crate) fringe_nodes: Vec<Ijk>,
    /// Foreign solids (other grids') for the containment tests.
    pub(crate) foreign_solids: Vec<Solid>,
    /// Padded bounding boxes, parallel to `foreign_solids`.
    pub(crate) solid_boxes: Vec<Aabb>,
    /// Per-solid hole-lattice classifications of the masked cutter (outer
    /// len = number of foreign solids; inner vecs keep their capacity).
    pub(crate) bin_classes: Vec<Vec<BinClass>>,
    /// Recycled IGBP lists (the hole cutter takes one, the caller recycles
    /// it after connectivity consumes it).
    pub(crate) igbp_pool: VecPool<Igbp>,

    // -- batched donor-search scratch --
    /// Pending query points of one service batch.
    pub(crate) walk_queries: Vec<BatchQuery>,
    /// Per-query outcomes of the lane-lockstep search.
    pub(crate) walk_outcomes: Vec<SearchOutcome>,
    /// Per-query walk costs, parallel to `walk_outcomes`.
    pub(crate) walk_costs: Vec<SearchCost>,

    // -- serial-path scratch --
    /// Per-grid IGBP lists of the serial connectivity solution.
    pub(crate) igbps_per_grid: Vec<Vec<Igbp>>,
    /// Deferred (grid, node, value) writes of the serial path.
    pub(crate) serial_writes: Vec<(usize, Ijk, [f64; 5])>,
    /// Whole-grid bounding boxes for the serial donor rejection.
    pub(crate) grid_bboxes: Vec<Aabb>,
}

impl ConnArena {
    /// An empty arena. Allocation-free: every buffer starts with zero
    /// capacity and grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return an IGBP list (obtained from the hole cutter) to the arena so
    /// its capacity is reused next step.
    pub fn recycle_igbps(&mut self, igbps: Vec<Igbp>) {
        self.igbp_pool.put(igbps);
    }

    /// Reset the distributed-protocol scratch for a new step. Capacities
    /// survive; the outer `outgoing` vector is (re)sized to `nranks`.
    pub(crate) fn begin_protocol(&mut self, nranks: usize) {
        self.pending.clear();
        self.next_pending.clear();
        self.cand_pool.clear();
        self.orphaned.clear();
        self.sent_to.clear();
        self.writes.clear();
        self.answers_by_id.clear();
        self.routes.clear();
        if self.outgoing.len() == nranks {
            for v in &mut self.outgoing {
                v.clear();
            }
        } else {
            self.outgoing.clear();
            self.outgoing.resize_with(nranks, Vec::new);
        }
    }
}
