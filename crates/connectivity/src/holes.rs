//! Hole cutting and fringe (inter-grid boundary point) identification.
//!
//! "Holes are cut in grids which intersect solid surfaces": every node of a
//! block lying inside another grid's solid geometry is blanked. Field nodes
//! adjacent to holes become *hole fringe* points, and the nodes of
//! `OversetOuter` boundary patches become *outer-boundary* points; both sets
//! are the inter-grid boundary points (IGBPs) whose values DCF3D supplies by
//! interpolation each step.

use crate::arena::ConnArena;
use crate::inverse_map::{classify_solids_into, BinClass, InverseMap};
use crate::kernels::containment_lanes;
use overset_grid::curvilinear::{BcKind, Solid};
use overset_grid::index::Ijk;
use overset_solver::{Blank, Block, W};

/// Safety pad (in local cell widths) around solids when blanking.
pub const HOLE_PAD_CELLS: f64 = 0.25;

/// Number of fringe layers at overset outer boundaries (single fringe, as
/// was common in the paper's era; the JST stencil degrades gracefully to
/// second differences beside interpolated data).
pub const OUTER_FRINGE_LAYERS: usize = 1;

/// Flops per (node, solid) bounding-box pre-check — and per node for the
/// masked cutter's bin lookup, which replaces those checks.
pub const FLOPS_PER_NODE_BBOX: u64 = 4;
/// Flops per detailed containment test (nodes inside a solid's box).
pub const FLOPS_PER_DETAILED_TEST: u64 = 25;

/// One IGBP on a block: the local node plus its physical position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Igbp {
    pub node: Ijk,
    pub xyz: [f64; 3],
}

/// Re-cut holes and identify fringe points on a block against the solids of
/// *other* grids. Resets all previous blanking. Returns (IGBP list,
/// estimated flops).
pub fn cut_holes_and_find_fringe(block: &mut Block, solids: &[(usize, Solid)]) -> (Vec<Igbp>, u64) {
    cut_holes_and_find_fringe_with_map(block, solids, None)
}

/// [`cut_holes_and_find_fringe`] accelerated by a block's inverse map: the
/// map's hole lattice is classified per solid (inside / outside / boundary)
/// once, and the per-node detailed containment test runs only for nodes in
/// *boundary* bins. Blanking is bit-identical to the unmasked cutter — only
/// the flop charge changes. With `inv = None` this *is* the unmasked cutter.
pub fn cut_holes_and_find_fringe_with_map(
    block: &mut Block,
    solids: &[(usize, Solid)],
    inv: Option<&InverseMap>,
) -> (Vec<Igbp>, u64) {
    let mut arena = ConnArena::new();
    cut_holes_and_find_fringe_arena(block, solids, inv, &mut arena)
}

/// [`cut_holes_and_find_fringe_with_map`] running on a caller-owned
/// [`ConnArena`]: the fringe-node scratch persists across steps and the
/// returned IGBP list is recycled through the arena (hand it back with
/// [`ConnArena::recycle_igbps`] once connectivity has consumed it).
/// Blanking is identical either way.
///
/// An inverse map with a non-identity pose is ignored here: solid masks
/// are classified in the map's *lattice* frame, and re-deriving them
/// through the pose is not bit-safe against the unmasked cutter's
/// world-frame verdicts. A recently-moved grid therefore pays the
/// unmasked per-node cost until its next full rebuild re-anchors the
/// lattice — blanking stays bit-identical throughout.
pub fn cut_holes_and_find_fringe_arena(
    block: &mut Block,
    solids: &[(usize, Solid)],
    inv: Option<&InverseMap>,
    arena: &mut ConnArena,
) -> (Vec<Igbp>, u64) {
    let inv = inv.filter(|m| m.pose_is_identity());
    let ow = block.owned_local();
    // Reset: every owned node back to Field.
    for p in ow.iter() {
        block.iblank[p] = Blank::Field;
    }

    let isa = arena.isa;
    let ConnArena { fringe_nodes, foreign_solids, solid_boxes, bin_classes, igbp_pool, .. } = arena;

    // Containment tests against foreign solids: cheap bounding-box
    // pre-check, detailed test only inside a solid's (padded) box.
    foreign_solids.clear();
    foreign_solids.extend(solids.iter().filter(|(g, _)| *g != block.grid_id).map(|(_, s)| *s));
    let mut flops = 0u64;
    if !foreign_solids.is_empty() {
        // Pad boxes by the largest plausible pad once.
        let probe = overset_grid::Ijk::new(
            (ow.lo.i + ow.hi.i) / 2,
            (ow.lo.j + ow.hi.j) / 2,
            (ow.lo.k + ow.hi.k) / 2,
        );
        let pad_hint = HOLE_PAD_CELLS * local_spacing(block, probe) * 4.0;
        solid_boxes.clear();
        solid_boxes.extend(foreign_solids.iter().map(|s| s.bbox().inflate(pad_hint)));
        // With an inverse map, classify its hole lattice against each solid
        // once; whole bins then resolve without per-node detailed tests.
        let classes: Option<&[Vec<BinClass>]> = if let Some(m) = inv {
            flops += classify_solids_into(m, foreign_solids, pad_hint, bin_classes);
            Some(bin_classes)
        } else {
            None
        };
        // Lane-batched containment: test W nodes at a time, one node per
        // SIMD lane. The per-lane masks replay the scalar control flow —
        // bin-class skips, bbox pre-check, detailed test, first-hit break —
        // so the blanking verdicts *and* the flop charges are bit-identical
        // to the scalar per-node loop for every `Isa`.
        let mut nodes = [Ijk::new(0, 0, 0); W];
        let mut xs = [0.0f64; 3 * W];
        let mut pads = [0.0f64; W];
        let mut bins = [None; W];
        let mut n_chunk = 0usize;
        let mut it = ow.iter();
        loop {
            match it.next() {
                Some(p) => {
                    let x = block.coords[p];
                    nodes[n_chunk] = p;
                    for (m, &xm) in x.iter().enumerate() {
                        xs[m * W + n_chunk] = xm;
                    }
                    pads[n_chunk] = HOLE_PAD_CELLS * local_spacing(block, p);
                    bins[n_chunk] = inv.map(|m| m.hole_bin(x));
                    n_chunk += 1;
                    if n_chunk < W {
                        continue;
                    }
                }
                None => {
                    if n_chunk == 0 {
                        break;
                    }
                    // Ragged tail: idle lanes replicate lane 0 (their
                    // results are masked out).
                    for l in n_chunk..W {
                        for m in 0..3 {
                            xs[m * W + l] = xs[m * W];
                        }
                        pads[l] = pads[0];
                    }
                }
            }
            // One charge per node: the per-solid loop overhead (unmasked)
            // or the hole-lattice bin lookup (masked).
            flops += n_chunk as u64 * FLOPS_PER_NODE_BBOX;
            let mut hole = [false; W];
            let mut alive = [false; W];
            for a in alive.iter_mut().take(n_chunk) {
                *a = true;
            }
            let mut inb = [false; W];
            let mut ins = [false; W];
            for (si, (s, bb)) in foreign_solids.iter().zip(solid_boxes.iter()).enumerate() {
                // Per-lane bin-class routing, exactly the scalar verdicts.
                let mut test = [false; W];
                let mut any = false;
                for l in 0..n_chunk {
                    if !alive[l] {
                        continue;
                    }
                    if let (Some(c), Some(b)) = (&classes, bins[l]) {
                        match c[si][b] {
                            // No point of this bin reaches the padded box:
                            // the unmasked cutter's bbox pre-check would
                            // skip too — without its per-solid flops.
                            BinClass::Outside => continue,
                            // Whole bin inside at zero pad; any per-node
                            // pad ≥ 0 only blanks more: verdict certain.
                            BinClass::Inside => {
                                hole[l] = true;
                                alive[l] = false;
                                continue;
                            }
                            BinClass::Boundary => {}
                        }
                    }
                    flops += FLOPS_PER_NODE_BBOX;
                    test[l] = true;
                    any = true;
                }
                if any {
                    containment_lanes(isa, s, bb, &xs, &pads, &mut inb, &mut ins);
                    for l in 0..n_chunk {
                        if !test[l] || !inb[l] {
                            continue;
                        }
                        flops += FLOPS_PER_DETAILED_TEST;
                        if ins[l] {
                            hole[l] = true;
                            alive[l] = false;
                        }
                    }
                }
                if !alive.iter().any(|&a| a) {
                    break;
                }
            }
            for l in 0..n_chunk {
                if hole[l] {
                    block.iblank[nodes[l]] = Blank::Hole;
                }
            }
            if n_chunk < W {
                break;
            }
            n_chunk = 0;
        }
    }

    // Hole fringe: field nodes with a hole neighbour (6-connectivity,
    // in-plane for 2-D blocks).
    fringe_nodes.clear();
    if !foreign_solids.is_empty() {
        for p in ow.iter() {
            if block.iblank[p] != Blank::Field {
                continue;
            }
            let mut near_hole = false;
            for &dir in block.active_dirs() {
                for d in [-1isize, 1] {
                    let c = p.get(dir) as isize + d;
                    if c < 0 || c as usize >= block.local_dims.get(dir) {
                        continue;
                    }
                    let mut q = p;
                    q.set(dir, c as usize);
                    if block.iblank[q] == Blank::Hole {
                        near_hole = true;
                    }
                }
            }
            if near_hole {
                fringe_nodes.push(p);
            }
        }
    }
    for &p in fringe_nodes.iter() {
        block.iblank[p] = Blank::Fringe;
    }

    // Outer-boundary fringe: layers of faces carrying OversetOuter patches.
    for face in 0..6 {
        if block.face_bc[face] != Some(BcKind::OversetOuter) {
            continue;
        }
        let layers = block.layer_box(face, OUTER_FRINGE_LAYERS, false);
        for p in layers.iter() {
            if block.iblank[p] != Blank::Hole {
                block.iblank[p] = Blank::Fringe;
            }
        }
    }

    // Collect all fringe nodes as IGBPs (into a recycled buffer).
    let mut igbps = igbp_pool.take();
    for p in ow.iter() {
        if block.iblank[p] == Blank::Fringe {
            igbps.push(Igbp { node: p, xyz: block.coords[p] });
        }
    }
    (igbps, flops)
}

fn local_spacing(block: &Block, p: Ijk) -> f64 {
    let d = block.local_dims;
    let q = if p.i + 1 < d.ni { Ijk::new(p.i + 1, p.j, p.k) } else { Ijk::new(p.i - 1, p.j, p.k) };
    let (a, b) = (block.coords[p], block.coords[q]);
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{BoundaryPatch, CurvilinearGrid, Face, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;
    use overset_solver::FlowConditions;

    fn bg_block(n: usize, outer_overset: bool) -> Block {
        let d = Dims::new(n, n, 1);
        let h = 4.0 / (n - 1) as f64;
        let coords = Field3::from_fn(d, |p| [-2.0 + h * p.i as f64, -2.0 + h * p.j as f64, 0.0]);
        let mut g = CurvilinearGrid::new("bg", coords, GridKind::Background);
        if outer_overset {
            g.patches = Face::ALL[..4]
                .iter()
                .map(|&f| BoundaryPatch { face: f, kind: BcKind::OversetOuter })
                .collect();
        }
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(1, &g, d.full_box(), [None; 6], &fc)
    }

    #[test]
    fn solid_cuts_hole_with_fringe_ring() {
        let mut b = bg_block(21, false);
        let solids = vec![(0usize, Solid::Ellipsoid { center: [0.0; 3], radii: [0.7, 0.7, 10.0] })];
        let (igbps, flops) = cut_holes_and_find_fringe(&mut b, &solids);
        assert!(flops > 0);
        // Center is a hole.
        let c = b.to_local(Ijk::new(10, 10, 0));
        assert_eq!(b.iblank[c], Blank::Hole);
        // Holes exist, fringe ring surrounds them.
        let holes = b.owned_local().iter().filter(|&p| b.iblank[p] == Blank::Hole).count();
        assert!(holes > 4, "holes = {holes}");
        assert!(!igbps.is_empty());
        // Every fringe node touches a hole.
        for ig in &igbps {
            let p = ig.node;
            let mut touches = false;
            for dir in 0..2 {
                for d in [-1isize, 1] {
                    let mut q = p;
                    q.set(dir, (q.get(dir) as isize + d) as usize);
                    if b.iblank[q] == Blank::Hole {
                        touches = true;
                    }
                }
            }
            assert!(touches, "fringe {p:?} not adjacent to a hole");
        }
    }

    #[test]
    fn own_solids_do_not_cut_own_grid() {
        let mut b = bg_block(11, false);
        // Solid belongs to grid 1 == block's own grid.
        let solids = vec![(1usize, Solid::Ellipsoid { center: [0.0; 3], radii: [0.7, 0.7, 10.0] })];
        let (igbps, _) = cut_holes_and_find_fringe(&mut b, &solids);
        assert!(igbps.is_empty());
        for p in b.owned_local().iter() {
            assert_eq!(b.iblank[p], Blank::Field);
        }
    }

    #[test]
    fn outer_boundary_becomes_fringe() {
        let mut b = bg_block(11, true);
        let (igbps, _) = cut_holes_and_find_fringe(&mut b, &[]);
        // Single fringe on all 4 edges of an 11x11 grid: 11^2 - 9^2 = 40.
        assert_eq!(igbps.len(), 40);
        let ow = b.owned_local();
        assert_eq!(b.iblank[Ijk::new(ow.lo.i, ow.lo.j + 5, 0)], Blank::Fringe);
        assert_eq!(b.iblank[Ijk::new(ow.lo.i + 5, ow.lo.j + 5, 0)], Blank::Field);
    }

    #[test]
    fn recut_resets_previous_state() {
        let mut b = bg_block(15, false);
        let near = vec![(0usize, Solid::Ellipsoid { center: [0.0; 3], radii: [0.7, 0.7, 10.0] })];
        cut_holes_and_find_fringe(&mut b, &near);
        let before: usize = b.owned_local().iter().filter(|&p| b.iblank[p] == Blank::Hole).count();
        assert!(before > 0);
        // Solid moves away: holes must vanish.
        let far =
            vec![(0usize, Solid::Ellipsoid { center: [50.0, 0.0, 0.0], radii: [0.7, 0.7, 10.0] })];
        let (igbps, _) = cut_holes_and_find_fringe(&mut b, &far);
        let after: usize = b.owned_local().iter().filter(|&p| b.iblank[p] == Blank::Hole).count();
        assert_eq!(after, 0);
        assert!(igbps.is_empty());
    }

    #[test]
    fn masked_cut_matches_unmasked_bitwise() {
        // 2-D background block against two foreign solids: blanking, fringe
        // and IGBPs must be bit-identical with and without the mask.
        let mut a = bg_block(41, false);
        let mut b = bg_block(41, false);
        let solids = vec![
            (0usize, Solid::Ellipsoid { center: [0.3, -0.2, 0.0], radii: [0.8, 0.6, 10.0] }),
            (
                0usize,
                Solid::Slab { aabb: overset_grid::Aabb::new([-1.8, 1.0, -1.0], [-0.9, 1.9, 1.0]) },
            ),
        ];
        let inv = InverseMap::build(&a);
        let (ia, _) = cut_holes_and_find_fringe_with_map(&mut a, &solids, Some(&inv));
        let (ib, _) = cut_holes_and_find_fringe(&mut b, &solids);
        assert_eq!(ia, ib);
        for p in a.owned_local().iter() {
            assert_eq!(a.iblank[p], b.iblank[p], "blanking differs at {p:?}");
        }
    }

    #[test]
    fn masked_cut_is_cheaper_on_3d_blocks() {
        let d = Dims::new(33, 33, 33);
        let h = 4.0 / 32.0;
        let coords = Field3::from_fn(d, |p| {
            [-2.0 + h * p.i as f64, -2.0 + h * p.j as f64, -2.0 + h * p.k as f64]
        });
        let g = CurvilinearGrid::new("bg3", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let mut a = Block::from_grid(1, &g, d.full_box(), [None; 6], &fc);
        let mut b = Block::from_grid(1, &g, d.full_box(), [None; 6], &fc);
        let solids = vec![
            (0usize, Solid::Ellipsoid { center: [0.0; 3], radii: [1.2, 1.0, 1.1] }),
            (0usize, Solid::Ellipsoid { center: [0.8, 0.6, -0.4], radii: [0.9, 1.1, 0.8] }),
        ];
        let inv = InverseMap::build(&a);
        let (ia, fa) = cut_holes_and_find_fringe_with_map(&mut a, &solids, Some(&inv));
        let (ib, fb) = cut_holes_and_find_fringe(&mut b, &solids);
        assert_eq!(ia, ib);
        for p in a.owned_local().iter() {
            assert_eq!(a.iblank[p], b.iblank[p]);
        }
        assert!(fa < fb, "masked cut {fa} flops vs unmasked {fb}");
    }

    #[test]
    fn moving_solid_shifts_the_hole() {
        let mut b = bg_block(21, false);
        let s0 =
            vec![(0usize, Solid::Ellipsoid { center: [-0.5, 0.0, 0.0], radii: [0.5, 0.5, 10.0] })];
        cut_holes_and_find_fringe(&mut b, &s0);
        let left_hole = b.iblank[b.to_local(Ijk::new(7, 10, 0))] == Blank::Hole;
        let s1 =
            vec![(0usize, Solid::Ellipsoid { center: [0.5, 0.0, 0.0], radii: [0.5, 0.5, 10.0] })];
        cut_holes_and_find_fringe(&mut b, &s1);
        let right_hole = b.iblank[b.to_local(Ijk::new(13, 10, 0))] == Blank::Hole;
        assert!(left_hole && right_hole);
        assert_ne!(b.iblank[b.to_local(Ijk::new(7, 10, 0))], Blank::Hole);
    }
}
